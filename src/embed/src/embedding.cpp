#include "lattice/embed/embedding.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <numeric>

#include "lattice/common/error.hpp"

namespace lattice::embed {

std::size_t RowMajorEmbedding::position(Extent e, Coord c) const {
  return linear_index(e, c);
}

std::size_t BoustrophedonEmbedding::position(Extent e, Coord c) const {
  const std::int64_t x = (c.y & 1) ? e.width - 1 - c.x : c.x;
  return static_cast<std::size_t>(c.y * e.width + x);
}

BlockEmbedding::BlockEmbedding(std::int64_t block) : block_(block) {
  LATTICE_REQUIRE(block > 0, "block size must be positive");
}

bool BlockEmbedding::supports(Extent e) const {
  return e.area() > 0 && e.width % block_ == 0 && e.height % block_ == 0;
}

std::size_t BlockEmbedding::position(Extent e, Coord c) const {
  const std::int64_t bx = c.x / block_;
  const std::int64_t by = c.y / block_;
  const std::int64_t ix = c.x % block_;
  const std::int64_t iy = c.y % block_;
  const std::int64_t blocks_per_row = e.width / block_;
  const std::int64_t block_index = by * blocks_per_row + bx;
  return static_cast<std::size_t>(block_index * block_ * block_ +
                                  iy * block_ + ix);
}

bool HilbertEmbedding::supports(Extent e) const {
  return e.width == e.height && e.width > 0 &&
         std::has_single_bit(static_cast<std::uint64_t>(e.width));
}

std::size_t HilbertEmbedding::position(Extent e, Coord c) const {
  LATTICE_ASSERT(supports(e), "Hilbert embedding needs square power-of-two");
  // Classic xy→d bit-interleave walk.
  std::int64_t x = c.x;
  std::int64_t y = c.y;
  std::int64_t d = 0;
  for (std::int64_t s = e.width / 2; s > 0; s /= 2) {
    const std::int64_t rx = (x & s) > 0 ? 1 : 0;
    const std::int64_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return static_cast<std::size_t>(d);
}

bool is_bijective(const Embedding& emb, Extent e) {
  if (!emb.supports(e)) return false;
  std::vector<bool> hit(static_cast<std::size_t>(e.area()), false);
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const std::size_t p = emb.position(e, {x, y});
      if (p >= hit.size() || hit[p]) return false;
      hit[p] = true;
    }
  }
  return true;
}

namespace {

/// Apply `f` to every 4-adjacent cell pair (each pair once).
template <typename F>
void for_each_adjacent_pair(Extent e, F&& f) {
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      if (x + 1 < e.width) f(Coord{x, y}, Coord{x + 1, y});
      if (y + 1 < e.height) f(Coord{x, y}, Coord{x, y + 1});
    }
  }
}

std::int64_t distance(const Embedding& emb, Extent e, Coord a, Coord b) {
  const auto pa = static_cast<std::int64_t>(emb.position(e, a));
  const auto pb = static_cast<std::int64_t>(emb.position(e, b));
  return std::abs(pa - pb);
}

}  // namespace

std::int64_t adjacency_span(const Embedding& emb, Extent e) {
  LATTICE_REQUIRE(emb.supports(e), "embedding does not support extent");
  std::int64_t span = 0;
  for_each_adjacent_pair(e, [&](Coord a, Coord b) {
    span = std::max(span, distance(emb, e, a, b));
  });
  return span;
}

double mean_adjacency_distance(const Embedding& emb, Extent e) {
  LATTICE_REQUIRE(emb.supports(e), "embedding does not support extent");
  std::int64_t total = 0;
  std::int64_t pairs = 0;
  for_each_adjacent_pair(e, [&](Coord a, Coord b) {
    total += distance(emb, e, a, b);
    ++pairs;
  });
  return pairs > 0 ? static_cast<double>(total) / static_cast<double>(pairs)
                   : 0.0;
}

std::int64_t moore_window(const Embedding& emb, Extent e) {
  LATTICE_REQUIRE(emb.supports(e), "embedding does not support extent");
  std::int64_t window = 0;
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      std::int64_t lo = static_cast<std::int64_t>(e.area());
      std::int64_t hi = -1;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const Coord n{x + dx, y + dy};
          if (!e.contains(n)) continue;
          const auto p = static_cast<std::int64_t>(emb.position(e, n));
          lo = std::min(lo, p);
          hi = std::max(hi, p);
        }
      }
      window = std::max(window, hi - lo + 1);
    }
  }
  return window;
}

std::int64_t min_span_over_all_placements(std::int64_t n) {
  LATTICE_REQUIRE(n >= 1 && n <= 3,
                  "exhaustive search is only feasible for n <= 3");
  const Extent e{n, n};
  const auto cells = static_cast<std::size_t>(n * n);
  std::vector<std::size_t> perm(cells);
  std::iota(perm.begin(), perm.end(), 0u);

  std::int64_t best = static_cast<std::int64_t>(cells);
  do {
    std::int64_t span = 0;
    for_each_adjacent_pair(e, [&](Coord a, Coord b) {
      const auto pa = static_cast<std::int64_t>(perm[linear_index(e, a)]);
      const auto pb = static_cast<std::int64_t>(perm[linear_index(e, b)]);
      span = std::max(span, std::abs(pa - pb));
    });
    best = std::min(best, span);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

std::vector<std::unique_ptr<Embedding>> standard_embeddings(
    std::int64_t block) {
  std::vector<std::unique_ptr<Embedding>> out;
  out.push_back(std::make_unique<RowMajorEmbedding>());
  out.push_back(std::make_unique<BoustrophedonEmbedding>());
  out.push_back(std::make_unique<BlockEmbedding>(block));
  out.push_back(std::make_unique<HilbertEmbedding>());
  return out;
}

}  // namespace lattice::embed
