// Array-into-list embeddings and their spans (§3, Theorem 1).
//
// A serial pipeline consumes the lattice as a linear stream, so every
// PE must buffer all sites between the earliest and latest neighbor of
// the site it is updating. That buffer size is governed by the *span*
// of the embedding of the 2-D array into the 1-D stream:
//
//   span = max |f(a) - f(b)| over 4-adjacent array cells a, b.
//
// Theorem 1 (Supowit & Young, proved in the paper): every embedding of
// an n×n array has span ≥ n, so the natural row-major order — span
// exactly n — is optimal, and a pipeline PE cannot buffer fewer than
// ~2n sites for a full (two-row) neighborhood. This module provides the
// classic embeddings, span/window evaluators, and an exhaustive
// verifier for the theorem on small arrays.

#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "lattice/common/grid.hpp"

namespace lattice::embed {

/// A bijection from array cells onto stream positions 0 .. W*H-1.
class Embedding {
 public:
  virtual ~Embedding() = default;

  /// Stream position of cell `c` in an array of extent `e`.
  virtual std::size_t position(Extent e, Coord c) const = 0;

  virtual std::string_view name() const = 0;

  /// Whether this embedding supports the given extent.
  virtual bool supports(Extent e) const { return e.area() > 0; }
};

/// Natural raster order: f(x, y) = y·W + x. Span = W; optimal.
class RowMajorEmbedding final : public Embedding {
 public:
  std::size_t position(Extent e, Coord c) const override;
  std::string_view name() const override { return "row-major"; }
};

/// Snake order: odd rows reversed. Span = 2W - 1.
class BoustrophedonEmbedding final : public Embedding {
 public:
  std::size_t position(Extent e, Coord c) const override;
  std::string_view name() const override { return "boustrophedon"; }
};

/// Row-major over b×b blocks, row-major inside each block.
/// Requires extents divisible by the block size.
class BlockEmbedding final : public Embedding {
 public:
  explicit BlockEmbedding(std::int64_t block);
  std::size_t position(Extent e, Coord c) const override;
  std::string_view name() const override { return "block"; }
  bool supports(Extent e) const override;
  std::int64_t block() const noexcept { return block_; }

 private:
  std::int64_t block_;
};

/// Hilbert space-filling curve. Requires a square power-of-two extent.
/// Excellent *average* locality, but worst-case adjacent distance is
/// Θ(n²) — a vivid illustration that curve cleverness cannot beat
/// Theorem 1's lower bound, and can lose badly on the worst case that
/// sizes a shift register.
class HilbertEmbedding final : public Embedding {
 public:
  std::size_t position(Extent e, Coord c) const override;
  std::string_view name() const override { return "hilbert"; }
  bool supports(Extent e) const override;
};

/// True iff `emb` maps the array one-to-one onto 0..area-1.
bool is_bijective(const Embedding& emb, Extent e);

/// Theorem 1 span: max |f(a)-f(b)| over 4-adjacent cell pairs.
std::int64_t adjacency_span(const Embedding& emb, Extent e);

/// Mean |f(a)-f(b)| over 4-adjacent cell pairs (locality measure).
double mean_adjacency_distance(const Embedding& emb, Extent e);

/// Stream window needed to hold a full 3×3 (Moore) neighborhood:
/// max over cells of (latest - earliest in-array neighbor position) + 1.
/// Row-major: 2W + 3 — the paper's two-line shift register.
std::int64_t moore_window(const Embedding& emb, Extent e);

/// Exhaustively verify Theorem 1 over *all* (n²)! placements of an n×n
/// array: returns the minimum span achieved by any bijection. n ≤ 3 is
/// feasible; the theorem asserts the result is ≥ n.
std::int64_t min_span_over_all_placements(std::int64_t n);

/// The four standard embeddings (block size picked to divide n when
/// possible); for benchmarking and sweeps.
std::vector<std::unique_ptr<Embedding>> standard_embeddings(
    std::int64_t block = 4);

}  // namespace lattice::embed
