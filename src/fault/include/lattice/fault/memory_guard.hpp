// Plane-memory fault realization and online detection for the
// bit-plane backend (and its site-space mirror for the reference
// executor).
//
// The bit-plane backend models CAM-8-style plane-resident site memory:
// 8 bit-planes of 64-site words, guard words on the shift halos. The
// fault sources that matter for such a machine are transient flips in
// stored plane words, flips in the halo/guard words the funnel shifts
// read, and stuck DRAM columns (persistent or/and masks on one plane
// word). PlaneMemoryGuard realizes FaultPlan's plane-memory sources
// against a running plane_gas_run via the lgca::PlaneRunHooks seam and
// detects them online with three mechanisms, all keyed per *row* so
// detector counts are independent of the band split (thread count) and
// of the SIMD level:
//
//   per-plane ledger — LGCA collisions conserve mass per channel only
//       in aggregate, but memory at rest conserves every plane's
//       popcount exactly: a plane row's population when it is read at
//       generation t must equal its population when it was written at
//       t-1. One SIMD popcount per written plane row per generation
//       (PlaneSpanOps::popcount — the audit rides the same dispatch as
//       the kernel). Catches any flip that changes a (row, plane)
//       population.
//   halo canary — the guard words of every halo plane are a pure
//       function of the row payload (PlaneLattice::prepare_shift_halo);
//       recomputing and comparing them catches guard-word corruption
//       the payload popcounts cannot see.
//   parity shadow (opt-in: FaultPlan::parity_plane) — a ninth plane
//       holding the XOR of all eight, maintained at write time and
//       verified at read time. Catches every single-word corruption
//       individually — including popcount-balanced or/and masks that
//       the ledger alone misses — at the cost of one extra plane of
//       traffic; meant for soak runs.
//
// Detection happens in before_rows, i.e. within the same generation
// that reads the corrupted word — the engine's guarded loop sees the
// counter move during the pass that stored the fault and rolls back.
//
// SiteMemoryGuard mirrors the non-halo subset (transient plane flips +
// stuck plane words, ledger detection) in byte-site space for the
// reference executor: the same plan draws the identical fault set at
// identical global coordinates, so reference vs bit-plane fault runs
// are like-for-like — including the detector counts.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/fault/fault.hpp"
#include "lattice/lgca/lattice.hpp"
#include "lattice/lgca/plane_kernel.hpp"
#include "lattice/lgca/plane_lattice.hpp"
#include "lattice/lgca/plane_simd.hpp"

namespace lattice::fault {

class PlaneMemoryGuard final : public lgca::PlaneRunHooks {
 public:
  explicit PlaneMemoryGuard(FaultInjector& injector) : injector_(&injector) {}

  // lgca::PlaneRunHooks. before_rows and after_rows are called
  // concurrently from the run's row bands on disjoint row ranges; all
  // guard state is per-row, and counter updates go through the
  // injector's thread-safe note_*/report_* methods.
  void run_begin(lgca::PlaneLattice& lat, std::uint32_t written_planes,
                 std::uint32_t halo_planes, std::int64_t t0) override;
  void before_rows(lgca::PlaneLattice& cur, std::int64_t t, std::int64_t y0,
                   std::int64_t y1) override;
  void after_rows(const lgca::PlaneLattice& next, std::int64_t t,
                  std::int64_t y0, std::int64_t y1) override;

 private:
  std::uint64_t payload_popcount(const std::uint64_t* rp) const noexcept;
  std::uint64_t payload_xor(const std::uint64_t* const rows[], int planes,
                            std::int64_t k) const noexcept;
  void inject_rows(lgca::PlaneLattice& cur, std::int64_t t, std::int64_t y0,
                   std::int64_t y1);
  void audit_rows(const lgca::PlaneLattice& cur, std::int64_t y0,
                  std::int64_t y1);

  FaultInjector* injector_;
  const lgca::PlaneSpanOps* ops_ = nullptr;
  std::uint32_t halo_mask_ = 0;
  std::uint32_t written_mask_ = 0;
  int n_halo_ = 0;
  int halo_planes_[lgca::PlaneLattice::kPlanes] = {};
  lgca::Boundary boundary_ = lgca::Boundary::Null;
  std::int64_t words_ = 0;
  std::int64_t height_ = 0;
  std::uint64_t tail_ = ~std::uint64_t{0};
  bool shadow_armed_ = false;
  std::vector<std::int64_t> ledger_;   // height × kPlanes populations
  std::vector<std::uint64_t> shadow_;  // height × words parity plane
};

/// The reference executor's mirror of the plane-memory fault model:
/// identical draws at identical global (generation, word) coordinates,
/// mapped onto byte sites (bit j of plane word y·words+k is bit `plane`
/// of site x = 64k + j), with the same per-(row, plane) population
/// ledger. Halo faults and the parity shadow have no site-space
/// representation; executors reject plans that arm them.
class SiteMemoryGuard {
 public:
  explicit SiteMemoryGuard(FaultInjector& injector) : injector_(&injector) {}

  /// Rebuild the ledger from the current lattice contents — start of
  /// every guarded pass, so a rollback invalidates nothing.
  void run_begin(const lgca::SiteLattice& lat);

  /// Inject the generation-t fault set into `lat`, then audit the
  /// ledger against it.
  void inject_and_audit(lgca::SiteLattice& lat, std::int64_t t);

  /// Record the post-update per-(row, plane) populations.
  void record(const lgca::SiteLattice& lat);

  FaultInjector* injector() const noexcept { return injector_; }

 private:
  void count_rows(const lgca::SiteLattice& lat,
                  std::vector<std::int64_t>& out) const;

  FaultInjector* injector_;
  std::int64_t words_ = 0;
  std::vector<std::int64_t> ledger_;  // height × kPlanes populations
  std::vector<std::int64_t> scratch_;
};

}  // namespace lattice::fault
