// Fault injection, online error detection, and recovery bookkeeping
// for the architecture simulators.
//
// The paper's throughput analysis assumes perfect silicon; real lattice
// machines suffer transient bit flips in the 2n−2-site line buffers,
// stuck-at PE outputs, and corrupted words on the SPA side channels.
// This module provides:
//
//   FaultPlan     — a seeded, deterministic description of the faults a
//                   run should suffer. Fault-free by default; a plan is
//                   "armed" only when some fault source is non-trivial.
//   FaultInjector — the runtime realization: every injection decision
//                   is a pure hash of (seed, epoch, generation, stream
//                   position), so the same plan replays the same faults
//                   and a rollback retry (which bumps the epoch) redraws
//                   the transient ones. Counters record what was
//                   injected and what the detectors caught.
//   StageAudit    — the per-stage conservation ledger: LGCA collisions
//                   conserve particles exactly, so a pipeline stage must
//                   satisfy  out_mass == in_mass − outflow  where
//                   outflow counts particles whose streaming destination
//                   lies outside the lattice (null boundaries drain, but
//                   by an exactly computable amount). Obstacle bits are
//                   static geometry and must balance on their own.
//   CorruptionError — thrown by the engine when the bounded retry
//                   budget is exhausted; carries the counter snapshot.
//
// Detection mechanisms and their guarantees are documented in
// docs/ROBUSTNESS.md. The simulators call the injector only when a
// non-null pointer is armed, so the fault-free fast paths stay intact.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/common/error.hpp"
#include "lattice/lgca/geometry.hpp"
#include "lattice/lgca/site.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::fault {

/// A persistently failed processing element: every output word of the
/// given (stage, lane) is forced through `v' = (v & and_mask) | or_mask`.
/// WSA: stage = chip index in the chain, lane = PE index within the
/// P-wide stage. SPA: stage = depth index, lane = slice index.
struct StuckAt {
  int stage = 0;
  std::int64_t lane = 0;
  lgca::Site or_mask = 0;      // bits forced high
  lgca::Site and_mask = 0xFF;  // bits forced low where cleared
};

/// Deterministic fault scenario. Default-constructed plans are
/// fault-free and cost nothing.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Transient single-bit flip probability per stored site-update word
  /// (WSA line buffers, SPA slice buffers).
  double buffer_flip_rate = 0;

  /// SPA side channels, per transferred word: single-bit corruption in
  /// transit, and whole-word drop (a framing error; the receiver sees
  /// an empty word).
  double side_flip_rate = 0;
  double side_drop_rate = 0;

  /// Persistently failed PEs.
  std::vector<StuckAt> stuck;

  bool armed() const noexcept {
    return buffer_flip_rate > 0 || side_flip_rate > 0 || side_drop_rate > 0 ||
           !stuck.empty();
  }
};

/// What was injected and what the online detectors caught.
struct FaultCounters {
  std::int64_t injected_flips = 0;  // buffer words corrupted
  std::int64_t injected_stuck = 0;  // output words altered by stuck PEs
  std::int64_t injected_side = 0;   // side-channel words corrupted/dropped

  std::int64_t detected_parity = 0;        // buffer parity mismatches
  std::int64_t detected_side = 0;          // link parity / framing errors
  std::int64_t detected_conservation = 0;  // particle-ledger violations

  std::int64_t injected() const noexcept {
    return injected_flips + injected_stuck + injected_side;
  }
  std::int64_t detected() const noexcept {
    return detected_parity + detected_side + detected_conservation;
  }
};

/// Raised when recovery gives up: the retry budget is exhausted and no
/// degradation path remains.
class CorruptionError : public Error {
 public:
  CorruptionError(const std::string& what, const FaultCounters& counters)
      : Error(what), counters_(counters) {}

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  FaultCounters counters_;
};

/// Per-stage particle ledger, maintained by a stage only while a fault
/// injector is attached (and only for gas rules, whose collisions
/// conserve mass). All quantities are accumulated from the *true* bus
/// values on the input side and the *emitted* (post-stuck) values on
/// the output side, so any corruption between those points unbalances
/// the ledger.
struct StageAudit {
  bool valid = false;  // conservation is only defined for gas rules
  std::int64_t in_mass = 0;
  std::int64_t out_mass = 0;
  std::int64_t outflow = 0;  // particles streaming off the lattice edge
  std::int64_t in_obstacles = 0;
  std::int64_t out_obstacles = 0;

  /// Collision conservation + static geometry, per generation.
  bool balanced() const noexcept {
    return !valid || (out_mass == in_mass - outflow &&
                      out_obstacles == in_obstacles);
  }

  StageAudit& operator+=(const StageAudit& o) noexcept {
    valid = valid || o.valid;
    in_mass += o.in_mass;
    out_mass += o.out_mass;
    outflow += o.outflow;
    in_obstacles += o.in_obstacles;
    out_obstacles += o.out_obstacles;
    return *this;
  }
};

/// Particles of `v` at lattice coordinate `c` whose streaming
/// destination lies outside `lattice` — the exact per-site edge drain
/// of the null-boundary update.
int site_outflow(lgca::Site v, Coord c, Extent lattice,
                 lgca::Topology topo) noexcept;

/// Runtime fault source shared by the simulators of one engine. Not
/// thread-safe: armed runs execute on the cycle-exact (serial) machine
/// models, which is where the simulated buffers live.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// True while any fault source remains active (stuck PEs disabled by
  /// remapping no longer count).
  bool armed() const noexcept;

  /// Rollback boundary: transient fault draws are keyed by the epoch,
  /// so a retry of the same generations redraws them.
  void bump_epoch() noexcept { ++epoch_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

  // ---- injection (called by the simulators) ----

  /// Possibly flip one bit of the word stored for the site update at
  /// (generation t, stream position pos). Deterministic in
  /// (seed, epoch, t, pos).
  lgca::Site corrupt_stored(std::int64_t t, std::int64_t pos,
                            lgca::Site v) noexcept;

  /// Possibly corrupt or drop a side-channel word in transit. `key`
  /// must be unique per transfer within a generation.
  lgca::Site corrupt_side_word(std::int64_t t, std::int64_t key,
                               lgca::Site v) noexcept;

  /// Apply any active stuck-at masks for (stage, lane).
  lgca::Site apply_stuck(int stage, std::int64_t lane, lgca::Site v) noexcept;

  /// True if any active stuck-at fault targets this stage/lane pair —
  /// lets hot loops skip the mask scan.
  bool has_stuck() const noexcept {
    return !stuck_disabled_ && !plan_.stuck.empty();
  }

  // ---- detection reporting (called by the simulators' checkers) ----
  // Each report lands both in this injector's counters (the engine's
  // rollback logic keys off those) and in the global metrics registry
  // as fault.detected.* (docs/OBSERVABILITY.md).

  void report_parity_error() noexcept {
    ++counters_.detected_parity;
    obs::count(obs_.detected_parity, 1);
  }
  void report_side_error() noexcept {
    ++counters_.detected_side;
    obs::count(obs_.detected_side, 1);
  }
  void report_conservation_error() noexcept {
    ++counters_.detected_conservation;
    obs::count(obs_.detected_conservation, 1);
  }

  // ---- graceful degradation ----

  /// Take all stuck PEs out of the datapath (the SPA remaps a failed
  /// slice's columns onto the surviving pipelines). Returns the number
  /// of distinct lanes removed; they stop injecting from now on.
  int disable_stuck() noexcept;

  /// Distinct lanes removed by disable_stuck so far.
  int remapped_lanes() const noexcept { return remapped_lanes_; }

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  /// Registry ids for the fault.* metrics, resolved once per injector
  /// (all kInvalidId in LATTICE_OBS_ENABLED=0 builds).
  struct ObsIds {
    obs::MetricsRegistry::Id injected_flips = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id injected_stuck = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id injected_side = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_parity =
        obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_side = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_conservation =
        obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id remapped = obs::MetricsRegistry::kInvalidId;
  };

  FaultPlan plan_;
  std::uint64_t epoch_ = 0;
  bool stuck_disabled_ = false;
  int remapped_lanes_ = 0;
  FaultCounters counters_;
  ObsIds obs_;
};

}  // namespace lattice::fault
