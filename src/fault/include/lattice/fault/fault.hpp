// Fault injection, online error detection, and recovery bookkeeping
// for the architecture simulators.
//
// The paper's throughput analysis assumes perfect silicon; real lattice
// machines suffer transient bit flips in the 2n−2-site line buffers,
// stuck-at PE outputs, and corrupted words on the SPA side channels.
// This module provides:
//
//   FaultPlan     — a seeded, deterministic description of the faults a
//                   run should suffer. Fault-free by default; a plan is
//                   "armed" only when some fault source is non-trivial.
//   FaultInjector — the runtime realization: every injection decision
//                   is a pure hash of (seed, epoch, generation, stream
//                   position), so the same plan replays the same faults
//                   and a rollback retry (which bumps the epoch) redraws
//                   the transient ones. Counters record what was
//                   injected and what the detectors caught.
//   StageAudit    — the per-stage conservation ledger: LGCA collisions
//                   conserve particles exactly, so a pipeline stage must
//                   satisfy  out_mass == in_mass − outflow  where
//                   outflow counts particles whose streaming destination
//                   lies outside the lattice (null boundaries drain, but
//                   by an exactly computable amount). Obstacle bits are
//                   static geometry and must balance on their own.
//   CorruptionError — thrown by the engine when the bounded retry
//                   budget is exhausted; carries the counter snapshot.
//
// Detection mechanisms and their guarantees are documented in
// docs/ROBUSTNESS.md. The simulators call the injector only when a
// non-null pointer is armed, so the fault-free fast paths stay intact.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/common/error.hpp"
#include "lattice/lgca/geometry.hpp"
#include "lattice/lgca/site.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::fault {

/// A persistently failed processing element: every output word of the
/// given (stage, lane) is forced through `v' = (v & and_mask) | or_mask`.
/// WSA: stage = chip index in the chain, lane = PE index within the
/// P-wide stage. SPA: stage = depth index, lane = slice index.
struct StuckAt {
  int stage = 0;
  std::int64_t lane = 0;
  lgca::Site or_mask = 0;      // bits forced high
  lgca::Site and_mask = 0xFF;  // bits forced low where cleared
};

/// A persistently failed plane-memory word in the bit-plane backend:
/// every read of plane `plane` at global word position `word` (row-major
/// y * words_per_row + k, *lattice* coordinates, so the same plan hits
/// the same sites on every backend and SIMD level) is forced through
/// `w' = (w & and_mask) | or_mask`. Models a stuck DRAM column in
/// CAM-8-style plane-resident site memory.
struct StuckPlaneWord {
  int plane = 0;
  std::int64_t word = 0;
  std::uint64_t or_mask = 0;
  std::uint64_t and_mask = ~std::uint64_t{0};
};

/// Deterministic fault scenario. Default-constructed plans are
/// fault-free and cost nothing.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Transient single-bit flip probability per stored site-update word
  /// (WSA line buffers, SPA slice buffers).
  double buffer_flip_rate = 0;

  /// SPA side channels, per transferred word: single-bit corruption in
  /// transit, and whole-word drop (a framing error; the receiver sees
  /// an empty word).
  double side_flip_rate = 0;
  double side_drop_rate = 0;

  /// Persistently failed PEs.
  std::vector<StuckAt> stuck;

  /// Bit-plane backend plane memory, per (generation, word-column):
  /// transient single-bit flip probability in a stored plane word. Keyed
  /// by global lattice coordinates, so reference, scalar64, AVX2 and
  /// AVX-512 all draw the identical fault set for a given plan.
  double plane_flip_rate = 0;

  /// Shift-halo guard words, per (generation, row): transient single-bit
  /// flip probability in the left/right guard of a halo plane. Only the
  /// bit-plane backend has a halo representation to corrupt.
  double halo_flip_rate = 0;

  /// Persistently failed plane-memory words.
  std::vector<StuckPlaneWord> stuck_planes;

  /// Maintain and verify a parity-shadow plane (XOR of all eight planes
  /// per word) during armed bit-plane runs. A detector, not a fault: it
  /// catches any corruption of a single plane word regardless of whether
  /// the per-plane population ledger balances. Costs one extra plane of
  /// traffic, so it is opt-in (soak runs).
  bool parity_plane = false;

  bool armed() const noexcept {
    return arms_machine_memory() || arms_plane_memory();
  }

  /// Fault sources realized by the byte-pipeline machine simulators
  /// (WSA / SPA / WSA-E line buffers, side channels, PEs).
  bool arms_machine_memory() const noexcept {
    return buffer_flip_rate > 0 || side_flip_rate > 0 || side_drop_rate > 0 ||
           !stuck.empty();
  }

  /// Fault sources (and detectors) realized against plane-word site
  /// memory (bit-plane backend; the reference executor mirrors the
  /// non-halo subset in site space).
  bool arms_plane_memory() const noexcept {
    return plane_flip_rate > 0 || halo_flip_rate > 0 ||
           !stuck_planes.empty() || parity_plane;
  }
};

/// What was injected and what the online detectors caught.
struct FaultCounters {
  std::int64_t injected_flips = 0;  // buffer words corrupted
  std::int64_t injected_stuck = 0;  // words altered by stuck PEs / planes
  std::int64_t injected_side = 0;   // side-channel words corrupted/dropped
  std::int64_t injected_plane = 0;  // plane/halo words with transient flips

  std::int64_t detected_parity = 0;        // buffer parity mismatches
  std::int64_t detected_side = 0;          // link parity / framing errors
  std::int64_t detected_conservation = 0;  // particle-ledger violations
  std::int64_t detected_ledger = 0;        // per-plane population mismatches
  std::int64_t detected_canary = 0;        // halo guard canary mismatches
  std::int64_t detected_shadow = 0;        // parity-shadow plane mismatches

  std::int64_t injected() const noexcept {
    return injected_flips + injected_stuck + injected_side + injected_plane;
  }
  std::int64_t detected() const noexcept {
    return detected_parity + detected_side + detected_conservation +
           detected_ledger + detected_canary + detected_shadow;
  }
};

/// Raised when recovery gives up: the retry budget is exhausted and no
/// degradation path remains.
class CorruptionError : public Error {
 public:
  CorruptionError(const std::string& what, const FaultCounters& counters)
      : Error(what), counters_(counters) {}

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  FaultCounters counters_;
};

/// Per-stage particle ledger, maintained by a stage only while a fault
/// injector is attached (and only for gas rules, whose collisions
/// conserve mass). All quantities are accumulated from the *true* bus
/// values on the input side and the *emitted* (post-stuck) values on
/// the output side, so any corruption between those points unbalances
/// the ledger.
struct StageAudit {
  bool valid = false;  // conservation is only defined for gas rules
  std::int64_t in_mass = 0;
  std::int64_t out_mass = 0;
  std::int64_t outflow = 0;  // particles streaming off the lattice edge
  std::int64_t in_obstacles = 0;
  std::int64_t out_obstacles = 0;

  /// Collision conservation + static geometry, per generation.
  bool balanced() const noexcept {
    return !valid || (out_mass == in_mass - outflow &&
                      out_obstacles == in_obstacles);
  }

  StageAudit& operator+=(const StageAudit& o) noexcept {
    valid = valid || o.valid;
    in_mass += o.in_mass;
    out_mass += o.out_mass;
    outflow += o.outflow;
    in_obstacles += o.in_obstacles;
    out_obstacles += o.out_obstacles;
    return *this;
  }
};

/// Particles of `v` at lattice coordinate `c` whose streaming
/// destination lies outside `lattice` — the exact per-site edge drain
/// of the null-boundary update.
int site_outflow(lgca::Site v, Coord c, Extent lattice,
                 lgca::Topology topo) noexcept;

/// Runtime fault source shared by the simulators of one engine. The
/// byte-pipeline methods (corrupt_stored, corrupt_side_word, apply_stuck)
/// are not thread-safe: armed runs execute on the cycle-exact (serial)
/// machine models, which is where the simulated buffers live. The
/// plane-memory methods (draw_*, note_*, report_* for ledger / canary /
/// shadow) ARE thread-safe — detection runs inside the bit-plane
/// backend's row bands — with relaxed atomic counter updates.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// True while any fault source remains active (stuck PEs disabled by
  /// remapping no longer count).
  bool armed() const noexcept;

  /// Rollback boundary: transient fault draws are keyed by the epoch,
  /// so a retry of the same generations redraws them.
  void bump_epoch() noexcept { ++epoch_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

  // ---- injection (called by the simulators) ----

  /// Possibly flip one bit of the word stored for the site update at
  /// (generation t, stream position pos). Deterministic in
  /// (seed, epoch, t, pos).
  lgca::Site corrupt_stored(std::int64_t t, std::int64_t pos,
                            lgca::Site v) noexcept;

  /// Possibly corrupt or drop a side-channel word in transit. `key`
  /// must be unique per transfer within a generation.
  lgca::Site corrupt_side_word(std::int64_t t, std::int64_t key,
                               lgca::Site v) noexcept;

  /// Apply any active stuck-at masks for (stage, lane).
  lgca::Site apply_stuck(int stage, std::int64_t lane, lgca::Site v) noexcept;

  /// True if any active stuck-at fault targets this stage/lane pair —
  /// lets hot loops skip the mask scan.
  bool has_stuck() const noexcept {
    return !stuck_disabled_ && !plan_.stuck.empty();
  }

  // ---- plane-memory injection (bit-plane backend + reference oracle) ----
  // Draws are pure functions of (seed, epoch, t, position), like
  // corrupt_stored, but drawing and accounting are split: the caller
  // masks the returned flip against the lattice tail (a draw landing in
  // column padding injects nothing, identically on every backend) and
  // then notes what it actually applied.

  /// Flip mask for the plane word at global position `word` (row-major
  /// y * words_per_row + k) read at generation t. Returns 0 (the common
  /// case) or a single-bit mask; *plane receives the target plane.
  std::uint64_t draw_plane_flip(std::int64_t t, std::int64_t word,
                                int* plane) const noexcept;

  /// Flip mask for a shift-halo guard word of `row` read at generation
  /// t. *plane_sel is a raw 3-bit selector the caller maps onto its halo
  /// plane set; *left picks the guard (true = index -1, false = index
  /// words_per_row).
  std::uint64_t draw_halo_flip(std::int64_t t, std::int64_t row,
                               int* plane_sel, bool* left) const noexcept;

  /// Active stuck plane-word masks; empty once degrade retired them.
  const std::vector<StuckPlaneWord>& stuck_planes() const noexcept {
    static const std::vector<StuckPlaneWord> kNone;
    return stuck_planes_disabled_ ? kNone : plan_.stuck_planes;
  }
  bool has_stuck_planes() const noexcept {
    return !stuck_planes_disabled_ && !plan_.stuck_planes.empty();
  }

  /// Counter bumps for plane faults the caller applied (thread-safe).
  void note_plane_faults(std::int64_t n) noexcept;
  void note_stuck_planes(std::int64_t n) noexcept;

  // ---- detection reporting (called by the simulators' checkers) ----
  // Each report lands both in this injector's counters (the engine's
  // rollback logic keys off those) and in the global metrics registry
  // as fault.detected.* (docs/OBSERVABILITY.md).

  void report_parity_error() noexcept {
    ++counters_.detected_parity;
    obs::count(obs_.detected_parity, 1);
  }
  void report_side_error() noexcept {
    ++counters_.detected_side;
    obs::count(obs_.detected_side, 1);
  }
  void report_conservation_error() noexcept {
    ++counters_.detected_conservation;
    obs::count(obs_.detected_conservation, 1);
  }

  // Plane-memory detector reports; thread-safe (called from row bands).
  void report_ledger_error(std::int64_t n = 1) noexcept;
  void report_canary_error(std::int64_t n = 1) noexcept;
  void report_shadow_error(std::int64_t n = 1) noexcept;

  // ---- graceful degradation ----

  /// Take all stuck PEs out of the datapath (the SPA remaps a failed
  /// slice's columns onto the surviving pipelines). Returns the number
  /// of distinct lanes removed; they stop injecting from now on.
  int disable_stuck() noexcept;

  /// Take all stuck plane-memory words out of service (the bit-plane
  /// backend's degrade step: the modeled machine remaps the failed DRAM
  /// columns onto spares). Returns the number of distinct (plane, word)
  /// cells retired.
  int disable_stuck_planes() noexcept;

  /// Distinct lanes/plane words removed by the disable_* calls so far.
  int remapped_lanes() const noexcept { return remapped_lanes_; }

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  /// Registry ids for the fault.* metrics, resolved once per injector
  /// (all kInvalidId in LATTICE_OBS_ENABLED=0 builds).
  struct ObsIds {
    obs::MetricsRegistry::Id injected_flips = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id injected_stuck = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id injected_side = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_parity =
        obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_side = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_conservation =
        obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id injected_plane = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_ledger = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_canary = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id detected_shadow = obs::MetricsRegistry::kInvalidId;
    obs::MetricsRegistry::Id remapped = obs::MetricsRegistry::kInvalidId;
  };

  FaultPlan plan_;
  std::uint64_t epoch_ = 0;
  bool stuck_disabled_ = false;
  bool stuck_planes_disabled_ = false;
  int remapped_lanes_ = 0;
  FaultCounters counters_;
  ObsIds obs_;
};

}  // namespace lattice::fault
