#include "lattice/fault/fault.hpp"

#include <atomic>

namespace lattice::fault {

namespace {

/// SplitMix64-style finalizer over a chained key. Every injection
/// decision is a pure function of its inputs, which is what makes fault
/// runs replayable and rollback retries independent.
constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

constexpr std::uint64_t hash4(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c, std::uint64_t d) noexcept {
  return mix(mix(mix(mix(0x8000000000000000ULL, a), b), c), d);
}

/// Uniform double in [0, 1) from the top 53 bits.
constexpr double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Relaxed add on a plain counter field. The plane-memory path reports
/// from concurrent row bands; a rollback decision only reads the
/// counters between passes, after the band barrier, so relaxed ordering
/// suffices.
inline void atomic_add(std::int64_t& field, std::int64_t n) noexcept {
  std::atomic_ref<std::int64_t>(field).fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

int site_outflow(lgca::Site v, Coord c, Extent lattice,
                 lgca::Topology topo) noexcept {
  // Only the outermost ring can lose particles (all offsets are ±1).
  if (c.x > 0 && c.x < lattice.width - 1 && c.y > 0 &&
      c.y < lattice.height - 1) {
    return 0;
  }
  int n = 0;
  const int channels = lgca::channel_count(topo);
  for (int d = 0; d < channels; ++d) {
    if ((v & lgca::channel_bit(d)) == 0) continue;
    if (!lattice.contains(lgca::neighbor_coord(topo, c, d))) ++n;
  }
  return n;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  LATTICE_REQUIRE(plan_.buffer_flip_rate >= 0 && plan_.buffer_flip_rate <= 1,
                  "buffer_flip_rate must be in [0, 1]");
  LATTICE_REQUIRE(plan_.side_flip_rate >= 0 && plan_.side_flip_rate <= 1,
                  "side_flip_rate must be in [0, 1]");
  LATTICE_REQUIRE(plan_.side_drop_rate >= 0 && plan_.side_drop_rate <= 1,
                  "side_drop_rate must be in [0, 1]");
  for (const StuckAt& s : plan_.stuck) {
    LATTICE_REQUIRE(s.stage >= 0 && s.lane >= 0,
                    "stuck-at stage/lane must be non-negative");
  }
  LATTICE_REQUIRE(plan_.plane_flip_rate >= 0 && plan_.plane_flip_rate <= 1,
                  "plane_flip_rate must be in [0, 1]");
  LATTICE_REQUIRE(plan_.halo_flip_rate >= 0 && plan_.halo_flip_rate <= 1,
                  "halo_flip_rate must be in [0, 1]");
  for (const StuckPlaneWord& s : plan_.stuck_planes) {
    LATTICE_REQUIRE(s.plane >= 0 && s.plane < 8,
                    "stuck plane index must be in [0, 8)");
    LATTICE_REQUIRE(s.word >= 0, "stuck plane word must be non-negative");
  }
  if constexpr (obs::kEnabled) {
    obs_.injected_flips = obs::counter_id("fault.injected.flips");
    obs_.injected_stuck = obs::counter_id("fault.injected.stuck");
    obs_.injected_side = obs::counter_id("fault.injected.side");
    obs_.detected_parity = obs::counter_id("fault.detected.parity");
    obs_.detected_side = obs::counter_id("fault.detected.side");
    obs_.detected_conservation =
        obs::counter_id("fault.detected.conservation");
    obs_.injected_plane = obs::counter_id("fault.injected.plane");
    obs_.detected_ledger = obs::counter_id("fault.detected.ledger");
    obs_.detected_canary = obs::counter_id("fault.detected.canary");
    obs_.detected_shadow = obs::counter_id("fault.detected.shadow");
    obs_.remapped = obs::counter_id("fault.remapped_lanes");
  }
}

bool FaultInjector::armed() const noexcept {
  return plan_.buffer_flip_rate > 0 || plan_.side_flip_rate > 0 ||
         plan_.side_drop_rate > 0 || has_stuck() ||
         plan_.plane_flip_rate > 0 || plan_.halo_flip_rate > 0 ||
         has_stuck_planes() || plan_.parity_plane;
}

lgca::Site FaultInjector::corrupt_stored(std::int64_t t, std::int64_t pos,
                                         lgca::Site v) noexcept {
  if (plan_.buffer_flip_rate <= 0) return v;
  const std::uint64_t h =
      hash4(plan_.seed, epoch_ ^ 0x627573666c697073ULL,
            static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(pos));
  if (to_unit(h) >= plan_.buffer_flip_rate) return v;
  ++counters_.injected_flips;
  obs::count(obs_.injected_flips, 1);
  return static_cast<lgca::Site>(v ^ (1u << ((h >> 56) & 7)));
}

lgca::Site FaultInjector::corrupt_side_word(std::int64_t t, std::int64_t key,
                                            lgca::Site v) noexcept {
  if (plan_.side_flip_rate <= 0 && plan_.side_drop_rate <= 0) return v;
  const std::uint64_t h =
      hash4(plan_.seed, epoch_ ^ 0x736964656368616eULL,
            static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(key));
  const double u = to_unit(h);
  if (u < plan_.side_drop_rate) {
    ++counters_.injected_side;
    obs::count(obs_.injected_side, 1);
    return 0;  // framing error: the word never arrives
  }
  if (u < plan_.side_drop_rate + plan_.side_flip_rate) {
    ++counters_.injected_side;
    obs::count(obs_.injected_side, 1);
    return static_cast<lgca::Site>(v ^ (1u << ((h >> 56) & 7)));
  }
  return v;
}

lgca::Site FaultInjector::apply_stuck(int stage, std::int64_t lane,
                                      lgca::Site v) noexcept {
  if (stuck_disabled_) return v;
  for (const StuckAt& s : plan_.stuck) {
    if (s.stage != stage || s.lane != lane) continue;
    const auto forced =
        static_cast<lgca::Site>((v & s.and_mask) | s.or_mask);
    if (forced != v) {
      ++counters_.injected_stuck;
      obs::count(obs_.injected_stuck, 1);
      v = forced;
    }
  }
  return v;
}

std::uint64_t FaultInjector::draw_plane_flip(std::int64_t t, std::int64_t word,
                                             int* plane) const noexcept {
  if (plan_.plane_flip_rate <= 0) return 0;
  const std::uint64_t h =
      hash4(plan_.seed, epoch_ ^ 0x706c616e65666c70ULL,
            static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(word));
  if (to_unit(h) >= plan_.plane_flip_rate) return 0;
  // to_unit consumes bits 11..63; the target position comes from the
  // independent low bits.
  *plane = static_cast<int>(h & 7);
  return std::uint64_t{1} << ((h >> 3) & 63);
}

std::uint64_t FaultInjector::draw_halo_flip(std::int64_t t, std::int64_t row,
                                            int* plane_sel,
                                            bool* left) const noexcept {
  if (plan_.halo_flip_rate <= 0) return 0;
  const std::uint64_t h =
      hash4(plan_.seed, epoch_ ^ 0x68616c6f666c6970ULL,
            static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(row));
  if (to_unit(h) >= plan_.halo_flip_rate) return 0;
  *plane_sel = static_cast<int>(h & 7);
  *left = ((h >> 9) & 1) != 0;
  return std::uint64_t{1} << ((h >> 3) & 63);
}

void FaultInjector::note_plane_faults(std::int64_t n) noexcept {
  if (n <= 0) return;
  atomic_add(counters_.injected_plane, n);
  obs::count(obs_.injected_plane, n);
}

void FaultInjector::note_stuck_planes(std::int64_t n) noexcept {
  if (n <= 0) return;
  atomic_add(counters_.injected_stuck, n);
  obs::count(obs_.injected_stuck, n);
}

void FaultInjector::report_ledger_error(std::int64_t n) noexcept {
  if (n <= 0) return;
  atomic_add(counters_.detected_ledger, n);
  obs::count(obs_.detected_ledger, n);
}

void FaultInjector::report_canary_error(std::int64_t n) noexcept {
  if (n <= 0) return;
  atomic_add(counters_.detected_canary, n);
  obs::count(obs_.detected_canary, n);
}

void FaultInjector::report_shadow_error(std::int64_t n) noexcept {
  if (n <= 0) return;
  atomic_add(counters_.detected_shadow, n);
  obs::count(obs_.detected_shadow, n);
}

int FaultInjector::disable_stuck_planes() noexcept {
  if (stuck_planes_disabled_ || plan_.stuck_planes.empty()) return 0;
  stuck_planes_disabled_ = true;
  // Count distinct (plane, word) cells — one spare DRAM column each.
  int distinct = 0;
  for (std::size_t i = 0; i < plan_.stuck_planes.size(); ++i) {
    bool dup = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (plan_.stuck_planes[j].plane == plan_.stuck_planes[i].plane &&
          plan_.stuck_planes[j].word == plan_.stuck_planes[i].word) {
        dup = true;
        break;
      }
    }
    if (!dup) ++distinct;
  }
  remapped_lanes_ += distinct;
  obs::count(obs_.remapped, distinct);
  return distinct;
}

int FaultInjector::disable_stuck() noexcept {
  if (stuck_disabled_ || plan_.stuck.empty()) return 0;
  stuck_disabled_ = true;
  // Count distinct (stage, lane) pairs — one remapped PE each.
  int distinct = 0;
  for (std::size_t i = 0; i < plan_.stuck.size(); ++i) {
    bool dup = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (plan_.stuck[j].stage == plan_.stuck[i].stage &&
          plan_.stuck[j].lane == plan_.stuck[i].lane) {
        dup = true;
        break;
      }
    }
    if (!dup) ++distinct;
  }
  remapped_lanes_ += distinct;
  obs::count(obs_.remapped, distinct);
  return distinct;
}

}  // namespace lattice::fault
