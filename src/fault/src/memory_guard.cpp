#include "lattice/fault/memory_guard.hpp"

#include <bit>

#include "lattice/common/error.hpp"

namespace lattice::fault {

using lgca::PlaneLattice;

void PlaneMemoryGuard::run_begin(PlaneLattice& lat,
                                 std::uint32_t written_planes,
                                 std::uint32_t halo_planes,
                                 std::int64_t /*t0*/) {
  ops_ = &lgca::plane_span_ops(lgca::plane_simd_active());
  halo_mask_ = halo_planes;
  written_mask_ = written_planes;
  n_halo_ = 0;
  for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
    if (((halo_mask_ >> p) & 1u) != 0) halo_planes_[n_halo_++] = p;
  }
  boundary_ = lat.boundary();
  words_ = lat.words_per_row();
  height_ = lat.extent().height;
  tail_ = lat.tail_mask();
  shadow_armed_ = injector_->plan().parity_plane;
  ledger_.assign(
      static_cast<std::size_t>(height_ * PlaneLattice::kPlanes), 0);
  for (std::int64_t y = 0; y < height_; ++y) {
    for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
      ledger_[static_cast<std::size_t>(y * PlaneLattice::kPlanes + p)] =
          static_cast<std::int64_t>(payload_popcount(lat.row(p, y)));
    }
  }
  if (shadow_armed_) {
    shadow_.assign(static_cast<std::size_t>(height_ * words_), 0);
    for (std::int64_t y = 0; y < height_; ++y) {
      const std::uint64_t* rows[PlaneLattice::kPlanes];
      for (int p = 0; p < PlaneLattice::kPlanes; ++p) rows[p] = lat.row(p, y);
      for (std::int64_t k = 0; k < words_; ++k) {
        shadow_[static_cast<std::size_t>(y * words_ + k)] =
            payload_xor(rows, PlaneLattice::kPlanes, k);
      }
    }
  }
}

std::uint64_t PlaneMemoryGuard::payload_popcount(
    const std::uint64_t* rp) const noexcept {
  if (words_ == 0) return 0;
  return ops_->popcount(rp, words_ - 1) +
         static_cast<std::uint64_t>(std::popcount(rp[words_ - 1] & tail_));
}

std::uint64_t PlaneMemoryGuard::payload_xor(const std::uint64_t* const rows[],
                                            int planes,
                                            std::int64_t k) const noexcept {
  std::uint64_t x = 0;
  for (int p = 0; p < planes; ++p) x ^= rows[p][k];
  if (k == words_ - 1) x &= tail_;
  return x;
}

void PlaneMemoryGuard::inject_rows(PlaneLattice& cur, std::int64_t t,
                                   std::int64_t y0, std::int64_t y1) {
  if (words_ == 0) return;
  std::int64_t stuck_applied = 0;
  for (const StuckPlaneWord& s : injector_->stuck_planes()) {
    const std::int64_t y = s.word / words_;
    const std::int64_t k = s.word % words_;
    if (y < y0 || y >= y1 || y >= height_) continue;
    std::uint64_t* rp = cur.row(s.plane, y);
    // Apply the or/and masks to payload bits only: a stuck column past
    // the lattice edge must not conjure particles in the padding, on
    // any backend.
    const std::uint64_t keep = k == words_ - 1 ? tail_ : ~std::uint64_t{0};
    const std::uint64_t forced =
        (((rp[k] & s.and_mask) | s.or_mask) & keep) | (rp[k] & ~keep);
    if (forced != rp[k]) {
      rp[k] = forced;
      ++stuck_applied;
    }
  }
  if (stuck_applied != 0) injector_->note_stuck_planes(stuck_applied);

  std::int64_t applied = 0;
  if (injector_->plan().plane_flip_rate > 0) {
    for (std::int64_t y = y0; y < y1; ++y) {
      for (std::int64_t k = 0; k < words_; ++k) {
        int plane = 0;
        std::uint64_t mask =
            injector_->draw_plane_flip(t, y * words_ + k, &plane);
        if (mask == 0) continue;
        if (k == words_ - 1) mask &= tail_;
        if (mask == 0) continue;  // the draw landed in column padding
        cur.row(plane, y)[k] ^= mask;
        ++applied;
      }
    }
  }
  if (injector_->plan().halo_flip_rate > 0 && n_halo_ > 0) {
    for (std::int64_t y = y0; y < y1; ++y) {
      int sel = 0;
      bool left = false;
      const std::uint64_t mask = injector_->draw_halo_flip(t, y, &sel, &left);
      if (mask == 0) continue;
      std::uint64_t* rp = cur.row(halo_planes_[sel % n_halo_], y);
      rp[left ? -1 : words_] ^= mask;
      ++applied;
    }
  }
  if (applied != 0) injector_->note_plane_faults(applied);
}

void PlaneMemoryGuard::audit_rows(const PlaneLattice& cur, std::int64_t y0,
                                  std::int64_t y1) {
  if (words_ == 0) return;
  const std::int64_t w = cur.extent().width;
  const int r = static_cast<int>(w % PlaneLattice::kWordBits);
  const int hi = static_cast<int>((w - 1) % PlaneLattice::kWordBits);
  std::int64_t ledger_bad = 0;
  std::int64_t canary_bad = 0;
  std::int64_t shadow_bad = 0;
  for (std::int64_t y = y0; y < y1; ++y) {
    const std::uint64_t* rows[PlaneLattice::kPlanes];
    for (int p = 0; p < PlaneLattice::kPlanes; ++p) rows[p] = cur.row(p, y);
    for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
      const auto pop = static_cast<std::int64_t>(payload_popcount(rows[p]));
      if (pop !=
          ledger_[static_cast<std::size_t>(y * PlaneLattice::kPlanes + p)]) {
        ++ledger_bad;
      }
    }
    for (int i = 0; i < n_halo_; ++i) {
      // Recompute what prepare_shift_halo must have left in the guard
      // words from the (possibly corrupted) payload; any divergence —
      // a flipped guard bit, or a payload flip that staled the wrap —
      // is a canary hit.
      const std::uint64_t* rp = rows[halo_planes_[i]];
      bool ok;
      if (boundary_ == lgca::Boundary::Null) {
        ok = rp[-1] == 0 && rp[words_] == 0 &&
             (rp[words_ - 1] & ~tail_) == 0;
      } else {
        const std::uint64_t first = words_ == 1 ? rp[0] & tail_ : rp[0];
        const std::uint64_t last = rp[words_ - 1] & tail_;
        const std::uint64_t exp_left = hi == 63 ? last : last << (63 - hi);
        ok = rp[words_] == first && rp[-1] == exp_left &&
             (r == 0 || rp[words_ - 1] == (last | (first << r)));
      }
      if (!ok) ++canary_bad;
    }
    if (shadow_armed_) {
      for (std::int64_t k = 0; k < words_; ++k) {
        if (payload_xor(rows, PlaneLattice::kPlanes, k) !=
            shadow_[static_cast<std::size_t>(y * words_ + k)]) {
          ++shadow_bad;
        }
      }
    }
  }
  if (ledger_bad != 0) injector_->report_ledger_error(ledger_bad);
  if (canary_bad != 0) injector_->report_canary_error(canary_bad);
  if (shadow_bad != 0) injector_->report_shadow_error(shadow_bad);
}

void PlaneMemoryGuard::before_rows(PlaneLattice& cur, std::int64_t t,
                                   std::int64_t y0, std::int64_t y1) {
  inject_rows(cur, t, y0, y1);
  audit_rows(cur, y0, y1);
}

void PlaneMemoryGuard::after_rows(const PlaneLattice& next, std::int64_t /*t*/,
                                  std::int64_t y0, std::int64_t y1) {
  if (words_ == 0) return;
  for (std::int64_t y = y0; y < y1; ++y) {
    for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
      if (((written_mask_ >> p) & 1u) == 0) continue;
      ledger_[static_cast<std::size_t>(y * PlaneLattice::kPlanes + p)] =
          static_cast<std::int64_t>(payload_popcount(next.row(p, y)));
    }
    if (shadow_armed_) {
      const std::uint64_t* rows[PlaneLattice::kPlanes];
      for (int p = 0; p < PlaneLattice::kPlanes; ++p) rows[p] = next.row(p, y);
      for (std::int64_t k = 0; k < words_; ++k) {
        shadow_[static_cast<std::size_t>(y * words_ + k)] =
            payload_xor(rows, PlaneLattice::kPlanes, k);
      }
    }
  }
}

void SiteMemoryGuard::count_rows(const lgca::SiteLattice& lat,
                                 std::vector<std::int64_t>& out) const {
  const Extent e = lat.extent();
  out.assign(static_cast<std::size_t>(e.height * PlaneLattice::kPlanes), 0);
  for (std::int64_t y = 0; y < e.height; ++y) {
    std::int64_t* row =
        out.data() + static_cast<std::size_t>(y * PlaneLattice::kPlanes);
    for (std::int64_t x = 0; x < e.width; ++x) {
      const lgca::Site v = lat.at({x, y});
      for (int p = 0; p < PlaneLattice::kPlanes; ++p) row[p] += (v >> p) & 1;
    }
  }
}

void SiteMemoryGuard::run_begin(const lgca::SiteLattice& lat) {
  words_ = (lat.extent().width + PlaneLattice::kWordBits - 1) /
           PlaneLattice::kWordBits;
  count_rows(lat, ledger_);
}

void SiteMemoryGuard::inject_and_audit(lgca::SiteLattice& lat,
                                       std::int64_t t) {
  const Extent e = lat.extent();
  if (words_ == 0 || e.area() == 0) return;
  std::int64_t stuck_applied = 0;
  for (const StuckPlaneWord& s : injector_->stuck_planes()) {
    const std::int64_t y = s.word / words_;
    const std::int64_t k = s.word % words_;
    if (y >= e.height) continue;
    bool changed = false;
    for (int j = 0; j < PlaneLattice::kWordBits; ++j) {
      const std::int64_t x = k * PlaneLattice::kWordBits + j;
      if (x >= e.width) break;
      lgca::Site& v = lat.at({x, y});
      const bool bit = ((v >> s.plane) & 1) != 0;
      const bool forced = (bit && ((s.and_mask >> j) & 1) != 0) ||
                          ((s.or_mask >> j) & 1) != 0;
      if (forced != bit) {
        v = static_cast<lgca::Site>(v ^ (1u << s.plane));
        changed = true;
      }
    }
    if (changed) ++stuck_applied;
  }
  if (stuck_applied != 0) injector_->note_stuck_planes(stuck_applied);

  std::int64_t applied = 0;
  if (injector_->plan().plane_flip_rate > 0) {
    for (std::int64_t y = 0; y < e.height; ++y) {
      for (std::int64_t k = 0; k < words_; ++k) {
        int plane = 0;
        const std::uint64_t mask =
            injector_->draw_plane_flip(t, y * words_ + k, &plane);
        if (mask == 0) continue;
        const std::int64_t x =
            k * PlaneLattice::kWordBits + std::countr_zero(mask);
        if (x >= e.width) continue;  // the draw landed in column padding
        lgca::Site& v = lat.at({x, y});
        v = static_cast<lgca::Site>(v ^ (1u << plane));
        ++applied;
      }
    }
  }
  if (applied != 0) injector_->note_plane_faults(applied);

  count_rows(lat, scratch_);
  std::int64_t bad = 0;
  for (std::size_t i = 0; i < ledger_.size(); ++i) {
    if (scratch_[i] != ledger_[i]) ++bad;
  }
  if (bad != 0) injector_->report_ledger_error(bad);
}

void SiteMemoryGuard::record(const lgca::SiteLattice& lat) {
  count_rows(lat, ledger_);
}

}  // namespace lattice::fault
