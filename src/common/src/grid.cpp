// Intentionally minimal: Grid is header-only; this TU anchors the
// library target and provides a home for future non-template helpers.
#include "lattice/common/grid.hpp"

namespace lattice {

static_assert(linear_index({4, 3}, {2, 1}) == 6);
static_assert(coord_of({4, 3}, 6) == Coord{2, 1});
static_assert(wrap(-1, 5) == 4);
static_assert(wrap(5, 5) == 0);

}  // namespace lattice
