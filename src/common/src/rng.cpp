#include "lattice/common/rng.hpp"

namespace lattice {

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  SplitMix64 mix(master ^ (0xa0761d6478bd642fULL * (index + 1)));
  // Burn one output so adjacent indices decorrelate even for small masters.
  mix.next();
  return mix.next();
}

}  // namespace lattice
