#include "lattice/common/thread_pool.hpp"

#include <algorithm>
#include <cstdio>

#include "lattice/common/error.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::common {

namespace {

// Pool instrumentation (docs/OBSERVABILITY.md): job/task counts, the
// submitted bag size as a gauge, and latency histograms. Per-worker
// busy time lets a profile compute each worker's busy fraction; all
// pools in the process share one namespace, like the registry itself.
struct PoolObs {
  obs::MetricsRegistry::Id jobs;        // dispatches (task bags + lane sets)
  obs::MetricsRegistry::Id tasks;       // tasks executed, all executors
  obs::MetricsRegistry::Id queue_depth; // gauge: tasks in the current bag
  obs::MetricsRegistry::Id job_ns;      // histogram: whole-job latency
  obs::MetricsRegistry::Id task_ns;     // histogram: single-task latency
  obs::MetricsRegistry::Id lane_ns;     // histogram: single-lane latency
  obs::MetricsRegistry::Id caller_busy; // caller-thread busy ns

  static const PoolObs& get() {
    static const PoolObs ids = {
        obs::counter_id("pool.jobs"),
        obs::counter_id("pool.tasks"),
        obs::gauge_id("pool.queue_depth"),
        obs::histogram_id("pool.job_ns"),
        obs::histogram_id("pool.task_ns"),
        obs::histogram_id("pool.lane_ns"),
        obs::counter_id("pool.caller.busy_ns"),
    };
    return ids;
  }
};

/// Busy-time counter for worker `index`; workers past 31 share one
/// overflow counter so the namespace stays bounded.
obs::MetricsRegistry::Id worker_busy_id(unsigned index) {
  if (index >= 32) return obs::counter_id("pool.worker.32plus.busy_ns");
  char name[40];
  std::snprintf(name, sizeof(name), "pool.worker.%u.busy_ns", index);
  return obs::counter_id(name);
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned index) {
  obs::MetricsRegistry::Id busy_id = obs::MetricsRegistry::kInvalidId;
  if constexpr (obs::kEnabled) busy_id = worker_busy_id(index);
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const auto* task_fn = task_fn_;
    const auto* lane_fn = lane_fn_;
    const unsigned lanes = lanes_;
    const std::int64_t total = task_count_;
    lk.unlock();

    std::exception_ptr err;
    try {
      if (task_fn != nullptr) {
        std::int64_t done = 0;
        const std::int64_t epoch_t0 = obs::kEnabled ? obs::now_ns() : 0;
        for (;;) {
          const std::int64_t i =
              next_task_.fetch_add(1, std::memory_order_relaxed);
          if (i >= total) break;
          if constexpr (obs::kEnabled) {
            const obs::ScopedTimer t(PoolObs::get().task_ns);
            (*task_fn)(i);
          } else {
            (*task_fn)(i);
          }
          ++done;
        }
        if constexpr (obs::kEnabled) {
          if (done > 0) {
            obs::count(PoolObs::get().tasks, done);
            obs::count(busy_id, obs::now_ns() - epoch_t0);
          }
        }
      } else if (lane_fn != nullptr && index + 1 < lanes) {
        const std::int64_t lane_t0 = obs::kEnabled ? obs::now_ns() : 0;
        (*lane_fn)(index + 1);
        if constexpr (obs::kEnabled) {
          const std::int64_t lane_dt = obs::now_ns() - lane_t0;
          obs::record(PoolObs::get().lane_ns, lane_dt);
          obs::count(busy_id, lane_dt);
        }
      }
    } catch (...) {
      err = std::current_exception();
      // Cancel the rest of the bag: unclaimed tasks are abandoned so
      // the job fails fast instead of running to completion around the
      // error. (Lanes can't be cancelled — they may be blocked on a
      // barrier that every lane must reach.)
      if (task_fn != nullptr) {
        next_task_.store(total, std::memory_order_relaxed);
      }
    }

    lk.lock();
    if (err && !error_) error_ = err;
    if (--active_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::dispatch(const std::function<void(std::int64_t)>* task_fn,
                          const std::function<void(unsigned)>* lane_fn,
                          unsigned lanes, std::int64_t tasks) {
  std::lock_guard<std::mutex> submit(submit_mu_);
  const std::int64_t job_t0 = obs::kEnabled ? obs::now_ns() : 0;
  if constexpr (obs::kEnabled) {
    obs::count(PoolObs::get().jobs, 1);
    obs::gauge_set(PoolObs::get().queue_depth,
                   task_fn != nullptr ? tasks : lanes);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_fn_ = task_fn;
    lane_fn_ = lane_fn;
    lanes_ = lanes;
    task_count_ = tasks;
    next_task_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers();
    ++epoch_;
  }
  cv_work_.notify_all();

  // The caller is executor/lane 0.
  std::exception_ptr err;
  try {
    if (task_fn != nullptr) {
      std::int64_t done = 0;
      for (;;) {
        const std::int64_t i =
            next_task_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks) break;
        if constexpr (obs::kEnabled) {
          const obs::ScopedTimer t(PoolObs::get().task_ns);
          (*task_fn)(i);
        } else {
          (*task_fn)(i);
        }
        ++done;
      }
      if constexpr (obs::kEnabled) {
        if (done > 0) obs::count(PoolObs::get().tasks, done);
      }
    } else if (lane_fn != nullptr) {
      (*lane_fn)(0);
      if constexpr (obs::kEnabled) {
        obs::record(PoolObs::get().lane_ns, obs::now_ns() - job_t0);
      }
    }
  } catch (...) {
    err = std::current_exception();
    if (task_fn != nullptr) {
      next_task_.store(tasks, std::memory_order_relaxed);
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  task_fn_ = nullptr;
  lane_fn_ = nullptr;
  if (err && !error_) error_ = err;
  const std::exception_ptr first = error_;
  error_ = nullptr;
  lk.unlock();
  if constexpr (obs::kEnabled) {
    const std::int64_t job_dt = obs::now_ns() - job_t0;
    obs::record(PoolObs::get().job_ns, job_dt);
    obs::count(PoolObs::get().caller_busy, job_dt);
    obs::gauge_set(PoolObs::get().queue_depth, 0);
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::for_each_task(std::int64_t tasks,
                               const std::function<void(std::int64_t)>& job) {
  LATTICE_REQUIRE(tasks >= 0, "task count must be >= 0");
  if (tasks <= 1 || workers() == 0) {
    for (std::int64_t i = 0; i < tasks; ++i) job(i);
    return;
  }
  dispatch(&job, nullptr, 0, tasks);
}

void ThreadPool::run_lanes(unsigned lanes,
                           const std::function<void(unsigned)>& job) {
  LATTICE_REQUIRE(lanes >= 1, "need at least one lane");
  LATTICE_REQUIRE(lanes <= max_lanes(),
                  "more lanes than the pool can run concurrently");
  if (lanes == 1) {
    job(0);
    return;
  }
  dispatch(nullptr, &job, lanes, 0);
}

void ThreadPool::parallel_for(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& job) {
  LATTICE_REQUIRE(n >= 0, "range length must be >= 0");
  if (n == 0) return;
  std::int64_t chunks = static_cast<std::int64_t>(max_lanes());
  if (grain > 0) {
    chunks = std::min(chunks, std::max<std::int64_t>(1, n / grain));
  }
  chunks = std::min(chunks, n);
  if (chunks <= 1 || workers() == 0) {
    job(0, n);
    return;
  }
  const std::int64_t per = (n + chunks - 1) / chunks;
  for_each_task(chunks, [&](std::int64_t c) {
    const std::int64_t begin = c * per;
    job(begin, std::min(n, begin + per));
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max(std::thread::hardware_concurrency(), 8u) - 1);
  return pool;
}

}  // namespace lattice::common
