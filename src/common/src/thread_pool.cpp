#include "lattice/common/thread_pool.hpp"

#include <algorithm>

#include "lattice/common/error.hpp"

namespace lattice::common {

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const auto* task_fn = task_fn_;
    const auto* lane_fn = lane_fn_;
    const unsigned lanes = lanes_;
    const std::int64_t total = task_count_;
    lk.unlock();

    std::exception_ptr err;
    try {
      if (task_fn != nullptr) {
        for (;;) {
          const std::int64_t i =
              next_task_.fetch_add(1, std::memory_order_relaxed);
          if (i >= total) break;
          (*task_fn)(i);
        }
      } else if (lane_fn != nullptr && index + 1 < lanes) {
        (*lane_fn)(index + 1);
      }
    } catch (...) {
      err = std::current_exception();
      // Cancel the rest of the bag: unclaimed tasks are abandoned so
      // the job fails fast instead of running to completion around the
      // error. (Lanes can't be cancelled — they may be blocked on a
      // barrier that every lane must reach.)
      if (task_fn != nullptr) {
        next_task_.store(total, std::memory_order_relaxed);
      }
    }

    lk.lock();
    if (err && !error_) error_ = err;
    if (--active_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::dispatch(const std::function<void(std::int64_t)>* task_fn,
                          const std::function<void(unsigned)>* lane_fn,
                          unsigned lanes, std::int64_t tasks) {
  std::lock_guard<std::mutex> submit(submit_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_fn_ = task_fn;
    lane_fn_ = lane_fn;
    lanes_ = lanes;
    task_count_ = tasks;
    next_task_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers();
    ++epoch_;
  }
  cv_work_.notify_all();

  // The caller is executor/lane 0.
  std::exception_ptr err;
  try {
    if (task_fn != nullptr) {
      for (;;) {
        const std::int64_t i =
            next_task_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks) break;
        (*task_fn)(i);
      }
    } else if (lane_fn != nullptr) {
      (*lane_fn)(0);
    }
  } catch (...) {
    err = std::current_exception();
    if (task_fn != nullptr) {
      next_task_.store(tasks, std::memory_order_relaxed);
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  task_fn_ = nullptr;
  lane_fn_ = nullptr;
  if (err && !error_) error_ = err;
  const std::exception_ptr first = error_;
  error_ = nullptr;
  lk.unlock();
  if (first) std::rethrow_exception(first);
}

void ThreadPool::for_each_task(std::int64_t tasks,
                               const std::function<void(std::int64_t)>& job) {
  LATTICE_REQUIRE(tasks >= 0, "task count must be >= 0");
  if (tasks <= 1 || workers() == 0) {
    for (std::int64_t i = 0; i < tasks; ++i) job(i);
    return;
  }
  dispatch(&job, nullptr, 0, tasks);
}

void ThreadPool::run_lanes(unsigned lanes,
                           const std::function<void(unsigned)>& job) {
  LATTICE_REQUIRE(lanes >= 1, "need at least one lane");
  LATTICE_REQUIRE(lanes <= max_lanes(),
                  "more lanes than the pool can run concurrently");
  if (lanes == 1) {
    job(0);
    return;
  }
  dispatch(nullptr, &job, lanes, 0);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max(std::thread::hardware_concurrency(), 8u) - 1);
  return pool;
}

}  // namespace lattice::common
