#include "lattice/common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace lattice::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "LATTICE_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg.c_str());
  std::abort();
}

}  // namespace lattice::detail
