// Small geometry helpers shared by the lattice, embedding, and
// architecture modules: 2-D extents, coordinates, and a generic
// row-major Grid<T> container.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lattice/common/error.hpp"

namespace lattice {

/// Integer 2-D coordinate. `x` is the column, `y` the row.
struct Coord {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend constexpr bool operator==(Coord, Coord) = default;
  constexpr Coord operator+(Coord o) const noexcept {
    return {x + o.x, y + o.y};
  }
};

/// 2-D extent (width × height).
struct Extent {
  std::int64_t width = 0;
  std::int64_t height = 0;

  friend constexpr bool operator==(Extent, Extent) = default;
  constexpr std::int64_t area() const noexcept { return width * height; }
  constexpr bool contains(Coord c) const noexcept {
    return c.x >= 0 && c.x < width && c.y >= 0 && c.y < height;
  }
};

/// Row-major linear index of `c` inside `e`. Caller guarantees containment.
constexpr std::size_t linear_index(Extent e, Coord c) noexcept {
  return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(e.width) +
         static_cast<std::size_t>(c.x);
}

/// Inverse of linear_index.
constexpr Coord coord_of(Extent e, std::size_t idx) noexcept {
  const auto w = static_cast<std::size_t>(e.width);
  return {static_cast<std::int64_t>(idx % w),
          static_cast<std::int64_t>(idx / w)};
}

/// Euclidean-free wrap of `v` into [0, m). Works for negative `v`.
constexpr std::int64_t wrap(std::int64_t v, std::int64_t m) noexcept {
  const std::int64_t r = v % m;
  return r < 0 ? r + m : r;
}

/// Dense row-major 2-D array.
template <typename T>
class Grid {
 public:
  Grid() = default;
  explicit Grid(Extent e, T fill = T{})
      : extent_(e),
        data_(static_cast<std::size_t>(e.area() > 0 ? e.area() : 0), fill) {
    LATTICE_REQUIRE(e.width >= 0 && e.height >= 0,
                    "Grid extent must be non-negative");
  }

  Extent extent() const noexcept { return extent_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& at(Coord c) {
    LATTICE_ASSERT(extent_.contains(c), "Grid::at out of range");
    return data_[linear_index(extent_, c)];
  }
  const T& at(Coord c) const {
    LATTICE_ASSERT(extent_.contains(c), "Grid::at out of range");
    return data_[linear_index(extent_, c)];
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

  void fill(const T& v) { data_.assign(data_.size(), v); }

  friend bool operator==(const Grid&, const Grid&) = default;

 private:
  Extent extent_{};
  std::vector<T> data_;
};

}  // namespace lattice
