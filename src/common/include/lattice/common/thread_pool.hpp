// Persistent worker-thread pool.
//
// The simulators need two flavors of parallelism and must not pay a
// thread-spawn per lattice generation for either:
//
//   for_each_task — a bag of independent tasks (e.g. row bands of one
//     generation). Caller and workers drain a shared counter; any
//     number of tasks is fine, tasks may outnumber executors.
//
//   run_lanes — exactly `lanes` bodies running *concurrently*, one per
//     executor (lane 0 on the caller). Lanes may synchronize with each
//     other (std::barrier) — this is what the thread-parallel SPA's
//     barrier-stepped slice pipelines use, and why lanes, unlike tasks,
//     can never be folded onto fewer threads.
//
// Workers are spawned once and parked on a condition variable between
// jobs. Exceptions thrown by a task/lane are captured and the first one
// is rethrown on the submitting thread; a throwing *task* additionally
// cancels the unclaimed remainder of the bag (tasks already running
// finish), so a failing for_each_task returns promptly and the pool
// stays usable. Lanes are never cancelled — they may be blocked on a
// barrier every lane must reach. Submissions are serialized: the
// pool runs one job at a time (nested submission from inside a task
// would deadlock — don't).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lattice::common {

class ThreadPool {
 public:
  /// Spawn `workers` persistent worker threads (0 is legal: every job
  /// then runs inline on the caller).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Pool threads, excluding the caller.
  unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Maximum concurrent lanes run_lanes can honor (workers + caller).
  unsigned max_lanes() const noexcept { return workers() + 1; }

  /// Execute job(i) for every i in [0, tasks). The caller participates;
  /// idle workers help. Returns when all tasks finished. tasks <= 1 (or
  /// a worker-less pool) runs inline with no locking or allocation.
  void for_each_task(std::int64_t tasks,
                     const std::function<void(std::int64_t)>& job);

  /// Execute job(0) .. job(lanes-1) concurrently, each lane pinned to
  /// its own executor, so lanes may barrier-synchronize among
  /// themselves. Requires lanes <= max_lanes(). lanes == 1 runs inline.
  void run_lanes(unsigned lanes, const std::function<void(unsigned)>& job);

  /// Split [0, n) into contiguous chunks of at least `grain` elements
  /// (never more chunks than executors) and run job(begin, end) for
  /// each via for_each_task. The grain floor means callers state the
  /// smallest range worth a dispatch once, instead of re-deriving a
  /// task count at every call site; n <= grain (or a worker-less pool)
  /// runs the whole range inline. grain <= 0 means "one chunk per
  /// executor".
  void parallel_for(std::int64_t n, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& job);

  /// Process-wide pool shared by the engine and the parallel updaters.
  /// Sized max(hardware_concurrency, 8) - 1 so that an 8-lane SPA run is
  /// honored even on small machines (lanes block on barriers, so
  /// oversubscription is benign).
  static ThreadPool& shared();

 private:
  void worker_loop(unsigned index);
  void dispatch(const std::function<void(std::int64_t)>* task_fn,
                const std::function<void(unsigned)>* lane_fn, unsigned lanes,
                std::int64_t tasks);

  std::vector<std::thread> threads_;

  std::mutex submit_mu_;  // one job at a time

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  unsigned active_ = 0;  // workers still inside the current epoch

  // Current job (valid while active_ > 0).
  const std::function<void(std::int64_t)>* task_fn_ = nullptr;
  const std::function<void(unsigned)>* lane_fn_ = nullptr;
  unsigned lanes_ = 0;
  std::int64_t task_count_ = 0;
  std::atomic<std::int64_t> next_task_{0};
  std::exception_ptr error_;
};

}  // namespace lattice::common
