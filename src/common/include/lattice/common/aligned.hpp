// Minimal over-aligned allocator for std::vector storage.
//
// The bit-plane lattice wants its payload rows on cacheline (and
// vector-register) boundaries: the SIMD spans use unaligned loads, so
// alignment is not a correctness requirement, but aligned rows keep
// every 256/512-bit access inside one cacheline and make the layout
// deterministic for the cost model. std::vector<T> alone only
// guarantees alignof(T), hence this allocator.

#pragma once

#include <cstddef>
#include <new>

namespace lattice::common {

template <typename T, std::size_t Align>
class AlignedAllocator {
  static_assert(Align >= alignof(T), "Align must not weaken alignof(T)");
  static_assert((Align & (Align - 1)) == 0, "Align must be a power of two");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace lattice::common
