// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (FHP collision chirality,
// random lattice initialization, randomized tests) flows through these
// generators so that every experiment is reproducible from a single
// 64-bit seed. We implement SplitMix64 (seeding / stream splitting) and
// PCG32 (bulk generation) rather than using <random> engines because the
// exact output sequence is part of the library contract: golden tests
// pin it down.

#pragma once

#include <cstdint>

namespace lattice {

/// SplitMix64: tiny, statistically strong 64-bit generator. Used to
/// derive independent sub-seeds from one master seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR variant): 64-bit state, 32-bit output, period 2^64.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept : Pcg32(0x853c49e6748fea9bULL) {}
  explicit constexpr Pcg32(std::uint64_t seed,
                           std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
      : state_(0), inc_((stream << 1) | 1u) {
    next();
    state_ += seed;
    next();
  }

  constexpr std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound) without modulo bias (Lemire rejection).
  constexpr std::uint32_t next_below(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1), using the top 27 bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 5) * (1.0 / 134217728.0);
  }

  /// Bernoulli(p) draw.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  constexpr result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Derive the i-th independent sub-seed from a master seed.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept;

}  // namespace lattice
