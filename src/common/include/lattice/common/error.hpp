// Error handling primitives shared by every module.
//
// Library code throws lattice::Error for precondition violations that a
// caller could plausibly trigger (bad sizes, out-of-range parameters).
// Internal invariants use LATTICE_ASSERT, which is active in all build
// types: the simulators are correctness tools first, performance models
// second, and a silent invariant break would invalidate every number
// they report.

#pragma once

#include <stdexcept>
#include <string>

namespace lattice {

/// Exception thrown on precondition violations in the public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace lattice

/// Always-on invariant check. `msg` may use stream-free string concatenation.
#define LATTICE_ASSERT(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::lattice::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                    \
  } while (false)

/// Precondition check on public entry points; throws lattice::Error.
#define LATTICE_REQUIRE(expr, msg)                \
  do {                                            \
    if (!(expr)) {                                \
      throw ::lattice::Error(std::string(msg));   \
    }                                             \
  } while (false)
