// Design-space analysis for the two lattice-engine architectures
// (§6.1, §6.2) and the extensible WSA-E variant (§6.3).
//
// WSA (wide-serial): one P-wide pipeline stage per chip. Constraints:
//   pins:  2·D·P ≤ Π                      (stream in + out, P sites/tick)
//   area:  (2L+3)·B + P·(7B + Γ) ≤ 1      (two-line window + per-PE cost)
// giving the two curves of the paper's L–P design graph.
//
// SPA (Sternberg partitioned): the lattice is cut into L/W slices; a
// chip carries P_w slice pipelines, each P_k deep. Constraints:
//   pins:  2·D·P_w + 2·E·P_k ≤ Π          (streams + side channels)
//   area:  ((2W+9)·B + Γ)·P_w·P_k ≤ 1
// giving the W–P design graph (P = P_w·P_k PEs per chip).
//
// WSA-E: WSA made lattice-size-extensible by moving the line buffer off
// chip; pins then admit only one PE per chip (§6.3).
//
// All quantities are continuous; *_design() helpers round down to the
// integer operating points the paper quotes (WSA: P=4, L≈785; SPA:
// P_w=2, P_k=6 → 12 PEs/chip).

#pragma once

#include <cstdint>

#include "lattice/arch/technology.hpp"

namespace lattice::arch {

// ---------------------------------------------------------------- WSA

struct WsaDesign {
  int pe_per_chip = 0;        // P
  std::int64_t lattice_len = 0;  // L (max supported, sites per side)
  int depth = 0;              // k = chips = pipeline stages
};

namespace wsa {

/// Pin-limited PEs per chip: Π / 2D (continuous).
double max_pe_pins(const Technology& t);

/// Area-limited PEs per chip at lattice length L:
/// (1 − 3B − 2BL) / (7B + Γ). Negative means L alone exceeds the chip.
double max_pe_area(const Technology& t, double lattice_len);

/// min of the two constraints (the feasible frontier of the L–P graph).
double feasible_pe(const Technology& t, double lattice_len);

/// L at which the area curve crosses a given P.
double lattice_len_at_pe(const Technology& t, double pe);

/// Continuous corner: intersection of pin and area curves.
struct Corner {
  double pe = 0;
  double lattice_len = 0;
};
Corner corner(const Technology& t);

/// Largest L processable at all (P = 1, everything else storage).
double max_lattice_len(const Technology& t);

/// The paper's integer operating point: P = ⌊pin bound⌋, L = ⌊area
/// inverse at that P⌋. For the 1987 constants: P = 4, L = 785.
WsaDesign paper_design(const Technology& t, int depth = 1);

/// System throughput R = F·P·k site-updates/s (§6.1).
double throughput(const Technology& t, const WsaDesign& d);

/// Main-memory bandwidth demand, bits per clock tick: 2·D·P.
int bandwidth_bits_per_tick(const Technology& t, const WsaDesign& d);

/// Ultimate ceiling with unlimited chips: k_max = L (§6.1),
/// R_max = (Π/2D)·F·L.
double max_throughput(const Technology& t, std::int64_t lattice_len);

/// Fraction of the occupied chip area doing *processing* (P·Γ over
/// processing + shift-register storage). §6.4 reports "about 4
/// percent" for the fabricated 2-PE, 3µ CMOS prototype at L = 785 —
/// the silicon statement of the I/O bottleneck.
double processing_area_fraction(const Technology& t, int pe_per_chip,
                                std::int64_t lattice_len);

}  // namespace wsa

// ---------------------------------------------------------------- SPA

struct SpaDesign {
  int slices_per_chip = 0;   // P_w
  int depth_per_chip = 0;    // P_k
  std::int64_t slice_width = 0;  // W
  std::int64_t lattice_len = 0;  // L (arbitrary; slices compose)
  int depth = 0;             // k = total pipeline depth (generations/pass)
};

namespace spa {

/// Continuous pin-optimal split: maximize P_w·P_k on 2D·P_w + 2E·P_k = Π
/// → P_w = Π/4D, P_k = Π/4E, P = Π²/(16DE). 1987 values: 2.25, 6, 13.5.
struct PinOptimum {
  double slices = 0;  // P_w
  double depth = 0;   // P_k
  double pe = 0;      // product
};
PinOptimum pin_optimum(const Technology& t);

/// Area-limited PEs per chip at slice width W: 1 / ((2W+9)B + Γ).
double max_pe_area(const Technology& t, double slice_width);

/// Feasible PEs per chip at W: min(pin optimum, area bound) — the
/// paper's W–P design graph frontier.
double feasible_pe(const Technology& t, double slice_width);

/// Continuous corner: W where the area curve meets the pin optimum.
struct Corner {
  double pe = 0;
  double slice_width = 0;
};
Corner corner(const Technology& t);

/// The paper's integer design point: P_w = 2, P_k = 6 (12 PEs/chip)
/// with W the largest slice width the area constraint then allows.
SpaDesign paper_design(const Technology& t, std::int64_t lattice_len,
                       int depth);

/// Chips needed: (L/W)·(k/P_k) — §6.2 system area.
double chips(const SpaDesign& d);

/// System throughput R = F·k·(L/W) site-updates/s.
double throughput(const Technology& t, const SpaDesign& d);

/// Main-memory bandwidth, bits/tick: one site in and one out per slice
/// pipeline per tick → 2·D·(L/W).
double bandwidth_bits_per_tick(const Technology& t, const SpaDesign& d);

/// Does (P_w, P_k) satisfy the pin constraint?
bool pins_ok(const Technology& t, int slices, int depth_per_chip);

/// Does (P_w, P_k, W) satisfy the area constraint?
bool area_ok(const Technology& t, int slices, int depth_per_chip,
             std::int64_t slice_width);

/// Largest W satisfying the area constraint for a given PE count.
std::int64_t max_slice_width(const Technology& t, int pe_per_chip);

}  // namespace spa

// -------------------------------------------------------------- WSA-E

namespace wsa_e {

/// PEs per chip once the line buffer is off-chip: the stream plus the
/// two external window rows cost 6D pins per PE (§6.3: "only one
/// processor per chip" at the 1987 pin budget).
int max_pe_pins(const Technology& t);

/// Off-chip storage per processor, in units of B (shift-register cell
/// areas): 2L + 10 sites (§6.3).
double storage_area_per_pe(const Technology& t, std::int64_t lattice_len);

/// Main-memory bandwidth, bits/tick (constant in L): 2·D.
int bandwidth_bits_per_tick(const Technology& t);

/// Off-chip line-buffer channel demand per PE, bits/tick: the two
/// externally buffered window rows, each written and read once per
/// tick = 4·D — the non-stream two thirds of the 6·D pin bill.
int buffer_bits_per_tick_per_pe(const Technology& t);

/// Off-chip storage per processor, in sites: 2L + 10 (§6.3) — the §5
/// cost ledger's unit before the B area conversion.
std::int64_t storage_sites_per_pe(std::int64_t lattice_len);

/// Throughput of a k-deep WSA-E pipeline: F·k (one PE per stage).
double throughput(const Technology& t, int depth);

}  // namespace wsa_e

}  // namespace lattice::arch
