// Whole-application timing model (§8): a host machine streams the
// lattice through a k-deep engine pass after pass until G generations
// are done. Each pass moves the lattice in and out of host memory at
// the host's bandwidth while the engine computes at F·P·k. With double
// buffering the two overlap; either way the slower of the two paces
// the run — the quantitative form of "it is unlikely the workstation
// host will be able to supply the 40 MB/s".

#pragma once

#include <cstdint>

#include "lattice/arch/technology.hpp"

namespace lattice::arch {

struct SystemRunConfig {
  Technology tech = Technology::paper1987();
  int pe_per_chip = 2;             // P
  int depth = 1;                   // k: generations per pass
  std::int64_t lattice_len = 512;  // L (square lattice)
  std::int64_t generations = 512;  // G total
  double host_bytes_per_sec = 2e6; // what the host can actually stream
  bool double_buffered = true;     // overlap transfer with compute
};

struct SystemRunReport {
  std::int64_t passes = 0;
  double transfer_seconds = 0;  // total host <-> engine stream time
  double compute_seconds = 0;   // total engine busy time
  double wall_seconds = 0;
  double achieved_rate = 0;     // site updates per wall second
  double peak_rate = 0;         // F·P·k
  double utilization = 0;       // achieved / peak
};

/// Model a full run; pure arithmetic over the §6/§8 quantities.
SystemRunReport model_system_run(const SystemRunConfig& cfg);

}  // namespace lattice::arch
