// VLSI technology point (§6).
//
// All of the paper's design-space analysis is parameterized by six
// constants describing one chip technology. The 1987 values (derived
// from the authors' actual 3µ CMOS layouts) are provided as a named
// preset; every curve, corner and comparison in the benches is computed
// from these, so a user can re-run the whole analysis for a different
// process by swapping the preset.

#pragma once

#include <cstdint>

#include "lattice/common/error.hpp"

namespace lattice::arch {

struct Technology {
  /// Π — total pins usable for I/O.
  int pins = 72;
  /// D — bits needed to represent one lattice-site state.
  int bits_per_site = 8;
  /// E — bits needed to complete a neighborhood split across a slice
  /// boundary (SPA side channels).
  int boundary_bits = 3;
  /// B — area of a shift-register cell holding one site, as a fraction
  /// of total usable chip area (β/α in the paper).
  double cell_area = 576e-6;
  /// Γ — area of one processing element, as a fraction of total usable
  /// chip area (γ/α in the paper).
  double pe_area = 19.4e-3;
  /// F — major cycle (clock) frequency, Hz.
  double clock_hz = 10e6;

  /// The paper's 3µ CMOS design point (§6.1: D=8, Π=72, B=576e-6,
  /// Γ=19.4e-3; §6.2: E=3; §8: F=10 MHz).
  static constexpr Technology paper1987() { return Technology{}; }

  constexpr void validate() const {
    LATTICE_REQUIRE(pins > 0 && bits_per_site > 0 && boundary_bits >= 0,
                    "Technology: pin/bit counts must be positive");
    LATTICE_REQUIRE(cell_area > 0 && pe_area > 0 && clock_hz > 0,
                    "Technology: areas and clock must be positive");
  }
};

}  // namespace lattice::arch
