// Banked main-memory model (§6's footnote 2, made explicit).
//
// The paper's throughput analysis "assumes a memory system capable of
// providing full bandwidth to the processor system" and flags it as "a
// very important assumption". This module checks when it holds: an
// interleaved, banked memory serves the address streams the two
// architectures actually generate —
//
//   WSA: one raster stream, P consecutive sites per tick;
//   SPA: L/W concurrent slice streams, row-staggered, one site each
//        per tick, whose global addresses are W apart.
//
// Each bank accepts one access and is then busy for `bank_busy_ticks`.
// Raster streams interleave perfectly when banks ≥ busy·P. The SPA
// pattern is hostile exactly when the slice width shares a factor with
// the bank count (all slices hammer the same banks); coprime
// interleaving restores full bandwidth — a real constraint on the "full
// bandwidth" assumption that the paper leaves to the memory designer.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/common/grid.hpp"

namespace lattice::arch {

struct MemoryConfig {
  int banks = 8;            // interleaved on low-order site-address bits
  int bank_busy_ticks = 4;  // recovery time per access, in ticks
};

/// Outcome of serving a synchronous request schedule.
struct MemoryResult {
  std::int64_t requests = 0;
  std::int64_t ticks = 0;   // wall clock including stalls
  std::int64_t stalls = 0;  // extra ticks beyond the ideal schedule

  /// Achieved fraction of the demanded bandwidth.
  double bandwidth_fraction(std::int64_t ideal_ticks) const {
    return ticks > 0 ? static_cast<double>(ideal_ticks) /
                           static_cast<double>(ticks)
                     : 0.0;
  }
};

/// A synchronous banked memory: each machine tick presents a batch of
/// site addresses that must all issue before the machine advances.
class BankedMemory {
 public:
  explicit BankedMemory(MemoryConfig cfg);

  /// Serve the per-tick batches in order; the machine stalls a tick
  /// whenever a request's bank is still busy.
  MemoryResult service(const std::vector<std::vector<std::int64_t>>& ticks);

  const MemoryConfig& config() const noexcept { return cfg_; }

 private:
  MemoryConfig cfg_;
};

/// WSA address schedule: `batch` consecutive raster addresses per tick.
std::vector<std::vector<std::int64_t>> wsa_address_schedule(Extent e,
                                                            int batch);

/// SPA address schedule: one address per slice per tick, slice j
/// running j·W positions behind slice j-1 (the §6.3 row-staggered
/// pattern). `slice_width` must divide the lattice width.
std::vector<std::vector<std::int64_t>> spa_address_schedule(
    Extent e, std::int64_t slice_width);

}  // namespace lattice::arch
