// Extensible wide-serial architecture system simulator (§5, §6.3).
//
// WSA-E is the WSA with its line buffer moved off chip: the shift
// register that holds the last ~two lattice rows no longer competes for
// die area, so the lattice length L is unbounded — the paper's answer
// to "what if the lattice does not fit?". The price is pins: each PE
// must stream its two externally buffered window rows in and out every
// tick, 4·D pins on top of the 2·D stream, and at the 1987 budget
// (Π = 72, D = 8) that leaves exactly one PE per chip (§6.3). Main
// memory still touches only the ends of the chain, so its demand is a
// constant 2·D bits/tick however deep the pipeline is.
//
// Functionally the machine is a width-1 WSA chain — the same
// StreamStage ring-buffer silicon, so its output is bit-identical to
// WSA and to the golden reference by construction. What this simulator
// adds is the off-chip buffer channel: each stage's two external line
// FIFOs are modeled as a banked memory part (arch/memory.hpp) seeing
// one write and one read per FIFO per tick. With line-buffer-class
// parts (the default: 2 banks, single-tick cycle) the channel keeps up
// and the paper's full-bandwidth assumption holds; configure slower
// parts and the lockstep machine visibly stalls, which is the §5
// assumption made checkable.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/arch/memory.hpp"
#include "lattice/arch/stream_stage.hpp"
#include "lattice/arch/technology.hpp"

namespace lattice::arch {

/// Counters accumulated by a WSA-E run.
struct WsaEStats {
  std::int64_t ticks = 0;         // clock cycles, including buffer stalls
  std::int64_t stream_ticks = 0;  // cycles of the stall-free schedule
  std::int64_t site_updates = 0;
  std::int64_t mem_sites_read = 0;  // main memory (stream ends only)
  std::int64_t mem_sites_written = 0;
  std::int64_t interchip_sites = 0;
  /// Off-chip line-buffer words moved (4 per stage per stream tick:
  /// two FIFOs, each written and read once).
  std::int64_t buffer_accesses = 0;
  /// Ticks lost to buffer-channel bank conflicts (0 with the default
  /// line-buffer parts).
  std::int64_t buffer_stall_ticks = 0;
  /// Site storage held in the (now external) shift registers.
  std::int64_t buffer_sites = 0;

  double updates_per_tick() const {
    return ticks > 0 ? static_cast<double>(site_updates) /
                           static_cast<double>(ticks)
                     : 0.0;
  }

  /// Achieved fraction of the demanded buffer bandwidth: 1.0 when the
  /// external parts never stall the machine.
  double buffer_bandwidth_fraction() const {
    return ticks > 0 ? static_cast<double>(stream_ticks) /
                           static_cast<double>(ticks)
                     : 1.0;
  }
};

/// A k-stage WSA-E chain (one PE per chip, external line buffers) over
/// a fixed lattice extent. Stage state persists across runs, exactly
/// like WsaPipeline.
class WsaEPipeline {
 public:
  /// `depth` chips (= generations per pass). `buffer` describes the
  /// external line-buffer parts on each stage's buffer channel; the
  /// default is line_buffer_config(). `fast_kernel` and `fault` are as
  /// in WsaPipeline.
  WsaEPipeline(Extent extent, const lgca::Rule& rule, int depth,
               std::int64_t t0 = 0, bool fast_kernel = false,
               fault::FaultInjector* fault = nullptr,
               MemoryConfig buffer = line_buffer_config());

  /// Stream `in` (null boundaries) through the chain; returns the
  /// lattice advanced by `depth` generations, bit-identical to WSA.
  lgca::SiteLattice run(const lgca::SiteLattice& in);

  /// Retarget the next run() at generation `t0`.
  void set_t0(std::int64_t t0) noexcept { t0_ = t0; }

  const WsaEStats& stats() const noexcept { return stats_; }
  int depth() const noexcept { return depth_; }

  double modeled_rate(const Technology& tech) const {
    return stats_.updates_per_tick() * tech.clock_hz;
  }

  /// Default external parts: dual-bank, single-tick-cycle line-buffer
  /// chips. The head/tail access pair of a FIFO lands on both banks
  /// every tick, so the channel sustains full bandwidth — the §5
  /// assumption the paper makes implicitly.
  static constexpr MemoryConfig line_buffer_config() {
    return MemoryConfig{/*banks=*/2, /*bank_busy_ticks=*/1};
  }

 private:
  Extent extent_;
  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_ = nullptr;
  int depth_;
  std::int64_t t0_;
  fault::FaultInjector* fault_ = nullptr;
  MemoryConfig buffer_;
  WsaEStats stats_;

  // Persistent width-1 stage chain, as in WsaPipeline.
  std::vector<StreamStage> stages_;
  std::int64_t lead_ = 0;

  /// Buffer stalls per stream tick in steady state, measured once at
  /// construction by serving the FIFO address schedule through
  /// BankedMemory (the pattern is periodic, so a bounded window is
  /// exact up to rounding).
  double stall_rate_ = 0;
};

}  // namespace lattice::arch
