// The §8 prototype data point: a 2-PE WSA chip at 10 MHz delivers
// 20 M site-updates/s — if the host can stream 40 MB/s. A mid-1980s
// workstation host cannot, so the realized rate collapses to the
// bandwidth-limited ≈1 M updates/s/chip. This model turns (technology,
// pipeline shape, host bandwidth) into peak and sustained rates.

#pragma once

#include <cstdint>

#include "lattice/arch/technology.hpp"

namespace lattice::arch {

struct PrototypeModel {
  Technology tech = Technology::paper1987();
  int pe_per_chip = 2;  // the fabricated chip's width
  int chips = 1;        // pipeline depth k

  /// Peak update rate, updates/s: F·P·k.
  double peak_rate() const {
    return tech.clock_hz * pe_per_chip * chips;
  }

  /// Host bandwidth needed to sustain the peak, bytes/s: the stream
  /// enters and leaves once per pass regardless of k, at F·P sites/s
  /// each way, D bits per site.
  double required_bandwidth_bytes() const {
    return 2.0 * tech.clock_hz * pe_per_chip * tech.bits_per_site / 8.0;
  }

  /// Sustained rate when the host provides `host_bytes_per_sec`:
  /// the input stream throttles to host/2 bytes/s each way, and every
  /// streamed site yields k updates.
  double sustained_rate(double host_bytes_per_sec) const {
    LATTICE_REQUIRE(host_bytes_per_sec > 0, "host bandwidth must be > 0");
    const double bytes_per_site = tech.bits_per_site / 8.0;
    const double stream_sites =
        host_bytes_per_sec / (2.0 * bytes_per_site);
    const double bw_limited = stream_sites * chips;
    return bw_limited < peak_rate() ? bw_limited : peak_rate();
  }

  /// Host bandwidth at which the pipeline stops being I/O-bound.
  double saturation_bandwidth_bytes() const {
    return required_bandwidth_bytes();
  }
};

}  // namespace lattice::arch
