// One pipeline stage of the (wide-)serial architecture (§3, §4).
//
// The stage consumes the lattice as a raster-order site stream, P sites
// per clock tick, holding the last ~two lines in an on-chip shift
// register. Once the stream has delivered site (x+1, y+1) the stage can
// emit the updated value of (x, y): a fixed latency of W+1 stream
// positions (rounded up to a whole tick). Row/column edges are masked
// to zero — the paper's null-boundary assumption — so a stage's output
// stream is exactly one golden-reference generation of its input
// stream.
//
// The stage is deliberately implemented the way the silicon works
// (ring buffer standing in for the shift register, x/y masking at the
// window multiplexers) rather than by calling the reference updater:
// the equivalence of the two is the correctness claim the tests check.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/lgca/collision_lut.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::arch {

class StreamStage {
 public:
  /// A stage updating generation `t` of a lattice of `extent`, `batch`
  /// sites per tick (P of §4). `lead_padding` is the number of
  /// meaningless stream positions that precede logical position 0 on
  /// this stage's input — i.e. the accumulated latency of upstream
  /// stages — so chained stages agree on site coordinates. A non-null
  /// `lut` routes updates through the fused gather–collide kernel
  /// (same ring, same masking, no Window build, no virtual dispatch);
  /// callers pass CollisionLut::try_get(rule) or nullptr.
  StreamStage(Extent extent, const lgca::Rule& rule, std::int64_t t,
              int batch, std::int64_t lead_padding = 0,
              const lgca::CollisionLut* lut = nullptr);

  /// Consume `batch` input sites, produce `batch` output sites.
  /// Outputs at logical positions outside [0, area) are zeros.
  void tick(const lgca::Site* in, lgca::Site* out);

  /// Stage latency in stream positions (multiple of batch).
  std::int64_t delay() const noexcept { return delay_; }

  /// Shift-register capacity in sites — the quantity the paper's area
  /// model charges (≈ 2W + 3 for a serial stage).
  std::int64_t buffer_sites() const noexcept {
    return static_cast<std::int64_t>(ring_.size());
  }

  /// Total ticks consumed so far.
  std::int64_t ticks() const noexcept { return ticks_; }

 private:
  lgca::Site stream_value(std::int64_t pos) const noexcept;
  lgca::Site update_at(std::int64_t pos) const;

  Extent extent_;
  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_;
  std::int64_t t_;
  int batch_;
  std::int64_t delay_;
  std::int64_t next_in_;  // logical position of the next input site
  std::int64_t ticks_ = 0;
  std::vector<lgca::Site> ring_;
};

}  // namespace lattice::arch
