// One pipeline stage of the (wide-)serial architecture (§3, §4).
//
// The stage consumes the lattice as a raster-order site stream, P sites
// per clock tick, holding the last ~two lines in an on-chip shift
// register. Once the stream has delivered site (x+1, y+1) the stage can
// emit the updated value of (x, y): a fixed latency of W+1 stream
// positions (rounded up to a whole tick). Row/column edges are masked
// to zero — the paper's null-boundary assumption — so a stage's output
// stream is exactly one golden-reference generation of its input
// stream.
//
// The stage is deliberately implemented the way the silicon works
// (ring buffer standing in for the shift register, x/y masking at the
// window multiplexers) rather than by calling the reference updater:
// the equivalence of the two is the correctness claim the tests check.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/fault/fault.hpp"
#include "lattice/lgca/collision_lut.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::arch {

class StreamStage {
 public:
  /// A stage updating generation `t` of a lattice of `extent`, `batch`
  /// sites per tick (P of §4). `lead_padding` is the number of
  /// meaningless stream positions that precede logical position 0 on
  /// this stage's input — i.e. the accumulated latency of upstream
  /// stages — so chained stages agree on site coordinates. A non-null
  /// `lut` routes updates through the fused gather–collide kernel
  /// (same ring, same masking, no Window build, no virtual dispatch);
  /// callers pass CollisionLut::try_get(rule) or nullptr.
  ///
  /// A non-null `fault` arms fault injection and online detection: the
  /// shift register grows a per-word parity shadow (written from the
  /// true bus value, checked on every window read), the stage keeps a
  /// particle-conservation ledger (gas rules only), and emitted words
  /// pass through the injector's stuck-at masks for
  /// (`stage_index`, PE lane). The fault-free path is untouched beyond
  /// one predictable null-pointer branch per buffer access.
  StreamStage(Extent extent, const lgca::Rule& rule, std::int64_t t,
              int batch, std::int64_t lead_padding = 0,
              const lgca::CollisionLut* lut = nullptr,
              fault::FaultInjector* fault = nullptr, int stage_index = 0);

  /// Consume `batch` input sites, produce `batch` output sites.
  /// Outputs at logical positions outside [0, area) are zeros.
  void tick(const lgca::Site* in, lgca::Site* out);

  /// Rearm the stage for a fresh stream at generation `t`: clear the
  /// shift register (and its parity shadow), reset the conservation
  /// ledger, and rewind the stream position to the configured lead.
  /// Buffers keep their allocation — this is what lets a pipeline
  /// persist across passes instead of being rebuilt per pass.
  void reset(std::int64_t t);

  /// Stage latency in stream positions (multiple of batch).
  std::int64_t delay() const noexcept { return delay_; }

  /// Shift-register capacity in sites — the quantity the paper's area
  /// model charges (≈ 2W + 3 for a serial stage).
  std::int64_t buffer_sites() const noexcept {
    return static_cast<std::int64_t>(ring_.size());
  }

  /// Total ticks consumed so far.
  std::int64_t ticks() const noexcept { return ticks_; }

  /// Conservation ledger for this stage's pass (valid only when a
  /// fault injector is attached and the rule is a gas).
  const fault::StageAudit& audit() const noexcept { return audit_; }

 private:
  lgca::Site stream_value(std::int64_t pos) const noexcept;
  lgca::Site update_at(std::int64_t pos) const;
  lgca::Site store_guarded(std::int64_t pos, std::size_t idx, lgca::Site v);
  lgca::Site emit_guarded(std::int64_t pos, int lane, lgca::Site u);

  Extent extent_;
  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_;
  std::int64_t t_;
  int batch_;
  std::int64_t delay_;
  std::int64_t lead_;     // upstream latency this stage was built with
  std::int64_t next_in_;  // logical position of the next input site
  std::int64_t ticks_ = 0;
  std::vector<lgca::Site> ring_;

  // Fault machinery; inert (and meta_ unallocated) when fault_ is null.
  fault::FaultInjector* fault_ = nullptr;
  int stage_index_ = 0;
  lgca::Topology topo_ = lgca::Topology::Hex6;
  fault::StageAudit audit_;
  /// Parity shadow of the shift register: bit 0 = parity of the word
  /// the bus delivered, bit 1 = mismatch already reported. Mutable
  /// because detection happens on (const) window reads.
  mutable std::vector<std::uint8_t> meta_;
};

}  // namespace lattice::arch
