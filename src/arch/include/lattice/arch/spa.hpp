// Sternberg partitioned architecture simulator (§5, §6.2).
//
// The lattice is cut into vertical slices W sites wide; each slice gets
// its own serial pipeline of `depth` stages. Sites whose neighborhoods
// straddle a slice boundary are completed over synchronous side
// channels between same-depth stages of adjacent slices — the paper's
// E-bit-per-tick bidirectional links.
//
// Slice streams are *row-staggered*: slice j runs exactly one slice-row
// (W positions) behind slice j-1. With that stagger, when a stage
// updates its right boundary column the right neighbor's matching row
// has just arrived, and when it updates its left boundary column the
// left neighbor still holds the needed (older) data in its window
// buffer — the data-access pattern the paper contrasts with WSA's plain
// raster scan (§6.3).
//
// Each tick every slice consumes one site, so the whole machine
// performs (L/W)·depth updates per tick; main memory must feed
// 2·D·(L/W) bits each tick — the bandwidth price of SPA's speed.
//
// Execution strategies (identical output and identical counters, both
// verified bit-for-bit against the golden reference):
//
//   threads <= 1 — cycle-exact simulation: one ring-buffered stage per
//     (slice, depth), side-channel peeks between neighbor stages, the
//     global tick loop walking slices right-to-left. This is the
//     hardware model; counters fall out of the walk itself.
//
//   threads >= 2 — the paper's multi-chip parallelism made literal:
//     slice pipelines run on persistent worker lanes, stepping a
//     row-chunk wavefront (stage d trails stage d-1 by two chunks) with
//     a std::barrier rendezvous standing in for the synchronous side
//     channels. Counters are the closed forms the tick walk provably
//     produces (asserted equal in tests).
//
// With `fast_kernel`, a GasRule's updates go through the fused
// CollisionLut gather instead of Window construction + virtual
// dispatch; non-gas rules fall back to the generic path.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/arch/technology.hpp"
#include "lattice/fault/fault.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::arch {

/// Counters for a SPA run.
struct SpaStats {
  std::int64_t ticks = 0;
  std::int64_t site_updates = 0;
  std::int64_t mem_sites_read = 0;
  std::int64_t mem_sites_written = 0;
  std::int64_t boundary_fetches = 0;  // cross-slice window reads
  std::int64_t buffer_sites = 0;

  double updates_per_tick() const {
    return ticks > 0 ? static_cast<double>(site_updates) /
                           static_cast<double>(ticks)
                     : 0.0;
  }
};

class SpaMachine {
 public:
  /// Partition `extent` into slices of width `slice_width` (which must
  /// divide the lattice width) and process `depth` generations per
  /// pass. `threads` selects the execution strategy (see file comment);
  /// `fast_kernel` opts gas rules into the fused CollisionLut path.
  ///
  /// A non-null *armed* `fault` forces the cycle-exact strategy (the
  /// simulated slice buffers and side channels only exist there), arms
  /// per-stage parity shadows, side-channel link checks, stuck-at masks
  /// for (depth, slice) lanes, and the per-depth conservation audit.
  /// Slices the injector has remapped (stuck chips taken out of the
  /// datapath) charge one extra slice-stream of ticks per pass — the
  /// surviving neighbor streams the failed slice's columns serially.
  SpaMachine(Extent extent, const lgca::Rule& rule, std::int64_t slice_width,
             int depth, std::int64_t t0 = 0, unsigned threads = 1,
             bool fast_kernel = false, fault::FaultInjector* fault = nullptr);
  ~SpaMachine();
  SpaMachine(SpaMachine&&) noexcept;
  SpaMachine& operator=(SpaMachine&&) noexcept;

  /// One pass: the lattice advanced by `depth` generations.
  ///
  /// Machine state persists across passes: the cycle-exact walk keeps
  /// its (slice × depth) stage grid and rearms it in place, and the
  /// wavefront keeps its generation ladder, so a long-lived machine
  /// allocates its buffers once instead of per pass.
  lgca::SiteLattice run(const lgca::SiteLattice& in);

  /// Retarget the next run() at generation `t0`.
  void set_t0(std::int64_t t0) noexcept { t0_ = t0; }

  const SpaStats& stats() const noexcept { return stats_; }
  std::int64_t slices() const noexcept { return slices_; }
  int depth() const noexcept { return depth_; }
  unsigned threads() const noexcept { return threads_; }

  double modeled_rate(const Technology& tech) const {
    return stats_.updates_per_tick() * tech.clock_hz;
  }

 private:
  lgca::SiteLattice run_cycle_exact(const lgca::SiteLattice& in);
  lgca::SiteLattice run_parallel(const lgca::SiteLattice& in);

  Extent extent_;
  const lgca::Rule* rule_;
  std::int64_t slice_width_;
  std::int64_t slices_;
  int depth_;
  std::int64_t t0_;
  unsigned threads_;
  bool fast_kernel_;
  fault::FaultInjector* fault_ = nullptr;
  SpaStats stats_;

  // Persistent execution state, built lazily by the strategy that
  // first runs (an armed injector can flip strategies mid-life, so
  // both can coexist). CycleState holds the (slice × depth) SliceStage
  // grid of the cycle-exact walk; gen_ is the wavefront's generation
  // ladder, whose intermediate lattices are reused across passes.
  struct CycleState;
  std::unique_ptr<CycleState> cycle_;
  std::vector<lgca::SiteLattice> gen_;
};

}  // namespace lattice::arch
