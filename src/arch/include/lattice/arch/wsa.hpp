// Wide-serial architecture system simulator (§4, §6.1).
//
// A WSA system is k chips in a chain, each one P-wide pipeline stage;
// one pass of the site stream through the chain advances the lattice k
// generations. Main memory touches only the first stage's input and the
// last stage's output, which is the architecture's defining virtue: the
// bandwidth demand is 2·D·P bits per tick no matter how deep the
// pipeline is.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/arch/stream_stage.hpp"
#include "lattice/arch/technology.hpp"

namespace lattice::arch {

/// Counters accumulated by a pipeline run.
struct PipelineStats {
  std::int64_t ticks = 0;            // clock cycles consumed
  std::int64_t site_updates = 0;     // rule applications performed
  std::int64_t mem_sites_read = 0;   // sites fetched from main memory
  std::int64_t mem_sites_written = 0;
  std::int64_t interchip_sites = 0;  // sites crossing chip-to-chip links
  std::int64_t buffer_sites = 0;     // total shift-register storage

  /// Sustained updates per tick (the R/F of §6).
  double updates_per_tick() const {
    return ticks > 0 ? static_cast<double>(site_updates) /
                           static_cast<double>(ticks)
                     : 0.0;
  }
};

/// A k-stage, P-wide serial pipeline over a fixed lattice extent.
class WsaPipeline {
 public:
  /// `depth` chips (= generations per pass), `width` PEs per chip.
  /// `fast_kernel` opts gas rules into the fused CollisionLut gather
  /// inside every stage (identical output; non-gas rules ignore it).
  /// A non-null `fault` arms injection and online detection in every
  /// stage (see StreamStage) and enables the pipeline-level
  /// particle-conservation checks at the end of each run.
  ///
  /// The stage chain (ring buffers, parity shadows) is built once here
  /// and persists across runs; each run() rearms it in place, so a
  /// long-lived pipeline pays construction and allocation exactly once.
  WsaPipeline(Extent extent, const lgca::Rule& rule, int depth, int width,
              std::int64_t t0 = 0, bool fast_kernel = false,
              fault::FaultInjector* fault = nullptr);

  /// Stream `in` (which must use null boundaries) through the pipeline
  /// and return the lattice advanced by `depth` generations.
  lgca::SiteLattice run(const lgca::SiteLattice& in);

  /// Run `passes` consecutive passes (depth generations each).
  lgca::SiteLattice run_passes(const lgca::SiteLattice& in, int passes);

  /// Retarget the next run() at generation `t0` (stage generations are
  /// reassigned when the run rearms the chain). Lets one persistent
  /// pipeline advance a lattice pass after pass.
  void set_t0(std::int64_t t0) noexcept { t0_ = t0; }

  const PipelineStats& stats() const noexcept { return stats_; }
  int depth() const noexcept { return depth_; }
  int width() const noexcept { return width_; }

  /// Modeled wall-clock update rate for a technology: updates/s
  /// sustained at tech.clock_hz given the measured updates_per_tick.
  double modeled_rate(const Technology& tech) const {
    return stats_.updates_per_tick() * tech.clock_hz;
  }

 private:
  Extent extent_;
  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_ = nullptr;  // non-null iff fast path on
  int depth_;
  int width_;
  std::int64_t t0_;
  fault::FaultInjector* fault_ = nullptr;
  PipelineStats stats_;

  // Persistent machine state, allocated once in the constructor:
  // stage s updates generation t0+s and sees lead_ of upstream latency
  // accumulated over stages 0..s-1.
  std::vector<StreamStage> stages_;
  std::int64_t lead_ = 0;  // total chain latency, stream positions
  std::vector<lgca::Site> bus_a_;
  std::vector<lgca::Site> bus_b_;
};

}  // namespace lattice::arch
