#include "lattice/arch/system_run.hpp"

#include <algorithm>
#include <cmath>

namespace lattice::arch {

SystemRunReport model_system_run(const SystemRunConfig& cfg) {
  cfg.tech.validate();
  LATTICE_REQUIRE(cfg.pe_per_chip >= 1 && cfg.depth >= 1,
                  "need at least one PE and one stage");
  LATTICE_REQUIRE(cfg.lattice_len >= 2 && cfg.generations >= 1,
                  "need a lattice and at least one generation");
  LATTICE_REQUIRE(cfg.host_bytes_per_sec > 0, "host bandwidth must be > 0");

  SystemRunReport r;
  r.passes = (cfg.generations + cfg.depth - 1) / cfg.depth;

  const double sites = static_cast<double>(cfg.lattice_len) *
                       static_cast<double>(cfg.lattice_len);
  const double bytes_per_site = cfg.tech.bits_per_site / 8.0;

  // Per pass: the lattice streams in and out once...
  const double transfer_per_pass =
      2.0 * sites * bytes_per_site / cfg.host_bytes_per_sec;
  // ...while the engine consumes sites at F·P (each yielding k updates).
  const double compute_per_pass =
      sites / (cfg.tech.clock_hz * cfg.pe_per_chip);

  r.transfer_seconds = r.passes * transfer_per_pass;
  r.compute_seconds = r.passes * compute_per_pass;
  r.wall_seconds =
      cfg.double_buffered
          ? r.passes * std::max(transfer_per_pass, compute_per_pass)
          : r.transfer_seconds + r.compute_seconds;

  const double updates = sites * static_cast<double>(cfg.generations);
  r.achieved_rate = updates / r.wall_seconds;
  r.peak_rate = cfg.tech.clock_hz * cfg.pe_per_chip * cfg.depth;
  r.utilization = r.achieved_rate / r.peak_rate;
  return r;
}

}  // namespace lattice::arch
