#include "lattice/arch/wsa.hpp"

#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace lattice::arch {

namespace {

struct WsaObs {
  obs::MetricsRegistry::Id ticks = obs::counter_id("wsa.ticks");
  obs::MetricsRegistry::Id sites = obs::counter_id("wsa.site_updates");
  obs::MetricsRegistry::Id run_ns = obs::histogram_id("wsa.run_ns");
  static const WsaObs& get() {
    static const WsaObs ids;
    return ids;
  }
};

}  // namespace

WsaPipeline::WsaPipeline(Extent extent, const lgca::Rule& rule, int depth,
                         int width, std::int64_t t0, bool fast_kernel,
                         fault::FaultInjector* fault)
    : extent_(extent),
      rule_(&rule),
      lut_(fast_kernel ? lgca::CollisionLut::try_get(rule) : nullptr),
      depth_(depth),
      width_(width),
      t0_(t0),
      fault_(fault) {
  LATTICE_REQUIRE(depth >= 1, "WSA pipeline needs at least one stage");
  LATTICE_REQUIRE(width >= 1, "WSA stage width (P) must be >= 1");
  // Build the persistent stage chain: stage s updates generation t0+s
  // and sees s·delay positions of upstream latency. run() rearms these
  // stages in place instead of reconstructing them.
  stages_.reserve(static_cast<std::size_t>(depth_));
  for (int s = 0; s < depth_; ++s) {
    stages_.emplace_back(extent_, *rule_, t0_ + s, width_, lead_, lut_,
                         fault_, s);
    lead_ += stages_.back().delay();
  }
  bus_a_.assign(static_cast<std::size_t>(width_), 0);
  bus_b_.assign(static_cast<std::size_t>(width_), 0);
}

lgca::SiteLattice WsaPipeline::run(const lgca::SiteLattice& in) {
  LATTICE_REQUIRE(in.extent() == extent_, "lattice extent mismatch");
  LATTICE_REQUIRE(in.boundary() == lgca::Boundary::Null,
                  "serial pipelines stream null-boundary lattices only");
  const obs::TraceSpan span("wsa.run");
  const obs::ScopedTimer run_timer(WsaObs::get().run_ns);
  const std::int64_t ticks_before = stats_.ticks;

  // Rearm the persistent chain for this pass's generations.
  for (int s = 0; s < depth_; ++s) {
    stages_[static_cast<std::size_t>(s)].reset(t0_ + s);
  }

  const std::int64_t area = extent_.area();
  lgca::SiteLattice out(extent_, lgca::Boundary::Null);

  // Total stream positions: the lattice plus the accumulated latency,
  // rounded up to whole ticks.
  const std::int64_t total_positions = area + lead_;

  std::int64_t collected = 0;
  for (std::int64_t pos = 0; pos < total_positions || collected < area;
       pos += width_) {
    // Fetch a batch from main memory (zero-padded past the end).
    for (int b = 0; b < width_; ++b) {
      const std::int64_t p = pos + b;
      bus_a_[static_cast<std::size_t>(b)] =
          p < area ? in[static_cast<std::size_t>(p)] : lgca::Site{0};
      if (p < area) ++stats_.mem_sites_read;
    }
    // Ripple the batch through the chain.
    lgca::Site* cur = bus_a_.data();
    lgca::Site* nxt = bus_b_.data();
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      stages_[s].tick(cur, nxt);
      std::swap(cur, nxt);
      if (s + 1 < stages_.size()) stats_.interchip_sites += width_;
    }
    ++stats_.ticks;
    // The final stage's logical output position trails the *global*
    // input position by the total latency.
    for (int b = 0; b < width_; ++b) {
      const std::int64_t out_pos = pos + b - lead_;
      if (out_pos >= 0 && out_pos < area) {
        out[static_cast<std::size_t>(out_pos)] = cur[b];
        ++stats_.mem_sites_written;
        ++collected;
      }
    }
  }

  stats_.site_updates += area * depth_;
  stats_.buffer_sites = 0;
  for (const StreamStage& s : stages_) stats_.buffer_sites += s.buffer_sites();
  obs::count(WsaObs::get().ticks, stats_.ticks - ticks_before);
  obs::count(WsaObs::get().sites, area * depth_);

  // Online conservation audit (gas rules only): each stage is one
  // generation, so its emitted stream must carry exactly the particles
  // it received minus the exactly-predicted edge outflow, its input
  // must match the upstream emission, and obstacle geometry is static.
  if (fault_ != nullptr && lut_ != nullptr) {
    std::int64_t link_mass = 0;
    std::int64_t link_obs = 0;
    for (std::int64_t p = 0; p < area; ++p) {
      const lgca::Site v = in[static_cast<std::size_t>(p)];
      link_mass += lgca::particle_count(v);
      link_obs += lgca::is_obstacle(v) ? 1 : 0;
    }
    for (const StreamStage& s : stages_) {
      const fault::StageAudit& a = s.audit();
      if (a.in_mass != link_mass || a.in_obstacles != link_obs) {
        fault_->report_conservation_error();
      }
      if (!a.balanced()) fault_->report_conservation_error();
      link_mass = a.out_mass;
      link_obs = a.out_obstacles;
    }
  }
  return out;
}

lgca::SiteLattice WsaPipeline::run_passes(const lgca::SiteLattice& in,
                                          int passes) {
  LATTICE_REQUIRE(passes >= 1, "need at least one pass");
  // Each pass advances depth_ generations; the persistent chain is
  // retargeted per pass and stats accumulate in place.
  const std::int64_t t0 = t0_;
  lgca::SiteLattice cur = in;
  for (int p = 0; p < passes; ++p) {
    set_t0(t0 + static_cast<std::int64_t>(p) * depth_);
    cur = run(cur);
  }
  set_t0(t0);
  return cur;
}

}  // namespace lattice::arch
