#include "lattice/arch/wsa_e.hpp"

#include <algorithm>
#include <cmath>

#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace lattice::arch {

namespace {

struct WsaEObs {
  obs::MetricsRegistry::Id ticks = obs::counter_id("wsa_e.ticks");
  obs::MetricsRegistry::Id sites = obs::counter_id("wsa_e.site_updates");
  obs::MetricsRegistry::Id stalls = obs::counter_id("wsa_e.buffer_stalls");
  obs::MetricsRegistry::Id run_ns = obs::histogram_id("wsa_e.run_ns");
  static const WsaEObs& get() {
    static const WsaEObs ids;
    return ids;
  }
};

}  // namespace

WsaEPipeline::WsaEPipeline(Extent extent, const lgca::Rule& rule, int depth,
                           std::int64_t t0, bool fast_kernel,
                           fault::FaultInjector* fault, MemoryConfig buffer)
    : extent_(extent),
      rule_(&rule),
      lut_(fast_kernel ? lgca::CollisionLut::try_get(rule) : nullptr),
      depth_(depth),
      t0_(t0),
      fault_(fault),
      buffer_(buffer) {
  LATTICE_REQUIRE(depth >= 1, "WSA-E pipeline needs at least one stage");
  // One PE per chip (the §6.3 pin bill): the chain is a width-1 WSA.
  stages_.reserve(static_cast<std::size_t>(depth_));
  for (int s = 0; s < depth_; ++s) {
    stages_.emplace_back(extent_, *rule_, t0_ + s, /*batch=*/1, lead_, lut_,
                         fault_, s);
    lead_ += stages_.back().delay();
  }

  // Measure the buffer channel once. A stage's external buffer is two
  // line FIFOs; per tick each sees a head write at address p mod cap
  // and a tail read at (p+1) mod cap. cap is the line length plus
  // slack, rounded up to even so the head/tail pair always straddles a
  // two-bank part. Every FIFO of every stage runs this same pattern in
  // lockstep, so the machine's stall rate is one channel's stall rate;
  // the pattern is periodic in cap ticks, so a bounded window measures
  // it exactly (up to end-of-window rounding).
  const std::int64_t cap = ((extent_.width + 3) / 2) * 2;
  const std::int64_t window = std::min<std::int64_t>(
      extent_.area() + lead_, std::max<std::int64_t>(4 * cap, 1024));
  std::vector<std::vector<std::int64_t>> schedule(
      static_cast<std::size_t>(window));
  for (std::int64_t t = 0; t < window; ++t) {
    schedule[static_cast<std::size_t>(t)] = {t % cap, (t + 1) % cap};
  }
  BankedMemory channel(buffer_);
  const MemoryResult res = channel.service(schedule);
  stall_rate_ = static_cast<double>(res.stalls) / static_cast<double>(window);
}

lgca::SiteLattice WsaEPipeline::run(const lgca::SiteLattice& in) {
  LATTICE_REQUIRE(in.extent() == extent_, "lattice extent mismatch");
  LATTICE_REQUIRE(in.boundary() == lgca::Boundary::Null,
                  "serial pipelines stream null-boundary lattices only");
  const obs::TraceSpan span("wsa_e.run");
  const obs::ScopedTimer run_timer(WsaEObs::get().run_ns);

  for (int s = 0; s < depth_; ++s) {
    stages_[static_cast<std::size_t>(s)].reset(t0_ + s);
  }

  const std::int64_t area = extent_.area();
  lgca::SiteLattice out(extent_, lgca::Boundary::Null);
  const std::int64_t total_positions = area + lead_;

  lgca::Site bus_a = 0;
  lgca::Site bus_b = 0;
  std::int64_t pass_ticks = 0;
  std::int64_t collected = 0;
  for (std::int64_t pos = 0; pos < total_positions || collected < area;
       ++pos) {
    bus_a = pos < area ? in[static_cast<std::size_t>(pos)] : lgca::Site{0};
    if (pos < area) ++stats_.mem_sites_read;
    lgca::Site* cur = &bus_a;
    lgca::Site* nxt = &bus_b;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      stages_[s].tick(cur, nxt);
      std::swap(cur, nxt);
      if (s + 1 < stages_.size()) ++stats_.interchip_sites;
    }
    ++pass_ticks;
    const std::int64_t out_pos = pos - lead_;
    if (out_pos >= 0 && out_pos < area) {
      out[static_cast<std::size_t>(out_pos)] = *cur;
      ++stats_.mem_sites_written;
      ++collected;
    }
  }

  // The off-chip channel's cost for this pass: 4 words per stage per
  // stream tick, and the measured per-tick stall surcharge of the
  // configured parts (zero with line_buffer_config()).
  const auto stall_ticks = static_cast<std::int64_t>(
      std::llround(stall_rate_ * static_cast<double>(pass_ticks)));
  stats_.stream_ticks += pass_ticks;
  stats_.buffer_stall_ticks += stall_ticks;
  stats_.ticks += pass_ticks + stall_ticks;
  stats_.buffer_accesses += 4 * static_cast<std::int64_t>(depth_) * pass_ticks;
  stats_.site_updates += area * depth_;
  stats_.buffer_sites = 0;
  for (const StreamStage& s : stages_) stats_.buffer_sites += s.buffer_sites();
  obs::count(WsaEObs::get().ticks, pass_ticks + stall_ticks);
  obs::count(WsaEObs::get().sites, area * depth_);
  obs::count(WsaEObs::get().stalls, stall_ticks);

  // Online conservation audit (gas rules only), exactly as in WSA:
  // each stage is one generation, so its emitted stream must carry the
  // particles it received minus the exactly-predicted edge outflow.
  if (fault_ != nullptr && lut_ != nullptr) {
    std::int64_t link_mass = 0;
    std::int64_t link_obs = 0;
    for (std::int64_t p = 0; p < area; ++p) {
      const lgca::Site v = in[static_cast<std::size_t>(p)];
      link_mass += lgca::particle_count(v);
      link_obs += lgca::is_obstacle(v) ? 1 : 0;
    }
    for (const StreamStage& s : stages_) {
      const fault::StageAudit& a = s.audit();
      if (a.in_mass != link_mass || a.in_obstacles != link_obs) {
        fault_->report_conservation_error();
      }
      if (!a.balanced()) fault_->report_conservation_error();
      link_mass = a.out_mass;
      link_obs = a.out_obstacles;
    }
  }
  return out;
}

}  // namespace lattice::arch
