#include "lattice/arch/memory.hpp"

#include <algorithm>

namespace lattice::arch {

BankedMemory::BankedMemory(MemoryConfig cfg) : cfg_(cfg) {
  LATTICE_REQUIRE(cfg.banks >= 1, "memory needs at least one bank");
  LATTICE_REQUIRE(cfg.bank_busy_ticks >= 1, "bank busy time must be >= 1");
}

MemoryResult BankedMemory::service(
    const std::vector<std::vector<std::int64_t>>& ticks) {
  MemoryResult r;
  std::vector<std::int64_t> bank_free(static_cast<std::size_t>(cfg_.banks),
                                      0);
  std::int64_t now = 0;
  for (const auto& batch : ticks) {
    // All of this tick's requests must issue before the machine moves
    // on; a busy bank stalls the whole synchronous tick.
    std::int64_t tick_done = now;
    for (const std::int64_t addr : batch) {
      LATTICE_REQUIRE(addr >= 0, "negative address");
      const auto b = static_cast<std::size_t>(
          addr % static_cast<std::int64_t>(cfg_.banks));
      const std::int64_t issue = std::max(now, bank_free[b]);
      bank_free[b] = issue + cfg_.bank_busy_ticks;
      tick_done = std::max(tick_done, issue + 1);
      ++r.requests;
    }
    r.stalls += tick_done - (now + 1) > 0 ? tick_done - (now + 1) : 0;
    now = std::max(now + 1, tick_done);
  }
  r.ticks = now;
  return r;
}

std::vector<std::vector<std::int64_t>> wsa_address_schedule(Extent e,
                                                            int batch) {
  LATTICE_REQUIRE(batch >= 1, "batch must be >= 1");
  std::vector<std::vector<std::int64_t>> out;
  const std::int64_t area = e.area();
  for (std::int64_t pos = 0; pos < area; pos += batch) {
    std::vector<std::int64_t> tick;
    for (int b = 0; b < batch && pos + b < area; ++b) {
      tick.push_back(pos + b);
    }
    out.push_back(std::move(tick));
  }
  return out;
}

std::vector<std::vector<std::int64_t>> spa_address_schedule(
    Extent e, std::int64_t slice_width) {
  LATTICE_REQUIRE(slice_width >= 1 && e.width % slice_width == 0,
                  "slice width must divide the lattice width");
  const std::int64_t slices = e.width / slice_width;
  const std::int64_t slice_area = slice_width * e.height;
  const std::int64_t total_ticks = slice_area + (slices - 1) * slice_width;
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(static_cast<std::size_t>(total_ticks));
  for (std::int64_t t = 0; t < total_ticks; ++t) {
    std::vector<std::int64_t> tick;
    for (std::int64_t j = 0; j < slices; ++j) {
      const std::int64_t p = t - j * slice_width;  // slice-local position
      if (p < 0 || p >= slice_area) continue;
      const std::int64_t y = p / slice_width;
      const std::int64_t x = j * slice_width + p % slice_width;
      tick.push_back(y * e.width + x);
    }
    if (!tick.empty()) out.push_back(std::move(tick));
  }
  return out;
}

}  // namespace lattice::arch
