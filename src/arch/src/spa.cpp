#include "lattice/arch/spa.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <functional>
#include <utility>

#include "lattice/common/thread_pool.hpp"
#include "lattice/lgca/collision_lut.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace lattice::arch {

namespace {

struct SpaObs {
  obs::MetricsRegistry::Id ticks = obs::counter_id("spa.ticks");
  obs::MetricsRegistry::Id sites = obs::counter_id("spa.site_updates");
  obs::MetricsRegistry::Id run_ns = obs::histogram_id("spa.run_ns");
  obs::MetricsRegistry::Id lane_ns = obs::histogram_id("spa.lane_ns");
  static const SpaObs& get() {
    static const SpaObs ids;
    return ids;
  }
};

}  // namespace

// One serial pipeline stage scoped to a slice, with window completion
// across slice boundaries via peeks into the neighbor stage's buffer.
// Defined at namespace scope (this TU only) so the persistent
// SpaMachine::CycleState can hold a grid of them without dragging the
// class into the public header.
class SliceStage {
 public:
  SliceStage(Extent slice_extent, std::int64_t slice_x0,
             std::int64_t lattice_width, const lgca::Rule& rule,
             const lgca::CollisionLut* lut, std::int64_t t, std::int64_t lead,
             fault::FaultInjector* fault = nullptr, int stage_id = 0,
             std::int64_t lane = 0)
      : extent_(slice_extent),
        x0_(slice_x0),
        lattice_width_(lattice_width),
        rule_(&rule),
        lut_(lut),
        t_(t),
        delay_(extent_.width + 1),
        lead_(lead),
        next_in_(-lead),
        ring_(static_cast<std::size_t>(2 * extent_.width + 6), 0),
        fault_(fault),
        stage_id_(stage_id),
        lane_(lane) {
    if (fault_ != nullptr) {
      meta_.assign(ring_.size(), 0);
      // Conservation is only defined for gases; generic rules rely on
      // the parity and side-channel detectors alone.
      audit_.valid = lut_ != nullptr;
      if (lut_ != nullptr) topo_ = lut_->model().topology();
    }
  }

  /// Rearm for a fresh pass at generation `t`: clear the slice buffer
  /// and parity shadow, reset the ledger, rewind the stream. Keeps the
  /// allocations — the point of a persistent machine.
  void reset(std::int64_t t) {
    t_ = t;
    next_in_ = -lead_;
    std::fill(ring_.begin(), ring_.end(), lgca::Site{0});
    if (fault_ != nullptr) {
      std::fill(meta_.begin(), meta_.end(), std::uint8_t{0});
      const bool valid = audit_.valid;
      audit_ = fault::StageAudit{};
      audit_.valid = valid;
    }
  }

  std::int64_t delay() const noexcept { return delay_; }
  std::int64_t newest() const noexcept { return next_in_ - 1; }
  std::int64_t buffer_sites() const noexcept {
    return static_cast<std::int64_t>(ring_.size());
  }

  void set_neighbors(SliceStage* left, SliceStage* right) noexcept {
    left_ = left;
    right_ = right;
  }

  /// Buffered stream value at logical position `pos`; zero outside the
  /// slice stream (vertical null padding). Asserts the position has
  /// arrived and is still buffered — the synchronism guarantee the
  /// stagger provides.
  lgca::Site peek(std::int64_t pos) const noexcept {
    if (pos < 0 || pos >= extent_.area()) return 0;
    LATTICE_ASSERT(pos <= newest(), "SPA side channel read of future data");
    LATTICE_ASSERT(newest() - pos <
                       static_cast<std::int64_t>(ring_.size()),
                   "SPA side channel read of expired data");
    const std::size_t idx = index(pos);
    const lgca::Site v = ring_[idx];
    if (fault_ != nullptr) {
      // The parity shadow was written from the true stream value; a
      // mismatch means the slice buffer decayed underneath us.
      std::uint8_t& m = meta_[idx];
      if (((std::popcount(static_cast<unsigned>(v)) ^ m) & 1) != 0 &&
          (m & 2) == 0) {
        m |= 2;  // report each corrupted word once
        fault_->report_parity_error();
      }
    }
    return v;
  }

  /// Conservation ledger for this stage's pass (valid only when a
  /// fault injector is attached and the rule is a gas).
  const fault::StageAudit& audit() const noexcept { return audit_; }

  /// Consume one input site, emit one output site (zero when the
  /// output position falls outside the slice).
  lgca::Site tick(lgca::Site in, SpaStats& stats) {
    if (fault_ != nullptr) in = store_guarded(in);
    ring_[index(next_in_)] = in;
    ++next_in_;
    const std::int64_t pos = next_in_ - 1 - delay_;
    if (pos < 0 || pos >= extent_.area()) return 0;
    lgca::Site u = lut_ != nullptr ? update_at_fused(pos, stats)
                                   : update_at(pos, stats);
    if (fault_ != nullptr) u = emit_guarded(u);
    return u;
  }

 private:
  std::size_t index(std::int64_t pos) const noexcept {
    const auto cap = static_cast<std::int64_t>(ring_.size());
    return static_cast<std::size_t>(((pos % cap) + cap) % cap);
  }

  /// Ledger + transient corruption + parity shadow for the word being
  /// stored at logical position next_in_. Keys and the outflow audit
  /// use *global* lattice coordinates so draws are unique across
  /// slices and cross-slice streaming cancels in the per-depth
  /// aggregate.
  lgca::Site store_guarded(lgca::Site v) {
    lgca::Site stored = v;
    const std::int64_t pos = next_in_;
    if (pos >= 0 && pos < extent_.area()) {
      const std::int64_t gx = x0_ + pos % extent_.width;
      const std::int64_t gy = pos / extent_.width;
      if (audit_.valid) {
        audit_.in_mass += lgca::particle_count(v);
        audit_.in_obstacles += lgca::is_obstacle(v) ? 1 : 0;
        audit_.outflow += fault::site_outflow(
            v, {gx, gy}, Extent{lattice_width_, extent_.height}, topo_);
      }
      stored = fault_->corrupt_stored(t_, gy * lattice_width_ + gx, v);
    }
    meta_[index(pos)] = static_cast<std::uint8_t>(
        std::popcount(static_cast<unsigned>(v)) & 1);
    return stored;
  }

  /// Stuck-at masks for this (depth, slice) chip plus the output side
  /// of the conservation ledger.
  lgca::Site emit_guarded(lgca::Site u) {
    if (fault_->has_stuck()) u = fault_->apply_stuck(stage_id_, lane_, u);
    if (audit_.valid) {
      audit_.out_mass += lgca::particle_count(u);
      audit_.out_obstacles += lgca::is_obstacle(u) ? 1 : 0;
    }
    return u;
  }

  /// A word arriving over a side channel, keyed by the *source* site's
  /// global position and the link it crossed, so re-reads of the same
  /// boundary word see the same (possibly corrupted) latched value.
  /// The links carry parity and framing, so any altered word is
  /// detected with certainty.
  lgca::Site side_guarded(lgca::Site v, std::int64_t src_gpos,
                          bool from_right) const {
    const lgca::Site got = fault_->corrupt_side_word(
        t_, src_gpos * 2 + (from_right ? 1 : 0), v);
    if (got != v) fault_->report_side_error();
    return got;
  }

  /// Window cell at slice-local (x + dx, y + dy), with the same
  /// masking and side-channel routing as the generic window build.
  lgca::Site window_value(std::int64_t x, std::int64_t y, int dx, int dy,
                          std::int64_t pos, SpaStats& stats) const {
    const std::int64_t w = extent_.width;
    const std::int64_t gx = x0_ + x + dx;  // global column
    const std::int64_t ny = y + dy;
    if (gx < 0 || gx >= lattice_width_ || ny < 0 || ny >= extent_.height) {
      return 0;
    }
    const std::int64_t lx = x + dx;
    if (lx >= 0 && lx < w) return peek(pos + dy * w + dx);
    if (lx < 0) {
      LATTICE_ASSERT(left_ != nullptr, "missing left slice");
      ++stats.boundary_fetches;
      lgca::Site v = left_->peek(ny * w + (w - 1));
      if (fault_ != nullptr) {
        v = side_guarded(v, ny * lattice_width_ + (x0_ - 1), false);
      }
      return v;
    }
    LATTICE_ASSERT(right_ != nullptr, "missing right slice");
    ++stats.boundary_fetches;
    lgca::Site v = right_->peek(ny * w + 0);
    if (fault_ != nullptr) {
      v = side_guarded(v, ny * lattice_width_ + (x0_ + w), true);
    }
    return v;
  }

  lgca::Site update_at(std::int64_t pos, SpaStats& stats) const {
    const std::int64_t w = extent_.width;
    const std::int64_t x = pos % w;  // slice-local column
    const std::int64_t y = pos / w;
    lgca::Window win;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        win.at(dx, dy) = window_value(x, y, dx, dy, pos, stats);
      }
    }
    ++stats.site_updates;
    return rule_->apply(win, lgca::SiteContext{x0_ + x, y, t_});
  }

  /// Fused path: gather only the channels the gas update reads, skip
  /// Window construction and virtual dispatch. Counters are a property
  /// of the simulated machine (the hardware window always moves all
  /// boundary-crossing cells), so side-channel traffic is accounted
  /// exactly as the generic path would.
  lgca::Site update_at_fused(std::int64_t pos, SpaStats& stats) const {
    const std::int64_t w = extent_.width;
    const std::int64_t x = pos % w;
    const std::int64_t y = pos / w;
    SpaStats scratch;  // tap-driven reads must not double-count traffic
    lgca::Site in = 0;
    const auto& taps = lut_->taps((y & 1) != 0);
    for (int i = 0; i < lut_->tap_count(); ++i) {
      const auto tap = taps[static_cast<std::size_t>(i)];
      in |= static_cast<lgca::Site>(
          window_value(x, y, tap.dx, tap.dy, pos, scratch) & tap.bit);
    }
    in |= static_cast<lgca::Site>(peek(pos) & lut_->center_mask());
    // Machine-accurate side-channel accounting: every in-range window
    // cell that crosses the slice edge is one fetch, as in update_at.
    if (x == 0 && left_ != nullptr) {
      for (int dy = -1; dy <= 1; ++dy) {
        const std::int64_t ny = y + dy;
        if (ny >= 0 && ny < extent_.height) ++stats.boundary_fetches;
      }
    }
    if (x == w - 1 && right_ != nullptr) {
      for (int dy = -1; dy <= 1; ++dy) {
        const std::int64_t ny = y + dy;
        if (ny >= 0 && ny < extent_.height) ++stats.boundary_fetches;
      }
    }
    ++stats.site_updates;
    return lut_->collide(in,
                         lgca::GasModel::chirality(x0_ + x, y, t_));
  }

  Extent extent_;
  std::int64_t x0_;
  std::int64_t lattice_width_;
  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_;
  std::int64_t t_;
  std::int64_t delay_;
  std::int64_t lead_;
  std::int64_t next_in_;
  std::vector<lgca::Site> ring_;
  SliceStage* left_ = nullptr;
  SliceStage* right_ = nullptr;

  // Fault machinery; inert (and meta_ unallocated) when fault_ is null.
  fault::FaultInjector* fault_ = nullptr;
  int stage_id_ = 0;
  std::int64_t lane_ = 0;
  lgca::Topology topo_ = lgca::Topology::Hex6;
  fault::StageAudit audit_;
  /// Parity shadow of the slice buffer: bit 0 = parity of the word the
  /// stream delivered, bit 1 = mismatch already reported. Mutable
  /// because detection happens on (const) peeks.
  mutable std::vector<std::uint8_t> meta_;
};

/// Persistent cycle-exact machine state: stages[j][d] is the depth-d
/// stage of slice j, kept alive (and rearmed) across passes.
struct SpaMachine::CycleState {
  std::vector<std::vector<SliceStage>> stages;
};

SpaMachine::~SpaMachine() = default;
SpaMachine::SpaMachine(SpaMachine&&) noexcept = default;
SpaMachine& SpaMachine::operator=(SpaMachine&&) noexcept = default;

SpaMachine::SpaMachine(Extent extent, const lgca::Rule& rule,
                       std::int64_t slice_width, int depth, std::int64_t t0,
                       unsigned threads, bool fast_kernel,
                       fault::FaultInjector* fault)
    : extent_(extent),
      rule_(&rule),
      slice_width_(slice_width),
      slices_(0),
      depth_(depth),
      t0_(t0),
      threads_(threads),
      fast_kernel_(fast_kernel),
      fault_(fault) {
  LATTICE_REQUIRE(extent.width > 0 && extent.height > 0,
                  "SPA extent must be positive");
  LATTICE_REQUIRE(slice_width >= 2, "SPA slice width must be >= 2");
  LATTICE_REQUIRE(extent.width % slice_width == 0,
                  "SPA slice width must divide the lattice width");
  LATTICE_REQUIRE(depth >= 1, "SPA depth must be >= 1");
  LATTICE_REQUIRE(threads >= 1, "SPA needs at least one thread");
  slices_ = extent.width / slice_width;
}

lgca::SiteLattice SpaMachine::run(const lgca::SiteLattice& in) {
  LATTICE_REQUIRE(in.extent() == extent_, "lattice extent mismatch");
  LATTICE_REQUIRE(in.boundary() == lgca::Boundary::Null,
                  "SPA streams null-boundary lattices only");
  const obs::TraceSpan span("spa.run");
  const obs::ScopedTimer run_timer(SpaObs::get().run_ns);
  const std::int64_t ticks_before = stats_.ticks;
  // Armed runs must exercise the simulated slice buffers and side
  // channels, which only exist in the cycle-exact walk.
  const bool faulty = fault_ != nullptr && fault_->armed();
  lgca::SiteLattice out = (threads_ >= 2 && !faulty) ? run_parallel(in)
                                                     : run_cycle_exact(in);
  if (fault_ != nullptr && fault_->remapped_lanes() > 0) {
    // A remapped slice's columns are re-streamed serially by a
    // surviving neighbor pipeline: one extra slice-stream per removed
    // chip per pass — the tick price of graceful degradation.
    stats_.ticks += static_cast<std::int64_t>(fault_->remapped_lanes()) *
                    slice_width_ * extent_.height;
  }
  obs::count(SpaObs::get().ticks, stats_.ticks - ticks_before);
  obs::count(SpaObs::get().sites, extent_.area() * depth_);
  return out;
}

lgca::SiteLattice SpaMachine::run_cycle_exact(const lgca::SiteLattice& in) {
  const lgca::CollisionLut* lut =
      fast_kernel_ ? lgca::CollisionLut::try_get(*rule_) : nullptr;
  const Extent slice_extent{slice_width_, extent_.height};
  const std::int64_t slice_area = slice_extent.area();
  const std::int64_t stage_delay = slice_width_ + 1;

  // stages[j][d]: depth-d stage of slice j. Slice j is staggered one
  // slice-row (W positions) behind slice j-1; depth adds stage latency.
  // The grid is built on the first pass and rearmed in place on every
  // later one.
  if (cycle_ == nullptr) {
    cycle_ = std::make_unique<CycleState>();
    cycle_->stages.resize(static_cast<std::size_t>(slices_));
    for (std::int64_t j = 0; j < slices_; ++j) {
      auto& chain = cycle_->stages[static_cast<std::size_t>(j)];
      chain.reserve(static_cast<std::size_t>(depth_));
      for (int d = 0; d < depth_; ++d) {
        chain.emplace_back(slice_extent, j * slice_width_, extent_.width,
                           *rule_, lut, t0_ + d,
                           j * slice_width_ + d * stage_delay, fault_, d, j);
      }
    }
    for (std::int64_t j = 0; j < slices_; ++j) {
      for (int d = 0; d < depth_; ++d) {
        SliceStage* left =
            j > 0 ? &cycle_->stages[static_cast<std::size_t>(j - 1)]
                                   [static_cast<std::size_t>(d)]
                  : nullptr;
        SliceStage* right = j + 1 < slices_
                                ? &cycle_->stages[static_cast<std::size_t>(
                                      j + 1)][static_cast<std::size_t>(d)]
                                : nullptr;
        cycle_->stages[static_cast<std::size_t>(j)]
                      [static_cast<std::size_t>(d)]
                          .set_neighbors(left, right);
      }
    }
  }
  auto& stages = cycle_->stages;
  for (auto& chain : stages) {
    for (int d = 0; d < depth_; ++d) {
      chain[static_cast<std::size_t>(d)].reset(t0_ + d);
    }
  }

  lgca::SiteLattice out(extent_, lgca::Boundary::Null);
  std::int64_t collected = 0;
  const std::int64_t total_ticks = (slices_ - 1) * slice_width_ +
                                   slice_area + depth_ * stage_delay + 2;

  for (std::int64_t tick = 0;
       tick < total_ticks || collected < extent_.area(); ++tick) {
    // Rightmost slice first: it is the most-delayed stream, and its
    // left neighbors read its freshly arrived boundary column.
    for (std::int64_t j = slices_ - 1; j >= 0; --j) {
      auto& chain = stages[static_cast<std::size_t>(j)];
      // Memory feeds slice j the site at local position tick - j·W.
      const std::int64_t p0 = tick - j * slice_width_;
      lgca::Site v = 0;
      if (p0 >= 0 && p0 < slice_area) {
        const std::int64_t ly = p0 / slice_width_;
        const std::int64_t lx = p0 % slice_width_;
        v = in.at({j * slice_width_ + lx, ly});
        ++stats_.mem_sites_read;
      }
      for (int d = 0; d < depth_; ++d) {
        v = chain[static_cast<std::size_t>(d)].tick(v, stats_);
      }
      // Final stage output: logical position for the last stage.
      const std::int64_t out_pos =
          tick - j * slice_width_ - depth_ * stage_delay;
      if (out_pos >= 0 && out_pos < slice_area) {
        const std::int64_t ly = out_pos / slice_width_;
        const std::int64_t lx = out_pos % slice_width_;
        out.at({j * slice_width_ + lx, ly}) = v;
        ++stats_.mem_sites_written;
        ++collected;
      }
    }
    ++stats_.ticks;
  }

  stats_.buffer_sites = 0;
  for (const auto& chain : stages)
    for (const SliceStage& s : chain) stats_.buffer_sites += s.buffer_sites();

  // Online conservation audit (gas rules only). Per slice the ledger
  // does not balance — side channels carry particles between slices —
  // but aggregated over all slices of one depth, the emitted stream
  // must hold exactly the particles stored minus the exactly-predicted
  // edge outflow, the stored stream must match the upstream emission,
  // and obstacle geometry is static.
  if (fault_ != nullptr && lut != nullptr) {
    std::int64_t link_mass = 0;
    std::int64_t link_obs = 0;
    for (std::int64_t p = 0; p < extent_.area(); ++p) {
      const lgca::Site v = in[static_cast<std::size_t>(p)];
      link_mass += lgca::particle_count(v);
      link_obs += lgca::is_obstacle(v) ? 1 : 0;
    }
    for (int d = 0; d < depth_; ++d) {
      fault::StageAudit agg;
      for (std::int64_t j = 0; j < slices_; ++j) {
        agg += stages[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)]
                   .audit();
      }
      if (agg.in_mass != link_mass || agg.in_obstacles != link_obs) {
        fault_->report_conservation_error();
      }
      if (!agg.balanced()) fault_->report_conservation_error();
      link_mass = agg.out_mass;
      link_obs = agg.out_obstacles;
    }
  }
  return out;
}

// Thread-parallel execution: slice pipelines on worker lanes, stepped
// as a row-chunk wavefront. Lane ownership is a contiguous group of
// slices; generation d+1 of chunk c is computed at step s = c + 2d, so
// every read of generation d (rows up to one past the chunk) lands on
// data finished at step s-1 or earlier — the barrier between steps is
// the side-channel synchronization. Output is the reference evolution
// by construction: every site update reads pure generation-d data.
lgca::SiteLattice SpaMachine::run_parallel(const lgca::SiteLattice& in) {
  const lgca::CollisionLut* lut =
      fast_kernel_ ? lgca::CollisionLut::try_get(*rule_) : nullptr;
  const std::int64_t h = extent_.height;
  const std::int64_t area = extent_.area();

  // Generation ladder gen_[0..depth]; gen_[0] is the input pass. The
  // ladder persists across passes (every cell of an intermediate
  // lattice is rewritten before it is read, so stale data from the
  // previous pass is never observed); only gen_[0] is refreshed here.
  if (gen_.size() != static_cast<std::size_t>(depth_) + 1) {
    gen_.clear();
    gen_.reserve(static_cast<std::size_t>(depth_) + 1);
    gen_.push_back(in);
    for (int d = 0; d < depth_; ++d) {
      gen_.emplace_back(extent_, lgca::Boundary::Null);
    }
  } else {
    gen_.front() = in;
  }
  auto& gen = gen_;

  auto& pool = common::ThreadPool::shared();
  const unsigned lanes = static_cast<unsigned>(std::min<std::int64_t>(
      {static_cast<std::int64_t>(threads_), slices_,
       static_cast<std::int64_t>(pool.max_lanes())}));

  const std::int64_t chunk = std::min<std::int64_t>(8, h);
  const std::int64_t chunks = (h + chunk - 1) / chunk;
  const std::int64_t steps = chunks + 2 * (depth_ - 1);

  const auto lane_body = [&](unsigned lane, const auto& sync) {
    const std::int64_t s0 = slices_ * lane / lanes;
    const std::int64_t s1 = slices_ * (lane + 1) / lanes;
    const std::int64_t x0 = s0 * slice_width_;
    const std::int64_t x1 = s1 * slice_width_;
    for (std::int64_t s = 0; s < steps; ++s) {
      for (int d = 0; d < depth_; ++d) {
        const std::int64_t c = s - 2 * d;
        if (c < 0 || c >= chunks) continue;
        const lgca::SiteLattice& src = gen[static_cast<std::size_t>(d)];
        lgca::SiteLattice& dst = gen[static_cast<std::size_t>(d) + 1];
        const std::int64_t t = t0_ + d;
        const std::int64_t yb = c * chunk;
        const std::int64_t ye = std::min(h, yb + chunk);
        for (std::int64_t y = yb; y < ye; ++y) {
          if (lut != nullptr) {
            lut->update_span(dst, src, t, y, x0, x1);
          } else {
            for (std::int64_t x = x0; x < x1; ++x) {
              dst.at({x, y}) = rule_->apply(src.window_at({x, y}),
                                            lgca::SiteContext{x, y, t});
            }
          }
        }
      }
      sync();
    }
  };

  if (lanes <= 1) {
    lane_body(0, [] {});
  } else {
    std::barrier<> side_channel(lanes);
    pool.run_lanes(lanes, [&](unsigned lane) {
      const obs::ScopedTimer timer(SpaObs::get().lane_ns);
      lane_body(lane, [&] { side_channel.arrive_and_wait(); });
    });
  }

  // Counters of the simulated machine — the closed forms the tick walk
  // in run_cycle_exact produces (asserted equal in the tests): the walk
  // always runs exactly total_ticks ticks, reads and writes the lattice
  // once, applies the rule at every (site, stage), and completes 3h-2
  // in-range window cells per side of each interior slice edge per
  // generation. Buffers are the 2W+6 ring of each (slice, stage).
  stats_.ticks += (slices_ - 1) * slice_width_ + slice_width_ * h +
                  depth_ * (slice_width_ + 1) + 2;
  stats_.site_updates += area * depth_;
  stats_.mem_sites_read += area;
  stats_.mem_sites_written += area;
  stats_.boundary_fetches += static_cast<std::int64_t>(depth_) *
                             (slices_ - 1) * 2 * (3 * h - 2);
  stats_.buffer_sites = slices_ * depth_ * (2 * slice_width_ + 6);
  // Hand the final generation to the caller and re-arm the slot so the
  // persistent ladder stays fully allocated for the next pass.
  lgca::SiteLattice result = std::move(gen.back());
  gen.back() = lgca::SiteLattice(extent_, lgca::Boundary::Null);
  return result;
}

}  // namespace lattice::arch
