#include "lattice/arch/spa.hpp"

#include <algorithm>

namespace lattice::arch {

namespace {

/// One serial pipeline stage scoped to a slice, with window completion
/// across slice boundaries via peeks into the neighbor stage's buffer.
class SliceStage {
 public:
  SliceStage(Extent slice_extent, std::int64_t slice_x0,
             std::int64_t lattice_width, const lgca::Rule& rule,
             std::int64_t t, std::int64_t lead)
      : extent_(slice_extent),
        x0_(slice_x0),
        lattice_width_(lattice_width),
        rule_(&rule),
        t_(t),
        delay_(extent_.width + 1),
        next_in_(-lead),
        ring_(static_cast<std::size_t>(2 * extent_.width + 6), 0) {}

  std::int64_t delay() const noexcept { return delay_; }
  std::int64_t newest() const noexcept { return next_in_ - 1; }
  std::int64_t buffer_sites() const noexcept {
    return static_cast<std::int64_t>(ring_.size());
  }

  void set_neighbors(SliceStage* left, SliceStage* right) noexcept {
    left_ = left;
    right_ = right;
  }

  /// Buffered stream value at logical position `pos`; zero outside the
  /// slice stream (vertical null padding). Asserts the position has
  /// arrived and is still buffered — the synchronism guarantee the
  /// stagger provides.
  lgca::Site peek(std::int64_t pos) const noexcept {
    if (pos < 0 || pos >= extent_.area()) return 0;
    LATTICE_ASSERT(pos <= newest(), "SPA side channel read of future data");
    LATTICE_ASSERT(newest() - pos <
                       static_cast<std::int64_t>(ring_.size()),
                   "SPA side channel read of expired data");
    return ring_[index(pos)];
  }

  /// Consume one input site, emit one output site (zero when the
  /// output position falls outside the slice).
  lgca::Site tick(lgca::Site in, SpaStats& stats) {
    ring_[index(next_in_)] = in;
    ++next_in_;
    const std::int64_t pos = next_in_ - 1 - delay_;
    if (pos < 0 || pos >= extent_.area()) return 0;
    return update_at(pos, stats);
  }

 private:
  std::size_t index(std::int64_t pos) const noexcept {
    const auto cap = static_cast<std::int64_t>(ring_.size());
    return static_cast<std::size_t>(((pos % cap) + cap) % cap);
  }

  lgca::Site update_at(std::int64_t pos, SpaStats& stats) const {
    const std::int64_t w = extent_.width;
    const std::int64_t x = pos % w;  // slice-local column
    const std::int64_t y = pos / w;
    lgca::Window win;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t gx = x0_ + x + dx;  // global column
        const std::int64_t ny = y + dy;
        lgca::Site v = 0;
        if (gx >= 0 && gx < lattice_width_ && ny >= 0 &&
            ny < extent_.height) {
          const std::int64_t lx = x + dx;
          if (lx >= 0 && lx < w) {
            v = peek(pos + dy * w + dx);
          } else if (lx < 0) {
            LATTICE_ASSERT(left_ != nullptr, "missing left slice");
            v = left_->peek(ny * w + (w - 1));
            ++stats.boundary_fetches;
          } else {
            LATTICE_ASSERT(right_ != nullptr, "missing right slice");
            v = right_->peek(ny * w + 0);
            ++stats.boundary_fetches;
          }
        }
        win.at(dx, dy) = v;
      }
    }
    ++stats.site_updates;
    return rule_->apply(win, lgca::SiteContext{x0_ + x, y, t_});
  }

  Extent extent_;
  std::int64_t x0_;
  std::int64_t lattice_width_;
  const lgca::Rule* rule_;
  std::int64_t t_;
  std::int64_t delay_;
  std::int64_t next_in_;
  std::vector<lgca::Site> ring_;
  SliceStage* left_ = nullptr;
  SliceStage* right_ = nullptr;
};

}  // namespace

SpaMachine::SpaMachine(Extent extent, const lgca::Rule& rule,
                       std::int64_t slice_width, int depth, std::int64_t t0)
    : extent_(extent),
      rule_(&rule),
      slice_width_(slice_width),
      slices_(0),
      depth_(depth),
      t0_(t0) {
  LATTICE_REQUIRE(extent.width > 0 && extent.height > 0,
                  "SPA extent must be positive");
  LATTICE_REQUIRE(slice_width >= 2, "SPA slice width must be >= 2");
  LATTICE_REQUIRE(extent.width % slice_width == 0,
                  "SPA slice width must divide the lattice width");
  LATTICE_REQUIRE(depth >= 1, "SPA depth must be >= 1");
  slices_ = extent.width / slice_width;
}

lgca::SiteLattice SpaMachine::run(const lgca::SiteLattice& in) {
  LATTICE_REQUIRE(in.extent() == extent_, "lattice extent mismatch");
  LATTICE_REQUIRE(in.boundary() == lgca::Boundary::Null,
                  "SPA streams null-boundary lattices only");

  const Extent slice_extent{slice_width_, extent_.height};
  const std::int64_t slice_area = slice_extent.area();
  const std::int64_t stage_delay = slice_width_ + 1;

  // stages[j][d]: depth-d stage of slice j. Slice j is staggered one
  // slice-row (W positions) behind slice j-1; depth adds stage latency.
  std::vector<std::vector<SliceStage>> stages(
      static_cast<std::size_t>(slices_));
  for (std::int64_t j = 0; j < slices_; ++j) {
    auto& chain = stages[static_cast<std::size_t>(j)];
    chain.reserve(static_cast<std::size_t>(depth_));
    for (int d = 0; d < depth_; ++d) {
      chain.emplace_back(slice_extent, j * slice_width_, extent_.width,
                         *rule_, t0_ + d,
                         j * slice_width_ + d * stage_delay);
    }
  }
  for (std::int64_t j = 0; j < slices_; ++j) {
    for (int d = 0; d < depth_; ++d) {
      SliceStage* left =
          j > 0 ? &stages[static_cast<std::size_t>(j - 1)]
                         [static_cast<std::size_t>(d)]
                : nullptr;
      SliceStage* right =
          j + 1 < slices_ ? &stages[static_cast<std::size_t>(j + 1)]
                                   [static_cast<std::size_t>(d)]
                          : nullptr;
      stages[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)]
          .set_neighbors(left, right);
    }
  }

  lgca::SiteLattice out(extent_, lgca::Boundary::Null);
  std::int64_t collected = 0;
  const std::int64_t total_ticks = (slices_ - 1) * slice_width_ +
                                   slice_area + depth_ * stage_delay + 2;

  for (std::int64_t tick = 0;
       tick < total_ticks || collected < extent_.area(); ++tick) {
    // Rightmost slice first: it is the most-delayed stream, and its
    // left neighbors read its freshly arrived boundary column.
    for (std::int64_t j = slices_ - 1; j >= 0; --j) {
      auto& chain = stages[static_cast<std::size_t>(j)];
      // Memory feeds slice j the site at local position tick - j·W.
      const std::int64_t p0 = tick - j * slice_width_;
      lgca::Site v = 0;
      if (p0 >= 0 && p0 < slice_area) {
        const std::int64_t ly = p0 / slice_width_;
        const std::int64_t lx = p0 % slice_width_;
        v = in.at({j * slice_width_ + lx, ly});
        ++stats_.mem_sites_read;
      }
      for (int d = 0; d < depth_; ++d) {
        v = chain[static_cast<std::size_t>(d)].tick(v, stats_);
      }
      // Final stage output: logical position for the last stage.
      const std::int64_t out_pos =
          tick - j * slice_width_ - depth_ * stage_delay;
      if (out_pos >= 0 && out_pos < slice_area) {
        const std::int64_t ly = out_pos / slice_width_;
        const std::int64_t lx = out_pos % slice_width_;
        out.at({j * slice_width_ + lx, ly}) = v;
        ++stats_.mem_sites_written;
        ++collected;
      }
    }
    ++stats_.ticks;
  }

  stats_.buffer_sites = 0;
  for (const auto& chain : stages)
    for (const SliceStage& s : chain) stats_.buffer_sites += s.buffer_sites();
  return out;
}

}  // namespace lattice::arch
