#include "lattice/arch/design_space.hpp"

#include <algorithm>
#include <cmath>

namespace lattice::arch {

namespace wsa {

double max_pe_pins(const Technology& t) {
  t.validate();
  return static_cast<double>(t.pins) / (2.0 * t.bits_per_site);
}

double max_pe_area(const Technology& t, double lattice_len) {
  t.validate();
  const double b = t.cell_area;
  return (1.0 - 3.0 * b - 2.0 * b * lattice_len) / (7.0 * b + t.pe_area);
}

double feasible_pe(const Technology& t, double lattice_len) {
  return std::max(0.0, std::min(max_pe_pins(t), max_pe_area(t, lattice_len)));
}

double lattice_len_at_pe(const Technology& t, double pe) {
  t.validate();
  const double b = t.cell_area;
  return (1.0 - 3.0 * b - pe * (7.0 * b + t.pe_area)) / (2.0 * b);
}

Corner corner(const Technology& t) {
  const double pe = max_pe_pins(t);
  return Corner{pe, lattice_len_at_pe(t, pe)};
}

double max_lattice_len(const Technology& t) { return lattice_len_at_pe(t, 1.0); }

WsaDesign paper_design(const Technology& t, int depth) {
  LATTICE_REQUIRE(depth >= 1, "pipeline depth must be at least 1");
  WsaDesign d;
  d.pe_per_chip = static_cast<int>(std::floor(max_pe_pins(t)));
  d.lattice_len = static_cast<std::int64_t>(
      std::floor(lattice_len_at_pe(t, d.pe_per_chip)));
  d.depth = depth;
  return d;
}

double throughput(const Technology& t, const WsaDesign& d) {
  return t.clock_hz * d.pe_per_chip * d.depth;
}

int bandwidth_bits_per_tick(const Technology& t, const WsaDesign& d) {
  return 2 * t.bits_per_site * d.pe_per_chip;
}

double max_throughput(const Technology& t, std::int64_t lattice_len) {
  // k_max = L: beyond that the pipeline holds the whole lattice (§6.1).
  return max_pe_pins(t) * t.clock_hz * static_cast<double>(lattice_len);
}

double processing_area_fraction(const Technology& t, int pe_per_chip,
                                std::int64_t lattice_len) {
  LATTICE_REQUIRE(pe_per_chip >= 1 && lattice_len >= 1,
                  "need at least one PE and a positive lattice");
  const double processing = pe_per_chip * t.pe_area;
  const double storage =
      (2.0 * static_cast<double>(lattice_len) + 3.0 + 7.0 * pe_per_chip) *
      t.cell_area;
  return processing / (processing + storage);
}

}  // namespace wsa

namespace spa {

PinOptimum pin_optimum(const Technology& t) {
  t.validate();
  // Maximize P_w·P_k on the pin line 2D·P_w + 2E·P_k = Π: the product of
  // two positive quantities with a fixed weighted sum peaks when each
  // term carries half the budget.
  PinOptimum o;
  o.slices = static_cast<double>(t.pins) / (4.0 * t.bits_per_site);
  o.depth = static_cast<double>(t.pins) / (4.0 * t.boundary_bits);
  o.pe = o.slices * o.depth;
  return o;
}

double max_pe_area(const Technology& t, double slice_width) {
  t.validate();
  return 1.0 / ((2.0 * slice_width + 9.0) * t.cell_area + t.pe_area);
}

double feasible_pe(const Technology& t, double slice_width) {
  return std::min(pin_optimum(t).pe, max_pe_area(t, slice_width));
}

Corner corner(const Technology& t) {
  // Solve max_pe_area(W) = pin_optimum: (2W+9)B + Γ = 1/P.
  const double p = pin_optimum(t).pe;
  Corner c;
  c.pe = p;
  c.slice_width = ((1.0 / p - t.pe_area) / t.cell_area - 9.0) / 2.0;
  return c;
}

bool pins_ok(const Technology& t, int slices, int depth_per_chip) {
  return 2 * t.bits_per_site * slices + 2 * t.boundary_bits * depth_per_chip <=
         t.pins;
}

bool area_ok(const Technology& t, int slices, int depth_per_chip,
             std::int64_t slice_width) {
  const double per_pe =
      (2.0 * static_cast<double>(slice_width) + 9.0) * t.cell_area + t.pe_area;
  return per_pe * slices * depth_per_chip <= 1.0;
}

std::int64_t max_slice_width(const Technology& t, int pe_per_chip) {
  LATTICE_REQUIRE(pe_per_chip > 0, "pe_per_chip must be positive");
  const double w =
      ((1.0 / pe_per_chip - t.pe_area) / t.cell_area - 9.0) / 2.0;
  return w > 0 ? static_cast<std::int64_t>(std::floor(w)) : 0;
}

SpaDesign paper_design(const Technology& t, std::int64_t lattice_len,
                       int depth) {
  LATTICE_REQUIRE(depth >= 1, "pipeline depth must be at least 1");
  // Integer split nearest the continuous optimum that satisfies pins:
  // floor both coordinates, then greedily grow whichever axis still fits
  // (for the 1987 constants this lands on P_w=2, P_k=6).
  const PinOptimum o = pin_optimum(t);
  int pw = std::max(1, static_cast<int>(std::floor(o.slices)));
  int pk = std::max(1, static_cast<int>(std::floor(o.depth)));
  while (pins_ok(t, pw + 1, pk)) ++pw;
  while (pins_ok(t, pw, pk + 1)) ++pk;

  SpaDesign d;
  d.slices_per_chip = pw;
  d.depth_per_chip = pk;
  d.slice_width = max_slice_width(t, pw * pk);
  d.lattice_len = lattice_len;
  d.depth = depth;
  return d;
}

double chips(const SpaDesign& d) {
  const double slices = static_cast<double>(d.lattice_len) /
                        static_cast<double>(d.slice_width);
  return (slices / d.slices_per_chip) *
         (static_cast<double>(d.depth) / d.depth_per_chip);
}

double throughput(const Technology& t, const SpaDesign& d) {
  return t.clock_hz * d.depth * static_cast<double>(d.lattice_len) /
         static_cast<double>(d.slice_width);
}

double bandwidth_bits_per_tick(const Technology& t, const SpaDesign& d) {
  return 2.0 * t.bits_per_site * static_cast<double>(d.lattice_len) /
         static_cast<double>(d.slice_width);
}

}  // namespace spa

namespace wsa_e {

int max_pe_pins(const Technology& t) {
  t.validate();
  // Per PE: stream in/out (2D) plus reads and writes of the two
  // externally buffered window rows (4D) = 6D pins.
  return std::max(0, t.pins / (6 * t.bits_per_site));
}

double storage_area_per_pe(const Technology& t, std::int64_t lattice_len) {
  t.validate();
  return (2.0 * static_cast<double>(lattice_len) + 10.0) * t.cell_area;
}

int bandwidth_bits_per_tick(const Technology& t) { return 2 * t.bits_per_site; }

int buffer_bits_per_tick_per_pe(const Technology& t) {
  t.validate();
  return 4 * t.bits_per_site;
}

std::int64_t storage_sites_per_pe(std::int64_t lattice_len) {
  LATTICE_REQUIRE(lattice_len >= 1, "lattice length must be positive");
  return 2 * lattice_len + 10;
}

double throughput(const Technology& t, int depth) {
  LATTICE_REQUIRE(depth >= 1, "pipeline depth must be at least 1");
  return t.clock_hz * depth;
}

}  // namespace wsa_e

}  // namespace lattice::arch
