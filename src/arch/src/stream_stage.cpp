#include "lattice/arch/stream_stage.hpp"

#include <algorithm>
#include <bit>

namespace lattice::arch {

namespace {
constexpr std::int64_t round_up(std::int64_t v, std::int64_t m) {
  return ((v + m - 1) / m) * m;
}
}  // namespace

StreamStage::StreamStage(Extent extent, const lgca::Rule& rule,
                         std::int64_t t, int batch,
                         std::int64_t lead_padding,
                         const lgca::CollisionLut* lut,
                         fault::FaultInjector* fault, int stage_index)
    : extent_(extent),
      rule_(&rule),
      lut_(lut),
      t_(t),
      batch_(batch),
      // batch is validated below; clamp here so the computation in the
      // initializer list cannot divide by zero first.
      delay_(round_up(extent.width + 1, batch > 0 ? batch : 1)),
      lead_(lead_padding),
      next_in_(-lead_padding),
      fault_(fault),
      stage_index_(stage_index) {
  LATTICE_REQUIRE(extent.width > 0 && extent.height > 0,
                  "StreamStage extent must be positive");
  LATTICE_REQUIRE(batch >= 1 && batch <= extent.width,
                  "StreamStage batch (P) must be in [1, lattice width]");
  LATTICE_REQUIRE(lead_padding >= 0, "lead padding must be >= 0");
  // Window reach: W+1 behind the oldest center plus the delay in front.
  ring_.assign(static_cast<std::size_t>(delay_ + 2 * extent.width + 4), 0);
  if (fault_ != nullptr) {
    meta_.assign(ring_.size(), 0);
    // Conservation is only defined for gases (collisions conserve
    // particles); generic rules fall back to parity detection alone.
    audit_.valid = lut_ != nullptr;
    if (lut_ != nullptr) topo_ = lut_->model().topology();
  }
}

void StreamStage::reset(std::int64_t t) {
  t_ = t;
  next_in_ = -lead_;
  std::fill(ring_.begin(), ring_.end(), lgca::Site{0});
  if (fault_ != nullptr) {
    std::fill(meta_.begin(), meta_.end(), std::uint8_t{0});
    const bool valid = audit_.valid;
    audit_ = fault::StageAudit{};
    audit_.valid = valid;
  }
}

lgca::Site StreamStage::stream_value(std::int64_t pos) const noexcept {
  const auto cap = static_cast<std::int64_t>(ring_.size());
  const std::int64_t idx = ((pos % cap) + cap) % cap;
  const lgca::Site v = ring_[static_cast<std::size_t>(idx)];
  if (fault_ != nullptr) {
    // The word travels with the parity bit written from the true bus
    // value; a mismatch means the shift register decayed underneath us.
    std::uint8_t& m = meta_[static_cast<std::size_t>(idx)];
    if (((std::popcount(static_cast<unsigned>(v)) ^ m) & 1) != 0 &&
        (m & 2) == 0) {
      m |= 2;  // report each corrupted word once
      fault_->report_parity_error();
    }
  }
  return v;
}

lgca::Site StreamStage::store_guarded(std::int64_t pos, std::size_t idx,
                                      lgca::Site v) {
  lgca::Site stored = v;
  if (pos >= 0 && pos < extent_.area()) {
    if (audit_.valid) {
      const std::int64_t w = extent_.width;
      audit_.in_mass += lgca::particle_count(v);
      audit_.in_obstacles += lgca::is_obstacle(v) ? 1 : 0;
      audit_.outflow +=
          fault::site_outflow(v, {pos % w, pos / w}, extent_, topo_);
    }
    stored = fault_->corrupt_stored(t_, pos, v);
  }
  meta_[idx] = static_cast<std::uint8_t>(
      std::popcount(static_cast<unsigned>(v)) & 1);
  return stored;
}

lgca::Site StreamStage::emit_guarded(std::int64_t pos, int lane,
                                     lgca::Site u) {
  (void)pos;
  if (fault_->has_stuck()) u = fault_->apply_stuck(stage_index_, lane, u);
  if (audit_.valid) {
    audit_.out_mass += lgca::particle_count(u);
    audit_.out_obstacles += lgca::is_obstacle(u) ? 1 : 0;
  }
  return u;
}

lgca::Site StreamStage::update_at(std::int64_t pos) const {
  const std::int64_t w = extent_.width;
  const std::int64_t x = pos % w;
  const std::int64_t y = pos / w;
  if (lut_ != nullptr) {
    // Fused path: gather only the taps the gas actually reads, with the
    // same edge masking the window multiplexer applies, then one table
    // lookup. No Window build, no virtual dispatch.
    lgca::Site gathered = 0;
    const auto& taps = lut_->taps((y & 1) != 0);
    const int n = lut_->tap_count();
    for (int i = 0; i < n; ++i) {
      const auto tap = taps[static_cast<std::size_t>(i)];
      const std::int64_t nx = x + tap.dx;
      const std::int64_t ny = y + tap.dy;
      if (nx >= 0 && nx < w && ny >= 0 && ny < extent_.height) {
        gathered |= static_cast<lgca::Site>(
            stream_value(pos + tap.dy * w + tap.dx) & tap.bit);
      }
    }
    gathered |=
        static_cast<lgca::Site>(stream_value(pos) & lut_->center_mask());
    return lut_->collide(gathered, lgca::GasModel::chirality(x, y, t_));
  }
  lgca::Window win;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      // The window multiplexer masks accesses that would cross a row
      // edge or fall outside the lattice: null boundary.
      const std::int64_t nx = x + dx;
      const std::int64_t ny = y + dy;
      win.at(dx, dy) = (nx >= 0 && nx < w && ny >= 0 && ny < extent_.height)
                           ? stream_value(pos + dy * w + dx)
                           : lgca::Site{0};
    }
  }
  return rule_->apply(win, lgca::SiteContext{x, y, t_});
}

void StreamStage::tick(const lgca::Site* in, lgca::Site* out) {
  const auto cap = static_cast<std::int64_t>(ring_.size());
  for (int b = 0; b < batch_; ++b) {
    const std::int64_t pos = next_in_ + b;
    const auto idx = static_cast<std::size_t>(((pos % cap) + cap) % cap);
    lgca::Site v = in[b];
    if (fault_ != nullptr) v = store_guarded(pos, idx, v);
    ring_[idx] = v;
  }
  next_in_ += batch_;
  ++ticks_;

  const std::int64_t area = extent_.area();
  for (int b = 0; b < batch_; ++b) {
    const std::int64_t pos = next_in_ - batch_ + b - delay_;
    lgca::Site u = 0;
    if (pos >= 0 && pos < area) {
      u = update_at(pos);
      if (fault_ != nullptr) u = emit_guarded(pos, b, u);
    }
    out[b] = u;
  }
}

}  // namespace lattice::arch
