#include "lattice/serve/json_parse.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace lattice::serve {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t JsonValue::int_or(std::int64_t fallback) const noexcept {
  if (kind == Kind::Int) return integer;
  return fallback;
}

double JsonValue::double_or(double fallback) const noexcept {
  if (kind == Kind::Int) return static_cast<double>(integer);
  if (kind == Kind::Double) return number;
  return fallback;
}

bool JsonValue::bool_or(bool fallback) const noexcept {
  return kind == Kind::Bool ? boolean : fallback;
}

std::string_view JsonValue::string_or(
    std::string_view fallback) const noexcept {
  return kind == Kind::String ? std::string_view(string) : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue run() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c, const char* what) {
    if (pos_ >= text_.size() || text_[pos_] != c) fail(what);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{', "expected '{'");
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':', "expected ':' after object key");
      v.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[', "expected '['");
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.elements.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    fail("bad hex digit in \\u escape");
  }

  std::string parse_string() {
    expect('"', "expected '\"'");
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            cp = cp * 16 + static_cast<unsigned>(hex_digit(text_[pos_++]));
          }
          // Surrogates would need a second escape and UTF-16 pairing;
          // the wire protocol never emits them, so reject instead of
          // silently producing invalid UTF-8.
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    const std::size_t first = text_[start] == '-' ? start + 1 : start;
    if (text_[first] == '0' && pos_ > first + 1) {
      fail("bad number: leading zero");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) fail("bad number: no digits in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE) {
        // Out-of-range integers degrade to double rather than failing:
        // the protocol's range checks then reject them with a typed
        // bad_request instead of a parse error.
        v.kind = JsonValue::Kind::Double;
        v.number = std::strtod(token.c_str(), nullptr);
        return v;
      }
      v.kind = JsonValue::Kind::Int;
      v.integer = parsed;
      return v;
    }
    v.kind = JsonValue::Kind::Double;
    v.number = std::strtod(token.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

JsonValue parse_json(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace lattice::serve
