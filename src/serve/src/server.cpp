#include "lattice/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "lattice/common/error.hpp"

namespace lattice::serve {

namespace {

void log_line(std::FILE* log, const char* fmt, long a = 0, long b = 0) {
  if (log == nullptr) return;
  std::fprintf(log, fmt, a, b);
  std::fflush(log);
}

/// write() the whole buffer, riding out EINTR and partial writes.
/// Returns false when the peer is gone (EPIPE/ECONNRESET).
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
#else
    const ssize_t w = ::write(fd, data + off, n - off);
#endif
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool respond(int fd, std::string line) {
  line.push_back('\n');
  return write_all(fd, line.data(), line.size());
}

}  // namespace

SocketServer::SocketServer(ServeProtocol& protocol, ServerConfig config)
    : protocol_(protocol), config_(std::move(config)) {}

bool SocketServer::serve_connection(int fd, ServeProtocol& protocol,
                                    std::FILE* log) {
  const std::size_t max_frame = protocol.limits().max_frame_bytes;
  std::string acc;
  // True while we are discarding bytes of a frame that overflowed
  // max_frame before a newline arrived: the error response has already
  // been sent, the stream resyncs at the next newline.
  bool skipping = false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      log_line(log, "serve: read error errno=%ld\n", errno);
      return false;
    }
    if (n == 0) return false;  // client EOF
    std::size_t start = 0;
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] != '\n') continue;
      if (skipping) {
        skipping = false;
      } else {
        acc.append(buf + start, static_cast<std::size_t>(i) - start);
        if (!acc.empty() && acc.back() == '\r') acc.pop_back();
        if (!acc.empty()) {
          if (!respond(fd, protocol.handle(acc))) return false;
          if (protocol.shutdown_requested()) return true;
        }
        acc.clear();
      }
      start = static_cast<std::size_t>(i) + 1;
    }
    if (!skipping) {
      acc.append(buf + start, static_cast<std::size_t>(n) - start);
      if (acc.size() > max_frame) {
        // No newline in sight and the frame is already overlong:
        // answer once, then drop bytes until the next newline.
        if (!respond(fd, protocol.handle(acc))) return false;
        acc.clear();
        skipping = true;
      }
    }
  }
}

void SocketServer::run() {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw Error(std::string("serve: socket(): ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path) {
    ::close(listen_fd);
    throw Error("serve: socket path too long: " + config_.socket_path);
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    const int err = errno;
    ::close(listen_fd);
    throw Error("serve: bind(" + config_.socket_path +
                "): " + std::strerror(err));
  }
  if (::listen(listen_fd, config_.backlog) < 0) {
    const int err = errno;
    ::close(listen_fd);
    ::unlink(config_.socket_path.c_str());
    throw Error(std::string("serve: listen(): ") + std::strerror(err));
  }
  log_line(config_.log, "serve: listening (backlog=%ld)\n", config_.backlog);

  std::vector<std::thread> connections;
  while (!protocol_.shutdown_requested()) {
    // Poll with a timeout so a shutdown issued on a connection thread
    // is noticed without racing a close() under a blocked accept().
    pollfd pfd{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    log_line(config_.log, "serve: accepted fd=%ld\n", conn);
    connections.emplace_back([this, conn] {
      serve_connection(conn, protocol_, config_.log);
      ::close(conn);
    });
  }
  ::close(listen_fd);
  ::unlink(config_.socket_path.c_str());
  for (auto& t : connections) t.join();
  log_line(config_.log, "serve: shutdown after %ld connections\n",
           static_cast<long>(connections.size()));
}

}  // namespace lattice::serve
