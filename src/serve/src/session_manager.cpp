#include "lattice/serve/session_manager.hpp"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <utility>

#include "lattice/core/checkpoint_io.hpp"
#include "lattice/lgca/gas_model.hpp"

namespace lattice::serve {

namespace {

// Resolved once; the scheduler's hot path then only touches atomics.
// The two gated histograms mirror the locally-maintained ServeStats
// ones so traces and lattice_profile see the serve family too.
struct ServeObs {
  obs::MetricsRegistry::Id created = obs::counter_id("serve.sessions.created");
  obs::MetricsRegistry::Id destroyed =
      obs::counter_id("serve.sessions.destroyed");
  obs::MetricsRegistry::Id evicted = obs::counter_id("serve.sessions.evicted");
  obs::MetricsRegistry::Id restored =
      obs::counter_id("serve.sessions.restored");
  obs::MetricsRegistry::Id rejected =
      obs::counter_id("serve.sessions.rejected");
  obs::MetricsRegistry::Id quanta = obs::counter_id("serve.quanta");
  obs::MetricsRegistry::Id generations = obs::counter_id("serve.generations");
  obs::MetricsRegistry::Id resident = obs::gauge_id("serve.sessions.resident");
  obs::MetricsRegistry::Id queue_depth = obs::gauge_id("serve.queue.depth");
  obs::MetricsRegistry::Id quantum_ns = obs::histogram_id("serve.quantum_ns");
  obs::MetricsRegistry::Id step_latency_ns =
      obs::histogram_id("serve.step.latency_ns");
  obs::MetricsRegistry::Id queue_depth_hist =
      obs::histogram_id("serve.queue.depth_at_enqueue");
  static const ServeObs& get() {
    static const ServeObs ids;
    return ids;
  }
};

/// Record into a locally-owned HistogramStats (same bucket convention
/// as the registry: bucket b holds [2^(b-1), 2^b), bucket 0 holds
/// v <= 0). Local so quantiles survive -DLATTICE_OBS=OFF builds.
void record_local(obs::HistogramStats& h, std::int64_t v) {
  if (h.count == 0) {
    h.min = v;
    h.max = v;
  } else {
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
  }
  ++h.count;
  h.sum += v;
  const int b =
      v <= 0 ? 0
             : std::min(static_cast<int>(std::bit_width(
                            static_cast<std::uint64_t>(v))),
                        obs::HistogramStats::kBuckets - 1);
  ++h.buckets[static_cast<std::size_t>(b)];
}

}  // namespace

int priority_weight(Priority p) noexcept {
  switch (p) {
    case Priority::Interactive:
      return 4;
    case Priority::Normal:
      return 2;
    case Priority::Batch:
      return 1;
  }
  return 1;
}

struct SessionManager::Session {
  SessionId id = 0;
  core::LatticeEngine::Config engine_config;
  SessionOptions opts;
  /// Null while evicted; the spool checkpoint holds the state then.
  std::unique_ptr<core::LatticeEngine> engine;
  /// Armed fault plans pin the session resident: reconstructing the
  /// engine would reset the injector's epoch, so an evicted guarded
  /// session would redraw different transients than its unevicted twin.
  bool pinned = false;
  bool running = false;
  bool queued = false;
  std::string error;  // a quantum threw; session is poisoned

  std::int64_t pending = 0;          // requested, not yet committed
  std::int64_t committed = 0;        // engine generation mirror
  std::int64_t total_requested = 0;  // lifetime, for the quota
  /// (target generation, enqueue ns) per outstanding step() call.
  std::deque<std::pair<std::int64_t, std::int64_t>> step_targets;

  std::int64_t evictions = 0;
  std::int64_t restores = 0;
  std::int64_t quanta = 0;
  std::int64_t busy_ns = 0;
  std::uint64_t last_touch = 0;  // LRU clock for eviction
};

SessionManager::SessionManager(Config config) : config_(std::move(config)) {
  LATTICE_REQUIRE(config_.max_resident >= 1, "max_resident must be >= 1");
  LATTICE_REQUIRE(config_.workers >= 1, "workers must be >= 1");
  LATTICE_REQUIRE(config_.quantum >= 1, "quantum must be >= 1");
  LATTICE_REQUIRE(!config_.spool_dir.empty(), "spool_dir must be set");
  std::filesystem::create_directories(config_.spool_dir);
  rr_credit_ = priority_weight(Priority::Interactive);
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SessionManager::~SessionManager() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
  std::error_code ec;
  for (const auto& [id, s] : sessions_) {
    if (s->engine == nullptr) {
      std::filesystem::remove(spool_path(id), ec);
    }
  }
  // Best effort: leaves the directory if another manager shares it.
  std::filesystem::remove(config_.spool_dir, ec);
}

std::string SessionManager::spool_path(SessionId id) const {
  return config_.spool_dir + "/session-" + std::to_string(id) + ".ckpt";
}

SessionManager::Session& SessionManager::session_locked(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw SessionError("unknown session id " + std::to_string(id));
  }
  return *it->second;
}

const SessionManager::Session& SessionManager::session_locked(
    SessionId id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw SessionError("unknown session id " + std::to_string(id));
  }
  return *it->second;
}

SessionId SessionManager::create(core::LatticeEngine::Config engine_config,
                                 SessionOptions options, const InitFn& init) {
  std::lock_guard<std::mutex> lk(mu_);
  if (config_.max_sessions > 0 &&
      static_cast<std::int64_t>(sessions_.size()) >= config_.max_sessions) {
    ++stats_.rejected;
    obs::count(ServeObs::get().rejected, 1);
    throw QuotaError("session admission refused: " +
                     std::to_string(sessions_.size()) + " live sessions at "
                     "the max_sessions cap");
  }
  make_room_locked();
  auto engine = std::make_unique<core::LatticeEngine>(engine_config);
  if (init) init(engine->state(), engine->gas_model());

  auto s = std::make_unique<Session>();
  const SessionId id = next_id_++;
  s->id = id;
  s->engine_config = engine_config;
  s->opts = options;
  s->pinned = engine_config.fault.armed();
  s->engine = std::move(engine);
  s->last_touch = ++touch_clock_;
  sessions_.emplace(id, std::move(s));
  ++resident_;
  ++stats_.created;
  obs::count(ServeObs::get().created, 1);
  obs::gauge_set(ServeObs::get().resident, resident_);
  return id;
}

void SessionManager::step(SessionId id, std::int64_t generations) {
  LATTICE_REQUIRE(generations >= 1, "step generations must be >= 1");
  std::lock_guard<std::mutex> lk(mu_);
  Session& s = session_locked(id);
  if (!s.error.empty()) {
    throw SessionError("session " + std::to_string(id) +
                       " is poisoned: " + s.error);
  }
  const SessionQuota& q = s.opts.quota;
  if (q.max_generations > 0 &&
      s.total_requested + generations > q.max_generations) {
    ++stats_.rejected;
    obs::count(ServeObs::get().rejected, 1);
    throw QuotaError("generation quota exceeded: session " +
                     std::to_string(id) + " requested " +
                     std::to_string(s.total_requested + generations) +
                     " of " + std::to_string(q.max_generations));
  }
  if (s.pending + generations > q.max_pending) {
    ++stats_.rejected;
    obs::count(ServeObs::get().rejected, 1);
    throw QuotaError("pending quota exceeded: session " + std::to_string(id) +
                     " has " + std::to_string(s.pending) +
                     " generations queued (cap " +
                     std::to_string(q.max_pending) + ")");
  }
  s.total_requested += generations;
  s.pending += generations;
  s.step_targets.emplace_back(s.committed + s.pending, obs::now_ns());
  record_local(stats_.queue_depth_hist, ready_count_);
  obs::record(ServeObs::get().queue_depth_hist, ready_count_);
  if (!s.queued && !s.running) {
    enqueue_locked(s);
    cv_work_.notify_one();
  }
}

void SessionManager::enqueue_locked(Session& s) {
  s.queued = true;
  ready_[static_cast<int>(s.opts.priority)].push_back(s.id);
  ++ready_count_;
  obs::gauge_set(ServeObs::get().queue_depth, ready_count_);
}

// Weighted round-robin across the priority classes: serve up to
// weight(c) grants from class c, then move on; empty classes are
// skipped without consuming their turn. FIFO within a class. Stale ids
// (destroyed sessions) are dropped on the floor here.
SessionManager::Session* SessionManager::pick_next_locked() {
  for (int scanned = 0; scanned < kPriorityClasses + 1;) {
    std::deque<SessionId>& q = ready_[rr_class_];
    if (rr_credit_ <= 0 || q.empty()) {
      rr_class_ = (rr_class_ + 1) % kPriorityClasses;
      rr_credit_ = priority_weight(static_cast<Priority>(rr_class_));
      ++scanned;
      continue;
    }
    const SessionId id = q.front();
    q.pop_front();
    --ready_count_;
    obs::gauge_set(ServeObs::get().queue_depth, ready_count_);
    auto it = sessions_.find(id);
    if (it == sessions_.end() || !it->second->queued) continue;
    --rr_credit_;
    it->second->queued = false;
    return it->second.get();
  }
  return nullptr;
}

// Evict least-recently-run idle residents until the pool has a free
// slot. Sessions that are running or pinned (armed fault plan) are
// never victims; if every resident is one of those the pool overshoots
// by the caller's one engine rather than deadlocking.
void SessionManager::make_room_locked() {
  while (resident_ >= config_.max_resident) {
    Session* victim = nullptr;
    for (auto& [id, s] : sessions_) {
      if (s->engine == nullptr || s->running || s->pinned) continue;
      if (victim == nullptr || s->last_touch < victim->last_touch) {
        victim = s.get();
      }
    }
    if (victim == nullptr) return;
    evict_locked(*victim);
  }
}

void SessionManager::evict_locked(Session& s) {
  core::save_checkpoint(s.engine->checkpoint(), spool_path(s.id));
  s.engine.reset();
  --resident_;
  ++s.evictions;
  ++stats_.evicted;
  obs::count(ServeObs::get().evicted, 1);
  obs::gauge_set(ServeObs::get().resident, resident_);
}

void SessionManager::ensure_resident_locked(Session& s) {
  if (s.engine != nullptr) return;
  make_room_locked();
  const std::string path = spool_path(s.id);
  const core::EngineCheckpoint ckpt = core::load_checkpoint(path);
  auto engine = std::make_unique<core::LatticeEngine>(s.engine_config);
  engine->restore(ckpt);
  s.engine = std::move(engine);
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ++resident_;
  ++s.restores;
  ++stats_.restored;
  obs::count(ServeObs::get().restored, 1);
  obs::gauge_set(ServeObs::get().resident, resident_);
}

void SessionManager::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || ready_count_ > 0; });
    if (stop_) return;
    Session* s = pick_next_locked();
    if (s == nullptr) continue;  // only stale ids were queued
    try {
      ensure_resident_locked(*s);
    } catch (const std::exception& e) {
      // The spool checkpoint failed validation (CheckpointError) or the
      // engine could not be rebuilt: poison the session rather than
      // taking the worker (and with it the whole server) down.
      s->error = e.what();
      s->pending = 0;
      s->step_targets.clear();
      cv_idle_.notify_all();
      continue;
    }
    // One scheduling quantum, rounded up to the engine's pass quantum
    // so a temporally-tiled session always commits whole tile blocks
    // (the final partial grant is the one place a short block is fine).
    const std::int64_t eq = s->engine->chunk_quantum();
    const std::int64_t grant =
        std::min(s->pending, (config_.quantum + eq - 1) / eq * eq);
    s->running = true;
    ++running_count_;
    s->last_touch = ++touch_clock_;
    core::LatticeEngine* engine = s->engine.get();

    lk.unlock();
    const std::int64_t t0 = obs::now_ns();
    std::string error;
    try {
      engine->advance(grant);
    } catch (const std::exception& e) {
      error = e.what();
    }
    const std::int64_t t1 = obs::now_ns();
    lk.lock();

    s->running = false;
    --running_count_;
    s->busy_ns += t1 - t0;
    if (!error.empty()) {
      // Poisoned: drop the queued work, remember why. step()/wait()
      // report the stored error; destroy() still works.
      s->error = std::move(error);
      s->pending = 0;
      s->step_targets.clear();
      cv_idle_.notify_all();
      continue;
    }
    // destroy() may have zeroed pending while this quantum ran.
    s->pending = std::max<std::int64_t>(0, s->pending - grant);
    s->committed = engine->generation();
    ++s->quanta;
    ++stats_.quanta;
    stats_.generations += grant;
    stats_.site_updates +=
        grant * s->engine_config.extent.area() * s->engine_config.depth;
    obs::count(ServeObs::get().quanta, 1);
    obs::count(ServeObs::get().generations, grant);
    obs::record(ServeObs::get().quantum_ns, t1 - t0);
    while (!s->step_targets.empty() &&
           s->step_targets.front().first <= s->committed) {
      const std::int64_t latency = t1 - s->step_targets.front().second;
      record_local(stats_.step_latency, latency);
      obs::record(ServeObs::get().step_latency_ns, latency);
      s->step_targets.pop_front();
    }
    if (s->pending > 0) {
      enqueue_locked(*s);
      cv_work_.notify_one();
    } else {
      cv_idle_.notify_all();
    }
  }
}

void SessionManager::wait_idle_locked(std::unique_lock<std::mutex>& lk,
                                      SessionId id) {
  cv_idle_.wait(lk, [&] {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return true;
    const Session& s = *it->second;
    return (!s.running && s.pending == 0) || !s.error.empty();
  });
  auto it = sessions_.find(id);
  if (it != sessions_.end() && !it->second->error.empty()) {
    throw SessionError("session " + std::to_string(id) +
                       " is poisoned: " + it->second->error);
  }
}

void SessionManager::wait(SessionId id) {
  std::unique_lock<std::mutex> lk(mu_);
  session_locked(id);  // throw on unknown id up front
  wait_idle_locked(lk, id);
}

void SessionManager::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] {
    if (running_count_ > 0 || ready_count_ > 0) return false;
    for (const auto& [id, s] : sessions_) {
      if (s->pending > 0 && s->error.empty()) return false;
    }
    return true;
  });
}

SessionInfo SessionManager::query(SessionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Session& s = session_locked(id);
  SessionInfo info;
  info.id = s.id;
  info.resident = s.engine != nullptr;
  info.running = s.running;
  info.generation = s.committed;
  info.pending_generations = s.pending;
  info.priority = s.opts.priority;
  info.extent = s.engine_config.extent;
  info.depth = s.engine_config.depth;
  info.backend = s.engine_config.backend;
  info.evictions = s.evictions;
  info.restores = s.restores;
  info.quanta = s.quanta;
  info.busy_seconds = static_cast<double>(s.busy_ns) * 1e-9;
  const double updates = static_cast<double>(s.committed) *
                         static_cast<double>(s.engine_config.extent.area()) *
                         static_cast<double>(s.engine_config.depth);
  info.sites_per_sec =
      info.busy_seconds > 0 ? updates / info.busy_seconds : 0.0;
  return info;
}

lgca::SiteLattice SessionManager::state(SessionId id) {
  std::unique_lock<std::mutex> lk(mu_);
  session_locked(id);
  wait_idle_locked(lk, id);
  const Session& s = session_locked(id);
  if (s.engine != nullptr) return s.engine->state();
  return core::load_checkpoint(spool_path(id)).state;
}

void SessionManager::checkpoint(SessionId id, const std::string& path) {
  std::unique_lock<std::mutex> lk(mu_);
  session_locked(id);
  wait_idle_locked(lk, id);
  const Session& s = session_locked(id);
  if (s.engine != nullptr) {
    core::save_checkpoint(s.engine->checkpoint(), path);
  } else {
    core::save_checkpoint(core::load_checkpoint(spool_path(id)), path);
  }
}

void SessionManager::destroy(SessionId id) {
  std::unique_lock<std::mutex> lk(mu_);
  {
    Session& s = session_locked(id);
    s.pending = 0;  // drop queued work; an in-flight quantum finishes
    s.step_targets.clear();
  }
  // Re-resolve through the map on every check: a concurrent destroy()
  // of the same id may erase the session while this one waits.
  cv_idle_.wait(lk, [&] {
    auto it = sessions_.find(id);
    return it == sessions_.end() || !it->second->running;
  });
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;  // lost the race; already gone
  Session& s = *it->second;
  if (s.engine != nullptr) {
    --resident_;
    obs::gauge_set(ServeObs::get().resident, resident_);
  } else {
    std::error_code ec;
    std::filesystem::remove(spool_path(id), ec);
  }
  s.queued = false;  // any ready-queue entry is now stale
  sessions_.erase(it);
  ++stats_.destroyed;
  obs::count(ServeObs::get().destroyed, 1);
  cv_idle_.notify_all();
}

bool SessionManager::evict(SessionId id) {
  std::lock_guard<std::mutex> lk(mu_);
  Session& s = session_locked(id);
  if (s.engine == nullptr || s.running || s.pinned) return false;
  evict_locked(s);
  return true;
}

std::int64_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(sessions_.size());
}

ServeStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServeStats out = stats_;
  out.resident = resident_;
  out.queue_depth = ready_count_;
  return out;
}

}  // namespace lattice::serve
