#include "lattice/serve/protocol.hpp"

#include <cstring>
#include <filesystem>
#include <utility>

#include "lattice/lgca/init.hpp"
#include "lattice/lgca3d/lattice3.hpp"
#include "lattice/obs/json.hpp"
#include "lattice/serve/json_parse.hpp"

namespace lattice::serve {

namespace {

std::string error_response(const char* code, const std::string& message) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("ok", false);
  w.field("error", code);
  w.field("message", message);
  w.end_object();
  return w.str();
}

/// Thrown by field helpers; dispatch maps it to bad_request.
class BadRequest : public Error {
 public:
  explicit BadRequest(const std::string& what) : Error(what) {}
};

std::int64_t require_int(const JsonValue& req, const char* key,
                         std::int64_t lo, std::int64_t hi) {
  const JsonValue* v = req.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::Int) {
    throw BadRequest(std::string("missing or non-integer field '") + key +
                     "'");
  }
  if (v->integer < lo || v->integer > hi) {
    throw BadRequest(std::string("field '") + key + "' out of range [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v->integer;
}

std::int64_t int_field(const JsonValue& req, const char* key,
                       std::int64_t fallback, std::int64_t lo,
                       std::int64_t hi) {
  const JsonValue* v = req.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::Int) {
    throw BadRequest(std::string("field '") + key + "' must be an integer");
  }
  if (v->integer < lo || v->integer > hi) {
    throw BadRequest(std::string("field '") + key + "' out of range [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v->integer;
}

double double_field(const JsonValue& req, const char* key, double fallback,
                    double lo, double hi) {
  const JsonValue* v = req.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw BadRequest(std::string("field '") + key + "' must be a number");
  }
  const double d = v->double_or(fallback);
  if (d < lo || d > hi) {
    throw BadRequest(std::string("field '") + key + "' out of range");
  }
  return d;
}

lgca::GasKind parse_gas(std::string_view s) {
  if (s == "hpp") return lgca::GasKind::HPP;
  if (s == "fhp1") return lgca::GasKind::FHP_I;
  if (s == "fhp2") return lgca::GasKind::FHP_II;
  if (s == "fhp3") return lgca::GasKind::FHP_III;
  throw BadRequest("unknown gas '" + std::string(s) +
                   "' (hpp|fhp1|fhp2|fhp3)");
}

core::Backend parse_backend(std::string_view s) {
  if (s == "reference") return core::Backend::Reference;
  if (s == "bitplane") return core::Backend::BitPlane;
  if (s == "wsa") return core::Backend::Wsa;
  if (s == "spa") return core::Backend::Spa;
  if (s == "wsa_e") return core::Backend::WsaE;
  if (s == "reference3") return core::Backend::Reference3;
  if (s == "bitplane3") return core::Backend::BitPlane3;
  throw BadRequest("unknown backend '" + std::string(s) +
                   "' (reference|bitplane|wsa|spa|wsa_e|reference3|"
                   "bitplane3)");
}

Priority parse_priority(std::string_view s) {
  if (s == "interactive") return Priority::Interactive;
  if (s == "normal") return Priority::Normal;
  if (s == "batch") return Priority::Batch;
  throw BadRequest("unknown priority '" + std::string(s) +
                   "' (interactive|normal|batch)");
}

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::Interactive:
      return "interactive";
    case Priority::Normal:
      return "normal";
    case Priority::Batch:
      return "batch";
  }
  return "normal";
}

}  // namespace

ServeProtocol::ServeProtocol(SessionManager& manager, ProtocolLimits limits,
                             std::string checkpoint_dir)
    : manager_(manager),
      limits_(limits),
      checkpoint_dir_(std::move(checkpoint_dir)) {}

std::string ServeProtocol::handle(std::string_view frame) {
  try {
    return dispatch(frame);
  } catch (const BadRequest& e) {
    return error_response("bad_request", e.what());
  } catch (const JsonParseError& e) {
    return error_response("parse_error", e.what());
  } catch (const SessionError& e) {
    return error_response("unknown_session", e.what());
  } catch (const QuotaError& e) {
    return error_response("quota_exceeded", e.what());
  } catch (const Error& e) {
    // Engine/config precondition failures (e.g. a gas the bit-plane
    // backend cannot code) surface as bad_request, not server faults.
    return error_response("bad_request", e.what());
  } catch (const std::exception& e) {
    return error_response("internal", e.what());
  }
}

std::string ServeProtocol::dispatch(std::string_view frame) {
  if (frame.size() > limits_.max_frame_bytes) {
    return error_response(
        "frame_too_long",
        "frame of " + std::to_string(frame.size()) + " bytes exceeds the " +
            std::to_string(limits_.max_frame_bytes) + "-byte limit");
  }
  const JsonValue req = parse_json(frame);
  if (!req.is_object()) throw BadRequest("request must be a JSON object");
  const JsonValue* opv = req.find("op");
  if (opv == nullptr || !opv->is_string()) {
    throw BadRequest("missing string field 'op'");
  }
  const std::string_view op = opv->string;

  if (op == "ping") {
    obs::JsonWriter w;
    w.begin_object().field("ok", true).field("pong", true).end_object();
    return w.str();
  }

  if (op == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    obs::JsonWriter w;
    w.begin_object().field("ok", true).field("shutdown", true).end_object();
    return w.str();
  }

  if (op == "create") {
    core::LatticeEngine::Config cfg;
    cfg.extent.width = require_int(req, "width", 2, limits_.max_side);
    cfg.extent.height = require_int(req, "height", 2, limits_.max_side);
    cfg.gas = parse_gas(req.find("gas") != nullptr
                            ? req.find("gas")->string_or("fhp2")
                            : "fhp2");
    cfg.backend = parse_backend(req.find("backend") != nullptr
                                    ? req.find("backend")->string_or("")
                                    : "reference");
    // The wire name "depth" is taken by pipeline_depth, so the z
    // extent of a 3-D session rides as "nz" (must stay 1 for the 2-D
    // backends — the engine rejects the mismatch).
    cfg.depth = int_field(req, "nz", 1, 1, limits_.max_side);
    const std::string_view boundary =
        req.find("boundary") != nullptr ? req.find("boundary")->string_or("")
                                        : "null";
    if (boundary == "null") {
      cfg.boundary = lgca::Boundary::Null;
    } else if (boundary == "periodic") {
      cfg.boundary = lgca::Boundary::Periodic;
    } else {
      throw BadRequest("unknown boundary (null|periodic)");
    }
    cfg.threads =
        static_cast<unsigned>(int_field(req, "threads", 1, 1, 64));
    cfg.pipeline_depth =
        static_cast<int>(int_field(req, "depth", 1, 1, 4096));
    cfg.tile_generations = static_cast<int>(
        int_field(req, "tile_generations", 1, 0, 4096));

    SessionOptions opts;
    opts.priority =
        parse_priority(req.find("priority") != nullptr
                           ? req.find("priority")->string_or("")
                           : "normal");
    opts.quota.max_generations = int_field(req, "max_generations", 0, 0,
                                           std::int64_t{1} << 40);
    opts.quota.max_pending =
        int_field(req, "max_pending", opts.quota.max_pending, 1,
                  std::int64_t{1} << 40);

    const std::string_view init = req.find("init") != nullptr
                                      ? req.find("init")->string_or("")
                                      : "random";
    const double density = double_field(req, "density", 0.3, 0.0, 1.0);
    const auto seed =
        static_cast<std::uint64_t>(int_field(req, "seed", 1, 0,
                                             std::int64_t{1} << 62));
    SessionManager::InitFn init_fn;
    if (core::backend_is_3d(cfg.backend)) {
      // 3-D sessions fill through the cubic gas's own initializer; the
      // flat engine state is the Lattice3 raster, so one memcpy lands
      // the volume.
      if (init == "random") {
        const lgca3d::Extent3 e3{cfg.extent.width, cfg.extent.height,
                                 cfg.depth};
        init_fn = [density, seed, e3](lgca::SiteLattice& state,
                                      const lgca::GasModel&) {
          lgca3d::Lattice3 volume(e3, lgca3d::Boundary3::Null);
          lgca3d::fill_random(volume, density, seed);
          std::memcpy(state.grid().data(), volume.data(),
                      state.site_count());
        };
      } else if (init != "empty") {
        throw BadRequest("unknown 3-D init (empty|random)");
      }
    } else if (init == "random") {
      init_fn = [density, seed](lgca::SiteLattice& state,
                                const lgca::GasModel& model) {
        lgca::fill_random(state, model, density, seed, 0.1);
      };
    } else if (init == "flow") {
      init_fn = [density, seed](lgca::SiteLattice& state,
                                const lgca::GasModel& model) {
        lgca::fill_flow(state, model, density, 0.1, seed);
      };
    } else if (init != "empty") {
      throw BadRequest("unknown init (empty|random|flow)");
    }

    const SessionId id = manager_.create(cfg, opts, init_fn);
    obs::JsonWriter w;
    w.begin_object()
        .field("ok", true)
        .field("id", static_cast<std::int64_t>(id))
        .end_object();
    return w.str();
  }

  // Every remaining op addresses one session by id.
  if (op == "step" || op == "query" || op == "checkpoint" ||
      op == "destroy") {
    const auto id = static_cast<SessionId>(
        require_int(req, "id", 0, std::int64_t{1} << 62));

    if (op == "step") {
      const std::int64_t gens =
          require_int(req, "generations", 1, limits_.max_step_generations);
      manager_.step(id, gens);
      if (req.find("wait") != nullptr && req.find("wait")->bool_or(false)) {
        manager_.wait(id);
      }
      const SessionInfo info = manager_.query(id);
      obs::JsonWriter w;
      w.begin_object()
          .field("ok", true)
          .field("id", static_cast<std::int64_t>(id))
          .field("generation", info.generation)
          .field("pending", info.pending_generations)
          .end_object();
      return w.str();
    }

    if (op == "query") {
      const SessionInfo info = manager_.query(id);
      obs::JsonWriter w;
      w.begin_object()
          .field("ok", true)
          .field("id", static_cast<std::int64_t>(id))
          .field("generation", info.generation)
          .field("pending", info.pending_generations)
          .field("resident", info.resident)
          .field("running", info.running)
          .field("priority", priority_name(info.priority))
          .field("width", info.extent.width)
          .field("height", info.extent.height)
          .field("nz", info.depth)
          .field("evictions", info.evictions)
          .field("restores", info.restores)
          .field("quanta", info.quanta)
          .field("busy_seconds", info.busy_seconds)
          .field("sites_per_sec", info.sites_per_sec)
          .end_object();
      return w.str();
    }

    if (op == "checkpoint") {
      const JsonValue* name = req.find("name");
      if (name == nullptr || !name->is_string() || name->string.empty()) {
        throw BadRequest("missing string field 'name'");
      }
      if (name->string.find('/') != std::string::npos ||
          name->string.find("..") != std::string::npos) {
        throw BadRequest("'name' must be a plain filename");
      }
      std::filesystem::create_directories(checkpoint_dir_);
      const std::string path =
          checkpoint_dir_ + "/" + name->string + ".ckpt";
      manager_.checkpoint(id, path);
      obs::JsonWriter w;
      w.begin_object()
          .field("ok", true)
          .field("id", static_cast<std::int64_t>(id))
          .field("path", path)
          .end_object();
      return w.str();
    }

    manager_.destroy(id);
    obs::JsonWriter w;
    w.begin_object()
        .field("ok", true)
        .field("id", static_cast<std::int64_t>(id))
        .end_object();
    return w.str();
  }

  if (op == "stats") {
    const ServeStats s = manager_.stats();
    obs::JsonWriter w;
    w.begin_object()
        .field("ok", true)
        .field("sessions", manager_.session_count())
        .field("created", s.created)
        .field("destroyed", s.destroyed)
        .field("evicted", s.evicted)
        .field("restored", s.restored)
        .field("rejected", s.rejected)
        .field("quanta", s.quanta)
        .field("generations", s.generations)
        .field("site_updates", s.site_updates)
        .field("resident", s.resident)
        .field("queue_depth", s.queue_depth)
        .field("steps_completed", s.step_latency.count)
        .field("p50_step_ns", s.step_latency.quantile_ceiling(0.5))
        .field("p99_step_ns", s.step_latency.quantile_ceiling(0.99))
        .end_object();
    return w.str();
  }

  return error_response("unknown_op",
                        "unknown op '" + std::string(op) + "'");
}

}  // namespace lattice::serve
