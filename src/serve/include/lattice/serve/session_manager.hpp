// SessionManager — lattice-as-a-service over a bounded engine budget.
//
// The paper's engines are single-simulation machines; the serving layer
// answers the same hardware constraints the way CAM-8 did — as a
// shared, time-multiplexed resource. A SessionManager owns a bounded
// pool of *resident* engines (Config::max_resident) plus a small crew
// of scheduler workers, and multiplexes N >> max_resident concurrent
// sessions across them:
//
//   * admission — create() builds the session's engine immediately (so
//     a bad config fails at the door, not mid-schedule), applies the
//     caller's initializer, and counts against Config::max_sessions.
//   * scheduling — step() enqueues generations; workers drain the ready
//     queues in weighted round-robin over three priority classes
//     (Interactive:4, Normal:2, Batch:1 quanta per cycle), FIFO within
//     a class, so no session starves and interactive sessions see
//     bounded queueing delay. Each grant runs one *quantum* of
//     generations (Config::quantum, rounded up to the engine's
//     chunk_quantum() so temporal tiling and guarded checkpoints stay
//     intact), then requeues the session if work remains.
//   * eviction — when a non-resident session is touched (scheduled,
//     read, checkpointed) and the pool is full, the least-recently-run
//     resident idle session is checkpointed to Config::spool_dir via
//     core::checkpoint_io and its engine destroyed; restore-on-touch
//     rebuilds the engine from the stored config and the durable
//     checkpoint, bit-exactly (the checkpoint payload is the
//     backend-shared byte-site image).
//   * quotas — per-session lifetime generation caps and pending-work
//     bounds throw QuotaError at step() time; admission past
//     max_sessions throws QuotaError at create() time.
//
// Determinism: with workers == 1 the schedule (grant order, eviction
// victims, restore count) is a pure function of the call sequence —
// bench_serve records those counters as CI row identity. With more
// workers only the interleaving changes; per-session results stay
// bit-exact because one session never runs on two workers at once.
//
// Threading: the manager's workers are dedicated std::threads, *not*
// ThreadPool::shared() tasks — session engines may themselves submit
// banded work to the shared pool (Config::threads > 1), and a pool task
// submitting to its own pool would deadlock. Eviction and restore I/O
// run under the manager lock (simple and deterministic; the quantum
// itself — where the time goes — runs outside it).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lattice/common/error.hpp"
#include "lattice/core/engine.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::serve {

using SessionId = std::uint64_t;

/// Scheduling class. Weighted round-robin grants per cycle:
/// Interactive 4, Normal 2, Batch 1 (see priority_weight).
enum class Priority { Interactive = 0, Normal = 1, Batch = 2 };
inline constexpr int kPriorityClasses = 3;
int priority_weight(Priority p) noexcept;

/// Unknown or destroyed session id, or an operation on a session in a
/// state that cannot honor it.
class SessionError : public Error {
 public:
  explicit SessionError(const std::string& what) : Error(what) {}
};

/// An admission or per-session quota refused the request.
class QuotaError : public Error {
 public:
  explicit QuotaError(const std::string& what) : Error(what) {}
};

struct SessionQuota {
  /// Lifetime cap on requested generations (0 = unlimited): a runaway
  /// client cannot buy unbounded compute on one session.
  std::int64_t max_generations = 0;
  /// Cap on queued-but-uncommitted generations (backpressure).
  std::int64_t max_pending = std::int64_t{1} << 20;
};

struct SessionOptions {
  Priority priority = Priority::Normal;
  SessionQuota quota;
};

/// Point-in-time view of one session (query(); no touch, no restore).
struct SessionInfo {
  SessionId id = 0;
  bool resident = false;
  bool running = false;
  std::int64_t generation = 0;
  std::int64_t pending_generations = 0;
  Priority priority = Priority::Normal;
  Extent extent{0, 0};
  /// z extent (nz) of a 3-D session; 1 for every 2-D backend.
  std::int64_t depth = 1;
  core::Backend backend = core::Backend::Reference;
  std::int64_t evictions = 0;
  std::int64_t restores = 0;
  std::int64_t quanta = 0;
  /// Wall-clock spent inside this session's advance() quanta, and the
  /// committed site-update rate over that time.
  double busy_seconds = 0;
  double sites_per_sec = 0;
};

/// Aggregate serving counters. The two histograms are maintained
/// locally (not via the obs registry) so they survive -DLATTICE_OBS=OFF
/// builds: bench_serve gates on their quantiles.
struct ServeStats {
  std::int64_t created = 0;
  std::int64_t destroyed = 0;
  std::int64_t evicted = 0;
  std::int64_t restored = 0;
  std::int64_t rejected = 0;  // create/step refused by a quota
  std::int64_t quanta = 0;
  std::int64_t generations = 0;   // committed, summed over sessions
  std::int64_t site_updates = 0;  // committed generation * area
  std::int64_t resident = 0;      // current resident engines
  std::int64_t queue_depth = 0;   // sessions ready-queued right now
  /// ns from step() enqueue to the commit of that request's last
  /// generation, one sample per completed step() call.
  obs::HistogramStats step_latency;
  /// Ready-queue depth sampled at every enqueue.
  obs::HistogramStats queue_depth_hist;
};

class SessionManager {
 public:
  struct Config {
    /// Bounded engine pool: sessions resident in memory at once.
    int max_resident = 8;
    /// Dedicated scheduler worker threads (>= 1).
    unsigned workers = 1;
    /// Generations granted per scheduling quantum (>= 1); each grant is
    /// rounded up to the session engine's chunk_quantum().
    std::int64_t quantum = 8;
    /// Directory for eviction checkpoints; created on construction,
    /// session files are removed on destroy() and at destruction.
    std::string spool_dir = "lattice_spool";
    /// Admission cap on live sessions (0 = unlimited).
    std::int64_t max_sessions = 0;
  };

  /// Applied to the freshly constructed engine's state under the
  /// manager lock; the GasModel argument is the session's gas.
  using InitFn =
      std::function<void(lgca::SiteLattice&, const lgca::GasModel&)>;

  explicit SessionManager(Config config);
  /// Stops the workers (in-flight quanta finish; queued work is
  /// dropped) and removes all spool files.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admit a session: construct its engine (evicting an idle resident
  /// if the pool is full), run `init` on the state, return its id.
  /// Throws QuotaError past max_sessions, Error on a bad engine config.
  SessionId create(core::LatticeEngine::Config engine_config,
                   SessionOptions options = {}, const InitFn& init = {});

  /// Queue `generations` more committed steps for the session. Returns
  /// immediately; throws QuotaError when a quota refuses.
  void step(SessionId id, std::int64_t generations);

  /// Block until the session has no pending or running work.
  void wait(SessionId id);
  /// Block until no session has pending or running work.
  void wait_all();

  SessionInfo query(SessionId id) const;

  /// Copy of the session's committed state (waits for idle; reads the
  /// spool checkpoint when evicted — no restore).
  lgca::SiteLattice state(SessionId id);

  /// Durable checkpoint of the committed state to `path` (waits for
  /// idle). Works on resident and evicted sessions alike.
  void checkpoint(SessionId id, const std::string& path);

  /// Forget the session: waits for a running quantum, drops queued
  /// work, destroys the engine, removes the spool file.
  void destroy(SessionId id);

  /// Force-evict a session now (false if running or already evicted).
  /// Tests use this to provoke memory pressure deterministically; the
  /// scheduler evicts on its own whenever the pool overflows.
  bool evict(SessionId id);

  std::int64_t session_count() const;
  ServeStats stats() const;
  const Config& config() const noexcept { return config_; }

 private:
  struct Session;

  void worker_loop();
  Session* pick_next_locked();
  void enqueue_locked(Session& s);
  void make_room_locked();
  void evict_locked(Session& s);
  void ensure_resident_locked(Session& s);
  void wait_idle_locked(std::unique_lock<std::mutex>& lk, SessionId id);
  Session& session_locked(SessionId id);
  const Session& session_locked(SessionId id) const;
  std::string spool_path(SessionId id) const;

  Config config_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  bool stop_ = false;

  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_;
  std::deque<SessionId> ready_[kPriorityClasses];
  int rr_class_ = 0;
  int rr_credit_ = 0;
  SessionId next_id_ = 1;
  std::uint64_t touch_clock_ = 0;
  std::int64_t resident_ = 0;
  std::int64_t ready_count_ = 0;
  std::int64_t running_count_ = 0;

  ServeStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace lattice::serve
