// Minimal JSON reader for the serve wire protocol.
//
// The repo's JsonWriter (lattice/obs/json.hpp) only emits; the
// newline-delimited JSON protocol that lattice_serve speaks also has to
// *accept* frames — including truncated, overlong, and outright garbage
// ones from misbehaving clients — without ever taking the server down.
// This is a small recursive-descent parser with the properties that
// matter for that job:
//
//   * every malformed input throws a typed JsonParseError with a byte
//     offset (never UB, never a silent partial parse — trailing bytes
//     after the document are an error too);
//   * nesting depth is capped, so a "[[[[[..." frame cannot blow the
//     stack;
//   * numbers keep int64 precision when they have no fraction or
//     exponent (session ids and generation counts are int64), and fall
//     back to double otherwise.
//
// It is deliberately not a general-purpose DOM: no comments, no
// surrogate-pair escapes (rejected, not mangled), UTF-8 passthrough for
// unescaped bytes.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lattice/common/error.hpp"

namespace lattice::serve {

/// The frame failed to parse as a single JSON document. The offset of
/// the first offending byte is embedded in what().
class JsonParseError : public Error {
 public:
  explicit JsonParseError(const std::string& what) : Error(what) {}
};

/// One parsed JSON value. Plain tagged struct: cheap to move, trivially
/// inspectable in tests.
struct JsonValue {
  enum class Kind { Null, Bool, Int, Double, String, Object, Array };

  Kind kind = Kind::Null;
  bool boolean = false;
  std::int64_t integer = 0;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  // Object
  std::vector<JsonValue> elements;                         // Array

  bool is_object() const noexcept { return kind == Kind::Object; }
  bool is_array() const noexcept { return kind == Kind::Array; }
  bool is_string() const noexcept { return kind == Kind::String; }
  bool is_number() const noexcept {
    return kind == Kind::Int || kind == Kind::Double;
  }

  /// First member with key `key`, or nullptr. Objects are small (wire
  /// frames have a handful of fields); linear scan is fine.
  const JsonValue* find(std::string_view key) const noexcept;

  /// Typed accessors with defaults: the protocol treats a missing field
  /// and a field of the wrong type identically (the caller validates
  /// required fields with find()).
  std::int64_t int_or(std::int64_t fallback) const noexcept;
  double double_or(double fallback) const noexcept;
  bool bool_or(bool fallback) const noexcept;
  std::string_view string_or(std::string_view fallback) const noexcept;
};

/// Parse `text` as exactly one JSON document. Throws JsonParseError on
/// any syntax error, trailing garbage, or nesting beyond `max_depth`.
JsonValue parse_json(std::string_view text, int max_depth = 32);

}  // namespace lattice::serve
