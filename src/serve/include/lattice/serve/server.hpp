// SocketServer — newline-delimited JSON over a local AF_UNIX stream
// socket, the transport under the lattice_serve tool.
//
// The server is a thin framing layer: it owns no protocol state beyond
// "where is the next newline" — every frame goes through
// ServeProtocol::handle(), which never throws and always answers, so a
// misbehaving client can at worst occupy its own connection. Overlong
// frames (no newline within the protocol's max_frame_bytes) are
// answered with one frame_too_long error and the stream is resynced at
// the next newline; the connection stays up.
//
// Concurrency: one thread per accepted connection (bounded by the
// listen backlog in practice); the SessionManager underneath is fully
// thread-safe. A {"op":"shutdown"} request on any connection stops the
// accept loop; in-flight connections are joined before run() returns.

#pragma once

#include <cstdio>
#include <string>

#include "lattice/serve/protocol.hpp"

namespace lattice::serve {

struct ServerConfig {
  /// Filesystem path of the AF_UNIX listening socket. A stale file at
  /// this path is unlinked before binding.
  std::string socket_path;
  int backlog = 16;
  /// Optional connection/shutdown log (e.g. stderr or a file); never
  /// logs frame payloads.
  std::FILE* log = nullptr;
};

class SocketServer {
 public:
  SocketServer(ServeProtocol& protocol, ServerConfig config);

  /// Bind, listen, and accept until a shutdown request is handled.
  /// Throws Error if the socket cannot be created or bound.
  void run();

  /// Serve one already-connected stream until EOF or a shutdown
  /// request: reads frames, answers each with protocol.handle(). The
  /// transport for tests and the --smoke socketpair harness. Returns
  /// true if this connection requested shutdown.
  static bool serve_connection(int fd, ServeProtocol& protocol,
                               std::FILE* log = nullptr);

 private:
  ServeProtocol& protocol_;
  ServerConfig config_;
};

}  // namespace lattice::serve
