// ServeProtocol — the newline-delimited JSON request/response language
// lattice_serve speaks, separated from the socket plumbing so tests can
// fuzz frames as plain strings.
//
// One request object per line, one response object per line. Ops:
//
//   {"op":"create","width":64,"height":64, ...}   -> {"ok":true,"id":N}
//       optional: "gas" (hpp|fhp1|fhp2|fhp3, default fhp2), "backend"
//       (reference|bitplane|wsa|spa|wsa_e, default reference),
//       "boundary" (null|periodic), "threads", "depth",
//       "tile_generations", "priority" (interactive|normal|batch),
//       "max_generations", "max_pending", "init" (empty|random|flow),
//       "density", "seed"
//   {"op":"step","id":N,"generations":G[,"wait":true]}
//       -> {"ok":true,"id":N,"generation":g,"pending":p}
//   {"op":"query","id":N}      -> the SessionInfo fields
//   {"op":"checkpoint","id":N,"name":"tag"}
//       -> {"ok":true,"path":...} — written under the server's
//       checkpoint directory; "name" must be a plain filename (no
//       separators), so a client cannot write outside that directory.
//   {"op":"destroy","id":N}    -> {"ok":true}
//   {"op":"stats"}             -> aggregate ServeStats + latency
//                                 quantiles
//   {"op":"ping"}              -> {"ok":true,"pong":true}
//   {"op":"shutdown"}          -> {"ok":true,"shutdown":true} and the
//                                 server exits its accept loop.
//
// Every failure is a typed error *response*, never a dropped
// connection or a crash:
//
//   {"ok":false,"error":CODE,"message":"..."}
//   CODE in: parse_error | bad_request | unknown_op | unknown_session |
//            quota_exceeded | frame_too_long | internal
//
// handle() never throws: malformed JSON, wrong types, out-of-range
// sizes, and engine-config rejections all map to the codes above.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "lattice/serve/session_manager.hpp"

namespace lattice::serve {

/// Abuse bounds applied before a request touches the session manager.
struct ProtocolLimits {
  /// Frames longer than this are answered with frame_too_long (the
  /// transport skips to the next newline and keeps the connection).
  std::size_t max_frame_bytes = 64 * 1024;
  /// Per-create lattice side cap (bytes-per-session is side^2).
  std::int64_t max_side = 4096;
  /// Per-step generation cap.
  std::int64_t max_step_generations = std::int64_t{1} << 20;
};

class ServeProtocol {
 public:
  /// `checkpoint_dir` receives {"op":"checkpoint"} files; created
  /// lazily on first use.
  ServeProtocol(SessionManager& manager, ProtocolLimits limits = {},
                std::string checkpoint_dir = "lattice_ckpt");

  /// Process one frame (without the trailing newline) and return
  /// exactly one response line (without a newline). Never throws.
  std::string handle(std::string_view frame);

  /// True once a shutdown request has been handled. Transports poll
  /// this after each response.
  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  const ProtocolLimits& limits() const noexcept { return limits_; }

 private:
  std::string dispatch(std::string_view frame);

  SessionManager& manager_;
  ProtocolLimits limits_;
  std::string checkpoint_dir_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace lattice::serve
