// Analytic I/O bounds for lattice computations (§7, Theorems 2–4).
//
// Chain of results reproduced here:
//   Lemma 8    T_d(j) > j^d / d!        (line-spread of C_d)
//   Theorem 4  τ(2S) < 2·(d!·2S)^(1/d)  (line-time of any 2S-partition)
//   Lemma 1/2  Q ≥ S·(g−1),  g ≥ |X| / (2S·τ(2S))
//   ⇒          R = O(B·S^(1/d))         (the headline bound)
//
// R is the site-update rate, B the main-memory bandwidth in site values
// per unit time, S the processor storage in site values, d the lattice
// dimension.

#pragma once

#include <cstdint>

#include "lattice/common/error.hpp"

namespace lattice::pebble {

/// The lattice dimension of every 2-D engine in this repo — the `d`
/// plugged into Theorem 4 by the engine's pebbling-ceiling report, the
/// temporal tile planner's τ(2S) comparison, and the d = 2 section of
/// bench_schedule_io. Single source of truth so the cost model and the
/// measured schedules can never silently disagree on the exponent; the
/// d-sweep benches/tests (bench_pebbling_bounds, test_schedules) pass
/// explicit dimensions because sweeping d is their point.
inline constexpr int kEngineLatticeDim = 2;

/// d! as a double (d small).
double factorial(int d);

/// Lemma 8 lower bound on the number of lines covered within j steps.
double line_spread_lower(int d, double j);

/// Theorem 4 upper bound on the line-time: τ(2S) < 2·(d!·2S)^(1/d).
double tau_upper(int d, double storage);

/// Hong–Kung lower bound on the I/O of any complete computation of a
/// C_d with `vertices` total vertices, given storage S:
/// Q ≥ S·(g−1) with g ≥ vertices / (2S·τ(2S)).
/// Using the τ *upper* bound keeps this a valid (conservative) lower
/// bound on Q.
double min_io_lower_bound(int d, double storage, double vertices);

/// Asymptotic ceiling on useful updates per I/O word:
/// R/B ≤ 2·τ(2S) < 4·(d!·2S)^(1/d). Any legal pebbling must sit below
/// this; the tiled schedules approach it within a constant.
double updates_per_io_upper(int d, double storage);

/// The headline form: maximum update rate for bandwidth `bw` (site
/// values per second) and storage S: R ≤ bw · updates_per_io_upper.
double update_rate_upper(int d, double storage, double bw_sites_per_sec);

}  // namespace lattice::pebble
