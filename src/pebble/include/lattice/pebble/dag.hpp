// Directed acyclic graphs for pebble games (§7).
//
// Small and explicit: vertices are dense integer ids, predecessor and
// successor lists are materialized. Fine for the graphs the games are
// actually played on (lattice computation graphs up to a few hundred
// thousand vertices); the asymptotic experiments use schedules that
// walk the graph implicitly and only consult the game engine for
// legality.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/common/error.hpp"

namespace lattice::pebble {

using Vertex = std::int64_t;

class Dag {
 public:
  Dag() = default;
  explicit Dag(Vertex n) { resize(n); }

  void resize(Vertex n) {
    LATTICE_REQUIRE(n >= 0, "Dag size must be non-negative");
    preds_.resize(static_cast<std::size_t>(n));
    succs_.resize(static_cast<std::size_t>(n));
  }

  Vertex add_vertex() {
    preds_.emplace_back();
    succs_.emplace_back();
    return static_cast<Vertex>(preds_.size()) - 1;
  }

  /// Add edge u → v (u computed before v; v depends on u).
  void add_edge(Vertex u, Vertex v) {
    LATTICE_REQUIRE(valid(u) && valid(v), "Dag edge endpoint out of range");
    preds_[static_cast<std::size_t>(v)].push_back(u);
    succs_[static_cast<std::size_t>(u)].push_back(v);
  }

  Vertex size() const noexcept { return static_cast<Vertex>(preds_.size()); }
  bool valid(Vertex v) const noexcept { return v >= 0 && v < size(); }

  const std::vector<Vertex>& preds(Vertex v) const {
    return preds_[static_cast<std::size_t>(v)];
  }
  const std::vector<Vertex>& succs(Vertex v) const {
    return succs_[static_cast<std::size_t>(v)];
  }

  bool is_input(Vertex v) const { return preds(v).empty(); }
  bool is_output(Vertex v) const { return succs(v).empty(); }

  std::vector<Vertex> inputs() const {
    std::vector<Vertex> out;
    for (Vertex v = 0; v < size(); ++v)
      if (is_input(v)) out.push_back(v);
    return out;
  }
  std::vector<Vertex> outputs() const {
    std::vector<Vertex> out;
    for (Vertex v = 0; v < size(); ++v)
      if (is_output(v)) out.push_back(v);
    return out;
  }

  std::int64_t edge_count() const {
    std::int64_t n = 0;
    for (const auto& p : preds_) n += static_cast<std::int64_t>(p.size());
    return n;
  }

 private:
  std::vector<std::vector<Vertex>> preds_;
  std::vector<std::vector<Vertex>> succs_;
};

}  // namespace lattice::pebble
