// Constructive pebbling schedules for lattice computation graphs (§7).
//
// Two families, both replayed through the RedBlueGame referee so their
// I/O counts are enforced:
//
//   Sweep    — the naive streaming order: every generation reads the
//              whole lattice from main memory and writes it back.
//              I/O per useful update ≈ 2, *independent of S*: adding
//              on-chip storage buys nothing.
//
//   Tiled    — space-time blocks with halos: read a (b+2h)^d input
//              region once, advance it h generations entirely in
//              processor storage (recomputing halo cells), write back
//              the b^d core. Updates per I/O grow as Θ(S^(1/d)) —
//              meeting Hong & Kung's upper bound R = O(B·S^(1/d))
//              (Theorem 4) up to a constant, which shows the bound is
//              asymptotically tight.
//
// The schedules pick their block parameters from the red-pebble budget
// S; the game aborts the run if they ever overdraw it.

#pragma once

#include <cstdint>

#include "lattice/pebble/comp_graph.hpp"
#include "lattice/pebble/game.hpp"

namespace lattice::pebble {

struct ScheduleResult {
  std::int64_t io_moves = 0;       // q, counted by the referee
  std::int64_t computes = 0;       // rule-4 moves (includes halo recompute)
  std::int64_t useful_updates = 0; // lattice sites × generations
  std::int64_t peak_red = 0;       // max red pebbles in flight
  std::int64_t red_limit = 0;      // S
  std::int64_t vertices = 0;       // |X| of the computation graph

  /// Measured R/B in site-values per I/O word — the quantity Theorem 4
  /// bounds by O(S^(1/d)).
  double updates_per_io() const {
    return io_moves > 0 ? static_cast<double>(useful_updates) /
                              static_cast<double>(io_moves)
                        : 0.0;
  }
  /// Redundant work fraction paid for the I/O savings.
  double recompute_overhead() const {
    return useful_updates > 0
               ? static_cast<double>(computes - useful_updates) /
                     static_cast<double>(useful_updates)
               : 0.0;
  }
};

/// Naive generation-by-generation sweep of a 1-D lattice of n cells
/// over `steps` generations. Needs only S ≥ 5.
ScheduleResult run_sweep_1d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit);

/// Raster sweep of an nx×ny lattice; needs S ≥ 2·nx + 5 (two lines).
ScheduleResult run_sweep_2d(std::int64_t nx, std::int64_t ny,
                            std::int64_t steps, std::int64_t red_limit);

/// Halo-tiled schedule on a 1-D lattice; block size chosen from S.
ScheduleResult run_tiled_1d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit);

/// Same, with an explicit (block, height) tile shape — the ablation
/// handle for studying the b-vs-h tradeoff at fixed S. Throws if the
/// shape overruns the red-pebble budget.
ScheduleResult run_tiled_1d_shaped(std::int64_t n, std::int64_t steps,
                                   std::int64_t red_limit,
                                   std::int64_t block, std::int64_t height);

/// Halo-tiled schedule on an nx×ny lattice; tile side chosen from S.
ScheduleResult run_tiled_2d(std::int64_t nx, std::int64_t ny,
                            std::int64_t steps, std::int64_t red_limit);

/// Plane-raster sweep of an n×n×n lattice; needs S ≥ 2·n² + 7
/// (two stream planes — the d = 3 window blow-up).
ScheduleResult run_sweep_3d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit);

/// Halo-tiled schedule on an n×n×n lattice; tile side chosen from S.
/// R/B grows as Θ(S^(1/3)).
ScheduleResult run_tiled_3d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit);

/// A run of the paper's *parallel* red-blue game (§7): a CRCW-style
/// machine that holds two whole layers in storage and advances one
/// generation per calculate phase — every site of a layer computed
/// simultaneously off the pink place-holders. Total I/O collapses to
/// one read and one write of the lattice regardless of T.
struct ParallelScheduleResult {
  std::int64_t io_moves = 0;
  std::int64_t phases = 0;
  std::int64_t division_size = 0;  // h of the S-I/O-division
  std::int64_t useful_updates = 0;
  std::int64_t peak_red = 0;
};

/// Requires S ≥ 2·box.points() (two live layers).
ParallelScheduleResult run_parallel_layer_sweep(const LatticeBox& box,
                                                std::int64_t steps,
                                                std::int64_t red_limit);

/// The 1-D sweep replayed under the block-red-blue game ([15]): block
/// transfers of `block_size` values count as one I/O operation.
struct BlockScheduleResult {
  std::int64_t block_ios = 0;  // I/O operations (block-granular)
  std::int64_t word_ios = 0;   // values moved
  std::int64_t useful_updates = 0;
};
BlockScheduleResult run_block_sweep_1d(std::int64_t n, std::int64_t steps,
                                       std::int64_t red_limit,
                                       std::int64_t block_size);

/// Tile parameters the tiled schedules derive from S (exposed for the
/// ablation bench).
struct TileShape {
  std::int64_t block = 0;   // b: output cells per tile per dimension
  std::int64_t height = 0;  // h: generations per slab
};
TileShape tile_shape_1d(std::int64_t red_limit, std::int64_t n,
                        std::int64_t steps);
TileShape tile_shape_2d(std::int64_t red_limit, std::int64_t nx,
                        std::int64_t steps);
TileShape tile_shape_3d(std::int64_t red_limit, std::int64_t n,
                        std::int64_t steps);

}  // namespace lattice::pebble
