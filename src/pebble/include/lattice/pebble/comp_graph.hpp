// Layered computation graphs C_d of lattice CA evolutions (§7).
//
// The lattice G is the d-dimensional orthogonal grid on the integer
// points of a box (the paper's worst-case assumption 1: von Neumann
// connectivity, the minimum any isotropic gas needs). The computation
// graph C has T+1 copies of G's vertex set; (u, t) → (v, t+1) iff
// u ∈ N(v) = neighbors(v) ∪ {v}. Boundary vertices keep truncated
// neighborhoods (assumption 2).

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/pebble/dag.hpp"

namespace lattice::pebble {

/// A d-dimensional box of lattice points.
struct LatticeBox {
  std::vector<std::int64_t> extent;  // points per dimension (size d)

  int dim() const noexcept { return static_cast<int>(extent.size()); }

  std::int64_t points() const noexcept {
    std::int64_t n = 1;
    for (const std::int64_t e : extent) n *= e;
    return n;
  }

  /// Mixed-radix cell index of a coordinate vector.
  std::int64_t index(const std::vector<std::int64_t>& x) const;

  /// Inverse of index().
  std::vector<std::int64_t> coords(std::int64_t idx) const;
};

/// Identify (cell, layer) with a Dag vertex.
struct LayeredId {
  const LatticeBox& box;
  std::int64_t layers;  // T+1 total

  Vertex vertex(std::int64_t cell, std::int64_t layer) const {
    return layer * box.points() + cell;
  }
  std::int64_t cell_of(Vertex v) const { return v % box.points(); }
  std::int64_t layer_of(Vertex v) const { return v / box.points(); }
};

/// Build C_d for `steps` evolution steps (layers 0..steps).
Dag computation_graph(const LatticeBox& box, std::int64_t steps);

/// Orthogonal lattice neighbors of a cell (von Neumann, truncated at
/// the box boundary), *excluding* the cell itself.
std::vector<std::int64_t> lattice_neighbors(const LatticeBox& box,
                                            std::int64_t cell);

/// Number of cells reachable from a corner in ≤ j steps: the integer
/// points of the simplex x₁+…+x_d ≤ j, i.e. C(j+d, d) for boxes with
/// every extent > j. This is the combinatorial heart of Lemma 8.
std::int64_t simplex_points(int dim, std::int64_t j);

/// Empirical line-spread seed: count cells within graph distance j of
/// `cell` in the box (BFS).
std::int64_t cells_within(const LatticeBox& box, std::int64_t cell,
                          std::int64_t j);

}  // namespace lattice::pebble
