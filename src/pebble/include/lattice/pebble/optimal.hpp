// Exact minimum-I/O pebbling for small DAGs.
//
// The paper closes with: "A further goal would be to discover an
// optimal pebbling for any problem in this class, and thereby discover
// an architecture which is optimal with regard to input/output
// complexity." For graphs small enough to enumerate (≤ ~12 vertices)
// this module finds the true optimum Q by 0/1-BFS over game states
// (red set × blue set), with compute/evict moves free and read/write
// moves costing one I/O each. It serves as ground truth: the analytic
// lower bounds must sit at or below it, and the constructive schedules
// at or above it.

#pragma once

#include <cstdint>

#include "lattice/pebble/dag.hpp"

namespace lattice::pebble {

struct OptimalResult {
  bool feasible = false;      // can the outputs be blue-pebbled at all?
  std::int64_t min_io = 0;    // Q: minimum read+write moves
  std::int64_t states = 0;    // search states expanded (diagnostics)
};

/// Exact minimum I/O over all legal red-blue pebblings with at most
/// `red_limit` red pebbles. Throws for graphs with more than
/// `max_vertices` vertices (state space is 4^n).
OptimalResult min_io_pebbling(const Dag& dag, std::int64_t red_limit,
                              int max_vertices = 12);

}  // namespace lattice::pebble
