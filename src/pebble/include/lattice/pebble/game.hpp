// The red-blue pebble game (Hong & Kung, §7 rules 1–4) and the paper's
// parallel-red-blue extension (§7, rule 5 with pink place-holders).
//
// The engine *referees*: schedules submit moves, the engine checks
// legality, tracks pebble placement, and counts I/O. Every schedule in
// this library is replayed through an engine, so its reported I/O
// count is enforced, not self-declared.
//
// Rules (sequential game):
//   1. a pebble may be removed from a vertex at any time;
//   2. a red pebble may be placed on any vertex with a blue pebble  (read);
//   3. a blue pebble may be placed on any vertex with a red pebble  (write);
//   4. if all immediate predecessors of v are red, v may be red-pebbled
//      (compute).
// Start: inputs blue. Goal: outputs blue. At most S red pebbles.
//
// Parallel game: moves happen in cyclic phases — write, calculate,
// read — with the calculate phase placing pink pebbles first (rule 4),
// then turning them red, so a value may fan out to many simultaneous
// calculations without the sequential game's slide blocking.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/pebble/dag.hpp"

namespace lattice::pebble {

/// Sequential red-blue pebble game referee.
class RedBlueGame {
 public:
  /// `red_limit` is S, the processor storage in site values.
  RedBlueGame(const Dag& dag, std::int64_t red_limit);

  // --- moves (throw lattice::Error when illegal) ---
  void remove_red(Vertex v);    // rule 1 (red half)
  void remove_blue(Vertex v);   // rule 1 (blue half)
  void read(Vertex v);          // rule 2: blue → +red      (1 I/O)
  void write(Vertex v);         // rule 3: red → +blue      (1 I/O)
  void compute(Vertex v);       // rule 4

  // --- state ---
  bool red(Vertex v) const { return red_[static_cast<std::size_t>(v)]; }
  bool blue(Vertex v) const { return blue_[static_cast<std::size_t>(v)]; }
  std::int64_t red_count() const noexcept { return red_count_; }
  std::int64_t peak_red() const noexcept { return peak_red_; }
  std::int64_t io_moves() const noexcept { return io_moves_; }
  std::int64_t computes() const noexcept { return computes_; }
  std::int64_t red_limit() const noexcept { return red_limit_; }

  /// True once every output vertex carries a blue pebble — a complete
  /// computation in the paper's sense.
  bool complete() const;

  const Dag& dag() const noexcept { return *dag_; }

 private:
  void place_red(Vertex v);

  const Dag* dag_;
  std::int64_t red_limit_;
  std::vector<bool> red_;
  std::vector<bool> blue_;
  std::int64_t red_count_ = 0;
  std::int64_t peak_red_ = 0;
  std::int64_t io_moves_ = 0;
  std::int64_t computes_ = 0;
};

/// Block-red-blue game (Savage & Vitter, cited as [15] in §7): like the
/// sequential game, but a read or write may move up to `block_size`
/// values in one I/O operation — the model of a memory system that
/// transfers lines, not words. Lower-bound arguments divide by the
/// block size; this referee lets schedules measure the win directly.
class BlockRedBlueGame {
 public:
  BlockRedBlueGame(const Dag& dag, std::int64_t red_limit,
                   std::int64_t block_size);

  void remove_red(Vertex v) { inner_.remove_red(v); }
  void compute(Vertex v) { inner_.compute(v); }

  /// One block transfer from main memory: every vertex must be blue.
  void read_block(const std::vector<Vertex>& vs);
  /// One block transfer to main memory: every vertex must be red.
  void write_block(const std::vector<Vertex>& vs);

  bool red(Vertex v) const { return inner_.red(v); }
  bool blue(Vertex v) const { return inner_.blue(v); }
  std::int64_t block_ios() const noexcept { return block_ios_; }
  std::int64_t word_ios() const noexcept { return inner_.io_moves(); }
  std::int64_t computes() const noexcept { return inner_.computes(); }
  std::int64_t peak_red() const noexcept { return inner_.peak_red(); }
  bool complete() const { return inner_.complete(); }

 private:
  RedBlueGame inner_;
  std::int64_t block_size_;
  std::int64_t block_ios_ = 0;
};

/// Parallel red-blue game referee: phase-structured moves.
class ParallelRedBlueGame {
 public:
  ParallelRedBlueGame(const Dag& dag, std::int64_t red_limit);

  /// One full cycle: writes (rule 3), then simultaneous calculations
  /// (rule 4 via pink pebbles; every calculation's supports must be red
  /// *before* the phase), then reads (rule 2), then evictions.
  /// I/O accrues |writes| + |reads|.
  void step(const std::vector<Vertex>& writes,
            const std::vector<Vertex>& calcs,
            const std::vector<Vertex>& reads,
            const std::vector<Vertex>& evictions);

  bool red(Vertex v) const { return red_[static_cast<std::size_t>(v)]; }
  bool blue(Vertex v) const { return blue_[static_cast<std::size_t>(v)]; }
  std::int64_t io_moves() const noexcept { return io_moves_; }
  std::int64_t computes() const noexcept { return computes_; }
  std::int64_t peak_red() const noexcept { return peak_red_; }
  std::int64_t phases() const noexcept { return phases_; }
  bool complete() const;

  /// Size h of the S-I/O-division: phases counted in blocks of ≤ S I/O
  /// moves (the quantity Theorem 2 bounds below via 2S-partitions).
  std::int64_t io_division_size() const;

 private:
  const Dag* dag_;
  std::int64_t red_limit_;
  std::vector<bool> red_;
  std::vector<bool> blue_;
  std::int64_t red_count_ = 0;
  std::int64_t peak_red_ = 0;
  std::int64_t io_moves_ = 0;
  std::int64_t computes_ = 0;
  std::int64_t phases_ = 0;
};

}  // namespace lattice::pebble
