#include "lattice/pebble/optimal.hpp"

#include <bit>
#include <deque>
#include <vector>

namespace lattice::pebble {

namespace {

using Mask = std::uint32_t;

struct Graph {
  int n = 0;
  Mask inputs = 0;
  Mask outputs = 0;
  std::vector<Mask> preds;
};

Graph lower(const Dag& dag) {
  Graph g;
  g.n = static_cast<int>(dag.size());
  g.preds.resize(static_cast<std::size_t>(g.n), 0);
  for (Vertex v = 0; v < dag.size(); ++v) {
    if (dag.is_input(v)) g.inputs |= Mask{1} << v;
    if (dag.is_output(v)) g.outputs |= Mask{1} << v;
    for (const Vertex u : dag.preds(v)) {
      g.preds[static_cast<std::size_t>(v)] |= Mask{1} << u;
    }
  }
  return g;
}

}  // namespace

OptimalResult min_io_pebbling(const Dag& dag, std::int64_t red_limit,
                              int max_vertices) {
  LATTICE_REQUIRE(red_limit >= 1, "need at least one red pebble");
  LATTICE_REQUIRE(dag.size() >= 1, "empty graph");
  LATTICE_REQUIRE(dag.size() <= max_vertices && max_vertices <= 14,
                  "graph too large for exact pebbling search");

  const Graph g = lower(dag);
  const int n = g.n;
  const auto state_of = [n](Mask red, Mask blue) -> std::size_t {
    return (static_cast<std::size_t>(blue) << n) | red;
  };

  const std::size_t space = std::size_t{1} << (2 * n);
  std::vector<std::int16_t> dist(space, -1);
  std::deque<std::size_t> queue;

  const std::size_t start = state_of(0, g.inputs);
  dist[start] = 0;
  queue.push_back(start);

  OptimalResult result;
  const Mask all = (n == 32) ? ~Mask{0} : ((Mask{1} << n) - 1);

  while (!queue.empty()) {
    const std::size_t s = queue.front();
    queue.pop_front();
    const Mask red = static_cast<Mask>(s) & all;
    const Mask blue = static_cast<Mask>(s >> n) & all;
    const std::int16_t d = dist[s];
    ++result.states;

    if ((blue & g.outputs) == g.outputs) {
      result.feasible = true;
      result.min_io = d;
      return result;
    }

    const bool has_room =
        std::popcount(red) < static_cast<int>(red_limit);

    const auto relax = [&](Mask nred, Mask nblue, int cost) {
      const std::size_t t = state_of(nred, nblue);
      const std::int16_t nd = static_cast<std::int16_t>(d + cost);
      if (dist[t] == -1 || nd < dist[t]) {
        dist[t] = nd;
        if (cost == 0) {
          queue.push_front(t);
        } else {
          queue.push_back(t);
        }
      }
    };

    for (int v = 0; v < n; ++v) {
      const Mask bit = Mask{1} << v;
      if ((red & bit) != 0) {
        relax(red & ~bit, blue, 0);                       // rule 1: evict
        if ((blue & bit) == 0) relax(red, blue | bit, 1); // rule 3: write
      } else {
        // Rule 4 never applies to inputs: underived data can only be
        // obtained by reading it (rule 2).
        const Mask pv = g.preds[static_cast<std::size_t>(v)];
        const bool computable = pv != 0 && (pv & ~red) == 0;
        if (has_room && computable) relax(red | bit, blue, 0);  // rule 4
        if (has_room && (blue & bit) != 0) relax(red | bit, blue, 1);  // 2
      }
    }
  }
  return result;  // infeasible (red_limit too small for some in-degree)
}

}  // namespace lattice::pebble
