#include "lattice/pebble/schedules.hpp"

#include <algorithm>
#include <cmath>

#include "lattice/pebble/comp_graph.hpp"

namespace lattice::pebble {

namespace {

ScheduleResult finish(const RedBlueGame& game, std::int64_t useful) {
  LATTICE_ASSERT(game.complete(), "schedule did not complete the pebbling");
  ScheduleResult r;
  r.io_moves = game.io_moves();
  r.computes = game.computes();
  r.useful_updates = useful;
  r.peak_red = game.peak_red();
  r.red_limit = game.red_limit();
  r.vertices = game.dag().size();
  return r;
}

}  // namespace

// ----------------------------------------------------------- sweeps

ScheduleResult run_sweep_1d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit) {
  LATTICE_REQUIRE(n >= 2 && steps >= 1, "need n >= 2, steps >= 1");
  LATTICE_REQUIRE(red_limit >= 5, "1-D sweep needs S >= 5");
  const LatticeBox box{{n}};
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  RedBlueGame game(dag, red_limit);

  for (std::int64_t t = 0; t < steps; ++t) {
    game.read(id.vertex(0, t));
    for (std::int64_t i = 0; i < n; ++i) {
      if (i + 1 < n) game.read(id.vertex(i + 1, t));
      const Vertex v = id.vertex(i, t + 1);
      game.compute(v);
      game.write(v);
      game.remove_red(v);
      if (i > 0) game.remove_red(id.vertex(i - 1, t));
    }
    game.remove_red(id.vertex(n - 1, t));  // last straggler of layer t
  }
  return finish(game, n * steps);
}

ScheduleResult run_sweep_2d(std::int64_t nx, std::int64_t ny,
                            std::int64_t steps, std::int64_t red_limit) {
  LATTICE_REQUIRE(nx >= 2 && ny >= 2 && steps >= 1,
                  "need nx, ny >= 2 and steps >= 1");
  LATTICE_REQUIRE(red_limit >= 2 * ny + 5,
                  "2-D sweep needs S >= two stream rows (2·ny + 5)");
  const LatticeBox box{{nx, ny}};  // index = x·ny + y (y fastest)
  const std::int64_t area = nx * ny;
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  RedBlueGame game(dag, red_limit);

  // box.index({ix, iy}) with extent {nx, ny} = ix*ny + iy; we want a
  // raster over (x outer? ) — walk cells in box index order, which is a
  // raster with the *last* coordinate fastest. The window logic below
  // is symmetric, so treat index = x·ny + y with y fastest: rows of
  // length ny, nx of them.
  const std::int64_t row = ny;

  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t p = 0; p < area + row; ++p) {
      if (p < area) game.read(id.vertex(p, t));
      const std::int64_t q = p - row;
      if (q >= 0) {
        const Vertex v = id.vertex(q, t + 1);
        game.compute(v);
        game.write(v);
        game.remove_red(v);
        if (q - row >= 0) game.remove_red(id.vertex(q - row, t));
      }
    }
    // Drain the trailing window of layer-t reds.
    for (std::int64_t q = area - row; q < area; ++q) {
      if (q >= 0) game.remove_red(id.vertex(q, t));
    }
  }
  return finish(game, area * steps);
}

// ------------------------------------------------------------ tiles

TileShape tile_shape_1d(std::int64_t red_limit, std::int64_t n,
                        std::int64_t steps) {
  // Peak red ≈ 2·(b + 2h); with h = b/2 that is 4b. Keep slack for the
  // freshly computed row before evictions.
  TileShape s;
  s.block = std::max<std::int64_t>(2, (red_limit - 6) / 4);
  s.block = std::min(s.block, n);
  s.height = std::clamp<std::int64_t>(s.block / 2, 1, steps);
  return s;
}

TileShape tile_shape_2d(std::int64_t red_limit, std::int64_t nx,
                        std::int64_t steps) {
  // Peak red ≈ 2·(b+2h)²; with h = side/4 the side b+2h = √(S/2).
  TileShape s;
  const auto side = static_cast<std::int64_t>(
      std::floor(std::sqrt(static_cast<double>(red_limit - 8) / 2.0)));
  const std::int64_t h = std::max<std::int64_t>(1, side / 4);
  s.block = std::max<std::int64_t>(1, side - 2 * h);
  s.block = std::min(s.block, nx);
  s.height = std::clamp<std::int64_t>(h, 1, steps);
  return s;
}

ScheduleResult run_tiled_1d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit) {
  LATTICE_REQUIRE(red_limit >= 14, "1-D tiling needs S >= 14");
  const TileShape shape = tile_shape_1d(red_limit, n, steps);
  return run_tiled_1d_shaped(n, steps, red_limit, shape.block, shape.height);
}

ScheduleResult run_tiled_1d_shaped(std::int64_t n, std::int64_t steps,
                                   std::int64_t red_limit,
                                   std::int64_t block,
                                   std::int64_t height) {
  LATTICE_REQUIRE(n >= 2 && steps >= 1, "need n >= 2, steps >= 1");
  LATTICE_REQUIRE(block >= 1 && height >= 1, "tile shape must be positive");
  const LatticeBox box{{n}};
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  RedBlueGame game(dag, red_limit);

  const std::int64_t b = std::min(block, n);

  for (std::int64_t t0 = 0; t0 < steps;) {
    const std::int64_t h = std::min<std::int64_t>(height, steps - t0);
    for (std::int64_t k0 = 0; k0 < n; k0 += b) {
      const std::int64_t k1 = std::min(k0 + b, n);  // output core [k0, k1)
      const std::int64_t in_lo = std::max<std::int64_t>(0, k0 - h);
      const std::int64_t in_hi = std::min(n, k1 + h);

      // Valid trapezoid range at slab layer s: interior cuts shrink by
      // one per layer; lattice edges do not (truncated neighborhoods
      // keep edge cells computable).
      const auto vlo = [&](std::int64_t s) {
        return std::max<std::int64_t>(0, k0 - h + s);
      };
      const auto vhi = [&](std::int64_t s) {
        return std::min<std::int64_t>(n, k1 + h - s);
      };
      LATTICE_ASSERT(vlo(0) == in_lo && vhi(0) == in_hi,
                     "trapezoid base mismatch");

      // Read the input span of the slab base layer.
      for (std::int64_t i = in_lo; i < in_hi; ++i)
        game.read(id.vertex(i, t0));

      // March the shrinking trapezoid upward, two layers live at once.
      for (std::int64_t s = 0; s < h; ++s) {
        for (std::int64_t i = vlo(s + 1); i < vhi(s + 1); ++i)
          game.compute(id.vertex(i, t0 + s + 1));
        for (std::int64_t i = vlo(s); i < vhi(s); ++i)
          game.remove_red(id.vertex(i, t0 + s));
      }

      // Write back the core of the top layer, then clear the chip.
      for (std::int64_t i = k0; i < k1; ++i)
        game.write(id.vertex(i, t0 + h));
      for (std::int64_t i = vlo(h); i < vhi(h); ++i)
        game.remove_red(id.vertex(i, t0 + h));
    }
    t0 += h;
  }
  return finish(game, n * steps);
}

ScheduleResult run_tiled_2d(std::int64_t nx, std::int64_t ny,
                            std::int64_t steps, std::int64_t red_limit) {
  LATTICE_REQUIRE(nx >= 2 && ny >= 2 && steps >= 1,
                  "need nx, ny >= 2 and steps >= 1");
  LATTICE_REQUIRE(red_limit >= 60, "2-D tiling needs S >= 60");
  const LatticeBox box{{nx, ny}};
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  RedBlueGame game(dag, red_limit);

  const TileShape shape = tile_shape_2d(red_limit, nx, steps);
  const std::int64_t b = shape.block;

  const auto cell = [&](std::int64_t x, std::int64_t y) {
    return x * ny + y;  // box index order: extent {nx, ny}
  };

  for (std::int64_t t0 = 0; t0 < steps;) {
    const std::int64_t h = std::min<std::int64_t>(shape.height, steps - t0);
    for (std::int64_t kx = 0; kx < nx; kx += b) {
      for (std::int64_t ky = 0; ky < ny; ky += b) {
        const std::int64_t x1 = std::min(kx + b, nx);
        const std::int64_t y1 = std::min(ky + b, ny);

        // Valid pyramid rectangle at slab layer s per axis: interior
        // cuts shrink one per layer; lattice edges stay put.
        const auto vlx = [&](std::int64_t s) {
          return std::max<std::int64_t>(0, kx - h + s);
        };
        const auto vhx = [&](std::int64_t s) {
          return std::min<std::int64_t>(nx, x1 + h - s);
        };
        const auto vly = [&](std::int64_t s) {
          return std::max<std::int64_t>(0, ky - h + s);
        };
        const auto vhy = [&](std::int64_t s) {
          return std::min<std::int64_t>(ny, y1 + h - s);
        };

        for (std::int64_t x = vlx(0); x < vhx(0); ++x)
          for (std::int64_t y = vly(0); y < vhy(0); ++y)
            game.read(id.vertex(cell(x, y), t0));

        for (std::int64_t s = 0; s < h; ++s) {
          for (std::int64_t x = vlx(s + 1); x < vhx(s + 1); ++x)
            for (std::int64_t y = vly(s + 1); y < vhy(s + 1); ++y)
              game.compute(id.vertex(cell(x, y), t0 + s + 1));
          for (std::int64_t x = vlx(s); x < vhx(s); ++x)
            for (std::int64_t y = vly(s); y < vhy(s); ++y)
              game.remove_red(id.vertex(cell(x, y), t0 + s));
        }

        for (std::int64_t x = kx; x < x1; ++x)
          for (std::int64_t y = ky; y < y1; ++y)
            game.write(id.vertex(cell(x, y), t0 + h));
        for (std::int64_t x = vlx(h); x < vhx(h); ++x)
          for (std::int64_t y = vly(h); y < vhy(h); ++y)
            game.remove_red(id.vertex(cell(x, y), t0 + h));
      }
    }
    t0 += h;
  }
  return finish(game, nx * ny * steps);
}

BlockScheduleResult run_block_sweep_1d(std::int64_t n, std::int64_t steps,
                                       std::int64_t red_limit,
                                       std::int64_t block_size) {
  LATTICE_REQUIRE(n >= 2 && steps >= 1, "need n >= 2, steps >= 1");
  LATTICE_REQUIRE(block_size >= 1, "block size must be >= 1");
  LATTICE_REQUIRE(red_limit >= 2 * block_size + 6,
                  "need S >= two blocks plus the sweep window");
  const LatticeBox box{{n}};
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  BlockRedBlueGame game(dag, red_limit, block_size);

  // Sweep one layer at a time; transfers move `block_size` consecutive
  // cells per I/O operation, so the window holds a whole block plus
  // the trailing neighborhood.
  for (std::int64_t t = 0; t < steps; ++t) {
    std::vector<Vertex> pending_writes;
    for (std::int64_t base = 0; base < n; base += block_size) {
      const std::int64_t hi = std::min(n, base + block_size);
      std::vector<Vertex> block;
      for (std::int64_t i = base; i < hi; ++i) {
        block.push_back(id.vertex(i, t));
      }
      game.read_block(block);
      // Compute every new-layer cell whose full neighborhood is now red:
      // up to (hi - 2), or everything when the row is complete.
      const std::int64_t limit = hi == n ? n : hi - 1;
      for (std::int64_t i = base == 0 ? 0 : base - 1; i < limit; ++i) {
        const Vertex v = id.vertex(i, t + 1);
        game.compute(v);
        pending_writes.push_back(v);
        if (static_cast<std::int64_t>(pending_writes.size()) ==
            block_size) {
          game.write_block(pending_writes);
          for (const Vertex w : pending_writes) game.remove_red(w);
          pending_writes.clear();
        }
      }
      // Retire layer-t cells no longer needed. The next block's first
      // compute (at hi-1) still needs cells hi-2 and hi-1, so keep the
      // trailing two; on the final block retire everything.
      const std::int64_t retire_lo = std::max<std::int64_t>(0, base - 2);
      const std::int64_t retire_hi = hi == n ? n : hi - 2;
      for (std::int64_t i = retire_lo; i < retire_hi; ++i) {
        game.remove_red(id.vertex(i, t));
      }
    }
    if (!pending_writes.empty()) {
      game.write_block(pending_writes);
      for (const Vertex w : pending_writes) game.remove_red(w);
    }
  }

  LATTICE_ASSERT(game.complete(), "block sweep did not complete");
  BlockScheduleResult r;
  r.block_ios = game.block_ios();
  r.word_ios = game.word_ios();
  r.useful_updates = n * steps;
  return r;
}

// ------------------------------------------------------ parallel game

ParallelScheduleResult run_parallel_layer_sweep(const LatticeBox& box,
                                                std::int64_t steps,
                                                std::int64_t red_limit) {
  LATTICE_REQUIRE(steps >= 1, "need steps >= 1");
  const std::int64_t points = box.points();
  LATTICE_REQUIRE(red_limit >= 2 * points,
                  "parallel layer sweep needs S >= two full layers");
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  ParallelRedBlueGame game(dag, red_limit);

  auto layer = [&](std::int64_t t) {
    std::vector<Vertex> v;
    v.reserve(static_cast<std::size_t>(points));
    for (std::int64_t c = 0; c < points; ++c) v.push_back(id.vertex(c, t));
    return v;
  };

  // Read phase: pull the whole input layer on chip.
  game.step({}, {}, layer(0), {});
  // One calculate phase per generation: every site of layer t+1 fans
  // out from the (pre-phase red) layer t, then layer t retires.
  for (std::int64_t t = 0; t < steps; ++t) {
    game.step({}, layer(t + 1), {}, layer(t));
  }
  // Write phase: commit the output layer.
  game.step(layer(steps), {}, {}, {});

  LATTICE_ASSERT(game.complete(), "parallel sweep did not complete");
  ParallelScheduleResult r;
  r.io_moves = game.io_moves();
  r.phases = game.phases();
  r.division_size = game.io_division_size();
  r.useful_updates = points * steps;
  r.peak_red = game.peak_red();
  return r;
}

// -------------------------------------------------------------- d = 3

ScheduleResult run_sweep_3d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit) {
  LATTICE_REQUIRE(n >= 2 && steps >= 1, "need n >= 2, steps >= 1");
  const std::int64_t plane = n * n;
  LATTICE_REQUIRE(red_limit >= 2 * plane + 7,
                  "3-D sweep needs S >= two stream planes (2·n² + 7)");
  const LatticeBox box{{n, n, n}};
  const std::int64_t volume = box.points();
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  RedBlueGame game(dag, red_limit);

  // Box index order has the last coordinate fastest; "planes" of size
  // n² stream consecutively, so the window spans two planes.
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t p = 0; p < volume + plane; ++p) {
      if (p < volume) game.read(id.vertex(p, t));
      const std::int64_t q = p - plane;
      if (q >= 0) {
        const Vertex v = id.vertex(q, t + 1);
        game.compute(v);
        game.write(v);
        game.remove_red(v);
        if (q - plane >= 0) game.remove_red(id.vertex(q - plane, t));
      }
    }
    for (std::int64_t q = volume - plane; q < volume; ++q) {
      game.remove_red(id.vertex(q, t));
    }
  }
  return finish(game, volume * steps);
}

TileShape tile_shape_3d(std::int64_t red_limit, std::int64_t n,
                        std::int64_t steps) {
  // Peak red ≈ 2·(b+2h)³; with h = side/4 the side b+2h = (S/2)^(1/3).
  TileShape s;
  const auto side = static_cast<std::int64_t>(
      std::floor(std::cbrt(static_cast<double>(red_limit - 10) / 2.0)));
  const std::int64_t h = std::max<std::int64_t>(1, side / 4);
  s.block = std::max<std::int64_t>(1, side - 2 * h);
  s.block = std::min(s.block, n);
  s.height = std::clamp<std::int64_t>(h, 1, steps);
  return s;
}

ScheduleResult run_tiled_3d(std::int64_t n, std::int64_t steps,
                            std::int64_t red_limit) {
  LATTICE_REQUIRE(n >= 2 && steps >= 1, "need n >= 2, steps >= 1");
  LATTICE_REQUIRE(red_limit >= 300, "3-D tiling needs S >= 300");
  const LatticeBox box{{n, n, n}};
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  RedBlueGame game(dag, red_limit);

  const TileShape shape = tile_shape_3d(red_limit, n, steps);
  const std::int64_t b = shape.block;

  const auto cell = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
    return (x * n + y) * n + z;
  };

  for (std::int64_t t0 = 0; t0 < steps;) {
    const std::int64_t h = std::min<std::int64_t>(shape.height, steps - t0);
    for (std::int64_t kx = 0; kx < n; kx += b) {
      for (std::int64_t ky = 0; ky < n; ky += b) {
        for (std::int64_t kz = 0; kz < n; kz += b) {
          const std::int64_t x1 = std::min(kx + b, n);
          const std::int64_t y1 = std::min(ky + b, n);
          const std::int64_t z1 = std::min(kz + b, n);
          // Valid shrinking box per axis at slab layer s.
          const auto lo = [&](std::int64_t k0, std::int64_t s) {
            return std::max<std::int64_t>(0, k0 - h + s);
          };
          const auto hi = [&](std::int64_t k1, std::int64_t s) {
            return std::min<std::int64_t>(n, k1 + h - s);
          };

          for (std::int64_t x = lo(kx, 0); x < hi(x1, 0); ++x)
            for (std::int64_t y = lo(ky, 0); y < hi(y1, 0); ++y)
              for (std::int64_t z = lo(kz, 0); z < hi(z1, 0); ++z)
                game.read(id.vertex(cell(x, y, z), t0));

          for (std::int64_t s = 0; s < h; ++s) {
            for (std::int64_t x = lo(kx, s + 1); x < hi(x1, s + 1); ++x)
              for (std::int64_t y = lo(ky, s + 1); y < hi(y1, s + 1); ++y)
                for (std::int64_t z = lo(kz, s + 1); z < hi(z1, s + 1); ++z)
                  game.compute(id.vertex(cell(x, y, z), t0 + s + 1));
            for (std::int64_t x = lo(kx, s); x < hi(x1, s); ++x)
              for (std::int64_t y = lo(ky, s); y < hi(y1, s); ++y)
                for (std::int64_t z = lo(kz, s); z < hi(z1, s); ++z)
                  game.remove_red(id.vertex(cell(x, y, z), t0 + s));
          }

          for (std::int64_t x = kx; x < x1; ++x)
            for (std::int64_t y = ky; y < y1; ++y)
              for (std::int64_t z = kz; z < z1; ++z)
                game.write(id.vertex(cell(x, y, z), t0 + h));
          for (std::int64_t x = lo(kx, h); x < hi(x1, h); ++x)
            for (std::int64_t y = lo(ky, h); y < hi(y1, h); ++y)
              for (std::int64_t z = lo(kz, h); z < hi(z1, h); ++z)
                game.remove_red(id.vertex(cell(x, y, z), t0 + h));
        }
      }
    }
    t0 += h;
  }
  return finish(game, n * n * n * steps);
}

}  // namespace lattice::pebble
