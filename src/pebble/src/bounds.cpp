#include "lattice/pebble/bounds.hpp"

#include <cmath>

namespace lattice::pebble {

double factorial(int d) {
  LATTICE_REQUIRE(d >= 0 && d <= 20, "factorial: d out of range");
  double f = 1;
  for (int i = 2; i <= d; ++i) f *= i;
  return f;
}

double line_spread_lower(int d, double j) {
  LATTICE_REQUIRE(d >= 1, "dimension must be >= 1");
  return std::pow(j, d) / factorial(d);
}

double tau_upper(int d, double storage) {
  LATTICE_REQUIRE(d >= 1 && storage > 0, "need d >= 1, S > 0");
  return 2.0 * std::pow(factorial(d) * 2.0 * storage, 1.0 / d);
}

double min_io_lower_bound(int d, double storage, double vertices) {
  LATTICE_REQUIRE(storage > 0 && vertices > 0, "need S, |X| > 0");
  const double g = vertices / (2.0 * storage * tau_upper(d, storage));
  const double q = storage * (g - 1.0);
  return q > 0 ? q : 0.0;
}

double updates_per_io_upper(int d, double storage) {
  return 2.0 * tau_upper(d, storage);
}

double update_rate_upper(int d, double storage, double bw_sites_per_sec) {
  LATTICE_REQUIRE(bw_sites_per_sec > 0, "bandwidth must be positive");
  return bw_sites_per_sec * updates_per_io_upper(d, storage);
}

}  // namespace lattice::pebble
