#include "lattice/pebble/comp_graph.hpp"

#include <deque>

namespace lattice::pebble {

std::int64_t LatticeBox::index(const std::vector<std::int64_t>& x) const {
  LATTICE_ASSERT(x.size() == extent.size(), "coordinate dimension mismatch");
  std::int64_t idx = 0;
  for (std::size_t i = 0; i < extent.size(); ++i) {
    LATTICE_ASSERT(x[i] >= 0 && x[i] < extent[i], "coordinate out of box");
    idx = idx * extent[i] + x[i];
  }
  return idx;
}

std::vector<std::int64_t> LatticeBox::coords(std::int64_t idx) const {
  std::vector<std::int64_t> x(extent.size());
  for (std::size_t i = extent.size(); i-- > 0;) {
    x[i] = idx % extent[i];
    idx /= extent[i];
  }
  return x;
}

std::vector<std::int64_t> lattice_neighbors(const LatticeBox& box,
                                            std::int64_t cell) {
  std::vector<std::int64_t> out;
  const auto x = box.coords(cell);
  auto y = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (const std::int64_t d : {std::int64_t{-1}, std::int64_t{1}}) {
      const std::int64_t v = x[i] + d;
      if (v >= 0 && v < box.extent[i]) {
        y[i] = v;
        out.push_back(box.index(y));
      }
    }
    y[i] = x[i];
  }
  return out;
}

Dag computation_graph(const LatticeBox& box, std::int64_t steps) {
  LATTICE_REQUIRE(box.dim() >= 1, "computation graph needs dimension >= 1");
  for (const std::int64_t e : box.extent)
    LATTICE_REQUIRE(e >= 1, "box extents must be positive");
  LATTICE_REQUIRE(steps >= 0, "steps must be non-negative");

  const std::int64_t p = box.points();
  Dag dag((steps + 1) * p);
  const LayeredId id{box, steps + 1};
  for (std::int64_t t = 0; t < steps; ++t) {
    for (std::int64_t c = 0; c < p; ++c) {
      dag.add_edge(id.vertex(c, t), id.vertex(c, t + 1));  // self
      for (const std::int64_t n : lattice_neighbors(box, c)) {
        dag.add_edge(id.vertex(n, t), id.vertex(c, t + 1));
      }
    }
  }
  return dag;
}

std::int64_t simplex_points(int dim, std::int64_t j) {
  LATTICE_REQUIRE(dim >= 1, "dimension must be >= 1");
  if (j < 0) return 0;
  // C(j+dim, dim) computed without overflow for the ranges we use.
  std::int64_t num = 1;
  for (int i = 1; i <= dim; ++i) {
    num = num * (j + i) / i;  // exact: product of i consecutive ints / i!
  }
  return num;
}

std::int64_t cells_within(const LatticeBox& box, std::int64_t cell,
                          std::int64_t j) {
  std::vector<std::int64_t> dist(static_cast<std::size_t>(box.points()), -1);
  std::deque<std::int64_t> queue;
  dist[static_cast<std::size_t>(cell)] = 0;
  queue.push_back(cell);
  std::int64_t count = 0;
  while (!queue.empty()) {
    const std::int64_t c = queue.front();
    queue.pop_front();
    const std::int64_t d = dist[static_cast<std::size_t>(c)];
    if (d > j) break;
    ++count;
    for (const std::int64_t n : lattice_neighbors(box, c)) {
      if (dist[static_cast<std::size_t>(n)] < 0) {
        dist[static_cast<std::size_t>(n)] = d + 1;
        queue.push_back(n);
      }
    }
  }
  return count;
}

}  // namespace lattice::pebble
