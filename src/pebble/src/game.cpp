#include "lattice/pebble/game.hpp"

#include <string>

namespace lattice::pebble {

namespace {
std::string at(Vertex v) { return " at vertex " + std::to_string(v); }
}  // namespace

RedBlueGame::RedBlueGame(const Dag& dag, std::int64_t red_limit)
    : dag_(&dag),
      red_limit_(red_limit),
      red_(static_cast<std::size_t>(dag.size()), false),
      blue_(static_cast<std::size_t>(dag.size()), false) {
  LATTICE_REQUIRE(red_limit >= 1, "need at least one red pebble");
  for (Vertex v = 0; v < dag.size(); ++v) {
    if (dag.is_input(v)) blue_[static_cast<std::size_t>(v)] = true;
  }
}

void RedBlueGame::place_red(Vertex v) {
  if (!red_[static_cast<std::size_t>(v)]) {
    LATTICE_REQUIRE(red_count_ < red_limit_,
                    "red pebble limit S exceeded" + at(v));
    red_[static_cast<std::size_t>(v)] = true;
    ++red_count_;
    if (red_count_ > peak_red_) peak_red_ = red_count_;
  }
}

void RedBlueGame::remove_red(Vertex v) {
  LATTICE_REQUIRE(dag_->valid(v) && red_[static_cast<std::size_t>(v)],
                  "remove_red: no red pebble" + at(v));
  red_[static_cast<std::size_t>(v)] = false;
  --red_count_;
}

void RedBlueGame::remove_blue(Vertex v) {
  LATTICE_REQUIRE(dag_->valid(v) && blue_[static_cast<std::size_t>(v)],
                  "remove_blue: no blue pebble" + at(v));
  blue_[static_cast<std::size_t>(v)] = false;
}

void RedBlueGame::read(Vertex v) {
  LATTICE_REQUIRE(dag_->valid(v) && blue_[static_cast<std::size_t>(v)],
                  "read (rule 2) requires a blue pebble" + at(v));
  place_red(v);
  ++io_moves_;
}

void RedBlueGame::write(Vertex v) {
  LATTICE_REQUIRE(dag_->valid(v) && red_[static_cast<std::size_t>(v)],
                  "write (rule 3) requires a red pebble" + at(v));
  blue_[static_cast<std::size_t>(v)] = true;
  ++io_moves_;
}

void RedBlueGame::compute(Vertex v) {
  LATTICE_REQUIRE(dag_->valid(v), "compute: bad vertex" + at(v));
  LATTICE_REQUIRE(!dag_->is_input(v),
                  "compute (rule 4) cannot derive an input" + at(v));
  for (const Vertex u : dag_->preds(v)) {
    LATTICE_REQUIRE(red_[static_cast<std::size_t>(u)],
                    "compute (rule 4) requires all predecessors red" + at(v));
  }
  place_red(v);
  ++computes_;
}

bool RedBlueGame::complete() const {
  for (Vertex v = 0; v < dag_->size(); ++v) {
    if (dag_->is_output(v) && !blue_[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

// --------------------------------------------------------------------

BlockRedBlueGame::BlockRedBlueGame(const Dag& dag, std::int64_t red_limit,
                                   std::int64_t block_size)
    : inner_(dag, red_limit), block_size_(block_size) {
  LATTICE_REQUIRE(block_size >= 1, "block size must be >= 1");
}

void BlockRedBlueGame::read_block(const std::vector<Vertex>& vs) {
  LATTICE_REQUIRE(!vs.empty() &&
                      static_cast<std::int64_t>(vs.size()) <= block_size_,
                  "block read must move 1..block_size values");
  for (const Vertex v : vs) inner_.read(v);
  ++block_ios_;
}

void BlockRedBlueGame::write_block(const std::vector<Vertex>& vs) {
  LATTICE_REQUIRE(!vs.empty() &&
                      static_cast<std::int64_t>(vs.size()) <= block_size_,
                  "block write must move 1..block_size values");
  for (const Vertex v : vs) inner_.write(v);
  ++block_ios_;
}

// --------------------------------------------------------------------

ParallelRedBlueGame::ParallelRedBlueGame(const Dag& dag,
                                         std::int64_t red_limit)
    : dag_(&dag),
      red_limit_(red_limit),
      red_(static_cast<std::size_t>(dag.size()), false),
      blue_(static_cast<std::size_t>(dag.size()), false) {
  LATTICE_REQUIRE(red_limit >= 1, "need at least one red pebble");
  for (Vertex v = 0; v < dag.size(); ++v) {
    if (dag.is_input(v)) blue_[static_cast<std::size_t>(v)] = true;
  }
}

void ParallelRedBlueGame::step(const std::vector<Vertex>& writes,
                               const std::vector<Vertex>& calcs,
                               const std::vector<Vertex>& reads,
                               const std::vector<Vertex>& evictions) {
  // Write phase: rule 3 against the pre-phase red configuration.
  for (const Vertex v : writes) {
    LATTICE_REQUIRE(dag_->valid(v) && red_[static_cast<std::size_t>(v)],
                    "parallel write requires a red pebble" + at(v));
    blue_[static_cast<std::size_t>(v)] = true;
    ++io_moves_;
  }

  // Calculate phase: all supports must be red *before* the phase —
  // that is exactly what the pink place-holder buys. Mark new values
  // pink, then promote together.
  std::vector<Vertex> pink;
  pink.reserve(calcs.size());
  for (const Vertex v : calcs) {
    LATTICE_REQUIRE(dag_->valid(v), "parallel compute: bad vertex" + at(v));
    LATTICE_REQUIRE(!dag_->is_input(v),
                    "parallel compute cannot derive an input" + at(v));
    for (const Vertex u : dag_->preds(v)) {
      LATTICE_REQUIRE(red_[static_cast<std::size_t>(u)],
                      "parallel compute requires supports red" + at(v));
    }
    pink.push_back(v);
    ++computes_;
  }
  for (const Vertex v : pink) {
    if (!red_[static_cast<std::size_t>(v)]) {
      red_[static_cast<std::size_t>(v)] = true;
      ++red_count_;
    }
  }

  // Read phase: rule 2.
  for (const Vertex v : reads) {
    LATTICE_REQUIRE(dag_->valid(v) && blue_[static_cast<std::size_t>(v)],
                    "parallel read requires a blue pebble" + at(v));
    if (!red_[static_cast<std::size_t>(v)]) {
      red_[static_cast<std::size_t>(v)] = true;
      ++red_count_;
    }
    ++io_moves_;
  }

  if (red_count_ > peak_red_) peak_red_ = red_count_;

  // Evictions (rule 1), then enforce the storage bound at phase end.
  for (const Vertex v : evictions) {
    LATTICE_REQUIRE(dag_->valid(v) && red_[static_cast<std::size_t>(v)],
                    "eviction requires a red pebble" + at(v));
    red_[static_cast<std::size_t>(v)] = false;
    --red_count_;
  }
  LATTICE_REQUIRE(red_count_ <= red_limit_,
                  "red pebble limit S exceeded at end of phase");
  ++phases_;
}

bool ParallelRedBlueGame::complete() const {
  for (Vertex v = 0; v < dag_->size(); ++v) {
    if (dag_->is_output(v) && !blue_[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

std::int64_t ParallelRedBlueGame::io_division_size() const {
  // Pack the q I/O moves into consecutive blocks of exactly S (§7,
  // definition of an S-I/O-division): h = ⌈q / S⌉, at least 1.
  if (io_moves_ == 0) return 1;
  return (io_moves_ + red_limit_ - 1) / red_limit_;
}

}  // namespace lattice::pebble
