#include "lattice/obs/json.hpp"

#include "lattice/obs/metrics.hpp"

namespace lattice::obs {

void metrics_to_json(const MetricsSnapshot& snap, JsonWriter& w) {
  w.begin_object();

  w.key("counters").begin_object();
  for (const CounterValue& c : snap.counters) {
    w.key(c.name).value(c.value);
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const GaugeValue& g : snap.gauges) {
    w.key(g.name).value(g.value);
  }
  w.end_object();

  w.key("histograms").begin_array();
  for (const HistogramStats& h : snap.histograms) {
    if (h.count == 0) continue;  // never recorded: noise, not signal
    w.begin_object();
    w.field("name", h.name);
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("mean", h.mean());
    w.field("p50", h.quantile_ceiling(0.5));
    w.field("p99", h.quantile_ceiling(0.99));
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

}  // namespace lattice::obs
