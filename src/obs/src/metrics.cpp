#include "lattice/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <thread>

namespace lattice::obs {

namespace {

/// Bucket for a recorded value: 0 collects v <= 0, bucket b in
/// [1, 62] collects [2^(b-1), 2^b), the last bucket collects the rest.
int bucket_of(std::int64_t v) noexcept {
  if (v <= 0) return 0;
  const int b = std::bit_width(static_cast<std::uint64_t>(v));
  return std::min(b, HistogramStats::kBuckets - 1);
}

std::uint64_t next_registry_serial() noexcept {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::Id register_name(std::vector<std::string>& names,
                                  std::string_view name, int capacity) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<MetricsRegistry::Id>(i);
  }
  if (names.size() >= static_cast<std::size_t>(capacity)) {
    return MetricsRegistry::kInvalidId;
  }
  names.emplace_back(name);
  return static_cast<MetricsRegistry::Id>(names.size() - 1);
}

}  // namespace

std::int64_t HistogramStats::quantile_ceiling(double p) const noexcept {
  if (count <= 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::int64_t>(
      p * static_cast<double>(count - 1));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen > target) {
      return b + 1 < kBuckets ? bucket_floor(b + 1) : max;
    }
  }
  return max;
}

std::int64_t MetricsSnapshot::counter_or(std::string_view name,
                                         std::int64_t fallback) const noexcept {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

std::int64_t MetricsSnapshot::gauge_or(std::string_view name,
                                       std::int64_t fallback) const noexcept {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

const HistogramStats* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const HistogramStats& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

/// Per-thread counter slots. Fixed-size so concurrent relaxed writers
/// never race a reallocation; owned by the registry so a snapshot can
/// outlive the writing thread.
struct MetricsRegistry::Shard {
  std::thread::id owner;
  std::array<std::atomic<std::int64_t>, kMaxCounters> v{};
};

/// One histogram's live accumulation state (all relaxed atomics).
struct MetricsRegistry::Histo {
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> min{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max{std::numeric_limits<std::int64_t>::min()};
  std::array<std::atomic<std::int64_t>, kBuckets> buckets{};

  void record(std::int64_t value) noexcept {
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(value, std::memory_order_relaxed);
    buckets[static_cast<std::size_t>(bucket_of(value))].fetch_add(
        1, std::memory_order_relaxed);
    std::int64_t cur = min.load(std::memory_order_relaxed);
    while (value < cur && !min.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
    cur = max.load(std::memory_order_relaxed);
    while (value > cur && !max.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  void reset() noexcept {
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    min.store(std::numeric_limits<std::int64_t>::max(),
              std::memory_order_relaxed);
    max.store(std::numeric_limits<std::int64_t>::min(),
              std::memory_order_relaxed);
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

namespace {

/// One-entry TLS cache: (registry serial -> shard). The serial guards
/// against a stale pointer when a registry at the same address dies
/// and another is born (tests construct local registries).
struct TlsShardRef {
  std::uint64_t serial = 0;
  void* shard = nullptr;
};
thread_local TlsShardRef tls_shard_ref;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : serial_(next_registry_serial()), hists_(new Histo[kMaxHistograms]) {
  counter_names_.reserve(kMaxCounters);
  gauge_names_.reserve(kMaxGauges);
  hist_names_.reserve(kMaxHistograms);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  return register_name(counter_names_, name, kMaxCounters);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  return register_name(gauge_names_, name, kMaxGauges);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  return register_name(hist_names_, name, kMaxHistograms);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() noexcept {
  if (tls_shard_ref.serial == serial_) {
    return *static_cast<Shard*>(tls_shard_ref.shard);
  }
  std::lock_guard<std::mutex> lk(mu_);
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& s : shards_) {
    if (s->owner == me) {
      tls_shard_ref = {serial_, s.get()};
      return *s;
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->owner = me;
  tls_shard_ref = {serial_, shards_.back().get()};
  return *shards_.back();
}

void MetricsRegistry::add(Id c, std::int64_t delta) noexcept {
  if (c < 0 || c >= kMaxCounters) return;
  local_shard().v[static_cast<std::size_t>(c)].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(Id g, std::int64_t v) noexcept {
  if (g < 0 || g >= kMaxGauges) return;
  gauges_[static_cast<std::size_t>(g)].store(v, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_add(Id g, std::int64_t delta) noexcept {
  if (g < 0 || g >= kMaxGauges) return;
  gauges_[static_cast<std::size_t>(g)].fetch_add(delta,
                                                 std::memory_order_relaxed);
}

void MetricsRegistry::record(Id h, std::int64_t v) noexcept {
  if (h < 0 || h >= kMaxHistograms) return;
  hists_[h].record(v);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);

  snap.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters[i].name = counter_names_[i];
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      total += s->v[i].load(std::memory_order_relaxed);
    }
    snap.counters[i].value = total;
  }

  snap.gauges.resize(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges[i].name = gauge_names_[i];
    snap.gauges[i].value = gauges_[i].load(std::memory_order_relaxed);
  }

  snap.histograms.resize(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    HistogramStats& out = snap.histograms[i];
    const Histo& h = hists_[i];
    out.name = hist_names_[i];
    out.count = h.count.load(std::memory_order_relaxed);
    out.sum = h.sum.load(std::memory_order_relaxed);
    out.min = out.count > 0 ? h.min.load(std::memory_order_relaxed) : 0;
    out.max = out.count > 0 ? h.max.load(std::memory_order_relaxed) : 0;
    for (int b = 0; b < kBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] =
          h.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  return snap;
}

void MetricsRegistry::reset() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : shards_) {
    for (auto& c : s->v) c.store(0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kMaxHistograms; ++i) hists_[i].reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: pool workers may still be flushing counters
  // while static destructors run, and a destroyed registry would leave
  // their cached shard pointers dangling.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace lattice::obs
