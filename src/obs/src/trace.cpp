#include "lattice/obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace lattice::obs {

namespace {

struct TraceEvent {
  const char* name;
  std::int64_t ts_ns;
  std::int64_t dur_ns;
};

/// Per-thread event sink. The owning thread appends; trace_to_json()
/// and clear_trace() read/clear under the same mutex, so the lock is
/// contended only while a dump is in progress. Buffers are never
/// destroyed (the store is intentionally leaked), so the thread-local
/// pointer below can never dangle — not even during process exit while
/// pool workers are still winding down.
struct TraceBuffer {
  static constexpr std::size_t kMaxEvents = 1u << 20;

  std::mutex mu;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::int64_t dropped = 0;

  void emit(const char* name, std::int64_t start_ns,
            std::int64_t end_ns) noexcept {
    std::lock_guard<std::mutex> lk(mu);
    if (events.size() >= kMaxEvents) {
      ++dropped;
      return;
    }
    events.push_back(TraceEvent{name, start_ns, end_ns - start_ns});
  }
};

struct TraceStore {
  std::atomic<bool> enabled{false};

  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::uint32_t next_tid = 0;

  static TraceStore& get() {
    static TraceStore* store = new TraceStore;  // leaked: see TraceBuffer
    return *store;
  }

  TraceBuffer& local_buffer() {
    thread_local TraceBuffer* tls_buffer = nullptr;
    if (tls_buffer != nullptr) return *tls_buffer;
    std::lock_guard<std::mutex> lk(mu);
    buffers.push_back(std::make_unique<TraceBuffer>());
    buffers.back()->tid = next_tid++;
    tls_buffer = buffers.back().get();
    return *tls_buffer;
  }
};

}  // namespace

void set_trace_enabled(bool enabled) noexcept {
  TraceStore::get().enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return TraceStore::get().enabled.load(std::memory_order_relaxed);
}

void clear_trace() noexcept {
  TraceStore& store = TraceStore::get();
  std::lock_guard<std::mutex> lk(store.mu);
  for (const auto& b : store.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->events.clear();
    b->dropped = 0;
  }
}

std::int64_t trace_event_count() {
  TraceStore& store = TraceStore::get();
  std::lock_guard<std::mutex> lk(store.mu);
  std::int64_t n = 0;
  for (const auto& b : store.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += static_cast<std::int64_t>(b->events.size());
  }
  return n;
}

std::int64_t trace_dropped_count() {
  TraceStore& store = TraceStore::get();
  std::lock_guard<std::mutex> lk(store.mu);
  std::int64_t n = 0;
  for (const auto& b : store.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += b->dropped;
  }
  return n;
}

void detail::trace_emit(const char* name, std::int64_t start_ns,
                        std::int64_t end_ns) noexcept {
  TraceStore::get().local_buffer().emit(name, start_ns, end_ns);
}

namespace {

// Span names are string literals at today's call sites, but the export
// must stay valid JSON no matter what a caller passes.
void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char tmp[8];
      std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
      out += tmp;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string trace_to_json() {
  TraceStore& store = TraceStore::get();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  char tmp[160];
  std::lock_guard<std::mutex> lk(store.mu);
  for (const auto& b : store.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    for (const TraceEvent& e : b->events) {
      if (!first) out += ", ";
      out += "{\"name\": ";
      append_json_string(out, e.name);
      std::snprintf(tmp, sizeof(tmp),
                    ", \"cat\": \"lattice\", "
                    "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 0, \"tid\": %u}",
                    static_cast<double>(e.ts_ns) / 1e3,
                    static_cast<double>(e.dur_ns) / 1e3, b->tid);
      out += tmp;
      first = false;
    }
  }
  out += "]}";
  return out;
}

bool write_trace(const std::string& path) {
  const std::string doc = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = n == doc.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace lattice::obs
