// Scoped trace spans with a Chrome-trace JSON export.
//
// A TraceSpan marks one timed scope (an engine pass, a checkpoint, a
// thread-pool job). When tracing is enabled the span's begin/duration
// is appended to a per-thread buffer; trace_to_json() merges every
// buffer into the Trace Event Format that chrome://tracing, Perfetto
// (ui.perfetto.dev), and speedscope all open directly.
//
// Cost model, in order of importance:
//   * tracing disabled (the default): one relaxed atomic load per
//     span — no clock read, no allocation, nothing stored;
//   * LATTICE_OBS_ENABLED=0 builds: spans compile to nothing at all;
//   * tracing enabled: two clock reads plus one buffered append under
//     an uncontended per-thread mutex (the mutex is only ever
//     contended by a concurrent trace_to_json()).
//
// Span names must be string literals (or otherwise outlive the trace
// session): buffers store the pointer, not a copy.

#pragma once

#include <cstdint>
#include <string>

#include "lattice/obs/metrics.hpp"

namespace lattice::obs {

/// Runtime switch for span collection (process-global, default off).
void set_trace_enabled(bool enabled) noexcept;
bool trace_enabled() noexcept;

/// Discard all buffered events (keeps the enabled flag as-is).
void clear_trace() noexcept;

/// Buffered events across all threads (drops excluded).
std::int64_t trace_event_count();

/// Events discarded because a thread hit its buffer cap.
std::int64_t trace_dropped_count();

/// Serialize every buffered event as a Chrome Trace Event Format
/// document: {"traceEvents": [{"name", "ph": "X", "ts", "dur", ...}]}.
/// Timestamps are microseconds (fractional) on the steady clock.
std::string trace_to_json();

/// trace_to_json() straight to a file; false on I/O failure.
bool write_trace(const std::string& path);

namespace detail {
void trace_emit(const char* name, std::int64_t start_ns,
                std::int64_t end_ns) noexcept;
}  // namespace detail

/// RAII span: times its scope into the trace buffer when tracing is
/// enabled, and is a near-free no-op (one relaxed load) when not.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept : name_(name) {
    if constexpr (kEnabled) {
      if (trace_enabled()) start_ns_ = now_ns();
    }
  }

  ~TraceSpan() {
    if constexpr (kEnabled) {
      if (start_ns_ >= 0) detail::trace_emit(name_, start_ns_, now_ns());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  [[maybe_unused]] const char* name_;
  std::int64_t start_ns_ = -1;
};

}  // namespace lattice::obs
