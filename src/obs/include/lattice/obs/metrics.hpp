// Low-overhead metrics: named monotonic counters, gauges, and
// log-bucketed histograms behind one process-wide registry.
//
// The simulators are measurement instruments — the paper's whole
// argument is carried by counted ticks and timed stages — so the
// instrumentation layer must never perturb what it measures:
//
//   * Counters are sharded per thread. add() is one relaxed fetch_add
//     on a cache line no other running thread touches; shards are
//     merged only when snapshot() is called.
//   * Histograms bucket values by bit width (bucket b holds
//     [2^(b-1), 2^b)), so record() is a handful of relaxed atomic adds
//     — no locks, no allocation, safe from any thread.
//   * Registration (name -> id) is the only locking path. Hot code
//     resolves ids once (constructor, function-local static) and then
//     only ever touches atomics.
//   * The whole layer compiles to nothing when LATTICE_OBS_ENABLED is
//     0 (CMake -DLATTICE_OBS=OFF): every helper below is gated on
//     `if constexpr (kEnabled)`, so call sites need no #ifdefs.
//
// The registry is process-global (MetricsRegistry::global()), like the
// thread pool it instruments: metrics from every engine in the process
// merge into one namespace. Tests and tools that need a clean slate
// call reset(). Metric names in use are cataloged in
// docs/OBSERVABILITY.md.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef LATTICE_OBS_ENABLED
#define LATTICE_OBS_ENABLED 1
#endif

namespace lattice::obs {

/// Compile-time master switch: with LATTICE_OBS_ENABLED=0 every
/// instrumentation helper in this header is an empty inline function.
inline constexpr bool kEnabled = LATTICE_OBS_ENABLED != 0;

/// Monotonic nanosecond clock used by every timer and span.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CounterValue {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

/// A merged histogram: exact count/sum/min/max plus power-of-two
/// buckets. Values are unitless int64 (the engine records nanoseconds).
struct HistogramStats {
  static constexpr int kBuckets = 64;

  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // 0 when count == 0
  std::int64_t max = 0;
  std::array<std::int64_t, kBuckets> buckets{};

  double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  /// Smallest value bucket b can hold (b == 0 collects v <= 0).
  static std::int64_t bucket_floor(int b) noexcept {
    return b <= 0 ? 0 : std::int64_t{1} << (b - 1);
  }

  /// Upper-bound estimate of the p-quantile (p in [0, 1]): the
  /// exclusive ceiling of the bucket where the quantile falls.
  std::int64_t quantile_ceiling(double p) const noexcept;
};

/// Everything the registry knew at one merge point.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramStats> histograms;

  std::int64_t counter_or(std::string_view name,
                          std::int64_t fallback = 0) const noexcept;
  std::int64_t gauge_or(std::string_view name,
                        std::int64_t fallback = 0) const noexcept;
  const HistogramStats* find_histogram(std::string_view name) const noexcept;
};

/// Named counters/gauges/histograms with thread-local counter shards.
/// All mutation entry points are noexcept and lock-free; registration
/// and snapshot take a mutex.
class MetricsRegistry {
 public:
  using Id = std::int32_t;
  static constexpr Id kInvalidId = -1;

  /// Fixed capacity keeps the per-thread shard a flat array that never
  /// reallocates (reallocation would race with relaxed writers).
  static constexpr int kMaxCounters = 224;
  static constexpr int kMaxGauges = 32;
  static constexpr int kMaxHistograms = 96;
  static constexpr int kBuckets = HistogramStats::kBuckets;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric. Idempotent; returns kInvalidId
  /// when the fixed capacity is exhausted (mutation on an invalid id is
  /// a no-op through the free helpers below).
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id histogram(std::string_view name);

  void add(Id c, std::int64_t delta) noexcept;
  void gauge_set(Id g, std::int64_t v) noexcept;
  void gauge_add(Id g, std::int64_t delta) noexcept;
  void record(Id h, std::int64_t v) noexcept;

  /// Merge every thread's shard and return the current totals.
  MetricsSnapshot snapshot() const;

  /// Zero all counters, gauges, and histograms (names and ids are
  /// kept). Concurrent mutation during reset is not torn, merely
  /// attributed before or after it.
  void reset() noexcept;

  /// The process-wide registry every built-in metric lives in.
  static MetricsRegistry& global();

 private:
  struct Shard;
  struct Histo;

  Shard& local_shard() noexcept;

  const std::uint64_t serial_;  // distinguishes registry instances in TLS

  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges_{};
  std::unique_ptr<Histo[]> hists_;
};

// ---- call-site helpers (all compile away when kEnabled is false) ----

inline MetricsRegistry::Id counter_id(std::string_view name) {
  if constexpr (kEnabled) return MetricsRegistry::global().counter(name);
  return MetricsRegistry::kInvalidId;
}

inline MetricsRegistry::Id gauge_id(std::string_view name) {
  if constexpr (kEnabled) return MetricsRegistry::global().gauge(name);
  return MetricsRegistry::kInvalidId;
}

inline MetricsRegistry::Id histogram_id(std::string_view name) {
  if constexpr (kEnabled) return MetricsRegistry::global().histogram(name);
  return MetricsRegistry::kInvalidId;
}

inline void count(MetricsRegistry::Id id, std::int64_t delta) noexcept {
  if constexpr (kEnabled) {
    if (id >= 0) MetricsRegistry::global().add(id, delta);
  }
}

inline void gauge_set(MetricsRegistry::Id id, std::int64_t v) noexcept {
  if constexpr (kEnabled) {
    if (id >= 0) MetricsRegistry::global().gauge_set(id, v);
  }
}

inline void gauge_add(MetricsRegistry::Id id, std::int64_t delta) noexcept {
  if constexpr (kEnabled) {
    if (id >= 0) MetricsRegistry::global().gauge_add(id, delta);
  }
}

inline void record(MetricsRegistry::Id id, std::int64_t v) noexcept {
  if constexpr (kEnabled) {
    if (id >= 0) MetricsRegistry::global().record(id, v);
  }
}

/// RAII nanosecond timer: records the scope's duration into a
/// histogram on destruction (or at stop()). A kInvalidId histogram —
/// the disabled build, or an unregistered site — costs nothing.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricsRegistry::Id hist) noexcept {
    if constexpr (kEnabled) {
      hist_ = hist;
      if (hist_ >= 0) start_ns_ = now_ns();
    }
  }

  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at scope exit; further stops are no-ops.
  void stop() noexcept {
    if constexpr (kEnabled) {
      if (hist_ >= 0 && start_ns_ >= 0) {
        record(hist_, now_ns() - start_ns_);
        start_ns_ = -1;
      }
    }
  }

 private:
  MetricsRegistry::Id hist_ = MetricsRegistry::kInvalidId;
  std::int64_t start_ns_ = -1;
};

}  // namespace lattice::obs
