// Minimal streaming JSON writer (no dependencies, no DOM).
//
// Grew up as bench_util::JsonWriter, the writer behind the
// BENCH_<name>.json files the CI quick-bench gate diffs against
// recorded baselines; it moved here so the observability exports
// (engine MetricsReport, tools/lattice_profile) share the exact same
// emitter. bench/bench_util.hpp keeps a `using` alias, so bench code
// is unchanged. Emission order is caller order; no pretty-printing
// beyond one space after ':' and ','.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace lattice::obs {

struct MetricsSnapshot;

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    sep();
    buf_ += '{';
    depth_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    depth_.pop_back();
    buf_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    sep();
    buf_ += '[';
    depth_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    depth_.pop_back();
    buf_ += ']';
    return *this;
  }

  JsonWriter& key(const char* k) {
    sep();
    append_string(k);
    buf_ += ": ";
    after_key_ = true;
    return *this;
  }
  JsonWriter& key(const std::string& k) { return key(k.c_str()); }

  JsonWriter& value(const char* v) {
    sep();
    append_string(v);
    return *this;
  }
  JsonWriter& value(const std::string& v) { return value(v.c_str()); }
  JsonWriter& value(bool v) {
    sep();
    buf_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    sep();
    buf_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::int64_t>(v));
  }
  JsonWriter& value(double v) {
    sep();
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%.10g", v);
    buf_ += tmp;
    return *this;
  }

  template <typename T>
  JsonWriter& field(const char* k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const noexcept { return buf_; }

  /// Write the document (plus trailing newline) to `path`; false on
  /// I/O failure. Callers treat failure as fatal so CI never gates on
  /// a stale file.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t n = std::fwrite(buf_.data(), 1, buf_.size(), f);
    const bool ok = n == buf_.size() && std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
  }

 private:
  void sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back()) buf_ += ", ";
      depth_.back() = true;
    }
  }

  void append_string(const char* s) {
    buf_ += '"';
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        buf_ += '\\';
        buf_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char tmp[8];
        std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
        buf_ += tmp;
      } else {
        buf_ += c;
      }
    }
    buf_ += '"';
  }

  std::string buf_;
  std::vector<bool> depth_;  // per level: "an element was emitted"
  bool after_key_ = false;
};

/// Emit a snapshot as one JSON object: {"counters": {...},
/// "gauges": {...}, "histograms": [{name, count, sum, min, max, mean,
/// p50, p99}, ...]}. Histogram buckets are elided (the quantiles carry
/// the shape); full buckets stay available via the C++ snapshot.
void metrics_to_json(const MetricsSnapshot& snap, JsonWriter& w);

}  // namespace lattice::obs
