#include "lattice/lgca3d/gas3.hpp"

#include <bit>
#include <map>
#include <tuple>
#include <vector>

namespace lattice::lgca3d {

const Gas3Model& Gas3Model::get() {
  static const Gas3Model model;
  return model;
}

int Gas3Model::mass(Site s) const noexcept {
  return std::popcount(static_cast<unsigned>(s & kMovingMask));
}

Vec3 Gas3Model::momentum(Site s) const noexcept {
  Vec3 p;
  for (int d = 0; d < kChannels; ++d) {
    if ((s & channel_bit(d)) != 0) p = p + velocity_of(d);
  }
  return p;
}

Site Gas3Model::reflect(Site s) const noexcept {
  Site out = static_cast<Site>(s & ~kMovingMask);
  for (int d = 0; d < kChannels; ++d) {
    if ((s & channel_bit(d)) != 0) out |= channel_bit(opposite_dir(d));
  }
  return out;
}

int Gas3Model::chirality(std::int64_t x, std::int64_t y, std::int64_t z,
                         std::int64_t t) noexcept {
  std::uint64_t h = static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL ^
                    static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL ^
                    static_cast<std::uint64_t>(z) * 0xd6e8feb86659fd93ULL ^
                    static_cast<std::uint64_t>(t) * 0x165667b19e3779f9ULL;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<int>(h & 1);
}

Gas3Model::Gas3Model() {
  // Saturated class construction, as in FHP-III: cyclically permute
  // each (mass, momentum) equivalence class of the 2^6 moving states.
  std::map<std::tuple<int, std::int64_t, std::int64_t, std::int64_t>,
           std::vector<Site>>
      classes;
  for (unsigned in = 0; in < 64; ++in) {
    const Site s = static_cast<Site>(in);
    const Vec3 p = momentum(s);
    classes[{mass(s), p.x, p.y, p.z}].push_back(s);
  }
  std::array<Site, 64> forward{};
  std::array<Site, 64> backward{};
  for (const auto& [key, members] : classes) {
    (void)key;
    const std::size_t n = members.size();
    for (std::size_t i = 0; i < n; ++i) {
      forward[members[i]] = members[(i + 1) % n];
      backward[members[i]] = members[(i + n - 1) % n];
    }
  }
  for (int variant = 0; variant < 2; ++variant) {
    auto& tab = table_[static_cast<std::size_t>(variant)];
    for (unsigned in = 0; in < 256; ++in) {
      const Site s = static_cast<Site>(in);
      if (is_obstacle(s)) {
        tab[in] = reflect(s);
        continue;
      }
      const Site moving = static_cast<Site>(s & kMovingMask);
      const Site extra = static_cast<Site>(s & ~kMovingMask);
      tab[in] = static_cast<Site>(
          (variant == 0 ? forward[moving] : backward[moving]) | extra);
    }
  }
}

}  // namespace lattice::lgca3d
