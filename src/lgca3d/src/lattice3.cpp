#include "lattice/lgca3d/lattice3.hpp"

#include "lattice/common/rng.hpp"

namespace lattice::lgca3d {

namespace {
constexpr std::int64_t wrap3(std::int64_t v, std::int64_t m) noexcept {
  const std::int64_t r = v % m;
  return r < 0 ? r + m : r;
}
}  // namespace

void validate_extent3(Extent3 extent) {
  LATTICE_REQUIRE(extent.nx > 0 && extent.ny > 0 && extent.nz > 0,
                  "Extent3 sides must be positive");
  LATTICE_REQUIRE(extent.nx <= kMaxSide3 && extent.ny <= kMaxSide3 &&
                      extent.nz <= kMaxSide3,
                  "Extent3 side exceeds kMaxSide3");
  // Overflow-safe volume bound: divide instead of multiply.
  LATTICE_REQUIRE(extent.ny <= kMaxSites3 / extent.nx &&
                      extent.nz <= kMaxSites3 / (extent.nx * extent.ny),
                  "Extent3 volume exceeds kMaxSites3");
}

Lattice3::Lattice3(Extent3 extent, Boundary3 boundary)
    : extent_(extent), boundary_(boundary) {
  validate_extent3(extent);
  data_.assign(static_cast<std::size_t>(extent.volume()), 0);
}

Site Lattice3::get(Vec3 c) const noexcept {
  if (extent_.contains(c)) return data_[index(c)];
  if (boundary_ == Boundary3::Null) return 0;
  return data_[index({wrap3(c.x, extent_.nx), wrap3(c.y, extent_.ny),
                      wrap3(c.z, extent_.nz)})];
}

Invariants3 measure_invariants(const Lattice3& lat) {
  const Gas3Model& m = Gas3Model::get();
  Invariants3 inv;
  const Extent3 e = lat.extent();
  for (std::int64_t z = 0; z < e.nz; ++z) {
    for (std::int64_t y = 0; y < e.ny; ++y) {
      for (std::int64_t x = 0; x < e.nx; ++x) {
        const Site s = lat.at({x, y, z});
        inv.mass += m.mass(s);
        inv.momentum = inv.momentum + m.momentum(s);
        if (is_obstacle(s)) ++inv.obstacles;
      }
    }
  }
  return inv;
}

void reference_step(Lattice3& lat, std::int64_t t) {
  const Gas3Model& m = Gas3Model::get();
  const Extent3 e = lat.extent();
  Lattice3 out(e, lat.boundary());
  for (std::int64_t z = 0; z < e.nz; ++z) {
    for (std::int64_t y = 0; y < e.ny; ++y) {
      for (std::int64_t x = 0; x < e.nx; ++x) {
        const Vec3 a{x, y, z};
        // Gather: channel d arrives from the neighbor at a - e_d.
        Site in = 0;
        for (int d = 0; d < kChannels; ++d) {
          const Vec3 v = velocity_of(d);
          const Vec3 src{x - v.x, y - v.y, z - v.z};
          if ((lat.get(src) & channel_bit(d)) != 0) in |= channel_bit(d);
        }
        in |= static_cast<Site>(lat.at(a) & kObstacleBit);
        out.at(a) = m.collide(in, Gas3Model::chirality(x, y, z, t));
      }
    }
  }
  lat = out;
}

void reference_run(Lattice3& lat, std::int64_t generations,
                   std::int64_t t0) {
  for (std::int64_t g = 0; g < generations; ++g) reference_step(lat, t0 + g);
}

void reference_unstep(Lattice3& lat, std::int64_t t) {
  LATTICE_REQUIRE(lat.boundary() == Boundary3::Periodic,
                  "exact reversal needs periodic boundaries");
  const Gas3Model& m = Gas3Model::get();
  const Extent3 e = lat.extent();

  // Invert the collisions (the variants are mutual inverses), then
  // send every gathered particle back where it came from.
  Lattice3 gathered(e, Boundary3::Periodic);
  for (std::int64_t z = 0; z < e.nz; ++z) {
    for (std::int64_t y = 0; y < e.ny; ++y) {
      for (std::int64_t x = 0; x < e.nx; ++x) {
        const int v = Gas3Model::chirality(x, y, z, t);
        gathered.at({x, y, z}) = m.collide(lat.at({x, y, z}), 1 - v);
      }
    }
  }
  Lattice3 out(e, Boundary3::Periodic);
  for (std::int64_t z = 0; z < e.nz; ++z) {
    for (std::int64_t y = 0; y < e.ny; ++y) {
      for (std::int64_t x = 0; x < e.nx; ++x) {
        Site s = 0;
        for (int d = 0; d < kChannels; ++d) {
          const Vec3 vel = velocity_of(d);
          if ((gathered.get({x + vel.x, y + vel.y, z + vel.z}) &
               channel_bit(d)) != 0) {
            s |= channel_bit(d);
          }
        }
        s |= static_cast<Site>(gathered.at({x, y, z}) & kObstacleBit);
        out.at({x, y, z}) = s;
      }
    }
  }
  lat = out;
}

void fill_random(Lattice3& lat, double density, std::uint64_t seed) {
  Pcg32 rng(seed);
  const Extent3 e = lat.extent();
  for (std::int64_t z = 0; z < e.nz; ++z) {
    for (std::int64_t y = 0; y < e.ny; ++y) {
      for (std::int64_t x = 0; x < e.nx; ++x) {
        Site& s = lat.at({x, y, z});
        if (is_obstacle(s)) continue;
        Site v = 0;
        for (int d = 0; d < kChannels; ++d) {
          if (rng.next_bool(density)) v |= channel_bit(d);
        }
        s = v;
      }
    }
  }
}

}  // namespace lattice::lgca3d
