#include "lattice/lgca3d/plane_lattice3.hpp"

#include <cstring>

namespace lattice::lgca3d {

PlaneLattice3::PlaneLattice3(Extent3 extent, Boundary3 boundary)
    : extent_(extent), boundary_(boundary) {
  validate_extent3(extent);
  inner_ = lgca::PlaneLattice(flat_extent(extent), to_boundary2(boundary));
}

PlaneLattice3::PlaneLattice3(const Lattice3& sites)
    : PlaneLattice3(sites.extent(), sites.boundary()) {
  pack(sites);
}

void PlaneLattice3::pack(const Lattice3& sites) {
  LATTICE_REQUIRE(sites.extent() == extent_ &&
                      sites.boundary() == boundary_,
                  "PlaneLattice3::pack: lattice shape differs");
  // The raster layouts are byte-identical, so the 2-D transpose does
  // all the work once the sites are viewed as {nx, ny*nz} rows.
  lgca::SiteLattice flat(flat_extent(extent_), to_boundary2(boundary_));
  std::memcpy(flat.grid().data(), sites.data(), sites.site_count());
  inner_.pack(flat);
}

void PlaneLattice3::unpack(Lattice3& sites) const {
  LATTICE_REQUIRE(sites.extent() == extent_ &&
                      sites.boundary() == boundary_,
                  "PlaneLattice3::unpack: lattice shape differs");
  lgca::SiteLattice flat(flat_extent(extent_), to_boundary2(boundary_));
  inner_.unpack(flat);
  std::memcpy(sites.data(), flat.grid().data(), sites.site_count());
}

Lattice3 PlaneLattice3::to_sites3() const {
  Lattice3 out(extent_, boundary_);
  unpack(out);
  return out;
}

}  // namespace lattice::lgca3d
