#include "lattice/lgca3d/pipeline3.hpp"

namespace lattice::lgca3d {

namespace {

/// One serial stage: ring buffer holding the trailing two planes of the
/// input stream, emitting updated sites delayed by one plane + one row
/// + one site.
class Stage3 {
 public:
  Stage3(Extent3 e, std::int64_t t, std::int64_t lead)
      : extent_(e),
        t_(t),
        plane_(e.nx * e.ny),
        delay_(plane_ + e.nx + 2),
        next_in_(-lead),
        ring_(static_cast<std::size_t>(2 * plane_ + 2 * e.nx + 8), 0) {}

  std::int64_t delay() const noexcept { return delay_; }
  std::int64_t buffer_sites() const noexcept {
    return static_cast<std::int64_t>(ring_.size());
  }

  Site tick(Site in) {
    ring_[index(next_in_)] = in;
    ++next_in_;
    const std::int64_t pos = next_in_ - 1 - delay_;
    if (pos < 0 || pos >= extent_.volume()) return 0;
    return update_at(pos);
  }

 private:
  std::size_t index(std::int64_t pos) const noexcept {
    const auto cap = static_cast<std::int64_t>(ring_.size());
    return static_cast<std::size_t>(((pos % cap) + cap) % cap);
  }

  Site update_at(std::int64_t pos) const {
    const Gas3Model& m = Gas3Model::get();
    const std::int64_t x = pos % extent_.nx;
    const std::int64_t y = (pos / extent_.nx) % extent_.ny;
    const std::int64_t z = pos / plane_;
    Site in = 0;
    for (int d = 0; d < kChannels; ++d) {
      const Vec3 v = velocity_of(d);
      const Vec3 src{x - v.x, y - v.y, z - v.z};
      if (!extent_.contains(src)) continue;  // null boundary mask
      const std::int64_t spos =
          (src.z * extent_.ny + src.y) * extent_.nx + src.x;
      if ((ring_[index(spos)] & channel_bit(d)) != 0) in |= channel_bit(d);
    }
    in |= static_cast<Site>(ring_[index(pos)] & kObstacleBit);
    return m.collide(in, Gas3Model::chirality(x, y, z, t_));
  }

  Extent3 extent_;
  std::int64_t t_;
  std::int64_t plane_;
  std::int64_t delay_;
  std::int64_t next_in_;
  std::vector<Site> ring_;
};

}  // namespace

Pipeline3::Pipeline3(Extent3 extent, int depth, std::int64_t t0)
    : extent_(extent), depth_(depth), t0_(t0) {
  LATTICE_REQUIRE(extent.volume() > 0, "Pipeline3 extent must be positive");
  LATTICE_REQUIRE(depth >= 1, "Pipeline3 depth must be >= 1");
}

Lattice3 Pipeline3::run(const Lattice3& in) {
  LATTICE_REQUIRE(in.extent() == extent_, "lattice extent mismatch");
  LATTICE_REQUIRE(in.boundary() == Boundary3::Null,
                  "3-D pipeline streams null-boundary lattices only");

  std::vector<Stage3> stages;
  stages.reserve(static_cast<std::size_t>(depth_));
  std::int64_t lead = 0;
  for (int s = 0; s < depth_; ++s) {
    stages.emplace_back(extent_, t0_ + s, lead);
    lead += stages.back().delay();
  }

  const std::int64_t volume = extent_.volume();
  Lattice3 out(extent_, Boundary3::Null);
  for (std::int64_t pos = 0; pos < volume + lead; ++pos) {
    Site v = pos < volume ? in[static_cast<std::size_t>(pos)] : Site{0};
    for (Stage3& st : stages) v = st.tick(v);
    ++stats_.ticks;
    const std::int64_t out_pos = pos - lead;
    if (out_pos >= 0 && out_pos < volume) {
      out[static_cast<std::size_t>(out_pos)] = v;
    }
  }
  stats_.site_updates += volume * depth_;
  stats_.buffer_sites = 0;
  for (const Stage3& st : stages) stats_.buffer_sites += st.buffer_sites();
  return out;
}

}  // namespace lattice::lgca3d
