#include "lattice/lgca3d/plane_kernel3.hpp"

#include <algorithm>
#include <barrier>
#include <bit>

#include "lattice/common/error.hpp"
#include "lattice/common/thread_pool.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace lattice::lgca3d {

namespace {

constexpr int kStaticZeroPlane = 6;
constexpr int kObstaclePlane = 7;

constexpr std::int64_t wrapi(std::int64_t v, std::int64_t m) noexcept {
  const std::int64_t r = v % m;
  return r < 0 ? r + m : r;
}

// One row of the cubic-gas update: gather (funnel shift on the ±x
// planes, whole-row reads for everything else), word-parallel pair
// swaps, per-event 3-cycle fixup, obstacle bounce. The collision
// algebra follows the (mass, momentum) class structure of Gas3Model's
// table:
//
//   With the per-axis summaries  U2 = both channels,  Ur = exactly one,
//   U0 = neither  (U in {X, Y, Z}), the six size-2 classes — a single
//   mover on axis u riding with a head-on pair on exactly one other
//   axis — are detected by
//     ex = Xr & ((Y2 & Z0) | (Y0 & Z2))     (and cyclically ey, ez),
//   and each is its own inverse (a 2-element class cycles to its other
//   member under either chirality), so the fix is a chirality-free XOR
//   toggling both channels of both *other* axes: the present pair
//   vanishes and the absent one appears.
//
//   The two 3-element classes — {3, 12, 48} (one full pair) and
//   {15, 51, 60} (two full pairs) — are exactly the non-empty,
//   non-full states whose axes each carry a pair or nothing:
//     ev = pure & ~none & ~full2,  pure = (X2|X0)&(Y2|Y0)&(Z2|Z0).
//   Those cycle under chirality, so they go through the table per
//   *event* bit (exact multi-pair configurations — rare at working
//   densities), like the 2-D kernel's head-on pair hash.
//
//   Every other moving state is a singleton class: identity. The two
//   detectors are disjoint (ev needs every axis in {0, 2}; the swaps
//   need one axis in state r), so the sparse fixup XORs into words the
//   parallel part left untouched at those bits.
void gas3_span(const std::uint64_t* const src[kChannels],
               const std::uint64_t* obst,
               std::uint64_t* const out[kChannels], std::int64_t words,
               std::uint64_t tail, std::int64_t y, std::int64_t sem_z,
               std::int64_t t) {
  const Gas3Model& model = Gas3Model::get();
  const std::int64_t last = words - 1;
  for (std::int64_t k = 0; k < words; ++k) {
    const std::uint64_t m = k == last ? tail : ~std::uint64_t{0};
    // Gather: channel d arrives from the site at -e_d, so +x shifts
    // left through the guard word and -x shifts right.
    const std::uint64_t a0 = (src[0][k] << 1) | (src[0][k - 1] >> 63);
    const std::uint64_t a1 = (src[1][k] >> 1) | (src[1][k + 1] << 63);
    const std::uint64_t a2 = src[2][k];
    const std::uint64_t a3 = src[3][k];
    const std::uint64_t a4 = src[4][k];
    const std::uint64_t a5 = src[5][k];
    const std::uint64_t o = obst[k];

    const std::uint64_t x2 = a0 & a1, xr = a0 ^ a1, x0 = ~(a0 | a1);
    const std::uint64_t y2 = a2 & a3, yr = a2 ^ a3, y0 = ~(a2 | a3);
    const std::uint64_t z2 = a4 & a5, zr = a4 ^ a5, z0 = ~(a4 | a5);

    const std::uint64_t ex = xr & ((y2 & z0) | (y0 & z2));
    const std::uint64_t ey = yr & ((x2 & z0) | (x0 & z2));
    const std::uint64_t ez = zr & ((x2 & y0) | (x0 & y2));

    std::uint64_t b0 = a0 ^ (ey | ez);
    std::uint64_t b1 = a1 ^ (ey | ez);
    std::uint64_t b2 = a2 ^ (ex | ez);
    std::uint64_t b3 = a3 ^ (ex | ez);
    std::uint64_t b4 = a4 ^ (ex | ey);
    std::uint64_t b5 = a5 ^ (ex | ey);

    const std::uint64_t none = x0 & y0 & z0;
    const std::uint64_t full2 = x2 & y2 & z2;
    const std::uint64_t pure = (x2 | x0) & (y2 | y0) & (z2 | z0);
    std::uint64_t ev = pure & ~none & ~full2 & ~o & m;
    while (ev != 0) {
      const int j = std::countr_zero(ev);
      ev &= ev - 1;
      const std::uint64_t bit = std::uint64_t{1} << j;
      const Site in = static_cast<Site>(
          ((a0 >> j) & 1) | (((a1 >> j) & 1) << 1) | (((a2 >> j) & 1) << 2) |
          (((a3 >> j) & 1) << 3) | (((a4 >> j) & 1) << 4) |
          (((a5 >> j) & 1) << 5));
      const int v = Gas3Model::chirality(k * 64 + j, y, sem_z, t);
      const Site d = static_cast<Site>(in ^ (model.collide(in, v) &
                                             kMovingMask));
      if ((d & channel_bit(0)) != 0) b0 ^= bit;
      if ((d & channel_bit(1)) != 0) b1 ^= bit;
      if ((d & channel_bit(2)) != 0) b2 ^= bit;
      if ((d & channel_bit(3)) != 0) b3 ^= bit;
      if ((d & channel_bit(4)) != 0) b4 ^= bit;
      if ((d & channel_bit(5)) != 0) b5 ^= bit;
    }

    // Obstacle bounce-back: each channel takes its opposite's gathered
    // bit (the table's reflect), overriding any collision algebra.
    out[0][k] = ((b0 & ~o) | (a1 & o)) & m;
    out[1][k] = ((b1 & ~o) | (a0 & o)) & m;
    out[2][k] = ((b2 & ~o) | (a3 & o)) & m;
    out[3][k] = ((b3 & ~o) | (a2 & o)) & m;
    out[4][k] = ((b4 & ~o) | (a5 & o)) & m;
    out[5][k] = ((b5 & ~o) | (a4 & o)) & m;
  }
}

}  // namespace

const PlaneKernel3& PlaneKernel3::get() {
  static const PlaneKernel3 kernel;
  return kernel;
}

void PlaneKernel3::prime_static_planes(PlaneLattice3& lat,
                                       PlaneLattice3& next) const {
  LATTICE_ASSERT(next.extent3() == lat.extent3() &&
                     next.boundary3() == lat.boundary3(),
                 "prime_static_planes: buffer shapes differ");
  const std::int64_t words = lat.words_per_row();
  if (words == 0) return;
  const std::uint64_t tail = lat.tail_mask();
  const Extent3 e = lat.extent3();
  const std::int64_t rows = e.ny * e.nz;
  for (std::int64_t r = 0; r < rows; ++r) {
    // Bit 6 is not a channel: the reference gather never reads it, so
    // it is zero from generation 1 on — clearing it up front in both
    // buffers reproduces that for every produced state.
    std::uint64_t* za = lat.inner().row(kStaticZeroPlane, r);
    std::uint64_t* zb = next.inner().row(kStaticZeroPlane, r);
    for (std::int64_t k = 0; k < words; ++k) za[k] = 0;
    for (std::int64_t k = 0; k < words; ++k) zb[k] = 0;
    const std::uint64_t* src = lat.inner().row(kObstaclePlane, r);
    std::uint64_t* dst = next.inner().row(kObstaclePlane, r);
    for (std::int64_t k = 0; k < words; ++k) dst[k] = src[k];
    dst[words - 1] &= tail;
  }
}

void PlaneKernel3::update_plane_window(PlaneLattice3& next, std::int64_t dst_z,
                                       const PlaneLattice3& cur,
                                       std::int64_t src_z, std::int64_t sem_z,
                                       std::int64_t t) const {
  LATTICE_ASSERT(next.words_per_row() == cur.words_per_row(),
                 "update_plane_window: row widths differ");
  const Extent3 e = cur.extent3();
  LATTICE_ASSERT(dst_z >= 0 && dst_z < next.extent3().nz && src_z >= 0 &&
                     src_z < e.nz,
                 "update_plane_window out of range");
  const std::int64_t words = cur.words_per_row();
  if (words == 0) return;
  const bool periodic = cur.boundary3() == Boundary3::Periodic;

  // The z taps resolve against cur's *own* depth and boundary, so a
  // Null-boundary scratch slab whose storage range is clamped to the
  // real volume edge reads the same zero planes the golden updater
  // would (scratch_base keeps the clamp aligned with the edge).
  std::int64_t zm = src_z - 1;
  std::int64_t zp = src_z + 1;
  bool zm_zero = false;
  bool zp_zero = false;
  if (zm < 0) {
    if (periodic) {
      zm = e.nz - 1;
    } else {
      zm_zero = true;
    }
  }
  if (zp >= e.nz) {
    if (periodic) {
      zp = 0;
    } else {
      zp_zero = true;
    }
  }

  for (std::int64_t y = 0; y < e.ny; ++y) {
    const std::int64_t ym = y - 1;
    const std::int64_t yp = y + 1;
    const std::uint64_t* src[kChannels];
    src[0] = cur.row(0, src_z, y);
    src[1] = cur.row(1, src_z, y);
    src[2] = ym < 0 ? (periodic ? cur.row(2, src_z, e.ny - 1)
                                : cur.zero_row())
                    : cur.row(2, src_z, ym);
    src[3] = yp >= e.ny
                 ? (periodic ? cur.row(3, src_z, 0) : cur.zero_row())
                 : cur.row(3, src_z, yp);
    src[4] = zm_zero ? cur.zero_row() : cur.row(4, zm, y);
    src[5] = zp_zero ? cur.zero_row() : cur.row(5, zp, y);
    const std::uint64_t* obst = cur.row(kObstaclePlane, src_z, y);
    std::uint64_t* out[kChannels];
    for (int p = 0; p < kChannels; ++p) out[p] = next.row(p, dst_z, y);
    gas3_span(src, obst, out, words, cur.tail_mask(), y, sem_z, t);
  }
}

void PlaneKernel3::update_planes(PlaneLattice3& next, const PlaneLattice3& cur,
                                 std::int64_t t, std::int64_t z0,
                                 std::int64_t z1) const {
  LATTICE_ASSERT(next.extent3() == cur.extent3() &&
                     next.boundary3() == cur.boundary3(),
                 "update_planes: source and destination lattices differ");
  LATTICE_ASSERT(z0 >= 0 && z1 <= cur.extent3().nz,
                 "update_planes out of range");
  if (cur.words_per_row() == 0 || z0 >= z1) return;
  for (std::int64_t z = z0; z < z1; ++z) {
    update_plane_window(next, z, cur, z, z, t);
  }
  // Leave the produced planes halo-ready for the next generation,
  // band-locally and cache-hot, as the 2-D update_rows does.
  next.prepare_shift_halo(halo_planes(), z0, z1);
}

namespace {

/// z-slab band count: never more bands than requested threads,
/// z-planes, or pool lanes — and never a band owning less than `grain`
/// payload words of one plane per generation, the same monotone-
/// scaling floor the 2-D band planner applies (whole z-planes are the
/// smallest unit here, so small volumes collapse to one inline band).
std::int64_t plan_bands3(Extent3 e, std::int64_t words, unsigned threads,
                         std::int64_t grain) {
  const std::int64_t work = e.ny * e.nz * words;  // per plane, per gen
  std::int64_t bands = std::min<std::int64_t>(threads, e.nz);
  bands = std::min(bands, std::max<std::int64_t>(1, work / grain));
  bands = std::min(bands, static_cast<std::int64_t>(
                              common::ThreadPool::shared().max_lanes()));
  return std::max<std::int64_t>(1, bands);
}

struct BitplaneObs {
  obs::MetricsRegistry::Id sites = obs::counter_id("bitplane.sites");
  obs::MetricsRegistry::Id words = obs::counter_id("bitplane.words");
  obs::MetricsRegistry::Id band_ns = obs::histogram_id("bitplane.band_ns");
  obs::MetricsRegistry::Id bands = obs::gauge_id("bitplane.bands");
  obs::MetricsRegistry::Id tile_ns = obs::histogram_id("bitplane.tile_ns");
  obs::MetricsRegistry::Id depth = obs::gauge_id("bitplane.tile_depth");
  obs::MetricsRegistry::Id tiles = obs::gauge_id("bitplane.tiles");
  static const BitplaneObs& get() {
    static const BitplaneObs ids;
    return ids;
  }
};

std::int64_t scratch_base3(std::int64_t z0, std::int64_t kb, std::int64_t nz,
                           std::int64_t scratch_d, bool periodic) noexcept {
  const std::int64_t lo = z0 - (kb - 1);
  if (periodic) return lo;
  return std::max<std::int64_t>(0, std::min(lo, nz - scratch_d));
}

/// One trapezoid in (z, t): advance output z-planes [z0, z1) by kb
/// generations from the committed generation-t volume, intermediates
/// ping-ponging between the scratch slabs (full x/y extent, sliced in
/// z). Reads only `lat` and the slabs, so concurrent tiles never race.
void run_plane_tile3(PlaneLattice3& next, const PlaneLattice3& lat,
                     const PlaneKernel3& kernel, std::int64_t t,
                     std::int64_t kb, std::int64_t z0, std::int64_t z1,
                     PlaneLattice3* s0, PlaneLattice3* s1) {
  if (kb == 1) {
    kernel.update_planes(next, lat, t, z0, z1);
    return;
  }
  const Extent3 e = lat.extent3();
  const std::int64_t nz = e.nz;
  const bool periodic = lat.boundary3() == Boundary3::Periodic;
  const std::int64_t scratch_d = s0->extent3().nz;
  const std::int64_t words = lat.words_per_row();
  const std::uint32_t halo = kernel.halo_planes();
  const std::int64_t base = scratch_base3(z0, kb, nz, scratch_d, periodic);

  // Every step reads the obstacle plane from its source center row; it
  // is static for the whole run — copy it into the slabs once per
  // block. The static-zero plane is zero in the slabs by construction
  // (allocation zero-fills and the span never stores it).
  for (PlaneLattice3* s : {s0, s1}) {
    for (std::int64_t lz = 0; lz < scratch_d; ++lz) {
      const std::int64_t gz = periodic ? wrapi(base + lz, nz) : base + lz;
      for (std::int64_t y = 0; y < e.ny; ++y) {
        const std::uint64_t* src = lat.row(kObstaclePlane, gz, y);
        std::copy(src, src + words, s->row(kObstaclePlane, lz, y));
      }
    }
  }

  PlaneLattice3* cur_s = s0;
  PlaneLattice3* dst_s = s1;
  for (std::int64_t g = 1; g <= kb; ++g) {
    std::int64_t lo = z0 - (kb - g);
    std::int64_t hi = z1 + (kb - g);
    if (!periodic) {
      lo = std::max<std::int64_t>(lo, 0);
      hi = std::min(hi, nz);
    }
    const PlaneLattice3& cur = g == 1 ? lat : *cur_s;
    PlaneLattice3& dst = g == kb ? next : *dst_s;
    for (std::int64_t gz = lo; gz < hi; ++gz) {
      const std::int64_t sem = periodic ? wrapi(gz, nz) : gz;
      const std::int64_t src_z = g == 1 ? sem : gz - base;
      const std::int64_t dst_z = g == kb ? gz : gz - base;
      kernel.update_plane_window(dst, dst_z, cur, src_z, sem, t + g - 1);
      if (g < kb) dst.prepare_shift_halo(halo, dst_z, dst_z + 1);
    }
    std::swap(cur_s, dst_s);
  }
  next.prepare_shift_halo(halo, z0, z1);
}

struct TileRange {
  std::int64_t lo;
  std::int64_t hi;
};
TileRange lane_tiles(std::int64_t tiles, unsigned lanes,
                     unsigned lane) noexcept {
  return {tiles * lane / lanes, tiles * (lane + 1) / lanes};
}

}  // namespace

void plane_gas_run3(PlaneLattice3& lat, std::int64_t generations,
                    std::int64_t t0, unsigned threads,
                    std::int64_t band_grain_words,
                    lgca::PlaneRunHooks* hooks) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  if (generations == 0) return;
  const PlaneKernel3& kernel = PlaneKernel3::get();
  const Extent3 e = lat.extent3();
  const std::int64_t grain = band_grain_words > 0
                                 ? band_grain_words
                                 : lgca::kDefaultBandGrainWords;
  const std::int64_t bands =
      plan_bands3(e, lat.words_per_row(), threads, grain);

  const BitplaneObs& ids = BitplaneObs::get();
  obs::gauge_set(ids.bands, bands);

  PlaneLattice3 next(e, lat.boundary3());
  kernel.prime_static_planes(lat, next);
  lat.prepare_shift_halo(kernel.halo_planes(), 0, e.nz);
  if (hooks != nullptr) {
    hooks->run_begin(lat.inner(), kernel.written_planes(),
                     kernel.halo_planes(), t0);
  }
  if (bands == 1) {
    for (std::int64_t g = 0; g < generations; ++g) {
      if (hooks != nullptr) {
        hooks->before_rows(lat.inner(), t0 + g, 0, e.ny * e.nz);
      }
      {
        const obs::ScopedTimer timer(ids.band_ns);
        kernel.update_planes(next, lat, t0 + g, 0, e.nz);
      }
      if (hooks != nullptr) {
        hooks->after_rows(next.inner(), t0 + g, 0, e.ny * e.nz);
      }
      std::swap(lat, next);
    }
  } else {
    // z-slab bands: each pool lane owns one static contiguous slab for
    // the whole run, one barrier per generation. The slab faces — the
    // boundary z-planes the neighbor bands gather — are exactly the
    // sliced 3-D SPA's inter-slice channels in software.
    std::barrier sync(static_cast<std::ptrdiff_t>(bands),
                      [&]() noexcept { std::swap(lat, next); });
    std::barrier<> inject_sync(static_cast<std::ptrdiff_t>(bands));
    const std::int64_t planes_per = (e.nz + bands - 1) / bands;
    common::ThreadPool::shared().run_lanes(
        static_cast<unsigned>(bands), [&](unsigned lane) {
          const std::int64_t z0 = static_cast<std::int64_t>(lane) * planes_per;
          const std::int64_t z1 = std::min(e.nz, z0 + planes_per);
          for (std::int64_t g = 0; g < generations; ++g) {
            if (hooks != nullptr) {
              hooks->before_rows(lat.inner(), t0 + g, z0 * e.ny, z1 * e.ny);
              inject_sync.arrive_and_wait();
            }
            {
              const obs::ScopedTimer timer(ids.band_ns);
              kernel.update_planes(next, lat, t0 + g, z0, z1);
            }
            if (hooks != nullptr) {
              hooks->after_rows(next.inner(), t0 + g, z0 * e.ny, z1 * e.ny);
            }
            sync.arrive_and_wait();
          }
        });
  }
  obs::count(ids.sites, e.volume() * generations);
  obs::count(ids.words, generations * e.ny * e.nz * lat.words_per_row() *
                            PlaneLattice3::kPlanes);
}

bool temporal_tiling_feasible3(const lgca::TemporalTiling& tiling,
                               Extent3 extent, Boundary3 boundary) {
  const std::int64_t k = tiling.depth;
  const std::int64_t r = tiling.tile_rows;
  if (k < 2 || r < k) return false;
  if (extent.nx <= 0 || extent.ny <= 0 || extent.nz <= 0) return false;
  if ((extent.nz + r - 1) / r < 2) return false;
  const std::int64_t scratch_d = r + 2 * (k - 1);
  if (boundary != Boundary3::Periodic && scratch_d > extent.nz) return false;
  return true;
}

void plane_gas_run_tiled3(PlaneLattice3& lat, std::int64_t generations,
                          std::int64_t t0, unsigned threads,
                          const lgca::TemporalTiling& tiling,
                          lgca::PlaneRunHooks* hooks) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  if (generations == 0) return;
  const Extent3 e = lat.extent3();
  if (generations < 2 ||
      !temporal_tiling_feasible3(tiling, e, lat.boundary3())) {
    plane_gas_run3(lat, generations, t0, threads, 0, hooks);
    return;
  }
  const PlaneKernel3& kernel = PlaneKernel3::get();
  const std::int64_t k = tiling.depth;
  const std::int64_t tiles = (e.nz + tiling.tile_rows - 1) / tiling.tile_rows;
  const std::int64_t tile_planes = (e.nz + tiles - 1) / tiles;
  const std::int64_t scratch_d = tiling.tile_rows + 2 * (k - 1);
  const Extent3 scratch_extent{e.nx, e.ny, scratch_d};
  const unsigned lanes = static_cast<unsigned>(std::min<std::int64_t>(
      std::min<std::int64_t>(threads, tiles),
      common::ThreadPool::shared().max_lanes()));

  const BitplaneObs& ids = BitplaneObs::get();
  obs::gauge_set(ids.depth, k);
  obs::gauge_set(ids.tiles, tiles);

  PlaneLattice3 next(e, lat.boundary3());
  kernel.prime_static_planes(lat, next);
  lat.prepare_shift_halo(kernel.halo_planes(), 0, e.nz);
  if (hooks != nullptr) {
    hooks->run_begin(lat.inner(), kernel.written_planes(),
                     kernel.halo_planes(), t0);
  }

  if (lanes <= 1) {
    PlaneLattice3 s0(scratch_extent, lat.boundary3());
    PlaneLattice3 s1(scratch_extent, lat.boundary3());
    std::int64_t done = 0;
    while (done < generations) {
      const std::int64_t kb = std::min(k, generations - done);
      const std::int64_t t = t0 + done;
      if (hooks != nullptr) hooks->before_rows(lat.inner(), t, 0, e.ny * e.nz);
      for (std::int64_t tile = 0; tile < tiles; ++tile) {
        const obs::ScopedTimer timer(ids.tile_ns);
        const std::int64_t z0 = tile * tile_planes;
        const std::int64_t z1 = std::min(e.nz, z0 + tile_planes);
        run_plane_tile3(next, lat, kernel, t, kb, z0, z1, &s0, &s1);
      }
      if (hooks != nullptr) {
        hooks->after_rows(next.inner(), t + kb - 1, 0, e.ny * e.nz);
      }
      std::swap(lat, next);
      done += kb;
    }
  } else {
    // Independent tiles (redundant seam recompute), one barrier per
    // block; hooks at block granularity from lane 0, as in 2-D.
    std::barrier sync(static_cast<std::ptrdiff_t>(lanes),
                      [&]() noexcept { std::swap(lat, next); });
    std::barrier<> hook_sync(static_cast<std::ptrdiff_t>(lanes));
    common::ThreadPool::shared().run_lanes(lanes, [&](unsigned lane) {
      PlaneLattice3 s0(scratch_extent, lat.boundary3());
      PlaneLattice3 s1(scratch_extent, lat.boundary3());
      const TileRange range = lane_tiles(tiles, lanes, lane);
      std::int64_t done = 0;
      while (done < generations) {
        const std::int64_t kb = std::min(k, generations - done);
        const std::int64_t t = t0 + done;
        if (hooks != nullptr) {
          if (lane == 0) hooks->before_rows(lat.inner(), t, 0, e.ny * e.nz);
          hook_sync.arrive_and_wait();
        }
        for (std::int64_t tile = range.lo; tile < range.hi; ++tile) {
          const obs::ScopedTimer timer(ids.tile_ns);
          const std::int64_t z0 = tile * tile_planes;
          const std::int64_t z1 = std::min(e.nz, z0 + tile_planes);
          run_plane_tile3(next, lat, kernel, t, kb, z0, z1, &s0, &s1);
        }
        if (hooks != nullptr) {
          hook_sync.arrive_and_wait();
          if (lane == 0) {
            hooks->after_rows(next.inner(), t + kb - 1, 0, e.ny * e.nz);
          }
        }
        sync.arrive_and_wait();
        done += kb;
      }
    });
  }
  obs::count(ids.sites, e.volume() * generations);
  obs::count(ids.words, generations * e.ny * e.nz * lat.words_per_row() *
                            PlaneLattice3::kPlanes);
}

namespace {

struct TransposeObs {
  obs::MetricsRegistry::Id pack = obs::histogram_id("bitplane.pack_ns");
  obs::MetricsRegistry::Id update = obs::histogram_id("bitplane.update_ns");
  obs::MetricsRegistry::Id unpack = obs::histogram_id("bitplane.unpack_ns");
  static const TransposeObs& get() {
    static const TransposeObs ids;
    return ids;
  }
};

template <typename Run>
void packed_run3(PlaneLattice3& planes, const Run& run) {
  const TransposeObs& ids = TransposeObs::get();
  {
    obs::ScopedTimer update_timer(ids.update);
    const obs::TraceSpan update_span("bitplane.update");
    run(planes);
  }
}

}  // namespace

void bitplane_gas_run3(Lattice3& lat, std::int64_t generations,
                       std::int64_t t0, unsigned threads,
                       std::int64_t band_grain_words,
                       lgca::PlaneRunHooks* hooks) {
  const TransposeObs& ids = TransposeObs::get();
  PlaneLattice3 planes;
  {
    const obs::ScopedTimer pack_timer(ids.pack);
    const obs::TraceSpan pack_span("bitplane.pack");
    planes = PlaneLattice3(lat);
  }
  packed_run3(planes, [&](PlaneLattice3& p) {
    plane_gas_run3(p, generations, t0, threads, band_grain_words, hooks);
  });
  const obs::ScopedTimer unpack_timer(ids.unpack);
  const obs::TraceSpan unpack_span("bitplane.unpack");
  planes.unpack(lat);
}

void bitplane_gas_run_tiled3(Lattice3& lat, std::int64_t generations,
                             std::int64_t t0, unsigned threads,
                             const lgca::TemporalTiling& tiling,
                             lgca::PlaneRunHooks* hooks) {
  const TransposeObs& ids = TransposeObs::get();
  PlaneLattice3 planes;
  {
    const obs::ScopedTimer pack_timer(ids.pack);
    const obs::TraceSpan pack_span("bitplane.pack");
    planes = PlaneLattice3(lat);
  }
  packed_run3(planes, [&](PlaneLattice3& p) {
    plane_gas_run_tiled3(p, generations, t0, threads, tiling, hooks);
  });
  const obs::ScopedTimer unpack_timer(ids.unpack);
  const obs::TraceSpan unpack_span("bitplane.unpack");
  planes.unpack(lat);
}

void bitplane_gas_run3(lgca::SiteLattice& lat, Extent3 extent,
                       std::int64_t generations, std::int64_t t0,
                       unsigned threads, std::int64_t band_grain_words,
                       lgca::PlaneRunHooks* hooks) {
  LATTICE_REQUIRE(lat.extent() == flat_extent(extent),
                  "bitplane_gas_run3: flattened extent mismatch");
  const TransposeObs& ids = TransposeObs::get();
  PlaneLattice3 planes(extent, to_boundary3(lat.boundary()));
  {
    const obs::ScopedTimer pack_timer(ids.pack);
    const obs::TraceSpan pack_span("bitplane.pack");
    planes.pack(lat);
  }
  packed_run3(planes, [&](PlaneLattice3& p) {
    plane_gas_run3(p, generations, t0, threads, band_grain_words, hooks);
  });
  const obs::ScopedTimer unpack_timer(ids.unpack);
  const obs::TraceSpan unpack_span("bitplane.unpack");
  planes.unpack(lat);
}

void bitplane_gas_run_tiled3(lgca::SiteLattice& lat, Extent3 extent,
                             std::int64_t generations, std::int64_t t0,
                             unsigned threads,
                             const lgca::TemporalTiling& tiling,
                             lgca::PlaneRunHooks* hooks) {
  LATTICE_REQUIRE(lat.extent() == flat_extent(extent),
                  "bitplane_gas_run_tiled3: flattened extent mismatch");
  const TransposeObs& ids = TransposeObs::get();
  PlaneLattice3 planes(extent, to_boundary3(lat.boundary()));
  {
    const obs::ScopedTimer pack_timer(ids.pack);
    const obs::TraceSpan pack_span("bitplane.pack");
    planes.pack(lat);
  }
  packed_run3(planes, [&](PlaneLattice3& p) {
    plane_gas_run_tiled3(p, generations, t0, threads, tiling, hooks);
  });
  const obs::ScopedTimer unpack_timer(ids.unpack);
  const obs::TraceSpan unpack_span("bitplane.unpack");
  planes.unpack(lat);
}

}  // namespace lattice::lgca3d
