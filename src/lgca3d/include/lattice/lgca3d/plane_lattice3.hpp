// Bit-plane (multi-spin coded) representation of the 3-D lattice.
//
// The x axis keeps the exact word layout of the 2-D PlaneLattice (64
// sites per uint64_t, guard-word halo on both row ends, padded aligned
// strides), because the x-shift structure of propagation is identical
// in every dimension. The y and z axes need no halo storage at all:
// their taps are whole-row reads, resolved per row against the
// boundary (zero row under Null, wrapped row under Periodic) exactly
// like the 2-D kernel resolves its dy taps.
//
// Concretely a PlaneLattice3 of extent {nx, ny, nz} *is* a 2-D
// PlaneLattice of extent {nx, ny*nz} whose row r = z*ny + y — the same
// row-major flattening the engine uses for 3-D byte state, so packing
// and halo machinery (prepare_shift_halo, guard semantics, payload
// equality) are reused verbatim rather than reimplemented. The 3-D
// structure lives entirely in the kernel's row addressing
// (plane_kernel3.hpp).

#pragma once

#include <cstdint>

#include "lattice/lgca/plane_lattice.hpp"
#include "lattice/lgca3d/lattice3.hpp"

namespace lattice::lgca3d {

/// The 2-D boundary mode with the same x-wrap semantics (y/z wraps are
/// the kernel's job, not the container's).
constexpr lgca::Boundary to_boundary2(Boundary3 b) noexcept {
  return b == Boundary3::Periodic ? lgca::Boundary::Periodic
                                  : lgca::Boundary::Null;
}
constexpr Boundary3 to_boundary3(lgca::Boundary b) noexcept {
  return b == lgca::Boundary::Periodic ? Boundary3::Periodic
                                       : Boundary3::Null;
}

/// The row-major 2-D flattening ({nx, ny*nz}; row r = z*ny + y) shared
/// by PlaneLattice3 and the engine's 3-D byte state.
constexpr Extent flat_extent(Extent3 e) noexcept {
  return {e.nx, e.ny * e.nz};
}

class PlaneLattice3 {
 public:
  static constexpr int kPlanes = lgca::PlaneLattice::kPlanes;

  PlaneLattice3() = default;
  PlaneLattice3(Extent3 extent, Boundary3 boundary);
  /// Pack a 3-D byte lattice (extent and boundary are taken from it).
  explicit PlaneLattice3(const Lattice3& sites);

  Extent3 extent3() const noexcept { return extent_; }
  Boundary3 boundary3() const noexcept { return boundary_; }
  std::int64_t words_per_row() const noexcept {
    return inner_.words_per_row();
  }
  std::uint64_t tail_mask() const noexcept { return inner_.tail_mask(); }

  /// The flattened 2-D lattice ({nx, ny*nz}; row r = z*ny + y). The
  /// fault guard and the run hooks operate on this view, which is what
  /// keys every fault draw by global row — identical across SIMD
  /// levels and identical between 2-D and 3-D executors.
  lgca::PlaneLattice& inner() noexcept { return inner_; }
  const lgca::PlaneLattice& inner() const noexcept { return inner_; }

  /// Payload word 0 of `plane` on row (y, z); guard words at -1 and
  /// words_per_row() as in the 2-D layout.
  std::uint64_t* row(int plane, std::int64_t z, std::int64_t y) noexcept {
    return inner_.row(plane, z * extent_.ny + y);
  }
  const std::uint64_t* row(int plane, std::int64_t z,
                           std::int64_t y) const noexcept {
    return inner_.row(plane, z * extent_.ny + y);
  }
  const std::uint64_t* zero_row() const noexcept { return inner_.zero_row(); }

  /// Fill the x shift halo of the named planes for z-planes [z0, z1).
  void prepare_shift_halo(std::uint32_t plane_mask, std::int64_t z0,
                          std::int64_t z1) {
    inner_.prepare_shift_halo(plane_mask, z0 * extent_.ny, z1 * extent_.ny);
  }

  void pack(const Lattice3& sites);
  void unpack(Lattice3& sites) const;
  Lattice3 to_sites3() const;

  /// Pack/unpack the engine's flattened byte view ({nx, ny*nz}).
  void pack(const lgca::SiteLattice& sites) { inner_.pack(sites); }
  void unpack(lgca::SiteLattice& sites) const { inner_.unpack(sites); }

  /// Payload-only equality, as in the 2-D lattice.
  friend bool operator==(const PlaneLattice3& a, const PlaneLattice3& b) {
    return a.extent_ == b.extent_ && a.boundary_ == b.boundary_ &&
           a.inner_ == b.inner_;
  }

 private:
  Extent3 extent_{};
  Boundary3 boundary_ = Boundary3::Null;
  lgca::PlaneLattice inner_;
};

}  // namespace lattice::lgca3d
