// Serial raster pipeline for the 3-D gas.
//
// The 2-D engines buffer two lattice *lines* (≈2L sites); a 3-D raster
// pipeline must buffer two lattice *planes* (≈2·nx·ny sites) to hold a
// site's 6-neighborhood between first and last use. This is §6.4's
// warning made executable: "as we increase the dimensionality of the
// problems... this effect will become even more dramatic" — on the 1987
// technology the on-chip WSA that handled L = 785 in 2-D can hold only
// L ≈ 29 in 3-D (see bench_dimensionality).

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/lgca3d/lattice3.hpp"

namespace lattice::lgca3d {

struct Pipeline3Stats {
  std::int64_t ticks = 0;
  std::int64_t site_updates = 0;
  std::int64_t buffer_sites = 0;  // the 2-plane window

  double updates_per_tick() const {
    return ticks > 0 ? static_cast<double>(site_updates) /
                           static_cast<double>(ticks)
                     : 0.0;
  }
};

/// A chain of `depth` serial PEs streaming the volume in raster order
/// (x fastest, then y, then z), one site per tick per stage.
class Pipeline3 {
 public:
  Pipeline3(Extent3 extent, int depth, std::int64_t t0 = 0);

  /// Stream `in` (null boundary) through the chain: `depth` generations.
  Lattice3 run(const Lattice3& in);

  const Pipeline3Stats& stats() const noexcept { return stats_; }

  /// Shift-register sites one serial 3-D PE needs (two planes + a row).
  static std::int64_t window_sites(Extent3 e) noexcept {
    return 2 * e.nx * e.ny + e.nx + 3;
  }

 private:
  Extent3 extent_;
  int depth_;
  std::int64_t t0_;
  Pipeline3Stats stats_;
};

}  // namespace lattice::lgca3d
