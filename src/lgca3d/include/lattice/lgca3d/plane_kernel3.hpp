// Bit-parallel update of the cubic 3-D gas over PlaneLattice3 planes.
//
// Same construction as the 2-D PlaneKernel, one dimension up:
// propagation is a funnel shift on the ±x channel planes (identical
// word structure to 2-D — the guard-word halo makes it branch-free)
// plus whole-row reads of the y/z neighbor rows, and collision is
// boolean algebra derived from the class structure of Gas3Model's
// table. That structure splits cleanly:
//
//   pair-swap classes — a single mover on axis u plus a head-on pair
//       on one other axis; the collision moves the pair to the third
//       axis. Six size-2 classes, each its own inverse, so they are
//       chirality-independent and evaluate word-parallel (the ex/ey/ez
//       masks below).
//   axis-cycle classes — the zero-momentum states whose axes each
//       carry a full pair or nothing: {x, y, z} pairs (mass 2) and
//       {xy, xz, yz} double-pairs (mass 4) each form a 3-cycle whose
//       direction is the chirality variant. Exact multi-pair
//       configurations, hence rare at working densities — handled per
//       *event* site through the Gas3Model table, exactly like the 2-D
//       kernel's per-event chirality hash.
//   everything else — singleton classes: identity.
//
// Obstacle sites bounce (each channel takes its opposite's gathered
// bit), and the obstacle plane itself is static — primed once per run.
// The spans here are scalar64 only: the 3-D kernel is new enough that
// the vector variants have not been ported, and because every fault
// draw is keyed by global (x, y, z) through the flattened inner
// lattice, scalar-only execution is bit-identical on every host no
// matter which SIMD level the 2-D kernels dispatch to. Bit-identical
// to lgca3d::reference_step per site, by construction and by the
// exhaustive parity matrix in tests/test_plane_lattice3.cpp.
//
// Threading mirrors plane_gas_run, with the band unit promoted from a
// row to a z-plane: up to `threads` contiguous z-slabs are owned by
// persistent pool lanes, one barrier per generation. This z-slab
// decomposition is the software shape of the sliced 3-D SPA — slabs of
// z-planes exchanging faces (the slab-boundary rows the neighbor bands
// gather) at each generation barrier, generalizing the 2-D strip
// machines' side channels. plane_gas_run_tiled3 is the §7 Theorem 4
// schedule in d = 3: trapezoidal z-slab tiles advanced depth
// generations per memory visit, R = O(B·S^(1/3)).

#pragma once

#include <cstdint>

#include "lattice/lgca/plane_kernel.hpp"
#include "lattice/lgca/temporal_tile.hpp"
#include "lattice/lgca3d/plane_lattice3.hpp"

namespace lattice::lgca3d {

class PlaneKernel3 {
 public:
  /// The (immutable) singleton — one 3-D gas, one kernel.
  static const PlaneKernel3& get();

  /// The six channel planes; obstacle (7) is static, 6 is unused.
  std::uint32_t written_planes() const noexcept { return 0x3fu; }
  /// Only the ±x channels gather with a column shift.
  std::uint32_t halo_planes() const noexcept { return 0x03u; }

  /// One-time run setup, as in the 2-D kernel: zero the static-zero
  /// plane (6) in both buffers and copy the obstacle plane into
  /// `next`, tail-masked.
  void prime_static_planes(PlaneLattice3& lat, PlaneLattice3& next) const;

  /// Compute generation-(t+1) z-planes [z0, z1) of `next` from the
  /// generation-t lattice `cur`, whose ±x shift halo must be current
  /// (prepare_shift_halo) and whose static planes must be primed. On
  /// return the produced z-planes of `next` are halo-ready for the
  /// following generation.
  void update_planes(PlaneLattice3& next, const PlaneLattice3& cur,
                     std::int64_t t, std::int64_t z0, std::int64_t z1) const;

  /// Windowed single-z-plane update for the temporal tiling driver:
  /// compute one full z-plane into `next` at storage plane `dst_z`
  /// from `cur` centered on storage plane `src_z`, where the two
  /// lattices may have different depths (a trapezoid scratch slab vs
  /// the real volume). `sem_z` is the plane's semantic lattice
  /// coordinate — it feeds the chirality hash alone, since the cubic
  /// taps have no parity structure. Source z-planes resolve as
  /// src_z ± 1 against cur's own depth and boundary (out-of-range
  /// reads zero under Null); y taps resolve within the z-plane, x taps
  /// through the shift halo. update_planes is exactly this with
  /// dst_z == src_z == sem_z. Does NOT fill the produced plane's
  /// halo — the callers decide between band-local and per-plane fills.
  void update_plane_window(PlaneLattice3& next, std::int64_t dst_z,
                           const PlaneLattice3& cur, std::int64_t src_z,
                           std::int64_t sem_z, std::int64_t t) const;

 private:
  PlaneKernel3() = default;
};

/// Advance `lat` by `generations` steps of the 3-D gas, double-
/// buffered, with up to `threads` z-slab bands (one barrier per
/// generation; a band never owns less than `band_grain_words` payload
/// words per plane per generation — 0 picks the 2-D planner's
/// kDefaultBandGrainWords — so thread scaling stays monotone). `hooks`
/// observe the flattened inner lattice (row r = z*ny + y), which is how
/// the plane-memory fault guard rides the 3-D runner unchanged.
/// Bit-identical to reference_run for any thread count.
void plane_gas_run3(PlaneLattice3& lat, std::int64_t generations,
                    std::int64_t t0 = 0, unsigned threads = 1,
                    std::int64_t band_grain_words = 0,
                    lgca::PlaneRunHooks* hooks = nullptr);

/// Whether the tiled driver would actually tile: same predicate as the
/// 2-D temporal_tiling_feasible with rows promoted to z-planes
/// (tiling.tile_rows = output z-planes per tile).
bool temporal_tiling_feasible3(const lgca::TemporalTiling& tiling,
                               Extent3 extent, Boundary3 boundary);

/// plane_gas_run3 with temporal blocking: tiling.depth generations per
/// trapezoidal z-slab tile, redundant seam recompute, one barrier per
/// block. Falls back to plane_gas_run3 when the tiling is infeasible.
/// Bit-identical to plane_gas_run3 for any tiling.
void plane_gas_run_tiled3(PlaneLattice3& lat, std::int64_t generations,
                          std::int64_t t0, unsigned threads,
                          const lgca::TemporalTiling& tiling,
                          lgca::PlaneRunHooks* hooks = nullptr);

/// Byte-volume convenience wrappers: pack once, run, unpack once.
void bitplane_gas_run3(Lattice3& lat, std::int64_t generations,
                       std::int64_t t0 = 0, unsigned threads = 1,
                       std::int64_t band_grain_words = 0,
                       lgca::PlaneRunHooks* hooks = nullptr);
void bitplane_gas_run_tiled3(Lattice3& lat, std::int64_t generations,
                             std::int64_t t0, unsigned threads,
                             const lgca::TemporalTiling& tiling,
                             lgca::PlaneRunHooks* hooks = nullptr);

/// The engine-facing flattened form: `lat` must be the {nx, ny*nz}
/// byte view of an {nx, ny, nz} volume (lgca3d::flat_extent), boundary
/// mapped through to_boundary2.
void bitplane_gas_run3(lgca::SiteLattice& lat, Extent3 extent,
                       std::int64_t generations, std::int64_t t0 = 0,
                       unsigned threads = 1,
                       std::int64_t band_grain_words = 0,
                       lgca::PlaneRunHooks* hooks = nullptr);
void bitplane_gas_run_tiled3(lgca::SiteLattice& lat, Extent3 extent,
                             std::int64_t generations, std::int64_t t0,
                             unsigned threads,
                             const lgca::TemporalTiling& tiling,
                             lgca::PlaneRunHooks* hooks = nullptr);

}  // namespace lattice::lgca3d
