// Three-dimensional lattice gas on the cubic lattice.
//
// The paper notes (§2) that 3-D gases were "just now being formulated"
// (d'Humières–Lallemand–Frisch); its own analysis needs only the
// *dimension* of the lattice (window storage grows from Θ(L) to Θ(L²),
// the pebbling bound weakens from S^(1/2) to S^(1/3)). We therefore
// build the minimal 3-D substrate that exercises those code paths: six
// unit velocities (±x, ±y, ±z), one bit each, with a collision-
// saturated table built from (mass, momentum) equivalence classes —
// exactly conserving, bijective (semi-detailed balance), and maximally
// collisional. Like HPP in 2-D it is not isotropic enough for real
// hydrodynamics (that needs FCHC's 24 velocities), which we document
// rather than paper over; the architecture and I/O results depend only
// on d. Bit 7 marks obstacles (bounce-back), bit 6 is unused.

#pragma once

#include <array>
#include <cstdint>

#include "lattice/common/error.hpp"

namespace lattice::lgca3d {

using Site = std::uint8_t;

inline constexpr int kChannels = 6;  // +x, -x, +y, -y, +z, -z
inline constexpr Site kObstacleBit = Site{1u << 7};
inline constexpr Site kMovingMask = Site{0x3f};

constexpr Site channel_bit(int dir) noexcept {
  return static_cast<Site>(1u << dir);
}
constexpr int opposite_dir(int dir) noexcept { return dir ^ 1; }
constexpr bool is_obstacle(Site s) noexcept {
  return (s & kObstacleBit) != 0;
}

/// Integer 3-D coordinate / momentum vector.
struct Vec3 {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;
  friend constexpr bool operator==(Vec3, Vec3) = default;
  constexpr Vec3 operator+(Vec3 o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }
};

/// Unit velocity of channel `dir`.
constexpr Vec3 velocity_of(int dir) noexcept {
  constexpr std::array<Vec3, kChannels> v = {{{1, 0, 0},
                                              {-1, 0, 0},
                                              {0, 1, 0},
                                              {0, -1, 0},
                                              {0, 0, 1},
                                              {0, 0, -1}}};
  return v[static_cast<std::size_t>(dir)];
}

/// The tabulated 3-D gas model (singleton).
class Gas3Model {
 public:
  static const Gas3Model& get();

  /// Post-collision state; two chirality variants (mutually inverse).
  Site collide(Site in, int variant) const noexcept {
    return table_[static_cast<std::size_t>(variant & 1)][in];
  }

  int mass(Site s) const noexcept;
  Vec3 momentum(Site s) const noexcept;
  Site reflect(Site s) const noexcept;

  /// Deterministic chirality for a site update.
  static int chirality(std::int64_t x, std::int64_t y, std::int64_t z,
                       std::int64_t t) noexcept;

 private:
  Gas3Model();
  std::array<std::array<Site, 256>, 2> table_{};
};

}  // namespace lattice::lgca3d
