// 3-D site lattice, golden reference updater, and observables.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/lgca3d/gas3.hpp"

namespace lattice::lgca3d {

/// 3-D box extent.
struct Extent3 {
  std::int64_t nx = 0;
  std::int64_t ny = 0;
  std::int64_t nz = 0;
  friend constexpr bool operator==(Extent3, Extent3) = default;
  constexpr std::int64_t volume() const noexcept { return nx * ny * nz; }
  constexpr bool contains(Vec3 c) const noexcept {
    return c.x >= 0 && c.x < nx && c.y >= 0 && c.y < ny && c.z >= 0 &&
           c.z < nz;
  }
};

/// Largest per-axis extent any 3-D container accepts — the same bound
/// checkpoint headers enforce, so a lattice that can be built can also
/// be serialized.
inline constexpr std::int64_t kMaxSide3 = std::int64_t{1} << 24;
/// Largest accepted nx*ny*nz. Far above anything that fits in memory,
/// but small enough that volume() and every byte-size computation
/// derived from it stay clear of int64 overflow.
inline constexpr std::int64_t kMaxSites3 = std::int64_t{1} << 42;

/// Throws lattice::Error unless 0 < nx,ny,nz <= kMaxSide3 and the
/// volume is <= kMaxSites3 (checked without overflowing). Every 3-D
/// container validates through this, so a hostile extent — negative,
/// zero, or overflow-prone — fails with a typed error before any
/// allocation is attempted.
void validate_extent3(Extent3 extent);

enum class Boundary3 { Null, Periodic };

class Lattice3 {
 public:
  Lattice3() = default;
  Lattice3(Extent3 extent, Boundary3 boundary);

  Extent3 extent() const noexcept { return extent_; }
  Boundary3 boundary() const noexcept { return boundary_; }
  std::size_t site_count() const noexcept { return data_.size(); }

  /// Raster index: x fastest, then y, then z.
  std::size_t index(Vec3 c) const noexcept {
    return static_cast<std::size_t>((c.z * extent_.ny + c.y) * extent_.nx +
                                    c.x);
  }

  Site get(Vec3 c) const noexcept;  // boundary-resolved read
  Site& at(Vec3 c) { return data_[index(c)]; }
  Site at(Vec3 c) const { return data_[index(c)]; }
  Site& operator[](std::size_t i) { return data_[i]; }
  Site operator[](std::size_t i) const { return data_[i]; }

  /// Raw raster storage ((z*ny + y)*nx + x) — byte-compatible with a
  /// 2-D SiteLattice of extent {nx, ny*nz}, which is how the engine
  /// carries 3-D state through its dimension-blind layers.
  Site* data() noexcept { return data_.data(); }
  const Site* data() const noexcept { return data_.data(); }

  friend bool operator==(const Lattice3& a, const Lattice3& b) {
    return a.boundary_ == b.boundary_ && a.extent_ == b.extent_ &&
           a.data_ == b.data_;
  }

 private:
  Extent3 extent_{};
  Boundary3 boundary_ = Boundary3::Null;
  std::vector<Site> data_;
};

/// Exact invariants.
struct Invariants3 {
  std::int64_t mass = 0;
  Vec3 momentum;
  std::int64_t obstacles = 0;
  friend bool operator==(const Invariants3&, const Invariants3&) = default;
};

Invariants3 measure_invariants(const Lattice3& lat);

/// One full gather-and-collide generation (golden reference).
void reference_step(Lattice3& lat, std::int64_t t);
void reference_run(Lattice3& lat, std::int64_t generations,
                   std::int64_t t0 = 0);

/// Exactly undo one generation (microscopic reversibility; needs
/// periodic boundaries). `t` is the time passed to the forward step.
void reference_unstep(Lattice3& lat, std::int64_t t);

/// Fill non-obstacle sites with per-channel density (seeded).
void fill_random(Lattice3& lat, double density, std::uint64_t seed);

}  // namespace lattice::lgca3d
