#include "lattice/lgca/init.hpp"

#include <algorithm>
#include <cmath>

#include "lattice/common/rng.hpp"

namespace lattice::lgca {

namespace {

/// Occupation probabilities must be actual probabilities; NaN would
/// silently sail through the clamped branches below.
void require_probability(double p, const char* what) {
  LATTICE_REQUIRE(std::isfinite(p) && p >= 0.0 && p <= 1.0,
                  std::string(what) + " must be a probability in [0, 1]");
}

}  // namespace

void fill_random(SiteLattice& lat, const GasModel& model, double density,
                 std::uint64_t seed, double rest_density) {
  require_probability(density, "density");
  require_probability(rest_density, "rest_density");
  Pcg32 rng(seed);
  const Extent e = lat.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      Site& s = lat.at({x, y});
      if (is_obstacle(s)) continue;
      Site v = 0;
      for (int d = 0; d < model.channels(); ++d) {
        if (rng.next_bool(density)) v |= channel_bit(d);
      }
      if (model.has_rest_particle() && rng.next_bool(rest_density)) {
        v |= kRestBit;
      }
      s = v;
    }
  }
}

void fill_flow(SiteLattice& lat, const GasModel& model, double density,
               double bias, std::uint64_t seed) {
  require_probability(density, "density");
  LATTICE_REQUIRE(std::isfinite(bias) && std::abs(bias) <= 1.0,
                  "bias must be finite and in [-1, 1]");
  Pcg32 rng(seed);
  const Extent e = lat.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      Site& s = lat.at({x, y});
      if (is_obstacle(s)) continue;
      Site v = 0;
      for (int d = 0; d < model.channels(); ++d) {
        const int px = momentum_of(model.topology(), d).px;
        double p = density;
        if (px > 0) p += bias;
        if (px < 0) p -= bias;
        p = std::clamp(p, 0.0, 1.0);
        if (rng.next_bool(p)) v |= channel_bit(d);
      }
      s = v;
    }
  }
}

void fill_shear(SiteLattice& lat, const GasModel& model, double density,
                double bias, std::uint64_t seed) {
  require_probability(density, "density");
  LATTICE_REQUIRE(std::isfinite(bias) && std::abs(bias) <= 1.0,
                  "bias must be finite and in [-1, 1]");
  Pcg32 rng(seed);
  const Extent e = lat.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    const double row_bias =
        bias * std::sin(2.0 * 3.141592653589793 * static_cast<double>(y) /
                        static_cast<double>(e.height));
    for (std::int64_t x = 0; x < e.width; ++x) {
      Site& s = lat.at({x, y});
      if (is_obstacle(s)) continue;
      Site v = 0;
      for (int d = 0; d < model.channels(); ++d) {
        const int px = momentum_of(model.topology(), d).px;
        double p = density;
        if (px > 0) p += row_bias;
        if (px < 0) p -= row_bias;
        p = std::clamp(p, 0.0, 1.0);
        if (rng.next_bool(p)) v |= channel_bit(d);
      }
      s = v;
    }
  }
}

void add_obstacle_rect(SiteLattice& lat, Coord lo, Coord hi) {
  LATTICE_REQUIRE(lo.x <= hi.x && lo.y <= hi.y,
                  "obstacle rect corners must satisfy lo <= hi");
  const Extent e = lat.extent();
  for (std::int64_t y = std::max<std::int64_t>(lo.y, 0);
       y <= std::min(hi.y, e.height - 1); ++y) {
    for (std::int64_t x = std::max<std::int64_t>(lo.x, 0);
         x <= std::min(hi.x, e.width - 1); ++x) {
      lat.at({x, y}) = kObstacleBit;
    }
  }
}

void add_obstacle_disk(SiteLattice& lat, double cx, double cy, double r) {
  // A negative radius would still mark the disk (r² is positive); an
  // infinite center would mark nothing or everything. Reject both.
  LATTICE_REQUIRE(std::isfinite(cx) && std::isfinite(cy),
                  "obstacle disk center must be finite");
  LATTICE_REQUIRE(std::isfinite(r) && r >= 0.0,
                  "obstacle disk radius must be finite and >= 0");
  const Extent e = lat.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      if (dx * dx + dy * dy <= r * r) lat.at({x, y}) = kObstacleBit;
    }
  }
}

void add_channel_walls(SiteLattice& lat) {
  const Extent e = lat.extent();
  add_obstacle_rect(lat, {0, 0}, {e.width - 1, 0});
  add_obstacle_rect(lat, {0, e.height - 1}, {e.width - 1, e.height - 1});
}

void add_pressure_pulse(SiteLattice& lat, const GasModel& model,
                        std::int64_t w) {
  LATTICE_REQUIRE(w >= 1, "pressure pulse width must be >= 1");
  const Extent e = lat.extent();
  const std::int64_t x0 = e.width / 2 - w / 2;
  const std::int64_t y0 = e.height / 2 - w / 2;
  Site all = 0;
  for (int d = 0; d < model.channels(); ++d) all |= channel_bit(d);
  for (std::int64_t y = y0; y < y0 + w; ++y) {
    for (std::int64_t x = x0; x < x0 + w; ++x) {
      if (lat.extent().contains({x, y}) && !is_obstacle(lat.at({x, y}))) {
        lat.at({x, y}) = all;
      }
    }
  }
}

}  // namespace lattice::lgca
