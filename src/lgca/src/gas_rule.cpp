#include "lattice/lgca/gas_rule.hpp"

namespace lattice::lgca {

Site GasRule::apply(const Window& w, const SiteContext& ctx) const {
  const Topology topo = model_.topology();
  const bool odd_row = (ctx.y & 1) != 0;
  const Site center = w.center();

  // Gather incoming particles. A particle arriving on channel i left the
  // neighbor that lies in direction opposite(i), where it occupied
  // channel i.
  Site in = 0;
  for (int i = 0; i < model_.channels(); ++i) {
    const Offset o = neighbor_offset(topo, opposite_dir(topo, i), odd_row);
    if (has_channel(w.at(o.dx, o.dy), i)) in |= channel_bit(i);
  }
  if (model_.has_rest_particle()) in |= static_cast<Site>(center & kRestBit);
  in |= static_cast<Site>(center & kObstacleBit);

  return model_.collide(in, GasModel::chirality(ctx.x, ctx.y, ctx.t));
}

void gas_unstep(SiteLattice& lat, const GasRule& rule, std::int64_t t) {
  LATTICE_REQUIRE(lat.boundary() == Boundary::Periodic,
                  "exact reversal needs periodic boundaries");
  const GasModel& model = rule.model();
  const Topology topo = model.topology();
  const Extent e = lat.extent();

  // 1. Invert the collision at every site: the opposite chirality
  //    variant is the inverse permutation.
  SiteLattice gathered(e, Boundary::Periodic);
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const int v = GasModel::chirality(x, y, t);
      gathered.at({x, y}) = model.collide(lat.at({x, y}), 1 - v);
    }
  }

  // 2. Un-stream: the particle that was gathered into channel i at
  //    site a came from a's opposite(i)-neighbor, so send it back.
  SiteLattice out(e, Boundary::Periodic);
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Coord b{x, y};
      Site s = 0;
      for (int i = 0; i < model.channels(); ++i) {
        const Coord a = neighbor_coord(topo, b, i);
        if (has_channel(gathered.get(a), i)) s |= channel_bit(i);
      }
      const Site center = gathered.at(b);
      if (model.has_rest_particle()) s |= static_cast<Site>(center & kRestBit);
      s |= static_cast<Site>(center & kObstacleBit);
      out.at(b) = s;
    }
  }
  lat = out;
}

}  // namespace lattice::lgca
