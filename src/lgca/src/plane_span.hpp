// Internal declarations shared by the span-kernel translation units.
//
// The scalar spans are the semantic definition every vector variant
// must match bit-for-bit; they also finish the tail of every vector
// span (the masked last word plus any sub-vector remainder), so the
// vector TUs link against them. The per-ISA getters return nullptr
// when the variant was not compiled in (see LATTICE_SIMD in
// src/lgca/CMakeLists.txt) — plane_simd.cpp turns that plus runtime
// CPU detection into the public dispatch table.

#pragma once

#include <cstdint>

#include "lattice/lgca/plane_simd.hpp"

namespace lattice::lgca::detail {

void hpp_span_scalar(const std::uint64_t* const src[6], const int dx[6],
                     const std::uint64_t* obst, std::uint64_t* const out[8],
                     std::int64_t k0, std::int64_t k1, std::int64_t last_word,
                     std::uint64_t tail_mask);

void fhp1_span_scalar(const std::uint64_t* const src[6], const int dx[6],
                      const std::uint64_t* rest, const std::uint64_t* obst,
                      std::uint64_t* const out[8], std::int64_t k0,
                      std::int64_t k1, std::int64_t y, std::int64_t t,
                      std::int64_t last_word, std::uint64_t tail_mask);

void fhp2_span_scalar(const std::uint64_t* const src[6], const int dx[6],
                      const std::uint64_t* rest, const std::uint64_t* obst,
                      std::uint64_t* const out[8], std::int64_t k0,
                      std::int64_t k1, std::int64_t y, std::int64_t t,
                      std::int64_t last_word, std::uint64_t tail_mask);

const PlaneSpanOps& plane_span_ops_scalar() noexcept;

// Defined in plane_simd_avx2.cpp / plane_simd_avx512.cpp when those
// TUs are in the build; resolved through the LATTICE_HAVE_*_KERNELS
// macros in plane_simd.cpp.
const PlaneSpanOps& plane_span_ops_avx2() noexcept;
const PlaneSpanOps& plane_span_ops_avx512() noexcept;

}  // namespace lattice::lgca::detail
