// Runtime SIMD dispatch (see plane_simd.hpp for the contract).
//
// Build-time availability arrives as LATTICE_HAVE_AVX2_KERNELS /
// LATTICE_HAVE_AVX512_KERNELS macros from src/lgca/CMakeLists.txt;
// runtime capability comes from __builtin_cpu_supports on x86. The
// active level is a process-wide atomic read once per update_rows
// call — cheap, and switchable between runs for tests and benches.

#include "lattice/lgca/plane_simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "lattice/common/error.hpp"
#include "plane_span.hpp"

namespace lattice::lgca {

namespace {

bool cpu_has(SimdLevel level) noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  switch (level) {
    case SimdLevel::Scalar: return true;
    case SimdLevel::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case SimdLevel::Avx512: return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return level == SimdLevel::Scalar;
#endif
}

const PlaneSpanOps* compiled_ops(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar: return &detail::plane_span_ops_scalar();
    case SimdLevel::Avx2:
#if defined(LATTICE_HAVE_AVX2_KERNELS)
      return &detail::plane_span_ops_avx2();
#else
      return nullptr;
#endif
    case SimdLevel::Avx512:
#if defined(LATTICE_HAVE_AVX512_KERNELS)
      return &detail::plane_span_ops_avx512();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// LATTICE_SIMD env override, parsed once: an explicit supported level
/// pins the start level below best; anything else leaves best alone.
SimdLevel initial_level() noexcept {
  SimdLevel best = SimdLevel::Scalar;
  for (const SimdLevel level : {SimdLevel::Avx512, SimdLevel::Avx2}) {
    if (simd_supported(level)) {
      best = level;
      break;
    }
  }
  const char* env = std::getenv("LATTICE_SIMD");
  if (env != nullptr) {
    const SimdLevel named =
        std::strcmp(env, "scalar") == 0    ? SimdLevel::Scalar
        : std::strcmp(env, "avx2") == 0    ? SimdLevel::Avx2
        : std::strcmp(env, "avx512") == 0  ? SimdLevel::Avx512
                                           : best;
    if (simd_supported(named)) return named;
  }
  return best;
}

std::atomic<int>& active_level_storage() noexcept {
  static std::atomic<int> active{static_cast<int>(initial_level())};
  return active;
}

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar: return "scalar64";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx512: return "avx512";
  }
  return "unknown";
}

bool simd_compiled(SimdLevel level) noexcept {
  return compiled_ops(level) != nullptr;
}

bool simd_supported(SimdLevel level) noexcept {
  return simd_compiled(level) && cpu_has(level);
}

SimdLevel simd_best() noexcept { return initial_level(); }

const PlaneSpanOps& plane_span_ops(SimdLevel level) {
  LATTICE_REQUIRE(simd_compiled(level),
                  "SIMD kernel variant not compiled into this binary "
                  "(see the LATTICE_SIMD CMake option)");
  LATTICE_REQUIRE(cpu_has(level),
                  "SIMD kernel variant not supported by this CPU");
  return *compiled_ops(level);
}

SimdLevel plane_simd_active() noexcept {
  return static_cast<SimdLevel>(
      active_level_storage().load(std::memory_order_relaxed));
}

SimdLevel plane_simd_set_active(SimdLevel level) {
  LATTICE_REQUIRE(simd_supported(level),
                  "cannot activate a SIMD level that is not compiled in "
                  "and supported by this CPU");
  return static_cast<SimdLevel>(active_level_storage().exchange(
      static_cast<int>(level), std::memory_order_relaxed));
}

}  // namespace lattice::lgca
