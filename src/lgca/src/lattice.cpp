#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {

SiteLattice::SiteLattice(Extent extent, Boundary boundary)
    : boundary_(boundary), grid_(extent) {
  LATTICE_REQUIRE(extent.width > 0 && extent.height > 0,
                  "SiteLattice extent must be positive");
}

Site SiteLattice::get(Coord c) const noexcept {
  const Extent e = grid_.extent();
  if (e.contains(c)) return grid_.at(c);
  if (boundary_ == Boundary::Null) return 0;
  return grid_.at({wrap(c.x, e.width), wrap(c.y, e.height)});
}

Window SiteLattice::window_at(Coord c) const noexcept {
  Window w;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      w.at(dx, dy) = get({c.x + dx, c.y + dy});
    }
  }
  return w;
}

}  // namespace lattice::lgca
