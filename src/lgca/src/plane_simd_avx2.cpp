// AVX2 instantiation of the vector span kernels: 4 lattice words (256
// sites) per op. This TU is compiled with -mavx2 (see the LATTICE_SIMD
// logic in src/lgca/CMakeLists.txt) and must only be *called* behind
// the runtime CPU check in plane_simd.cpp.

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/plane_lattice.hpp"
#include "plane_span.hpp"

namespace {

struct VOps {
  using V = __m256i;
  static constexpr int kLanes = 4;
  static V loadu(const std::uint64_t* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(std::uint64_t* p, V v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V zero() noexcept { return _mm256_setzero_si256(); }
  static V vand(V a, V b) noexcept { return _mm256_and_si256(a, b); }
  static V vor(V a, V b) noexcept { return _mm256_or_si256(a, b); }
  static V vandnot(V a, V b) noexcept { return _mm256_andnot_si256(a, b); }
  static V vnot(V a) noexcept {
    return _mm256_xor_si256(a, _mm256_set1_epi64x(-1));
  }
  static V shr1(V a) noexcept { return _mm256_srli_epi64(a, 1); }
  static V shl63(V a) noexcept { return _mm256_slli_epi64(a, 63); }
  static V shl1(V a) noexcept { return _mm256_slli_epi64(a, 1); }
  static V shr63(V a) noexcept { return _mm256_srli_epi64(a, 63); }
};

}  // namespace

#include "plane_span_x86.inc"

namespace lattice::lgca::detail {

const PlaneSpanOps& plane_span_ops_avx2() noexcept {
  static const PlaneSpanOps ops{"avx2", 256, &vec_hpp_span, &vec_fhp1_span,
                                &vec_fhp2_span, &vec_popcount_words};
  return ops;
}

}  // namespace lattice::lgca::detail
