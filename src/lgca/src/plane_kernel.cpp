#include "lattice/lgca/plane_kernel.hpp"

#include <algorithm>
#include <bit>
#include <functional>

#include "lattice/common/thread_pool.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/geometry.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace lattice::lgca {

namespace {

// Planes 0..5 are the moving channels; these two carry the center bits.
constexpr int kRestPlane = 6;
constexpr int kObstaclePlane = 7;

/// Gathered word for a row shifted by dx ∈ {-1, 0, +1}: bit j of the
/// result is bit j+dx of the (halo-padded) source row. The guard words
/// at indices -1 and words_per_row() make this branch-free on word
/// boundaries; `dx` is loop-invariant so the branches predict.
inline std::uint64_t shift_gather(const std::uint64_t* row, std::int64_t k,
                                  int dx) noexcept {
  if (dx == 0) return row[k];
  if (dx > 0) return (row[k] >> 1) | (row[k + 1] << 63);
  return (row[k] << 1) | (row[k - 1] >> 63);
}

/// HPP collision over one word span. The only rule is the head-on
/// exchange {E,W} ↔ {N,S} on exactly-pair states — chirality-free (the
/// model's two variant tables are identical). Gathered states carry no
/// rest or extra bits (the byte path's center mask is obstacle-only for
/// HPP), so planes 4..6 of the output are zero.
void hpp_span(const std::uint64_t* const src[6], const int dx[6],
              const std::uint64_t* obst, std::uint64_t* const out[8],
              std::int64_t k0, std::int64_t k1, std::int64_t last_word,
              std::uint64_t tail_mask) {
  for (std::int64_t k = k0; k < k1; ++k) {
    const std::uint64_t m =
        k == last_word ? tail_mask : ~std::uint64_t{0};
    const std::uint64_t a0 = shift_gather(src[0], k, dx[0]);
    const std::uint64_t a1 = shift_gather(src[1], k, dx[1]);
    const std::uint64_t a2 = shift_gather(src[2], k, dx[2]);
    const std::uint64_t a3 = shift_gather(src[3], k, dx[3]);
    const std::uint64_t o = obst[k];
    const std::uint64_t ew = a0 & a2 & ~a1 & ~a3;  // exactly {E, W}
    const std::uint64_t ns = a1 & a3 & ~a0 & ~a2;  // exactly {N, S}
    const std::uint64_t b0 = (a0 & ~ew) | ns;
    const std::uint64_t b1 = (a1 & ~ns) | ew;
    const std::uint64_t b2 = (a2 & ~ew) | ns;
    const std::uint64_t b3 = (a3 & ~ns) | ew;
    // Obstacle sites bounce every gathered particle straight back.
    out[0][k] = ((b0 & ~o) | (a2 & o)) & m;
    out[1][k] = ((b1 & ~o) | (a3 & o)) & m;
    out[2][k] = ((b2 & ~o) | (a0 & o)) & m;
    out[3][k] = ((b3 & ~o) | (a1 & o)) & m;
    out[4][k] = 0;
    out[5][k] = 0;
    out[6][k] = 0;
    out[7][k] = o & m;
  }
}

/// FHP collision over one word span; HasRest distinguishes FHP-II from
/// FHP-I (whose rest plane is never gathered, so it reads as zero and
/// the rest rules vanish). Every FHP rule fires on an *exact* moving
/// configuration, so the detectors below are mutually exclusive and the
/// update is "clear the channels at event sites, OR in the gains":
///
///   p_i   exactly {i, i+3}          → {i±1, i+3±1}, sign from chirality
///   tr0   exactly {0,2,4} (no rest) → {1,3,5}   (chirality-free)
///   tr1   exactly {1,3,5} (no rest) → {0,2,4}
///   ann_j rest + exactly {j}        → {j-1, j+1}, rest cleared
///   cre_j exactly {j, j+2}, no rest → {j+1}, rest set
template <bool HasRest>
void fhp_span(const std::uint64_t* const src[6], const int dx[6],
              const std::uint64_t* rest, const std::uint64_t* obst,
              std::uint64_t* const out[8], std::int64_t k0, std::int64_t k1,
              std::int64_t y, std::int64_t t, std::int64_t last_word,
              std::uint64_t tail_mask) {
  for (std::int64_t k = k0; k < k1; ++k) {
    const std::uint64_t m =
        k == last_word ? tail_mask : ~std::uint64_t{0};
    const std::uint64_t a0 = shift_gather(src[0], k, dx[0]);
    const std::uint64_t a1 = shift_gather(src[1], k, dx[1]);
    const std::uint64_t a2 = shift_gather(src[2], k, dx[2]);
    const std::uint64_t a3 = shift_gather(src[3], k, dx[3]);
    const std::uint64_t a4 = shift_gather(src[4], k, dx[4]);
    const std::uint64_t a5 = shift_gather(src[5], k, dx[5]);
    const std::uint64_t r = HasRest ? rest[k] : 0;
    const std::uint64_t o = obst[k];
    const std::uint64_t n0 = ~a0, n1 = ~a1, n2 = ~a2;
    const std::uint64_t n3 = ~a3, n4 = ~a4, n5 = ~a5;

    // Head-on pairs (rest particles spectate).
    const std::uint64_t p0 = a0 & a3 & n1 & n2 & n4 & n5;
    const std::uint64_t p1 = a1 & a4 & n0 & n2 & n3 & n5;
    const std::uint64_t p2 = a2 & a5 & n0 & n1 & n3 & n4;
    // Symmetric triples; a rest particle blocks them in FHP-II.
    const std::uint64_t rok = HasRest ? ~r : ~std::uint64_t{0};
    const std::uint64_t tr0 = a0 & a2 & a4 & n1 & n3 & n5 & rok;
    const std::uint64_t tr1 = a1 & a3 & a5 & n0 & n2 & n4 & rok;

    std::uint64_t ann0 = 0, ann1 = 0, ann2 = 0, ann3 = 0, ann4 = 0,
                  ann5 = 0, cre0 = 0, cre1 = 0, cre2 = 0, cre3 = 0,
                  cre4 = 0, cre5 = 0, ann_any = 0, cre_any = 0;
    if constexpr (HasRest) {
      ann0 = r & a0 & n1 & n2 & n3 & n4 & n5;
      ann1 = r & a1 & n0 & n2 & n3 & n4 & n5;
      ann2 = r & a2 & n0 & n1 & n3 & n4 & n5;
      ann3 = r & a3 & n0 & n1 & n2 & n4 & n5;
      ann4 = r & a4 & n0 & n1 & n2 & n3 & n5;
      ann5 = r & a5 & n0 & n1 & n2 & n3 & n4;
      ann_any = ann0 | ann1 | ann2 | ann3 | ann4 | ann5;
      const std::uint64_t nr = ~r;
      cre0 = nr & a0 & a2 & n1 & n3 & n4 & n5;
      cre1 = nr & a1 & a3 & n0 & n2 & n4 & n5;
      cre2 = nr & a2 & a4 & n0 & n1 & n3 & n5;
      cre3 = nr & a3 & a5 & n0 & n1 & n2 & n4;
      cre4 = nr & a4 & a0 & n1 & n2 & n3 & n5;
      cre5 = nr & a5 & a1 & n0 & n2 & n3 & n4;
      cre_any = cre0 | cre1 | cre2 | cre3 | cre4 | cre5;
    }

    const std::uint64_t ev =
        p0 | p1 | p2 | tr0 | tr1 | ann_any | cre_any;
    // Chirality is consumed only where a head-on pair fired, and pairs
    // are rare (an *exact* two-particle configuration), so hash the set
    // bits of p0|p1|p2 individually instead of all 64 lanes — the
    // kernel's only per-site work, now paid per event.
    const std::uint64_t pe = p0 | p1 | p2;
    std::uint64_t C = 0;
    for (std::uint64_t bits = pe; bits != 0; bits &= bits - 1) {
      const int j = std::countr_zero(bits);
      C |= static_cast<std::uint64_t>(GasModel::chirality(
               k * PlaneLattice::kWordBits + j, y, t))
           << j;
    }
    // Variant 0 rotates a pair +60° (p_i → {i+1, i+4}), variant 1
    // rotates −60° (p_i → {i-1, i+2}); C picks per site.
    const std::uint64_t pA0 = p0 & ~C, pB0 = p0 & C;
    const std::uint64_t pA1 = p1 & ~C, pB1 = p1 & C;
    const std::uint64_t pA2 = p2 & ~C, pB2 = p2 & C;

    std::uint64_t b0 = (a0 & ~ev) | pA2 | pB1 | tr1;
    std::uint64_t b1 = (a1 & ~ev) | pA0 | pB2 | tr0;
    std::uint64_t b2 = (a2 & ~ev) | pA1 | pB0 | tr1;
    std::uint64_t b3 = (a3 & ~ev) | pA2 | pB1 | tr0;
    std::uint64_t b4 = (a4 & ~ev) | pA0 | pB2 | tr1;
    std::uint64_t b5 = (a5 & ~ev) | pA1 | pB0 | tr0;
    std::uint64_t br = 0;
    if constexpr (HasRest) {
      b0 |= ann5 | ann1 | cre5;
      b1 |= ann0 | ann2 | cre0;
      b2 |= ann1 | ann3 | cre1;
      b3 |= ann2 | ann4 | cre2;
      b4 |= ann3 | ann5 | cre3;
      b5 |= ann4 | ann0 | cre4;
      br = (r & ~ann_any) | cre_any;
    }

    // Obstacle sites bounce every gathered particle straight back and
    // keep their rest bit.
    out[0][k] = ((b0 & ~o) | (a3 & o)) & m;
    out[1][k] = ((b1 & ~o) | (a4 & o)) & m;
    out[2][k] = ((b2 & ~o) | (a5 & o)) & m;
    out[3][k] = ((b3 & ~o) | (a0 & o)) & m;
    out[4][k] = ((b4 & ~o) | (a1 & o)) & m;
    out[5][k] = ((b5 & ~o) | (a2 & o)) & m;
    out[6][k] = HasRest ? ((br & ~o) | (r & o)) & m : 0;
    out[7][k] = o & m;
  }
}

}  // namespace

PlaneKernel::PlaneKernel(GasKind kind)
    : model_(&GasModel::get(kind)), channels_(model_->channels()) {
  const Topology topo = model_->topology();
  for (int parity = 0; parity < 2; ++parity) {
    for (int i = 0; i < channels_; ++i) {
      const Offset o =
          neighbor_offset(topo, opposite_dir(topo, i), parity == 1);
      taps_[static_cast<std::size_t>(parity)][static_cast<std::size_t>(i)] = {
          static_cast<std::int8_t>(o.dx), static_cast<std::int8_t>(o.dy)};
    }
  }
}

bool PlaneKernel::supports(GasKind kind) noexcept {
  return kind == GasKind::HPP || kind == GasKind::FHP_I ||
         kind == GasKind::FHP_II;
}

const PlaneKernel& PlaneKernel::get(GasKind kind) {
  LATTICE_REQUIRE(supports(kind),
                  "no bit-plane kernel for this gas: FHP-III's collision "
                  "table is a class permutation with no compact boolean "
                  "form — use the byte-LUT path");
  static const PlaneKernel hpp(GasKind::HPP);
  static const PlaneKernel fhp1(GasKind::FHP_I);
  static const PlaneKernel fhp2(GasKind::FHP_II);
  switch (kind) {
    case GasKind::HPP: return hpp;
    case GasKind::FHP_I: return fhp1;
    default: return fhp2;
  }
}

const PlaneKernel* PlaneKernel::try_get(const Rule& rule) {
  const auto* gas = dynamic_cast<const GasRule*>(&rule);
  if (gas == nullptr || !supports(gas->model().kind())) return nullptr;
  return &get(gas->model().kind());
}

void PlaneKernel::update_row_span(PlaneLattice& next, const PlaneLattice& cur,
                                  std::int64_t t, std::int64_t y,
                                  std::int64_t k0, std::int64_t k1) const {
  const Extent e = cur.extent();
  const bool periodic = cur.boundary() == Boundary::Periodic;
  const auto& taps = taps_[(y & 1) ? 1 : 0];
  const std::uint64_t* src[6] = {};
  int dx[6] = {};
  for (int i = 0; i < channels_; ++i) {
    const Tap tap = taps[static_cast<std::size_t>(i)];
    dx[i] = tap.dx;
    std::int64_t ny = y + tap.dy;
    if (ny < 0 || ny >= e.height) {
      if (!periodic) {
        src[i] = cur.zero_row();
        continue;
      }
      ny = wrap(ny, e.height);
    }
    src[i] = cur.row(i, ny);
  }
  const std::uint64_t* rest = cur.row(kRestPlane, y);
  const std::uint64_t* obst = cur.row(kObstaclePlane, y);
  std::uint64_t* out[PlaneLattice::kPlanes];
  for (int p = 0; p < PlaneLattice::kPlanes; ++p) out[p] = next.row(p, y);
  const std::int64_t last = cur.words_per_row() - 1;
  const std::uint64_t tail = cur.tail_mask();
  switch (model_->kind()) {
    case GasKind::HPP:
      hpp_span(src, dx, obst, out, k0, k1, last, tail);
      break;
    case GasKind::FHP_I:
      fhp_span<false>(src, dx, rest, obst, out, k0, k1, y, t, last, tail);
      break;
    case GasKind::FHP_II:
      fhp_span<true>(src, dx, rest, obst, out, k0, k1, y, t, last, tail);
      break;
    case GasKind::FHP_III:
      LATTICE_ASSERT(false, "PlaneKernel cannot run FHP-III");
  }
}

void PlaneKernel::update_rows(PlaneLattice& next, const PlaneLattice& cur,
                              std::int64_t t, std::int64_t y0, std::int64_t y1,
                              std::int64_t tile_words) const {
  LATTICE_ASSERT(next.extent() == cur.extent() &&
                     next.boundary() == cur.boundary(),
                 "update_rows: source and destination lattices differ");
  LATTICE_ASSERT(y0 >= 0 && y1 <= cur.extent().height,
                 "update_rows out of range");
  const std::int64_t words = cur.words_per_row();
  if (words == 0 || y0 >= y1) return;
  // Default tile: 4 row strips (3 source + 1 destination) × 8 planes ×
  // 1024 words × 8 B ≈ 256 KiB — sized for a typical L2, so wide
  // lattices are swept in cache-resident column strips.
  const std::int64_t tile = tile_words > 0 ? tile_words : 1024;
  for (std::int64_t kk = 0; kk < words; kk += tile) {
    const std::int64_t kend = std::min(words, kk + tile);
    for (std::int64_t y = y0; y < y1; ++y) {
      update_row_span(next, cur, t, y, kk, kend);
    }
  }
}

void plane_gas_run(PlaneLattice& lat, const PlaneKernel& kernel,
                   std::int64_t generations, std::int64_t t0,
                   unsigned threads) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  const Extent e = lat.extent();
  if (e.area() == 0 || generations == 0) return;
  const std::int64_t bands = std::min<std::int64_t>(threads, e.height);
  const std::int64_t rows_per = (e.height + bands - 1) / bands;

  static const obs::MetricsRegistry::Id sites_id =
      obs::counter_id("bitplane.sites");
  static const obs::MetricsRegistry::Id words_id =
      obs::counter_id("bitplane.words");
  static const obs::MetricsRegistry::Id band_id =
      obs::histogram_id("bitplane.band_ns");

  PlaneLattice next(e, lat.boundary());
  std::int64_t t = t0;
  const std::function<void(std::int64_t)> band = [&](std::int64_t b) {
    const obs::ScopedTimer timer(band_id);
    const std::int64_t y0 = b * rows_per;
    const std::int64_t y1 = std::min(e.height, y0 + rows_per);
    kernel.update_rows(next, lat, t, y0, y1);
  };
  for (std::int64_t g = 0; g < generations; ++g) {
    t = t0 + g;
    // Serial halo fill: O(height × planes) words, negligible next to
    // the O(height × words × planes) update it unblocks.
    lat.prepare_shift_halo();
    if (bands == 1) {
      const obs::ScopedTimer timer(band_id);
      kernel.update_rows(next, lat, t, 0, e.height);
    } else {
      common::ThreadPool::shared().for_each_task(bands, band);
    }
    std::swap(lat, next);
  }
  obs::count(sites_id, e.area() * generations);
  // Words touched per generation: every payload word of every plane is
  // read and written once by the funnel-shift/collide sweep.
  obs::count(words_id, generations * e.height * lat.words_per_row() *
                           PlaneLattice::kPlanes);
}

void bitplane_gas_run(SiteLattice& lat, const PlaneKernel& kernel,
                      std::int64_t generations, std::int64_t t0,
                      unsigned threads) {
  static const obs::MetricsRegistry::Id pack_id =
      obs::histogram_id("bitplane.pack_ns");
  static const obs::MetricsRegistry::Id update_id =
      obs::histogram_id("bitplane.update_ns");
  static const obs::MetricsRegistry::Id unpack_id =
      obs::histogram_id("bitplane.unpack_ns");

  PlaneLattice planes;
  {
    const obs::ScopedTimer pack_timer(pack_id);
    const obs::TraceSpan pack_span("bitplane.pack");
    planes = PlaneLattice(lat);
  }

  {
    obs::ScopedTimer update_timer(update_id);
    const obs::TraceSpan update_span("bitplane.update");
    plane_gas_run(planes, kernel, generations, t0, threads);
  }

  const obs::ScopedTimer unpack_timer(unpack_id);
  const obs::TraceSpan unpack_span("bitplane.unpack");
  planes.unpack(lat);
}

}  // namespace lattice::lgca
