#include "lattice/lgca/plane_kernel.hpp"

#include <algorithm>
#include <barrier>
#include <functional>

#include "lattice/common/thread_pool.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/geometry.hpp"
#include "lattice/lgca/plane_simd.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"
#include "plane_span.hpp"

namespace lattice::lgca {

namespace {

// Planes 0..5 are the moving channels; these two carry the center bits.
constexpr int kRestPlane = 6;
constexpr int kObstaclePlane = 7;

}  // namespace

PlaneKernel::PlaneKernel(GasKind kind)
    : model_(&GasModel::get(kind)), channels_(model_->channels()) {
  const Topology topo = model_->topology();
  for (int parity = 0; parity < 2; ++parity) {
    for (int i = 0; i < channels_; ++i) {
      const Offset o =
          neighbor_offset(topo, opposite_dir(topo, i), parity == 1);
      taps_[static_cast<std::size_t>(parity)][static_cast<std::size_t>(i)] = {
          static_cast<std::int8_t>(o.dx), static_cast<std::int8_t>(o.dy)};
      if (o.dx != 0) halo_ |= 1u << i;
    }
  }
  written_ = (1u << channels_) - 1u;
  if (kind == GasKind::FHP_II) written_ |= 1u << kRestPlane;
}

void PlaneKernel::prime_static_planes(PlaneLattice& lat,
                                      PlaneLattice& next) const {
  LATTICE_ASSERT(next.extent() == lat.extent() &&
                     next.boundary() == lat.boundary(),
                 "prime_static_planes: buffer shapes differ");
  const std::int64_t words = lat.words_per_row();
  if (words == 0) return;
  const std::uint64_t tail = lat.tail_mask();
  for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
    if (((written_ >> p) & 1u) != 0) continue;
    for (std::int64_t y = 0; y < lat.extent().height; ++y) {
      const std::uint64_t* src = lat.row(p, y);
      std::uint64_t* dst = next.row(p, y);
      if (p == kObstaclePlane) {
        for (std::int64_t k = 0; k < words; ++k) dst[k] = src[k];
        dst[words - 1] &= tail;
      } else {
        // Static-zero plane: the update used to clear it every word of
        // every generation; now it is cleared once in both buffers.
        std::uint64_t* mut = lat.row(p, y);
        for (std::int64_t k = 0; k < words; ++k) mut[k] = 0;
        for (std::int64_t k = 0; k < words; ++k) dst[k] = 0;
      }
    }
  }
}

bool PlaneKernel::supports(GasKind kind) noexcept {
  return kind == GasKind::HPP || kind == GasKind::FHP_I ||
         kind == GasKind::FHP_II;
}

const PlaneKernel& PlaneKernel::get(GasKind kind) {
  LATTICE_REQUIRE(supports(kind),
                  "no bit-plane kernel for this gas: FHP-III's collision "
                  "table is a class permutation with no compact boolean "
                  "form — use the byte-LUT path");
  static const PlaneKernel hpp(GasKind::HPP);
  static const PlaneKernel fhp1(GasKind::FHP_I);
  static const PlaneKernel fhp2(GasKind::FHP_II);
  switch (kind) {
    case GasKind::HPP: return hpp;
    case GasKind::FHP_I: return fhp1;
    default: return fhp2;
  }
}

const PlaneKernel* PlaneKernel::try_get(const Rule& rule) {
  const auto* gas = dynamic_cast<const GasRule*>(&rule);
  if (gas == nullptr || !supports(gas->model().kind())) return nullptr;
  return &get(gas->model().kind());
}

// The shared row core. `sem_y` is the semantic lattice row: it selects
// the hex-parity tap set and feeds the chirality hash, while `src_y` /
// `dst_y` are storage rows in `cur` / `next` — identical in the plain
// sweep, offset in the temporal-tile scratch strips. Source rows
// resolve against cur's own height/boundary, so a Null-boundary scratch
// strip whose storage range is clamped to the real lattice edge reads
// the same zero rows the golden updater would.
void PlaneKernel::update_row_span(PlaneLattice& next, std::int64_t dst_y,
                                  const PlaneLattice& cur, std::int64_t src_y,
                                  std::int64_t sem_y, const PlaneSpanOps& ops,
                                  std::int64_t t, std::int64_t k0,
                                  std::int64_t k1) const {
  const Extent e = cur.extent();
  const bool periodic = cur.boundary() == Boundary::Periodic;
  const auto& taps = taps_[(sem_y & 1) ? 1 : 0];
  const std::uint64_t* src[6] = {};
  int dx[6] = {};
  for (int i = 0; i < channels_; ++i) {
    const Tap tap = taps[static_cast<std::size_t>(i)];
    dx[i] = tap.dx;
    std::int64_t ny = src_y + tap.dy;
    if (ny < 0 || ny >= e.height) {
      if (!periodic) {
        src[i] = cur.zero_row();
        continue;
      }
      ny = wrap(ny, e.height);
    }
    src[i] = cur.row(i, ny);
  }
  const std::uint64_t* rest = cur.row(kRestPlane, src_y);
  const std::uint64_t* obst = cur.row(kObstaclePlane, src_y);
  std::uint64_t* out[PlaneLattice::kPlanes];
  for (int p = 0; p < PlaneLattice::kPlanes; ++p) out[p] = next.row(p, dst_y);
  const std::int64_t last = cur.words_per_row() - 1;
  const std::uint64_t tail = cur.tail_mask();
  switch (model_->kind()) {
    case GasKind::HPP:
      ops.hpp(src, dx, obst, out, k0, k1, last, tail);
      break;
    case GasKind::FHP_I:
      ops.fhp1(src, dx, rest, obst, out, k0, k1, sem_y, t, last, tail);
      break;
    case GasKind::FHP_II:
      ops.fhp2(src, dx, rest, obst, out, k0, k1, sem_y, t, last, tail);
      break;
    case GasKind::FHP_III:
      LATTICE_ASSERT(false, "PlaneKernel cannot run FHP-III");
  }
}

void PlaneKernel::update_row_window(PlaneLattice& next, std::int64_t dst_y,
                                    const PlaneLattice& cur,
                                    std::int64_t src_y, std::int64_t sem_y,
                                    std::int64_t t) const {
  LATTICE_ASSERT(next.words_per_row() == cur.words_per_row(),
                 "update_row_window: row widths differ");
  LATTICE_ASSERT(dst_y >= 0 && dst_y < next.extent().height &&
                     src_y >= 0 && src_y < cur.extent().height,
                 "update_row_window out of range");
  const std::int64_t words = cur.words_per_row();
  if (words == 0) return;
  const PlaneSpanOps& ops = plane_span_ops(plane_simd_active());
  update_row_span(next, dst_y, cur, src_y, sem_y, ops, t, 0, words);
}

void PlaneKernel::update_rows(PlaneLattice& next, const PlaneLattice& cur,
                              std::int64_t t, std::int64_t y0, std::int64_t y1,
                              std::int64_t tile_words) const {
  LATTICE_ASSERT(next.extent() == cur.extent() &&
                     next.boundary() == cur.boundary(),
                 "update_rows: source and destination lattices differ");
  LATTICE_ASSERT(y0 >= 0 && y1 <= cur.extent().height,
                 "update_rows out of range");
  const std::int64_t words = cur.words_per_row();
  if (words == 0 || y0 >= y1) return;
  // One dispatch-table read per call: the span loops themselves are
  // ISA-resolved function pointers (scalar / AVX2 / AVX-512, all
  // bit-identical — see plane_simd.hpp).
  const PlaneSpanOps& ops = plane_span_ops(plane_simd_active());
  // Default tile: 4 row strips (3 source + 1 destination) × 8 planes ×
  // 1024 words × 8 B ≈ 256 KiB — sized for a typical L2, so wide
  // lattices are swept in cache-resident column strips.
  const std::int64_t tile = tile_words > 0 ? tile_words : 1024;
  for (std::int64_t kk = 0; kk < words; kk += tile) {
    const std::int64_t kend = std::min(words, kk + tile);
    for (std::int64_t y = y0; y < y1; ++y) {
      update_row_span(next, y, cur, y, y, ops, t, kk, kend);
    }
  }
  // Leave the produced rows halo-ready for the next generation. Doing
  // it here — per band, touching only the shifted planes, with the
  // rows' end words still in cache — replaces what used to be a serial
  // all-plane walk over the whole lattice between generations, which
  // on small rows cost as much as the vectorized sweep itself.
  next.prepare_shift_halo(halo_, y0, y1);
}

namespace {

/// Row-band count for a run: never more bands than requested threads,
/// rows, or pool lanes — and never a band owning less than `grain`
/// payload words of one plane per generation. The grain floor is what
/// keeps thread scaling monotone: for kernels this cheap (a few word
/// ops per 64 sites), a band below it costs more in rendezvous than
/// its update, so small lattices collapse to fewer bands (down to one,
/// which runs inline with zero pool traffic).
std::int64_t plan_bands(std::int64_t height, std::int64_t words,
                        unsigned threads, std::int64_t grain) {
  const std::int64_t work = height * words;  // per plane, per generation
  std::int64_t bands = std::min<std::int64_t>(threads, height);
  bands = std::min(bands, std::max<std::int64_t>(1, work / grain));
  bands = std::min(bands, static_cast<std::int64_t>(
                              common::ThreadPool::shared().max_lanes()));
  return std::max<std::int64_t>(1, bands);
}

}  // namespace

void plane_gas_run(PlaneLattice& lat, const PlaneKernel& kernel,
                   std::int64_t generations, std::int64_t t0,
                   unsigned threads, std::int64_t band_grain_words,
                   PlaneRunHooks* hooks) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  const Extent e = lat.extent();
  if (e.area() == 0 || generations == 0) return;
  const std::int64_t grain =
      band_grain_words > 0 ? band_grain_words : kDefaultBandGrainWords;
  const std::int64_t bands =
      plan_bands(e.height, lat.words_per_row(), threads, grain);

  static const obs::MetricsRegistry::Id sites_id =
      obs::counter_id("bitplane.sites");
  static const obs::MetricsRegistry::Id words_id =
      obs::counter_id("bitplane.words");
  static const obs::MetricsRegistry::Id band_id =
      obs::histogram_id("bitplane.band_ns");
  static const obs::MetricsRegistry::Id bands_id =
      obs::gauge_id("bitplane.bands");
  obs::gauge_set(bands_id, bands);

  PlaneLattice next(e, lat.boundary());
  // One-time run setup: static planes primed in both buffers (the
  // spans only store the dynamic planes), then one halo fill of the
  // generation-0 source for just the shifted planes. Every later
  // generation's halo is written by update_rows itself, band-locally.
  kernel.prime_static_planes(lat, next);
  lat.prepare_shift_halo(kernel.halo_planes(), 0, e.height);
  if (hooks != nullptr) {
    hooks->run_begin(lat, kernel.written_planes(), kernel.halo_planes(), t0);
  }
  if (bands == 1) {
    // Inline path: no pool traffic at all. This is also where the band
    // planner lands whenever the per-generation work is below the grain
    // floor — the fix for fan-out overhead inverting thread scaling.
    for (std::int64_t g = 0; g < generations; ++g) {
      if (hooks != nullptr) hooks->before_rows(lat, t0 + g, 0, e.height);
      {
        const obs::ScopedTimer timer(band_id);
        kernel.update_rows(next, lat, t0 + g, 0, e.height);
      }
      if (hooks != nullptr) hooks->after_rows(next, t0 + g, 0, e.height);
      std::swap(lat, next);
    }
  } else {
    // Banded path: each of `bands` pool lanes owns one static,
    // contiguous row band for the lifetime of the run (cache-resident
    // tiles — a band's rows stay in that core's cache across
    // generations). One std::barrier per generation replaces the old
    // per-generation task-bag rendezvous; with halos written by each
    // band as it produces its rows, the serial completion step is just
    // the buffer swap. With hooks attached, a second barrier separates
    // the (mutating) before_rows phase from the update sweep — a band
    // gathers its neighbors' edge rows, which must not still be under
    // injection; the fault-free path never touches it.
    std::barrier sync(static_cast<std::ptrdiff_t>(bands),
                      [&]() noexcept { std::swap(lat, next); });
    std::barrier<> inject_sync(static_cast<std::ptrdiff_t>(bands));
    const std::int64_t rows_per = (e.height + bands - 1) / bands;
    common::ThreadPool::shared().run_lanes(
        static_cast<unsigned>(bands), [&](unsigned lane) {
          const std::int64_t y0 = static_cast<std::int64_t>(lane) * rows_per;
          const std::int64_t y1 = std::min(e.height, y0 + rows_per);
          for (std::int64_t g = 0; g < generations; ++g) {
            if (hooks != nullptr) {
              hooks->before_rows(lat, t0 + g, y0, y1);
              inject_sync.arrive_and_wait();
            }
            {
              const obs::ScopedTimer timer(band_id);
              kernel.update_rows(next, lat, t0 + g, y0, y1);
            }
            if (hooks != nullptr) hooks->after_rows(next, t0 + g, y0, y1);
            sync.arrive_and_wait();
          }
        });
  }
  obs::count(sites_id, e.area() * generations);
  // Plane words per generation — the capacity measure of the sweep
  // (all 8 planes × rows × words/row). Actual memory traffic is lower:
  // only written_planes() are stored, and static planes are never
  // re-read in full (the obstacle mask is read word-by-word, the
  // static-zero planes not at all).
  obs::count(words_id, generations * e.height * lat.words_per_row() *
                           PlaneLattice::kPlanes);
}

void bitplane_gas_run(SiteLattice& lat, const PlaneKernel& kernel,
                      std::int64_t generations, std::int64_t t0,
                      unsigned threads, std::int64_t band_grain_words,
                      PlaneRunHooks* hooks) {
  static const obs::MetricsRegistry::Id pack_id =
      obs::histogram_id("bitplane.pack_ns");
  static const obs::MetricsRegistry::Id update_id =
      obs::histogram_id("bitplane.update_ns");
  static const obs::MetricsRegistry::Id unpack_id =
      obs::histogram_id("bitplane.unpack_ns");

  PlaneLattice planes;
  {
    const obs::ScopedTimer pack_timer(pack_id);
    const obs::TraceSpan pack_span("bitplane.pack");
    planes = PlaneLattice(lat);
  }

  {
    obs::ScopedTimer update_timer(update_id);
    const obs::TraceSpan update_span("bitplane.update");
    plane_gas_run(planes, kernel, generations, t0, threads,
                  band_grain_words, hooks);
  }

  const obs::ScopedTimer unpack_timer(unpack_id);
  const obs::TraceSpan unpack_span("bitplane.unpack");
  planes.unpack(lat);
}

}  // namespace lattice::lgca
