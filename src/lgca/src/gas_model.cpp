#include "lattice/lgca/gas_model.hpp"

#include <map>
#include <tuple>
#include <vector>

#include "lattice/common/error.hpp"

namespace lattice::lgca {

namespace {

/// Mask of all moving-channel bits for a topology.
constexpr Site moving_mask(Topology t) noexcept {
  return t == Topology::Square4 ? Site{0x0f} : Site{0x3f};
}

/// Rotate every moving particle in `moving` by `steps` direction
/// increments; non-channel bits must be stripped by the caller.
Site rotate_state(Topology t, Site moving, int steps) noexcept {
  Site out = 0;
  for (int d = 0; d < channel_count(t); ++d) {
    if (has_channel(moving, d)) {
      out |= channel_bit(rotate_dir(t, d, steps));
    }
  }
  return out;
}

}  // namespace

std::string_view gas_kind_name(GasKind k) noexcept {
  switch (k) {
    case GasKind::HPP:
      return "HPP";
    case GasKind::FHP_I:
      return "FHP-I";
    case GasKind::FHP_II:
      return "FHP-II";
    case GasKind::FHP_III:
      return "FHP-III";
  }
  return "?";
}

const GasModel& GasModel::get(GasKind kind) {
  static const GasModel hpp{GasKind::HPP};
  static const GasModel fhp1{GasKind::FHP_I};
  static const GasModel fhp2{GasKind::FHP_II};
  static const GasModel fhp3{GasKind::FHP_III};
  switch (kind) {
    case GasKind::HPP:
      return hpp;
    case GasKind::FHP_I:
      return fhp1;
    case GasKind::FHP_II:
      return fhp2;
    case GasKind::FHP_III:
      return fhp3;
  }
  LATTICE_ASSERT(false, "unknown GasKind");
}

GasModel::GasModel(GasKind kind)
    : kind_(kind),
      topology_(kind == GasKind::HPP ? Topology::Square4 : Topology::Hex6),
      has_rest_(kind == GasKind::FHP_II || kind == GasKind::FHP_III) {
  if (kind == GasKind::FHP_III) {
    build_saturated_table();
  } else {
    build_table();
  }
}

std::uint64_t GasModel::chirality_mask64(std::int64_t x0, std::int64_t y,
                                         std::int64_t t) noexcept {
  // Same hash as chirality(), restructured for 64 lanes: the (y, t)
  // contribution is hoisted and the x multiply strength-reduced to a
  // running addition, leaving one 64-bit multiply per lane. This loop
  // is the cost floor of the bit-plane FHP update — everything else in
  // that kernel is word-parallel (see docs/PERFORMANCE.md).
  const std::uint64_t base = static_cast<std::uint64_t>(y) * detail::kChirMixY ^
                             static_cast<std::uint64_t>(t) * detail::kChirMixT;
  std::uint64_t xi = static_cast<std::uint64_t>(x0) * detail::kChirMixX;
  std::uint64_t mask = 0;
  for (int j = 0; j < 64; ++j) {
    std::uint64_t h = xi ^ base;
    h ^= h >> 29;
    h *= detail::kChirFinal;
    h ^= h >> 32;
    mask |= (h & 1u) << j;
    xi += detail::kChirMixX;
  }
  return mask;
}

Momentum GasModel::momentum(Site s) const noexcept {
  Momentum m;
  for (int d = 0; d < channels(); ++d) {
    if (has_channel(s, d)) m = m + momentum_of(topology_, d);
  }
  return m;
}

Site GasModel::reflect(Site s) const noexcept {
  Site out = static_cast<Site>(s & ~moving_mask(topology_));
  for (int d = 0; d < channels(); ++d) {
    if (has_channel(s, d)) {
      out |= channel_bit(opposite_dir(topology_, d));
    }
  }
  return out;
}

void GasModel::build_table() {
  const Site mmask = moving_mask(topology_);
  const int n = channels();

  for (int variant = 0; variant < 2; ++variant) {
    // ±60° (hex) or ±90° (square) rotation for this chirality variant.
    const int rot = variant == 0 ? +1 : -1;
    auto& tab = table_[static_cast<std::size_t>(variant)];

    for (unsigned in = 0; in < 256; ++in) {
      const Site s = static_cast<Site>(in);

      // Obstacle sites bounce every incoming particle straight back and
      // keep the obstacle flag. (Rest particles, if any, stay put.)
      if (is_obstacle(s)) {
        tab[in] = reflect(s);
        continue;
      }

      // Bits above the model's particle bits pass through unchanged so
      // the table is total over all 256 byte values.
      const Site moving = static_cast<Site>(s & mmask);
      const Site rest = static_cast<Site>(s & kRestBit);
      const Site extra = static_cast<Site>(s & ~(mmask | kRestBit));
      Site out_moving = moving;
      Site out_rest = rest;

      if (kind_ == GasKind::HPP) {
        // Single head-on exchange: {E,W} ↔ {N,S}, only when the site
        // holds exactly that pair.
        const Site ew = static_cast<Site>(channel_bit(0) | channel_bit(2));
        const Site ns = static_cast<Site>(channel_bit(1) | channel_bit(3));
        if (moving == ew) out_moving = ns;
        else if (moving == ns) out_moving = ew;
      } else {
        // --- FHP rules (hex) ---
        bool matched = false;

        // Head-on two-body: {i, i+3} rotates ±60°; a rest particle (in
        // FHP-II) may sit by as a spectator.
        for (int i = 0; i < 3 && !matched; ++i) {
          const Site pair =
              static_cast<Site>(channel_bit(i) | channel_bit(i + 3));
          if (moving == pair) {
            out_moving = rotate_state(topology_, pair, rot);
            matched = true;
          }
        }

        // Symmetric three-body: {i, i+2, i+4} rotates 60° (self-inverse
        // as a pair of states; chirality-independent).
        if (!matched) {
          const Site tri0 = static_cast<Site>(channel_bit(0) |
                                              channel_bit(2) | channel_bit(4));
          const Site tri1 = static_cast<Site>(channel_bit(1) |
                                              channel_bit(3) | channel_bit(5));
          // In FHP-II a rest particle blocks the triple collision (it
          // would otherwise collide by the annihilation rule first); in
          // FHP-I bit 6 is inert and ignored.
          const bool rest_clear = !has_rest_ || rest == 0;
          if (moving == tri0 && rest_clear) {
            out_moving = tri1;
            matched = true;
          } else if (moving == tri1 && rest_clear) {
            out_moving = tri0;
            matched = true;
          }
        }

        if (!matched && kind_ == GasKind::FHP_II) {
          // Rest annihilation: rest + p_j → p_{j-1} + p_{j+1}.
          if (rest != 0 && std::popcount(static_cast<unsigned>(moving)) == 1) {
            int j = std::countr_zero(static_cast<unsigned>(moving));
            out_moving = static_cast<Site>(
                channel_bit(rotate_dir(topology_, j, -1)) |
                channel_bit(rotate_dir(topology_, j, +1)));
            out_rest = 0;
            matched = true;
          }
          // Rest creation: p_j + p_{j+2} → rest + p_{j+1}.
          if (!matched && rest == 0 &&
              std::popcount(static_cast<unsigned>(moving)) == 2) {
            for (int j = 0; j < n; ++j) {
              const Site two = static_cast<Site>(
                  channel_bit(j) | channel_bit(rotate_dir(topology_, j, 2)));
              if (moving == two) {
                out_moving = channel_bit(rotate_dir(topology_, j, 1));
                out_rest = kRestBit;
                matched = true;
                break;
              }
            }
          }
        }
      }

      // FHP-I has no rest particle: bit 6 passes through as inert.
      tab[in] = static_cast<Site>(out_moving | out_rest | extra);
    }
  }
}

void GasModel::build_saturated_table() {
  // FHP-III: group the 2^7 particle states into (mass, momentum)
  // equivalence classes and cyclically permute each class — variant 0
  // forward, variant 1 backward. Conservation and bijectivity hold by
  // construction, and every state with a class-mate collides.
  const Site mmask = moving_mask(topology_);
  const Site particle_mask = static_cast<Site>(mmask | kRestBit);

  // Key classes by (mass, px, py) packed into one integer.
  std::map<std::tuple<int, int, int>, std::vector<Site>> classes;
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    if ((s & ~particle_mask) != 0) continue;
    const Momentum m = momentum(s);
    classes[{mass(s), m.px, m.py}].push_back(s);
  }

  std::array<Site, 128> forward{};
  std::array<Site, 128> backward{};
  for (const auto& [key, members] : classes) {
    (void)key;
    const std::size_t n = members.size();
    for (std::size_t i = 0; i < n; ++i) {
      forward[members[i]] = members[(i + 1) % n];
      backward[members[i]] = members[(i + n - 1) % n];
    }
  }

  for (int variant = 0; variant < 2; ++variant) {
    auto& tab = table_[static_cast<std::size_t>(variant)];
    for (unsigned in = 0; in < 256; ++in) {
      const Site s = static_cast<Site>(in);
      if (is_obstacle(s)) {
        tab[in] = reflect(s);
        continue;
      }
      const Site particles = static_cast<Site>(s & particle_mask);
      const Site extra = static_cast<Site>(s & ~particle_mask);
      const Site out =
          variant == 0 ? forward[particles] : backward[particles];
      tab[in] = static_cast<Site>(out | extra);
    }
  }
}

}  // namespace lattice::lgca
