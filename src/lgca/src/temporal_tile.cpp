#include "lattice/lgca/temporal_tile.hpp"

#include <algorithm>
#include <barrier>

#include "lattice/common/error.hpp"
#include "lattice/common/thread_pool.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace lattice::lgca {

namespace {

constexpr int kObstaclePlane = 7;

std::int64_t clamp64(std::int64_t v, std::int64_t lo,
                     std::int64_t hi) noexcept {
  return std::max(lo, std::min(hi, v));
}

/// Scratch-strip storage base for a tile whose output rows are
/// [y0, y1): local row = global (unwrapped) row - base. Under Periodic
/// the windows stay unwrapped (wrap happens per-row when resolving
/// content), so the base is simply the widest window's low edge. Under
/// Null the windows clamp to [0, H], and clamping the base into
/// [0, H - scratch_h] makes the strip's own Null boundary coincide
/// with the lattice edge: a clamped tile's read of global row -1 (or
/// H) lands on local row -1 (or scratch_h) and resolves to the zero
/// row, exactly as the golden updater reads it.
std::int64_t scratch_base(std::int64_t y0, std::int64_t kb, std::int64_t h,
                          std::int64_t scratch_h, bool periodic) noexcept {
  const std::int64_t lo = y0 - (kb - 1);
  return periodic ? lo : clamp64(lo, 0, h - scratch_h);
}

/// One trapezoid: advance output rows [y0, y1) by kb generations, from
/// the committed generation-t lattice `lat` into `next`, with
/// intermediate generations ping-ponging between the scratch strips.
/// Reads only `lat` and the strips, so concurrent tile blocks never
/// race.
void run_plane_tile(PlaneLattice& next, const PlaneLattice& lat,
                    const PlaneKernel& kernel, std::int64_t t,
                    std::int64_t kb, std::int64_t y0, std::int64_t y1,
                    PlaneLattice* s0, PlaneLattice* s1) {
  if (kb == 1) {
    kernel.update_rows(next, lat, t, y0, y1);
    return;
  }
  const Extent e = lat.extent();
  const std::int64_t h = e.height;
  const bool periodic = lat.boundary() == Boundary::Periodic;
  const std::int64_t scratch_h = s0->extent().height;
  const std::int64_t words = lat.words_per_row();
  const std::uint32_t halo = kernel.halo_planes();
  const std::int64_t base = scratch_base(y0, kb, h, scratch_h, periodic);

  // Every step reads the obstacle plane from its *source* center row,
  // so the strips must carry it before any intermediate row is read.
  // It is static for the whole run — copy it once per block.
  for (PlaneLattice* s : {s0, s1}) {
    for (std::int64_t ly = 0; ly < scratch_h; ++ly) {
      const std::int64_t gy = periodic ? wrap(base + ly, h) : base + ly;
      const std::uint64_t* src = lat.row(kObstaclePlane, gy);
      std::copy(src, src + words, s->row(kObstaclePlane, ly));
    }
  }
  // The static-zero planes (unused channels, an absent rest plane) are
  // zero in the strips by construction: allocation zero-fills and the
  // spans never store planes outside written_planes().

  PlaneLattice* cur_s = s0;
  PlaneLattice* dst_s = s1;
  for (std::int64_t g = 1; g <= kb; ++g) {
    std::int64_t lo = y0 - (kb - g);
    std::int64_t hi = y1 + (kb - g);
    if (!periodic) {
      lo = std::max<std::int64_t>(lo, 0);
      hi = std::min(hi, h);
    }
    const PlaneLattice& cur = g == 1 ? lat : *cur_s;
    PlaneLattice& dst = g == kb ? next : *dst_s;
    for (std::int64_t gy = lo; gy < hi; ++gy) {
      const std::int64_t sem = periodic ? wrap(gy, h) : gy;
      const std::int64_t src_y = g == 1 ? sem : gy - base;
      const std::int64_t dst_y = g == kb ? gy : gy - base;
      kernel.update_row_window(dst, dst_y, cur, src_y, sem, t + g - 1);
      if (g < kb) dst.prepare_shift_halo(halo, dst_y, dst_y + 1);
    }
    std::swap(cur_s, dst_s);
  }
  // Leave the committed rows halo-ready, as update_rows does.
  next.prepare_shift_halo(halo, y0, y1);
}

/// Byte-path trapezoid: identical schedule over SiteLattice strips.
/// No obstacle copy and no halo upkeep — the collide table preserves
/// the obstacle/rest bits of every produced row, and the byte spans
/// resolve row/column edges per site.
void run_byte_tile(SiteLattice& next, const SiteLattice& lat,
                   const CollisionLut& lut, std::int64_t t, std::int64_t kb,
                   std::int64_t y0, std::int64_t y1, SiteLattice* s0,
                   SiteLattice* s1) {
  if (kb == 1) {
    lut.update_rows(next, lat, t, y0, y1);
    return;
  }
  const Extent e = lat.extent();
  const std::int64_t h = e.height;
  const bool periodic = lat.boundary() == Boundary::Periodic;
  const std::int64_t scratch_h = s0->extent().height;
  const std::int64_t base = scratch_base(y0, kb, h, scratch_h, periodic);

  SiteLattice* cur_s = s0;
  SiteLattice* dst_s = s1;
  for (std::int64_t g = 1; g <= kb; ++g) {
    std::int64_t lo = y0 - (kb - g);
    std::int64_t hi = y1 + (kb - g);
    if (!periodic) {
      lo = std::max<std::int64_t>(lo, 0);
      hi = std::min(hi, h);
    }
    const SiteLattice& cur = g == 1 ? lat : *cur_s;
    SiteLattice& dst = g == kb ? next : *dst_s;
    for (std::int64_t gy = lo; gy < hi; ++gy) {
      const std::int64_t sem = periodic ? wrap(gy, h) : gy;
      const std::int64_t src_y = g == 1 ? sem : gy - base;
      const std::int64_t dst_y = g == kb ? gy : gy - base;
      lut.update_span_window(dst, dst_y, cur, src_y, sem, t + g - 1);
    }
    std::swap(cur_s, dst_s);
  }
}

/// Balanced contiguous tile range for one lane: never an empty range
/// while lanes <= tiles.
struct TileRange {
  std::int64_t lo;
  std::int64_t hi;
};
TileRange lane_tiles(std::int64_t tiles, unsigned lanes,
                     unsigned lane) noexcept {
  return {tiles * lane / lanes, tiles * (lane + 1) / lanes};
}

struct TiledObs {
  obs::MetricsRegistry::Id sites = obs::counter_id("bitplane.sites");
  obs::MetricsRegistry::Id words = obs::counter_id("bitplane.words");
  obs::MetricsRegistry::Id tile_ns = obs::histogram_id("bitplane.tile_ns");
  obs::MetricsRegistry::Id depth = obs::gauge_id("bitplane.tile_depth");
  obs::MetricsRegistry::Id tiles = obs::gauge_id("bitplane.tiles");
  static const TiledObs& get() {
    static const TiledObs ids;
    return ids;
  }
};

}  // namespace

bool temporal_tiling_feasible(const TemporalTiling& tiling, Extent extent,
                              Boundary boundary) {
  const std::int64_t k = tiling.depth;
  const std::int64_t r = tiling.tile_rows;
  if (k < 2 || r < k) return false;
  const std::int64_t h = extent.height;
  if (h <= 0 || extent.width <= 0) return false;
  if ((h + r - 1) / r < 2) return false;
  const std::int64_t scratch_h = r + 2 * (k - 1);
  if (boundary != Boundary::Periodic && scratch_h > h) return false;
  return true;
}

void plane_gas_run_tiled(PlaneLattice& lat, const PlaneKernel& kernel,
                         std::int64_t generations, std::int64_t t0,
                         unsigned threads, const TemporalTiling& tiling,
                         PlaneRunHooks* hooks) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  const Extent e = lat.extent();
  if (e.area() == 0 || generations == 0) return;
  if (generations < 2 ||
      !temporal_tiling_feasible(tiling, e, lat.boundary())) {
    plane_gas_run(lat, kernel, generations, t0, threads, 0, hooks);
    return;
  }
  const std::int64_t k = tiling.depth;
  const std::int64_t tiles =
      (e.height + tiling.tile_rows - 1) / tiling.tile_rows;
  // Even the tiles out (the last one would otherwise take the
  // remainder): ceil(H / tiles) rows each keeps the spread to one row.
  const std::int64_t tile_rows = (e.height + tiles - 1) / tiles;
  const std::int64_t scratch_h = tiling.tile_rows + 2 * (k - 1);
  const Extent scratch_extent{e.width, scratch_h};
  const unsigned lanes = static_cast<unsigned>(std::min<std::int64_t>(
      std::min<std::int64_t>(threads, tiles),
      common::ThreadPool::shared().max_lanes()));

  const TiledObs& ids = TiledObs::get();
  obs::gauge_set(ids.depth, k);
  obs::gauge_set(ids.tiles, tiles);

  PlaneLattice next(e, lat.boundary());
  kernel.prime_static_planes(lat, next);
  lat.prepare_shift_halo(kernel.halo_planes(), 0, e.height);
  if (hooks != nullptr) {
    hooks->run_begin(lat, kernel.written_planes(), kernel.halo_planes(), t0);
  }

  if (lanes <= 1) {
    PlaneLattice s0(scratch_extent, lat.boundary());
    PlaneLattice s1(scratch_extent, lat.boundary());
    std::int64_t done = 0;
    while (done < generations) {
      const std::int64_t kb = std::min(k, generations - done);
      const std::int64_t t = t0 + done;
      if (hooks != nullptr) hooks->before_rows(lat, t, 0, e.height);
      for (std::int64_t tile = 0; tile < tiles; ++tile) {
        const obs::ScopedTimer timer(ids.tile_ns);
        const std::int64_t y0 = tile * tile_rows;
        const std::int64_t y1 =
            std::min<std::int64_t>(e.height, y0 + tile_rows);
        run_plane_tile(next, lat, kernel, t, kb, y0, y1, &s0, &s1);
      }
      if (hooks != nullptr) hooks->after_rows(next, t + kb - 1, 0, e.height);
      std::swap(lat, next);
      done += kb;
    }
  } else {
    // Tiles of one block are independent, so lanes own balanced
    // contiguous tile ranges with a single barrier per *block* (the
    // plain runner pays one per generation). With hooks attached, a
    // pre/post rendezvous brackets each block so lane 0 can run the
    // serial inject/audit over the full committed lattice while no
    // lane is reading it.
    std::barrier sync(static_cast<std::ptrdiff_t>(lanes),
                      [&]() noexcept { std::swap(lat, next); });
    std::barrier<> hook_sync(static_cast<std::ptrdiff_t>(lanes));
    common::ThreadPool::shared().run_lanes(lanes, [&](unsigned lane) {
      PlaneLattice s0(scratch_extent, lat.boundary());
      PlaneLattice s1(scratch_extent, lat.boundary());
      const TileRange range = lane_tiles(tiles, lanes, lane);
      std::int64_t done = 0;
      while (done < generations) {
        const std::int64_t kb = std::min(k, generations - done);
        const std::int64_t t = t0 + done;
        if (hooks != nullptr) {
          if (lane == 0) hooks->before_rows(lat, t, 0, e.height);
          hook_sync.arrive_and_wait();
        }
        for (std::int64_t tile = range.lo; tile < range.hi; ++tile) {
          const obs::ScopedTimer timer(ids.tile_ns);
          const std::int64_t y0 = tile * tile_rows;
          const std::int64_t y1 =
              std::min<std::int64_t>(e.height, y0 + tile_rows);
          run_plane_tile(next, lat, kernel, t, kb, y0, y1, &s0, &s1);
        }
        if (hooks != nullptr) {
          hook_sync.arrive_and_wait();
          if (lane == 0) hooks->after_rows(next, t + kb - 1, 0, e.height);
        }
        sync.arrive_and_wait();
        done += kb;
      }
    });
  }
  obs::count(ids.sites, e.area() * generations);
  obs::count(ids.words, generations * e.height * lat.words_per_row() *
                            PlaneLattice::kPlanes);
}

void bitplane_gas_run_tiled(SiteLattice& lat, const PlaneKernel& kernel,
                            std::int64_t generations, std::int64_t t0,
                            unsigned threads, const TemporalTiling& tiling,
                            PlaneRunHooks* hooks) {
  static const obs::MetricsRegistry::Id pack_id =
      obs::histogram_id("bitplane.pack_ns");
  static const obs::MetricsRegistry::Id update_id =
      obs::histogram_id("bitplane.update_ns");
  static const obs::MetricsRegistry::Id unpack_id =
      obs::histogram_id("bitplane.unpack_ns");

  PlaneLattice planes;
  {
    const obs::ScopedTimer pack_timer(pack_id);
    const obs::TraceSpan pack_span("bitplane.pack");
    planes = PlaneLattice(lat);
  }

  {
    obs::ScopedTimer update_timer(update_id);
    const obs::TraceSpan update_span("bitplane.update");
    plane_gas_run_tiled(planes, kernel, generations, t0, threads, tiling,
                        hooks);
  }

  const obs::ScopedTimer unpack_timer(unpack_id);
  const obs::TraceSpan unpack_span("bitplane.unpack");
  planes.unpack(lat);
}

void fused_gas_run_tiled(SiteLattice& lat, const CollisionLut& lut,
                         std::int64_t generations, std::int64_t t0,
                         unsigned threads, const TemporalTiling& tiling) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  const Extent e = lat.extent();
  if (e.area() == 0 || generations == 0) return;
  if (generations < 2 ||
      !temporal_tiling_feasible(tiling, e, lat.boundary())) {
    fused_gas_run(lat, lut, generations, t0, threads);
    return;
  }
  const std::int64_t k = tiling.depth;
  const std::int64_t tiles =
      (e.height + tiling.tile_rows - 1) / tiling.tile_rows;
  const std::int64_t tile_rows = (e.height + tiles - 1) / tiles;
  const std::int64_t scratch_h = tiling.tile_rows + 2 * (k - 1);
  const Extent scratch_extent{e.width, scratch_h};
  const unsigned lanes = static_cast<unsigned>(std::min<std::int64_t>(
      std::min<std::int64_t>(threads, tiles),
      common::ThreadPool::shared().max_lanes()));

  static const obs::MetricsRegistry::Id sites_id =
      obs::counter_id("reference.sites");
  const obs::TraceSpan span("reference.fused_run_tiled");

  SiteLattice next(e, lat.boundary());
  const auto run_block = [&](std::int64_t t, std::int64_t kb,
                             std::int64_t tile_lo, std::int64_t tile_hi,
                             SiteLattice* s0, SiteLattice* s1) {
    for (std::int64_t tile = tile_lo; tile < tile_hi; ++tile) {
      const std::int64_t y0 = tile * tile_rows;
      const std::int64_t y1 = std::min<std::int64_t>(e.height, y0 + tile_rows);
      run_byte_tile(next, lat, lut, t, kb, y0, y1, s0, s1);
    }
  };

  if (lanes <= 1) {
    SiteLattice s0(scratch_extent, lat.boundary());
    SiteLattice s1(scratch_extent, lat.boundary());
    std::int64_t done = 0;
    while (done < generations) {
      const std::int64_t kb = std::min(k, generations - done);
      run_block(t0 + done, kb, 0, tiles, &s0, &s1);
      std::swap(lat, next);
      done += kb;
    }
  } else {
    std::barrier sync(static_cast<std::ptrdiff_t>(lanes),
                      [&]() noexcept { std::swap(lat, next); });
    common::ThreadPool::shared().run_lanes(lanes, [&](unsigned lane) {
      SiteLattice s0(scratch_extent, lat.boundary());
      SiteLattice s1(scratch_extent, lat.boundary());
      const TileRange range = lane_tiles(tiles, lanes, lane);
      std::int64_t done = 0;
      while (done < generations) {
        const std::int64_t kb = std::min(k, generations - done);
        run_block(t0 + done, kb, range.lo, range.hi, &s0, &s1);
        sync.arrive_and_wait();
        done += kb;
      }
    });
  }
  obs::count(sites_id, e.area() * generations);
}

}  // namespace lattice::lgca
