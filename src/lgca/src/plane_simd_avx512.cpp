// AVX-512F instantiation of the vector span kernels: 8 lattice words
// (512 sites) per op. Compiled with -mavx512f (see the LATTICE_SIMD
// logic in src/lgca/CMakeLists.txt) and only ever *called* behind the
// runtime CPU check in plane_simd.cpp. Only foundation ops are used —
// 64-bit logic, shifts, unaligned load/store — so avx512f alone is the
// dispatch requirement; the compiler is free to fuse the and/or/not
// chains into vpternlogq.

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/plane_lattice.hpp"
#include "plane_span.hpp"

namespace {

struct VOps {
  using V = __m512i;
  static constexpr int kLanes = 8;
  static V loadu(const std::uint64_t* p) noexcept {
    return _mm512_loadu_si512(p);
  }
  static void storeu(std::uint64_t* p, V v) noexcept {
    _mm512_storeu_si512(p, v);
  }
  static V zero() noexcept { return _mm512_setzero_si512(); }
  // Logic and shifts via the compiler's native vector operators rather
  // than the unmasked intrinsics: GCC 12's avx512fintrin.h routes those
  // through *_mask builtins with an uninitialized pass-through operand,
  // tripping -Wuninitialized; the operator forms emit the same vpternlog
  // / vpsllq / vpsrlq instructions without the header detour.
  static V vand(V a, V b) noexcept {
    return (__m512i)((__v8du)a & (__v8du)b);
  }
  static V vor(V a, V b) noexcept {
    return (__m512i)((__v8du)a | (__v8du)b);
  }
  static V vandnot(V a, V b) noexcept {
    return (__m512i)(~(__v8du)a & (__v8du)b);
  }
  static V vnot(V a) noexcept { return (__m512i)(~(__v8du)a); }
  static V shr1(V a) noexcept { return (__m512i)((__v8du)a >> 1); }
  static V shl63(V a) noexcept { return (__m512i)((__v8du)a << 63); }
  static V shl1(V a) noexcept { return (__m512i)((__v8du)a << 1); }
  static V shr63(V a) noexcept { return (__m512i)((__v8du)a >> 63); }
};

}  // namespace

#include "plane_span_x86.inc"

namespace lattice::lgca::detail {

const PlaneSpanOps& plane_span_ops_avx512() noexcept {
  static const PlaneSpanOps ops{"avx512", 512, &vec_hpp_span, &vec_fhp1_span,
                                &vec_fhp2_span, &vec_popcount_words};
  return ops;
}

}  // namespace lattice::lgca::detail
