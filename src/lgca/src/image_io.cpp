#include "lattice/lgca/image_io.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace lattice::lgca {

void write_density_pgm(std::ostream& os, const SiteLattice& lat,
                       const GasModel& model) {
  const Extent e = lat.extent();
  const int max_mass = model.channels() + (model.has_rest_particle() ? 1 : 0);
  os << "P5\n" << e.width << ' ' << e.height << "\n255\n";
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Site s = lat.at({x, y});
      const int v = is_obstacle(s) ? 255 : model.mass(s) * 255 / max_mass;
      os.put(static_cast<char>(v));
    }
  }
}

void write_raw_pgm(std::ostream& os, const SiteLattice& lat) {
  const Extent e = lat.extent();
  os << "P5\n" << e.width << ' ' << e.height << "\n255\n";
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      os.put(static_cast<char>(lat.at({x, y})));
    }
  }
}

std::string render_flow_ascii(const Grid<FlowCell>& cells) {
  std::ostringstream out;
  const Extent e = cells.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const FlowCell& fc = cells.at({x, y});
      const double mag = std::hypot(fc.ux, fc.uy);
      char glyph = '.';
      if (fc.density <= 1e-9) {
        glyph = ' ';
      } else if (mag > 0.05) {
        // Eight-way arrow by angle.
        static constexpr char kArrows[8] = {'>', '/', '^', '\\',
                                            '<', '/', 'v', '\\'};
        const double ang = std::atan2(-fc.uy, fc.ux);  // grid y is down
        int oct = static_cast<int>(std::lround(ang / (3.14159265358979 / 4)));
        oct = ((oct % 8) + 8) % 8;
        glyph = kArrows[oct];
      }
      out << glyph;
    }
    out << '\n';
  }
  return out.str();
}

std::string render_density_ascii(const SiteLattice& lat,
                                 const GasModel& model) {
  static constexpr std::string_view kRamp = " .:-=+*%@";
  std::ostringstream out;
  const Extent e = lat.extent();
  const int max_mass = model.channels() + (model.has_rest_particle() ? 1 : 0);
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Site s = lat.at({x, y});
      if (is_obstacle(s)) {
        out << '#';
      } else {
        const int idx = model.mass(s) * (static_cast<int>(kRamp.size()) - 1) /
                        max_mass;
        out << kRamp[static_cast<std::size_t>(idx)];
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace lattice::lgca
