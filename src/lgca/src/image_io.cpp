#include "lattice/lgca/image_io.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace lattice::lgca {

namespace {

/// Skip PGM header whitespace and '#' comment lines.
void skip_pgm_separators(std::istream& is) {
  for (;;) {
    int c = is.peek();
    while (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      is.get();
      c = is.peek();
    }
    if (c != '#') return;
    std::string comment;
    std::getline(is, comment);
  }
}

std::int64_t read_pgm_value(std::istream& is, const char* what) {
  skip_pgm_separators(is);
  std::int64_t v = -1;
  is >> v;
  LATTICE_REQUIRE(static_cast<bool>(is),
                  std::string("malformed PGM header: bad or missing ") + what);
  return v;
}

}  // namespace

void write_density_pgm(std::ostream& os, const SiteLattice& lat,
                       const GasModel& model) {
  const Extent e = lat.extent();
  const int max_mass = model.channels() + (model.has_rest_particle() ? 1 : 0);
  os << "P5\n" << e.width << ' ' << e.height << "\n255\n";
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Site s = lat.at({x, y});
      const int v = is_obstacle(s) ? 255 : model.mass(s) * 255 / max_mass;
      os.put(static_cast<char>(v));
    }
  }
}

void write_raw_pgm(std::ostream& os, const SiteLattice& lat) {
  const Extent e = lat.extent();
  os << "P5\n" << e.width << ' ' << e.height << "\n255\n";
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      os.put(static_cast<char>(lat.at({x, y})));
    }
  }
}

SiteLattice read_raw_pgm(std::istream& is, Boundary boundary) {
  std::string magic;
  is >> magic;
  LATTICE_REQUIRE(static_cast<bool>(is) && magic == "P5",
                  "not a binary PGM: missing P5 magic");
  const std::int64_t w = read_pgm_value(is, "width");
  const std::int64_t h = read_pgm_value(is, "height");
  const std::int64_t maxval = read_pgm_value(is, "maxval");
  LATTICE_REQUIRE(w >= 1 && h >= 1, "PGM dimensions must be positive");
  LATTICE_REQUIRE(w <= kMaxPgmDim && h <= kMaxPgmDim,
                  "PGM dimension exceeds the supported maximum");
  LATTICE_REQUIRE(w * h <= kMaxPgmSites,
                  "PGM site count exceeds the supported maximum");
  LATTICE_REQUIRE(maxval == 255, "site PGMs are 8-bit: maxval must be 255");
  // The spec allows exactly one whitespace byte between the header and
  // the pixel raster.
  const int sep = is.get();
  LATTICE_REQUIRE(sep == '\n' || sep == '\r' || sep == ' ' || sep == '\t',
                  "malformed PGM header: raster must follow one whitespace");

  SiteLattice lat({w, h}, boundary);
  std::vector<char> row(static_cast<std::size_t>(w));
  for (std::int64_t y = 0; y < h; ++y) {
    is.read(row.data(), w);
    LATTICE_REQUIRE(is.gcount() == w, "truncated PGM: pixel data ends early");
    for (std::int64_t x = 0; x < w; ++x) {
      lat.at({x, y}) = static_cast<Site>(
          static_cast<unsigned char>(row[static_cast<std::size_t>(x)]));
    }
  }
  return lat;
}

std::string render_flow_ascii(const Grid<FlowCell>& cells) {
  std::ostringstream out;
  const Extent e = cells.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const FlowCell& fc = cells.at({x, y});
      const double mag = std::hypot(fc.ux, fc.uy);
      char glyph = '.';
      if (fc.density <= 1e-9) {
        glyph = ' ';
      } else if (mag > 0.05) {
        // Eight-way arrow by angle.
        static constexpr char kArrows[8] = {'>', '/', '^', '\\',
                                            '<', '/', 'v', '\\'};
        const double ang = std::atan2(-fc.uy, fc.ux);  // grid y is down
        int oct = static_cast<int>(std::lround(ang / (3.14159265358979 / 4)));
        oct = ((oct % 8) + 8) % 8;
        glyph = kArrows[oct];
      }
      out << glyph;
    }
    out << '\n';
  }
  return out.str();
}

std::string render_density_ascii(const SiteLattice& lat,
                                 const GasModel& model) {
  static constexpr std::string_view kRamp = " .:-=+*%@";
  std::ostringstream out;
  const Extent e = lat.extent();
  const int max_mass = model.channels() + (model.has_rest_particle() ? 1 : 0);
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Site s = lat.at({x, y});
      if (is_obstacle(s)) {
        out << '#';
      } else {
        const int idx = model.mass(s) * (static_cast<int>(kRamp.size()) - 1) /
                        max_mass;
        out << kRamp[static_cast<std::size_t>(idx)];
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace lattice::lgca
