#include "lattice/lgca/geometry.hpp"

namespace lattice::lgca {

namespace {

// Square-lattice neighbor offsets, indexed by direction (E, N, W, S).
constexpr std::array<Offset, 4> kSquareOffsets = {{
    {+1, 0},   // E
    {0, -1},   // N
    {-1, 0},   // W
    {0, +1},   // S
}};

// Hex-lattice neighbor offsets for even rows ([dir]) and odd rows
// ([dir]). Odd rows are shifted half a cell right, so their NE/SE
// neighbors sit one column further right than an even row's.
constexpr std::array<Offset, 6> kHexEven = {{
    {+1, 0},    // E
    {0, -1},    // NE
    {-1, -1},   // NW
    {-1, 0},    // W
    {-1, +1},   // SW
    {0, +1},    // SE
}};
constexpr std::array<Offset, 6> kHexOdd = {{
    {+1, 0},    // E
    {+1, -1},   // NE
    {0, -1},    // NW
    {-1, 0},    // W
    {0, +1},    // SW
    {+1, +1},   // SE
}};

constexpr std::array<Momentum, 4> kSquareMomentum = {{
    {2, 0},
    {0, -2},
    {-2, 0},
    {0, 2},
}};

constexpr std::array<Momentum, 6> kHexMomentum = {{
    {2, 0},
    {1, -1},
    {-1, -1},
    {-2, 0},
    {-1, 1},
    {1, 1},
}};

}  // namespace

Offset neighbor_offset(Topology t, int dir, bool odd_row) noexcept {
  if (t == Topology::Square4) return kSquareOffsets[static_cast<std::size_t>(dir)];
  return odd_row ? kHexOdd[static_cast<std::size_t>(dir)]
                 : kHexEven[static_cast<std::size_t>(dir)];
}

Momentum momentum_of(Topology t, int dir) noexcept {
  if (t == Topology::Square4) return kSquareMomentum[static_cast<std::size_t>(dir)];
  return kHexMomentum[static_cast<std::size_t>(dir)];
}

Coord neighbor_coord(Topology t, Coord c, int dir) noexcept {
  const Offset o = neighbor_offset(t, dir, (c.y & 1) != 0);
  return {c.x + o.dx, c.y + o.dy};
}

}  // namespace lattice::lgca
