#include "lattice/lgca/collision_lut.hpp"

#include <algorithm>

#include "lattice/common/thread_pool.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/geometry.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace lattice::lgca {

CollisionLut::CollisionLut(GasKind kind)
    : model_(&GasModel::get(kind)),
      tap_count_(model_->channels()),
      center_mask_(static_cast<Site>(
          kObstacleBit | (model_->has_rest_particle() ? kRestBit : 0))) {
  const Topology topo = model_->topology();
  for (int parity = 0; parity < 2; ++parity) {
    for (int i = 0; i < tap_count_; ++i) {
      const Offset o =
          neighbor_offset(topo, opposite_dir(topo, i), parity == 1);
      taps_[static_cast<std::size_t>(parity)][static_cast<std::size_t>(i)] = {
          static_cast<std::int8_t>(o.dx), static_cast<std::int8_t>(o.dy),
          channel_bit(i)};
    }
  }
  for (int v = 0; v < 2; ++v) {
    for (int s = 0; s < 256; ++s) {
      tables_[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)] =
          model_->collide(static_cast<Site>(s), v);
    }
  }
}

const CollisionLut& CollisionLut::get(GasKind kind) {
  static const CollisionLut hpp(GasKind::HPP);
  static const CollisionLut fhp1(GasKind::FHP_I);
  static const CollisionLut fhp2(GasKind::FHP_II);
  static const CollisionLut fhp3(GasKind::FHP_III);
  switch (kind) {
    case GasKind::HPP: return hpp;
    case GasKind::FHP_I: return fhp1;
    case GasKind::FHP_II: return fhp2;
    case GasKind::FHP_III: return fhp3;
  }
  return fhp2;  // unreachable
}

const CollisionLut* CollisionLut::try_get(const Rule& rule) {
  const auto* gas = dynamic_cast<const GasRule*>(&rule);
  return gas != nullptr ? &get(gas->model().kind()) : nullptr;
}

// The shared row core behind update_span and update_span_window: dst_y
// and src_y are storage rows in next / cur (identical in the plain
// sweep, offset in temporal-tile scratch strips), sem_y the semantic
// lattice row that selects the parity tap set and feeds the chirality
// hash. Source rows resolve against cur's own height and boundary.
void CollisionLut::row_core(SiteLattice& next, std::int64_t dst_y,
                            const SiteLattice& cur, std::int64_t src_y,
                            std::int64_t sem_y, std::int64_t t,
                            std::int64_t x0, std::int64_t x1) const {
  const Extent e = cur.extent();
  const std::int64_t w = e.width;
  const std::int64_t h = e.height;
  if (x0 >= x1) return;
  const bool periodic = cur.boundary() == Boundary::Periodic;
  const auto& taps = taps_[(sem_y & 1) ? 1 : 0];
  const int n = tap_count_;

  // Source row base pointers for dy = -1, 0, +1; nullptr rows read as
  // empty (the null-boundary mask of the window multiplexer).
  const Site* rows[3];
  for (int dy = -1; dy <= 1; ++dy) {
    std::int64_t ny = src_y + dy;
    if (ny < 0 || ny >= h) {
      if (!periodic) {
        rows[dy + 1] = nullptr;
        continue;
      }
      ny = wrap(ny, h);
    }
    rows[dy + 1] = cur.grid().data() + linear_index(e, {0, ny});
  }
  Site* out = next.grid().data() + linear_index(next.extent(), {0, dst_y});

  // Edge columns: per-tap column bounds / wrap checks.
  const auto slow = [&](std::int64_t x) {
    Site in = 0;
    for (int i = 0; i < n; ++i) {
      const Tap tap = taps[static_cast<std::size_t>(i)];
      const Site* row = rows[tap.dy + 1];
      if (row == nullptr) continue;
      std::int64_t nx = x + tap.dx;
      if (nx < 0 || nx >= w) {
        if (!periodic) continue;
        nx = wrap(nx, w);
      }
      in |= static_cast<Site>(row[nx] & tap.bit);
    }
    in |= static_cast<Site>(rows[1][x] & center_mask_);
    out[x] = collide(in, GasModel::chirality(x, sem_y, t));
  };

  const std::int64_t fast0 = std::max<std::int64_t>(x0, 1);
  const std::int64_t fast1 = std::min<std::int64_t>(x1, w - 1);
  for (std::int64_t x = x0; x < std::min(fast0, x1); ++x) slow(x);
  for (std::int64_t x = fast0; x < fast1; ++x) {
    Site in = 0;
    for (int i = 0; i < n; ++i) {
      const Tap tap = taps[static_cast<std::size_t>(i)];
      const Site* row = rows[tap.dy + 1];
      if (row != nullptr) in |= static_cast<Site>(row[x + tap.dx] & tap.bit);
    }
    in |= static_cast<Site>(rows[1][x] & center_mask_);
    out[x] = collide(in, GasModel::chirality(x, sem_y, t));
  }
  for (std::int64_t x = std::max(fast1, x0); x < x1; ++x) slow(x);
}

void CollisionLut::update_span(SiteLattice& next, const SiteLattice& cur,
                               std::int64_t t, std::int64_t y, std::int64_t x0,
                               std::int64_t x1) const {
  LATTICE_ASSERT(y >= 0 && y < cur.extent().height && x0 >= 0 &&
                     x1 <= cur.extent().width,
                 "update_span out of range");
  row_core(next, y, cur, y, y, t, x0, x1);
}

void CollisionLut::update_span_window(SiteLattice& next, std::int64_t dst_y,
                                      const SiteLattice& cur,
                                      std::int64_t src_y, std::int64_t sem_y,
                                      std::int64_t t) const {
  LATTICE_ASSERT(next.extent().width == cur.extent().width,
                 "update_span_window: row widths differ");
  LATTICE_ASSERT(dst_y >= 0 && dst_y < next.extent().height && src_y >= 0 &&
                     src_y < cur.extent().height,
                 "update_span_window out of range");
  row_core(next, dst_y, cur, src_y, sem_y, t, 0, cur.extent().width);
}

void CollisionLut::update_rows(SiteLattice& next, const SiteLattice& cur,
                               std::int64_t t, std::int64_t y0,
                               std::int64_t y1) const {
  for (std::int64_t y = y0; y < y1; ++y) {
    update_span(next, cur, t, y, 0, cur.extent().width);
  }
}

// Chunk-invariance audit: this runner makes NO assumption about where a
// long run is split. The only generation-dependent input is the
// chirality variant, and that is a pure hash of (x, y, t) — not a
// counter or stream state — so running k generations from t0 and then
// k' from t0 + k is bit-identical to k + k' generations from t0, for
// any k (the engine relies on this when chunking by pipeline_depth, and
// FusedGasRun.ChunkingAtAnyBoundaryIsInvariant pins it). Likewise there
// is no row- or word-alignment assumption: bands are plain row ranges,
// and update_span handles arbitrary [x0, x1) column spans with the
// slow-path edges above.
void fused_gas_run(SiteLattice& lat, const CollisionLut& lut,
                   std::int64_t generations, std::int64_t t0,
                   unsigned threads) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  const Extent e = lat.extent();
  if (e.area() == 0) return;
  const std::int64_t bands = std::min<std::int64_t>(threads, e.height);
  const std::int64_t rows_per = (e.height + bands - 1) / bands;

  static const obs::MetricsRegistry::Id sites_id =
      obs::counter_id("reference.sites");
  static const obs::MetricsRegistry::Id band_id =
      obs::histogram_id("reference.band_ns");
  const obs::TraceSpan span("reference.fused_run");

  SiteLattice next(e, lat.boundary());
  std::int64_t t = t0;
  const std::function<void(std::int64_t)> band = [&](std::int64_t b) {
    const obs::ScopedTimer timer(band_id);
    const std::int64_t y0 = b * rows_per;
    const std::int64_t y1 = std::min(e.height, y0 + rows_per);
    lut.update_rows(next, lat, t, y0, y1);
  };
  for (std::int64_t g = 0; g < generations; ++g) {
    t = t0 + g;
    if (bands == 1) {
      const obs::ScopedTimer timer(band_id);
      lut.update_rows(next, lat, t, 0, e.height);
    } else {
      common::ThreadPool::shared().for_each_task(bands, band);
    }
    std::swap(lat, next);
  }
  obs::count(sites_id, e.area() * generations);
}

}  // namespace lattice::lgca
