#include "lattice/lgca/ca_rules.hpp"

#include <algorithm>
#include <array>

namespace lattice::lgca {

Site LifeRule::apply(const Window& w, const SiteContext&) const {
  int live_neighbors = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      live_neighbors += w.at(dx, dy) & 1;
    }
  }
  const bool alive = (w.center() & 1) != 0;
  const bool next = alive ? (live_neighbors == 2 || live_neighbors == 3)
                          : (live_neighbors == 3);
  return next ? Site{1} : Site{0};
}

Site BoxFilterRule::apply(const Window& w, const SiteContext&) const {
  unsigned sum = 0;
  for (const Site s : w.s) sum += s;
  return static_cast<Site>((sum + 4) / 9);  // rounded mean
}

Site MedianFilterRule::apply(const Window& w, const SiteContext&) const {
  std::array<Site, 9> v = w.s;
  std::nth_element(v.begin(), v.begin() + 4, v.end());
  return v[4];
}

Site DiffusionRule::apply(const Window& w, const SiteContext&) const {
  // u' = u + (sum of 4-neighbors - 4u) / 8, clamped to [0, 255].
  const int u = w.center();
  const int lap =
      w.at(1, 0) + w.at(-1, 0) + w.at(0, 1) + w.at(0, -1) - 4 * u;
  const int next = u + (lap >= 0 ? lap / 8 : -((-lap + 7) / 8));
  return static_cast<Site>(std::clamp(next, 0, 255));
}

}  // namespace lattice::lgca
