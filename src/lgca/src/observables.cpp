#include "lattice/lgca/observables.hpp"

#include <cmath>

namespace lattice::lgca {

namespace {

/// Physical position of an array coordinate: odd hex rows sit half a
/// cell to the right.
void physical_pos(Topology t, Coord c, double& x, double& y) {
  x = static_cast<double>(c.x);
  y = static_cast<double>(c.y);
  if (t == Topology::Hex6 && (c.y & 1) != 0) x += 0.5;
}

}  // namespace

Invariants measure_invariants(const SiteLattice& lat, const GasModel& model) {
  Invariants inv;
  const Extent e = lat.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Site s = lat.at({x, y});
      inv.mass += model.mass(s);
      const Momentum m = model.momentum(s);
      inv.px += m.px;
      inv.py += m.py;
      if (is_obstacle(s)) ++inv.obstacles;
    }
  }
  return inv;
}

Grid<FlowCell> coarse_grain(const SiteLattice& lat, const GasModel& model,
                            std::int64_t cell) {
  LATTICE_REQUIRE(cell > 0, "coarse_grain cell size must be positive");
  const Extent e = lat.extent();
  const Extent ce{(e.width + cell - 1) / cell, (e.height + cell - 1) / cell};
  Grid<FlowCell> out(ce);
  Grid<std::int64_t> sites(ce, 0);
  Grid<std::int64_t> mass(ce, 0);
  Grid<std::int64_t> px(ce, 0);
  Grid<std::int64_t> py(ce, 0);

  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Coord cc{x / cell, y / cell};
      const Site s = lat.at({x, y});
      sites.at(cc) += 1;
      mass.at(cc) += model.mass(s);
      const Momentum m = model.momentum(s);
      px.at(cc) += m.px;
      py.at(cc) += m.py;
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    FlowCell& fc = out[i];
    fc.density = sites[i] > 0
                     ? static_cast<double>(mass[i]) / static_cast<double>(sites[i])
                     : 0.0;
    if (mass[i] > 0) {
      fc.ux = static_cast<double>(px[i]) / static_cast<double>(mass[i]);
      fc.uy = static_cast<double>(py[i]) / static_cast<double>(mass[i]);
    }
  }
  return out;
}

SpreadStats measure_spread(const SiteLattice& lat, const GasModel& model,
                           double cx, double cy) {
  SpreadStats st;
  double sum_r2 = 0;
  double sum_r4 = 0;
  double sum_cubic = 0;  // Σ n·(x⁴ − 6x²y² + y⁴) = Σ n·r⁴·cos 4θ
  const Extent e = lat.extent();
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Site s = lat.at({x, y});
      const int n = model.mass(s);
      if (n == 0) continue;
      double px = 0;
      double py = 0;
      physical_pos(model.topology(), {x, y}, px, py);
      // Hex rows are √3/2 apart in physical space.
      if (model.topology() == Topology::Hex6) py *= 0.8660254037844386;
      const double dx = px - cx;
      const double dy = py - cy;
      const double x2 = dx * dx;
      const double y2 = dy * dy;
      const double r2 = x2 + y2;
      sum_r2 += n * r2;
      sum_r4 += n * r2 * r2;
      sum_cubic += n * (x2 * x2 - 6.0 * x2 * y2 + y2 * y2);
      st.particles += n;
    }
  }
  if (st.particles > 0) {
    st.mean_r2 = sum_r2 / static_cast<double>(st.particles);
    if (sum_r4 > 0) st.anisotropy = std::abs(sum_cubic) / sum_r4;
  }
  return st;
}

std::vector<double> momentum_profile_x(const SiteLattice& lat,
                                       const GasModel& model) {
  const Extent e = lat.extent();
  std::vector<double> profile(static_cast<std::size_t>(e.height), 0.0);
  for (std::int64_t y = 0; y < e.height; ++y) {
    double px = 0;
    for (std::int64_t x = 0; x < e.width; ++x) {
      px += model.momentum(lat.at({x, y})).px;
    }
    profile[static_cast<std::size_t>(y)] = px;
  }
  return profile;
}

double sine_mode_amplitude(const std::vector<double>& profile) {
  const auto h = static_cast<double>(profile.size());
  if (profile.empty()) return 0.0;
  double amp = 0;
  for (std::size_t y = 0; y < profile.size(); ++y) {
    amp += profile[y] *
           std::sin(2.0 * 3.141592653589793 * static_cast<double>(y) / h);
  }
  return 2.0 * amp / h;
}

}  // namespace lattice::lgca
