// Scalar (64-bit word) span kernels — the reference form of the
// bit-plane update. The collision comments live here; the AVX2 and
// AVX-512 variants (plane_span_x86.inc) are lane-for-lane transcripts
// of these loops and defer to them for masked tails and sub-vector
// remainders, so this file is the single place the boolean algebra is
// derived and documented.

#include "plane_span.hpp"

#include <bit>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/plane_lattice.hpp"

namespace lattice::lgca::detail {

namespace {

/// Gathered word for a row shifted by dx ∈ {-1, 0, +1}: bit j of the
/// result is bit j+dx of the (halo-padded) source row. The guard words
/// at indices -1 and words_per_row() make this branch-free on word
/// boundaries; `dx` is loop-invariant so the branches predict.
inline std::uint64_t shift_gather(const std::uint64_t* row, std::int64_t k,
                                  int dx) noexcept {
  if (dx == 0) return row[k];
  if (dx > 0) return (row[k] >> 1) | (row[k + 1] << 63);
  return (row[k] << 1) | (row[k - 1] >> 63);
}

/// FHP collision over one word span; HasRest distinguishes FHP-II from
/// FHP-I (whose rest plane is never gathered, so it reads as zero and
/// the rest rules vanish). Every FHP rule fires on an *exact* moving
/// configuration, so the detectors below are mutually exclusive and the
/// update is "clear the channels at event sites, OR in the gains":
///
///   p_i   exactly {i, i+3}          → {i±1, i+3±1}, sign from chirality
///   tr0   exactly {0,2,4} (no rest) → {1,3,5}   (chirality-free)
///   tr1   exactly {1,3,5} (no rest) → {0,2,4}
///   ann_j rest + exactly {j}        → {j-1, j+1}, rest cleared
///   cre_j exactly {j, j+2}, no rest → {j+1}, rest set
template <bool HasRest>
void fhp_span(const std::uint64_t* const src[6], const int dx[6],
              const std::uint64_t* rest, const std::uint64_t* obst,
              std::uint64_t* const out[8], std::int64_t k0, std::int64_t k1,
              std::int64_t y, std::int64_t t, std::int64_t last_word,
              std::uint64_t tail_mask) {
  for (std::int64_t k = k0; k < k1; ++k) {
    const std::uint64_t m =
        k == last_word ? tail_mask : ~std::uint64_t{0};
    const std::uint64_t a0 = shift_gather(src[0], k, dx[0]);
    const std::uint64_t a1 = shift_gather(src[1], k, dx[1]);
    const std::uint64_t a2 = shift_gather(src[2], k, dx[2]);
    const std::uint64_t a3 = shift_gather(src[3], k, dx[3]);
    const std::uint64_t a4 = shift_gather(src[4], k, dx[4]);
    const std::uint64_t a5 = shift_gather(src[5], k, dx[5]);
    const std::uint64_t r = HasRest ? rest[k] : 0;
    const std::uint64_t o = obst[k];
    const std::uint64_t n0 = ~a0, n1 = ~a1, n2 = ~a2;
    const std::uint64_t n3 = ~a3, n4 = ~a4, n5 = ~a5;

    // Head-on pairs (rest particles spectate).
    const std::uint64_t p0 = a0 & a3 & n1 & n2 & n4 & n5;
    const std::uint64_t p1 = a1 & a4 & n0 & n2 & n3 & n5;
    const std::uint64_t p2 = a2 & a5 & n0 & n1 & n3 & n4;
    // Symmetric triples; a rest particle blocks them in FHP-II.
    const std::uint64_t rok = HasRest ? ~r : ~std::uint64_t{0};
    const std::uint64_t tr0 = a0 & a2 & a4 & n1 & n3 & n5 & rok;
    const std::uint64_t tr1 = a1 & a3 & a5 & n0 & n2 & n4 & rok;

    std::uint64_t ann0 = 0, ann1 = 0, ann2 = 0, ann3 = 0, ann4 = 0,
                  ann5 = 0, cre0 = 0, cre1 = 0, cre2 = 0, cre3 = 0,
                  cre4 = 0, cre5 = 0, ann_any = 0, cre_any = 0;
    if constexpr (HasRest) {
      ann0 = r & a0 & n1 & n2 & n3 & n4 & n5;
      ann1 = r & a1 & n0 & n2 & n3 & n4 & n5;
      ann2 = r & a2 & n0 & n1 & n3 & n4 & n5;
      ann3 = r & a3 & n0 & n1 & n2 & n4 & n5;
      ann4 = r & a4 & n0 & n1 & n2 & n3 & n5;
      ann5 = r & a5 & n0 & n1 & n2 & n3 & n4;
      ann_any = ann0 | ann1 | ann2 | ann3 | ann4 | ann5;
      const std::uint64_t nr = ~r;
      cre0 = nr & a0 & a2 & n1 & n3 & n4 & n5;
      cre1 = nr & a1 & a3 & n0 & n2 & n4 & n5;
      cre2 = nr & a2 & a4 & n0 & n1 & n3 & n5;
      cre3 = nr & a3 & a5 & n0 & n1 & n2 & n4;
      cre4 = nr & a4 & a0 & n1 & n2 & n3 & n5;
      cre5 = nr & a5 & a1 & n0 & n2 & n3 & n4;
      cre_any = cre0 | cre1 | cre2 | cre3 | cre4 | cre5;
    }

    const std::uint64_t ev =
        p0 | p1 | p2 | tr0 | tr1 | ann_any | cre_any;
    // Chirality is consumed only where a head-on pair fired, and pairs
    // are rare (an *exact* two-particle configuration), so hash the set
    // bits of p0|p1|p2 individually instead of all 64 lanes — the
    // kernel's only per-site work, now paid per event.
    const std::uint64_t pe = p0 | p1 | p2;
    std::uint64_t C = 0;
    for (std::uint64_t bits = pe; bits != 0; bits &= bits - 1) {
      const int j = std::countr_zero(bits);
      C |= static_cast<std::uint64_t>(GasModel::chirality(
               k * PlaneLattice::kWordBits + j, y, t))
           << j;
    }
    // Variant 0 rotates a pair +60° (p_i → {i+1, i+4}), variant 1
    // rotates −60° (p_i → {i-1, i+2}); C picks per site.
    const std::uint64_t pA0 = p0 & ~C, pB0 = p0 & C;
    const std::uint64_t pA1 = p1 & ~C, pB1 = p1 & C;
    const std::uint64_t pA2 = p2 & ~C, pB2 = p2 & C;

    std::uint64_t b0 = (a0 & ~ev) | pA2 | pB1 | tr1;
    std::uint64_t b1 = (a1 & ~ev) | pA0 | pB2 | tr0;
    std::uint64_t b2 = (a2 & ~ev) | pA1 | pB0 | tr1;
    std::uint64_t b3 = (a3 & ~ev) | pA2 | pB1 | tr0;
    std::uint64_t b4 = (a4 & ~ev) | pA0 | pB2 | tr1;
    std::uint64_t b5 = (a5 & ~ev) | pA1 | pB0 | tr0;
    if constexpr (HasRest) {
      b0 |= ann5 | ann1 | cre5;
      b1 |= ann0 | ann2 | cre0;
      b2 |= ann1 | ann3 | cre1;
      b3 |= ann2 | ann4 | cre2;
      b4 |= ann3 | ann5 | cre3;
      b5 |= ann4 | ann0 | cre4;
    }

    // Obstacle sites bounce every gathered particle straight back and
    // keep their rest bit.
    out[0][k] = ((b0 & ~o) | (a3 & o)) & m;
    out[1][k] = ((b1 & ~o) | (a4 & o)) & m;
    out[2][k] = ((b2 & ~o) | (a5 & o)) & m;
    out[3][k] = ((b3 & ~o) | (a0 & o)) & m;
    out[4][k] = ((b4 & ~o) | (a1 & o)) & m;
    out[5][k] = ((b5 & ~o) | (a2 & o)) & m;
    if constexpr (HasRest) {
      const std::uint64_t br = (r & ~ann_any) | cre_any;
      out[6][k] = ((br & ~o) | (r & o)) & m;
    }
  }
}

}  // namespace

/// HPP collision over one word span. The only rule is the head-on
/// exchange {E,W} ↔ {N,S} on exactly-pair states — chirality-free (the
/// model's two variant tables are identical).
///
/// Every span writes only its gas's *dynamic* planes (the moving
/// channels, plus the rest plane when the gas has rest particles). The
/// static planes — HPP's unused channels 4/5, an absent rest plane,
/// and the obstacle mask — are constants of the run: PlaneKernel::
/// prime_static_planes() establishes them in both buffers once, which
/// for HPP halves the store traffic of the whole update (4 computed
/// planes instead of 8 written per word, per generation).
void hpp_span_scalar(const std::uint64_t* const src[6], const int dx[6],
                     const std::uint64_t* obst, std::uint64_t* const out[8],
                     std::int64_t k0, std::int64_t k1, std::int64_t last_word,
                     std::uint64_t tail_mask) {
  for (std::int64_t k = k0; k < k1; ++k) {
    const std::uint64_t m =
        k == last_word ? tail_mask : ~std::uint64_t{0};
    const std::uint64_t a0 = shift_gather(src[0], k, dx[0]);
    const std::uint64_t a1 = shift_gather(src[1], k, dx[1]);
    const std::uint64_t a2 = shift_gather(src[2], k, dx[2]);
    const std::uint64_t a3 = shift_gather(src[3], k, dx[3]);
    const std::uint64_t o = obst[k];
    const std::uint64_t ew = a0 & a2 & ~a1 & ~a3;  // exactly {E, W}
    const std::uint64_t ns = a1 & a3 & ~a0 & ~a2;  // exactly {N, S}
    const std::uint64_t b0 = (a0 & ~ew) | ns;
    const std::uint64_t b1 = (a1 & ~ns) | ew;
    const std::uint64_t b2 = (a2 & ~ew) | ns;
    const std::uint64_t b3 = (a3 & ~ns) | ew;
    // Obstacle sites bounce every gathered particle straight back.
    out[0][k] = ((b0 & ~o) | (a2 & o)) & m;
    out[1][k] = ((b1 & ~o) | (a3 & o)) & m;
    out[2][k] = ((b2 & ~o) | (a0 & o)) & m;
    out[3][k] = ((b3 & ~o) | (a1 & o)) & m;
  }
}

void fhp1_span_scalar(const std::uint64_t* const src[6], const int dx[6],
                      const std::uint64_t* rest, const std::uint64_t* obst,
                      std::uint64_t* const out[8], std::int64_t k0,
                      std::int64_t k1, std::int64_t y, std::int64_t t,
                      std::int64_t last_word, std::uint64_t tail_mask) {
  fhp_span<false>(src, dx, rest, obst, out, k0, k1, y, t, last_word,
                  tail_mask);
}

void fhp2_span_scalar(const std::uint64_t* const src[6], const int dx[6],
                      const std::uint64_t* rest, const std::uint64_t* obst,
                      std::uint64_t* const out[8], std::int64_t k0,
                      std::int64_t k1, std::int64_t y, std::int64_t t,
                      std::int64_t last_word, std::uint64_t tail_mask) {
  fhp_span<true>(src, dx, rest, obst, out, k0, k1, y, t, last_word,
                 tail_mask);
}

std::uint64_t popcount_words_scalar(const std::uint64_t* words,
                                    std::int64_t n) noexcept {
  std::uint64_t total = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    total += static_cast<std::uint64_t>(std::popcount(words[k]));
  }
  return total;
}

const PlaneSpanOps& plane_span_ops_scalar() noexcept {
  static const PlaneSpanOps ops{"scalar64", 64, &hpp_span_scalar,
                                &fhp1_span_scalar, &fhp2_span_scalar,
                                &popcount_words_scalar};
  return ops;
}

}  // namespace lattice::lgca::detail
