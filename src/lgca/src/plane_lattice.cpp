#include "lattice/lgca/plane_lattice.hpp"

#include <algorithm>

namespace lattice::lgca {

PlaneLattice::PlaneLattice(Extent extent, Boundary boundary)
    : extent_(extent), boundary_(boundary) {
  LATTICE_REQUIRE(extent.width >= 0 && extent.height >= 0,
                  "PlaneLattice extent must be non-negative");
  words_ = (extent.width + kWordBits - 1) / kWordBits;
  // kRowPad leading guard words, then payload + at least one trailing
  // guard, rounded up so the stride stays a multiple of kRowPad and
  // every row's payload begins on a 64-byte boundary.
  stride_ = kRowPad + (words_ + 1 + kRowPad - 1) / kRowPad * kRowPad;
  const int tail = static_cast<int>(extent.width % kWordBits);
  tail_mask_ = tail == 0 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << tail) - 1;
  data_.assign(static_cast<std::size_t>(kPlanes) *
                   static_cast<std::size_t>(extent.height) *
                   static_cast<std::size_t>(stride_),
               0);
  zeros_.assign(static_cast<std::size_t>(stride_), 0);
}

PlaneLattice::PlaneLattice(const SiteLattice& sites)
    : PlaneLattice(sites.extent(), sites.boundary()) {
  pack(sites);
}

void PlaneLattice::pack(const SiteLattice& sites) {
  LATTICE_REQUIRE(sites.extent() == extent_,
                  "pack: byte lattice extent does not match");
  LATTICE_REQUIRE(sites.boundary() == boundary_,
                  "pack: byte lattice boundary mode does not match");
  const std::int64_t w = extent_.width;
  for (std::int64_t y = 0; y < extent_.height; ++y) {
    const Site* src = sites.grid().data() + linear_index(extent_, {0, y});
    std::uint64_t* rows[kPlanes];
    for (int p = 0; p < kPlanes; ++p) {
      rows[p] = row(p, y);
      rows[p][-1] = 0;
      rows[p][words_] = 0;
    }
    for (std::int64_t k = 0; k < words_; ++k) {
      const int n = static_cast<int>(std::min<std::int64_t>(
          kWordBits, w - k * kWordBits));
      std::uint64_t acc[kPlanes] = {};
      for (int j = 0; j < n; ++j) {
        const std::uint64_t s = src[k * kWordBits + j];
        for (int p = 0; p < kPlanes; ++p) {
          acc[p] |= ((s >> p) & 1u) << j;
        }
      }
      for (int p = 0; p < kPlanes; ++p) rows[p][k] = acc[p];
    }
  }
}

void PlaneLattice::unpack(SiteLattice& sites) const {
  LATTICE_REQUIRE(sites.extent() == extent_,
                  "unpack: byte lattice extent does not match");
  const std::int64_t w = extent_.width;
  for (std::int64_t y = 0; y < extent_.height; ++y) {
    Site* dst = sites.grid().data() + linear_index(extent_, {0, y});
    const std::uint64_t* rows[kPlanes];
    for (int p = 0; p < kPlanes; ++p) rows[p] = row(p, y);
    for (std::int64_t k = 0; k < words_; ++k) {
      const int n = static_cast<int>(std::min<std::int64_t>(
          kWordBits, w - k * kWordBits));
      std::uint64_t word[kPlanes];
      for (int p = 0; p < kPlanes; ++p) word[p] = rows[p][k];
      for (int j = 0; j < n; ++j) {
        std::uint64_t s = 0;
        for (int p = 0; p < kPlanes; ++p) {
          s |= ((word[p] >> j) & 1u) << p;
        }
        dst[k * kWordBits + j] = static_cast<Site>(s);
      }
    }
  }
}

SiteLattice PlaneLattice::to_sites() const {
  SiteLattice out(extent_, boundary_);
  unpack(out);
  return out;
}

void PlaneLattice::prepare_shift_halo() {
  prepare_shift_halo((1u << kPlanes) - 1u, 0, extent_.height);
}

void PlaneLattice::prepare_shift_halo(std::uint32_t plane_mask,
                                      std::int64_t y0, std::int64_t y1) {
  if (words_ == 0) return;
  const std::int64_t w = extent_.width;
  const int r = static_cast<int>(w % kWordBits);
  // Bit position of site width-1 inside the last payload word.
  const int hi = static_cast<int>((w - 1) % kWordBits);
  for (int p = 0; p < kPlanes; ++p) {
    if (((plane_mask >> p) & 1u) == 0) continue;
    for (std::int64_t y = y0; y < y1; ++y) {
      std::uint64_t* rp = row(p, y);
      if (boundary_ == Boundary::Null) {
        rp[-1] = 0;
        rp[words_] = 0;
        rp[words_ - 1] &= tail_mask_;
        continue;
      }
      // Periodic: tail bits of the last word continue with the row's
      // first sites, the left guard presents site width-1 at bit 63
      // (only that bit is ever shifted in), the right guard presents
      // site 0 at bit 0. The defensive tail mask makes this idempotent.
      const std::uint64_t first =
          words_ == 1 ? rp[0] & tail_mask_ : rp[0];
      const std::uint64_t last = rp[words_ - 1] & tail_mask_;
      if (r != 0) rp[words_ - 1] = last | (first << r);
      rp[words_] = first;
      rp[-1] = hi == 63 ? last : last << (63 - hi);
    }
  }
}

bool PlaneLattice::get(Coord c, int plane) const noexcept {
  const std::int64_t k = c.x / kWordBits;
  const int j = static_cast<int>(c.x % kWordBits);
  return ((row(plane, c.y)[k] >> j) & 1u) != 0;
}

Site PlaneLattice::site(Coord c) const noexcept {
  std::uint64_t s = 0;
  for (int p = 0; p < kPlanes; ++p) {
    s |= static_cast<std::uint64_t>(get(c, p)) << p;
  }
  return static_cast<Site>(s);
}

void PlaneLattice::set_site(Coord c, Site v) noexcept {
  const std::int64_t k = c.x / kWordBits;
  const int j = static_cast<int>(c.x % kWordBits);
  for (int p = 0; p < kPlanes; ++p) {
    std::uint64_t& word = row(p, c.y)[k];
    word &= ~(std::uint64_t{1} << j);
    word |= static_cast<std::uint64_t>((v >> p) & 1u) << j;
  }
}

bool operator==(const PlaneLattice& a, const PlaneLattice& b) {
  if (a.extent_ != b.extent_ || a.boundary_ != b.boundary_) return false;
  for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
    for (std::int64_t y = 0; y < a.extent_.height; ++y) {
      const std::uint64_t* ra = a.row(p, y);
      const std::uint64_t* rb = b.row(p, y);
      for (std::int64_t k = 0; k < a.words_; ++k) {
        const std::uint64_t mask =
            k == a.words_ - 1 ? a.tail_mask_ : ~std::uint64_t{0};
        if ((ra[k] & mask) != (rb[k] & mask)) return false;
      }
    }
  }
  return true;
}

}  // namespace lattice::lgca
