#include "lattice/lgca/reference.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "lattice/common/thread_pool.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::lgca {

namespace {

obs::MetricsRegistry::Id reference_sites_id() {
  static const obs::MetricsRegistry::Id id =
      obs::counter_id("reference.sites");
  return id;
}

}  // namespace

SiteLattice reference_next(const SiteLattice& lat, const Rule& rule,
                           std::int64_t t) {
  const Extent e = lat.extent();
  SiteLattice out(e, lat.boundary());
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Coord c{x, y};
      out.at(c) = rule.apply(lat.window_at(c), SiteContext{x, y, t});
    }
  }
  return out;
}

void reference_step(SiteLattice& lat, const Rule& rule, std::int64_t t) {
  lat = reference_next(lat, rule, t);
}

void reference_run(SiteLattice& lat, const Rule& rule,
                   std::int64_t generations, std::int64_t t0) {
  for (std::int64_t g = 0; g < generations; ++g) {
    reference_step(lat, rule, t0 + g);
  }
  obs::count(reference_sites_id(), lat.extent().area() * generations);
}

void reference_run_parallel(SiteLattice& lat, const Rule& rule,
                            std::int64_t generations, unsigned threads,
                            std::int64_t t0) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  const Extent e = lat.extent();
  const std::int64_t bands =
      std::min<std::int64_t>(threads, e.height);  // ≤ one band per row
  const std::int64_t rows_per = bands > 0 ? (e.height + bands - 1) / bands : 0;

  SiteLattice next(e, lat.boundary());
  std::int64_t t = t0;
  const auto band_rows = [&](std::int64_t y0, std::int64_t y1) {
    for (std::int64_t y = y0; y < y1; ++y) {
      for (std::int64_t x = 0; x < e.width; ++x) {
        const Coord c{x, y};
        next.at(c) = rule.apply(lat.window_at(c), SiteContext{x, y, t});
      }
    }
  };
  static const obs::MetricsRegistry::Id band_id =
      obs::histogram_id("reference.band_ns");
  const std::function<void(std::int64_t)> band = [&](std::int64_t b) {
    const obs::ScopedTimer timer(band_id);
    const std::int64_t y0 = b * rows_per;
    band_rows(y0, std::min(e.height, y0 + rows_per));
  };
  for (std::int64_t g = 0; g < generations; ++g) {
    t = t0 + g;
    if (bands <= 1) {
      band_rows(0, e.height);  // inline: no pool, no allocation
    } else {
      // Disjoint row bands of the new generation, all reading the
      // immutable old one: any execution order is bit-identical.
      common::ThreadPool::shared().for_each_task(bands, band);
    }
    std::swap(lat, next);
  }
  obs::count(reference_sites_id(), e.area() * generations);
}

}  // namespace lattice::lgca
