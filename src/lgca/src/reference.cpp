#include "lattice/lgca/reference.hpp"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

namespace lattice::lgca {

SiteLattice reference_next(const SiteLattice& lat, const Rule& rule,
                           std::int64_t t) {
  const Extent e = lat.extent();
  SiteLattice out(e, lat.boundary());
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const Coord c{x, y};
      out.at(c) = rule.apply(lat.window_at(c), SiteContext{x, y, t});
    }
  }
  return out;
}

void reference_step(SiteLattice& lat, const Rule& rule, std::int64_t t) {
  lat = reference_next(lat, rule, t);
}

void reference_run(SiteLattice& lat, const Rule& rule,
                   std::int64_t generations, std::int64_t t0) {
  for (std::int64_t g = 0; g < generations; ++g) {
    reference_step(lat, rule, t0 + g);
  }
}

void reference_run_parallel(SiteLattice& lat, const Rule& rule,
                            std::int64_t generations, unsigned threads,
                            std::int64_t t0) {
  LATTICE_REQUIRE(threads >= 1, "need at least one worker thread");
  const Extent e = lat.extent();
  const auto workers =
      std::min<std::int64_t>(threads, e.height);  // ≤ one band per row

  SiteLattice next(e, lat.boundary());
  for (std::int64_t g = 0; g < generations; ++g) {
    const std::int64_t t = t0 + g;
    const SiteLattice& cur = lat;
    auto band = [&](std::int64_t y0, std::int64_t y1) {
      for (std::int64_t y = y0; y < y1; ++y) {
        for (std::int64_t x = 0; x < e.width; ++x) {
          const Coord c{x, y};
          next.at(c) = rule.apply(cur.window_at(c), SiteContext{x, y, t});
        }
      }
    };
    if (workers == 1) {
      band(0, e.height);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      const std::int64_t rows_per = (e.height + workers - 1) / workers;
      for (std::int64_t w = 0; w < workers; ++w) {
        const std::int64_t y0 = w * rows_per;
        const std::int64_t y1 = std::min(e.height, y0 + rows_per);
        if (y0 >= y1) break;
        pool.emplace_back(band, y0, y1);
      }
      for (std::thread& th : pool) th.join();
    }
    std::swap(lat, next);
  }
}

}  // namespace lattice::lgca
