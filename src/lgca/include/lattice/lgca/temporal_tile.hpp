// Temporal (trapezoidal) tiling of the lattice-gas update.
//
// The paper's §7 argument (Theorem 4) is that streaming the lattice
// through the processor once per generation pins the update rate at
// R = B — one update per memory word moved — while a schedule that
// keeps an S-site working set resident and advances it several
// generations before writing back can reach R = O(B·S^(1/d)). This
// header is that schedule in software: split the lattice into row
// tiles sized to the cache, and for each tile compute `depth`
// generations before touching the next one, so the tile's rows are
// read from and written to main memory once per `depth` generations
// instead of once per generation.
//
// The shape of one tile is a trapezoid in (y, t): to produce output
// rows [y0, y1) at generation t+k from committed generation-t state,
// step g (1-based) computes the shrinking window
//   [y0 - (k - g), y1 + (k - g))      (clamped to the lattice under a
//                                      Null boundary, unwrapped under
//                                      Periodic)
// so every row a later step reads was produced one step earlier in the
// same tile. The (k-1)-row skirts overlap the neighboring tiles'
// trapezoids and are recomputed redundantly — the classic overlapped
// "ghost zone" scheme — which makes tiles fully *independent*: any
// tile order, any tile-to-thread assignment, and any thread count give
// bit-identical results, because every tile reads only the committed
// generation-t lattice plus its own intermediates. The recompute tax
// is (depth-1)/tile_rows of the useful row updates (the planner keeps
// it under ~12%); what it buys is the Theorem 4 reuse factor.
//
// Intermediate generations live in two per-worker scratch strips of
// tile_rows + 2(depth-1) rows that ping-pong between steps; only the
// final step writes the real double buffer. Correctness of the
// windowed row update (storage row vs semantic row, hex parity,
// chirality hash, boundary resolution) is documented on
// PlaneKernel::update_row_window / CollisionLut::update_span_window.
// Everything here is bit-identical to plane_gas_run / fused_gas_run
// for every (gas, boundary, SIMD level, thread count, depth) — by the
// induction above, and by the tile-seam sweep in
// tests/test_temporal_tile.cpp.

#pragma once

#include <cstdint>

#include "lattice/lgca/collision_lut.hpp"
#include "lattice/lgca/plane_kernel.hpp"

namespace lattice::lgca {

/// One temporal-blocking decision, as consumed by the tiled drivers.
/// Producing it from a cache model is the job of
/// lattice::core::plan_temporal_tiles (core/tile_plan.hpp); lgca only
/// needs the two numbers.
struct TemporalTiling {
  /// Generations computed per tile visit (k). depth <= 1 means "no
  /// temporal blocking" and the tiled drivers fall back to the plain
  /// sweep.
  std::int64_t depth = 1;
  /// Output rows per tile at the final step. The scratch strips hold
  /// tile_rows + 2*(depth-1) rows each.
  std::int64_t tile_rows = 0;
};

/// Whether the tiled drivers would actually tile this run: depth >= 2,
/// tile_rows >= depth (keeps the recompute tax below 100%), at least
/// two tiles (one tile means the lattice already fits the budget — the
/// plain sweep is strictly better), and, under a Null boundary, a
/// scratch strip no taller than the lattice (so a strip clamps at most
/// one lattice edge). The drivers fall back to the plain sweep when
/// this is false, so callers may pass any TemporalTiling.
bool temporal_tiling_feasible(const TemporalTiling& tiling, Extent extent,
                              Boundary boundary);

/// plane_gas_run with temporal blocking: advance `lat` by `generations`
/// gas steps, computing tiling.depth generations per cache-resident
/// trapezoidal tile. Tiles of one block are independent (redundant
/// seam recompute) and are distributed over up to `threads` pool lanes;
/// one barrier per block (i.e. per depth generations) replaces the
/// plain runner's barrier per generation. `hooks` fire at block
/// granularity — before_rows over the full committed lattice before a
/// block, after_rows after it — so fault injection strikes the
/// DRAM-resident committed state while cache-resident intermediates
/// stay clean, and a detected fault still rolls the whole block back.
/// Bit-identical to plane_gas_run for any tiling.
void plane_gas_run_tiled(PlaneLattice& lat, const PlaneKernel& kernel,
                         std::int64_t generations, std::int64_t t0,
                         unsigned threads, const TemporalTiling& tiling,
                         PlaneRunHooks* hooks = nullptr);

/// Byte-lattice convenience wrapper: pack once, run tiled, unpack once
/// (the bitplane_gas_run counterpart).
void bitplane_gas_run_tiled(SiteLattice& lat, const PlaneKernel& kernel,
                            std::int64_t generations, std::int64_t t0,
                            unsigned threads, const TemporalTiling& tiling,
                            PlaneRunHooks* hooks = nullptr);

/// fused_gas_run with temporal blocking — the byte-LUT path of the
/// reference executor, covering all four gases (including FHP-III,
/// which has no plane kernel). Same trapezoid scheme over SiteLattice
/// scratch strips; the collide table preserves the obstacle and rest
/// bits, so byte scratch rows carry the full site state automatically.
/// Bit-identical to fused_gas_run for any tiling.
void fused_gas_run_tiled(SiteLattice& lat, const CollisionLut& lut,
                         std::int64_t generations, std::int64_t t0,
                         unsigned threads, const TemporalTiling& tiling);

}  // namespace lattice::lgca
