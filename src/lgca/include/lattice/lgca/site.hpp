// Site encoding for lattice-gas cellular automata.
//
// A site is one byte — exactly the D = 8 bits/site the paper's design
// analysis assumes. Bit assignment:
//
//   bits 0..5  moving-particle channels (HPP uses only 0..3)
//   bit  6     rest particle (FHP-II; unused by HPP and FHP-I)
//   bit  7     obstacle flag (static geometry; collisions bounce back)
//
// The same byte doubles as a grayscale pixel for the image-processing
// rules, which is faithful to the paper's framing: the engines are
// generic lattice-update machines, the gas is just the test bed.

#pragma once

#include <bit>
#include <cstdint>

namespace lattice::lgca {

using Site = std::uint8_t;

inline constexpr Site kRestBit = Site{1u << 6};
inline constexpr Site kObstacleBit = Site{1u << 7};
inline constexpr int kSiteBits = 8;

/// Bit mask for moving channel `dir`.
constexpr Site channel_bit(int dir) noexcept {
  return static_cast<Site>(1u << dir);
}

constexpr bool has_channel(Site s, int dir) noexcept {
  return (s & channel_bit(dir)) != 0;
}

constexpr bool has_rest(Site s) noexcept { return (s & kRestBit) != 0; }
constexpr bool is_obstacle(Site s) noexcept { return (s & kObstacleBit) != 0; }

/// Number of particles on the site (moving + rest; obstacle bit excluded).
constexpr int particle_count(Site s) noexcept {
  return std::popcount(static_cast<unsigned>(s & ~kObstacleBit));
}

}  // namespace lattice::lgca
