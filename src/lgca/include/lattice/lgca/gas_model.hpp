// Lattice-gas collision models.
//
// Three classic models are provided, all built as exhaustive 256-entry
// lookup tables so that a site update is one table read — exactly the
// kind of "simple at each lattice point" computation the paper's PEs
// implement in silicon.
//
//   HPP    (Hardy–Pomeau–de Pazzis 1973): square lattice, 4 channels.
//          Single rule: head-on pair {E,W} ↔ {N,S}. Deterministic.
//   FHP-I  (Frisch–Hasslacher–Pomeau 1986): hex lattice, 6 channels.
//          Head-on pairs rotate ±60° (chirality chosen pseudo-randomly)
//          and symmetric triples rotate 60°.
//   FHP-II FHP-I plus a rest particle (bit 6) with rest-spectator
//          head-on collisions and rest creation/annihilation
//          (p_{j} + p_{j+2} ↔ rest + p_{j+1}).
//   FHP-III collision-saturated 7-bit model: the 128 particle states
//          are grouped into (mass, momentum) equivalence classes and
//          each class is cyclically permuted, so *every* state whose
//          class has more than one member collides. This is the
//          maximally collisional gas in the spirit of Frisch et al.'s
//          FHP-III (lowest viscosity); the cyclic construction makes
//          the table a bijection, which is the semi-detailed-balance
//          property equilibrium statistics rest on.
//
// Every rule conserves particle count and (integer) momentum; sites with
// the obstacle bit set reflect all incoming particles (bounce-back).
// Tables come in two chirality variants; callers select per (site, time)
// with a deterministic parity so that pipelined replays of the same
// evolution agree bit-for-bit with the golden reference.

#pragma once

#include <array>
#include <string_view>

#include "lattice/lgca/geometry.hpp"
#include "lattice/lgca/site.hpp"

namespace lattice::lgca {

enum class GasKind { HPP, FHP_I, FHP_II, FHP_III };

std::string_view gas_kind_name(GasKind k) noexcept;

namespace detail {
// Constants of the chirality hash, shared by the scalar per-site form
// (GasModel::chirality) and the packed 64-lane form the bit-plane
// kernel consumes (GasModel::chirality_mask64). Splitmix64-flavored
// multipliers; the two forms must stay bit-identical, which is what
// sharing these constants (and a test) enforces.
inline constexpr std::uint64_t kChirMixX = 0x9e3779b97f4a7c15ULL;
inline constexpr std::uint64_t kChirMixY = 0xc2b2ae3d27d4eb4fULL;
inline constexpr std::uint64_t kChirMixT = 0x165667b19e3779f9ULL;
inline constexpr std::uint64_t kChirFinal = 0xbf58476d1ce4e5b9ULL;
}  // namespace detail

/// A fully tabulated lattice-gas model.
class GasModel {
 public:
  /// Access the (immutable, lazily built) singleton for a model kind.
  static const GasModel& get(GasKind kind);

  GasKind kind() const noexcept { return kind_; }
  Topology topology() const noexcept { return topology_; }
  int channels() const noexcept { return channel_count(topology_); }
  bool has_rest_particle() const noexcept { return has_rest_; }

  /// Post-collision state for input `in`, chirality variant 0 or 1.
  Site collide(Site in, int variant) const noexcept {
    return table_[static_cast<std::size_t>(variant & 1)][in];
  }

  /// Deterministic chirality variant for a site update; a function of
  /// position and time so any replay (pipelined or not) agrees.
  static int chirality(std::int64_t x, std::int64_t y,
                       std::int64_t t) noexcept {
    // Mix the coordinates so the choice is unbiased and not visibly
    // striped; must stay a pure function of (x, y, t).
    std::uint64_t h = static_cast<std::uint64_t>(x) * detail::kChirMixX ^
                      static_cast<std::uint64_t>(y) * detail::kChirMixY ^
                      static_cast<std::uint64_t>(t) * detail::kChirMixT;
    h ^= h >> 29;
    h *= detail::kChirFinal;
    h ^= h >> 32;
    return static_cast<int>(h & 1);
  }

  /// Chirality variants of 64 consecutive row sites packed into one
  /// word: bit j == chirality(x0 + j, y, t). This is the word-parallel
  /// form the bit-plane kernel selects collision variants with; a test
  /// pins it lane-for-lane to the scalar form above.
  static std::uint64_t chirality_mask64(std::int64_t x0, std::int64_t y,
                                        std::int64_t t) noexcept;

  /// Particle count of a site state (excludes obstacle bit).
  int mass(Site s) const noexcept { return particle_count(s); }

  /// Integer momentum of a site state (rest particle carries none).
  Momentum momentum(Site s) const noexcept;

  /// Reflect every moving particle into its opposite channel.
  Site reflect(Site s) const noexcept;

 private:
  explicit GasModel(GasKind kind);
  void build_table();
  void build_saturated_table();

  GasKind kind_;
  Topology topology_;
  bool has_rest_;
  std::array<std::array<Site, 256>, 2> table_{};
};

}  // namespace lattice::lgca
