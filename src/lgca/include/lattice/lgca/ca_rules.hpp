// Non-gas lattice rules.
//
// The paper motivates lattice engines with "numerical solution of
// differential equations, iterative image processing, and cellular
// automata" (§1). These rules exercise the same engine/architecture
// machinery on those workloads:
//
//   LifeRule         — Conway's Life on the Moore neighborhood (bit 0).
//   BoxFilterRule    — 3×3 mean filter over 8-bit pixels (linear
//                      filtering, §1's image-processing example).
//   MedianFilterRule — 3×3 median filter (the paper's other example).
//   DiffusionRule    — 4-neighbor discrete heat relaxation on bytes,
//                      a stand-in for iterative PDE solvers.

#pragma once

#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {

class LifeRule final : public Rule {
 public:
  Site apply(const Window& w, const SiteContext& ctx) const override;
  std::string_view name() const override { return "Life"; }
};

class BoxFilterRule final : public Rule {
 public:
  Site apply(const Window& w, const SiteContext& ctx) const override;
  std::string_view name() const override { return "BoxFilter3x3"; }
};

class MedianFilterRule final : public Rule {
 public:
  Site apply(const Window& w, const SiteContext& ctx) const override;
  std::string_view name() const override { return "MedianFilter3x3"; }
};

class DiffusionRule final : public Rule {
 public:
  Site apply(const Window& w, const SiteContext& ctx) const override;
  std::string_view name() const override { return "Diffusion4"; }
};

}  // namespace lattice::lgca
