// Fused gather–collide execution of the lattice-gas update.
//
// `GasRule::apply` is the semantic definition: build a 3×3 `Window`,
// loop the channels through `neighbor_offset`, push the gathered state
// through the model's table — with a virtual call per site. That is the
// oracle, not the fast path. `CollisionLut` precomputes everything that
// is constant per (gas, row parity) — the per-channel gather taps
// (dx, dy, channel mask), the center-bit mask, and a private copy of
// both chirality collision tables — so a site update becomes a handful
// of masked loads from raw row pointers plus one table read, exactly
// the paper's "simple at each lattice point" silicon datapath (§3).
//
// Everything here is bit-identical to the reference updater by
// construction and by exhaustive test (all 256 site states × both
// chirality variants × both row parities).

#pragma once

#include <array>
#include <cstdint>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {

class CollisionLut {
 public:
  /// The (immutable, lazily built) singleton for a gas kind.
  static const CollisionLut& get(GasKind kind);

  /// The LUT for `rule` if it is a GasRule, nullptr otherwise — the
  /// one-time fast-path detection used by the engine and simulators.
  static const CollisionLut* try_get(const Rule& rule);

  /// One gather tap: the gathered state collects `bit` from the site at
  /// array offset (dx, dy).
  struct Tap {
    std::int8_t dx = 0;
    std::int8_t dy = 0;
    Site bit = 0;
  };

  const GasModel& model() const noexcept { return *model_; }
  int tap_count() const noexcept { return tap_count_; }
  const std::array<Tap, 6>& taps(bool odd_row) const noexcept {
    return taps_[odd_row ? 1 : 0];
  }

  /// Bits copied straight from the pre-update center site (rest
  /// particle when the model has one, obstacle flag always).
  Site center_mask() const noexcept { return center_mask_; }

  /// Post-collision state, chirality variant 0 or 1. Identical to
  /// GasModel::collide, tabulated locally for cache locality.
  Site collide(Site in, int variant) const noexcept {
    return tables_[static_cast<std::size_t>(variant & 1)][in];
  }

  /// Update columns [x0, x1) of row `y`: write the generation-(t+1)
  /// sites into `next` from the generation-t lattice `cur`, honoring
  /// cur's boundary mode. Bit-identical to GasRule::apply over
  /// cur.window_at for every column in the span.
  void update_span(SiteLattice& next, const SiteLattice& cur, std::int64_t t,
                   std::int64_t y, std::int64_t x0, std::int64_t x1) const;

  /// update_span over full rows [y0, y1).
  void update_rows(SiteLattice& next, const SiteLattice& cur, std::int64_t t,
                   std::int64_t y0, std::int64_t y1) const;

  /// Windowed single-row update for the temporal tiling driver
  /// (temporal_tile.hpp): compute one full row into `next` at storage
  /// row `dst_y` from `cur` centered on storage row `src_y`, where the
  /// two lattices may have different heights (a trapezoid scratch strip
  /// vs the real lattice). `sem_y` is the row's semantic lattice
  /// coordinate — it alone selects the hex-parity tap set and feeds the
  /// chirality hash, so offset (or wrapped) scratch storage reproduces
  /// the golden update bit-exactly. Source rows resolve as src_y +
  /// tap.dy against cur's own height and boundary. update_span with
  /// x0 = 0, x1 = width is exactly this with dst_y == src_y == sem_y.
  void update_span_window(SiteLattice& next, std::int64_t dst_y,
                          const SiteLattice& cur, std::int64_t src_y,
                          std::int64_t sem_y, std::int64_t t) const;

 private:
  explicit CollisionLut(GasKind kind);

  void row_core(SiteLattice& next, std::int64_t dst_y,
                const SiteLattice& cur, std::int64_t src_y,
                std::int64_t sem_y, std::int64_t t, std::int64_t x0,
                std::int64_t x1) const;

  const GasModel* model_;
  int tap_count_;
  Site center_mask_;
  std::array<std::array<Tap, 6>, 2> taps_{};  // [row parity][channel]
  std::array<std::array<Site, 256>, 2> tables_{};
};

/// Advance `lat` by `generations` gas steps on the fused kernel,
/// double-buffered, row bands fanned out over `threads` workers of the
/// shared pool (threads == 1 runs inline). Bit-identical to
/// reference_run with a GasRule of the same kind for any thread count.
/// Chunk-invariant: splitting a run at any generation boundary and
/// resuming with the carried t0 reproduces the continuous run exactly
/// (chirality is a position-time hash, not stream state).
void fused_gas_run(SiteLattice& lat, const CollisionLut& lut,
                   std::int64_t generations, std::int64_t t0 = 0,
                   unsigned threads = 1);

}  // namespace lattice::lgca
