// The lattice-gas update expressed as a local Rule.
//
// One application performs the full LGCA step for one site as a gather:
//   1. propagation — channel i of the new state arrives from the
//      neighbor in direction opposite(i) (a particle launched there one
//      tick ago, travelling in direction i, lands here now);
//   2. collision  — the gathered state is pushed through the model's
//      collision table (chirality variant chosen deterministically from
//      (x, y, t)).
//
// The rest particle and the obstacle flag are taken from the center
// site: both are stationary.

#pragma once

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {

class GasRule final : public Rule {
 public:
  explicit GasRule(GasKind kind) : model_(GasModel::get(kind)) {}

  const GasModel& model() const noexcept { return model_; }

  Site apply(const Window& w, const SiteContext& ctx) const override;
  std::string_view name() const override {
    return gas_kind_name(model_.kind());
  }

 private:
  const GasModel& model_;
};

/// Undo one gas generation *exactly* — the microscopic reversibility of
/// lattice gases. Works because every model's chirality variants are
/// mutual inverses (collide(·,1) ∘ collide(·,0) = id), so the update
/// factorizes into invertible collide-then-scatter. `t` must be the
/// time that was passed to the forward step being undone. Requires
/// periodic boundaries (null boundaries destroy information at the
/// edges).
void gas_unstep(SiteLattice& lat, const GasRule& rule, std::int64_t t);

}  // namespace lattice::lgca
