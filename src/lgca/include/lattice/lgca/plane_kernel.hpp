// Bit-parallel lattice-gas update over PlaneLattice bit-planes.
//
// Where CollisionLut replaces the semantic oracle's window build with a
// fused gather + one 256-entry table read per site, PlaneKernel goes
// one level further: it evaluates the collision rules themselves as
// boolean algebra on whole words of sites. Propagation is a funnel
// shift per channel plane (the guard-word halo makes it branch-free),
// collision is a fixed expression of ANDs/ORs/NOTs derived from the
// exact-configuration structure of the HPP and FHP rules, and the
// chirality variant is hashed per *event* site (head-on pairs are exact
// two-particle configurations, hence rare) — the only per-site rather
// than per-word work left in the FHP update, and hence its cost floor
// (docs/PERFORMANCE.md has the cost model).
//
// The word width is ISA-dispatched at runtime (plane_simd.hpp): the
// same boolean algebra runs on 64-bit scalar words, 256-bit AVX2
// vectors (4 words per op), or 512-bit AVX-512 vectors (8 words per
// op). All variants are bit-identical; the scalar path is always
// compiled in and handles the remainder + masked tail word even when a
// vector path runs the bulk.
//
// Parallelism is static row-band ownership: plane_gas_run splits the
// lattice into at most `threads` contiguous row bands, each owned by
// one pool lane for the whole run, with one barrier per generation.
// A grain-size floor collapses the band count (down to an inline
// single-band loop) when per-generation work is too small to pay for
// the rendezvous, so thread scaling is monotone — more threads never
// run slower than fewer (docs/ARCHITECTURE.md, "Threading contract").
//
// Supported gases: HPP, FHP-I, FHP-II. FHP-III's collision table is a
// cyclic permutation of (mass, momentum) equivalence classes and has no
// compact boolean form; it keeps the byte-LUT path. Everything here is
// bit-identical to GasModel::collide / the golden reference updater —
// by construction, and by exhaustive test (all 256 site states × both
// chirality variants × every compiled SIMD level, plus multi-generation
// lattice parity).

#pragma once

#include <array>
#include <cstdint>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/plane_lattice.hpp"

namespace lattice::lgca {

struct PlaneSpanOps;

/// Grain floor for the band scheduler: a row band must own at least
/// this many payload words of one plane per generation, or the planner
/// merges bands. 16384 words ≈ 1 Mi sites ≈ hundreds of µs of kernel
/// work per generation — an order of magnitude above a barrier
/// rendezvous, so a band is never synchronization-bound and sub-
/// megasite lattices run single-band regardless of Config::threads.
inline constexpr std::int64_t kDefaultBandGrainWords = 16384;

class PlaneKernel {
 public:
  /// True when `kind` has a boolean-algebra kernel (HPP, FHP-I/II).
  static bool supports(GasKind kind) noexcept;

  /// The (immutable, lazily built) singleton for a supported gas kind;
  /// throws lattice::Error for unsupported kinds (FHP-III).
  static const PlaneKernel& get(GasKind kind);

  /// The kernel for `rule` if it is a GasRule of a supported kind,
  /// nullptr otherwise — mirrors CollisionLut::try_get.
  static const PlaneKernel* try_get(const Rule& rule);

  const GasModel& model() const noexcept { return *model_; }
  GasKind kind() const noexcept { return model_->kind(); }

  /// Bitmask (bit p = plane p) of the planes the update writes: the
  /// gas's moving channels, plus the rest plane when it has rest
  /// particles. The complement is static for a whole run — HPP's
  /// unused channels 4/5, an absent rest plane, the obstacle mask —
  /// and is established once by prime_static_planes() instead of being
  /// re-stored every word of every generation.
  std::uint32_t written_planes() const noexcept { return written_; }

  /// Bitmask of the planes the update gathers with a column shift
  /// (tap dx != 0 on either row parity) — the only planes whose shift
  /// halo must be current before update_rows reads them. Rest and
  /// obstacle are always read unshifted; for HPP even the N/S channel
  /// planes drop out, leaving just E/W.
  std::uint32_t halo_planes() const noexcept { return halo_; }

  /// One-time setup for a double-buffered run: zeroes this gas's
  /// static-zero planes in `lat` (the kernel no longer clears them per
  /// word, and after swaps the original buffer resurfaces as output)
  /// and copies the obstacle plane into `next`, tail-masked. After
  /// this, both buffers agree on every plane outside written_planes()
  /// for the rest of the run.
  void prime_static_planes(PlaneLattice& lat, PlaneLattice& next) const;

  /// Compute generation-(t+1) rows [y0, y1) of `next` from the
  /// generation-t lattice `cur`, whose shift halo must have been
  /// prepared for halo_planes() (PlaneLattice::prepare_shift_halo),
  /// and whose static planes must have been primed. Column-tiled so
  /// the three source row strips plus the destination strip stay cache
  /// resident on wide lattices; tile_words == 0 picks the default
  /// L2-sized tile. On return the produced rows of `next` are
  /// halo-ready for the following generation — the fill happens here,
  /// band-locally and cache-hot, rather than as a serial full-lattice
  /// walk between generations. Runs at the process-wide active SIMD
  /// level (plane_simd_active). Bit-identical to GasRule::apply per
  /// site.
  void update_rows(PlaneLattice& next, const PlaneLattice& cur,
                   std::int64_t t, std::int64_t y0, std::int64_t y1,
                   std::int64_t tile_words = 0) const;

  /// Windowed single-row update for the temporal tiling driver
  /// (temporal_tile.hpp): compute one full row into `next` at storage
  /// row `dst_y` from `cur` centered on storage row `src_y`, where the
  /// two lattices may have different heights (a trapezoid scratch strip
  /// vs the real lattice). `sem_y` is the row's *semantic* lattice
  /// coordinate — it alone drives the hex-parity tap set and the
  /// per-event chirality hash, so a scratch strip whose storage rows
  /// are offset (or wrapped) from the lattice rows still reproduces the
  /// golden update bit-exactly. Source rows resolve as src_y + tap.dy
  /// against cur's own height and boundary (out-of-range reads zero
  /// under Null); the caller guarantees that resolution lands on rows
  /// holding generation-t content whose shift halo is current.
  /// update_rows is exactly this with dst_y == src_y == sem_y.
  void update_row_window(PlaneLattice& next, std::int64_t dst_y,
                         const PlaneLattice& cur, std::int64_t src_y,
                         std::int64_t sem_y, std::int64_t t) const;

 private:
  explicit PlaneKernel(GasKind kind);

  void update_row_span(PlaneLattice& next, std::int64_t dst_y,
                       const PlaneLattice& cur, std::int64_t src_y,
                       std::int64_t sem_y, const PlaneSpanOps& ops,
                       std::int64_t t, std::int64_t k0,
                       std::int64_t k1) const;

  /// One gather tap per channel: channel i collects from the source row
  /// y + dy shifted by dx (the offset of the opposite-direction
  /// neighbor, exactly CollisionLut's taps).
  struct Tap {
    std::int8_t dx = 0;
    std::int8_t dy = 0;
  };

  const GasModel* model_;
  int channels_;
  std::uint32_t written_ = 0;
  std::uint32_t halo_ = 0;
  std::array<std::array<Tap, 6>, 2> taps_{};  // [row parity][channel]
};

/// Observation/instrumentation points inside plane_gas_run, keyed to
/// the band structure. The one client today is the fault subsystem's
/// PlaneMemoryGuard (fault/memory_guard.hpp), which injects plane-word
/// faults into the generation-t source and audits per-plane particle
/// ledgers over the produced rows; the interface lives here so lgca
/// never depends on lattice::fault. A null hooks pointer is the
/// fault-free fast path: the run loop is unchanged (the banded path
/// takes one untaken branch per band-generation and skips the extra
/// pre-update barrier entirely).
class PlaneRunHooks {
 public:
  virtual ~PlaneRunHooks() = default;

  /// Once per run, serially, after static planes are primed and the
  /// generation-t0 shift halo is filled, before any update. The masks
  /// are the running kernel's written_planes()/halo_planes() — passed
  /// as plain masks rather than a kernel reference so the same hooks
  /// serve every plane-coded runner (the 3-D kernel included), which
  /// all share the PlaneLattice storage contract.
  virtual void run_begin(PlaneLattice& lat, std::uint32_t written_planes,
                         std::uint32_t halo_planes, std::int64_t t0) = 0;

  /// Per band, per generation, before update_rows gathers from rows
  /// [y0, y1) of the generation-t source `cur`. May mutate those rows
  /// (fault injection). Called concurrently from all bands; a barrier
  /// separates every before_rows from every update, so a band never
  /// gathers a neighbor row that is still being mutated.
  virtual void before_rows(PlaneLattice& cur, std::int64_t t,
                           std::int64_t y0, std::int64_t y1) = 0;

  /// Per band, per generation, after update_rows produced rows [y0, y1)
  /// of `next` (halo-ready). Called concurrently; read-only.
  virtual void after_rows(const PlaneLattice& next, std::int64_t t,
                          std::int64_t y0, std::int64_t y1) = 0;
};

/// Advance `lat` by `generations` gas steps on the bit-plane kernel,
/// double-buffered. Up to `threads` static row bands are owned by
/// persistent pool lanes with one barrier per generation; the planner
/// never makes a band smaller than `band_grain_words` payload words
/// (0 picks kDefaultBandGrainWords), collapsing to an inline
/// single-band loop when the lattice is too small to parallelize
/// profitably. Bit-identical to reference_run / fused_gas_run of the
/// same kind for any thread count and any SIMD level.
void plane_gas_run(PlaneLattice& lat, const PlaneKernel& kernel,
                   std::int64_t generations, std::int64_t t0 = 0,
                   unsigned threads = 1, std::int64_t band_grain_words = 0,
                   PlaneRunHooks* hooks = nullptr);

/// Byte-lattice convenience wrapper: pack once, run, unpack once. The
/// transpose costs ~one byte-path generation, so it amortizes over
/// multi-generation runs.
void bitplane_gas_run(SiteLattice& lat, const PlaneKernel& kernel,
                      std::int64_t generations, std::int64_t t0 = 0,
                      unsigned threads = 1, std::int64_t band_grain_words = 0,
                      PlaneRunHooks* hooks = nullptr);

}  // namespace lattice::lgca
