// Bit-parallel lattice-gas update over PlaneLattice bit-planes.
//
// Where CollisionLut replaces the semantic oracle's window build with a
// fused gather + one 256-entry table read per site, PlaneKernel goes
// one level further: it evaluates the collision rules themselves as
// boolean algebra on 64-site words. Propagation is a funnel shift per
// channel plane (the guard-word halo makes it branch-free), collision
// is a fixed expression of ANDs/ORs/NOTs derived from the exact-
// configuration structure of the HPP and FHP rules, and the chirality
// variant is hashed per *event* site (head-on pairs are exact two-
// particle configurations, hence rare) — the only per-site rather than
// per-word work left in the FHP update, and hence its cost floor
// (docs/PERFORMANCE.md has the cost model).
//
// Supported gases: HPP, FHP-I, FHP-II. FHP-III's collision table is a
// cyclic permutation of (mass, momentum) equivalence classes and has no
// compact boolean form; it keeps the byte-LUT path. Everything here is
// bit-identical to GasModel::collide / the golden reference updater —
// by construction, and by exhaustive test (all 256 site states × both
// chirality variants, plus multi-generation lattice parity).

#pragma once

#include <array>
#include <cstdint>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/plane_lattice.hpp"

namespace lattice::lgca {

class PlaneKernel {
 public:
  /// True when `kind` has a boolean-algebra kernel (HPP, FHP-I/II).
  static bool supports(GasKind kind) noexcept;

  /// The (immutable, lazily built) singleton for a supported gas kind;
  /// throws lattice::Error for unsupported kinds (FHP-III).
  static const PlaneKernel& get(GasKind kind);

  /// The kernel for `rule` if it is a GasRule of a supported kind,
  /// nullptr otherwise — mirrors CollisionLut::try_get.
  static const PlaneKernel* try_get(const Rule& rule);

  const GasModel& model() const noexcept { return *model_; }
  GasKind kind() const noexcept { return model_->kind(); }

  /// Compute generation-(t+1) rows [y0, y1) of `next` from the
  /// generation-t lattice `cur`, whose shift halo must have been
  /// prepared (PlaneLattice::prepare_shift_halo). Column-tiled so the
  /// three source row strips plus the destination strip stay cache
  /// resident on wide lattices; tile_words == 0 picks the default
  /// L2-sized tile. Bit-identical to GasRule::apply per site.
  void update_rows(PlaneLattice& next, const PlaneLattice& cur,
                   std::int64_t t, std::int64_t y0, std::int64_t y1,
                   std::int64_t tile_words = 0) const;

 private:
  explicit PlaneKernel(GasKind kind);

  void update_row_span(PlaneLattice& next, const PlaneLattice& cur,
                       std::int64_t t, std::int64_t y, std::int64_t k0,
                       std::int64_t k1) const;

  /// One gather tap per channel: channel i collects from the source row
  /// y + dy shifted by dx (the offset of the opposite-direction
  /// neighbor, exactly CollisionLut's taps).
  struct Tap {
    std::int8_t dx = 0;
    std::int8_t dy = 0;
  };

  const GasModel* model_;
  int channels_;
  std::array<std::array<Tap, 6>, 2> taps_{};  // [row parity][channel]
};

/// Advance `lat` by `generations` gas steps on the bit-plane kernel,
/// double-buffered, row bands fanned out over `threads` workers of the
/// shared pool (threads == 1 runs inline). Bit-identical to
/// reference_run / fused_gas_run of the same kind for any thread count.
void plane_gas_run(PlaneLattice& lat, const PlaneKernel& kernel,
                   std::int64_t generations, std::int64_t t0 = 0,
                   unsigned threads = 1);

/// Byte-lattice convenience wrapper: pack once, run, unpack once. The
/// transpose costs ~one byte-path generation, so it amortizes over
/// multi-generation runs.
void bitplane_gas_run(SiteLattice& lat, const PlaneKernel& kernel,
                      std::int64_t generations, std::int64_t t0 = 0,
                      unsigned threads = 1);

}  // namespace lattice::lgca
