// Runtime SIMD dispatch for the bit-plane span kernels.
//
// PlaneKernel's inner loops — funnel-shift gather plus boolean-algebra
// collision over whole words — exist in three ISA variants: the
// portable 64-bit scalar form, an AVX2 form (256 sites per vector op)
// and an AVX-512 form (512 sites per vector op). All three compute the
// same function bit-for-bit; the vector forms simply run 4 or 8 lattice
// words per instruction and fall back to the scalar span for the
// masked tail word and any sub-vector remainder, so odd widths and
// guard-halo handling never depend on the ISA.
//
// Which variants exist in a binary is a build-time fact (the
// LATTICE_SIMD CMake option; vector TUs are compiled with -mavx2 /
// -mavx512f but only ever *executed* behind the CPU checks here, so
// default builds stay portable). Which variant runs is a runtime fact:
// the process starts at the best level the build and the CPU both
// support, overridable by the LATTICE_SIMD environment variable
// (scalar | avx2 | avx512) or programmatically — tests pin levels with
// ScopedSimdLevel to prove scalar/AVX2/AVX-512 equivalence on the same
// machine.

#pragma once

#include <cstdint>

namespace lattice::lgca {

enum class SimdLevel : int {
  Scalar = 0,  // 64-bit words, always compiled, always supported
  Avx2 = 1,    // 256-bit vectors, 4 words per op
  Avx512 = 2,  // 512-bit vectors, 8 words per op
};

const char* to_string(SimdLevel level) noexcept;

/// Span kernels: compute words [k0, k1) of one destination row from
/// gathered source rows (see PlaneKernel). `last_word`/`tail_mask`
/// identify the row's masked final payload word. HPP has no rest
/// plane and no chirality; FHP takes the rest row plus (y, t) for the
/// per-event chirality hash.
using HppSpanFn = void (*)(const std::uint64_t* const src[6],
                           const int dx[6], const std::uint64_t* obst,
                           std::uint64_t* const out[8], std::int64_t k0,
                           std::int64_t k1, std::int64_t last_word,
                           std::uint64_t tail_mask);
using FhpSpanFn = void (*)(const std::uint64_t* const src[6],
                           const int dx[6], const std::uint64_t* rest,
                           const std::uint64_t* obst,
                           std::uint64_t* const out[8], std::int64_t k0,
                           std::int64_t k1, std::int64_t y, std::int64_t t,
                           std::int64_t last_word, std::uint64_t tail_mask);

/// Population count over `n` consecutive words. The fault detectors'
/// per-plane particle ledgers (docs/ROBUSTNESS.md) popcount every
/// written plane row once per generation, so this rides the same
/// dispatch: scalar uses the hardware popcnt via the builtin, the
/// vector variants count 4 words per op with the pshufb nibble-LUT +
/// psadbw reduction. All variants return identical sums.
using PopcountFn = std::uint64_t (*)(const std::uint64_t* words,
                                     std::int64_t n);

/// One ISA variant of the full span-kernel family. PlaneKernel calls
/// through the *active* ops table; tests call specific tables to pin
/// cross-ISA equivalence.
struct PlaneSpanOps {
  const char* name;  // "scalar64" | "avx2" | "avx512"
  int width_bits;    // sites per vector op: 64 | 256 | 512
  HppSpanFn hpp;
  FhpSpanFn fhp1;  // FHP-I: rest plane never gathered
  FhpSpanFn fhp2;  // FHP-II: rest rules live
  PopcountFn popcount;
};

/// Variant compiled into this binary (Scalar is always true; the
/// vector levels depend on the LATTICE_SIMD build option and the
/// compiler).
bool simd_compiled(SimdLevel level) noexcept;

/// Compiled *and* executable on this CPU.
bool simd_supported(SimdLevel level) noexcept;

/// Highest supported level, after applying the LATTICE_SIMD
/// environment override (scalar | avx2 | avx512; an unsupported or
/// unrecognized value is ignored). This is the process's initial
/// active level.
SimdLevel simd_best() noexcept;

/// The span-op table for `level`; throws lattice::Error if the level
/// is not supported (not compiled in, or the CPU lacks it).
const PlaneSpanOps& plane_span_ops(SimdLevel level);

/// The level PlaneKernel currently dispatches to (process-wide).
SimdLevel plane_simd_active() noexcept;

/// Set the active level; returns the previous one. Throws
/// lattice::Error for unsupported levels. Not meant to be raced
/// against in-flight updates — switch between runs.
SimdLevel plane_simd_set_active(SimdLevel level);

/// RAII pin of the active level (tests, benches).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(plane_simd_set_active(level)) {}
  ~ScopedSimdLevel() { plane_simd_set_active(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

}  // namespace lattice::lgca
