// Physical observables of a lattice-gas state.
//
// Exact integer accounting (mass, momentum) plus coarse-grained fields
// used by the fluid-dynamics examples and the isotropy experiment (E8).

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {

/// Exact global invariants of a configuration.
struct Invariants {
  std::int64_t mass = 0;       // total particle count
  std::int64_t px = 0;         // total momentum (integer units)
  std::int64_t py = 0;
  std::int64_t obstacles = 0;  // obstacle site count (geometry, static)

  friend bool operator==(const Invariants&, const Invariants&) = default;
};

Invariants measure_invariants(const SiteLattice& lat, const GasModel& model);

/// Coarse-grained density/velocity over non-overlapping cells.
struct FlowCell {
  double density = 0;  // particles per site
  double ux = 0;       // mean momentum per particle, x (integer units)
  double uy = 0;
};

/// Coarse-grain `lat` into cells of `cell`×`cell` sites (edge cells may
/// be smaller). Returned grid is row-major, ceil(W/cell) × ceil(H/cell).
Grid<FlowCell> coarse_grain(const SiteLattice& lat, const GasModel& model,
                            std::int64_t cell);

/// How a particle cloud has spread from a point — used to watch a
/// pressure pulse expand (isotropy experiment E8).
///
/// `anisotropy` is the normalized fourth-order cubic harmonic
/// |⟨r⁴·cos 4θ⟩| / ⟨r⁴⟩ = |⟨x⁴ − 6x²y² + y⁴⟩| / ⟨r⁴⟩: it survives the
/// 4-fold symmetry of a square-lattice (HPP) spread but vanishes under
/// the 6-fold symmetry of a hexagonal (FHP) one — precisely the
/// distinction that makes FHP, and not HPP, a Navier-Stokes gas.
struct SpreadStats {
  double mean_r2 = 0;      // second moment of particle positions
  double anisotropy = 0;   // fourth-order cubic anisotropy in [0, 1]
  std::int64_t particles = 0;
};

SpreadStats measure_spread(const SiteLattice& lat, const GasModel& model,
                           double cx, double cy);

/// Row-wise x-momentum profile: element y = Σ_x p_x(x, y) in integer
/// momentum units. The shear-decay (viscosity) experiment watches the
/// sinusoidal mode of this profile relax.
std::vector<double> momentum_profile_x(const SiteLattice& lat,
                                       const GasModel& model);

/// Amplitude of the fundamental sine mode of a profile:
/// (2/H)·Σ_y v[y]·sin(2πy/H). For u_x(y) = U·sin(2πy/H) this returns U,
/// and under viscous decay it relaxes as exp(−ν·k²·t).
double sine_mode_amplitude(const std::vector<double>& profile);

}  // namespace lattice::lgca
