// Lattice initializers and obstacle geometry.

#pragma once

#include <cstdint>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {

/// Fill non-obstacle sites with independent particles: each moving
/// channel occupied with probability `density`; the rest channel (if the
/// model has one) with probability `rest_density`.
void fill_random(SiteLattice& lat, const GasModel& model, double density,
                 std::uint64_t seed, double rest_density = 0.0);

/// Like fill_random but biased to produce net flow in +x: channels with
/// positive x-momentum are occupied with `density + bias`, negative with
/// `density - bias` (clamped to [0,1]).
void fill_flow(SiteLattice& lat, const GasModel& model, double density,
               double bias, std::uint64_t seed);

/// Sinusoidal shear profile: like fill_flow but with the x-bias varying
/// as bias·sin(2πy/H) across rows — the initial condition of the
/// viscous shear-decay experiment.
void fill_shear(SiteLattice& lat, const GasModel& model, double density,
                double bias, std::uint64_t seed);

/// Mark a filled rectangle of sites as obstacles (clears particles).
void add_obstacle_rect(SiteLattice& lat, Coord lo, Coord hi);

/// Mark a disk of obstacles centered at (cx, cy) with radius r.
void add_obstacle_disk(SiteLattice& lat, double cx, double cy, double r);

/// Obstacle walls along the top and bottom rows (a channel).
void add_channel_walls(SiteLattice& lat);

/// Place a tight momentum pulse: a `w`×`w` block around the center of
/// the lattice with all moving channels occupied (maximum pressure,
/// zero net momentum). Used for the isotropy experiment.
void add_pressure_pulse(SiteLattice& lat, const GasModel& model,
                        std::int64_t w);

}  // namespace lattice::lgca
