// Minimal image / text output for examples and debugging.

#pragma once

#include <iosfwd>
#include <string>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/lattice.hpp"
#include "lattice/lgca/observables.hpp"

namespace lattice::lgca {

/// Write a binary PGM (P5) of per-site particle counts (scaled to 255).
void write_density_pgm(std::ostream& os, const SiteLattice& lat,
                       const GasModel& model);

/// Write a binary PGM of the raw site bytes (for image-filter rules).
void write_raw_pgm(std::ostream& os, const SiteLattice& lat);

/// ASCII rendering of a coarse-grained flow field: one glyph per cell,
/// arrows by dominant velocity direction, '#' for obstacle-heavy cells.
std::string render_flow_ascii(const Grid<FlowCell>& cells);

/// ASCII art of raw occupancy (' ' empty … '@' full, '#' obstacle).
std::string render_density_ascii(const SiteLattice& lat,
                                 const GasModel& model);

}  // namespace lattice::lgca
