// Minimal image I/O and text output for examples and debugging.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/lattice.hpp"
#include "lattice/lgca/observables.hpp"

namespace lattice::lgca {

/// Write a binary PGM (P5) of per-site particle counts (scaled to 255).
void write_density_pgm(std::ostream& os, const SiteLattice& lat,
                       const GasModel& model);

/// Write a binary PGM of the raw site bytes (for image-filter rules).
void write_raw_pgm(std::ostream& os, const SiteLattice& lat);

/// Largest dimension / site count read_raw_pgm will accept — a
/// malformed header must not be able to demand an absurd allocation.
inline constexpr std::int64_t kMaxPgmDim = 1 << 20;
inline constexpr std::int64_t kMaxPgmSites = 1 << 26;

/// Read a binary PGM (P5) written by write_raw_pgm back into a lattice.
/// Accepts '#' header comments per the PGM spec. Throws lattice::Error
/// on a malformed magic/header, non-8-bit data, dimensions that are
/// non-positive or exceed kMaxPgmDim/kMaxPgmSites, or truncated pixel
/// data — never returns a partially-filled lattice.
SiteLattice read_raw_pgm(std::istream& is,
                         Boundary boundary = Boundary::Null);

/// ASCII rendering of a coarse-grained flow field: one glyph per cell,
/// arrows by dominant velocity direction, '#' for obstacle-heavy cells.
std::string render_flow_ascii(const Grid<FlowCell>& cells);

/// ASCII art of raw occupancy (' ' empty … '@' full, '#' obstacle).
std::string render_density_ascii(const SiteLattice& lat,
                                 const GasModel& model);

}  // namespace lattice::lgca
