// Lattice geometry: direction sets and neighbor offsets.
//
// The FHP gas lives on a triangular (hexagonally connected) lattice.
// We store it in an ordinary row-major array using "offset" rows: odd
// rows are imagined shifted half a cell to the right, so the six
// neighbors of a site are found at parity-dependent (dx, dy) offsets —
// all within the 3×3 array window around the site. This is what lets
// every architecture in the paper stream the lattice with a two-line
// shift-register window regardless of square vs hex connectivity.
//
// Direction numbering (counterclockwise in physical space; grid y grows
// downward, so "N" offsets have dy = -1):
//
//   HPP (square):  0=E, 1=N, 2=W, 3=S               opposite(i) = i+2 mod 4
//   FHP (hex):     0=E, 1=NE, 2=NW, 3=W, 4=SW, 5=SE opposite(i) = i+3 mod 6
//
// Integer momentum units (exact conservation arithmetic):
//   HPP:  c_i ∈ {(2,0), (0,-2), (-2,0), (0,2)}
//   FHP:  c_i ∈ {(2,0), (1,-1), (-1,-1), (-2,0), (-1,1), (1,1)}
// (x doubled; hex y in units of √3/2 · lattice pitch).

#pragma once

#include <array>

#include "lattice/common/grid.hpp"

namespace lattice::lgca {

/// Connectivity of the site lattice.
enum class Topology { Square4, Hex6 };

/// Small signed offset to a neighboring array cell.
struct Offset {
  int dx = 0;
  int dy = 0;
  friend constexpr bool operator==(Offset, Offset) = default;
};

/// Integer momentum carried by one particle in channel `dir`.
struct Momentum {
  int px = 0;
  int py = 0;
  friend constexpr bool operator==(Momentum, Momentum) = default;
  constexpr Momentum operator+(Momentum o) const noexcept {
    return {px + o.px, py + o.py};
  }
  constexpr Momentum operator-() const noexcept { return {-px, -py}; }
};

/// Number of moving channels for a topology.
constexpr int channel_count(Topology t) noexcept {
  return t == Topology::Square4 ? 4 : 6;
}

/// Direction of the channel that points exactly backwards.
constexpr int opposite_dir(Topology t, int dir) noexcept {
  return t == Topology::Square4 ? (dir + 2) % 4 : (dir + 3) % 6;
}

constexpr int common_wrap(int v, int m) noexcept {
  const int r = v % m;
  return r < 0 ? r + m : r;
}

/// Rotate a direction by `steps` 90° (square) or 60° (hex) increments.
constexpr int rotate_dir(Topology t, int dir, int steps) noexcept {
  const int n = channel_count(t);
  return common_wrap(dir + steps, n);
}

/// Array offset of the neighbor reached by moving one step in `dir`
/// from a site in a row of the given parity.
Offset neighbor_offset(Topology t, int dir, bool odd_row) noexcept;

/// Integer momentum unit vector of channel `dir`.
Momentum momentum_of(Topology t, int dir) noexcept;

/// Absolute array coordinate of the `dir`-neighbor of `c`.
Coord neighbor_coord(Topology t, Coord c, int dir) noexcept;

}  // namespace lattice::lgca
