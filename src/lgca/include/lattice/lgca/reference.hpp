// Golden reference updater.
//
// A plain double-buffered sweep: every site's new value is computed
// from the old generation via Rule::apply. This is the semantic
// definition v(a, t+1) = f(N(a), t) from §3 of the paper; every
// architecture simulator must match it bit-for-bit.

#pragma once

#include <cstdint>

#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {

/// Advance `lat` by one generation under `rule`; `t` is the current
/// (pre-update) generation number, fed to the rule's context.
void reference_step(SiteLattice& lat, const Rule& rule, std::int64_t t);

/// Advance by `generations` steps starting at time `t0`.
void reference_run(SiteLattice& lat, const Rule& rule,
                   std::int64_t generations, std::int64_t t0 = 0);

/// Functional form: the next generation of `lat`.
SiteLattice reference_next(const SiteLattice& lat, const Rule& rule,
                           std::int64_t t);

/// Multithreaded reference updater: rows are partitioned into `threads`
/// bands, each reading the (immutable) old generation and writing a
/// disjoint band of the new one — no synchronization inside a
/// generation, one shared-pool rendezvous per generation (the pool's
/// workers are persistent; `threads == 1` runs inline without touching
/// the pool). Bit-identical to the serial updater for any thread count
/// (rules are pure functions of (window, x, y, t)).
void reference_run_parallel(SiteLattice& lat, const Rule& rule,
                            std::int64_t generations, unsigned threads,
                            std::int64_t t0 = 0);

}  // namespace lattice::lgca
