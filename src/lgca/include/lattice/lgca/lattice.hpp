// Site lattice container with boundary handling.
//
// The container is deliberately dumb: a row-major byte array plus a
// boundary policy. All update semantics live in Rule objects so that
// the golden reference and every architecture simulator consume the
// same 3×3 windows and must therefore agree bit-for-bit.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "lattice/common/grid.hpp"
#include "lattice/lgca/site.hpp"

namespace lattice::lgca {

/// How sites outside the array read.
///   Null     — the paper's pipeline assumption: outside is empty (0).
///   Periodic — toroidal wrap; used by physics tests (exact global
///              conservation) but not streamable by a finite-window
///              pipeline, which is why the paper treats boundaries as
///              null/deterministic (§7 assumption 2).
enum class Boundary { Null, Periodic };

/// The 3×3 array window around a site: rows y-1..y+1 × cols x-1..x+1.
struct Window {
  std::array<Site, 9> s{};

  /// dx, dy ∈ {-1, 0, +1}.
  constexpr Site at(int dx, int dy) const noexcept {
    return s[static_cast<std::size_t>((dy + 1) * 3 + (dx + 1))];
  }
  constexpr Site& at(int dx, int dy) noexcept {
    return s[static_cast<std::size_t>((dy + 1) * 3 + (dx + 1))];
  }
  constexpr Site center() const noexcept { return at(0, 0); }
};

/// A rectangular field of sites.
class SiteLattice {
 public:
  SiteLattice() = default;
  SiteLattice(Extent extent, Boundary boundary);

  Extent extent() const noexcept { return grid_.extent(); }
  Boundary boundary() const noexcept { return boundary_; }
  std::size_t site_count() const noexcept { return grid_.size(); }

  /// Read a site; coordinates outside the array resolve per boundary.
  Site get(Coord c) const noexcept;

  /// Direct in-range access.
  Site& at(Coord c) { return grid_.at(c); }
  Site at(Coord c) const { return grid_.at(c); }

  Site& operator[](std::size_t i) { return grid_[i]; }
  Site operator[](std::size_t i) const { return grid_[i]; }

  /// The 3×3 window around `c` (which must be in range).
  Window window_at(Coord c) const noexcept;

  Grid<Site>& grid() noexcept { return grid_; }
  const Grid<Site>& grid() const noexcept { return grid_; }

  void fill(Site v) { grid_.fill(v); }

  friend bool operator==(const SiteLattice& a, const SiteLattice& b) {
    return a.boundary_ == b.boundary_ && a.grid_ == b.grid_;
  }

 private:
  Boundary boundary_ = Boundary::Null;
  Grid<Site> grid_;
};

/// Per-update context handed to rules: absolute site position and time.
/// Rules must be pure functions of (window, context) — this is what
/// makes pipelined replays reproducible.
struct SiteContext {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t t = 0;
};

/// A local update rule: new site value from its 3×3 neighborhood.
class Rule {
 public:
  virtual ~Rule() = default;
  /// Compute v(a, t+1) from the window around `a` at time t.
  virtual Site apply(const Window& w, const SiteContext& ctx) const = 0;
  virtual std::string_view name() const = 0;
};

}  // namespace lattice::lgca
