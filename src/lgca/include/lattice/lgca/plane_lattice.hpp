// Bit-plane (multi-spin coded) lattice representation.
//
// The byte SiteLattice stores the paper's D = 8 bits/site as an array
// of structures; PlaneLattice transposes it into 8 bit-planes, packing
// the same bit of 64 consecutive row sites into one uint64_t word
// (bit j of word k on row y is site x = 64·k + j — LSB is the lowest
// x). Collision then becomes boolean algebra evaluated on whole words
// and propagation becomes word shifts: the multi-spin coding trick of
// CAM-8-era lattice machines, worth roughly a word width of data
// parallelism on top of the existing thread parallelism.
//
// Each row is padded with guard words on either side so the ±1 column
// shifts of propagation never branch on word boundaries; only the two
// adjacent guards (indices -1 and words_per_row()) ever hold halo
// content, the rest are permanent zeros. The guards plus the unused
// tail bits of the last payload word form the row's "shift halo":
// prepare_shift_halo() fills it from the boundary mode (zero for Null,
// wrapped row content for Periodic) so the kernel can shift
// unconditionally. pack() leaves tail bits zero and PlaneKernel's
// masked stores keep them zero, but a finished kernel run leaves its
// shifted planes halo-*filled* (under Periodic the tail bits then carry
// wrapped row content): the fill is idempotent (it masks before
// wrapping), and every payload consumer — unpack(), operator==, the
// site accessors — masks tails itself, so halo state is unobservable.
//
// Storage is 64-byte aligned and row strides are multiples of 8 words
// with an 8-word leading guard block, so every row's payload word 0
// sits on a cacheline boundary — the SIMD spans (plane_simd.hpp) use
// unaligned loads either way, but aligned rows keep each 256/512-bit
// access within one line.

#pragma once

#include <cstdint>
#include <vector>

#include "lattice/common/aligned.hpp"
#include "lattice/lgca/lattice.hpp"
#include "lattice/lgca/site.hpp"

namespace lattice::lgca {

class PlaneLattice {
 public:
  static constexpr int kPlanes = kSiteBits;  // D = 8 bits/site
  static constexpr std::int64_t kWordBits = 64;
  /// Guard words before each row's payload; also the stride quantum,
  /// so payload word 0 of every row is 64-byte aligned.
  static constexpr std::int64_t kRowPad = 8;

  PlaneLattice() = default;
  PlaneLattice(Extent extent, Boundary boundary);
  /// Pack a byte lattice (extent and boundary are taken from it).
  explicit PlaneLattice(const SiteLattice& sites);

  Extent extent() const noexcept { return extent_; }
  Boundary boundary() const noexcept { return boundary_; }
  /// Payload words per row: ceil(width / 64).
  std::int64_t words_per_row() const noexcept { return words_; }
  /// Allocated words per row including guard/padding words (a multiple
  /// of kRowPad).
  std::int64_t row_stride() const noexcept { return stride_; }
  /// Mask of the valid bits of a row's last payload word.
  std::uint64_t tail_mask() const noexcept { return tail_mask_; }

  /// Overwrite this lattice's bits from a byte lattice of the same
  /// extent and boundary (resets guard words).
  void pack(const SiteLattice& sites);
  /// Write this lattice's bits into a byte lattice of the same extent.
  void unpack(SiteLattice& sites) const;
  SiteLattice to_sites() const;

  /// Pointer to payload word 0 of `plane` on row `y`; the guard words
  /// live at indices -1 and words_per_row().
  std::uint64_t* row(int plane, std::int64_t y) noexcept {
    return data_.data() + row_offset(plane, y);
  }
  const std::uint64_t* row(int plane, std::int64_t y) const noexcept {
    return data_.data() + row_offset(plane, y);
  }
  /// An all-zero row (payload and guards) — what an out-of-range row
  /// reads as under the Null boundary.
  const std::uint64_t* zero_row() const noexcept {
    return zeros_.data() + kRowPad;
  }

  /// Fill the shift halo for this boundary mode: guard words, and (for
  /// Periodic) the wrapped row content in the last payload word's tail
  /// bits. Idempotent (the fill masks tails before wrapping); a plane's
  /// halo must be current before PlaneKernel gathers it with a column
  /// shift. The no-argument form fills every plane and row.
  void prepare_shift_halo();
  /// Same fill restricted to the planes named in `plane_mask` (bit p =
  /// plane p) and to rows [y0, y1). PlaneKernel uses this to touch only
  /// the planes it actually shifts (its halo_planes() mask) and only
  /// the row band a worker owns — the full-lattice form is a
  /// latency-bound serial walk that would otherwise rival the kernel
  /// sweep itself on small rows.
  void prepare_shift_halo(std::uint32_t plane_mask, std::int64_t y0,
                          std::int64_t y1);

  // ---- single-site access (tests, diagnostics; not the fast path) ----

  bool get(Coord c, int plane) const noexcept;
  Site site(Coord c) const noexcept;
  void set_site(Coord c, Site v) noexcept;

  /// Payload-only equality: guard words and tail bits are ignored.
  friend bool operator==(const PlaneLattice& a, const PlaneLattice& b);

 private:
  using AlignedWords =
      std::vector<std::uint64_t,
                  common::AlignedAllocator<std::uint64_t, 64>>;

  std::size_t row_offset(int plane, std::int64_t y) const noexcept {
    return (static_cast<std::size_t>(plane) *
                static_cast<std::size_t>(extent_.height) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(stride_) +
           static_cast<std::size_t>(kRowPad);
  }

  Extent extent_{0, 0};
  Boundary boundary_ = Boundary::Null;
  std::int64_t words_ = 0;
  std::int64_t stride_ = 0;
  std::uint64_t tail_mask_ = ~std::uint64_t{0};
  AlignedWords data_;
  AlignedWords zeros_;
};

}  // namespace lattice::lgca
