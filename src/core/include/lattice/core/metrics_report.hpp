// MetricsReport — the engine's structured observability snapshot.
//
// LatticeEngine::snapshot() merges the process-global metrics registry
// and distills the *top-level, non-overlapping* stage histograms into
// a phase table whose seconds sum to (approximately) the wall-clock
// the engine spent inside advance(). The full registry snapshot rides
// along for everything else (backend counters, pool queue stats,
// fault tallies); tools/lattice_profile dumps the whole thing as JSON.

#pragma once

#include <string>
#include <vector>

#include "lattice/obs/json.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::core {

/// One top-level engine stage: how often it ran and the total seconds
/// spent inside it (histogram sum, ns -> s).
struct MetricsPhase {
  std::string name;
  std::int64_t count = 0;
  double seconds = 0;
};

struct MetricsReport {
  /// Wall-clock seconds accumulated across every advance() call.
  double wall_seconds = 0;
  /// Non-overlapping top-level stages (engine.pass.*, bitplane.*,
  /// engine.capture/checkpoint/restore). Their seconds sum to within
  /// a few percent of wall_seconds; the gap is loop glue.
  std::vector<MetricsPhase> phases;
  /// The full registry merge this report was built from.
  obs::MetricsSnapshot metrics;

  double phase_seconds() const noexcept;
};

/// Build a report from the global registry. `wall_seconds` is supplied
/// by the caller (the engine knows its own advance() time).
MetricsReport build_metrics_report(double wall_seconds);

/// Emit {"wall_seconds": ..., "phases": [...], "metrics": {...}}.
void metrics_report_to_json(const MetricsReport& report, obs::JsonWriter& w);

}  // namespace lattice::core
