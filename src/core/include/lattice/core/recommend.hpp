// Architecture recommendation: the paper's §6 analysis turned into a
// decision procedure. Given a technology, a lattice size, a required
// update rate and (optionally) a main-memory bandwidth budget, rank the
// three machine families by chip count and report why the losers lose
// — "each has its preferred operating regime in different parts of the
// throughput vs. lattice-size plane" (§8), made executable.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/arch/design_space.hpp"

namespace lattice::core {

struct Requirement {
  std::int64_t lattice_len = 0;        // L (square lattice side)
  double min_update_rate = 0;          // site updates per second
  /// Optional cap on main-memory bandwidth, bits per tick (0 = none).
  double max_bandwidth_bits_per_tick = 0;
};

enum class ArchChoice { Wsa, WsaE, Spa };

std::string_view arch_choice_name(ArchChoice a) noexcept;

struct Candidate {
  ArchChoice arch = ArchChoice::Wsa;
  bool feasible = false;
  std::string reason;                  // why infeasible / tradeoff note
  int pe_per_chip = 0;
  std::int64_t slice_width = 0;        // SPA only
  int depth = 0;                       // pipeline stages (generations/pass)
  double chips = 0;                    // system cost
  double rate = 0;                     // achieved updates/s
  double bandwidth_bits_per_tick = 0;  // main-memory demand
  /// WSA-E only: demand on the external line-buffer channels (bits per
  /// tick summed over stages, k·4·D). Zero for on-chip-buffer designs.
  double offchip_bits_per_tick = 0;
};

/// All three candidates, feasible ones first, cheapest (fewest chips)
/// first among those.
std::vector<Candidate> recommend(const arch::Technology& tech,
                                 const Requirement& req);

/// The winner (first feasible candidate). Throws if nothing can meet
/// the requirement.
Candidate best_architecture(const arch::Technology& tech,
                            const Requirement& req);

}  // namespace lattice::core
