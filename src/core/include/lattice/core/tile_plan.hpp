// Temporal tile planning — the cache-size model that picks how many
// generations to compute per cache-resident tile.
//
// The paper's Theorem 4 bounds the update rate of any engine by
// R ≤ B·τ(2S): with S sites of fast storage and B words/s of memory
// bandwidth, at most τ(2S) = O(S^(1/d)) updates can be extracted per
// word moved. The plain sweeps sit at the R = B floor of that bound —
// every generation streams the whole lattice through the cache once.
// plan_temporal_tiles() picks the software analog of the paper's
// blocked pebbling schedule: a tile height small enough that two
// double-buffered strips fit the cache budget, and the largest depth k
// whose skirt overhead stays a small fraction of the tile, so each
// lattice word fetched from DRAM is used k times instead of once.
//
// The planner is deliberately conservative and deterministic: it knows
// the row footprint of the target storage layout (bit-plane rows are
// ~8 planes × padded words; byte rows are `width` bytes), a fixed
// cache budget (no runtime cache sniffing — reproducible plans beat
// clever ones), and nothing else. When the whole lattice already fits
// the budget, temporal blocking cannot help (the sweep is already
// cache-resident) and auto mode stays at depth 1.

#pragma once

#include <cstdint>

#include "lattice/lgca/temporal_tile.hpp"
#include "lattice/lgca3d/plane_lattice3.hpp"

namespace lattice::core {

/// A resolved temporal-blocking decision plus the model numbers behind
/// it — everything lattice_profile prints and bench_schedule_io logs.
struct TilePlan {
  /// Generations per tile visit; 1 = no temporal blocking.
  std::int64_t depth = 1;
  /// Output rows per tile (the evened value the drivers will use).
  std::int64_t tile_rows = 0;
  /// Number of tiles the lattice splits into.
  std::int64_t tiles = 0;
  /// Rows per scratch strip: tile_rows + 2*(depth-1).
  std::int64_t scratch_rows = 0;
  /// Bytes of one storage row of the target layout.
  std::int64_t row_bytes = 0;
  /// Bytes the two scratch strips pin in cache.
  std::int64_t working_set_bytes = 0;
  /// Bytes of one full lattice buffer in the target layout.
  std::int64_t lattice_bytes = 0;
  /// The cache budget the plan was sized against.
  std::int64_t cache_bytes = 0;
  /// Redundant skirt-row recompute as a fraction of useful rows:
  /// (depth - 1) / tile_rows.
  double recompute_overhead = 0;
  /// τ(2S) at S = cache_bytes — the Theorem 4 updates-per-word ceiling
  /// the measured k-ladder is bending toward (d = 2).
  double updates_per_io_ceiling = 0;

  /// The two numbers the lgca drivers consume.
  lgca::TemporalTiling tiling() const noexcept {
    return {depth, tile_rows};
  }
};

/// Default cache budget when the caller passes 0: half of a
/// conservative 2 MiB per-core L2 — small enough that the strips stay
/// resident under the rest of the working set on any machine this
/// runs on, large enough for multi-thousand-site rows at useful depth.
inline constexpr std::int64_t kDefaultTileCacheBytes = 1 << 20;

/// Bytes of one bit-plane storage row of a width-`w` lattice: all
/// kPlanes planes at the padded word stride PlaneLattice uses.
std::int64_t plane_row_bytes(Extent extent);

/// Bytes of one byte-lattice row: one byte per site.
std::int64_t byte_row_bytes(Extent extent);

/// Resolve a temporal tile plan.
///
/// `requested_depth` is Config::tile_generations: 1 (or anything < 0)
/// disables blocking; 0 asks the cache model to choose — the largest
/// depth in [2, 12] whose tile still holds >= 8 useful rows per skirt
/// row inside the budget, and only when the lattice itself does NOT
/// fit the budget (a cache-resident sweep gains nothing from blocking
/// and would pay the skirt tax); >= 2 is honored as given, with
/// tile_rows sized to the budget (never below the depth itself).
/// The returned plan always satisfies temporal_tiling_feasible() or
/// has depth == 1.
TilePlan plan_temporal_tiles(Extent extent, lgca::Boundary boundary,
                             std::int64_t row_bytes,
                             std::int64_t requested_depth,
                             std::int64_t cache_bytes = 0);

/// Bytes of one z-plane slab in the 3-D bit-plane layout: ny bit-plane
/// storage rows. The slab is the tile unit of the z-blocked 3-D
/// drivers, so it plays the role plane_row_bytes plays in 2-D.
std::int64_t plane_slab_bytes(lgca3d::Extent3 extent);

/// The d = 3 plan: identical cache model with the row unit promoted to
/// a z-plane slab (TilePlan::tile_rows counts z-planes, row_bytes holds
/// slab bytes) and the Theorem 4 ceiling evaluated at d = 3 — the
/// working set a depth-k z-slab trapezoid pins is what bends R/B toward
/// the S^(1/3) law. The returned plan always satisfies
/// lgca3d::temporal_tiling_feasible3 or has depth == 1.
TilePlan plan_temporal_tiles3(lgca3d::Extent3 extent,
                              lgca3d::Boundary3 boundary,
                              std::int64_t requested_depth,
                              std::int64_t cache_bytes = 0);

}  // namespace lattice::core
