// Durable EngineCheckpoint serialization.
//
// A checkpoint that only lives in the engine's address space bounds
// replay work within one process; surviving a crash (or moving a long
// soak across machines) needs the snapshot on disk. The format is a
// small versioned header, the raw site payload, and a trailing FNV-1a
// checksum over everything before it:
//
//   offset  size  field
//        0     4  magic "LCKP" (little-endian u32)
//        4     4  format version (currently 1)
//        8     8  extent.width   (i64)
//       16     8  extent.height  (i64)
//       24     1  boundary (0 = Null, 1 = Periodic)
//       25     8  generation (i64)
//       33   w·h  site payload, row-major, one byte per site
//      end     8  FNV-1a 64 checksum of bytes [0, end)
//
// All multi-byte fields are little-endian regardless of host order, so
// a checkpoint written on one machine restores on another. load()
// rejects — with a typed CheckpointError, never a silent zero state —
// bad magic, unknown versions, nonsense geometry, truncation, and any
// bit flip anywhere in the file (the checksum covers the header too,
// so a corrupted extent cannot masquerade as a different lattice).
//
// The payload is the byte-site SiteLattice image, which every backend
// shares (the bit-plane backend packs/unpacks around it), so a
// checkpoint saved under one backend restores bit-exactly under any
// other.

#pragma once

#include <iosfwd>
#include <string>

#include "lattice/common/error.hpp"
#include "lattice/core/engine.hpp"

namespace lattice::core {

/// A checkpoint file failed validation: bad magic, unsupported
/// version, truncated payload, or checksum mismatch. Distinct from
/// plain Error so recovery code can treat "the snapshot is poisoned"
/// differently from "the caller passed bad arguments".
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Serialize `ckpt` to `out` in the format above. Throws Error if the
/// stream fails mid-write.
void save_checkpoint(const EngineCheckpoint& ckpt, std::ostream& out);

/// Atomic-ish file variant: writes the full image, then flushes;
/// throws Error if the file cannot be opened or written.
void save_checkpoint(const EngineCheckpoint& ckpt, const std::string& path);

/// Parse and validate a checkpoint from `in`. Throws CheckpointError
/// on any validation failure (see format notes above).
EngineCheckpoint load_checkpoint(std::istream& in);

/// File variant; throws CheckpointError if the file cannot be opened.
EngineCheckpoint load_checkpoint(const std::string& path);

}  // namespace lattice::core
