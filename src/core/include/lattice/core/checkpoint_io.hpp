// Durable EngineCheckpoint serialization.
//
// A checkpoint that only lives in the engine's address space bounds
// replay work within one process; surviving a crash (or moving a long
// soak across machines) needs the snapshot on disk. The format is a
// small versioned header, the raw site payload, and a trailing FNV-1a
// checksum over everything before it:
//
//   offset  size  field
//        0     4  magic "LCKP" (little-endian u32)
//        4     4  format version (currently 2)
//        8     8  width  nx      (i64)
//       16     8  height ny      (i64)
//       24     8  depth  nz      (i64; v2 only — absent in v1, where
//                                 the geometry is {nx, ny} with nz = 1)
//     32/24     1  boundary (0 = Null, 1 = Periodic)
//     33/25     8  generation (i64)
//          nx·ny·nz  site payload, raster (z·ny + y)·nx + x, one byte
//                    per site (row-major for nz = 1)
//      end     8  FNV-1a 64 checksum of bytes [0, end)
//
// All multi-byte fields are little-endian regardless of host order, so
// a checkpoint written on one machine restores on another. save()
// always writes v2; load() accepts v1 files unchanged (they have no
// depth field and restore with depth 1). load() rejects — with a typed
// CheckpointError, never a silent zero state — bad magic, unknown
// versions, nonsense geometry (each side bounded, and the nx·ny·nz
// volume bounded overflow-safely BEFORE any allocation, so a hostile
// header cannot request a 2^60-byte buffer), truncation, and any bit
// flip anywhere in the file (the checksum covers the header too, so a
// corrupted extent cannot masquerade as a different lattice).
//
// The payload is the byte-site SiteLattice image, which every backend
// shares (the bit-plane backend packs/unpacks around it), so a
// checkpoint saved under one backend restores bit-exactly under any
// other.

#pragma once

#include <iosfwd>
#include <string>

#include "lattice/common/error.hpp"
#include "lattice/core/engine.hpp"

namespace lattice::core {

/// A checkpoint file failed validation: bad magic, unsupported
/// version, truncated payload, or checksum mismatch. Distinct from
/// plain Error so recovery code can treat "the snapshot is poisoned"
/// differently from "the caller passed bad arguments".
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Serialize `ckpt` to `out` in the format above. Throws Error if the
/// stream fails mid-write.
void save_checkpoint(const EngineCheckpoint& ckpt, std::ostream& out);

/// Atomic-ish file variant: writes the full image, then flushes;
/// throws Error if the file cannot be opened or written.
void save_checkpoint(const EngineCheckpoint& ckpt, const std::string& path);

/// Parse and validate a checkpoint from `in`. Throws CheckpointError
/// on any validation failure (see format notes above).
EngineCheckpoint load_checkpoint(std::istream& in);

/// File variant; throws CheckpointError if the file cannot be opened.
EngineCheckpoint load_checkpoint(const std::string& path);

}  // namespace lattice::core
