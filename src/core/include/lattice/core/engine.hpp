// LatticeEngine — the library's front door.
//
// Bundles a lattice state, an update rule, and a choice of execution
// backend (golden reference, WSA pipeline, WSA-E chain, SPA machine,
// bit-plane multi-spin software kernel) behind one `advance()` call,
// and turns the backend's counters plus a technology point into the
// performance report the paper's analysis predicts: modeled update
// rate, memory bandwidth demand, and the Hong–Kung ceiling
// R ≤ B·τ(2S) the design can never beat (§7).
//
// All per-backend behavior lives behind the BackendExec executor layer
// (lattice/core/backend_exec.hpp): the engine owns one executor,
// created by a factory keyed on `Config::backend`, and never branches
// on the backend itself. This header deliberately includes none of the
// backend machinery (arch pipelines, collision LUTs, plane kernels) —
// client TUs compile only the lattice container, the technology point
// and the fault plan.
//
//   LatticeEngine engine(LatticeEngine::Config{
//       .extent = {256, 256},
//       .gas = lgca::GasKind::FHP_II,
//       .backend = core::Backend::Wsa,
//       .wsa_width = 4,
//       .pipeline_depth = 8,
//   });
//   lgca::fill_flow(engine.state(), engine.gas_model(), 0.3, 0.1, seed);
//   engine.advance(100);
//   const core::PerformanceReport r = engine.report();

#pragma once

#include <cstdint>
#include <memory>

#include "lattice/arch/memory.hpp"
#include "lattice/arch/technology.hpp"
#include "lattice/fault/fault.hpp"
#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {
class GasRule;
}  // namespace lattice::lgca

namespace lattice::core {

struct MetricsReport;
class BackendExec;

enum class Backend {
  Reference,  // golden double-buffered updater
  Wsa,        // wide-serial pipeline
  Spa,        // Sternberg partitioned machine
  BitPlane,   // multi-spin coded software backend: 64 sites/word,
              // boolean-algebra collisions (HPP, FHP-I/II gases only)
  WsaE,       // extensible WSA (§5): one PE per chip, line buffer
              // off-chip on an external memory channel
  Reference3, // golden gather-and-collide updater for the cubic 3-D
              // gas (Config::depth z-planes; custom rules rejected)
  BitPlane3,  // multi-spin coded 3-D backend: z-slab banding, scalar64
              // boolean-algebra collisions of the cubic gas
};

/// Whether `backend` runs the cubic 3-D gas over a {nx, ny, nz} volume
/// (carried through the engine as the flat {nx, ny·nz} byte lattice).
constexpr bool backend_is_3d(Backend backend) noexcept {
  return backend == Backend::Reference3 || backend == Backend::BitPlane3;
}

/// What a run cost and what the technology model says about it.
struct PerformanceReport {
  Backend backend = Backend::Reference;
  std::int64_t generations = 0;
  std::int64_t site_updates = 0;
  std::int64_t ticks = 0;               // 0 for the reference backend
  double updates_per_tick = 0;
  double modeled_rate = 0;              // updates/s at tech.clock_hz
  /// Wall-clock seconds this process spent inside advance(), and the
  /// measured software update rate site_updates / wall_seconds. The
  /// modeled rate is what the paper's silicon would sustain; the
  /// measured rate is what this simulator sustains — printing both
  /// keeps the distinction honest (docs/PERFORMANCE.md).
  double wall_seconds = 0;
  double measured_rate = 0;             // updates/s of the simulation
  double bandwidth_bits_per_tick = 0;   // main memory demand
  std::int64_t storage_sites = 0;       // S: site storage in the datapath
  /// Hong–Kung ceiling for this (B, S, d=2): R ≤ B·2τ(2S), in
  /// updates/s. The modeled rate must sit below it.
  double pebbling_rate_ceiling = 0;

  // ---- WSA-E off-chip buffer ledger (zero for other backends) ----

  /// External line-buffer storage across all stages, in sites: the §5
  /// cost the architecture moves off chip, k·(2L + 10).
  std::int64_t offchip_buffer_sites = 0;
  /// Demand on the external buffer channels, bits/tick summed over
  /// stages: k·4·D, the non-stream two thirds of the 6·D pin bill.
  double offchip_buffer_bits_per_tick = 0;
  /// Achieved fraction of that demand after bank conflicts in the
  /// configured buffer parts; 1.0 means the paper's full-bandwidth
  /// assumption holds.
  double buffer_bandwidth_fraction = 0;

  // ---- robustness (all zero unless a fault plan was armed) ----

  std::int64_t faults_injected = 0;   // words altered by the injector
  std::int64_t faults_detected = 0;   // parity + link + conservation hits
  /// Detected faults whose effects were discarded by a rollback — the
  /// corruption never reached a committed generation.
  std::int64_t faults_corrected = 0;
  std::int64_t rollbacks = 0;         // passes discarded and re-run
  std::int64_t checkpoints = 0;       // state snapshots taken
  int remapped_slices = 0;            // stuck chips/plane words retired
  double checkpoint_seconds = 0;      // wall-clock spent snapshotting
  /// Escalations past plain rollback-retry (docs/ROBUSTNESS.md):
  /// checkpoint-interval halvings under repeated faults, and intervals
  /// re-executed on the fault-free reference oracle as the last resort
  /// before CorruptionError.
  std::int64_t interval_shrinks = 0;
  std::int64_t oracle_passes = 0;
  /// Useful work only: generation × area. site_updates also counts
  /// work that was later rolled back and redone.
  std::int64_t committed_updates = 0;
  /// Update rates over committed work — what the machine delivers
  /// *through* faults, rollbacks, and degradation. Equal to
  /// modeled_rate / measured_rate on a fault-free run.
  double effective_rate = 0;          // committed/tick at tech.clock_hz
  double effective_measured_rate = 0; // committed / wall_seconds
};

/// A resumable engine snapshot (see LatticeEngine::checkpoint). For a
/// 3-D engine `state` is the flat {nx, ny·nz} view and `depth` records
/// nz, so restore() and the durable format can reject a snapshot whose
/// volume factorization does not match the target engine.
struct EngineCheckpoint {
  lgca::SiteLattice state;
  std::int64_t generation = 0;
  std::int64_t depth = 1;
};

class LatticeEngine {
 public:
  struct Config {
    Extent extent{64, 64};
    /// z extent (nz) for the 3-D backends: the engine's state becomes
    /// the flat {width, height·depth} byte view of a {width, height,
    /// depth} volume (raster order (z·ny + y)·nx + x — byte-compatible
    /// with lgca3d::Lattice3). Must be 1 for every 2-D backend.
    std::int64_t depth = 1;
    lgca::GasKind gas = lgca::GasKind::FHP_II;
    /// Override: run an arbitrary rule instead of a gas (the engine
    /// does not own it; it must outlive the engine).
    const lgca::Rule* custom_rule = nullptr;
    lgca::Boundary boundary = lgca::Boundary::Null;
    Backend backend = Backend::Reference;
    int pipeline_depth = 1;     // k: generations per pass (hardware backends)
    int wsa_width = 1;          // P
    std::int64_t spa_slice_width = 0;  // W; 0 = pick a divisor near §6.2
    /// Worker threads for the software execution: bands the reference
    /// and bit-plane sweeps, runs SPA slice pipelines as a wavefront.
    /// 1 = serial.
    unsigned threads = 1;
    /// Route gas rules through the fused CollisionLut kernel (detected
    /// once at construction; non-gas rules always use the generic
    /// path). On by default — output is bit-identical either way.
    bool fast_kernel = true;
    /// Temporal blocking for the software backends (Reference fused
    /// path and BitPlane): generations computed per cache-resident
    /// trapezoidal tile before the next tile is touched (core/
    /// tile_plan.hpp). 1 = off (today's streaming sweep); 0 = let the
    /// cache model choose; >= 2 = that exact depth when feasible.
    /// Output is bit-identical at any setting. On the guarded
    /// (fault-plan) path the checkpoint cadence quantizes to multiples
    /// of the resolved depth, so a rollback always lands on a tile-
    /// block boundary. Hardware backends ignore this (pipeline_depth
    /// is their temporal blocking).
    int tile_generations = 1;
    arch::Technology tech = arch::Technology::paper1987();
    /// WSA-E only: the external line-buffer parts on each stage's
    /// buffer channel. The default (dual-bank, single-tick cycle)
    /// sustains full bandwidth; slower parts stall the machine and
    /// show up in PerformanceReport::buffer_bandwidth_fraction.
    arch::MemoryConfig wsa_e_buffer{/*banks=*/2, /*bank_busy_ticks=*/1};

    /// Fault scenario. The byte-plan sources (buffer/side/stuck) target
    /// the hardware simulators (WSA / WSA-E / SPA — injection lives in
    /// the simulated buffers and links); the plane-memory sources
    /// (plane_flip/halo_flip/stuck_planes/parity_plane) target the
    /// bit-plane backend's plane words, with the reference executor
    /// mirroring the non-halo subset. Fault-free by default; an armed
    /// plan turns advance() into the guarded checkpoint/rollback loop
    /// below, on executors whose supports_fault_plan() accepts it.
    fault::FaultPlan fault;
    /// Snapshot the state every this many committed generations; a
    /// detected fault rolls back to the last snapshot and re-runs.
    /// 0 = one checkpoint per pass (pipeline_depth generations). Under
    /// repeated faults the engine shrinks the working interval (see
    /// advance()); it regrows back to this value on clean passes.
    std::int64_t checkpoint_interval = 0;
    /// Consecutive failed retries tolerated before the engine escalates
    /// (shrink the checkpoint interval, degrade the executor, fall back
    /// to the reference oracle) and finally throws CorruptionError.
    int max_retries = 3;
    /// Last escalation rung: when retries, interval shrinking and
    /// executor degradation have all failed, re-execute the poisoned
    /// interval on the fault-free golden reference updater (bit-exact
    /// oracle) instead of throwing. Off by default — an oracle pass
    /// masks a persistent fault the caller may rather hear about.
    bool oracle_fallback = false;
  };

  explicit LatticeEngine(Config config);
  ~LatticeEngine();
  LatticeEngine(LatticeEngine&&) noexcept;
  LatticeEngine& operator=(LatticeEngine&&) noexcept;

  /// Advance the lattice `generations` steps on the configured backend.
  ///
  /// With an armed fault plan this is the guarded loop: snapshot every
  /// checkpoint_interval generations, run each pass under the online
  /// detectors, and on any detection discard the pass, restore the last
  /// snapshot, bump the injector epoch (so transients redraw) and
  /// re-run. After max_retries consecutive failures the engine climbs
  /// an escalation ladder (docs/ROBUSTNESS.md): halve the working
  /// checkpoint interval (less exposure per attempt; it regrows on
  /// clean passes), then ask the executor to degrade (SPA remaps stuck
  /// chips, the bit-plane backend retires stuck plane words), then —
  /// if Config::oracle_fallback — re-execute the poisoned interval on
  /// the fault-free golden reference, and only then throw
  /// fault::CorruptionError.
  void advance(std::int64_t generations);

  /// Snapshot the current state and generation for later restore().
  EngineCheckpoint checkpoint() const {
    return {state_, generation_, config_.depth};
  }

  /// Generation quantum of one executor pass (>= 1): a temporally-tiled
  /// executor commits whole tile blocks, so callers that slice work into
  /// scheduling quanta (the serve layer's SessionManager) round their
  /// quantum up to a multiple of this to keep tiling and guarded
  /// checkpoints intact. 1 for every untiled backend.
  std::int64_t chunk_quantum() const noexcept;

  /// Resume from a snapshot taken on a compatibly-configured engine
  /// (same extent and boundary). verify_against_reference() stays
  /// meaningful only for checkpoints from this engine's own history.
  void restore(const EngineCheckpoint& ckpt);

  /// Injector counters so far (all zero when no fault plan is armed).
  fault::FaultCounters fault_counters() const noexcept {
    return injector_ != nullptr ? injector_->counters()
                                : fault::FaultCounters{};
  }

  /// Current lattice state (mutable, e.g. for initialization).
  lgca::SiteLattice& state() noexcept { return state_; }
  const lgca::SiteLattice& state() const noexcept { return state_; }

  const lgca::Rule& rule() const noexcept { return *rule_; }
  const lgca::GasModel& gas_model() const;
  const Config& config() const noexcept { return config_; }
  std::int64_t generation() const noexcept { return generation_; }

  PerformanceReport report() const;

  /// Merge the process-global metrics registry into a structured
  /// report: top-level per-stage times (which sum to roughly the
  /// wall-clock this engine spent inside advance()) plus the raw
  /// counter/gauge/histogram snapshot. Empty phases when the library
  /// was built with -DLATTICE_OBS=OFF. See docs/OBSERVABILITY.md.
  MetricsReport snapshot() const;

  /// Re-run the whole history on the golden reference and compare —
  /// the end-to-end correctness check for pipelined backends.
  bool verify_against_reference() const;

 private:
  void run_pass(std::int64_t chunk);
  void advance_guarded(std::int64_t generations);

  Config config_;
  std::unique_ptr<lgca::GasRule> owned_rule_;
  const lgca::Rule* rule_;
  lgca::SiteLattice initial_;
  lgca::SiteLattice state_;
  std::int64_t generation_ = 0;
  bool initial_captured_ = false;
  double wall_seconds_ = 0;

  // recovery machinery; null/zero when the fault plan is unarmed.
  // Declared before exec_ so the executor (which may hold a pointer to
  // the injector) is destroyed first.
  std::unique_ptr<fault::FaultInjector> injector_;
  std::int64_t rollbacks_ = 0;
  std::int64_t checkpoints_ = 0;
  std::int64_t faults_corrected_ = 0;
  double checkpoint_seconds_ = 0;
  /// Working checkpoint interval of the guarded loop: starts at
  /// Config::checkpoint_interval, halves on escalation, regrows on
  /// clean passes.
  std::int64_t interval_ = 0;
  std::int64_t interval_shrinks_ = 0;
  std::int64_t oracle_passes_ = 0;

  /// The backend's executor: owns all backend-specific state (kernels,
  /// persistent pipelines/machines, counters).
  std::unique_ptr<BackendExec> exec_;
};

/// Pick a slice width that divides `width` and is as close as possible
/// to the §6.2 optimum for the technology.
std::int64_t pick_spa_slice_width(const arch::Technology& tech,
                                  std::int64_t width);

}  // namespace lattice::core
