// LatticeEngine — the library's front door.
//
// Bundles a lattice state, an update rule, and a choice of execution
// backend (golden reference, WSA pipeline, SPA machine) behind one
// `advance()` call, and turns the backend's counters plus a technology
// point into the performance report the paper's analysis predicts:
// modeled update rate, memory bandwidth demand, and the Hong–Kung
// ceiling R ≤ B·τ(2S) the design can never beat (§7).
//
//   LatticeEngine engine(LatticeEngine::Config{
//       .extent = {256, 256},
//       .gas = lgca::GasKind::FHP_II,
//       .backend = core::Backend::Wsa,
//       .wsa_width = 4,
//       .pipeline_depth = 8,
//   });
//   lgca::fill_flow(engine.state(), engine.gas_model(), 0.3, 0.1, seed);
//   engine.advance(100);
//   const core::PerformanceReport r = engine.report();

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "lattice/arch/design_space.hpp"
#include "lattice/arch/spa.hpp"
#include "lattice/arch/technology.hpp"
#include "lattice/arch/wsa.hpp"
#include "lattice/lgca/collision_lut.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/lattice.hpp"

namespace lattice::core {

enum class Backend {
  Reference,  // golden double-buffered updater
  Wsa,        // wide-serial pipeline
  Spa,        // Sternberg partitioned machine
};

/// What a run cost and what the technology model says about it.
struct PerformanceReport {
  Backend backend = Backend::Reference;
  std::int64_t generations = 0;
  std::int64_t site_updates = 0;
  std::int64_t ticks = 0;               // 0 for the reference backend
  double updates_per_tick = 0;
  double modeled_rate = 0;              // updates/s at tech.clock_hz
  /// Wall-clock seconds this process spent inside advance(), and the
  /// measured software update rate site_updates / wall_seconds. The
  /// modeled rate is what the paper's silicon would sustain; the
  /// measured rate is what this simulator sustains — printing both
  /// keeps the distinction honest (docs/PERFORMANCE.md).
  double wall_seconds = 0;
  double measured_rate = 0;             // updates/s of the simulation
  double bandwidth_bits_per_tick = 0;   // main memory demand
  std::int64_t storage_sites = 0;       // S: on-chip site storage
  /// Hong–Kung ceiling for this (B, S, d=2): R ≤ B·2τ(2S), in
  /// updates/s. The modeled rate must sit below it.
  double pebbling_rate_ceiling = 0;
};

class LatticeEngine {
 public:
  struct Config {
    Extent extent{64, 64};
    lgca::GasKind gas = lgca::GasKind::FHP_II;
    /// Override: run an arbitrary rule instead of a gas (the engine
    /// does not own it; it must outlive the engine).
    const lgca::Rule* custom_rule = nullptr;
    lgca::Boundary boundary = lgca::Boundary::Null;
    Backend backend = Backend::Reference;
    int pipeline_depth = 1;     // k: generations per pass (WSA & SPA)
    int wsa_width = 1;          // P
    std::int64_t spa_slice_width = 0;  // W; 0 = pick a divisor near §6.2
    /// Worker threads for the software execution: bands the reference
    /// sweep, runs SPA slice pipelines as a wavefront. 1 = serial.
    unsigned threads = 1;
    /// Route gas rules through the fused CollisionLut kernel (detected
    /// once at construction; non-gas rules always use the generic
    /// path). On by default — output is bit-identical either way.
    bool fast_kernel = true;
    arch::Technology tech = arch::Technology::paper1987();
  };

  explicit LatticeEngine(Config config);

  /// Advance the lattice `generations` steps on the configured backend.
  void advance(std::int64_t generations);

  /// Current lattice state (mutable, e.g. for initialization).
  lgca::SiteLattice& state() noexcept { return state_; }
  const lgca::SiteLattice& state() const noexcept { return state_; }

  const lgca::Rule& rule() const noexcept { return *rule_; }
  const lgca::GasModel& gas_model() const;
  const Config& config() const noexcept { return config_; }
  std::int64_t generation() const noexcept { return generation_; }

  PerformanceReport report() const;

  /// Re-run the whole history on the golden reference and compare —
  /// the end-to-end correctness check for pipelined backends.
  bool verify_against_reference() const;

 private:
  Config config_;
  std::unique_ptr<lgca::GasRule> owned_rule_;
  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_ = nullptr;  // non-null iff fast path on
  lgca::SiteLattice initial_;
  lgca::SiteLattice state_;
  std::int64_t generation_ = 0;
  bool initial_captured_ = false;

  // accumulated backend counters
  std::int64_t ticks_ = 0;
  std::int64_t site_updates_ = 0;
  std::int64_t buffer_sites_ = 0;
  double wall_seconds_ = 0;
};

/// Pick a slice width that divides `width` and is as close as possible
/// to the §6.2 optimum for the technology.
std::int64_t pick_spa_slice_width(const arch::Technology& tech,
                                  std::int64_t width);

}  // namespace lattice::core
