// BackendExec — the polymorphic executor layer behind LatticeEngine.
//
// One executor per Backend value, created by make_backend_exec() and
// owned by the engine. Everything backend-specific lives here: kernel
// detection (CollisionLut / PlaneKernel), slice-width defaulting,
// boundary requirements, the per-pass obs histogram, fault-injector
// wiring, persistent pipeline/machine state, and the report fields
// only that backend knows (bandwidth, off-chip buffer ledger). The
// engine itself never branches on the backend.
//
// Adding a backend is one new translation unit (docs/ARCHITECTURE.md):
// subclass BackendExec, implement prepare()/run_pass(), and add a case
// to the factory in backend_exec.cpp.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "lattice/core/engine.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::fault {
class FaultInjector;
struct FaultPlan;
}  // namespace lattice::fault

namespace lattice::core {

/// Counters an executor accumulates across passes. ticks stays 0 for
/// the software backends (no simulated clock); buffer_sites is a gauge
/// holding the most recent pass's datapath storage.
struct ExecStats {
  std::int64_t ticks = 0;
  std::int64_t site_updates = 0;
  std::int64_t buffer_sites = 0;
};

class BackendExec {
 public:
  virtual ~BackendExec();
  BackendExec(const BackendExec&) = delete;
  BackendExec& operator=(const BackendExec&) = delete;

  /// One-time setup against the engine's initial state: validate the
  /// boundary mode, build the persistent pipeline/machine. Called by
  /// the engine exactly once, before the first run_pass().
  virtual void prepare(const lgca::SiteLattice& state) = 0;

  /// Advance `state` in place by `chunk` generations, the first of
  /// which is `generation`. Counters accumulate into stats().
  virtual void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                        std::int64_t generation) = 0;

  const ExecStats& stats() const noexcept { return stats_; }

  /// The obs stage name: run_pass() time lands in the top-level
  /// "engine.pass.<name>_ns" phase histogram (docs/OBSERVABILITY.md).
  std::string_view name() const noexcept { return name_; }
  obs::MetricsRegistry::Id pass_histogram() const noexcept {
    return pass_ns_;
  }

  /// Whether this executor can realize every fault source `plan` arms.
  /// The machine-memory sources (buffer/link byte flips, stuck chips)
  /// need a simulated datapath; the plane-memory sources (plane-word
  /// flips, halo flips, stuck plane words, the parity shadow) need
  /// plane-resident site storage — no executor has both. The engine
  /// rejects an armed plan the executor cannot fully realize, so a
  /// fault run never silently under-injects. The base returns false
  /// for any armed plan.
  virtual bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept;

  /// Largest chunk the executor wants for one pass, given `remaining`
  /// generations. Hardware executors bound it by the pipeline depth;
  /// software ones may take everything in one pass.
  virtual std::int64_t max_chunk(std::int64_t remaining) const noexcept;

  /// Generation quantum of one pass: the engine's guarded loop rounds
  /// chunk sizes and the working checkpoint interval up to a multiple
  /// of this, so a rollback never has to resume mid-quantum. 1 for
  /// every backend except a temporally-tiled one, whose quantum is the
  /// tile depth (a tile block commits depth generations atomically).
  virtual std::int64_t chunk_quantum() const noexcept;

  /// Backend-specific PerformanceReport fields (bandwidth demand,
  /// off-chip buffer ledger). The engine fills the generic ones.
  virtual void fill_report(PerformanceReport& report) const;

  /// Last-resort recovery hook: after max_retries failed replays the
  /// engine asks the executor to reconfigure around a persistent fault
  /// (SPA remaps stuck chips out of the datapath). Returns true if the
  /// executor degraded and the pass should be retried.
  virtual bool try_degrade();

 protected:
  /// `name` keys the pass histogram; `pipeline_depth` bounds the
  /// default max_chunk().
  BackendExec(std::string_view name, std::int64_t pipeline_depth);

  ExecStats stats_;
  std::int64_t depth_;

 private:
  std::string name_;
  obs::MetricsRegistry::Id pass_ns_;
};

/// Build the executor for config.backend. `config` is the engine's own
/// copy and may be normalized in place (e.g. SPA picks the default
/// slice width here); `injector` is null unless a fault plan is armed.
std::unique_ptr<BackendExec> make_backend_exec(LatticeEngine::Config& config,
                                               const lgca::Rule& rule,
                                               fault::FaultInjector* injector);

}  // namespace lattice::core
