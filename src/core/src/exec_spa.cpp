// SpaExec — the Sternberg partitioned machine behind the executor
// interface. The factory normalizes the slice width (0 → nearest
// lattice divisor to the §6.2 optimum) into the engine's config before
// construction, so everything downstream sees the resolved value.
//
// The machine is built once in prepare() and persists across passes
// (stage grid or wavefront ladder, depending on strategy); ragged tail
// chunks use a throwaway shallower machine. try_degrade() is the stuck
// chip remap: the injector pulls failed (depth, slice) lanes out of
// the datapath and surviving pipelines absorb their columns.

#include <optional>

#include "exec_factories.hpp"
#include "lattice/arch/spa.hpp"
#include "lattice/fault/fault.hpp"

namespace lattice::core::detail {

namespace {

class SpaExec final : public BackendExec {
 public:
  SpaExec(const LatticeEngine::Config& config, const lgca::Rule& rule,
          fault::FaultInjector* injector)
      : BackendExec("spa", config.pipeline_depth),
        cfg_(config),
        rule_(&rule),
        injector_(injector) {}

  void prepare(const lgca::SiteLattice& state) override {
    LATTICE_REQUIRE(state.boundary() == lgca::Boundary::Null,
                    "pipelined backends require null boundaries");
    spa_.emplace(state.extent(), *rule_, cfg_.spa_slice_width,
                 cfg_.pipeline_depth, /*t0=*/0, cfg_.threads,
                 cfg_.fast_kernel, injector_);
  }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (chunk == depth_) {
      spa_->set_t0(generation);
      state = spa_->run(state);
      const arch::SpaStats& s = spa_->stats();
      stats_.ticks += s.ticks - prev_.ticks;
      stats_.site_updates += s.site_updates - prev_.site_updates;
      stats_.buffer_sites = s.buffer_sites;
      prev_ = s;
    } else {
      arch::SpaMachine tail(state.extent(), *rule_, cfg_.spa_slice_width,
                            static_cast<int>(chunk), generation,
                            cfg_.threads, cfg_.fast_kernel, injector_);
      state = tail.run(state);
      stats_.ticks += tail.stats().ticks;
      stats_.site_updates += tail.stats().site_updates;
      stats_.buffer_sites = tail.stats().buffer_sites;
    }
  }

  bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept override {
    return !plan.arms_plane_memory();
  }

  bool try_degrade() override {
    if (injector_ != nullptr && injector_->has_stuck()) {
      injector_->disable_stuck();
      return true;
    }
    return false;
  }

  void fill_report(PerformanceReport& report) const override {
    report.bandwidth_bits_per_tick =
        2.0 * cfg_.tech.bits_per_site *
        static_cast<double>(cfg_.extent.width) /
        static_cast<double>(cfg_.spa_slice_width);
  }

 private:
  LatticeEngine::Config cfg_;  // copied: the engine may be moved
  const lgca::Rule* rule_;
  fault::FaultInjector* injector_;
  std::optional<arch::SpaMachine> spa_;
  arch::SpaStats prev_;  // spa_'s counters at the last harvest
};

}  // namespace

std::unique_ptr<BackendExec> make_spa_exec(LatticeEngine::Config& config,
                                           const lgca::Rule& rule,
                                           fault::FaultInjector* injector) {
  if (config.spa_slice_width == 0) {
    config.spa_slice_width =
        pick_spa_slice_width(config.tech, config.extent.width);
  }
  return std::make_unique<SpaExec>(config, rule, injector);
}

}  // namespace lattice::core::detail
