// BitPlaneExec — the multi-spin coded software backend. The kernel
// evaluates gas collisions as boolean algebra over 64-site words, so
// custom rules are rejected here (they have no plane form).
//
// max_chunk() takes everything in one pass: pipeline_depth is a
// hardware parameter with no meaning for this backend, and chunking by
// it would re-pay the pack/unpack transpose per chunk. One pass per
// advance() also gives snapshot() a single engine.pass.bitplane_ns
// sample per call, with the bitplane.pack/update/unpack stages nested
// underneath it.

#include <optional>

#include "exec_factories.hpp"
#include "lattice/core/tile_plan.hpp"
#include "lattice/fault/memory_guard.hpp"
#include "lattice/lgca/plane_kernel.hpp"
#include "lattice/lgca/plane_simd.hpp"
#include "lattice/obs/metrics.hpp"

namespace lattice::core::detail {

namespace {

class BitPlaneExec final : public BackendExec {
 public:
  BitPlaneExec(const LatticeEngine::Config& config,
               fault::FaultInjector* injector)
      : BackendExec("bitplane", config.pipeline_depth),
        kernel_(&lgca::PlaneKernel::get(config.gas)),
        threads_(config.threads),
        injector_(injector),
        plan_(plan_temporal_tiles(config.extent, config.boundary,
                                  plane_row_bytes(config.extent),
                                  config.tile_generations)) {
    if (injector_ != nullptr) guard_.emplace(*injector_);
    // Surface which span variant this process dispatches to (a profile
    // can't tell 64-bit from 512-bit words from timings alone).
    static const obs::MetricsRegistry::Id simd_id =
        obs::gauge_id("bitplane.simd_bits");
    obs::gauge_set(
        simd_id,
        lgca::plane_span_ops(lgca::plane_simd_active()).width_bits);
  }

  void prepare(const lgca::SiteLattice& state) override { (void)state; }

  std::int64_t max_chunk(std::int64_t remaining) const noexcept override {
    return remaining;
  }

  std::int64_t chunk_quantum() const noexcept override { return plan_.depth; }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (plan_.depth > 1) {
      lgca::bitplane_gas_run_tiled(state, *kernel_, chunk, generation,
                                   threads_, plan_.tiling(),
                                   guard_ ? &*guard_ : nullptr);
    } else {
      lgca::bitplane_gas_run(state, *kernel_, chunk, generation, threads_,
                             /*band_grain_words=*/0,
                             guard_ ? &*guard_ : nullptr);
    }
    stats_.site_updates += state.extent().area() * chunk;
  }

  bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept override {
    // Plane-resident storage realizes every plane-memory source; the
    // machine-memory sources (pipeline buffers, inter-stage links,
    // stuck chips) have no physical analog here.
    return !plan.arms_machine_memory();
  }

  bool try_degrade() override {
    if (injector_ != nullptr && injector_->has_stuck_planes()) {
      injector_->disable_stuck_planes();
      return true;
    }
    return false;
  }

 private:
  const lgca::PlaneKernel* kernel_;
  unsigned threads_;
  fault::FaultInjector* injector_;
  TilePlan plan_;
  std::optional<fault::PlaneMemoryGuard> guard_;
};

}  // namespace

std::unique_ptr<BackendExec> make_bitplane_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector) {
  (void)rule;
  LATTICE_REQUIRE(config.custom_rule == nullptr,
                  "the bit-plane backend runs lattice gases only; "
                  "custom rules have no boolean-algebra kernel");
  return std::make_unique<BitPlaneExec>(config, injector);
}

}  // namespace lattice::core::detail
