#include "lattice/core/tile_plan.hpp"

#include <algorithm>

#include "lattice/common/error.hpp"
#include "lattice/lgca/plane_lattice.hpp"
#include "lattice/pebble/bounds.hpp"

namespace lattice::core {

std::int64_t plane_row_bytes(Extent extent) {
  using lgca::PlaneLattice;
  const std::int64_t words =
      (extent.width + PlaneLattice::kWordBits - 1) / PlaneLattice::kWordBits;
  // Mirror the PlaneLattice stride: kRowPad guard/alignment words plus
  // the payload, the trailing guard, rounded up to the pad quantum.
  const std::int64_t stride =
      PlaneLattice::kRowPad + (words + 1 + PlaneLattice::kRowPad - 1) /
                                  PlaneLattice::kRowPad *
                                  PlaneLattice::kRowPad;
  return PlaneLattice::kPlanes * stride *
         (PlaneLattice::kWordBits / 8);
}

std::int64_t byte_row_bytes(Extent extent) { return extent.width; }

std::int64_t plane_slab_bytes(lgca3d::Extent3 extent) {
  return extent.ny * plane_row_bytes({extent.nx, extent.ny});
}

TilePlan plan_temporal_tiles(Extent extent, lgca::Boundary boundary,
                             std::int64_t row_bytes,
                             std::int64_t requested_depth,
                             std::int64_t cache_bytes) {
  LATTICE_REQUIRE(row_bytes > 0, "tile plan needs a positive row footprint");
  TilePlan plan;
  plan.row_bytes = row_bytes;
  plan.cache_bytes = cache_bytes > 0 ? cache_bytes : kDefaultTileCacheBytes;
  plan.lattice_bytes = extent.height * row_bytes;
  plan.updates_per_io_ceiling = pebble::updates_per_io_upper(
      pebble::kEngineLatticeDim, static_cast<double>(plan.cache_bytes));
  if (requested_depth == 1 || requested_depth < 0 || extent.area() == 0) {
    return plan;
  }

  // Rows the budget can hold across the two ping-pong strips.
  const std::int64_t rows_budget = plan.cache_bytes / (2 * row_bytes);

  const auto resolve = [&](std::int64_t depth) -> bool {
    // Useful rows left after the budget pays for both skirts.
    const std::int64_t rows = std::max(depth, rows_budget - 2 * (depth - 1));
    lgca::TemporalTiling tiling{depth, rows};
    if (!lgca::temporal_tiling_feasible(tiling, extent, boundary)) {
      return false;
    }
    // Even the tiles out exactly as the drivers will.
    const std::int64_t tiles = (extent.height + rows - 1) / rows;
    plan.depth = depth;
    plan.tile_rows = (extent.height + tiles - 1) / tiles;
    plan.tiles = tiles;
    plan.scratch_rows = rows + 2 * (depth - 1);
    plan.working_set_bytes = 2 * plan.scratch_rows * row_bytes;
    plan.recompute_overhead = static_cast<double>(depth - 1) /
                              static_cast<double>(plan.tile_rows);
    return true;
  };

  if (requested_depth >= 2) {
    // An explicit depth is honored if at all feasible; the fallback is
    // depth 1 (plain sweep), never a silently different depth.
    resolve(requested_depth);
    return plan;
  }

  // Auto (requested_depth == 0): blocking only pays when the sweep is
  // NOT already cache-resident — both double buffers over the budget.
  if (2 * plan.lattice_bytes <= plan.cache_bytes) return plan;
  // Deepest k whose tile keeps >= 8 useful rows per skirt row, so the
  // redundant recompute stays under ~1/8 of the work.
  for (std::int64_t depth = 12; depth >= 2; --depth) {
    const std::int64_t rows = rows_budget - 2 * (depth - 1);
    if (rows < 8 * depth) continue;
    if (resolve(depth)) break;
  }
  return plan;
}

TilePlan plan_temporal_tiles3(lgca3d::Extent3 extent,
                              lgca3d::Boundary3 boundary,
                              std::int64_t requested_depth,
                              std::int64_t cache_bytes) {
  // The 2-D planner with rows promoted to z-plane slabs: a {nx, nz}
  // "lattice" whose row footprint is the whole slab reproduces exactly
  // the feasibility predicate the 3-D tiled driver enforces (>= 2
  // tiles over nz; Null scratch slab no deeper than nz).
  TilePlan plan = plan_temporal_tiles({extent.nx, extent.nz},
                                      lgca3d::to_boundary2(boundary),
                                      plane_slab_bytes(extent),
                                      requested_depth, cache_bytes);
  plan.updates_per_io_ceiling =
      pebble::updates_per_io_upper(3, static_cast<double>(plan.cache_bytes));
  return plan;
}

}  // namespace lattice::core
