// WsaExec — the wide-serial pipeline behind the executor interface.
//
// The stage chain is built once in prepare() and persists across
// passes: a full-depth pass retargets it with set_t0() and rearms in
// place, so the steady-state advance loop allocates nothing. Only a
// ragged tail chunk (chunk < pipeline depth, at most once per
// advance() call) pays for a throwaway shorter chain.

#include <optional>

#include "exec_factories.hpp"
#include "lattice/arch/wsa.hpp"
#include "lattice/fault/fault.hpp"

namespace lattice::core::detail {

namespace {

class WsaExec final : public BackendExec {
 public:
  WsaExec(const LatticeEngine::Config& config, const lgca::Rule& rule,
          fault::FaultInjector* injector)
      : BackendExec("wsa", config.pipeline_depth),
        cfg_(config),
        rule_(&rule),
        injector_(injector) {}

  void prepare(const lgca::SiteLattice& state) override {
    LATTICE_REQUIRE(state.boundary() == lgca::Boundary::Null,
                    "pipelined backends require null boundaries");
    pipe_.emplace(state.extent(), *rule_, cfg_.pipeline_depth,
                  cfg_.wsa_width, /*t0=*/0, cfg_.fast_kernel, injector_);
  }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (chunk == depth_) {
      pipe_->set_t0(generation);
      state = pipe_->run(state);
      const arch::PipelineStats& s = pipe_->stats();
      stats_.ticks += s.ticks - prev_.ticks;
      stats_.site_updates += s.site_updates - prev_.site_updates;
      stats_.buffer_sites = s.buffer_sites;
      prev_ = s;
    } else {
      arch::WsaPipeline tail(state.extent(), *rule_, static_cast<int>(chunk),
                             cfg_.wsa_width, generation, cfg_.fast_kernel,
                             injector_);
      state = tail.run(state);
      stats_.ticks += tail.stats().ticks;
      stats_.site_updates += tail.stats().site_updates;
      stats_.buffer_sites = tail.stats().buffer_sites;
    }
  }

  bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept override {
    // The pipeline's buffers and links take the machine-memory
    // sources; there is no plane-resident storage to corrupt.
    return !plan.arms_plane_memory();
  }

  void fill_report(PerformanceReport& report) const override {
    report.bandwidth_bits_per_tick =
        2.0 * cfg_.tech.bits_per_site * cfg_.wsa_width;
  }

 private:
  LatticeEngine::Config cfg_;  // copied: the engine may be moved
  const lgca::Rule* rule_;
  fault::FaultInjector* injector_;
  std::optional<arch::WsaPipeline> pipe_;
  arch::PipelineStats prev_;  // pipe_'s counters at the last harvest
};

}  // namespace

std::unique_ptr<BackendExec> make_wsa_exec(const LatticeEngine::Config& config,
                                           const lgca::Rule& rule,
                                           fault::FaultInjector* injector) {
  return std::make_unique<WsaExec>(config, rule, injector);
}

}  // namespace lattice::core::detail
