#include "lattice/core/recommend.hpp"

#include <algorithm>
#include <cmath>

namespace lattice::core {

namespace {

using arch::Technology;

Candidate eval_wsa(const Technology& t, const Requirement& req) {
  Candidate c;
  c.arch = ArchChoice::Wsa;
  const arch::WsaDesign base = arch::wsa::paper_design(t);
  c.pe_per_chip = base.pe_per_chip;
  if (req.lattice_len > base.lattice_len) {
    c.reason = "lattice exceeds the on-chip line-buffer limit L = " +
               std::to_string(base.lattice_len);
    return c;
  }
  const double per_stage = t.clock_hz * base.pe_per_chip;
  const auto depth = static_cast<std::int64_t>(
      std::ceil(req.min_update_rate / per_stage));
  // k_max = L: the pipeline cannot usefully exceed the lattice (§6.1).
  if (depth > req.lattice_len) {
    c.reason = "required rate exceeds R_max = (Pi/2D)*F*L";
    return c;
  }
  c.depth = static_cast<int>(std::max<std::int64_t>(1, depth));
  arch::WsaDesign d = base;
  d.depth = c.depth;
  c.chips = c.depth;
  c.rate = arch::wsa::throughput(t, d);
  c.bandwidth_bits_per_tick = arch::wsa::bandwidth_bits_per_tick(t, d);
  c.feasible = true;
  c.reason = "simple raster stream, minimum bandwidth";
  return c;
}

Candidate eval_wsa_e(const Technology& t, const Requirement& req) {
  Candidate c;
  c.arch = ArchChoice::WsaE;
  c.pe_per_chip = arch::wsa_e::max_pe_pins(t);
  if (c.pe_per_chip < 1) {
    c.reason = "pin budget cannot host even one PE with external buffers";
    return c;
  }
  const double per_stage = t.clock_hz * c.pe_per_chip;
  const auto depth = static_cast<std::int64_t>(
      std::ceil(req.min_update_rate / per_stage));
  if (depth > req.lattice_len) {
    c.reason = "required rate exceeds the k = L pipeline ceiling";
    return c;
  }
  c.depth = static_cast<int>(std::max<std::int64_t>(1, depth));
  // Chip cost: one PE chip per stage plus external shift registers
  // expressed in chip-area equivalents.
  c.chips = c.depth * (1.0 + arch::wsa_e::storage_area_per_pe(
                                 t, req.lattice_len));
  c.rate = arch::wsa_e::throughput(t, c.depth);
  c.bandwidth_bits_per_tick = arch::wsa_e::bandwidth_bits_per_tick(t);
  c.offchip_bits_per_tick = static_cast<double>(c.depth) *
                            arch::wsa_e::buffer_bits_per_tick_per_pe(t);
  c.feasible = true;
  c.reason = "extensible to any lattice, constant bandwidth, slow";
  return c;
}

Candidate eval_spa(const Technology& t, const Requirement& req) {
  Candidate c;
  c.arch = ArchChoice::Spa;
  arch::SpaDesign d = arch::spa::paper_design(t, req.lattice_len, 1);
  c.pe_per_chip = d.slices_per_chip * d.depth_per_chip;
  c.slice_width = d.slice_width;
  if (d.slice_width < 2) {
    c.reason = "area constraint leaves no room for a slice buffer";
    return c;
  }
  const double per_depth =
      t.clock_hz * static_cast<double>(req.lattice_len) /
      static_cast<double>(d.slice_width);
  auto depth = static_cast<std::int64_t>(
      std::ceil(req.min_update_rate / per_depth));
  depth = std::max<std::int64_t>(1, depth);
  c.depth = static_cast<int>(depth);
  d.depth = c.depth;
  // Whole chips: a stage-row needs ceil(slices / P_w) chips and the
  // machine ceil(depth / P_k) such rows.
  const double slices = std::ceil(static_cast<double>(req.lattice_len) /
                                  static_cast<double>(d.slice_width));
  c.chips = std::ceil(slices / d.slices_per_chip) *
            std::ceil(static_cast<double>(c.depth) / d.depth_per_chip);
  c.rate = arch::spa::throughput(t, d);
  c.bandwidth_bits_per_tick = arch::spa::bandwidth_bits_per_tick(t, d);
  c.feasible = true;
  c.reason = "highest throughput per chip; pays slice bandwidth";
  return c;
}

}  // namespace

std::string_view arch_choice_name(ArchChoice a) noexcept {
  switch (a) {
    case ArchChoice::Wsa:
      return "WSA";
    case ArchChoice::WsaE:
      return "WSA-E";
    case ArchChoice::Spa:
      return "SPA";
  }
  return "?";
}

std::vector<Candidate> recommend(const Technology& tech,
                                 const Requirement& req) {
  tech.validate();
  LATTICE_REQUIRE(req.lattice_len >= 2, "lattice_len must be >= 2");
  LATTICE_REQUIRE(req.min_update_rate >= 0, "rate must be >= 0");

  std::vector<Candidate> out = {eval_wsa(tech, req), eval_spa(tech, req),
                                eval_wsa_e(tech, req)};
  // Apply the bandwidth budget.
  if (req.max_bandwidth_bits_per_tick > 0) {
    for (Candidate& c : out) {
      if (c.feasible &&
          c.bandwidth_bits_per_tick > req.max_bandwidth_bits_per_tick) {
        c.feasible = false;
        c.reason = "exceeds the main-memory bandwidth budget";
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (!a.feasible) return false;
                     if (a.chips != b.chips) return a.chips < b.chips;
                     // Equal silicon: prefer the lighter memory system.
                     return a.bandwidth_bits_per_tick <
                            b.bandwidth_bits_per_tick;
                   });
  return out;
}

Candidate best_architecture(const Technology& tech, const Requirement& req) {
  const auto all = recommend(tech, req);
  LATTICE_REQUIRE(!all.empty() && all.front().feasible,
                  "no architecture meets the requirement");
  return all.front();
}

}  // namespace lattice::core
