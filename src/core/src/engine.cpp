#include "lattice/core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "lattice/core/metrics_report.hpp"
#include "lattice/lgca/reference.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"
#include "lattice/pebble/bounds.hpp"

namespace lattice::core {

namespace {

// Resolved once; the engine's hot loop then only touches atomics.
// Phase histograms here are the *top-level* stage accounting that
// build_metrics_report() sums against wall-clock: the BitPlane backend
// has none (its bitplane.pack/update/unpack stages are the top level).
struct EngineObs {
  obs::MetricsRegistry::Id generations = obs::counter_id("engine.generations");
  obs::MetricsRegistry::Id site_updates =
      obs::counter_id("engine.site_updates");
  obs::MetricsRegistry::Id rollbacks = obs::counter_id("engine.rollbacks");
  obs::MetricsRegistry::Id replays = obs::counter_id("engine.replays");
  obs::MetricsRegistry::Id checkpoints = obs::counter_id("engine.checkpoints");
  obs::MetricsRegistry::Id pass_reference_ns =
      obs::histogram_id("engine.pass.reference_ns");
  obs::MetricsRegistry::Id pass_wsa_ns =
      obs::histogram_id("engine.pass.wsa_ns");
  obs::MetricsRegistry::Id pass_spa_ns =
      obs::histogram_id("engine.pass.spa_ns");
  obs::MetricsRegistry::Id capture_ns = obs::histogram_id("engine.capture_ns");
  obs::MetricsRegistry::Id checkpoint_ns =
      obs::histogram_id("engine.checkpoint_ns");
  obs::MetricsRegistry::Id restore_ns = obs::histogram_id("engine.restore_ns");
  static const EngineObs& get() {
    static const EngineObs ids;
    return ids;
  }
};

obs::MetricsRegistry::Id pass_histogram(Backend backend) {
  if constexpr (!obs::kEnabled) return obs::MetricsRegistry::kInvalidId;
  switch (backend) {
    case Backend::Reference: return EngineObs::get().pass_reference_ns;
    case Backend::Wsa: return EngineObs::get().pass_wsa_ns;
    case Backend::Spa: return EngineObs::get().pass_spa_ns;
    case Backend::BitPlane: break;  // bitplane.* stages are top-level
  }
  return obs::MetricsRegistry::kInvalidId;
}

}  // namespace

std::int64_t pick_spa_slice_width(const arch::Technology& tech,
                                  std::int64_t width) {
  LATTICE_REQUIRE(width >= 2, "lattice width must be >= 2");
  const double target = arch::spa::corner(tech).slice_width;
  std::int64_t best = width;  // single slice always divides
  double best_gap = std::abs(static_cast<double>(width) - target);
  for (std::int64_t w = 2; w <= width; ++w) {
    if (width % w != 0) continue;
    const double gap = std::abs(static_cast<double>(w) - target);
    if (gap < best_gap) {
      best = w;
      best_gap = gap;
    }
  }
  return best;
}

LatticeEngine::LatticeEngine(Config config)
    : config_(config),
      initial_({config.extent.width, config.extent.height}, config.boundary),
      state_({config.extent.width, config.extent.height}, config.boundary) {
  LATTICE_REQUIRE(config_.pipeline_depth >= 1, "pipeline depth must be >= 1");
  if (config_.custom_rule != nullptr) {
    rule_ = config_.custom_rule;
  } else {
    owned_rule_ = std::make_unique<lgca::GasRule>(config_.gas);
    rule_ = owned_rule_.get();
  }
  if (config_.threads == 0) config_.threads = 1;
  // One-time fast-path detection: a GasRule gets the fused LUT kernel,
  // anything else keeps the generic virtual-dispatch path.
  if (config_.fast_kernel) lut_ = lgca::CollisionLut::try_get(*rule_);
  if (config_.backend == Backend::Wsa || config_.backend == Backend::Spa) {
    LATTICE_REQUIRE(config_.boundary == lgca::Boundary::Null,
                    "pipelined backends require null boundaries");
  }
  if (config_.backend == Backend::BitPlane) {
    // The bit-plane backend evaluates the gas collision rules as
    // boolean algebra; a custom Rule has no such form, and FHP-III's
    // table is a class permutation that PlaneKernel::get rejects.
    LATTICE_REQUIRE(config_.custom_rule == nullptr,
                    "the bit-plane backend runs lattice gases only; "
                    "custom rules have no boolean-algebra kernel");
    plane_ = &lgca::PlaneKernel::get(config_.gas);
  }
  if (config_.backend == Backend::Spa && config_.spa_slice_width == 0) {
    config_.spa_slice_width =
        pick_spa_slice_width(config_.tech, config_.extent.width);
  }
  LATTICE_REQUIRE(config_.checkpoint_interval >= 0,
                  "checkpoint interval must be >= 0");
  LATTICE_REQUIRE(config_.max_retries >= 0, "max retries must be >= 0");
  if (config_.fault.armed()) {
    LATTICE_REQUIRE(
        config_.backend == Backend::Wsa || config_.backend == Backend::Spa,
        "fault injection targets the hardware backends; the reference and "
        "bit-plane updaters have no simulated buffers to corrupt");
    injector_ = std::make_unique<fault::FaultInjector>(config_.fault);
    if (config_.checkpoint_interval == 0) {
      config_.checkpoint_interval = config_.pipeline_depth;
    }
  }
}

const lgca::GasModel& LatticeEngine::gas_model() const {
  LATTICE_REQUIRE(owned_rule_ != nullptr,
                  "engine was configured with a custom rule, not a gas");
  return owned_rule_->model();
}

void LatticeEngine::run_pass(int chunk) {
  const obs::TraceSpan span("engine.pass");
  const obs::ScopedTimer pass_timer(pass_histogram(config_.backend));
  switch (config_.backend) {
    case Backend::Reference: {
      if (lut_ != nullptr) {
        lgca::fused_gas_run(state_, *lut_, chunk, generation_,
                            config_.threads);
      } else if (config_.threads > 1) {
        lgca::reference_run_parallel(state_, *rule_, chunk, config_.threads,
                                     generation_);
      } else {
        lgca::reference_run(state_, *rule_, chunk, generation_);
      }
      site_updates_ += state_.extent().area() * chunk;
      break;
    }
    case Backend::BitPlane: {
      lgca::bitplane_gas_run(state_, *plane_, chunk, generation_,
                             config_.threads);
      site_updates_ += state_.extent().area() * chunk;
      break;
    }
    case Backend::Wsa: {
      arch::WsaPipeline pipe(state_.extent(), *rule_, chunk,
                             config_.wsa_width, generation_, lut_ != nullptr,
                             injector_.get());
      state_ = pipe.run(state_);
      ticks_ += pipe.stats().ticks;
      site_updates_ += pipe.stats().site_updates;
      buffer_sites_ = pipe.stats().buffer_sites;
      break;
    }
    case Backend::Spa: {
      arch::SpaMachine spa(state_.extent(), *rule_, config_.spa_slice_width,
                           chunk, generation_, config_.threads,
                           lut_ != nullptr, injector_.get());
      state_ = spa.run(state_);
      ticks_ += spa.stats().ticks;
      site_updates_ += spa.stats().site_updates;
      buffer_sites_ = spa.stats().buffer_sites;
      break;
    }
  }
}

void LatticeEngine::advance(std::int64_t generations) {
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  const obs::TraceSpan span("engine.advance");
  const std::int64_t updates_before = site_updates_;
  const auto start = std::chrono::steady_clock::now();
  if (!initial_captured_) {
    const obs::ScopedTimer timer(EngineObs::get().capture_ns);
    initial_ = state_;
    initial_captured_ = true;
  }
  if (injector_ != nullptr) {
    advance_guarded(generations);
  } else if (config_.backend == Backend::BitPlane) {
    // One pass for the whole call: pipeline_depth is a hardware
    // parameter with no meaning for this software backend, and
    // chunking by it would re-pay the pack/unpack transpose per chunk.
    lgca::bitplane_gas_run(state_, *plane_, generations, generation_,
                           config_.threads);
    site_updates_ += state_.extent().area() * generations;
    generation_ += generations;
  } else {
    std::int64_t left = generations;
    while (left > 0) {
      const int chunk = static_cast<int>(
          std::min<std::int64_t>(left, config_.pipeline_depth));
      run_pass(chunk);
      generation_ += chunk;
      left -= chunk;
    }
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  obs::count(EngineObs::get().generations, generations);
  obs::count(EngineObs::get().site_updates, site_updates_ - updates_before);
}

// The guarded loop: every pass runs under the online detectors; any
// detection discards the pass's output — the machine's time is spent
// (ticks and site_updates keep counting, as the silicon would), but no
// corrupted generation is ever committed. Re-execution is exact: the
// injector's epoch is bumped so transient draws differ, while stuck
// faults (persistent silicon) replay until remapped.
void LatticeEngine::advance_guarded(std::int64_t generations) {
  const std::int64_t target = generation_ + generations;
  EngineCheckpoint ckpt{state_, generation_};
  const auto snapshot = [&] {
    const obs::TraceSpan span("engine.checkpoint");
    const obs::ScopedTimer timer(EngineObs::get().checkpoint_ns);
    const auto t0 = std::chrono::steady_clock::now();
    ckpt.state = state_;
    ckpt.generation = generation_;
    checkpoint_seconds_ += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    ++checkpoints_;
    obs::count(EngineObs::get().checkpoints, 1);
  };
  ++checkpoints_;  // the entry snapshot above
  obs::count(EngineObs::get().checkpoints, 1);
  int attempts = 0;
  while (generation_ < target) {
    const int chunk = static_cast<int>(std::min<std::int64_t>(
        target - generation_, config_.pipeline_depth));
    const std::int64_t before = injector_->counters().detected();
    run_pass(chunk);
    const std::int64_t after = injector_->counters().detected();
    if (after == before) {
      generation_ += chunk;
      attempts = 0;
      if (generation_ - ckpt.generation >= config_.checkpoint_interval &&
          generation_ < target) {
        snapshot();
      }
      continue;
    }
    // A detector fired: everything since the last checkpoint is suspect.
    ++rollbacks_;
    faults_corrected_ += after - before;
    {
      const obs::TraceSpan rb_span("engine.rollback");
      const obs::ScopedTimer timer(EngineObs::get().restore_ns);
      state_ = ckpt.state;
      generation_ = ckpt.generation;
    }
    obs::count(EngineObs::get().rollbacks, 1);
    obs::count(EngineObs::get().replays, 1);
    injector_->bump_epoch();
    if (++attempts > config_.max_retries) {
      if (config_.backend == Backend::Spa && injector_->has_stuck()) {
        // Graceful degradation: pull the stuck chips out of the
        // datapath; surviving pipelines absorb their columns (the SPA
        // charges the extra ticks) and the retry budget resets.
        injector_->disable_stuck();
        attempts = 0;
        continue;
      }
      throw fault::CorruptionError(
          "fault recovery failed at generation " +
              std::to_string(generation_) + ": " +
              std::to_string(config_.max_retries) +
              " retries exhausted and no degradation path remains",
          injector_->counters());
    }
  }
}

void LatticeEngine::restore(const EngineCheckpoint& ckpt) {
  LATTICE_REQUIRE(ckpt.state.extent() == state_.extent(),
                  "checkpoint extent does not match the engine");
  LATTICE_REQUIRE(ckpt.state.boundary() == state_.boundary(),
                  "checkpoint boundary mode does not match the engine");
  LATTICE_REQUIRE(ckpt.generation >= 0, "checkpoint generation must be >= 0");
  const obs::ScopedTimer timer(EngineObs::get().restore_ns);
  state_ = ckpt.state;
  generation_ = ckpt.generation;
}

PerformanceReport LatticeEngine::report() const {
  PerformanceReport r;
  r.backend = config_.backend;
  r.generations = generation_;
  r.site_updates = site_updates_;
  r.ticks = ticks_;
  r.updates_per_tick =
      ticks_ > 0 ? static_cast<double>(site_updates_) /
                       static_cast<double>(ticks_)
                 : 0.0;
  r.modeled_rate = r.updates_per_tick * config_.tech.clock_hz;
  r.wall_seconds = wall_seconds_;
  r.measured_rate = wall_seconds_ > 0
                        ? static_cast<double>(site_updates_) / wall_seconds_
                        : 0.0;
  r.storage_sites = buffer_sites_;

  const double d = config_.tech.bits_per_site;
  switch (config_.backend) {
    case Backend::Reference:
    case Backend::BitPlane:
      // Software backends: no simulated datapath, no modeled bandwidth.
      break;
    case Backend::Wsa:
      r.bandwidth_bits_per_tick = 2.0 * d * config_.wsa_width;
      break;
    case Backend::Spa:
      r.bandwidth_bits_per_tick =
          2.0 * d *
          static_cast<double>(state_.extent().width) /
          static_cast<double>(config_.spa_slice_width);
      break;
  }

  if (r.bandwidth_bits_per_tick > 0 && r.storage_sites > 0) {
    // B in site values per second; d = 2 lattice.
    const double bw_sites =
        r.bandwidth_bits_per_tick / d * config_.tech.clock_hz;
    r.pebbling_rate_ceiling = pebble::update_rate_upper(
        2, static_cast<double>(r.storage_sites), bw_sites);
  }

  // Robustness accounting. committed_updates counts only generations
  // that survived the detectors; on a fault-free run it equals
  // site_updates and the effective rates collapse onto the plain ones.
  r.committed_updates = generation_ * state_.extent().area();
  r.effective_rate = ticks_ > 0
                         ? static_cast<double>(r.committed_updates) /
                               static_cast<double>(ticks_) *
                               config_.tech.clock_hz
                         : 0.0;
  r.effective_measured_rate =
      wall_seconds_ > 0
          ? static_cast<double>(r.committed_updates) / wall_seconds_
          : 0.0;
  if (injector_ != nullptr) {
    const fault::FaultCounters& c = injector_->counters();
    r.faults_injected = c.injected();
    r.faults_detected = c.detected();
    r.faults_corrected = faults_corrected_;
    r.rollbacks = rollbacks_;
    r.checkpoints = checkpoints_;
    r.remapped_slices = injector_->remapped_lanes();
    r.checkpoint_seconds = checkpoint_seconds_;
  }
  return r;
}

MetricsReport LatticeEngine::snapshot() const {
  return build_metrics_report(wall_seconds_);
}

bool LatticeEngine::verify_against_reference() const {
  if (!initial_captured_) return true;
  lgca::SiteLattice replay = initial_;
  lgca::reference_run(replay, *rule_, generation_, 0);
  return replay == state_;
}

}  // namespace lattice::core
