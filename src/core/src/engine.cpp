#include "lattice/core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "lattice/arch/design_space.hpp"
#include "lattice/core/backend_exec.hpp"
#include "lattice/core/metrics_report.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/reference.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"
#include "lattice/pebble/bounds.hpp"
#include "volume3.hpp"

namespace lattice::core {

namespace {

// Resolve the extent of the engine's state buffers. A 3-D backend
// carries the {nx, ny, nz} volume as its flat {nx, ny·nz} byte view
// (validated as a volume first, so hostile extents fail with a typed
// error before any allocation); every 2-D backend requires depth == 1.
Extent engine_state_extent(const LatticeEngine::Config& config) {
  LATTICE_REQUIRE(config.depth >= 1, "depth must be >= 1");
  if (backend_is_3d(config.backend)) {
    lgca3d::validate_extent3(detail::extent3_of(config));
    return lgca3d::flat_extent(detail::extent3_of(config));
  }
  LATTICE_REQUIRE(config.depth == 1,
                  "depth > 1 needs a 3-D backend (Reference3 or BitPlane3)");
  return config.extent;
}

// Resolved once; the engine's hot loop then only touches atomics. The
// per-backend pass histograms live with the executors (each BackendExec
// owns its engine.pass.<name>_ns id); what remains here is the
// backend-independent accounting.
struct EngineObs {
  obs::MetricsRegistry::Id generations = obs::counter_id("engine.generations");
  obs::MetricsRegistry::Id site_updates =
      obs::counter_id("engine.site_updates");
  obs::MetricsRegistry::Id rollbacks = obs::counter_id("engine.rollbacks");
  obs::MetricsRegistry::Id replays = obs::counter_id("engine.replays");
  obs::MetricsRegistry::Id checkpoints = obs::counter_id("engine.checkpoints");
  obs::MetricsRegistry::Id interval_shrinks =
      obs::counter_id("engine.interval_shrinks");
  obs::MetricsRegistry::Id oracle_passes =
      obs::counter_id("engine.oracle_passes");
  obs::MetricsRegistry::Id capture_ns = obs::histogram_id("engine.capture_ns");
  obs::MetricsRegistry::Id checkpoint_ns =
      obs::histogram_id("engine.checkpoint_ns");
  obs::MetricsRegistry::Id restore_ns = obs::histogram_id("engine.restore_ns");
  static const EngineObs& get() {
    static const EngineObs ids;
    return ids;
  }
};

}  // namespace

std::int64_t pick_spa_slice_width(const arch::Technology& tech,
                                  std::int64_t width) {
  LATTICE_REQUIRE(width >= 2, "lattice width must be >= 2");
  const double target = arch::spa::corner(tech).slice_width;
  std::int64_t best = width;  // single slice always divides
  double best_gap = std::abs(static_cast<double>(width) - target);
  for (std::int64_t w = 2; w <= width; ++w) {
    if (width % w != 0) continue;
    const double gap = std::abs(static_cast<double>(w) - target);
    if (gap < best_gap) {
      best = w;
      best_gap = gap;
    }
  }
  return best;
}

LatticeEngine::LatticeEngine(Config config)
    : config_(config),
      initial_(engine_state_extent(config), config.boundary),
      state_(engine_state_extent(config), config.boundary) {
  LATTICE_REQUIRE(config_.pipeline_depth >= 1, "pipeline depth must be >= 1");
  if (config_.custom_rule != nullptr) {
    rule_ = config_.custom_rule;
  } else {
    owned_rule_ = std::make_unique<lgca::GasRule>(config_.gas);
    rule_ = owned_rule_.get();
  }
  if (config_.threads == 0) config_.threads = 1;
  LATTICE_REQUIRE(config_.checkpoint_interval >= 0,
                  "checkpoint interval must be >= 0");
  LATTICE_REQUIRE(config_.max_retries >= 0, "max retries must be >= 0");
  LATTICE_REQUIRE(config_.tile_generations >= 0,
                  "tile generations must be >= 0 (0 = auto, 1 = off)");
  if (config_.fault.armed()) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.fault);
  }
  // Everything backend-specific — kernel detection, slice-width
  // defaulting, boundary requirements, persistent pipelines — lives in
  // the executor. The factory may normalize config_ in place.
  exec_ = make_backend_exec(config_, *rule_, injector_.get());
  LATTICE_REQUIRE(
      injector_ == nullptr || exec_->supports_fault_plan(config_.fault),
      "this backend cannot realize the armed fault plan: the byte-plan "
      "sources (buffer/side/stuck) need a hardware simulator's buffers "
      "and links, the plane-memory sources (plane_flip/halo_flip/"
      "stuck_planes/parity_plane) need the bit-plane backend (the "
      "reference executor mirrors the non-halo subset)");
  if (injector_ != nullptr) {
    // The interval defaults after executor creation so it can quantize
    // to the executor's pass quantum: a temporally-tiled pass commits
    // whole tile blocks, so checkpoints must land on block boundaries.
    if (config_.checkpoint_interval == 0) {
      config_.checkpoint_interval = config_.pipeline_depth;
    }
    const std::int64_t quantum = std::max<std::int64_t>(
        std::int64_t{1}, exec_->chunk_quantum());
    config_.checkpoint_interval =
        (config_.checkpoint_interval + quantum - 1) / quantum * quantum;
    interval_ = config_.checkpoint_interval;
  }
  exec_->prepare(state_);
}

LatticeEngine::~LatticeEngine() = default;
LatticeEngine::LatticeEngine(LatticeEngine&&) noexcept = default;
LatticeEngine& LatticeEngine::operator=(LatticeEngine&&) noexcept = default;

const lgca::GasModel& LatticeEngine::gas_model() const {
  LATTICE_REQUIRE(owned_rule_ != nullptr,
                  "engine was configured with a custom rule, not a gas");
  return owned_rule_->model();
}

void LatticeEngine::run_pass(std::int64_t chunk) {
  const obs::TraceSpan span("engine.pass");
  const obs::ScopedTimer pass_timer(exec_->pass_histogram());
  exec_->run_pass(state_, chunk, generation_);
}

void LatticeEngine::advance(std::int64_t generations) {
  LATTICE_REQUIRE(generations >= 0, "generations must be >= 0");
  const obs::TraceSpan span("engine.advance");
  const std::int64_t updates_before = exec_->stats().site_updates;
  const auto start = std::chrono::steady_clock::now();
  if (!initial_captured_) {
    const obs::ScopedTimer timer(EngineObs::get().capture_ns);
    initial_ = state_;
    initial_captured_ = true;
  }
  if (injector_ != nullptr) {
    advance_guarded(generations);
  } else {
    std::int64_t left = generations;
    while (left > 0) {
      const std::int64_t chunk = exec_->max_chunk(left);
      run_pass(chunk);
      generation_ += chunk;
      left -= chunk;
    }
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  obs::count(EngineObs::get().generations, generations);
  obs::count(EngineObs::get().site_updates,
             exec_->stats().site_updates - updates_before);
}

// The guarded loop: every pass runs under the online detectors; any
// detection discards the pass's output — the machine's time is spent
// (ticks and site_updates keep counting, as the silicon would), but no
// corrupted generation is ever committed. Re-execution is exact: the
// injector's epoch is bumped so transient draws differ, while stuck
// faults (persistent silicon) replay until an escalation removes them.
//
// Escalation ladder, climbed after max_retries consecutive dirty
// attempts at the same checkpoint (each rung resets the retry budget):
//   1. shrink — halve the working checkpoint interval, down to one
//      generation per attempt: less exposure per attempt, so a retry
//      under a high transient rate actually has a chance to commit.
//      Clean passes regrow the interval back to the configured value.
//   2. degrade — the executor reconfigures around a persistent fault
//      (SPA remaps stuck chips; the bit-plane backend retires stuck
//      plane words onto spares).
//   3. oracle — if Config::oracle_fallback, re-execute the poisoned
//      interval on the fault-free golden reference updater and resume
//      on the fast backend from its (bit-exact) output.
//   4. give up — throw CorruptionError with the counter snapshot.
void LatticeEngine::advance_guarded(std::int64_t generations) {
  const std::int64_t target = generation_ + generations;
  EngineCheckpoint ckpt{state_, generation_};
  const auto snapshot = [&] {
    const obs::TraceSpan span("engine.checkpoint");
    const obs::ScopedTimer timer(EngineObs::get().checkpoint_ns);
    const auto t0 = std::chrono::steady_clock::now();
    ckpt.state = state_;
    ckpt.generation = generation_;
    checkpoint_seconds_ += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    ++checkpoints_;
    obs::count(EngineObs::get().checkpoints, 1);
  };
  ++checkpoints_;  // the entry snapshot above
  obs::count(EngineObs::get().checkpoints, 1);
  // Pass quantum: a temporally-tiled executor commits whole tile
  // blocks, so every attempted chunk is rounded up to a block multiple
  // (capped by the remaining work — the final partial block is the one
  // place a short block is allowed, and the tiled drivers handle it).
  const std::int64_t quantum =
      std::max<std::int64_t>(std::int64_t{1}, exec_->chunk_quantum());
  int attempts = 0;
  while (generation_ < target) {
    std::int64_t chunk = std::min<std::int64_t>(
        std::min<std::int64_t>(target - generation_, config_.pipeline_depth),
        interval_);
    if (quantum > 1) {
      chunk = std::min(target - generation_,
                       (chunk + quantum - 1) / quantum * quantum);
    }
    const std::int64_t before = injector_->counters().detected();
    run_pass(chunk);
    const std::int64_t after = injector_->counters().detected();
    if (after == before) {
      generation_ += chunk;
      attempts = 0;
      if (interval_ < config_.checkpoint_interval) {
        interval_ = std::min(config_.checkpoint_interval, interval_ * 2);
      }
      if (generation_ - ckpt.generation >= interval_ &&
          generation_ < target) {
        snapshot();
      }
      continue;
    }
    // A detector fired: everything since the last checkpoint is suspect.
    ++rollbacks_;
    faults_corrected_ += after - before;
    {
      const obs::TraceSpan rb_span("engine.rollback");
      const obs::ScopedTimer timer(EngineObs::get().restore_ns);
      state_ = ckpt.state;
      generation_ = ckpt.generation;
    }
    obs::count(EngineObs::get().rollbacks, 1);
    obs::count(EngineObs::get().replays, 1);
    injector_->bump_epoch();
    if (++attempts > config_.max_retries) {
      attempts = 0;
      if (interval_ > quantum) {
        // Halve, but stay on the pass quantum (identical to a plain
        // halving when the quantum is 1): less exposure per attempt
        // without ever splitting a tile block.
        interval_ = std::max(
            quantum, (interval_ / 2 + quantum - 1) / quantum * quantum);
        ++interval_shrinks_;
        obs::count(EngineObs::get().interval_shrinks, 1);
        continue;
      }
      if (exec_->try_degrade()) continue;
      if (config_.oracle_fallback) {
        const obs::TraceSpan oracle_span("engine.oracle");
        if (backend_is_3d(config_.backend)) {
          detail::reference_run3(state_, detail::extent3_of(config_),
                                 lgca3d::to_boundary3(config_.boundary),
                                 chunk, generation_);
        } else {
          lgca::reference_run(state_, *rule_, chunk, generation_);
        }
        generation_ += chunk;
        ++oracle_passes_;
        obs::count(EngineObs::get().oracle_passes, 1);
        if (generation_ < target) snapshot();
        continue;
      }
      throw fault::CorruptionError(
          "fault recovery failed at generation " +
              std::to_string(generation_) + ": " +
              std::to_string(config_.max_retries) +
              " retries exhausted and no degradation path remains",
          injector_->counters());
    }
  }
}

std::int64_t LatticeEngine::chunk_quantum() const noexcept {
  return std::max<std::int64_t>(std::int64_t{1}, exec_->chunk_quantum());
}

void LatticeEngine::restore(const EngineCheckpoint& ckpt) {
  LATTICE_REQUIRE(ckpt.state.extent() == state_.extent(),
                  "checkpoint extent does not match the engine");
  LATTICE_REQUIRE(ckpt.state.boundary() == state_.boundary(),
                  "checkpoint boundary mode does not match the engine");
  LATTICE_REQUIRE(ckpt.depth == config_.depth,
                  "checkpoint depth does not match the engine: the same "
                  "flat byte count can factor into different volumes");
  LATTICE_REQUIRE(ckpt.generation >= 0, "checkpoint generation must be >= 0");
  const obs::ScopedTimer timer(EngineObs::get().restore_ns);
  state_ = ckpt.state;
  generation_ = ckpt.generation;
}

PerformanceReport LatticeEngine::report() const {
  const ExecStats& es = exec_->stats();
  PerformanceReport r;
  r.backend = config_.backend;
  r.generations = generation_;
  r.site_updates = es.site_updates;
  r.ticks = es.ticks;
  r.updates_per_tick = es.ticks > 0
                           ? static_cast<double>(es.site_updates) /
                                 static_cast<double>(es.ticks)
                           : 0.0;
  r.modeled_rate = r.updates_per_tick * config_.tech.clock_hz;
  r.wall_seconds = wall_seconds_;
  r.measured_rate = wall_seconds_ > 0
                        ? static_cast<double>(es.site_updates) / wall_seconds_
                        : 0.0;
  r.storage_sites = es.buffer_sites;

  // Backend-specific fields: bandwidth demand, off-chip buffer ledger.
  exec_->fill_report(r);

  if (r.bandwidth_bits_per_tick > 0 && r.storage_sites > 0) {
    // B in site values per second; d follows the lattice the backend
    // actually runs (the 3-D backends report against the S^(1/3) law).
    const double bw_sites = r.bandwidth_bits_per_tick /
                            config_.tech.bits_per_site * config_.tech.clock_hz;
    const int dim =
        backend_is_3d(config_.backend) ? 3 : pebble::kEngineLatticeDim;
    r.pebbling_rate_ceiling = pebble::update_rate_upper(
        dim, static_cast<double>(r.storage_sites), bw_sites);
  }

  // Robustness accounting. committed_updates counts only generations
  // that survived the detectors; on a fault-free run it equals
  // site_updates and the effective rates collapse onto the plain ones.
  r.committed_updates = generation_ * state_.extent().area();
  r.effective_rate = es.ticks > 0
                         ? static_cast<double>(r.committed_updates) /
                               static_cast<double>(es.ticks) *
                               config_.tech.clock_hz
                         : 0.0;
  r.effective_measured_rate =
      wall_seconds_ > 0
          ? static_cast<double>(r.committed_updates) / wall_seconds_
          : 0.0;
  if (injector_ != nullptr) {
    const fault::FaultCounters& c = injector_->counters();
    r.faults_injected = c.injected();
    r.faults_detected = c.detected();
    r.faults_corrected = faults_corrected_;
    r.rollbacks = rollbacks_;
    r.checkpoints = checkpoints_;
    r.remapped_slices = injector_->remapped_lanes();
    r.checkpoint_seconds = checkpoint_seconds_;
    r.interval_shrinks = interval_shrinks_;
    r.oracle_passes = oracle_passes_;
  }
  return r;
}

MetricsReport LatticeEngine::snapshot() const {
  return build_metrics_report(wall_seconds_);
}

bool LatticeEngine::verify_against_reference() const {
  if (!initial_captured_) return true;
  lgca::SiteLattice replay = initial_;
  if (backend_is_3d(config_.backend)) {
    detail::reference_run3(replay, detail::extent3_of(config_),
                           lgca3d::to_boundary3(config_.boundary),
                           generation_, 0);
  } else {
    lgca::reference_run(replay, *rule_, generation_, 0);
  }
  return replay == state_;
}

}  // namespace lattice::core
