#include "lattice/core/backend_exec.hpp"

#include <algorithm>

#include "exec_factories.hpp"
#include "lattice/fault/fault.hpp"

namespace lattice::core {

BackendExec::BackendExec(std::string_view name, std::int64_t pipeline_depth)
    : depth_(pipeline_depth),
      name_(name),
      pass_ns_(obs::histogram_id("engine.pass." + std::string(name) + "_ns")) {
  LATTICE_REQUIRE(pipeline_depth >= 1, "pipeline depth must be >= 1");
}

BackendExec::~BackendExec() = default;

std::int64_t BackendExec::max_chunk(std::int64_t remaining) const noexcept {
  return std::min(remaining, depth_);
}

std::int64_t BackendExec::chunk_quantum() const noexcept { return 1; }

void BackendExec::fill_report(PerformanceReport& report) const {
  // Software backends: no simulated datapath, no modeled bandwidth.
  (void)report;
}

bool BackendExec::try_degrade() { return false; }

bool BackendExec::supports_fault_plan(
    const fault::FaultPlan& plan) const noexcept {
  return !plan.armed();
}

std::unique_ptr<BackendExec> make_backend_exec(LatticeEngine::Config& config,
                                               const lgca::Rule& rule,
                                               fault::FaultInjector* injector) {
  switch (config.backend) {
    case Backend::Reference:
      return detail::make_reference_exec(config, rule, injector);
    case Backend::BitPlane:
      return detail::make_bitplane_exec(config, rule, injector);
    case Backend::Wsa:
      return detail::make_wsa_exec(config, rule, injector);
    case Backend::Spa:
      return detail::make_spa_exec(config, rule, injector);
    case Backend::WsaE:
      return detail::make_wsa_e_exec(config, rule, injector);
    case Backend::Reference3:
      return detail::make_reference3_exec(config, rule, injector);
    case Backend::BitPlane3:
      return detail::make_bitplane3_exec(config, rule, injector);
  }
  LATTICE_REQUIRE(false, "unknown backend");
  return nullptr;
}

}  // namespace lattice::core
