// WsaEExec — the §5 extensible architecture behind the executor
// interface. Functionally a width-1 WSA chain (bit-identical output by
// construction); what it adds to the report is the off-chip ledger:
// external line-buffer storage k·(2L + 10) sites, buffer-channel
// demand k·4·D bits/tick, and the achieved fraction of that demand
// after bank conflicts in the configured parts. Main memory demand is
// a constant 2·D bits/tick regardless of depth — the point of §5.

#include <optional>

#include "exec_factories.hpp"
#include "lattice/arch/design_space.hpp"
#include "lattice/arch/wsa_e.hpp"
#include "lattice/fault/fault.hpp"

namespace lattice::core::detail {

namespace {

class WsaEExec final : public BackendExec {
 public:
  WsaEExec(const LatticeEngine::Config& config, const lgca::Rule& rule,
           fault::FaultInjector* injector)
      : BackendExec("wsa_e", config.pipeline_depth),
        cfg_(config),
        rule_(&rule),
        injector_(injector) {}

  void prepare(const lgca::SiteLattice& state) override {
    LATTICE_REQUIRE(state.boundary() == lgca::Boundary::Null,
                    "pipelined backends require null boundaries");
    pipe_.emplace(state.extent(), *rule_, cfg_.pipeline_depth, /*t0=*/0,
                  cfg_.fast_kernel, injector_, cfg_.wsa_e_buffer);
  }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (chunk == depth_) {
      pipe_->set_t0(generation);
      state = pipe_->run(state);
      harvest(pipe_->stats(), prev_);
      prev_ = pipe_->stats();
    } else {
      arch::WsaEPipeline tail(state.extent(), *rule_, static_cast<int>(chunk),
                              generation, cfg_.fast_kernel, injector_,
                              cfg_.wsa_e_buffer);
      state = tail.run(state);
      harvest(tail.stats(), arch::WsaEStats{});
    }
  }

  bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept override {
    return !plan.arms_plane_memory();
  }

  void fill_report(PerformanceReport& report) const override {
    // Main memory touches only the chain ends: constant 2·D bits/tick.
    report.bandwidth_bits_per_tick = 2.0 * cfg_.tech.bits_per_site;
    report.offchip_buffer_sites =
        depth_ * arch::wsa_e::storage_sites_per_pe(cfg_.extent.width);
    report.offchip_buffer_bits_per_tick =
        static_cast<double>(depth_) *
        arch::wsa_e::buffer_bits_per_tick_per_pe(cfg_.tech);
    report.buffer_bandwidth_fraction =
        stats_.ticks > 0 ? static_cast<double>(stream_ticks_) /
                               static_cast<double>(stats_.ticks)
                         : 1.0;
  }

 private:
  void harvest(const arch::WsaEStats& now, const arch::WsaEStats& prev) {
    stats_.ticks += now.ticks - prev.ticks;
    stats_.site_updates += now.site_updates - prev.site_updates;
    stats_.buffer_sites = now.buffer_sites;
    stream_ticks_ += now.stream_ticks - prev.stream_ticks;
  }

  LatticeEngine::Config cfg_;  // copied: the engine may be moved
  const lgca::Rule* rule_;
  fault::FaultInjector* injector_;
  std::optional<arch::WsaEPipeline> pipe_;
  arch::WsaEStats prev_;       // pipe_'s counters at the last harvest
  std::int64_t stream_ticks_ = 0;
};

}  // namespace

std::unique_ptr<BackendExec> make_wsa_e_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector) {
  return std::make_unique<WsaEExec>(config, rule, injector);
}

}  // namespace lattice::core::detail
