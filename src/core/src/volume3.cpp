#include "volume3.hpp"

#include <cstring>

#include "lattice/common/error.hpp"

namespace lattice::core::detail {

lgca3d::Extent3 extent3_of(const LatticeEngine::Config& config) {
  return {config.extent.width, config.extent.height, config.depth};
}

void reference_run3(lgca::SiteLattice& state, lgca3d::Extent3 extent,
                    lgca3d::Boundary3 boundary, std::int64_t generations,
                    std::int64_t t0) {
  LATTICE_REQUIRE(state.extent() == lgca3d::flat_extent(extent),
                  "flat state does not match the 3-D extent");
  lgca3d::Lattice3 volume(extent, boundary);
  static_assert(sizeof(lgca::Site) == sizeof(lgca3d::Site),
                "the flat view assumes identical site encodings");
  std::memcpy(volume.data(), state.grid().data(), state.site_count());
  lgca3d::reference_run(volume, generations, t0);
  std::memcpy(state.grid().data(), volume.data(), state.site_count());
}

}  // namespace lattice::core::detail
