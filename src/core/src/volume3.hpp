// Private helpers that let the dimension-blind engine layers carry a
// 3-D volume: the engine's state stays a flat {nx, ny·nz} SiteLattice
// (byte-compatible with lgca3d::Lattice3's raster), and these shims
// move it across the Lattice3 boundary for the golden 3-D replay paths
// (oracle fallback, verify_against_reference).

#pragma once

#include <cstdint>

#include "lattice/core/engine.hpp"
#include "lattice/lgca3d/plane_lattice3.hpp"

namespace lattice::core::detail {

/// The semantic {nx, ny, nz} box of a 3-D engine config.
lgca3d::Extent3 extent3_of(const LatticeEngine::Config& config);

/// Golden gather-and-collide replay over the flat {nx, ny·nz} view:
/// copy into a Lattice3, run `generations` reference steps from t0,
/// copy back. The memcpy is exact because the two rasters coincide.
void reference_run3(lgca::SiteLattice& state, lgca3d::Extent3 extent,
                    lgca3d::Boundary3 boundary, std::int64_t generations,
                    std::int64_t t0);

}  // namespace lattice::core::detail
