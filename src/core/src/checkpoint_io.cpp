#include "lattice/core/checkpoint_io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

namespace lattice::core {

namespace {

constexpr std::uint32_t kMagic = 0x504B434Cu;  // "LCKP" on disk
// v1 carried a {width, height} geometry; v2 inserts a depth (nz) field
// after height so 3-D volumes round-trip with their factorization.
// save() always writes v2; load() still accepts v1 (depth = 1).
constexpr std::uint32_t kVersionLegacy2d = 1;
constexpr std::uint32_t kVersion = 2;

// FNV-1a 64: tiny, dependency-free, and plenty for detecting the
// accidental corruptions this guards against (truncation, bit flips,
// torn writes). Not a defense against an adversary.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

class Hasher {
 public:
  void update(const unsigned char* p, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) h_ = (h_ ^ p[i]) * kFnvPrime;
  }
  std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

void put_bytes(std::ostream& out, Hasher& hash, const unsigned char* p,
               std::size_t n) {
  hash.update(p, n);
  out.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void put_u64(std::ostream& out, Hasher& hash, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  put_bytes(out, hash, b, 8);
}

void put_u32(std::ostream& out, Hasher& hash, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  put_bytes(out, hash, b, 4);
}

void get_bytes(std::istream& in, Hasher& hash, unsigned char* p,
               std::size_t n) {
  in.read(reinterpret_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    throw CheckpointError("checkpoint truncated: expected " +
                          std::to_string(n) + " more bytes");
  }
  hash.update(p, n);
}

std::uint64_t get_u64(std::istream& in, Hasher& hash) {
  unsigned char b[8];
  get_bytes(in, hash, b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::uint32_t get_u32(std::istream& in, Hasher& hash) {
  unsigned char b[4];
  get_bytes(in, hash, b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

void save_checkpoint(const EngineCheckpoint& ckpt, std::ostream& out) {
  const Extent e = ckpt.state.extent();
  // The checkpoint's state is the flat {nx, ny·nz} view; the file
  // stores the semantic per-plane height so a reader reconstructs the
  // same volume the writer held.
  LATTICE_REQUIRE(ckpt.depth >= 1 && e.height % ckpt.depth == 0,
                  "checkpoint depth does not divide the flat height");
  Hasher hash;
  put_u32(out, hash, kMagic);
  put_u32(out, hash, kVersion);
  put_u64(out, hash, static_cast<std::uint64_t>(e.width));
  put_u64(out, hash, static_cast<std::uint64_t>(e.height / ckpt.depth));
  put_u64(out, hash, static_cast<std::uint64_t>(ckpt.depth));
  const unsigned char boundary =
      ckpt.state.boundary() == lgca::Boundary::Periodic ? 1 : 0;
  put_bytes(out, hash, &boundary, 1);
  put_u64(out, hash, static_cast<std::uint64_t>(ckpt.generation));
  static_assert(sizeof(lgca::Site) == 1,
                "the payload encoding assumes one byte per site");
  put_bytes(out, hash,
            reinterpret_cast<const unsigned char*>(ckpt.state.grid().data()),
            ckpt.state.site_count());
  const std::uint64_t digest = hash.digest();
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<unsigned char>(digest >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(b), 8);
  LATTICE_REQUIRE(out.good(), "checkpoint write failed");
}

void save_checkpoint(const EngineCheckpoint& ckpt, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LATTICE_REQUIRE(out.is_open(),
                  "cannot open checkpoint file for writing: " + path);
  save_checkpoint(ckpt, out);
  out.flush();
  LATTICE_REQUIRE(out.good(), "checkpoint write failed: " + path);
}

EngineCheckpoint load_checkpoint(std::istream& in) {
  Hasher hash;
  const std::uint32_t magic = get_u32(in, hash);
  if (magic != kMagic) {
    throw CheckpointError("not a checkpoint file (bad magic)");
  }
  const std::uint32_t version = get_u32(in, hash);
  if (version != kVersion && version != kVersionLegacy2d) {
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version));
  }
  const auto width = static_cast<std::int64_t>(get_u64(in, hash));
  const auto height = static_cast<std::int64_t>(get_u64(in, hash));
  const auto depth = version >= kVersion
                         ? static_cast<std::int64_t>(get_u64(in, hash))
                         : std::int64_t{1};
  // Sanity-bound the geometry before allocating nx·ny·nz bytes: a
  // corrupted header must not turn into a 2^60-byte allocation. The
  // checksum would catch it anyway, but only after the damage. Each
  // side is bounded, then the volume, with divisions so the product
  // check itself cannot overflow.
  constexpr std::int64_t kMaxSide = std::int64_t{1} << 24;
  constexpr std::int64_t kMaxVolume = std::int64_t{1} << 42;
  if (width <= 0 || height <= 0 || depth <= 0 || width > kMaxSide ||
      height > kMaxSide || depth > kMaxSide ||
      height > kMaxVolume / width || depth > kMaxVolume / (width * height)) {
    throw CheckpointError("checkpoint geometry out of range: " +
                          std::to_string(width) + "x" +
                          std::to_string(height) + "x" +
                          std::to_string(depth));
  }
  unsigned char boundary = 0;
  get_bytes(in, hash, &boundary, 1);
  if (boundary > 1) {
    throw CheckpointError("checkpoint boundary byte out of range: " +
                          std::to_string(boundary));
  }
  const auto generation = static_cast<std::int64_t>(get_u64(in, hash));
  if (generation < 0) {
    throw CheckpointError("checkpoint generation is negative");
  }
  EngineCheckpoint ckpt;
  ckpt.state = lgca::SiteLattice(
      Extent{width, height * depth},
      boundary == 1 ? lgca::Boundary::Periodic : lgca::Boundary::Null);
  ckpt.generation = generation;
  ckpt.depth = depth;
  get_bytes(in, hash,
            reinterpret_cast<unsigned char*>(ckpt.state.grid().data()),
            ckpt.state.site_count());
  const std::uint64_t expected = hash.digest();
  Hasher tail;  // the stored digest itself is not part of the hash
  const std::uint64_t stored = get_u64(in, tail);
  if (stored != expected) {
    throw CheckpointError("checkpoint checksum mismatch: file is corrupted");
  }
  return ckpt;
}

EngineCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw CheckpointError("cannot open checkpoint file: " + path);
  }
  return load_checkpoint(in);
}

}  // namespace lattice::core
