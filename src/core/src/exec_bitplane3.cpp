// BitPlane3Exec — the multi-spin coded 3-D backend: 64 sites/word
// along x, boolean-algebra collisions of the cubic gas, z-slab banding
// across threads, and temporal z-slab tiling per the d = 3 cache plan.
// Mirrors BitPlaneExec one dimension up; the engine's state is the
// flat {nx, ny·nz} byte view and the runners pack/unpack around it.
//
// max_chunk() takes everything in one pass for the same reasons as the
// 2-D executor: pipeline_depth is a hardware parameter here, and
// chunking would re-pay the pack/unpack transpose per chunk.

#include <optional>

#include "exec_factories.hpp"
#include "lattice/core/tile_plan.hpp"
#include "lattice/fault/memory_guard.hpp"
#include "lattice/lgca3d/plane_kernel3.hpp"
#include "lattice/obs/metrics.hpp"
#include "volume3.hpp"

namespace lattice::core::detail {

namespace {

class BitPlane3Exec final : public BackendExec {
 public:
  BitPlane3Exec(const LatticeEngine::Config& config,
                fault::FaultInjector* injector)
      : BackendExec("bitplane3", config.pipeline_depth),
        extent_(extent3_of(config)),
        threads_(config.threads),
        injector_(injector),
        plan_(plan_temporal_tiles3(extent_,
                                   lgca3d::to_boundary3(config.boundary),
                                   config.tile_generations)) {
    if (injector_ != nullptr) guard_.emplace(*injector_);
    // The 3-D spans are scalar64-only (see plane_kernel3.hpp); the
    // gauge keeps profiles honest about which width this backend ran.
    static const obs::MetricsRegistry::Id simd_id =
        obs::gauge_id("bitplane3.simd_bits");
    obs::gauge_set(simd_id, 64);
  }

  void prepare(const lgca::SiteLattice& state) override { (void)state; }

  std::int64_t max_chunk(std::int64_t remaining) const noexcept override {
    return remaining;
  }

  std::int64_t chunk_quantum() const noexcept override { return plan_.depth; }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (plan_.depth > 1) {
      lgca3d::bitplane_gas_run_tiled3(state, extent_, chunk, generation,
                                      threads_, plan_.tiling(),
                                      guard_ ? &*guard_ : nullptr);
    } else {
      lgca3d::bitplane_gas_run3(state, extent_, chunk, generation, threads_,
                                /*band_grain_words=*/0,
                                guard_ ? &*guard_ : nullptr);
    }
    stats_.site_updates += extent_.volume() * chunk;
  }

  bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept override {
    // Plane-resident storage realizes every plane-memory source; the
    // machine-memory sources have no physical analog here.
    return !plan.arms_machine_memory();
  }

  bool try_degrade() override {
    if (injector_ != nullptr && injector_->has_stuck_planes()) {
      injector_->disable_stuck_planes();
      return true;
    }
    return false;
  }

 private:
  lgca3d::Extent3 extent_;
  unsigned threads_;
  fault::FaultInjector* injector_;
  TilePlan plan_;
  std::optional<fault::PlaneMemoryGuard> guard_;
};

}  // namespace

std::unique_ptr<BackendExec> make_bitplane3_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector) {
  (void)rule;
  LATTICE_REQUIRE(config.custom_rule == nullptr,
                  "the 3-D backends run the cubic gas only; custom "
                  "rules have no boolean-algebra kernel");
  return std::make_unique<BitPlane3Exec>(config, injector);
}

}  // namespace lattice::core::detail
