#include "lattice/core/metrics_report.hpp"

#include <array>
#include <string_view>

namespace lattice::core {

namespace {

// The disjoint top-level stage histograms. Everything else in the
// registry (wsa.run_ns, pool.task_ns, reference.band_ns, ...) nests
// inside one of these and would double-count if listed here.
constexpr std::array<std::string_view, 8> kPhaseHistograms = {
    "engine.pass.reference_ns", "engine.pass.wsa_ns",
    "engine.pass.spa_ns",       "engine.pass.bitplane_ns",
    "engine.pass.wsa_e_ns",     "engine.capture_ns",
    "engine.checkpoint_ns",     "engine.restore_ns",
};

}  // namespace

double MetricsReport::phase_seconds() const noexcept {
  double total = 0;
  for (const MetricsPhase& p : phases) total += p.seconds;
  return total;
}

MetricsReport build_metrics_report(double wall_seconds) {
  MetricsReport report;
  report.wall_seconds = wall_seconds;
  if constexpr (obs::kEnabled) {
    report.metrics = obs::MetricsRegistry::global().snapshot();
    for (const std::string_view name : kPhaseHistograms) {
      const obs::HistogramStats* h = report.metrics.find_histogram(name);
      if (h == nullptr || h->count == 0) continue;
      report.phases.push_back(MetricsPhase{
          std::string(name), h->count, static_cast<double>(h->sum) * 1e-9});
    }
  }
  return report;
}

void metrics_report_to_json(const MetricsReport& report, obs::JsonWriter& w) {
  w.begin_object();
  w.field("wall_seconds", report.wall_seconds);
  w.field("phase_seconds", report.phase_seconds());
  w.key("phases").begin_array();
  for (const MetricsPhase& p : report.phases) {
    w.begin_object();
    w.field("name", p.name);
    w.field("count", p.count);
    w.field("seconds", p.seconds);
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  metrics_to_json(report.metrics, w);
  w.end_object();
}

}  // namespace lattice::core
