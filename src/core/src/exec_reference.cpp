// ReferenceExec — the golden double-buffered updater behind the
// executor interface. Kernel selection happens once at construction:
// gas rules get the fused CollisionLut sweep, anything else the
// generic virtual-dispatch path; threads > 1 bands the rows either way.

#include "exec_factories.hpp"
#include "lattice/lgca/collision_lut.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::core::detail {

namespace {

class ReferenceExec final : public BackendExec {
 public:
  ReferenceExec(const LatticeEngine::Config& config, const lgca::Rule& rule)
      : BackendExec("reference", config.pipeline_depth),
        rule_(&rule),
        threads_(config.threads) {
    if (config.fast_kernel) lut_ = lgca::CollisionLut::try_get(rule);
  }

  void prepare(const lgca::SiteLattice& state) override { (void)state; }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (lut_ != nullptr) {
      lgca::fused_gas_run(state, *lut_, chunk, generation, threads_);
    } else if (threads_ > 1) {
      lgca::reference_run_parallel(state, *rule_, chunk, threads_, generation);
    } else {
      lgca::reference_run(state, *rule_, chunk, generation);
    }
    stats_.site_updates += state.extent().area() * chunk;
  }

 private:
  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_ = nullptr;
  unsigned threads_;
};

}  // namespace

std::unique_ptr<BackendExec> make_reference_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule) {
  return std::make_unique<ReferenceExec>(config, rule);
}

}  // namespace lattice::core::detail
