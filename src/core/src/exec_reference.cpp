// ReferenceExec — the golden double-buffered updater behind the
// executor interface. Kernel selection happens once at construction:
// gas rules get the fused CollisionLut sweep, anything else the
// generic virtual-dispatch path; threads > 1 bands the rows either way.

#include <optional>

#include "exec_factories.hpp"
#include "lattice/core/tile_plan.hpp"
#include "lattice/fault/memory_guard.hpp"
#include "lattice/lgca/collision_lut.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::core::detail {

namespace {

class ReferenceExec final : public BackendExec {
 public:
  ReferenceExec(const LatticeEngine::Config& config, const lgca::Rule& rule,
                fault::FaultInjector* injector)
      : BackendExec("reference", config.pipeline_depth),
        rule_(&rule),
        threads_(config.threads) {
    if (config.fast_kernel) lut_ = lgca::CollisionLut::try_get(rule);
    if (injector != nullptr) guard_.emplace(*injector);
    // Temporal blocking applies to the fused byte-LUT sweep only: the
    // generic virtual-dispatch path has no windowed row update, and
    // the guarded path must step one generation at a time anyway (the
    // site guard injects and audits per generation).
    if (lut_ != nullptr && !guard_) {
      plan_ = plan_temporal_tiles(config.extent, config.boundary,
                                  byte_row_bytes(config.extent),
                                  config.tile_generations);
    }
  }

  void prepare(const lgca::SiteLattice& state) override { (void)state; }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (guard_) {
      // Guarded: one generation at a time, so each fault lands (and is
      // audited) in the same generation that would read it on the
      // bit-plane backend — the two fault runs stay like-for-like.
      guard_->run_begin(state);
      for (std::int64_t g = 0; g < chunk; ++g) {
        guard_->inject_and_audit(state, generation + g);
        run_generations(state, 1, generation + g);
        guard_->record(state);
      }
    } else {
      run_generations(state, chunk, generation);
    }
    stats_.site_updates += state.extent().area() * chunk;
  }

  bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept override {
    // Site space mirrors the in-lattice plane sources exactly; halo
    // guard words and the parity shadow plane only exist in the
    // bit-plane coding, so plans arming them are rejected here.
    return !plan.arms_machine_memory() && plan.halo_flip_rate == 0.0 &&
           !plan.parity_plane;
  }

  bool try_degrade() override {
    if (guard_ && injector()->has_stuck_planes()) {
      injector()->disable_stuck_planes();
      return true;
    }
    return false;
  }

 private:
  void run_generations(lgca::SiteLattice& state, std::int64_t chunk,
                       std::int64_t generation) {
    if (lut_ != nullptr) {
      if (plan_.depth > 1) {
        lgca::fused_gas_run_tiled(state, *lut_, chunk, generation, threads_,
                                  plan_.tiling());
      } else {
        lgca::fused_gas_run(state, *lut_, chunk, generation, threads_);
      }
    } else if (threads_ > 1) {
      lgca::reference_run_parallel(state, *rule_, chunk, threads_, generation);
    } else {
      lgca::reference_run(state, *rule_, chunk, generation);
    }
  }

  fault::FaultInjector* injector() { return guard_->injector(); }

  const lgca::Rule* rule_;
  const lgca::CollisionLut* lut_ = nullptr;
  unsigned threads_;
  TilePlan plan_;
  std::optional<fault::SiteMemoryGuard> guard_;
};

}  // namespace

std::unique_ptr<BackendExec> make_reference_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector) {
  return std::make_unique<ReferenceExec>(config, rule, injector);
}

}  // namespace lattice::core::detail
