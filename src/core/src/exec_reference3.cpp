// Reference3Exec — the golden gather-and-collide updater for the cubic
// 3-D gas behind the executor interface. The engine's state stays the
// flat {nx, ny·nz} byte view; each pass crosses into a Lattice3 (an
// exact memcpy — the rasters coincide), runs the lgca3d reference
// updater, and crosses back. Deliberately unclever: this executor is
// the oracle the BitPlane3 backend is measured against, so it reuses
// the reference updater the parity tests trust rather than growing a
// fast path of its own.

#include <cstring>
#include <optional>

#include "exec_factories.hpp"
#include "lattice/fault/memory_guard.hpp"
#include "volume3.hpp"

namespace lattice::core::detail {

namespace {

class Reference3Exec final : public BackendExec {
 public:
  Reference3Exec(const LatticeEngine::Config& config,
                 fault::FaultInjector* injector)
      : BackendExec("reference3", config.pipeline_depth),
        extent_(extent3_of(config)),
        boundary_(lgca3d::to_boundary3(config.boundary)) {
    if (injector != nullptr) guard_.emplace(*injector);
  }

  void prepare(const lgca::SiteLattice& state) override { (void)state; }

  void run_pass(lgca::SiteLattice& state, std::int64_t chunk,
                std::int64_t generation) override {
    if (guard_) {
      // Guarded: one generation at a time, so each fault lands (and is
      // audited) in the same generation that would read it on the
      // bit-plane backend — the two fault runs stay like-for-like. The
      // site guard keys its draws by global flat row z·ny + y, the
      // same coordinates the 3-D plane guard uses.
      guard_->run_begin(state);
      for (std::int64_t g = 0; g < chunk; ++g) {
        guard_->inject_and_audit(state, generation + g);
        reference_run3(state, extent_, boundary_, 1, generation + g);
        guard_->record(state);
      }
    } else {
      reference_run3(state, extent_, boundary_, chunk, generation);
    }
    stats_.site_updates += extent_.volume() * chunk;
  }

  bool supports_fault_plan(
      const fault::FaultPlan& plan) const noexcept override {
    // Same subset as the 2-D reference executor: site space mirrors
    // the in-lattice plane sources; guard words and the parity shadow
    // only exist in the bit-plane coding.
    return !plan.arms_machine_memory() && plan.halo_flip_rate == 0.0 &&
           !plan.parity_plane;
  }

  bool try_degrade() override {
    if (guard_ && guard_->injector()->has_stuck_planes()) {
      guard_->injector()->disable_stuck_planes();
      return true;
    }
    return false;
  }

 private:
  lgca3d::Extent3 extent_;
  lgca3d::Boundary3 boundary_;
  std::optional<fault::SiteMemoryGuard> guard_;
};

}  // namespace

std::unique_ptr<BackendExec> make_reference3_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector) {
  (void)rule;
  LATTICE_REQUIRE(config.custom_rule == nullptr,
                  "the 3-D backends run the cubic gas only; custom "
                  "rules have no 3-D form");
  return std::make_unique<Reference3Exec>(config, injector);
}

}  // namespace lattice::core::detail
