// Private per-backend executor factories, one per translation unit
// (exec_*.cpp). Only backend_exec.cpp's make_backend_exec() calls
// these; the classes themselves stay file-local to their TU.

#pragma once

#include <memory>

#include "lattice/core/backend_exec.hpp"

namespace lattice::core::detail {

std::unique_ptr<BackendExec> make_reference_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector);

std::unique_ptr<BackendExec> make_bitplane_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector);

std::unique_ptr<BackendExec> make_wsa_exec(const LatticeEngine::Config& config,
                                           const lgca::Rule& rule,
                                           fault::FaultInjector* injector);

/// May normalize config in place (spa_slice_width == 0 → §6.2 pick).
std::unique_ptr<BackendExec> make_spa_exec(LatticeEngine::Config& config,
                                           const lgca::Rule& rule,
                                           fault::FaultInjector* injector);

std::unique_ptr<BackendExec> make_wsa_e_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector);

std::unique_ptr<BackendExec> make_reference3_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector);

std::unique_ptr<BackendExec> make_bitplane3_exec(
    const LatticeEngine::Config& config, const lgca::Rule& rule,
    fault::FaultInjector* injector);

}  // namespace lattice::core::detail
