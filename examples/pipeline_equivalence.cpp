// Pipeline equivalence: run the same FHP-II evolution on the golden
// reference, the WSA pipeline, and the SPA machine, prove they agree
// bit-for-bit, and print each backend's performance accounting against
// the §7 pebbling ceiling.
//
//   ./pipeline_equivalence [side] [generations]

#include <cstdio>
#include <cstdlib>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/init.hpp"

namespace {

void report_line(const char* name, const lattice::core::PerformanceReport& r,
                 bool verified) {
  std::printf("  %-10s ticks=%-8lld upd/tick=%-6.2f modeled=%.3g upd/s  "
              "bw=%.0f bits/tick  ceiling=%.3g  verified=%s\n",
              name, static_cast<long long>(r.ticks), r.updates_per_tick,
              r.modeled_rate, r.bandwidth_bits_per_tick,
              r.pebbling_rate_ceiling, verified ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lattice;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 64;
  const std::int64_t gens = argc > 2 ? std::atoll(argv[2]) : 24;

  auto make = [&](core::Backend b) {
    core::LatticeEngine::Config cfg;
    cfg.extent = {side, side};
    cfg.gas = lgca::GasKind::FHP_II;
    cfg.backend = b;
    cfg.pipeline_depth = 6;
    cfg.wsa_width = 4;
    core::LatticeEngine e(cfg);
    lgca::fill_random(e.state(), e.gas_model(), 0.3, 99, 0.1);
    return e;
  };

  core::LatticeEngine ref = make(core::Backend::Reference);
  core::LatticeEngine wsa = make(core::Backend::Wsa);
  core::LatticeEngine spa = make(core::Backend::Spa);

  std::printf("FHP-II on %lldx%lld, %lld generations, depth-6 pipelines\n",
              static_cast<long long>(side), static_cast<long long>(side),
              static_cast<long long>(gens));
  ref.advance(gens);
  wsa.advance(gens);
  spa.advance(gens);

  const bool wsa_ok = wsa.state() == ref.state();
  const bool spa_ok = spa.state() == ref.state();
  report_line("reference", ref.report(), true);
  report_line("WSA", wsa.report(), wsa_ok);
  report_line("SPA", spa.report(), spa_ok);

  if (!wsa_ok || !spa_ok) {
    std::printf("\nERROR: pipelined backends diverged from the reference\n");
    return 1;
  }
  std::printf("\nall three backends agree bit-for-bit after %lld "
              "generations\n",
              static_cast<long long>(gens));
  return 0;
}
