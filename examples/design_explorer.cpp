// Design explorer: re-run the paper's §6 design-space analysis for any
// chip technology. With no arguments it reproduces the 1987 numbers
// (WSA corner P=4/L≈785, SPA corner P=13.5/W≈43).
//
//   ./design_explorer [pins] [bits_per_site] [boundary_bits]
//                     [cell_area] [pe_area] [clock_hz]

#include <cstdio>
#include <cstdlib>

#include "lattice/arch/design_space.hpp"

int main(int argc, char** argv) {
  using namespace lattice::arch;
  Technology t = Technology::paper1987();
  if (argc > 1) t.pins = std::atoi(argv[1]);
  if (argc > 2) t.bits_per_site = std::atoi(argv[2]);
  if (argc > 3) t.boundary_bits = std::atoi(argv[3]);
  if (argc > 4) t.cell_area = std::atof(argv[4]);
  if (argc > 5) t.pe_area = std::atof(argv[5]);
  if (argc > 6) t.clock_hz = std::atof(argv[6]);
  t.validate();

  std::printf("technology: Pi=%d pins, D=%d bits/site, E=%d bits,\n"
              "            B=%.3g, Gamma=%.3g, F=%.3g Hz\n\n",
              t.pins, t.bits_per_site, t.boundary_bits, t.cell_area,
              t.pe_area, t.clock_hz);

  // ---- WSA ----
  const wsa::Corner wc = wsa::corner(t);
  const WsaDesign wd = wsa::paper_design(t);
  std::printf("WSA (wide-serial, one stage per chip)\n");
  std::printf("  pin bound:        P <= %.2f PEs/chip\n", wsa::max_pe_pins(t));
  std::printf("  continuous corner P = %.2f at L = %.0f\n", wc.pe,
              wc.lattice_len);
  std::printf("  integer design:   P = %d, L = %lld\n", wd.pe_per_chip,
              static_cast<long long>(wd.lattice_len));
  std::printf("  max lattice at P=1: L = %.0f\n", wsa::max_lattice_len(t));
  std::printf("  bandwidth: %d bits/tick;  R = %.3g updates/s per chip\n",
              wsa::bandwidth_bits_per_tick(t, wd), wsa::throughput(t, wd));
  std::printf("  L-P frontier:  L      P(pins)  P(area)\n");
  for (double len = 0; len <= 1000; len += 100) {
    std::printf("              %5.0f   %6.2f   %6.2f\n", len,
                wsa::max_pe_pins(t), wsa::max_pe_area(t, len));
  }

  // ---- SPA ----
  const spa::PinOptimum po = spa::pin_optimum(t);
  const spa::Corner sc = spa::corner(t);
  const SpaDesign sd = spa::paper_design(t, wd.lattice_len, 6);
  std::printf("\nSPA (Sternberg partitioned)\n");
  std::printf("  pin optimum: P_w = %.2f, P_k = %.2f, P = %.2f PEs/chip\n",
              po.slices, po.depth, po.pe);
  std::printf("  continuous corner P = %.2f at W = %.1f\n", sc.pe,
              sc.slice_width);
  std::printf("  integer design: P_w = %d, P_k = %d (P = %d), W <= %lld\n",
              sd.slices_per_chip, sd.depth_per_chip,
              sd.slices_per_chip * sd.depth_per_chip,
              static_cast<long long>(sd.slice_width));
  std::printf("  at L = %lld: bandwidth %.0f bits/tick, R = %.3g updates/s\n",
              static_cast<long long>(sd.lattice_len),
              spa::bandwidth_bits_per_tick(t, sd), spa::throughput(t, sd));
  std::printf("  W-P frontier:  W      P(pins)  P(area)\n");
  for (double w = 10; w <= 100; w += 10) {
    std::printf("              %5.0f   %6.2f   %6.2f\n", w, po.pe,
                spa::max_pe_area(t, w));
  }

  // ---- WSA-E ----
  std::printf("\nWSA-E (extensible, off-chip line buffer)\n");
  std::printf("  PEs/chip: %d;  bandwidth: %d bits/tick (constant in L)\n",
              wsa_e::max_pe_pins(t), wsa_e::bandwidth_bits_per_tick(t));
  std::printf("  storage/PE at L=1000: %.3f chip areas\n",
              wsa_e::storage_area_per_pe(t, 1000));
  return 0;
}
