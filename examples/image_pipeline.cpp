// Image-processing on a lattice engine (§1's motivating workload):
// denoise a synthetic salt-and-pepper image with a 3×3 median filter
// running on the WSA pipeline, then smooth it with a box filter.
// Demonstrates that the engines are generic lattice-update machines,
// not gas-specific hardware.
//
//   ./image_pipeline [side] [noise_percent] [out_prefix]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "lattice/arch/wsa.hpp"
#include "lattice/common/rng.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/image_io.hpp"

namespace {

// A synthetic test card: smooth gradient + bright disk + dark bar.
lattice::lgca::SiteLattice test_card(std::int64_t side) {
  using namespace lattice;
  lgca::SiteLattice img({side, side}, lgca::Boundary::Null);
  for (std::int64_t y = 0; y < side; ++y) {
    for (std::int64_t x = 0; x < side; ++x) {
      int v = static_cast<int>(64 + 128 * x / side);
      const double dx = static_cast<double>(x) - side / 2.0;
      const double dy = static_cast<double>(y) - side / 2.0;
      if (dx * dx + dy * dy < (side / 6.0) * (side / 6.0)) v = 230;
      if (y > 3 * side / 4 && y < 3 * side / 4 + side / 16) v = 20;
      img.at({x, y}) = static_cast<lgca::Site>(v);
    }
  }
  return img;
}

double mean_abs_error(const lattice::lgca::SiteLattice& a,
                      const lattice::lgca::SiteLattice& b) {
  double err = 0;
  for (std::size_t i = 0; i < a.site_count(); ++i) {
    err += std::abs(static_cast<int>(a[i]) - static_cast<int>(b[i]));
  }
  return err / static_cast<double>(a.site_count());
}

void save(const lattice::lgca::SiteLattice& img, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  lattice::lgca::write_raw_pgm(os, img);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lattice;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 128;
  const int noise_pct = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string prefix = argc > 3 ? argv[3] : "image_pipeline";

  const lgca::SiteLattice clean = test_card(side);

  // Corrupt with salt-and-pepper noise.
  lgca::SiteLattice noisy = clean;
  Pcg32 rng(1234);
  for (std::size_t i = 0; i < noisy.site_count(); ++i) {
    if (rng.next_below(100) < static_cast<std::uint32_t>(noise_pct)) {
      noisy[i] = (rng.next() & 1) ? lgca::Site{255} : lgca::Site{0};
    }
  }

  // One median pass on a 4-wide WSA pipeline stage, then one box pass.
  const lgca::MedianFilterRule median;
  const lgca::BoxFilterRule box;
  arch::WsaPipeline median_pipe({side, side}, median, 1, 4);
  const lgca::SiteLattice denoised = median_pipe.run(noisy);
  arch::WsaPipeline box_pipe({side, side}, box, 1, 4);
  const lgca::SiteLattice smooth = box_pipe.run(denoised);

  std::printf("image %lldx%lld, %d%% salt-and-pepper noise\n",
              static_cast<long long>(side), static_cast<long long>(side),
              noise_pct);
  std::printf("  MAE vs clean:  noisy=%.2f  median=%.2f  median+box=%.2f\n",
              mean_abs_error(noisy, clean), mean_abs_error(denoised, clean),
              mean_abs_error(smooth, clean));
  std::printf("  median pass: %lld ticks at 4 px/tick (%.2f px/tick "
              "sustained)\n",
              static_cast<long long>(median_pipe.stats().ticks),
              median_pipe.stats().updates_per_tick());

  save(noisy, prefix + "_noisy.pgm");
  save(denoised, prefix + "_median.pgm");
  save(smooth, prefix + "_smooth.pgm");
  std::printf("  wrote %s_{noisy,median,smooth}.pgm\n", prefix.c_str());
  return 0;
}
