// Machine recommender: which lattice engine should you build?
//
//   ./recommend_machine [lattice_len] [updates_per_sec] [max_bw_bits_per_tick]
//
// Defaults reproduce the regimes of §6.3/§8: WSA for modest problems,
// SPA when you need raw rate and can feed it, WSA-E when the lattice
// outgrows every chip.

#include <cstdio>
#include <cstdlib>

#include "lattice/core/recommend.hpp"

int main(int argc, char** argv) {
  using namespace lattice;
  core::Requirement req;
  req.lattice_len = argc > 1 ? std::atoll(argv[1]) : 785;
  req.min_update_rate = argc > 2 ? std::atof(argv[2]) : 2e8;
  req.max_bandwidth_bits_per_tick = argc > 3 ? std::atof(argv[3]) : 0;

  const arch::Technology tech = arch::Technology::paper1987();
  std::printf("requirement: L = %lld, rate >= %.3g updates/s",
              static_cast<long long>(req.lattice_len), req.min_update_rate);
  if (req.max_bandwidth_bits_per_tick > 0) {
    std::printf(", bandwidth <= %.0f bits/tick",
                req.max_bandwidth_bits_per_tick);
  }
  std::printf("\n(1987 technology: 72 pins, 8 bits/site, 10 MHz)\n\n");

  const auto candidates = core::recommend(tech, req);
  std::printf("  %-6s %-9s %8s %6s %8s %12s %10s  %s\n", "rank", "arch",
              "PEs/chip", "depth", "chips", "rate", "bw", "notes");
  int rank = 1;
  for (const auto& c : candidates) {
    if (c.feasible) {
      std::printf("  %-6d %-9s %8d %6d %8.1f %12.3g %7.0f b/t  %s\n", rank++,
                  std::string(core::arch_choice_name(c.arch)).c_str(),
                  c.pe_per_chip, c.depth, c.chips, c.rate,
                  c.bandwidth_bits_per_tick, c.reason.c_str());
    } else {
      std::printf("  %-6s %-9s %s\n", "--",
                  std::string(core::arch_choice_name(c.arch)).c_str(),
                  c.reason.c_str());
    }
  }
  return 0;
}
