// Channel flow past a circular obstacle — the canonical lattice-gas
// demonstration (§2): an FHP-II gas with a rightward drift flows down
// a walled channel around a disk; the coarse-grained velocity field
// shows the obstruction and wake.
//
//   ./channel_flow [width] [height] [steps] [out.pgm]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/image_io.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"

int main(int argc, char** argv) {
  using namespace lattice;
  const std::int64_t width = argc > 1 ? std::atoll(argv[1]) : 160;
  const std::int64_t height = argc > 2 ? std::atoll(argv[2]) : 64;
  const std::int64_t steps = argc > 3 ? std::atoll(argv[3]) : 300;
  const char* out_path = argc > 4 ? argv[4] : "channel_flow.pgm";

  core::LatticeEngine::Config cfg;
  cfg.extent = {width, height};
  cfg.gas = lgca::GasKind::FHP_II;
  cfg.boundary = lgca::Boundary::Periodic;  // re-circulating channel
  cfg.backend = core::Backend::Reference;
  core::LatticeEngine engine(cfg);

  lgca::add_channel_walls(engine.state());
  lgca::add_obstacle_disk(engine.state(),
                          static_cast<double>(width) / 4.0,
                          static_cast<double>(height) / 2.0,
                          static_cast<double>(height) / 8.0);
  lgca::fill_flow(engine.state(), engine.gas_model(), /*density=*/0.3,
                  /*bias=*/0.15, /*seed=*/7);

  const lgca::Invariants start =
      lgca::measure_invariants(engine.state(), engine.gas_model());
  std::printf("channel %lldx%lld, disk obstacle, %lld particles, %lld steps\n",
              static_cast<long long>(width), static_cast<long long>(height),
              static_cast<long long>(start.mass),
              static_cast<long long>(steps));

  engine.advance(steps);

  const lgca::Invariants end =
      lgca::measure_invariants(engine.state(), engine.gas_model());
  std::printf("mass conserved: %s (%lld -> %lld)\n",
              start.mass == end.mass ? "yes" : "NO",
              static_cast<long long>(start.mass),
              static_cast<long long>(end.mass));

  const auto cells =
      lgca::coarse_grain(engine.state(), engine.gas_model(), height / 16);
  std::printf("\nvelocity field (obstruction visible as disrupted arrows):\n%s",
              lgca::render_flow_ascii(cells).c_str());

  std::ofstream pgm(out_path, std::ios::binary);
  if (pgm) {
    lgca::write_density_pgm(pgm, engine.state(), engine.gas_model());
    std::printf("\ndensity image written to %s\n", out_path);
  }
  return 0;
}
