// Quickstart: simulate an FHP-II lattice gas for a few hundred steps
// and watch the exact invariants the collision rules guarantee.
//
//   ./quickstart [side] [steps]

#include <cstdio>
#include <cstdlib>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/image_io.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"

int main(int argc, char** argv) {
  using namespace lattice;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 64;
  const std::int64_t steps = argc > 2 ? std::atoll(argv[2]) : 200;

  // A periodic FHP-II gas on the golden reference backend: the cleanest
  // setting for exact conservation.
  core::LatticeEngine::Config cfg;
  cfg.extent = {side, side};
  cfg.gas = lgca::GasKind::FHP_II;
  cfg.boundary = lgca::Boundary::Periodic;
  cfg.backend = core::Backend::Reference;
  core::LatticeEngine engine(cfg);

  lgca::fill_random(engine.state(), engine.gas_model(), /*density=*/0.25,
                    /*seed=*/2026, /*rest_density=*/0.1);

  const lgca::Invariants before =
      lgca::measure_invariants(engine.state(), engine.gas_model());
  std::printf("FHP-II gas, %lld x %lld periodic lattice, %lld steps\n",
              static_cast<long long>(side), static_cast<long long>(side),
              static_cast<long long>(steps));
  std::printf("  initial: mass=%lld  momentum=(%lld, %lld)\n",
              static_cast<long long>(before.mass),
              static_cast<long long>(before.px),
              static_cast<long long>(before.py));

  engine.advance(steps);

  const lgca::Invariants after =
      lgca::measure_invariants(engine.state(), engine.gas_model());
  std::printf("  final:   mass=%lld  momentum=(%lld, %lld)\n",
              static_cast<long long>(after.mass),
              static_cast<long long>(after.px),
              static_cast<long long>(after.py));
  std::printf("  conserved: %s\n",
              (before.mass == after.mass && before.px == after.px &&
               before.py == after.py)
                  ? "yes (exactly)"
                  : "NO — bug!");

  // Coarse-grained density snapshot.
  const auto cells = lgca::coarse_grain(engine.state(), engine.gas_model(),
                                        side / 16 > 0 ? side / 16 : 1);
  std::printf("\ncoarse-grained flow (arrows = net momentum):\n%s\n",
              lgca::render_flow_ascii(cells).c_str());
  return 0;
}
