// Viscous shear decay — the standard way to measure a lattice gas's
// kinematic viscosity. Initialize u_x(y) = U·sin(2πy/H) on a periodic
// box; viscosity damps the mode as A(t) = A(0)·exp(−ν·k²·t) with
// k = 2π/H. Fitting the log-decay gives ν for each FHP variant; the
// more collisional the rule set, the lower the viscosity (FHP-III <
// FHP-II < FHP-I) — which is why the literature kept adding collisions.
//
//   ./shear_decay [width] [height] [steps] [sample_every]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"
#include "lattice/lgca/reference.hpp"

int main(int argc, char** argv) {
  using namespace lattice;
  using namespace lattice::lgca;
  const std::int64_t width = argc > 1 ? std::atoll(argv[1]) : 128;
  const std::int64_t height = argc > 2 ? std::atoll(argv[2]) : 64;
  const std::int64_t steps = argc > 3 ? std::atoll(argv[3]) : 240;
  const std::int64_t every = argc > 4 ? std::atoll(argv[4]) : 40;

  const double k = 2.0 * 3.141592653589793 / static_cast<double>(height);
  std::printf("shear decay on %lldx%lld periodic box, k = 2pi/%lld\n\n",
              static_cast<long long>(width), static_cast<long long>(height),
              static_cast<long long>(height));

  for (const GasKind kind : {GasKind::FHP_I, GasKind::FHP_II,
                             GasKind::FHP_III}) {
    const GasModel& model = GasModel::get(kind);
    const GasRule rule(kind);
    SiteLattice lat({width, height}, Boundary::Periodic);
    fill_shear(lat, model, /*density=*/0.3, /*bias=*/0.15, /*seed=*/11);

    const double a0 = sine_mode_amplitude(momentum_profile_x(lat, model));
    std::printf("%s: A(0) = %.1f\n", std::string(gas_kind_name(kind)).c_str(),
                a0);
    double last_ratio = 1.0;
    for (std::int64_t t = 0; t < steps; t += every) {
      reference_run(lat, rule, every, t);
      const double a =
          sine_mode_amplitude(momentum_profile_x(lat, model));
      last_ratio = a / a0;
      std::printf("  t=%4lld  A=%9.1f  A/A0=%.3f\n",
                  static_cast<long long>(t + every), a, last_ratio);
    }
    if (last_ratio > 0) {
      const double nu =
          -std::log(last_ratio) / (k * k * static_cast<double>(steps));
      std::printf("  fitted kinematic viscosity: nu = %.3f "
                  "(lattice units)\n\n",
                  nu);
    } else {
      std::printf("  mode fully decayed (or sign flipped) — increase H\n\n");
    }
  }
  std::printf("expected ordering: nu(FHP-I) > nu(FHP-II) > nu(FHP-III)\n");
  return 0;
}
