// Optimal pebbling explorer — the paper's closing research question
// ("discover an optimal pebbling... and thereby an architecture which
// is optimal with regard to input/output complexity") answered exactly
// for small instances: exhaustive minimum I/O vs the naive sweep and
// the analytic lower bound, across storage sizes.
//
//   ./optimal_pebbling [n] [steps]   (1-D lattice, keep n*steps small)

#include <cstdio>
#include <cstdlib>

#include "lattice/pebble/bounds.hpp"
#include "lattice/pebble/comp_graph.hpp"
#include "lattice/pebble/optimal.hpp"
#include "lattice/pebble/schedules.hpp"

int main(int argc, char** argv) {
  using namespace lattice::pebble;
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 3;
  const std::int64_t steps = argc > 2 ? std::atoll(argv[2]) : 3;

  const LatticeBox box{{n}};
  const Dag dag = computation_graph(box, steps);
  if (dag.size() > 12) {
    std::printf("graph has %lld vertices; exact search needs <= 12\n",
                static_cast<long long>(dag.size()));
    return 1;
  }

  std::printf("C_1 computation graph: n = %lld cells, T = %lld steps, "
              "%lld vertices\n\n",
              static_cast<long long>(n), static_cast<long long>(steps),
              static_cast<long long>(dag.size()));
  std::printf("  %4s %12s %12s %14s %10s\n", "S", "optimal Q", "sweep q",
              "lower bound", "states");
  for (std::int64_t s = 3; s <= 2 * n + 2; ++s) {
    const OptimalResult opt = min_io_pebbling(dag, s);
    const double lb = min_io_lower_bound(1, static_cast<double>(s),
                                         static_cast<double>(dag.size()));
    std::printf("  %4lld %12lld %12lld %14.1f %10lld",
                static_cast<long long>(s),
                opt.feasible ? static_cast<long long>(opt.min_io) : -1,
                static_cast<long long>(
                    s >= 5 ? run_sweep_1d(n, steps, s).io_moves : -1),
                lb, static_cast<long long>(opt.states));
    if (!opt.feasible) std::printf("  (infeasible: S too small)");
    std::printf("\n");
  }
  std::printf("\nreading: the optimum collapses to inputs+outputs = %lld\n"
              "as soon as S holds two layers; the sweep never improves\n"
              "with S — the gap is the paper's entire thesis.\n",
              static_cast<long long>(2 * n));
  return 0;
}
