// Time reversal — the classic lattice-gas spectacle. A dense disk of
// gas expands into apparent thermal chaos; because every collision
// table is a bijection, stepping the inverse dynamics backwards
// reassembles the disk bit-for-bit. (This is the property that makes
// lattice gases exactly conservative and entropy discussions subtle.)
//
//   ./time_reversal [side] [steps]

#include <cstdio>
#include <cstdlib>

#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/image_io.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"
#include "lattice/lgca/reference.hpp"

int main(int argc, char** argv) {
  using namespace lattice;
  using namespace lattice::lgca;
  const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 48;
  const std::int64_t steps = argc > 2 ? std::atoll(argv[2]) : 60;

  const GasRule rule(GasKind::FHP_III);
  SiteLattice lat({side, side}, Boundary::Periodic);
  // A dense disk of gas in vacuum.
  for (std::int64_t y = 0; y < side; ++y) {
    for (std::int64_t x = 0; x < side; ++x) {
      const double dx = static_cast<double>(x) - side / 2.0;
      const double dy = static_cast<double>(y) - side / 2.0;
      if (dx * dx + dy * dy < (side / 6.0) * (side / 6.0)) {
        lat.at({x, y}) = 0x3f;  // all six channels
      }
    }
  }
  const SiteLattice original = lat;
  const GasModel& model = rule.model();

  std::printf("t = 0 (a disk of gas):\n%s\n",
              render_density_ascii(lat, model).c_str());

  reference_run(lat, rule, steps);
  std::printf("t = %lld (apparent chaos):\n%s\n",
              static_cast<long long>(steps),
              render_density_ascii(lat, model).c_str());

  for (std::int64_t t = steps; t-- > 0;) gas_unstep(lat, rule, t);
  std::printf("t = 0 again, after %lld reversed steps:\n%s\n",
              static_cast<long long>(steps),
              render_density_ascii(lat, model).c_str());

  std::printf("exact reassembly: %s\n",
              lat == original ? "yes, bit-for-bit" : "NO — bug!");
  return lat == original ? 0 : 1;
}
