// Theorem 1 and embedding properties (experiment E4).

#include <gtest/gtest.h>

#include "lattice/embed/embedding.hpp"

namespace lattice::embed {
namespace {

// ---------- bijectivity across embeddings and sizes ----------

struct EmbeddingCase {
  const char* label;
  std::int64_t n;
};

class EveryEmbeddingTest
    : public ::testing::TestWithParam<std::int64_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, EveryEmbeddingTest,
                         ::testing::Values(4, 8, 16, 32));

TEST_P(EveryEmbeddingTest, AllStandardEmbeddingsAreBijective) {
  const std::int64_t n = GetParam();
  for (const auto& emb : standard_embeddings()) {
    if (!emb->supports({n, n})) continue;
    EXPECT_TRUE(is_bijective(*emb, {n, n})) << emb->name() << " n=" << n;
  }
}

TEST_P(EveryEmbeddingTest, TheoremOneLowerBoundHolds) {
  // span >= n for every embedding of an n×n array.
  const std::int64_t n = GetParam();
  for (const auto& emb : standard_embeddings()) {
    if (!emb->supports({n, n})) continue;
    EXPECT_GE(adjacency_span(*emb, {n, n}), n) << emb->name();
  }
}

TEST_P(EveryEmbeddingTest, RowMajorAchievesTheLowerBound) {
  const std::int64_t n = GetParam();
  EXPECT_EQ(adjacency_span(RowMajorEmbedding{}, {n, n}), n);
}

TEST_P(EveryEmbeddingTest, RowMajorMooreWindowIsTwoLinesPlusThree) {
  // The two-line shift register of §3/§6: a full 3×3 neighborhood spans
  // 2n+3 consecutive stream slots in raster order.
  const std::int64_t n = GetParam();
  EXPECT_EQ(moore_window(RowMajorEmbedding{}, {n, n}), 2 * n + 3);
}

// ---------- specific embeddings ----------

TEST(RowMajor, PositionsMatchRasterScan) {
  const RowMajorEmbedding emb;
  EXPECT_EQ(emb.position({4, 4}, {0, 0}), 0u);
  EXPECT_EQ(emb.position({4, 4}, {3, 0}), 3u);
  EXPECT_EQ(emb.position({4, 4}, {0, 1}), 4u);
  EXPECT_EQ(emb.position({4, 4}, {3, 3}), 15u);
}

TEST(RowMajor, RectangularSpanEqualsWidth) {
  // Span is set by vertical adjacency: one full row.
  EXPECT_EQ(adjacency_span(RowMajorEmbedding{}, {10, 4}), 10);
  EXPECT_EQ(adjacency_span(RowMajorEmbedding{}, {4, 10}), 4);
}

TEST(Boustrophedon, ReversesOddRows) {
  const BoustrophedonEmbedding emb;
  EXPECT_EQ(emb.position({4, 2}, {0, 0}), 0u);
  EXPECT_EQ(emb.position({4, 2}, {3, 0}), 3u);
  EXPECT_EQ(emb.position({4, 2}, {3, 1}), 4u);  // snake turns
  EXPECT_EQ(emb.position({4, 2}, {0, 1}), 7u);
}

TEST(Boustrophedon, SpanIsNearlyTwoRows) {
  // Vertical pairs at the far end of a snake turn are 2n-1 apart.
  EXPECT_EQ(adjacency_span(BoustrophedonEmbedding{}, {8, 8}), 15);
  EXPECT_EQ(adjacency_span(BoustrophedonEmbedding{}, {16, 16}), 31);
}

TEST(Block, RequiresDivisibleExtent) {
  const BlockEmbedding emb(4);
  EXPECT_TRUE(emb.supports({8, 8}));
  EXPECT_FALSE(emb.supports({9, 8}));
  EXPECT_FALSE(emb.supports({8, 9}));
}

TEST(Block, RejectsNonPositiveBlock) {
  EXPECT_THROW(BlockEmbedding(0), Error);
  EXPECT_THROW(BlockEmbedding(-2), Error);
}

TEST(Block, InteriorOfBlockIsRowMajor) {
  const BlockEmbedding emb(4);
  EXPECT_EQ(emb.position({8, 8}, {0, 0}), 0u);
  EXPECT_EQ(emb.position({8, 8}, {3, 0}), 3u);
  EXPECT_EQ(emb.position({8, 8}, {0, 1}), 4u);
  EXPECT_EQ(emb.position({8, 8}, {4, 0}), 16u);  // next block
  EXPECT_EQ(emb.position({8, 8}, {0, 4}), 32u);  // next block row
}

TEST(Block, SpanExceedsRowMajor) {
  // Cross-block vertical adjacency pays a whole block row.
  const BlockEmbedding emb(4);
  EXPECT_GT(adjacency_span(emb, {16, 16}), 16);
}

TEST(Hilbert, RequiresSquarePowerOfTwo) {
  const HilbertEmbedding emb;
  EXPECT_TRUE(emb.supports({8, 8}));
  EXPECT_FALSE(emb.supports({8, 16}));
  EXPECT_FALSE(emb.supports({12, 12}));
}

TEST(Hilbert, FirstOrderCurveVisitsQuadrantsInU) {
  const HilbertEmbedding emb;
  // 2×2: (0,0) -> (0,1) -> (1,1) -> (1,0).
  EXPECT_EQ(emb.position({2, 2}, {0, 0}), 0u);
  EXPECT_EQ(emb.position({2, 2}, {0, 1}), 1u);
  EXPECT_EQ(emb.position({2, 2}, {1, 1}), 2u);
  EXPECT_EQ(emb.position({2, 2}, {1, 0}), 3u);
}

TEST(Hilbert, ConsecutivePositionsAreLatticeNeighbors) {
  // The defining property of the Hilbert curve.
  const HilbertEmbedding emb;
  const Extent e{16, 16};
  std::vector<Coord> by_pos(static_cast<std::size_t>(e.area()));
  for (std::int64_t y = 0; y < e.height; ++y)
    for (std::int64_t x = 0; x < e.width; ++x)
      by_pos[emb.position(e, {x, y})] = {x, y};
  for (std::size_t p = 1; p < by_pos.size(); ++p) {
    const auto dx = std::abs(by_pos[p].x - by_pos[p - 1].x);
    const auto dy = std::abs(by_pos[p].y - by_pos[p - 1].y);
    EXPECT_EQ(dx + dy, 1) << "positions " << p - 1 << "," << p;
  }
}

TEST(Hilbert, CurveClevernessCannotBeatTheoremOne) {
  // Hilbert's worst-case adjacent distance (which is what sizes a shift
  // register) is Θ(n²): cells facing each other across the top-level
  // quadrant split are half a curve apart. Row-major's n is optimal.
  const HilbertEmbedding hilbert;
  const RowMajorEmbedding row;
  const Extent e{32, 32};
  EXPECT_EQ(adjacency_span(row, e), 32);
  EXPECT_GE(adjacency_span(hilbert, e), 32 * 32 / 4);
}

// ---------- Theorem 1, exhaustively ----------

TEST(TheoremOne, ExhaustiveMinimumSpanN2) {
  // All 24 placements of a 2×2 array: best possible span is exactly 2.
  EXPECT_EQ(min_span_over_all_placements(2), 2);
}

TEST(TheoremOne, ExhaustiveMinimumSpanN3) {
  // All 362,880 placements of a 3×3 array: best possible span is 3 —
  // achieved by row-major, as the theorem predicts.
  EXPECT_EQ(min_span_over_all_placements(3), 3);
}

TEST(TheoremOne, ExhaustiveRejectsLargeN) {
  EXPECT_THROW(min_span_over_all_placements(4), Error);
}

// ---------- misc ----------

TEST(AdjacencySpan, RejectsUnsupportedExtent) {
  EXPECT_THROW(adjacency_span(HilbertEmbedding{}, {12, 12}), Error);
}

TEST(MeanDistance, SingleCellHasNoPairs) {
  EXPECT_DOUBLE_EQ(mean_adjacency_distance(RowMajorEmbedding{}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace lattice::embed
