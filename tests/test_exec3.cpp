// Engine-level 3-D backend tests: the cubic gas through the full
// production stack. The tentpole claim is that the dimension-blind
// engine layers (state carry, checkpointing, scheduling, reporting)
// need no 3-D special cases beyond Config::depth — so Reference3 and
// BitPlane3 must be bit-exact with each other and with the Lattice3
// golden reference across boundaries, thread counts, and temporal-
// tiling plans, and every checkpoint must round-trip the volume's
// factorization, not just its flat byte count.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "lattice/core/checkpoint_io.hpp"
#include "lattice/core/engine.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca3d/plane_kernel3.hpp"

namespace lattice::core {
namespace {

struct Case3 {
  lgca::Boundary boundary;
  unsigned threads;
  int tile_generations;  // 1 = untiled, 0 = planner auto
};

LatticeEngine::Config cfg3(Backend b, lgca3d::Extent3 ext,
                           lgca::Boundary boundary = lgca::Boundary::Null,
                           unsigned threads = 1, int tile_generations = 1) {
  LatticeEngine::Config c;
  c.extent = {ext.nx, ext.ny};
  c.depth = ext.nz;
  c.boundary = boundary;
  c.backend = b;
  c.threads = threads;
  c.tile_generations = tile_generations;
  return c;
}

/// The shared seeding recipe: a couple of obstacle sites (bounce-back
/// in play), then the cubic gas's own random fill. Applied identically
/// to engine state and golden volume so the evolutions are comparable.
void seed_volume(lgca3d::Lattice3& vol, std::uint64_t seed) {
  const lgca3d::Extent3 e = vol.extent();
  vol.at({e.nx / 2, e.ny / 2, e.nz / 2}) = lgca3d::kObstacleBit;
  vol.at({e.nx / 3, e.ny / 3, e.nz / 3}) = lgca3d::kObstacleBit;
  lgca3d::fill_random(vol, 0.3, seed);
}

void seed_engine3(LatticeEngine& e, lgca3d::Extent3 ext,
                  std::uint64_t seed = 31) {
  lgca3d::Lattice3 vol(ext, lgca3d::Boundary3::Null);
  seed_volume(vol, seed);
  ASSERT_EQ(e.state().site_count(), vol.site_count());
  std::memcpy(e.state().grid().data(), vol.data(), vol.site_count());
}

// ---- parity matrix: both 3-D backends vs the golden reference ----

class Exec3Matrix : public ::testing::TestWithParam<Case3> {};

INSTANTIATE_TEST_SUITE_P(
    BoundariesThreadsTiling, Exec3Matrix,
    ::testing::Values(Case3{lgca::Boundary::Null, 1, 1},
                      Case3{lgca::Boundary::Null, 1, 0},
                      Case3{lgca::Boundary::Null, 4, 1},
                      Case3{lgca::Boundary::Null, 4, 0},
                      Case3{lgca::Boundary::Periodic, 1, 1},
                      Case3{lgca::Boundary::Periodic, 1, 0},
                      Case3{lgca::Boundary::Periodic, 4, 1},
                      Case3{lgca::Boundary::Periodic, 4, 0}),
    [](const auto& info) {
      const Case3& c = info.param;
      std::string s =
          c.boundary == lgca::Boundary::Null ? "Null" : "Periodic";
      s += "T" + std::to_string(c.threads);
      s += c.tile_generations == 0 ? "Auto" : "Untiled";
      return s;
    });

TEST_P(Exec3Matrix, BackendsMatchEachOtherAndGolden) {
  const Case3 p = GetParam();
  const lgca3d::Extent3 ext{20, 14, 10};
  LatticeEngine ref3(cfg3(Backend::Reference3, ext, p.boundary, p.threads,
                          p.tile_generations));
  LatticeEngine bp3(cfg3(Backend::BitPlane3, ext, p.boundary, p.threads,
                         p.tile_generations));
  seed_engine3(ref3, ext);
  seed_engine3(bp3, ext);

  lgca3d::Lattice3 golden(ext, lgca3d::to_boundary3(p.boundary));
  seed_volume(golden, 31);

  ref3.advance(12);
  bp3.advance(12);
  lgca3d::reference_run(golden, 12);

  EXPECT_TRUE(ref3.state() == bp3.state())
      << "boolean-algebra collisions must match gather-and-collide";
  EXPECT_EQ(std::memcmp(ref3.state().grid().data(), golden.data(),
                        golden.site_count()),
            0)
      << "the flat engine raster must equal the golden volume";
  EXPECT_TRUE(ref3.verify_against_reference());
  EXPECT_TRUE(bp3.verify_against_reference());
}

TEST_P(Exec3Matrix, RaggedAdvancesMatchStraightRun) {
  const Case3 p = GetParam();
  const lgca3d::Extent3 ext{20, 14, 10};
  LatticeEngine straight(cfg3(Backend::BitPlane3, ext, p.boundary,
                              p.threads, p.tile_generations));
  LatticeEngine ragged(cfg3(Backend::BitPlane3, ext, p.boundary, p.threads,
                            p.tile_generations));
  seed_engine3(straight, ext);
  seed_engine3(ragged, ext);
  straight.advance(17);
  // 1 + 5 + 2 + 6 + 3 = 17: tails shorter than any tile depth, so the
  // chunk-quantum rounding and the plain path both run.
  for (const int step : {1, 5, 2, 6, 3}) ragged.advance(step);
  EXPECT_EQ(ragged.generation(), 17);
  EXPECT_TRUE(ragged.state() == straight.state());
}

// ---- temporal tiling at engine level ----

TEST(Exec3Tiling, ExplicitPlanEngagesAndStaysExact) {
  // nz far beyond the slab budget so an explicit k = 2 plan is
  // feasible; chunk_quantum() == 2 proves the plan engaged (it is the
  // executor's scheduling contract, not a private detail).
  const lgca3d::Extent3 ext{64, 16, 96};
  LatticeEngine tiled(cfg3(Backend::BitPlane3, ext, lgca::Boundary::Null,
                           2, 2));
  EXPECT_EQ(tiled.chunk_quantum(), 2) << "the k = 2 z-slab plan must hold";
  LatticeEngine untiled(cfg3(Backend::BitPlane3, ext, lgca::Boundary::Null,
                             1, 1));
  EXPECT_EQ(untiled.chunk_quantum(), 1);
  seed_engine3(tiled, ext);
  seed_engine3(untiled, ext);
  tiled.advance(11);  // not a multiple of the quantum: tail path too
  untiled.advance(11);
  EXPECT_TRUE(tiled.state() == untiled.state())
      << "the trapezoidal z-slab schedule must be bit-identical";
  EXPECT_TRUE(tiled.verify_against_reference());
}

TEST(Exec3Tiling, ReferenceBackendIgnoresTilePlans) {
  const lgca3d::Extent3 ext{20, 14, 10};
  LatticeEngine e(cfg3(Backend::Reference3, ext, lgca::Boundary::Null, 1, 4));
  EXPECT_EQ(e.chunk_quantum(), 1)
      << "the golden updater has no tiled path to quantize for";
}

// ---- config validation ----

TEST(Exec3Config, DepthRequiresA3dBackend) {
  for (const Backend b : {Backend::Reference, Backend::BitPlane}) {
    LatticeEngine::Config c;
    c.extent = {16, 16};
    c.depth = 2;
    c.backend = b;
    EXPECT_THROW(LatticeEngine{c}, Error)
        << "2-D backends must not silently fold depth into height";
  }
}

TEST(Exec3Config, CustomRulesAreRejected) {
  const lgca::LifeRule life;
  for (const Backend b : {Backend::Reference3, Backend::BitPlane3}) {
    LatticeEngine::Config c = cfg3(b, {16, 8, 4});
    c.custom_rule = &life;
    EXPECT_THROW(LatticeEngine{c}, Error)
        << "the 3-D executors run exactly one gas";
  }
}

TEST(Exec3Config, HostileExtentsFailTyped) {
  EXPECT_THROW(LatticeEngine{cfg3(Backend::Reference3, {16, 8, 0})}, Error);
  EXPECT_THROW(LatticeEngine{cfg3(Backend::BitPlane3, {16, 8, -4})}, Error);
  EXPECT_THROW(LatticeEngine{cfg3(Backend::BitPlane3, {0, 8, 4})}, Error);
  // Overflow-shaped volume: each side legal, product past the bound.
  const std::int64_t big = std::int64_t{1} << 16;
  EXPECT_THROW(LatticeEngine{cfg3(Backend::Reference3, {big, big, big})},
               Error);
}

// ---- checkpointing carries the factorization ----

TEST(Exec3Checkpoint, RoundTripIsBitExactOnBothBackends) {
  const lgca3d::Extent3 ext{20, 14, 10};
  for (const Backend b : {Backend::Reference3, Backend::BitPlane3}) {
    LatticeEngine straight(cfg3(b, ext));
    LatticeEngine resumed(cfg3(b, ext));
    seed_engine3(straight, ext);
    seed_engine3(resumed, ext);
    straight.advance(10);

    resumed.advance(4);
    const EngineCheckpoint ckpt = resumed.checkpoint();
    EXPECT_EQ(ckpt.generation, 4);
    EXPECT_EQ(ckpt.depth, 10) << "the snapshot must name its nz";
    resumed.advance(6);
    resumed.restore(ckpt);
    EXPECT_EQ(resumed.generation(), 4);
    resumed.advance(6);
    EXPECT_TRUE(resumed.state() == straight.state());
  }
}

TEST(Exec3Checkpoint, DurableRoundTripPreservesDepth) {
  const lgca3d::Extent3 ext{20, 14, 10};
  LatticeEngine straight(cfg3(Backend::BitPlane3, ext));
  LatticeEngine resumed(cfg3(Backend::BitPlane3, ext));
  seed_engine3(straight, ext);
  seed_engine3(resumed, ext);
  straight.advance(10);

  resumed.advance(4);
  std::stringstream buf;
  save_checkpoint(resumed.checkpoint(), buf);
  resumed.advance(6);

  const EngineCheckpoint loaded = load_checkpoint(buf);
  EXPECT_EQ(loaded.generation, 4);
  EXPECT_EQ(loaded.depth, 10);
  resumed.restore(loaded);
  resumed.advance(6);
  EXPECT_TRUE(resumed.state() == straight.state())
      << "replay from the durable 3-D snapshot must be bit-exact";
}

TEST(Exec3Checkpoint, RestoreRejectsADifferentFactorization) {
  // {16, 4, 8} and {16, 8, 4} share the same flat byte view {16, 32}:
  // the byte count alone cannot distinguish the volumes, so the
  // checkpoint's depth must.
  LatticeEngine a(cfg3(Backend::Reference3, {16, 4, 8}));
  LatticeEngine b(cfg3(Backend::Reference3, {16, 8, 4}));
  seed_engine3(a, {16, 4, 8});
  a.advance(3);
  const EngineCheckpoint ckpt = a.checkpoint();
  EXPECT_THROW(b.restore(ckpt), Error)
      << "same flat bytes, different volume: must be rejected";
  EXPECT_NO_THROW(a.restore(ckpt));
}

// ---- reporting ----

TEST(Exec3Report, CommittedUpdatesCountTheVolume) {
  const lgca3d::Extent3 ext{20, 14, 10};
  for (const Backend b : {Backend::Reference3, Backend::BitPlane3}) {
    LatticeEngine e(cfg3(b, ext));
    seed_engine3(e, ext);
    e.advance(6);
    const PerformanceReport r = e.report();
    EXPECT_EQ(r.site_updates, ext.volume() * 6);
    EXPECT_EQ(r.committed_updates, ext.volume() * 6);
  }
}

}  // namespace
}  // namespace lattice::core
