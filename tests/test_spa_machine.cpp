// SPA simulator: slice pipelines with row-staggered streams and side
// channels must reproduce the golden evolution bit-for-bit, and the
// side-channel / bandwidth accounting must match §6.2's model.

#include <gtest/gtest.h>

#include "lattice/arch/spa.hpp"
#include "lattice/common/rng.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::arch {
namespace {

using lgca::Boundary;
using lgca::GasKind;
using lgca::GasModel;
using lgca::GasRule;
using lgca::SiteLattice;

SiteLattice random_gas(Extent e, GasKind kind, std::uint64_t seed) {
  SiteLattice lat(e, Boundary::Null);
  lgca::fill_random(lat, GasModel::get(kind), 0.35, seed, 0.2);
  return lat;
}

SiteLattice golden(const SiteLattice& in, const lgca::Rule& rule, int gens,
                   std::int64_t t0 = 0) {
  SiteLattice lat = in;
  lgca::reference_run(lat, rule, gens, t0);
  return lat;
}

struct SpaCase {
  std::int64_t w;       // lattice width
  std::int64_t h;       // lattice height
  std::int64_t slice;   // W
  int depth;            // P_k · stages
};

class SpaEquivalenceTest : public ::testing::TestWithParam<SpaCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpaEquivalenceTest,
    ::testing::Values(SpaCase{16, 8, 8, 1}, SpaCase{16, 8, 4, 1},
                      SpaCase{16, 8, 4, 3}, SpaCase{24, 10, 6, 2},
                      SpaCase{32, 12, 8, 4}, SpaCase{12, 20, 3, 2},
                      SpaCase{20, 6, 5, 5}, SpaCase{8, 8, 2, 3},
                      SpaCase{40, 8, 10, 2}, SpaCase{16, 16, 16, 2}),
    [](const auto& info) {
      const SpaCase& c = info.param;
      return "w" + std::to_string(c.w) + "h" + std::to_string(c.h) + "s" +
             std::to_string(c.slice) + "d" + std::to_string(c.depth);
    });

TEST_P(SpaEquivalenceTest, MatchesGoldenForFhpGas) {
  const SpaCase c = GetParam();
  const GasRule rule(GasKind::FHP_II);
  const SiteLattice in = random_gas({c.w, c.h}, GasKind::FHP_II, 21);

  SpaMachine spa({c.w, c.h}, rule, c.slice, c.depth);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, c.depth));
}

TEST_P(SpaEquivalenceTest, MatchesGoldenForLife) {
  const SpaCase c = GetParam();
  const lgca::LifeRule rule;
  SiteLattice in({c.w, c.h}, Boundary::Null);
  Pcg32 rng(17);
  for (std::size_t i = 0; i < in.site_count(); ++i)
    in[i] = static_cast<lgca::Site>(rng.next() & 1);

  SpaMachine spa({c.w, c.h}, rule, c.slice, c.depth);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, c.depth));
}

TEST(SpaMachine, MatchesGoldenWithObstacles) {
  const GasRule rule(GasKind::HPP);
  SiteLattice in({24, 12}, Boundary::Null);
  lgca::add_obstacle_disk(in, 12, 6, 3);
  lgca::fill_random(in, GasModel::get(GasKind::HPP), 0.3, 8);

  SpaMachine spa({24, 12}, rule, 6, 3);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 3));
}

TEST(SpaMachine, MatchesWsaSemanticsAtNonzeroTimeOrigin) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({16, 10}, GasKind::FHP_I, 4);
  SpaMachine spa({16, 10}, rule, 4, 2, /*t0=*/31);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 2, /*t0=*/31));
}

TEST(SpaMachine, SingleSliceDegeneratesToSerialPipeline) {
  // W = lattice width: no side channels at all.
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({12, 12}, GasKind::FHP_I, 6);
  SpaMachine spa({12, 12}, rule, 12, 2);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 2));
  EXPECT_EQ(spa.stats().boundary_fetches, 0);
}

// ---- accounting ----

TEST(SpaMachine, BoundaryFetchesScaleWithInteriorBoundaries) {
  // Each interior slice boundary is crossed by 3 window cells from each
  // side, per row, per stage: 6·(slices-1)·H·depth fetches in total
  // (top and bottom rows mask one of the three).
  const GasRule rule(GasKind::FHP_I);
  const std::int64_t w = 16;
  const std::int64_t h = 10;
  const SiteLattice in = random_gas({w, h}, GasKind::FHP_I, 6);
  SpaMachine spa({w, h}, rule, 4, 2);
  (void)spa.run(in);
  const std::int64_t slices = 4;
  const std::int64_t interior = slices - 1;
  // Interior rows contribute 6 per boundary; the two edge rows 4 each.
  const std::int64_t per_boundary_per_gen = 6 * (h - 2) + 2 * 4;
  EXPECT_EQ(spa.stats().boundary_fetches,
            interior * per_boundary_per_gen * 2);
}

TEST(SpaMachine, ReadsAndWritesExactlyTheLattice) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({16, 16}, GasKind::FHP_I, 6);
  SpaMachine spa({16, 16}, rule, 4, 3);
  (void)spa.run(in);
  EXPECT_EQ(spa.stats().mem_sites_read, 16 * 16);
  EXPECT_EQ(spa.stats().mem_sites_written, 16 * 16);
  EXPECT_EQ(spa.stats().site_updates, 16 * 16 * 3);
}

TEST(SpaMachine, MoreSlicesFinishFaster) {
  // The throughput claim of §6.2: R grows with L/W because every slice
  // streams concurrently.
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({64, 32}, GasKind::FHP_I, 6);
  SpaMachine narrow({64, 32}, rule, 64, 2);  // 1 slice
  SpaMachine wide({64, 32}, rule, 8, 2);     // 8 slices
  (void)narrow.run(in);
  (void)wide.run(in);
  EXPECT_GT(narrow.stats().ticks, 4 * wide.stats().ticks);
  EXPECT_GT(wide.stats().updates_per_tick(),
            4 * narrow.stats().updates_per_tick());
}

TEST(SpaMachine, UpdatesPerTickApproachesSlicesTimesDepth) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({64, 64}, GasKind::FHP_I, 6);
  SpaMachine spa({64, 64}, rule, 8, 2);  // 8 slices × 2 deep = 16 PEs
  (void)spa.run(in);
  const double upt = spa.stats().updates_per_tick();
  EXPECT_GT(upt, 0.7 * 16);
  EXPECT_LE(upt, 16.0);
}

TEST(SpaMachine, PerStageBufferIsTwoSliceLines)
{
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({16, 8}, GasKind::FHP_I, 6);
  SpaMachine spa({16, 8}, rule, 4, 2);
  (void)spa.run(in);
  // 4 slices × 2 stages, each buffering 2W+6 sites: the SPA win —
  // buffers scale with W, not L (§5).
  EXPECT_EQ(spa.stats().buffer_sites, 4 * 2 * (2 * 4 + 6));
}

TEST(SpaMachine, RejectsBadConfiguration) {
  const GasRule rule(GasKind::HPP);
  EXPECT_THROW(SpaMachine({16, 8}, rule, 5, 1), Error);  // 5 ∤ 16
  EXPECT_THROW(SpaMachine({16, 8}, rule, 1, 1), Error);  // W < 2
  EXPECT_THROW(SpaMachine({16, 8}, rule, 4, 0), Error);
  SpaMachine spa({16, 8}, rule, 4, 1);
  SiteLattice periodic({16, 8}, Boundary::Periodic);
  EXPECT_THROW((void)spa.run(periodic), Error);
}

}  // namespace
}  // namespace lattice::arch
