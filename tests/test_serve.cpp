// The serving layer: SessionManager scheduling/eviction/quotas, the
// wire protocol's typed-error guarantees, and the socket framing.
//
// The load-bearing claims:
//   * eviction to the spool and restore-on-touch are bit-exact against
//     an unevicted twin engine (the checkpoint payload is the
//     backend-shared byte-site image, so this holds on every backend);
//   * weighted round-robin never starves a class: 64 sessions on a
//     4-engine pool all finish their work;
//   * no frame a client can send — truncated, overlong, garbage —
//     takes the server down; each gets a typed error response.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca3d/lattice3.hpp"
#include "lattice/serve/json_parse.hpp"
#include "lattice/serve/protocol.hpp"
#include "lattice/serve/server.hpp"
#include "lattice/serve/session_manager.hpp"

namespace {

using lattice::Extent;
using lattice::core::Backend;
using lattice::core::LatticeEngine;
using lattice::lgca::GasKind;
using lattice::serve::JsonParseError;
using lattice::serve::JsonValue;
using lattice::serve::parse_json;
using lattice::serve::Priority;
using lattice::serve::ProtocolLimits;
using lattice::serve::QuotaError;
using lattice::serve::ServeProtocol;
using lattice::serve::SessionError;
using lattice::serve::SessionId;
using lattice::serve::SessionManager;
using lattice::serve::SessionOptions;
using lattice::serve::SocketServer;

/// Fresh spool directory per test so runs never see stale checkpoints.
std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("serve_test_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

LatticeEngine::Config small_config(Backend backend, GasKind gas,
                                   std::int64_t side = 24) {
  LatticeEngine::Config cfg;
  cfg.extent = Extent{side, side};
  cfg.gas = gas;
  cfg.backend = backend;
  return cfg;
}

SessionManager::InitFn random_init(double density, std::uint64_t seed) {
  return [density, seed](lattice::lgca::SiteLattice& state,
                         const lattice::lgca::GasModel& model) {
    lattice::lgca::fill_random(state, model, density, seed, 0.1);
  };
}

std::string error_code(const std::string& response) {
  const JsonValue v = parse_json(response);
  const JsonValue* e = v.find("error");
  return e != nullptr ? std::string(e->string_or("")) : std::string();
}

bool response_ok(const std::string& response) {
  const JsonValue* f = parse_json(response).find("ok");
  return f != nullptr && f->bool_or(false);
}

// ---- JSON parser ----

TEST(JsonParse, ScalarsObjectsArrays) {
  EXPECT_EQ(parse_json("42").integer, 42);
  EXPECT_EQ(parse_json("-7").integer, -7);
  EXPECT_EQ(parse_json("true").boolean, true);
  EXPECT_EQ(parse_json("null").kind, JsonValue::Kind::Null);
  EXPECT_DOUBLE_EQ(parse_json("2.5").number, 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").number, 1000.0);
  EXPECT_EQ(parse_json("\"a\\nb\\u0041\"").string, "a\nbA");

  const JsonValue v = parse_json(
      "{\"op\":\"step\",\"id\":3,\"nested\":{\"xs\":[1,2,3]},\"f\":0.5}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("op")->string, "step");
  EXPECT_EQ(v.find("id")->integer, 3);
  EXPECT_EQ(v.find("nested")->find("xs")->elements.size(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, IntegerPrecisionSurvives) {
  // int64 ids must not round-trip through double.
  const std::int64_t big = (std::int64_t{1} << 62) + 1;
  EXPECT_EQ(parse_json(std::to_string(big)).integer, big);
  EXPECT_EQ(parse_json(std::to_string(big)).kind, JsonValue::Kind::Int);
  // But a fraction or exponent demotes to double.
  EXPECT_EQ(parse_json("1.0").kind, JsonValue::Kind::Double);
}

TEST(JsonParse, MalformedInputsThrowTyped) {
  const char* bad[] = {
      "",          "   ",        "{",         "[1,2",      "{\"a\":}",
      "{\"a\" 1}", "tru",        "\"unterm",  "\"\\q\"",   "01",
      "1 2",       "{} trailing", "[1,,2]",   "{\"a\":1,}", "nan",
      "\"\\ud800\"",  // lone surrogate escape: rejected, not mangled
  };
  for (const char* s : bad) {
    EXPECT_THROW(parse_json(s), JsonParseError) << "input: " << s;
  }
}

TEST(JsonParse, DepthCapStopsStackAbuse) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parse_json(deep, 32), JsonParseError);
  EXPECT_NO_THROW(parse_json("[[[[[1]]]]]", 32));
}

// ---- SessionManager ----

TEST(SessionManager, EvictThenRestoreIsBitExactVsUneventfulTwin) {
  for (const Backend backend : {Backend::Reference, Backend::BitPlane}) {
    SessionManager::Config pool;
    pool.max_resident = 2;
    pool.workers = 1;
    pool.quantum = 4;
    pool.spool_dir = fresh_dir("evict");
    SessionManager mgr(pool);

    const auto cfg = small_config(backend, GasKind::HPP);
    const SessionId id = mgr.create(cfg, {}, random_init(0.3, 99));

    // Twin: same config, same init, never evicted, stepped in one call.
    LatticeEngine twin(cfg);
    lattice::lgca::fill_random(twin.state(), twin.gas_model(), 0.3, 99, 0.1);

    mgr.step(id, 10);
    mgr.wait(id);
    ASSERT_TRUE(mgr.evict(id));
    EXPECT_FALSE(mgr.query(id).resident);
    EXPECT_FALSE(mgr.evict(id));  // already evicted

    // Touching it with more work restores from the spool checkpoint.
    mgr.step(id, 7);
    mgr.wait(id);
    twin.advance(17);

    const auto info = mgr.query(id);
    EXPECT_TRUE(info.resident);
    EXPECT_EQ(info.generation, 17);
    EXPECT_EQ(info.evictions, 1);
    EXPECT_EQ(info.restores, 1);
    EXPECT_TRUE(mgr.state(id) == twin.state())
        << "diverged after evict/restore, backend "
        << static_cast<int>(backend);
  }
}

TEST(SessionManager, Session3dEvictThenRestoreIsBitExact) {
  // The acceptance claim for the 3-D refactor at this layer: a hosted
  // cubic-gas session survives spool eviction and restore-on-touch
  // bit-exactly, because the checkpoint carries the volume's
  // factorization (depth) alongside the flat byte image.
  for (const Backend backend : {Backend::Reference3, Backend::BitPlane3}) {
    SessionManager::Config pool;
    pool.max_resident = 2;
    pool.workers = 1;
    pool.quantum = 4;
    pool.spool_dir = fresh_dir("evict3d");
    SessionManager mgr(pool);

    LatticeEngine::Config cfg;
    cfg.extent = Extent{24, 12};
    cfg.depth = 6;
    cfg.backend = backend;
    const lattice::lgca3d::Extent3 e3{24, 12, 6};
    const auto init = [e3](lattice::lgca::SiteLattice& state,
                           const lattice::lgca::GasModel&) {
      lattice::lgca3d::Lattice3 volume(e3, lattice::lgca3d::Boundary3::Null);
      lattice::lgca3d::fill_random(volume, 0.3, 99);
      std::memcpy(state.grid().data(), volume.data(), state.site_count());
    };
    const SessionId id = mgr.create(cfg, {}, init);

    LatticeEngine twin(cfg);
    {
      lattice::lgca3d::Lattice3 volume(e3, lattice::lgca3d::Boundary3::Null);
      lattice::lgca3d::fill_random(volume, 0.3, 99);
      std::memcpy(twin.state().grid().data(), volume.data(),
                  twin.state().site_count());
    }

    mgr.step(id, 10);
    mgr.wait(id);
    ASSERT_TRUE(mgr.evict(id));
    EXPECT_FALSE(mgr.query(id).resident);

    mgr.step(id, 7);
    mgr.wait(id);
    twin.advance(17);

    const auto info = mgr.query(id);
    EXPECT_TRUE(info.resident);
    EXPECT_EQ(info.generation, 17);
    EXPECT_EQ(info.depth, 6) << "the session must remember its nz";
    EXPECT_EQ(info.evictions, 1);
    EXPECT_EQ(info.restores, 1);
    EXPECT_TRUE(mgr.state(id) == twin.state())
        << "3-D session diverged after evict/restore, backend "
        << static_cast<int>(backend);
  }
}

TEST(SessionManager, SchedulerPressureEvictsAndStaysExact) {
  // More sessions than engines: the scheduler must juggle residency on
  // its own, and every session must still match its twin.
  SessionManager::Config pool;
  pool.max_resident = 2;
  pool.workers = 1;
  pool.quantum = 4;
  pool.spool_dir = fresh_dir("pressure");
  SessionManager mgr(pool);

  constexpr int kSessions = 6;
  constexpr std::int64_t kGens = 12;
  std::vector<SessionId> ids;
  std::vector<LatticeEngine> twins;
  twins.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    const auto cfg = small_config(
        i % 2 == 0 ? Backend::Reference : Backend::BitPlane, GasKind::HPP, 16);
    const auto seed = static_cast<std::uint64_t>(100 + i);
    ids.push_back(mgr.create(cfg, {}, random_init(0.25, seed)));
    twins.emplace_back(cfg);
    lattice::lgca::fill_random(twins.back().state(), twins.back().gas_model(),
                               0.25, seed, 0.1);
  }
  // Interleave step requests so residency churns.
  for (std::int64_t half = 0; half < 2; ++half) {
    for (const SessionId id : ids) mgr.step(id, kGens / 2);
  }
  mgr.wait_all();
  EXPECT_GE(mgr.stats().evicted, 1);
  EXPECT_GE(mgr.stats().restored, 1);
  for (int i = 0; i < kSessions; ++i) {
    twins[static_cast<std::size_t>(i)].advance(kGens);
    EXPECT_EQ(mgr.query(ids[static_cast<std::size_t>(i)]).generation, kGens);
    EXPECT_TRUE(mgr.state(ids[static_cast<std::size_t>(i)]) ==
                twins[static_cast<std::size_t>(i)].state())
        << "session " << i;
  }
}

TEST(SessionManager, NoStarvationAt64SessionsOver4Engines) {
  SessionManager::Config pool;
  pool.max_resident = 4;
  pool.workers = 2;
  pool.quantum = 2;
  pool.spool_dir = fresh_dir("fair");
  SessionManager mgr(pool);

  constexpr int kSessions = 64;
  constexpr std::int64_t kGens = 6;
  std::vector<SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    SessionOptions opts;
    opts.priority = static_cast<Priority>(i % 3);
    ids.push_back(mgr.create(small_config(Backend::Reference, GasKind::HPP, 8),
                             opts, random_init(0.2, 7 + i)));
  }
  for (const SessionId id : ids) mgr.step(id, kGens);
  mgr.wait_all();
  // Fairness: every session — batch class included — finished all its
  // work despite 16x oversubscription of the pool.
  for (const SessionId id : ids) {
    const auto info = mgr.query(id);
    EXPECT_EQ(info.generation, kGens) << "session " << id << " starved";
    EXPECT_EQ(info.pending_generations, 0);
  }
  const auto s = mgr.stats();
  EXPECT_EQ(s.created, kSessions);
  EXPECT_EQ(s.generations, kSessions * kGens);
  EXPECT_GE(s.evicted, kSessions - pool.max_resident);
  EXPECT_LE(s.resident, pool.max_resident);
  EXPECT_EQ(s.step_latency.count, kSessions);  // one sample per step()
}

TEST(SessionManager, QuotasRefuseTyped) {
  SessionManager::Config pool;
  pool.max_resident = 2;
  pool.spool_dir = fresh_dir("quota");
  pool.max_sessions = 2;
  SessionManager mgr(pool);

  SessionOptions opts;
  opts.quota.max_generations = 10;
  opts.quota.max_pending = 4;
  const auto cfg = small_config(Backend::Reference, GasKind::HPP, 8);
  const SessionId a = mgr.create(cfg, opts);
  mgr.create(cfg);
  EXPECT_THROW(mgr.create(cfg), QuotaError);  // admission cap

  EXPECT_THROW(mgr.step(a, 5), QuotaError);  // pending cap (4)
  mgr.step(a, 4);
  mgr.wait(a);
  mgr.step(a, 4);
  mgr.wait(a);
  EXPECT_THROW(mgr.step(a, 3), QuotaError);  // lifetime cap (8 + 3 > 10)
  mgr.step(a, 2);                            // exactly at the cap is fine
  mgr.wait(a);
  EXPECT_EQ(mgr.query(a).generation, 10);
  EXPECT_EQ(mgr.stats().rejected, 3);

  EXPECT_THROW(mgr.step(999, 1), SessionError);
  EXPECT_THROW(mgr.query(999), SessionError);
  EXPECT_THROW(mgr.destroy(999), SessionError);
}

TEST(SessionManager, QuantumRoundsUpToTiledChunk) {
  // A temporally-tiled engine commits whole tile blocks; a scheduling
  // quantum smaller than the tile depth must round up, and the result
  // must still match an untiled twin.
  SessionManager::Config pool;
  pool.max_resident = 1;
  pool.quantum = 3;  // deliberately not a multiple of the tile depth
  pool.spool_dir = fresh_dir("tile");
  SessionManager mgr(pool);

  auto cfg = small_config(Backend::Reference, GasKind::HPP, 16);
  cfg.tile_generations = 4;
  const SessionId id = mgr.create(cfg, {}, random_init(0.3, 5));
  mgr.step(id, 14);
  mgr.wait(id);
  EXPECT_EQ(mgr.query(id).generation, 14);

  auto flat = small_config(Backend::Reference, GasKind::HPP, 16);
  LatticeEngine twin(flat);
  lattice::lgca::fill_random(twin.state(), twin.gas_model(), 0.3, 5, 0.1);
  twin.advance(14);
  EXPECT_TRUE(mgr.state(id) == twin.state());
}

TEST(SessionManager, CorruptSpoolPoisonsSessionNotServer) {
  SessionManager::Config pool;
  pool.max_resident = 1;
  pool.spool_dir = fresh_dir("poison");
  SessionManager mgr(pool);

  const auto cfg = small_config(Backend::Reference, GasKind::HPP, 8);
  const SessionId a = mgr.create(cfg, {}, random_init(0.3, 1));
  mgr.step(a, 4);
  mgr.wait(a);
  ASSERT_TRUE(mgr.evict(a));
  {
    // Truncate the spool checkpoint behind the manager's back.
    std::ofstream f(pool.spool_dir + "/session-" + std::to_string(a) +
                        ".ckpt",
                    std::ios::trunc | std::ios::binary);
    f << "garbage";
  }
  mgr.step(a, 4);  // restore-on-touch will fail in the worker
  EXPECT_THROW(mgr.wait(a), SessionError);
  EXPECT_THROW(mgr.step(a, 1), SessionError);  // stays poisoned
  // The server survives: other sessions still run.
  const SessionId b = mgr.create(cfg, {}, random_init(0.3, 2));
  mgr.step(b, 4);
  mgr.wait(b);
  EXPECT_EQ(mgr.query(b).generation, 4);
  mgr.destroy(a);  // poisoned sessions can still be destroyed
  EXPECT_THROW(mgr.query(a), SessionError);
}

TEST(SessionManager, ConcurrentClientsManyWorkers) {
  // TSAN target: several client threads churning create/step/query/
  // destroy against multiple scheduler workers.
  SessionManager::Config pool;
  pool.max_resident = 3;
  pool.workers = 3;
  pool.quantum = 4;
  pool.spool_dir = fresh_dir("mt");
  SessionManager mgr(pool);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      try {
        for (int i = 0; i < kPerThread; ++i) {
          const SessionId id =
              mgr.create(small_config(Backend::Reference, GasKind::HPP, 8),
                         {}, random_init(0.2, 31 + t * 100 + i));
          mgr.step(id, 4);
          mgr.step(id, 4);
          mgr.wait(id);
          if (mgr.query(id).generation != 8) failures.fetch_add(1);
          mgr.destroy(id);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr.session_count(), 0);
  EXPECT_EQ(mgr.stats().created, kThreads * kPerThread);
  EXPECT_EQ(mgr.stats().destroyed, kThreads * kPerThread);
}

// ---- Wire protocol ----

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : pool_([] {
          SessionManager::Config c;
          c.max_resident = 2;
          c.spool_dir = fresh_dir("proto");
          return c;
        }()),
        mgr_(pool_),
        proto_(mgr_, ProtocolLimits{}, fresh_dir("proto_ckpt")) {}

  SessionManager::Config pool_;
  SessionManager mgr_;
  ServeProtocol proto_;
};

TEST_F(ProtocolTest, LifecycleRoundTrip) {
  const std::string created = proto_.handle(
      "{\"op\":\"create\",\"width\":16,\"height\":16,\"gas\":\"hpp\","
      "\"backend\":\"bitplane\",\"init\":\"random\",\"seed\":3}");
  ASSERT_TRUE(response_ok(created)) << created;
  const std::int64_t id = parse_json(created).find("id")->integer;

  const std::string stepped =
      proto_.handle("{\"op\":\"step\",\"id\":" + std::to_string(id) +
                    ",\"generations\":8,\"wait\":true}");
  ASSERT_TRUE(response_ok(stepped)) << stepped;
  EXPECT_EQ(parse_json(stepped).find("generation")->integer, 8);

  const std::string queried =
      proto_.handle("{\"op\":\"query\",\"id\":" + std::to_string(id) + "}");
  ASSERT_TRUE(response_ok(queried)) << queried;
  EXPECT_EQ(parse_json(queried).find("width")->integer, 16);

  EXPECT_TRUE(response_ok(proto_.handle(
      "{\"op\":\"destroy\",\"id\":" + std::to_string(id) + "}")));
  EXPECT_TRUE(response_ok(proto_.handle("{\"op\":\"stats\"}")));
  EXPECT_FALSE(proto_.shutdown_requested());
  EXPECT_TRUE(response_ok(proto_.handle("{\"op\":\"shutdown\"}")));
  EXPECT_TRUE(proto_.shutdown_requested());
}

TEST_F(ProtocolTest, EveryAbuseGetsATypedErrorNeverAThrow) {
  const struct {
    const char* frame;
    const char* code;
  } cases[] = {
      {"", "parse_error"},
      {"garbage", "parse_error"},
      {"{\"op\":\"create\",\"width\":16", "parse_error"},  // truncated
      {"[1,2,3]", "bad_request"},                          // not an object
      {"{\"id\":1}", "bad_request"},                       // no op
      {"{\"op\":12}", "bad_request"},                      // op not a string
      {"{\"op\":\"warp\"}", "unknown_op"},
      {"{\"op\":\"create\",\"width\":16}", "bad_request"},  // no height
      {"{\"op\":\"create\",\"width\":1,\"height\":16}", "bad_request"},
      {"{\"op\":\"create\",\"width\":65536,\"height\":16}", "bad_request"},
      {"{\"op\":\"create\",\"width\":16,\"height\":16,\"gas\":\"ideal\"}",
       "bad_request"},
      {"{\"op\":\"create\",\"width\":16,\"height\":16,\"backend\":\"gpu\"}",
       "bad_request"},
      {"{\"op\":\"create\",\"width\":16,\"height\":16,\"init\":\"laminar\"}",
       "bad_request"},
      {"{\"op\":\"step\",\"id\":1}", "bad_request"},  // no generations
      {"{\"op\":\"step\",\"id\":1,\"generations\":0}", "bad_request"},
      {"{\"op\":\"step\",\"id\":77,\"generations\":1}", "unknown_session"},
      {"{\"op\":\"query\",\"id\":77}", "unknown_session"},
      {"{\"op\":\"destroy\",\"id\":77}", "unknown_session"},
      {"{\"op\":\"checkpoint\",\"id\":1}", "bad_request"},  // no name
  };
  for (const auto& c : cases) {
    std::string resp;
    EXPECT_NO_THROW(resp = proto_.handle(c.frame)) << c.frame;
    EXPECT_FALSE(response_ok(resp)) << c.frame;
    EXPECT_EQ(error_code(resp), c.code) << c.frame << " -> " << resp;
  }
  // After all of that the protocol still serves.
  EXPECT_TRUE(response_ok(proto_.handle("{\"op\":\"ping\"}")));
}

TEST_F(ProtocolTest, Create3dSessionOverTheWire) {
  // "depth" on the wire is pipeline depth, so nz carries the z extent.
  const std::string created = proto_.handle(
      "{\"op\":\"create\",\"width\":16,\"height\":12,\"nz\":4,"
      "\"backend\":\"bitplane3\",\"init\":\"random\",\"seed\":5}");
  ASSERT_TRUE(response_ok(created)) << created;
  const std::int64_t id = parse_json(created).find("id")->integer;

  EXPECT_TRUE(response_ok(
      proto_.handle("{\"op\":\"step\",\"id\":" + std::to_string(id) +
                    ",\"generations\":6,\"wait\":true}")));
  const std::string queried =
      proto_.handle("{\"op\":\"query\",\"id\":" + std::to_string(id) + "}");
  ASSERT_TRUE(response_ok(queried)) << queried;
  const JsonValue v = parse_json(queried);
  EXPECT_EQ(v.find("generation")->integer, 6);
  ASSERT_NE(v.find("nz"), nullptr) << "query must report the z extent";
  EXPECT_EQ(v.find("nz")->integer, 4);
  EXPECT_TRUE(response_ok(proto_.handle(
      "{\"op\":\"destroy\",\"id\":" + std::to_string(id) + "}")));
}

TEST_F(ProtocolTest, Bad3dCreatesGetTypedErrors) {
  const struct {
    const char* frame;
    const char* code;
  } cases[] = {
      // flow init has no 3-D analog
      {"{\"op\":\"create\",\"width\":16,\"height\":12,\"nz\":4,"
       "\"backend\":\"bitplane3\",\"init\":\"flow\"}",
       "bad_request"},
      // nz > 1 on a 2-D backend
      {"{\"op\":\"create\",\"width\":16,\"height\":12,\"nz\":4,"
       "\"backend\":\"bitplane\"}",
       "bad_request"},
      // nz out of the wire bound
      {"{\"op\":\"create\",\"width\":16,\"height\":12,\"nz\":0,"
       "\"backend\":\"bitplane3\"}",
       "bad_request"},
  };
  for (const auto& c : cases) {
    std::string resp;
    EXPECT_NO_THROW(resp = proto_.handle(c.frame)) << c.frame;
    EXPECT_FALSE(response_ok(resp)) << c.frame;
    EXPECT_EQ(error_code(resp), c.code) << c.frame << " -> " << resp;
  }
}

TEST_F(ProtocolTest, CheckpointNameCannotEscapeDirectory) {
  const std::string created = proto_.handle(
      "{\"op\":\"create\",\"width\":16,\"height\":16}");
  ASSERT_TRUE(response_ok(created));
  const std::int64_t id = parse_json(created).find("id")->integer;
  for (const char* name : {"../escape", "a/b", "..", ""}) {
    const std::string resp = proto_.handle(
        "{\"op\":\"checkpoint\",\"id\":" + std::to_string(id) +
        ",\"name\":\"" + name + "\"}");
    EXPECT_EQ(error_code(resp), "bad_request") << name;
  }
}

TEST_F(ProtocolTest, OverlongFrameIsTypedToo) {
  std::string big = "{\"op\":\"ping\",\"pad\":\"";
  big.append(proto_.limits().max_frame_bytes, 'x');
  big += "\"}";
  EXPECT_EQ(error_code(proto_.handle(big)), "frame_too_long");
}

TEST_F(ProtocolTest, QuotaSurfacesOnTheWire) {
  const std::string created = proto_.handle(
      "{\"op\":\"create\",\"width\":16,\"height\":16,\"max_generations\":4}");
  ASSERT_TRUE(response_ok(created));
  const std::int64_t id = parse_json(created).find("id")->integer;
  const std::string resp =
      proto_.handle("{\"op\":\"step\",\"id\":" + std::to_string(id) +
                    ",\"generations\":5}");
  EXPECT_EQ(error_code(resp), "quota_exceeded");
}

// ---- Socket framing ----

/// Run serve_connection over one end of a socketpair; drive the other.
class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_.max_resident = 2;
    pool_.spool_dir = fresh_dir("frame");
    mgr_ = std::make_unique<SessionManager>(pool_);
    proto_ = std::make_unique<ServeProtocol>(*mgr_, ProtocolLimits{},
                                             fresh_dir("frame_ckpt"));
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    server_ = std::thread([this] {
      SocketServer::serve_connection(fds_[0], *proto_, nullptr);
      ::close(fds_[0]);
    });
  }

  void TearDown() override {
    ::close(fds_[1]);
    server_.join();
  }

  void send_raw(const std::string& bytes) {
    ASSERT_EQ(::write(fds_[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }

  std::string read_response() {
    std::string line;
    char c;
    while (::read(fds_[1], &c, 1) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return line;
  }

  SessionManager::Config pool_;
  std::unique_ptr<SessionManager> mgr_;
  std::unique_ptr<ServeProtocol> proto_;
  int fds_[2] = {-1, -1};
  std::thread server_;
};

TEST_F(FramingTest, GarbageTruncatedAndSplitFramesAllAnswered) {
  // Binary garbage (no JSON anywhere) gets a parse_error.
  send_raw(std::string("\x01\x02\xff\xfe garbage\n", 17));
  EXPECT_EQ(error_code(read_response()), "parse_error");
  // A frame truncated mid-object (newline arrives early).
  send_raw("{\"op\":\"create\",\"wid\n");
  EXPECT_EQ(error_code(read_response()), "parse_error");
  // One frame split across many writes still parses as one.
  send_raw("{\"op\":");
  send_raw("\"pi");
  send_raw("ng\"}\n");
  EXPECT_TRUE(response_ok(read_response()));
  // Two frames in one write get two responses.
  send_raw("{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n");
  EXPECT_TRUE(response_ok(read_response()));
  EXPECT_TRUE(response_ok(read_response()));
  // CRLF framing and blank lines are tolerated.
  send_raw("{\"op\":\"ping\"}\r\n\n\r\n");
  EXPECT_TRUE(response_ok(read_response()));
  // Still alive for real work afterwards.
  send_raw("{\"op\":\"create\",\"width\":16,\"height\":16}\n");
  EXPECT_TRUE(response_ok(read_response()));
}

TEST_F(FramingTest, OverlongFrameResyncsAtNextNewline) {
  // No newline for > max_frame_bytes: one frame_too_long response, then
  // the stream resynchronizes at the next newline and keeps serving.
  const std::size_t n = proto_->limits().max_frame_bytes + 100;
  std::string flood(n, 'x');
  send_raw(flood);
  EXPECT_EQ(error_code(read_response()), "frame_too_long");
  send_raw("tail-of-the-oversized-frame\n{\"op\":\"ping\"}\n");
  EXPECT_TRUE(response_ok(read_response()));
}

}  // namespace
