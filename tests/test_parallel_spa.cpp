// Thread-parallel SPA: the row-chunk wavefront over worker lanes must
// be bit-identical to the serial golden reference for every thread
// count, slice width, depth, and kernel choice — and its analytic
// counters must equal the cycle-exact walk's counters exactly.

#include <gtest/gtest.h>

#include <string>

#include "lattice/arch/spa.hpp"
#include "lattice/common/rng.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::arch {
namespace {

using lgca::Boundary;
using lgca::GasKind;
using lgca::GasModel;
using lgca::GasRule;
using lgca::SiteLattice;

SiteLattice random_gas(Extent e, GasKind kind, std::uint64_t seed) {
  SiteLattice lat(e, Boundary::Null);
  lgca::fill_random(lat, GasModel::get(kind), 0.35, seed, 0.2);
  return lat;
}

SiteLattice golden(const SiteLattice& in, const lgca::Rule& rule, int gens,
                   std::int64_t t0 = 0) {
  SiteLattice lat = in;
  lgca::reference_run(lat, rule, gens, t0);
  return lat;
}

struct ParCase {
  std::int64_t slice;  // W (must divide 63)
  int depth;
  unsigned threads;
  bool fast;
};

class ParallelSpaTest : public ::testing::TestWithParam<ParCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSpaTest,
    ::testing::Values(ParCase{7, 1, 2, false}, ParCase{7, 3, 2, true},
                      ParCase{7, 4, 7, true}, ParCase{9, 2, 2, true},
                      ParCase{9, 5, 7, false}, ParCase{21, 3, 2, true},
                      ParCase{21, 2, 7, true}, ParCase{63, 3, 2, true},
                      ParCase{63, 2, 7, false}),
    [](const auto& info) {
      const ParCase& c = info.param;
      return "s" + std::to_string(c.slice) + "d" + std::to_string(c.depth) +
             "t" + std::to_string(c.threads) + (c.fast ? "fast" : "generic");
    });

TEST_P(ParallelSpaTest, MatchesGoldenOnOddExtent) {
  const ParCase c = GetParam();
  const GasRule rule(GasKind::FHP_II);
  const SiteLattice in = random_gas({63, 17}, GasKind::FHP_II, 29);
  SpaMachine spa({63, 17}, rule, c.slice, c.depth, /*t0=*/0, c.threads,
                 c.fast);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, c.depth));
}

TEST_P(ParallelSpaTest, StatsMatchCycleExactWalk) {
  // The parallel path's closed-form counters must equal what the serial
  // tick walk actually counts — they describe the same machine.
  const ParCase c = GetParam();
  const GasRule rule(GasKind::FHP_II);
  const SiteLattice in = random_gas({63, 17}, GasKind::FHP_II, 29);
  SpaMachine serial({63, 17}, rule, c.slice, c.depth);
  SpaMachine parallel({63, 17}, rule, c.slice, c.depth, /*t0=*/0, c.threads,
                      c.fast);
  const SiteLattice a = serial.run(in);
  const SiteLattice b = parallel.run(in);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(parallel.stats().ticks, serial.stats().ticks);
  EXPECT_EQ(parallel.stats().site_updates, serial.stats().site_updates);
  EXPECT_EQ(parallel.stats().mem_sites_read, serial.stats().mem_sites_read);
  EXPECT_EQ(parallel.stats().mem_sites_written,
            serial.stats().mem_sites_written);
  EXPECT_EQ(parallel.stats().boundary_fetches,
            serial.stats().boundary_fetches);
  EXPECT_EQ(parallel.stats().buffer_sites, serial.stats().buffer_sites);
}

TEST(ParallelSpa, FastKernelAloneKeepsCycleExactCountersExact) {
  // fast_kernel without threads stays on the cycle-exact walk; its
  // counters must be untouched by the kernel swap.
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({24, 10}, GasKind::FHP_I, 5);
  SpaMachine generic({24, 10}, rule, 6, 2);
  SpaMachine fused({24, 10}, rule, 6, 2, /*t0=*/0, /*threads=*/1,
                   /*fast_kernel=*/true);
  const SiteLattice a = generic.run(in);
  const SiteLattice b = fused.run(in);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(fused.stats().ticks, generic.stats().ticks);
  EXPECT_EQ(fused.stats().boundary_fetches, generic.stats().boundary_fetches);
  EXPECT_EQ(fused.stats().site_updates, generic.stats().site_updates);
}

TEST(ParallelSpa, GenericRuleRunsTheWavefrontToo) {
  // Non-gas rules can't use the LUT but still get thread parallelism.
  const lgca::LifeRule rule;
  SiteLattice in({63, 17}, Boundary::Null);
  Pcg32 rng(3);
  for (std::size_t i = 0; i < in.site_count(); ++i)
    in[i] = static_cast<lgca::Site>(rng.next() & 1);
  SpaMachine spa({63, 17}, rule, 9, 3, /*t0=*/0, /*threads=*/4,
                 /*fast_kernel=*/true);  // fast_kernel ignored: not a gas
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 3));
}

TEST(ParallelSpa, NonzeroTimeOriginKeepsChiralityPhase) {
  const GasRule rule(GasKind::FHP_III);
  const SiteLattice in = random_gas({21, 13}, GasKind::FHP_III, 11);
  SpaMachine spa({21, 13}, rule, 7, 2, /*t0=*/31, /*threads=*/3,
                 /*fast_kernel=*/true);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 2, /*t0=*/31));
}

TEST(ParallelSpa, ObstaclesSurviveTheWavefront) {
  const GasRule rule(GasKind::HPP);
  SiteLattice in({24, 12}, Boundary::Null);
  lgca::add_obstacle_disk(in, 12, 6, 3);
  lgca::fill_random(in, GasModel::get(GasKind::HPP), 0.3, 8);
  SpaMachine spa({24, 12}, rule, 6, 3, /*t0=*/0, /*threads=*/4,
                 /*fast_kernel=*/true);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 3));
}

TEST(ParallelSpa, MoreThreadsThanSlicesClamps) {
  const GasRule rule(GasKind::FHP_II);
  const SiteLattice in = random_gas({16, 8}, GasKind::FHP_II, 21);
  SpaMachine spa({16, 8}, rule, 8, 2, /*t0=*/0, /*threads=*/64,
                 /*fast_kernel=*/true);  // only 2 slices
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 2));
}

}  // namespace
}  // namespace lattice::arch
