// StreamStage in isolation: the shift-register component every serial
// architecture is built from. Exercises delay accounting, window
// masking at row/lattice edges, lead padding, and batch alignment —
// plus randomized cross-backend fuzzing at the system level.

#include <gtest/gtest.h>

#include "lattice/arch/spa.hpp"
#include "lattice/arch/stream_stage.hpp"
#include "lattice/arch/wsa.hpp"
#include "lattice/common/rng.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::arch {
namespace {

using lgca::Boundary;
using lgca::Site;
using lgca::SiteLattice;

/// Identity-like probe rule: returns the window's center (so the stage
/// output stream should equal the input stream, delayed).
class CenterRule final : public lgca::Rule {
 public:
  Site apply(const lgca::Window& w, const lgca::SiteContext&) const override {
    return w.center();
  }
  std::string_view name() const override { return "center"; }
};

/// Probe rule returning the east neighbor — detects off-by-one window
/// wiring and row-edge masking.
class EastRule final : public lgca::Rule {
 public:
  Site apply(const lgca::Window& w, const lgca::SiteContext&) const override {
    return w.at(1, 0);
  }
  std::string_view name() const override { return "east"; }
};

std::vector<Site> drive(StreamStage& stage, const std::vector<Site>& stream,
                        int batch, std::int64_t total_positions) {
  std::vector<Site> out;
  std::vector<Site> in_buf(static_cast<std::size_t>(batch), 0);
  std::vector<Site> out_buf(static_cast<std::size_t>(batch), 0);
  for (std::int64_t pos = 0; pos < total_positions; pos += batch) {
    for (int b = 0; b < batch; ++b) {
      const auto p = static_cast<std::size_t>(pos + b);
      in_buf[static_cast<std::size_t>(b)] =
          p < stream.size() ? stream[p] : Site{0};
    }
    stage.tick(in_buf.data(), out_buf.data());
    for (int b = 0; b < batch; ++b) out.push_back(out_buf[static_cast<std::size_t>(b)]);
  }
  return out;
}

TEST(StreamStage, DelayIsWidthPlusOneRoundedToBatch) {
  const CenterRule rule;
  StreamStage s1({10, 4}, rule, 0, 1);
  EXPECT_EQ(s1.delay(), 11);
  StreamStage s4({10, 4}, rule, 0, 4);
  EXPECT_EQ(s4.delay(), 12);  // round_up(11, 4)
}

TEST(StreamStage, CenterRuleReproducesInputDelayed) {
  const Extent e{6, 4};
  const CenterRule rule;
  StreamStage stage(e, rule, 0, 1);
  std::vector<Site> stream(static_cast<std::size_t>(e.area()));
  for (std::size_t i = 0; i < stream.size(); ++i)
    stream[i] = static_cast<Site>(i + 1);

  const auto out = drive(stage, stream, 1, e.area() + stage.delay());
  // Output position p appears at tick p + delay.
  for (std::int64_t p = 0; p < e.area(); ++p) {
    EXPECT_EQ(out[static_cast<std::size_t>(p + stage.delay())],
              stream[static_cast<std::size_t>(p)])
        << "p=" << p;
  }
  // Everything before the first real output is zero filler.
  for (std::int64_t i = 0; i < stage.delay(); ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 0);
  }
}

TEST(StreamStage, EastRuleMasksRowEdges) {
  const Extent e{4, 3};
  const EastRule rule;
  StreamStage stage(e, rule, 0, 1);
  std::vector<Site> stream(static_cast<std::size_t>(e.area()));
  for (std::size_t i = 0; i < stream.size(); ++i)
    stream[i] = static_cast<Site>(i + 1);

  const auto out = drive(stage, stream, 1, e.area() + stage.delay());
  for (std::int64_t y = 0; y < e.height; ++y) {
    for (std::int64_t x = 0; x < e.width; ++x) {
      const std::int64_t p = y * e.width + x;
      const Site got = out[static_cast<std::size_t>(p + stage.delay())];
      if (x == e.width - 1) {
        EXPECT_EQ(got, 0) << "row edge must mask, p=" << p;
      } else {
        EXPECT_EQ(got, stream[static_cast<std::size_t>(p + 1)]) << "p=" << p;
      }
    }
  }
}

TEST(StreamStage, LeadPaddingShiftsLogicalOrigin) {
  const Extent e{5, 3};
  const CenterRule rule;
  StreamStage padded(e, rule, 0, 1, /*lead_padding=*/7);
  std::vector<Site> stream(static_cast<std::size_t>(e.area()));
  for (std::size_t i = 0; i < stream.size(); ++i)
    stream[i] = static_cast<Site>(i + 10);

  // Feed 7 garbage positions first; the stage must ignore them.
  std::vector<Site> padded_stream(7, Site{99});
  padded_stream.reserve(7 + stream.size());
  for (const Site s : stream) padded_stream.push_back(s);
  const auto out =
      drive(padded, padded_stream, 1, 7 + e.area() + padded.delay());
  for (std::int64_t p = 0; p < e.area(); ++p) {
    EXPECT_EQ(out[static_cast<std::size_t>(7 + p + padded.delay())],
              stream[static_cast<std::size_t>(p)]);
  }
}

TEST(StreamStage, RejectsBadConfiguration) {
  const CenterRule rule;
  EXPECT_THROW(StreamStage({0, 4}, rule, 0, 1), Error);
  EXPECT_THROW(StreamStage({4, 4}, rule, 0, 0), Error);
  EXPECT_THROW(StreamStage({4, 4}, rule, 0, 5), Error);   // batch > width
  EXPECT_THROW(StreamStage({4, 4}, rule, 0, 1, -1), Error);
}

TEST(StreamStage, BufferScalesWithWidthNotHeight) {
  const CenterRule rule;
  StreamStage wide({100, 4}, rule, 0, 1);
  StreamStage tall({10, 400}, rule, 0, 1);
  EXPECT_GT(wide.buffer_sites(), 2 * 100);
  EXPECT_LT(tall.buffer_sites(), 2 * 10 + 40);
}

// ---- randomized cross-backend fuzzing ----

class FuzzEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(FuzzEquivalence, RandomShapesAllBackendsAgree) {
  const std::uint64_t seed = GetParam();
  Pcg32 rng(seed * 7919);
  const std::int64_t w = 8 + rng.next_below(3) * 8;  // 8, 16, 24
  const std::int64_t h = 6 + rng.next_below(12);
  const int depth = 1 + static_cast<int>(rng.next_below(4));
  const int width = 1 + static_cast<int>(rng.next_below(4));
  const std::int64_t slice = (w % 8 == 0) ? 8 : w;

  const lgca::GasRule rule(lgca::GasKind::FHP_III);
  SiteLattice in({w, h}, Boundary::Null);
  lgca::fill_random(in, rule.model(), 0.25 + 0.05 * (seed % 4), seed);
  if (seed % 2 == 0) lgca::add_obstacle_disk(in, w / 2.0, h / 2.0, 2.0);

  SiteLattice want = in;
  lgca::reference_run(want, rule, depth);

  WsaPipeline wsa({w, h}, rule, depth, width);
  EXPECT_TRUE(wsa.run(in) == want)
      << "WSA w=" << w << " h=" << h << " d=" << depth << " P=" << width;

  SpaMachine spa({w, h}, rule, slice, depth);
  EXPECT_TRUE(spa.run(in) == want)
      << "SPA w=" << w << " h=" << h << " d=" << depth << " W=" << slice;
}

}  // namespace
}  // namespace lattice::arch
