// Checkpoint/restore round trips: resuming from a snapshot at
// generation k must reproduce the uninterrupted run bit-exactly, on
// every backend and both boundary modes the backend supports.

#include <gtest/gtest.h>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/init.hpp"

namespace lattice::core {
namespace {

LatticeEngine::Config cfg(Backend b, lgca::Boundary boundary) {
  LatticeEngine::Config c;
  c.extent = {32, 24};
  c.gas = lgca::GasKind::FHP_II;
  c.boundary = boundary;
  c.backend = b;
  c.pipeline_depth = 3;
  c.wsa_width = 2;
  c.spa_slice_width = 8;
  return c;
}

void seed(LatticeEngine& e) {
  lgca::fill_random(e.state(), e.gas_model(), 0.3, 31, 0.15);
}

struct CkptCase {
  Backend backend;
  lgca::Boundary boundary;
};

class CheckpointTest : public ::testing::TestWithParam<CkptCase> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsAndBoundaries, CheckpointTest,
    ::testing::Values(CkptCase{Backend::Reference, lgca::Boundary::Null},
                      CkptCase{Backend::Reference, lgca::Boundary::Periodic},
                      CkptCase{Backend::Wsa, lgca::Boundary::Null},
                      CkptCase{Backend::Spa, lgca::Boundary::Null},
                      CkptCase{Backend::BitPlane, lgca::Boundary::Null},
                      CkptCase{Backend::BitPlane, lgca::Boundary::Periodic}),
    [](const auto& info) {
      std::string s;
      switch (info.param.backend) {
        case Backend::Reference: s = "Reference"; break;
        case Backend::Wsa: s = "Wsa"; break;
        case Backend::Spa: s = "Spa"; break;
        case Backend::BitPlane: s = "BitPlane"; break;
      }
      s += info.param.boundary == lgca::Boundary::Null ? "Null" : "Periodic";
      return s;
    });

TEST_P(CheckpointTest, SaveRestoreRoundTripIsBitExact) {
  const CkptCase p = GetParam();
  LatticeEngine straight(cfg(p.backend, p.boundary));
  LatticeEngine resumed(cfg(p.backend, p.boundary));
  seed(straight);
  seed(resumed);
  straight.advance(10);

  resumed.advance(4);
  const EngineCheckpoint ckpt = resumed.checkpoint();
  EXPECT_EQ(ckpt.generation, 4);

  // Run past the snapshot, then rewind and replay.
  resumed.advance(6);
  EXPECT_TRUE(resumed.state() == straight.state());
  resumed.restore(ckpt);
  EXPECT_EQ(resumed.generation(), 4);
  resumed.advance(6);
  EXPECT_EQ(resumed.generation(), 10);
  EXPECT_TRUE(resumed.state() == straight.state())
      << "replay from the snapshot must be bit-exact";
  EXPECT_TRUE(resumed.verify_against_reference());
}

TEST_P(CheckpointTest, RestoreIsIdempotent) {
  const CkptCase p = GetParam();
  LatticeEngine e(cfg(p.backend, p.boundary));
  seed(e);
  e.advance(5);
  const EngineCheckpoint ckpt = e.checkpoint();
  e.restore(ckpt);
  e.restore(ckpt);
  EXPECT_EQ(e.generation(), 5);
  EXPECT_TRUE(e.state() == ckpt.state);
}

TEST(Checkpoint, RestoreRejectsMismatchedGeometry) {
  LatticeEngine e(cfg(Backend::Wsa, lgca::Boundary::Null));
  seed(e);
  EngineCheckpoint wrong_extent{
      lgca::SiteLattice({16, 16}, lgca::Boundary::Null), 0};
  EXPECT_THROW(e.restore(wrong_extent), Error);
  EngineCheckpoint wrong_boundary{
      lgca::SiteLattice({32, 24}, lgca::Boundary::Periodic), 0};
  EXPECT_THROW(e.restore(wrong_boundary), Error);
  EngineCheckpoint negative{lgca::SiteLattice({32, 24}, lgca::Boundary::Null),
                            -1};
  EXPECT_THROW(e.restore(negative), Error);
}

TEST(Checkpoint, SnapshotIsIsolatedFromLaterEvolution) {
  LatticeEngine e(cfg(Backend::Reference, lgca::Boundary::Null));
  seed(e);
  e.advance(2);
  const EngineCheckpoint ckpt = e.checkpoint();
  const lgca::SiteLattice frozen = ckpt.state;
  e.advance(3);
  EXPECT_TRUE(ckpt.state == frozen)
      << "a checkpoint is a deep copy, not a view";
}

}  // namespace
}  // namespace lattice::core
