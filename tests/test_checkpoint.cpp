// Checkpoint/restore round trips: resuming from a snapshot at
// generation k must reproduce the uninterrupted run bit-exactly, on
// every backend and both boundary modes the backend supports — plus
// the durable on-disk form (checkpoint_io.hpp), which must restore
// bit-exactly and reject every corrupted image with a typed error.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "lattice/core/checkpoint_io.hpp"
#include "lattice/core/engine.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/init.hpp"

namespace lattice::core {
namespace {

LatticeEngine::Config cfg(Backend b, lgca::Boundary boundary) {
  LatticeEngine::Config c;
  c.extent = {32, 24};
  c.gas = lgca::GasKind::FHP_II;
  c.boundary = boundary;
  c.backend = b;
  c.pipeline_depth = 3;
  c.wsa_width = 2;
  c.spa_slice_width = 8;
  return c;
}

void seed(LatticeEngine& e) {
  lgca::fill_random(e.state(), e.gas_model(), 0.3, 31, 0.15);
}

struct CkptCase {
  Backend backend;
  lgca::Boundary boundary;
};

class CheckpointTest : public ::testing::TestWithParam<CkptCase> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsAndBoundaries, CheckpointTest,
    ::testing::Values(CkptCase{Backend::Reference, lgca::Boundary::Null},
                      CkptCase{Backend::Reference, lgca::Boundary::Periodic},
                      CkptCase{Backend::Wsa, lgca::Boundary::Null},
                      CkptCase{Backend::Spa, lgca::Boundary::Null},
                      CkptCase{Backend::BitPlane, lgca::Boundary::Null},
                      CkptCase{Backend::BitPlane, lgca::Boundary::Periodic},
                      CkptCase{Backend::WsaE, lgca::Boundary::Null}),
    [](const auto& info) {
      std::string s;
      switch (info.param.backend) {
        case Backend::Reference: s = "Reference"; break;
        case Backend::Wsa: s = "Wsa"; break;
        case Backend::Spa: s = "Spa"; break;
        case Backend::BitPlane: s = "BitPlane"; break;
        case Backend::WsaE: s = "WsaE"; break;
      }
      s += info.param.boundary == lgca::Boundary::Null ? "Null" : "Periodic";
      return s;
    });

TEST_P(CheckpointTest, SaveRestoreRoundTripIsBitExact) {
  const CkptCase p = GetParam();
  LatticeEngine straight(cfg(p.backend, p.boundary));
  LatticeEngine resumed(cfg(p.backend, p.boundary));
  seed(straight);
  seed(resumed);
  straight.advance(10);

  resumed.advance(4);
  const EngineCheckpoint ckpt = resumed.checkpoint();
  EXPECT_EQ(ckpt.generation, 4);

  // Run past the snapshot, then rewind and replay.
  resumed.advance(6);
  EXPECT_TRUE(resumed.state() == straight.state());
  resumed.restore(ckpt);
  EXPECT_EQ(resumed.generation(), 4);
  resumed.advance(6);
  EXPECT_EQ(resumed.generation(), 10);
  EXPECT_TRUE(resumed.state() == straight.state())
      << "replay from the snapshot must be bit-exact";
  EXPECT_TRUE(resumed.verify_against_reference());
}

TEST_P(CheckpointTest, RestoreIsIdempotent) {
  const CkptCase p = GetParam();
  LatticeEngine e(cfg(p.backend, p.boundary));
  seed(e);
  e.advance(5);
  const EngineCheckpoint ckpt = e.checkpoint();
  e.restore(ckpt);
  e.restore(ckpt);
  EXPECT_EQ(e.generation(), 5);
  EXPECT_TRUE(e.state() == ckpt.state);
}

TEST(Checkpoint, RestoreRejectsMismatchedGeometry) {
  LatticeEngine e(cfg(Backend::Wsa, lgca::Boundary::Null));
  seed(e);
  EngineCheckpoint wrong_extent{
      lgca::SiteLattice({16, 16}, lgca::Boundary::Null), 0};
  EXPECT_THROW(e.restore(wrong_extent), Error);
  EngineCheckpoint wrong_boundary{
      lgca::SiteLattice({32, 24}, lgca::Boundary::Periodic), 0};
  EXPECT_THROW(e.restore(wrong_boundary), Error);
  EngineCheckpoint negative{lgca::SiteLattice({32, 24}, lgca::Boundary::Null),
                            -1};
  EXPECT_THROW(e.restore(negative), Error);
}

TEST(Checkpoint, CustomRuleEngineRoundTrips) {
  // restore() must not assume a gas: a custom-rule engine (no
  // gas_model, generic kernel path) round-trips the same way.
  const lgca::LifeRule life;
  LatticeEngine::Config c = cfg(Backend::Wsa, lgca::Boundary::Null);
  c.custom_rule = &life;
  LatticeEngine straight(c);
  LatticeEngine resumed(c);
  for (std::size_t i = 0; i < straight.state().site_count(); ++i) {
    const auto v = static_cast<lgca::Site>((i * 2654435761u >> 7) & 1);
    straight.state()[i] = v;
    resumed.state()[i] = v;
  }
  straight.advance(9);
  resumed.advance(3);
  const EngineCheckpoint ckpt = resumed.checkpoint();
  resumed.advance(6);
  resumed.restore(ckpt);
  resumed.advance(6);
  EXPECT_TRUE(resumed.state() == straight.state());
  EXPECT_TRUE(resumed.verify_against_reference());
}

TEST(Checkpoint, RestoreMidGuardedRunReplaysCleanly) {
  // A user-level restore in the middle of a fault-guarded run: the
  // replay runs under the same detectors and must land on the
  // fault-free evolution, exactly like the uninterrupted guarded run.
  LatticeEngine::Config c = cfg(Backend::Wsa, lgca::Boundary::Null);
  c.fault.seed = 10;
  c.fault.buffer_flip_rate = 1e-5;
  LatticeEngine guarded(c);
  LatticeEngine clean(cfg(Backend::Wsa, lgca::Boundary::Null));
  seed(guarded);
  seed(clean);
  clean.advance(12);

  guarded.advance(6);
  const EngineCheckpoint ckpt = guarded.checkpoint();
  guarded.advance(6);
  guarded.restore(ckpt);
  EXPECT_EQ(guarded.generation(), 6);
  guarded.advance(6);
  EXPECT_EQ(guarded.generation(), 12);
  EXPECT_TRUE(guarded.state() == clean.state())
      << "guarded replay from a user checkpoint must commit only "
         "fault-free generations";
  EXPECT_TRUE(guarded.verify_against_reference());
}

TEST_P(CheckpointTest, DurableRoundTripRestoresBitExactly) {
  // Serialize the snapshot through the on-disk byte format and resume
  // from the parsed copy: the replay must still be bit-exact on every
  // backend — the payload is the backend-neutral byte-site image.
  const CkptCase p = GetParam();
  LatticeEngine straight(cfg(p.backend, p.boundary));
  LatticeEngine resumed(cfg(p.backend, p.boundary));
  seed(straight);
  seed(resumed);
  straight.advance(10);

  resumed.advance(4);
  const EngineCheckpoint saved = resumed.checkpoint();
  std::stringstream buf;
  save_checkpoint(saved, buf);
  resumed.advance(6);

  const EngineCheckpoint loaded = load_checkpoint(buf);
  EXPECT_EQ(loaded.generation, 4);
  EXPECT_TRUE(loaded.state == saved.state)
      << "the parsed image must equal the in-memory snapshot";
  resumed.restore(loaded);
  resumed.advance(6);
  EXPECT_TRUE(resumed.state() == straight.state())
      << "replay from the durable snapshot must be bit-exact";
}

TEST(CheckpointIo, FileRoundTripPreservesEverything) {
  LatticeEngine e(cfg(Backend::Reference, lgca::Boundary::Periodic));
  seed(e);
  e.advance(7);
  const EngineCheckpoint ckpt = e.checkpoint();
  const std::string path = ::testing::TempDir() + "lattice_ckpt_test.bin";
  save_checkpoint(ckpt, path);
  const EngineCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.generation, 7);
  EXPECT_EQ(loaded.state.boundary(), lgca::Boundary::Periodic);
  EXPECT_TRUE(loaded.state == ckpt.state);
  std::remove(path.c_str());
}

std::string serialized_checkpoint() {
  LatticeEngine e(cfg(Backend::Reference, lgca::Boundary::Null));
  seed(e);
  e.advance(3);
  std::stringstream buf;
  save_checkpoint(e.checkpoint(), buf);
  return buf.str();
}

TEST(CheckpointIo, RejectsTruncationAtEveryLength) {
  const std::string image = serialized_checkpoint();
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, std::size_t{4}, std::size_t{24},
        std::size_t{33}, image.size() / 2, image.size() - 1}) {
    std::istringstream in(image.substr(0, len));
    EXPECT_THROW(load_checkpoint(in), CheckpointError)
        << "prefix of " << len << " bytes must be rejected";
  }
}

TEST(CheckpointIo, RejectsEverySingleBitFlip) {
  // The checksum covers header and payload, so no single corrupted
  // byte anywhere in the image may load — not as a different lattice,
  // not as a different generation, not silently.
  const std::string image = serialized_checkpoint();
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string bad = image;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    std::istringstream in(bad);
    EXPECT_THROW(load_checkpoint(in), CheckpointError)
        << "flip at byte " << i << " must be rejected";
  }
}

TEST(CheckpointIo, RejectsBadMagicVersionAndGeometryBeforeAllocation) {
  const std::string image = serialized_checkpoint();
  {
    std::string bad = image;
    bad[0] = static_cast<char>(~bad[0]);
    std::istringstream in(bad);
    EXPECT_THROW(load_checkpoint(in), CheckpointError) << "magic";
  }
  {
    std::string bad = image;
    bad[4] = 0x7F;  // unknown future version
    std::istringstream in(bad);
    EXPECT_THROW(load_checkpoint(in), CheckpointError) << "version";
  }
  {
    // A corrupted extent must be rejected by the sanity bound before
    // the loader tries to allocate width x height bytes.
    std::string bad = image;
    for (std::size_t i = 8; i < 16; ++i) {
      bad[i] = static_cast<char>(0xFF);
    }
    std::istringstream in(bad);
    EXPECT_THROW(load_checkpoint(in), CheckpointError) << "geometry bomb";
  }
}

// ---- the v2 depth field and v1 read-compatibility ----

TEST(CheckpointIo, V2DepthFieldRoundTrips) {
  EngineCheckpoint ckpt;
  ckpt.state = lgca::SiteLattice({8, 12}, lgca::Boundary::Periodic);
  for (std::size_t i = 0; i < ckpt.state.site_count(); ++i) {
    ckpt.state[i] = static_cast<lgca::Site>((i * 37) & 0x7F);
  }
  ckpt.generation = 7;
  ckpt.depth = 3;  // the flat {8, 12} view is the volume {8, 4, 3}
  std::stringstream buf;
  save_checkpoint(ckpt, buf);
  const EngineCheckpoint loaded = load_checkpoint(buf);
  EXPECT_EQ(loaded.depth, 3);
  EXPECT_EQ(loaded.generation, 7);
  EXPECT_TRUE(loaded.state == ckpt.state)
      << "the flat byte view must survive the factorized header";
}

TEST(CheckpointIo, SaveRejectsDepthThatDoesNotDivideTheHeight) {
  EngineCheckpoint ckpt;
  ckpt.state = lgca::SiteLattice({8, 12}, lgca::Boundary::Null);
  ckpt.depth = 5;  // 12 % 5 != 0: no volume factors this way
  std::stringstream buf;
  EXPECT_THROW(save_checkpoint(ckpt, buf), Error);
}

std::string legacy_v1_image(std::int64_t width, std::int64_t height,
                            unsigned char boundary, std::int64_t generation,
                            const std::string& payload) {
  // Hand-assembled v1 bytes (pre-depth format), exactly as the v1
  // writer emitted them: magic, version 1, {width, height}, boundary,
  // generation, payload, FNV-1a-64 trailer over everything before it.
  std::string img;
  const auto u32 = [&img](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) img.push_back(static_cast<char>(v >> (8 * i)));
  };
  const auto u64 = [&img](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) img.push_back(static_cast<char>(v >> (8 * i)));
  };
  u32(0x504B434Cu);
  u32(1);
  u64(static_cast<std::uint64_t>(width));
  u64(static_cast<std::uint64_t>(height));
  img.push_back(static_cast<char>(boundary));
  u64(static_cast<std::uint64_t>(generation));
  img += payload;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : img) h = (h ^ c) * 0x100000001b3ull;
  u64(h);
  return img;
}

TEST(CheckpointIo, ReadsLegacyV1ImagesAsDepthOne) {
  std::string payload(8 * 4, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 7) & 0x7F);
  }
  std::istringstream in(legacy_v1_image(8, 4, 1, 5, payload));
  const EngineCheckpoint loaded = load_checkpoint(in);
  EXPECT_EQ(loaded.depth, 1) << "a pre-depth image is a planar lattice";
  EXPECT_EQ(loaded.generation, 5);
  EXPECT_EQ(loaded.state.extent().width, 8);
  EXPECT_EQ(loaded.state.extent().height, 4);
  EXPECT_EQ(loaded.state.boundary(), lgca::Boundary::Periodic);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(loaded.state[i], static_cast<lgca::Site>(payload[i]));
  }
}

TEST(CheckpointIo, RejectsCorruptLegacyV1Images) {
  const std::string image = legacy_v1_image(8, 4, 0, 5, std::string(32, 'x'));
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string bad = image;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    std::istringstream in(bad);
    EXPECT_THROW(load_checkpoint(in), CheckpointError)
        << "v1 flip at byte " << i << " must be rejected";
  }
}

TEST(CheckpointIo, RejectsDepthGeometryBombBeforeAllocation) {
  // A corrupted depth field (bytes 24..32 of a v2 image) must hit the
  // sanity bound, not become a giant height·depth allocation.
  const std::string image = serialized_checkpoint();
  std::string bad = image;
  for (std::size_t i = 24; i < 32; ++i) bad[i] = static_cast<char>(0xFF);
  std::istringstream in(bad);
  EXPECT_THROW(load_checkpoint(in), CheckpointError);
}

TEST(Checkpoint, SnapshotIsIsolatedFromLaterEvolution) {
  LatticeEngine e(cfg(Backend::Reference, lgca::Boundary::Null));
  seed(e);
  e.advance(2);
  const EngineCheckpoint ckpt = e.checkpoint();
  const lgca::SiteLattice frozen = ckpt.state;
  e.advance(3);
  EXPECT_TRUE(ckpt.state == frozen)
      << "a checkpoint is a deep copy, not a view";
}

}  // namespace
}  // namespace lattice::core
