// Referee correctness: the games must accept exactly the legal moves.

#include <gtest/gtest.h>

#include "lattice/pebble/game.hpp"

namespace lattice::pebble {
namespace {

/// a → c, b → c, c → d : a diamond-free mini pipeline.
Dag chain_dag() {
  Dag dag(4);
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  dag.add_edge(2, 3);
  return dag;
}

TEST(RedBlueGame, InputsStartBlue) {
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 4);
  EXPECT_TRUE(game.blue(0));
  EXPECT_TRUE(game.blue(1));
  EXPECT_FALSE(game.blue(2));
  EXPECT_FALSE(game.red(0));
}

TEST(RedBlueGame, FullLegalPlayCompletes) {
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 3);
  game.read(0);
  game.read(1);
  game.compute(2);
  game.remove_red(0);
  game.remove_red(1);
  game.compute(3);
  game.write(3);
  EXPECT_TRUE(game.complete());
  EXPECT_EQ(game.io_moves(), 3);  // 2 reads + 1 write
  EXPECT_EQ(game.computes(), 2);
  EXPECT_EQ(game.peak_red(), 3);
}

TEST(RedBlueGame, ReadRequiresBlue) {
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 4);
  EXPECT_THROW(game.read(2), Error);  // no blue pebble yet
}

TEST(RedBlueGame, WriteRequiresRed) {
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 4);
  EXPECT_THROW(game.write(0), Error);  // blue but not red
}

TEST(RedBlueGame, ComputeRequiresAllPredecessorsRed) {
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 4);
  game.read(0);
  EXPECT_THROW(game.compute(2), Error);  // vertex 1 not red
  game.read(1);
  EXPECT_NO_THROW(game.compute(2));
}

TEST(RedBlueGame, CannotComputeAnInput) {
  // Rule 4 is vacuously satisfiable on inputs (no predecessors), but
  // underived data may only enter the chip by reading (rule 2).
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 4);
  EXPECT_THROW(game.compute(0), Error);
}

TEST(RedBlueGame, RedLimitEnforced) {
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 1);
  game.read(0);
  EXPECT_THROW(game.read(1), Error);  // second red exceeds S = 1
}

TEST(RedBlueGame, RemoveRequiresPresence) {
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 4);
  EXPECT_THROW(game.remove_red(0), Error);
  EXPECT_THROW(game.remove_blue(2), Error);
  game.read(0);
  EXPECT_NO_THROW(game.remove_red(0));
  EXPECT_NO_THROW(game.remove_blue(0));
}

TEST(RedBlueGame, RecomputeAfterEvictionIsLegal) {
  // Rule 4 can re-derive a discarded value — recomputation is what the
  // tiled schedules trade for I/O.
  const Dag dag = chain_dag();
  RedBlueGame game(dag, 4);
  game.read(0);
  game.read(1);
  game.compute(2);
  game.remove_red(2);
  EXPECT_NO_THROW(game.compute(2));
  EXPECT_EQ(game.computes(), 2);
}

TEST(RedBlueGame, SlidingWindowStaysWithinLimit) {
  // A long chain is pebbleable with S = 2.
  Dag dag(10);
  for (Vertex v = 0; v + 1 < 10; ++v) dag.add_edge(v, v + 1);
  RedBlueGame game(dag, 2);
  game.read(0);
  for (Vertex v = 1; v < 10; ++v) {
    game.compute(v);
    game.remove_red(v - 1);
  }
  game.write(9);
  EXPECT_TRUE(game.complete());
  EXPECT_EQ(game.peak_red(), 2);
  EXPECT_EQ(game.io_moves(), 2);
}

TEST(RedBlueGame, CompleteNeedsAllOutputsBlue) {
  Dag dag(3);  // two independent outputs fed by one input
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  RedBlueGame game(dag, 3);
  game.read(0);
  game.compute(1);
  game.write(1);
  EXPECT_FALSE(game.complete());
  game.compute(2);
  game.write(2);
  EXPECT_TRUE(game.complete());
}

// ------------------------------------------------ parallel game

TEST(ParallelGame, FanOutInOnePhase) {
  // One red input supports two simultaneous calculations — the move the
  // sequential game would block and the pink pebble unblocks.
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  ParallelRedBlueGame game(dag, 3);
  game.step(/*writes=*/{}, /*calcs=*/{}, /*reads=*/{0}, /*evict=*/{});
  game.step({}, {1, 2}, {}, {0});
  game.step({1, 2}, {}, {}, {1, 2});
  EXPECT_TRUE(game.complete());
  EXPECT_EQ(game.io_moves(), 3);
  EXPECT_EQ(game.phases(), 3);
}

TEST(ParallelGame, CalculationsUsePrePhaseSupports) {
  // v=2 depends on v=1; both cannot be calculated in one phase because
  // 1 is not red before the phase starts.
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  ParallelRedBlueGame game(dag, 3);
  game.step({}, {}, {0}, {});
  EXPECT_THROW(game.step({}, {1, 2}, {}, {}), Error);
}

TEST(ParallelGame, WritesSeePrePhaseReds) {
  Dag dag(2);
  dag.add_edge(0, 1);
  ParallelRedBlueGame game(dag, 2);
  // Cannot write 1 in the same phase that computes it.
  game.step({}, {}, {0}, {});
  EXPECT_THROW(game.step({1}, {1}, {}, {}), Error);
}

TEST(ParallelGame, RedLimitCheckedAtPhaseEnd) {
  Dag dag(4);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  ParallelRedBlueGame game(dag, 2);
  game.step({}, {}, {0, 1}, {});
  // Computing both children would end the phase with 4 red pebbles.
  EXPECT_THROW(game.step({}, {2, 3}, {}, {}), Error);
}

TEST(ParallelGame, EvictionsRestoreHeadroom) {
  Dag dag(4);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  ParallelRedBlueGame game(dag, 2);
  game.step({}, {}, {0}, {});
  game.step({}, {2}, {}, {0});
  game.step({2}, {}, {1}, {2});
  game.step({}, {3}, {}, {1});
  game.step({3}, {}, {}, {3});
  EXPECT_TRUE(game.complete());
  EXPECT_LE(game.peak_red(), 2);
}

TEST(ParallelGame, IoDivisionSizeCeils) {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  ParallelRedBlueGame game(dag, 2);
  game.step({}, {}, {0}, {});
  game.step({}, {1}, {}, {0});
  game.step({}, {2}, {}, {1});
  game.step({2}, {}, {}, {});
  EXPECT_TRUE(game.complete());
  EXPECT_EQ(game.io_moves(), 2);
  EXPECT_EQ(game.io_division_size(), 1);  // ⌈2/2⌉
}

TEST(Dag, InputsOutputsAndEdges) {
  const Dag dag = chain_dag();
  EXPECT_EQ(dag.inputs(), (std::vector<Vertex>{0, 1}));
  EXPECT_EQ(dag.outputs(), (std::vector<Vertex>{3}));
  EXPECT_EQ(dag.edge_count(), 3);
  EXPECT_TRUE(dag.valid(3));
  EXPECT_FALSE(dag.valid(4));
  EXPECT_FALSE(dag.valid(-1));
}

TEST(Dag, AddVertexGrows) {
  Dag dag;
  EXPECT_EQ(dag.size(), 0);
  const Vertex a = dag.add_vertex();
  const Vertex b = dag.add_vertex();
  dag.add_edge(a, b);
  EXPECT_EQ(dag.size(), 2);
  EXPECT_EQ(dag.preds(b).size(), 1u);
}

}  // namespace
}  // namespace lattice::pebble
