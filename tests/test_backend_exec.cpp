// Executor-layer tests: the BackendExec contract the engine relies on.
//
// The engine is backend-blind — all per-backend behavior (persistent
// pipeline state, boundary requirements, fault capability, the report
// fields only that backend knows) lives in the executors. These tests
// pin that contract down, with the WSA-E backend as the main subject:
// bit-exact with WSA and the golden reference on every supported gas,
// honest off-chip buffer accounting, and visible stalls when the
// external parts can't keep up.

#include <gtest/gtest.h>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"

namespace lattice::core {
namespace {

LatticeEngine::Config cfg(Backend b,
                          lgca::GasKind gas = lgca::GasKind::FHP_II) {
  LatticeEngine::Config c;
  c.extent = {32, 24};
  c.gas = gas;
  c.backend = b;
  c.pipeline_depth = 3;
  c.wsa_width = 2;
  c.spa_slice_width = 8;
  return c;
}

void seed(LatticeEngine& e, std::uint64_t s = 77) {
  lgca::fill_random(e.state(), e.gas_model(), 0.3, s, 0.15);
}

// ---- WSA-E backend matrix: every supported gas, against both the
// golden reference and the on-chip-buffer WSA it claims to extend ----

class WsaEGasTest : public ::testing::TestWithParam<lgca::GasKind> {};

INSTANTIATE_TEST_SUITE_P(AllGases, WsaEGasTest,
                         ::testing::Values(lgca::GasKind::HPP,
                                           lgca::GasKind::FHP_I,
                                           lgca::GasKind::FHP_II,
                                           lgca::GasKind::FHP_III),
                         [](const auto& info) {
                           switch (info.param) {
                             case lgca::GasKind::HPP: return "HPP";
                             case lgca::GasKind::FHP_I: return "FHP_I";
                             case lgca::GasKind::FHP_II: return "FHP_II";
                             case lgca::GasKind::FHP_III: return "FHP_III";
                           }
                           return "unknown";
                         });

TEST_P(WsaEGasTest, BitExactWithReferenceAndWsa) {
  LatticeEngine wsa_e(cfg(Backend::WsaE, GetParam()));
  LatticeEngine wsa(cfg(Backend::Wsa, GetParam()));
  seed(wsa_e);
  seed(wsa);
  wsa_e.advance(10);
  wsa.advance(10);
  EXPECT_TRUE(wsa_e.state() == wsa.state())
      << "moving the line buffer off chip must not change the physics";
  EXPECT_TRUE(wsa_e.verify_against_reference());
}

TEST(WsaEExec, RejectsPeriodicBoundaries) {
  LatticeEngine::Config c = cfg(Backend::WsaE);
  c.boundary = lgca::Boundary::Periodic;
  EXPECT_THROW(LatticeEngine{c}, Error);
}

// ---- persistent executor state ----

// The hardware executors keep their pipeline/machine across passes.
// Chopping a run into ragged chunks (tail chunks shorter than the
// pipeline depth, forcing the temporary-pipeline path between
// persistent full passes) must be invisible in the physics.
class PersistentExecTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(HardwareBackends, PersistentExecTest,
                         ::testing::Values(Backend::Wsa, Backend::Spa,
                                           Backend::WsaE),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::Wsa: return "Wsa";
                             case Backend::Spa: return "Spa";
                             default: return "WsaE";
                           }
                         });

TEST_P(PersistentExecTest, RaggedAdvancesMatchStraightRun) {
  LatticeEngine straight(cfg(GetParam()));
  LatticeEngine ragged(cfg(GetParam()));
  seed(straight);
  seed(ragged);
  straight.advance(17);
  // 1 + 5 + 2 + 6 + 3 = 17, exercising full passes, short tails, and
  // the rearm path between them.
  for (const int step : {1, 5, 2, 6, 3}) ragged.advance(step);
  EXPECT_EQ(ragged.generation(), 17);
  EXPECT_TRUE(ragged.state() == straight.state());
  EXPECT_TRUE(ragged.verify_against_reference());
}

TEST_P(PersistentExecTest, RestoreDoesNotLeakPipelineState) {
  // restore() rewinds the lattice but not the executor; the persistent
  // chain must fully rearm on the next pass, not replay stale ring
  // contents from the abandoned timeline.
  LatticeEngine straight(cfg(GetParam()));
  LatticeEngine resumed(cfg(GetParam()));
  seed(straight);
  seed(resumed);
  straight.advance(12);
  resumed.advance(6);
  const EngineCheckpoint ckpt = resumed.checkpoint();
  resumed.advance(6);
  resumed.restore(ckpt);
  resumed.advance(6);
  EXPECT_TRUE(resumed.state() == straight.state());
  EXPECT_TRUE(resumed.verify_against_reference());
}

TEST_P(PersistentExecTest, StatsKeepAccumulatingAcrossPasses) {
  LatticeEngine e(cfg(GetParam()));
  seed(e);
  e.advance(3);
  const PerformanceReport first = e.report();
  ASSERT_GT(first.ticks, 0);
  e.advance(3);
  const PerformanceReport second = e.report();
  // A persistent pipeline must not double-report its lifetime
  // counters: the second pass adds exactly one pass's worth.
  EXPECT_EQ(second.ticks, 2 * first.ticks);
  EXPECT_EQ(second.site_updates, 2 * first.site_updates);
  EXPECT_EQ(second.storage_sites, first.storage_sites);
}

// ---- WSA-E external buffer model ----

TEST(WsaEExec, SlowBufferPartsStallTheMachineButNotThePhysics) {
  LatticeEngine::Config slow = cfg(Backend::WsaE);
  // Single-bank parts with a 2-tick cycle: the two FIFO accesses per
  // tick serialize and the lockstep machine waits.
  slow.wsa_e_buffer = arch::MemoryConfig{/*banks=*/1, /*bank_busy_ticks=*/2};
  LatticeEngine stalled(slow);
  LatticeEngine fast(cfg(Backend::WsaE));
  seed(stalled);
  seed(fast);
  stalled.advance(9);
  fast.advance(9);

  EXPECT_TRUE(stalled.state() == fast.state())
      << "stalls cost time, never correctness";
  const PerformanceReport rs = stalled.report();
  const PerformanceReport rf = fast.report();
  EXPECT_GT(rs.ticks, rf.ticks);
  EXPECT_LT(rs.buffer_bandwidth_fraction, 1.0);
  EXPECT_DOUBLE_EQ(rf.buffer_bandwidth_fraction, 1.0);
  EXPECT_LT(rs.modeled_rate, rf.modeled_rate)
      << "the §5 full-bandwidth assumption must be visible when broken";
}

TEST(WsaEExec, MainMemoryBandwidthIsIndependentOfDepth) {
  LatticeEngine::Config shallow = cfg(Backend::WsaE);
  shallow.pipeline_depth = 1;
  LatticeEngine::Config deep = cfg(Backend::WsaE);
  deep.pipeline_depth = 6;
  LatticeEngine a(shallow);
  LatticeEngine b(deep);
  seed(a);
  seed(b);
  a.advance(6);
  b.advance(6);
  const PerformanceReport ra = a.report();
  const PerformanceReport rb = b.report();
  // §5: main memory touches only the chain ends — deepening the
  // pipeline scales the off-chip buffer bill, not the stream.
  EXPECT_DOUBLE_EQ(ra.bandwidth_bits_per_tick, rb.bandwidth_bits_per_tick);
  EXPECT_GT(rb.offchip_buffer_bits_per_tick, ra.offchip_buffer_bits_per_tick);
  EXPECT_GT(rb.offchip_buffer_sites, ra.offchip_buffer_sites);
  EXPECT_TRUE(a.verify_against_reference());
  EXPECT_TRUE(b.verify_against_reference());
}

// ---- executor capability checks ----

TEST(ExecCapabilities, SoftwareBackendsRejectFaultPlans) {
  for (const Backend b : {Backend::Reference, Backend::BitPlane}) {
    LatticeEngine::Config c = cfg(b);
    c.fault.buffer_flip_rate = 1e-6;
    EXPECT_THROW(LatticeEngine{c}, Error)
        << "software executors have no simulated buffers to corrupt";
  }
}

TEST(ExecCapabilities, WsaEAcceptsFaultPlans) {
  LatticeEngine::Config c = cfg(Backend::WsaE);
  c.fault.seed = 5;
  c.fault.buffer_flip_rate = 1e-5;
  LatticeEngine guarded(c);
  LatticeEngine clean(cfg(Backend::WsaE));
  seed(guarded);
  seed(clean);
  guarded.advance(9);
  clean.advance(9);
  EXPECT_TRUE(guarded.state() == clean.state());
  EXPECT_TRUE(guarded.verify_against_reference());
}

}  // namespace
}  // namespace lattice::core
