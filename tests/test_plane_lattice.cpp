// PlaneLattice — the bit-plane transpose of SiteLattice. Round-trip
// property tests over awkward widths (word-aligned, one-under/over,
// sub-word, single-column), the tail-bit and guard-word invariants of
// the shift halo, and the packed chirality hash against its scalar
// original, lane for lane.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "lattice/lgca/gas_model.hpp"
#include "lattice/lgca/plane_lattice.hpp"

namespace lattice::lgca {
namespace {

SiteLattice random_sites(Extent e, Boundary b, std::uint32_t seed) {
  // Raw random bytes: every site state 0..255, so the rest and obstacle
  // planes carry data too.
  SiteLattice lat(e, b);
  std::mt19937 rng(seed);
  for (std::size_t i = 0; i < lat.site_count(); ++i)
    lat[i] = static_cast<Site>(rng() & 0xff);
  return lat;
}

struct Shape {
  std::int64_t width;
  std::int64_t height;
};

class RoundTripTest
    : public ::testing::TestWithParam<std::tuple<Shape, Boundary>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTripTest,
    ::testing::Combine(::testing::Values(Shape{1, 1}, Shape{7, 5},
                                         Shape{63, 3}, Shape{64, 4},
                                         Shape{65, 2}, Shape{128, 3},
                                         Shape{130, 9}),
                       ::testing::Values(Boundary::Null, Boundary::Periodic)),
    [](const auto& info) {
      const Shape s = std::get<0>(info.param);
      const Boundary b = std::get<1>(info.param);
      return std::to_string(s.width) + "x" + std::to_string(s.height) +
             (b == Boundary::Null ? "Null" : "Periodic");
    });

TEST_P(RoundTripTest, PackUnpackIsIdentity) {
  const auto [shape, boundary] = GetParam();
  const SiteLattice original =
      random_sites({shape.width, shape.height}, boundary, 0xbeef);
  const PlaneLattice planes(original);
  EXPECT_EQ(planes.extent().width, shape.width);
  EXPECT_EQ(planes.boundary(), boundary);
  EXPECT_TRUE(planes.to_sites() == original);
  SiteLattice back({shape.width, shape.height}, boundary);
  planes.unpack(back);
  EXPECT_TRUE(back == original);
}

TEST_P(RoundTripTest, SingleSiteAccessorsAgreeWithBytes) {
  const auto [shape, boundary] = GetParam();
  const SiteLattice original =
      random_sites({shape.width, shape.height}, boundary, 0xcafe);
  const PlaneLattice planes(original);
  for (std::int64_t y = 0; y < shape.height; ++y) {
    for (std::int64_t x = 0; x < shape.width; ++x) {
      const Site want = original.at({x, y});
      ASSERT_EQ(planes.site({x, y}), want) << x << "," << y;
      for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
        ASSERT_EQ(planes.get({x, y}, p), ((want >> p) & 1) != 0);
      }
    }
  }
}

TEST_P(RoundTripTest, SetSiteMirrorsPack) {
  const auto [shape, boundary] = GetParam();
  const SiteLattice original =
      random_sites({shape.width, shape.height}, boundary, 0xf00d);
  PlaneLattice planes({shape.width, shape.height}, boundary);
  for (std::int64_t y = 0; y < shape.height; ++y)
    for (std::int64_t x = 0; x < shape.width; ++x)
      planes.set_site({x, y}, original.at({x, y}));
  EXPECT_TRUE(planes == PlaneLattice(original));
  EXPECT_TRUE(planes.to_sites() == original);
}

TEST_P(RoundTripTest, PackLeavesTailBitsZero) {
  const auto [shape, boundary] = GetParam();
  const PlaneLattice planes(
      random_sites({shape.width, shape.height}, boundary, 0xabcd));
  const std::int64_t last = planes.words_per_row() - 1;
  for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
    for (std::int64_t y = 0; y < shape.height; ++y) {
      ASSERT_EQ(planes.row(p, y)[last] & ~planes.tail_mask(), 0u)
          << "plane " << p << " row " << y;
    }
  }
}

TEST_P(RoundTripTest, HaloPreparationPreservesPayloadAndIsIdempotent) {
  const auto [shape, boundary] = GetParam();
  const SiteLattice original =
      random_sites({shape.width, shape.height}, boundary, 0x1234);
  PlaneLattice planes(original);
  planes.prepare_shift_halo();
  EXPECT_TRUE(planes.to_sites() == original);

  // Second fill must produce exactly the same words, including guards —
  // a stale tail bit leaking into the wrap computation would break this.
  std::vector<std::uint64_t> first;
  for (int p = 0; p < PlaneLattice::kPlanes; ++p)
    for (std::int64_t y = 0; y < shape.height; ++y) {
      const std::uint64_t* r = planes.row(p, y);
      first.insert(first.end(), r - 1, r + planes.words_per_row() + 1);
    }
  planes.prepare_shift_halo();
  std::size_t i = 0;
  for (int p = 0; p < PlaneLattice::kPlanes; ++p)
    for (std::int64_t y = 0; y < shape.height; ++y) {
      const std::uint64_t* r = planes.row(p, y);
      for (std::int64_t k = -1; k <= planes.words_per_row(); ++k)
        ASSERT_EQ(r[k], first[i++]) << "plane " << p << " row " << y;
    }
}

TEST_P(RoundTripTest, HaloEncodesBoundaryNeighbors) {
  const auto [shape, boundary] = GetParam();
  const SiteLattice original =
      random_sites({shape.width, shape.height}, boundary, 0x5678);
  PlaneLattice planes(original);
  planes.prepare_shift_halo();
  for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
    for (std::int64_t y = 0; y < shape.height; ++y) {
      const std::uint64_t* r = planes.row(p, y);
      // A right shift of the last word pulls in bit 0 of the right
      // guard: site x = width under Null, site x = 0 under Periodic.
      // A left shift of word 0 pulls in bit 63 of the left guard:
      // site x = -1 / x = width - 1 respectively.
      const bool right_in = boundary == Boundary::Periodic &&
                            ((original.at({0, y}) >> p) & 1) != 0;
      const bool left_in =
          boundary == Boundary::Periodic &&
          ((original.at({shape.width - 1, y}) >> p) & 1) != 0;
      ASSERT_EQ((r[planes.words_per_row()] & 1) != 0, right_in);
      ASSERT_EQ((r[-1] >> 63) != 0, left_in);
      // The bit one past the row's tail feeds the left-shift of the
      // last payload word (gathering from x = width): wrapped x = 0
      // under Periodic, zero under Null. It lives in the tail bits
      // when width % 64 != 0 and in the right guard otherwise.
      const std::int64_t w = shape.width % 64;
      const bool past_end =
          w != 0 ? ((r[planes.words_per_row() - 1] >> w) & 1) != 0
                 : (r[planes.words_per_row()] & 1) != 0;
      ASSERT_EQ(past_end, right_in) << "plane " << p << " row " << y;
    }
  }
}

TEST(PlaneLattice, PayloadRowsAreCachelineAligned) {
  // The SIMD spans use unaligned loads, so this is a layout guarantee
  // rather than a correctness requirement — but the documented cost
  // model assumes every 512-bit access stays inside one cacheline.
  for (const std::int64_t width : {1, 63, 64, 65, 130, 511, 640}) {
    PlaneLattice planes({width, 3}, Boundary::Null);
    EXPECT_EQ(planes.row_stride() % PlaneLattice::kRowPad, 0) << width;
    EXPECT_GE(planes.row_stride(),
              planes.words_per_row() + PlaneLattice::kRowPad + 1)
        << width;
    for (int p = 0; p < PlaneLattice::kPlanes; ++p) {
      for (std::int64_t y = 0; y < 3; ++y) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(planes.row(p, y)) % 64, 0u)
            << "width " << width << " plane " << p << " row " << y;
      }
    }
  }
}

TEST(PlaneLattice, EqualityIgnoresHaloState) {
  const SiteLattice sites = random_sites({65, 4}, Boundary::Periodic, 42);
  PlaneLattice a(sites);
  PlaneLattice b(sites);
  a.prepare_shift_halo();  // fills guards and tail bits in a only
  EXPECT_TRUE(a == b);
  b.set_site({64, 3}, static_cast<Site>(sites.at({64, 3}) ^ 1));
  EXPECT_FALSE(a == b);
}

TEST(PlaneLattice, PackReplacesPriorContents) {
  const SiteLattice first = random_sites({30, 6}, Boundary::Null, 1);
  const SiteLattice second = random_sites({30, 6}, Boundary::Null, 2);
  PlaneLattice planes(first);
  planes.prepare_shift_halo();
  planes.pack(second);
  EXPECT_TRUE(planes.to_sites() == second);
}

TEST(ChiralityMask, MatchesScalarHashLaneForLane) {
  for (const std::int64_t x0 : {std::int64_t{0}, std::int64_t{64},
                                std::int64_t{1 << 20}}) {
    for (const std::int64_t y : {std::int64_t{0}, std::int64_t{7},
                                 std::int64_t{511}}) {
      for (const std::int64_t t : {std::int64_t{0}, std::int64_t{1},
                                   std::int64_t{12345}}) {
        const std::uint64_t mask = GasModel::chirality_mask64(x0, y, t);
        for (int j = 0; j < 64; ++j) {
          ASSERT_EQ((mask >> j) & 1,
                    static_cast<std::uint64_t>(
                        GasModel::chirality(x0 + j, y, t)))
              << "x0 " << x0 << " y " << y << " t " << t << " lane " << j;
        }
      }
    }
  }
}

TEST(ChiralityMask, VariantsAreBalanced) {
  // Sanity on the hash: roughly half the lanes pick each variant.
  std::int64_t ones = 0;
  const std::int64_t words = 4096;
  for (std::int64_t i = 0; i < words; ++i)
    ones += std::popcount(GasModel::chirality_mask64(i * 64, i % 97, i % 13));
  const double frac =
      static_cast<double>(ones) / static_cast<double>(words * 64);
  EXPECT_GT(frac, 0.45);
  EXPECT_LT(frac, 0.55);
}

}  // namespace
}  // namespace lattice::lgca
