// ThreadPool: persistent workers behind two dispatch shapes — a task
// bag (any task count, workers steal indices) and barrier-capable lanes
// (exactly n concurrent executors). Both must cover the work exactly
// once, survive exceptions, and be reusable back-to-back.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "lattice/common/error.hpp"
#include "lattice/common/thread_pool.hpp"

namespace lattice::common {
namespace {

TEST(ThreadPool, ForEachTaskCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_task(257, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::int64_t sum = 0;
  pool.for_each_task(10, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
  // Lanes degenerate to the caller alone.
  int ran = 0;
  pool.run_lanes(1, [&](unsigned lane) {
    EXPECT_EQ(lane, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, TasksMayOutnumberWorkers) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  pool.for_each_task(1000, [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPool, LanesRunTrulyConcurrently) {
  // Every lane must pass the same barrier: if the pool serialized them,
  // this would deadlock (and the test would time out).
  ThreadPool pool(3);
  ASSERT_EQ(pool.max_lanes(), 4u);
  std::barrier<> sync(4);
  std::atomic<int> ran{0};
  std::atomic<unsigned> lane_mask{0};
  pool.run_lanes(4, [&](unsigned lane) {
    sync.arrive_and_wait();
    ran.fetch_add(1);
    lane_mask.fetch_or(1u << lane);
    sync.arrive_and_wait();
  });
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(lane_mask.load(), 0b1111u);
}

TEST(ThreadPool, RejectsMoreLanesThanCanRunConcurrently) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_lanes(4, [](unsigned) {}), Error);
}

TEST(ThreadPool, TaskExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each_task(64,
                                  [](std::int64_t i) {
                                    if (i == 40) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
  std::atomic<int> n{0};
  pool.for_each_task(8, [&](std::int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, ThrowingTaskCancelsUnclaimedRemainder) {
  // Task 0 (the first index claimed) throws; every other task sleeps.
  // Without cancellation all 2000 tasks would run (~seconds); with it,
  // each executor finishes at most the handful it claimed before the
  // cancel landed.
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.for_each_task(2000,
                         [&](std::int64_t i) {
                           if (i == 0) throw std::runtime_error("first");
                           executed.fetch_add(1, std::memory_order_relaxed);
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(1));
                         }),
      std::runtime_error);
  EXPECT_LT(executed.load(), 100) << "bag was not cancelled";
  // And the pool remains fully usable afterwards.
  std::atomic<int> n{0};
  pool.for_each_task(32, [&](std::int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, CallerTaskExceptionAlsoCancels) {
  // The submitting thread participates in the bag too; its exception
  // path must cancel just like a worker's.
  ThreadPool pool(0);  // caller is the only executor
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.for_each_task(64,
                                  [&](std::int64_t i) {
                                    executed.fetch_add(1);
                                    if (i == 2) {
                                      throw std::runtime_error("caller boom");
                                    }
                                  }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 3) << "inline path stops at the throw";

  ThreadPool pool2(1);
  // With a worker present the dispatch path runs; the caller claims
  // indices as well, and its throw must stop the drain.
  std::atomic<int> ran{0};
  EXPECT_THROW(pool2.for_each_task(5000,
                                   [&](std::int64_t i) {
                                     if (i == 0) {
                                       throw std::runtime_error("boom");
                                     }
                                     ran.fetch_add(1);
                                     std::this_thread::sleep_for(
                                         std::chrono::milliseconds(1));
                                   }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 100);
}

TEST(ThreadPool, LaneExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_lanes(3,
                              [](unsigned lane) {
                                if (lane == 2) {
                                  throw std::runtime_error("lane boom");
                                }
                              }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.for_each_task(17, [&](std::int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for(101, 10, [&](std::int64_t begin, std::int64_t end) {
    ASSERT_LE(begin, end);
    for (std::int64_t i = begin; i < end; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHonorsGrainFloor) {
  // n below the grain must run as one inline chunk: exactly one call,
  // covering the whole range, on the calling thread.
  ThreadPool pool(3);
  int calls = 0;
  std::int64_t seen_begin = -1, seen_end = -1;
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(64, 2048, [&](std::int64_t begin, std::int64_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 0);
  EXPECT_EQ(seen_end, 64);
}

TEST(ThreadPool, ParallelForEmptyRangeAndZeroGrain) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 16, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
  // grain <= 0: one chunk per executor, still exactly covering [0, n).
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10, 0, [&](std::int64_t begin, std::int64_t end) {
    sum.fetch_add(end - begin);
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, SharedPoolSupportsEightLanes) {
  // The SPA bench runs 8 wavefront lanes on the shared pool; the pool
  // guarantees that many regardless of the host's core count.
  EXPECT_GE(ThreadPool::shared().max_lanes(), 8u);
  std::atomic<int> ran{0};
  ThreadPool::shared().run_lanes(8, [&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace lattice::common
