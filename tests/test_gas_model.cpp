#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <tuple>

#include "lattice/lgca/gas_model.hpp"

namespace lattice::lgca {
namespace {

class GasModelTest : public ::testing::TestWithParam<GasKind> {
 protected:
  const GasModel& model() const { return GasModel::get(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(AllModels, GasModelTest,
                         ::testing::Values(GasKind::HPP, GasKind::FHP_I,
                                           GasKind::FHP_II, GasKind::FHP_III),
                         [](const auto& info) {
                           switch (info.param) {
                             case GasKind::HPP: return "HPP";
                             case GasKind::FHP_I: return "FHP_I";
                             case GasKind::FHP_II: return "FHP_II";
                             case GasKind::FHP_III: return "FHP_III";
                           }
                           return "unknown";
                         });

// The central physical requirement (§2): collisions conserve particle
// number and momentum. Checked exhaustively over all 256 byte states
// and both chirality variants.
TEST_P(GasModelTest, MassConservedExhaustively) {
  const GasModel& m = model();
  for (unsigned in = 0; in < 256; ++in) {
    const Site s = static_cast<Site>(in);
    for (int v = 0; v < 2; ++v) {
      EXPECT_EQ(m.mass(m.collide(s, v)), m.mass(s))
          << "state " << in << " variant " << v;
    }
  }
}

TEST_P(GasModelTest, MomentumConservedForFreeSites) {
  const GasModel& m = model();
  for (unsigned in = 0; in < 256; ++in) {
    const Site s = static_cast<Site>(in);
    if (is_obstacle(s)) continue;
    for (int v = 0; v < 2; ++v) {
      EXPECT_EQ(m.momentum(m.collide(s, v)), m.momentum(s))
          << "state " << in << " variant " << v;
    }
  }
}

TEST_P(GasModelTest, ObstacleSitesReverseMomentum) {
  const GasModel& m = model();
  for (unsigned in = 0; in < 256; ++in) {
    const Site s = static_cast<Site>(in);
    if (!is_obstacle(s)) continue;
    for (int v = 0; v < 2; ++v) {
      const Site out = m.collide(s, v);
      EXPECT_TRUE(is_obstacle(out)) << "obstacle flag lost, state " << in;
      EXPECT_EQ(m.momentum(out), -m.momentum(s)) << "state " << in;
      EXPECT_EQ(m.mass(out), m.mass(s)) << "state " << in;
    }
  }
}

TEST_P(GasModelTest, EmptyAndFullStatesAreFixedPoints) {
  const GasModel& m = model();
  Site full = 0;
  for (int d = 0; d < m.channels(); ++d) full |= channel_bit(d);
  for (int v = 0; v < 2; ++v) {
    EXPECT_EQ(m.collide(Site{0}, v), Site{0});
    EXPECT_EQ(m.collide(full, v), full);
  }
}

TEST_P(GasModelTest, SingleParticlePassesThrough) {
  // A lone particle cannot collide with anything.
  const GasModel& m = model();
  for (int d = 0; d < m.channels(); ++d) {
    for (int v = 0; v < 2; ++v) {
      EXPECT_EQ(m.collide(channel_bit(d), v), channel_bit(d));
    }
  }
}

TEST_P(GasModelTest, ReflectIsInvolution) {
  const GasModel& m = model();
  for (unsigned in = 0; in < 256; ++in) {
    const Site s = static_cast<Site>(in);
    EXPECT_EQ(m.reflect(m.reflect(s)), s);
  }
}

TEST(HppModel, HeadOnPairsExchangeAxes) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  const Site ew = static_cast<Site>(channel_bit(0) | channel_bit(2));
  const Site ns = static_cast<Site>(channel_bit(1) | channel_bit(3));
  for (int v = 0; v < 2; ++v) {
    EXPECT_EQ(m.collide(ew, v), ns);
    EXPECT_EQ(m.collide(ns, v), ew);
  }
}

TEST(HppModel, NonHeadOnPairsPassThrough) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  const Site en = static_cast<Site>(channel_bit(0) | channel_bit(1));
  EXPECT_EQ(m.collide(en, 0), en);
  const Site three =
      static_cast<Site>(channel_bit(0) | channel_bit(1) | channel_bit(2));
  EXPECT_EQ(m.collide(three, 0), three);
}

TEST(FhpModel, HeadOnPairRotatesByChirality) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  const Site pair03 = static_cast<Site>(channel_bit(0) | channel_bit(3));
  const Site pair14 = static_cast<Site>(channel_bit(1) | channel_bit(4));
  const Site pair25 = static_cast<Site>(channel_bit(2) | channel_bit(5));
  EXPECT_EQ(m.collide(pair03, 0), pair14);  // +60°
  EXPECT_EQ(m.collide(pair03, 1), pair25);  // -60°
  EXPECT_NE(m.collide(pair03, 0), m.collide(pair03, 1));
}

TEST(FhpModel, TripleCollisionSwapsSublattices) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  const Site tri0 =
      static_cast<Site>(channel_bit(0) | channel_bit(2) | channel_bit(4));
  const Site tri1 =
      static_cast<Site>(channel_bit(1) | channel_bit(3) | channel_bit(5));
  for (int v = 0; v < 2; ++v) {
    EXPECT_EQ(m.collide(tri0, v), tri1);
    EXPECT_EQ(m.collide(tri1, v), tri0);
  }
}

TEST(FhpModel, FhpOneIgnoresRestBit) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  EXPECT_FALSE(m.has_rest_particle());
  // Rest bit is inert: passes through every collision unchanged.
  const Site pair_rest =
      static_cast<Site>(channel_bit(0) | channel_bit(3) | kRestBit);
  const Site out = m.collide(pair_rest, 0);
  EXPECT_TRUE(has_rest(out));
}

TEST(FhpTwoModel, RestAnnihilationAndCreationAreInverse) {
  const GasModel& m = GasModel::get(GasKind::FHP_II);
  ASSERT_TRUE(m.has_rest_particle());
  for (int j = 0; j < 6; ++j) {
    const Site rest_plus = static_cast<Site>(kRestBit | channel_bit(j));
    const Site out = m.collide(rest_plus, 0);
    // rest + p_j → p_{j-1} + p_{j+1}
    const Site expect = static_cast<Site>(
        channel_bit(rotate_dir(Topology::Hex6, j, -1)) |
        channel_bit(rotate_dir(Topology::Hex6, j, +1)));
    EXPECT_EQ(out, expect) << "j=" << j;
    // and back again
    EXPECT_EQ(m.collide(out, 0), rest_plus) << "j=" << j;
  }
}

TEST(FhpTwoModel, HeadOnWithRestSpectatorStillRotates) {
  const GasModel& m = GasModel::get(GasKind::FHP_II);
  const Site in = static_cast<Site>(channel_bit(0) | channel_bit(3) | kRestBit);
  const Site out0 = m.collide(in, 0);
  EXPECT_TRUE(has_rest(out0));
  EXPECT_EQ(static_cast<Site>(out0 & ~kRestBit),
            static_cast<Site>(channel_bit(1) | channel_bit(4)));
}

TEST(FhpTwoModel, CollisionCountExceedsFhpOne) {
  // FHP-II is strictly "more collisional" than FHP-I: more states change
  // under collision (this drives its lower viscosity).
  const GasModel& m1 = GasModel::get(GasKind::FHP_I);
  const GasModel& m2 = GasModel::get(GasKind::FHP_II);
  int changed1 = 0;
  int changed2 = 0;
  for (unsigned in = 0; in < 128; ++in) {  // particle states only
    const Site s = static_cast<Site>(in);
    changed1 += (m1.collide(s, 0) != s);
    changed2 += (m2.collide(s, 0) != s);
  }
  EXPECT_GT(changed2, changed1);
}

TEST_P(GasModelTest, CollisionIsABijectionOnFreeStates) {
  // Semi-detailed balance: the collision map must permute the particle
  // states (uniform measure preserved) — required for the Fermi-Dirac
  // equilibria of lattice gases. Holds for every model and variant.
  const GasModel& m = model();
  for (int v = 0; v < 2; ++v) {
    std::array<int, 256> hits{};
    for (unsigned in = 0; in < 128; ++in) {  // particle states, no obstacle
      ++hits[m.collide(static_cast<Site>(in), v)];
    }
    for (unsigned out = 0; out < 128; ++out) {
      EXPECT_EQ(hits[out], 1) << "state " << out << " variant " << v;
    }
  }
}

TEST_P(GasModelTest, ChiralityVariantsAreMutualInverses) {
  // collide(·,1) must invert collide(·,0) on every non-obstacle state:
  // this is what makes the evolution exactly reversible (gas_unstep).
  const GasModel& m = model();
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    EXPECT_EQ(m.collide(m.collide(s, 0), 1), s) << "state " << in;
    EXPECT_EQ(m.collide(m.collide(s, 1), 0), s) << "state " << in;
  }
}

TEST(FhpThreeModel, StateUnchangedIffItsClassIsASingleton) {
  // Collision-saturated: a state passes through unchanged exactly when
  // no other state shares its (mass, momentum) class.
  const GasModel& m = GasModel::get(GasKind::FHP_III);
  std::map<std::tuple<int, int, int>, int> class_size;
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    const Momentum p = m.momentum(s);
    ++class_size[{m.mass(s), p.px, p.py}];
  }
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    const Momentum p = m.momentum(s);
    const bool singleton = class_size[{m.mass(s), p.px, p.py}] == 1;
    for (int v = 0; v < 2; ++v) {
      EXPECT_EQ(m.collide(s, v) == s, singleton)
          << "state " << in << " variant " << v;
    }
  }
}

TEST(FhpThreeModel, StrictlyMoreCollisionalThanFhpTwo) {
  const GasModel& m2 = GasModel::get(GasKind::FHP_II);
  const GasModel& m3 = GasModel::get(GasKind::FHP_III);
  int changed2 = 0;
  int changed3 = 0;
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    changed2 += (m2.collide(s, 0) != s);
    changed3 += (m3.collide(s, 0) != s);
  }
  EXPECT_GT(changed3, changed2);
}

TEST(FhpThreeModel, HeadOnPairsCycleLikeFhpOne) {
  // The class construction reproduces the classic head-on rotation.
  const GasModel& m = GasModel::get(GasKind::FHP_III);
  const Site pair03 = static_cast<Site>(channel_bit(0) | channel_bit(3));
  const Site pair14 = static_cast<Site>(channel_bit(1) | channel_bit(4));
  const Site pair25 = static_cast<Site>(channel_bit(2) | channel_bit(5));
  EXPECT_EQ(m.collide(pair03, 0), pair14);
  EXPECT_EQ(m.collide(pair14, 0), pair25);
  EXPECT_EQ(m.collide(pair25, 0), pair03);
  EXPECT_EQ(m.collide(pair03, 1), pair25);
}

TEST(FhpThreeModel, VariantsAreMutualInverses) {
  const GasModel& m = GasModel::get(GasKind::FHP_III);
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    EXPECT_EQ(m.collide(m.collide(s, 0), 1), s) << "state " << in;
  }
}

namespace {
/// Rotate every moving particle of `s` by `steps` direction increments.
Site rotate_site(const GasModel& m, Site s, int steps) {
  Site out = static_cast<Site>(s & ~((1u << m.channels()) - 1));
  for (int d = 0; d < m.channels(); ++d) {
    if (has_channel(s, d)) {
      out |= channel_bit(rotate_dir(m.topology(), d, steps));
    }
  }
  return out;
}
}  // namespace

TEST_P(GasModelTest, CollisionCommutesWithLatticeRotation) {
  // The lattice's point symmetry (90° square / 60° hex) must be a
  // symmetry of the dynamics: rotate-then-collide = collide-then-rotate
  // (with the same chirality variant). FHP-III's class-cycling breaks
  // exact equivariance of the *choice* within a class, so it is tested
  // only up to class membership below.
  const GasModel& m = model();
  if (m.kind() == GasKind::FHP_III) GTEST_SKIP();
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    for (int v = 0; v < 2; ++v) {
      EXPECT_EQ(m.collide(rotate_site(m, s, 1), v),
                rotate_site(m, m.collide(s, v), 1))
          << "state " << in << " variant " << v;
    }
  }
}

TEST(FhpThreeModel, RotationPreservesCollisionClasses) {
  // Weaker equivariance for the saturated model: rotating the input
  // rotates the output's (mass, momentum) class — physics is still
  // rotation-invariant even though the representative choice is not.
  const GasModel& m = GasModel::get(GasKind::FHP_III);
  for (unsigned in = 0; in < 128; ++in) {
    const Site s = static_cast<Site>(in);
    const Site a = m.collide(rotate_site(m, s, 1), 0);
    const Site b = rotate_site(m, m.collide(s, 0), 1);
    EXPECT_EQ(m.mass(a), m.mass(b));
    EXPECT_EQ(m.momentum(a), m.momentum(b));
  }
}

TEST(Chirality, IsDeterministicAndBalanced) {
  int ones = 0;
  constexpr int n = 4096;
  for (int i = 0; i < n; ++i) {
    const int c = GasModel::chirality(i % 64, i / 64, i % 7);
    EXPECT_EQ(c, GasModel::chirality(i % 64, i / 64, i % 7));
    ones += c;
  }
  EXPECT_GT(ones, n / 3);
  EXPECT_LT(ones, 2 * n / 3);
}

TEST(GasKindName, AllNamed) {
  EXPECT_EQ(gas_kind_name(GasKind::HPP), "HPP");
  EXPECT_EQ(gas_kind_name(GasKind::FHP_I), "FHP-I");
  EXPECT_EQ(gas_kind_name(GasKind::FHP_II), "FHP-II");
}

}  // namespace
}  // namespace lattice::lgca
