// Exact minimum-I/O pebbling on small graphs: ground truth between the
// analytic lower bounds and the constructive schedules.

#include <gtest/gtest.h>

#include "lattice/pebble/bounds.hpp"
#include "lattice/pebble/comp_graph.hpp"
#include "lattice/pebble/optimal.hpp"
#include "lattice/pebble/schedules.hpp"

namespace lattice::pebble {
namespace {

TEST(OptimalPebbling, ChainNeedsOneReadOneWrite) {
  Dag dag(6);
  for (Vertex v = 0; v + 1 < 6; ++v) dag.add_edge(v, v + 1);
  const OptimalResult r = min_io_pebbling(dag, 2);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.min_io, 2);
}

TEST(OptimalPebbling, InfeasibleWhenInDegreeExceedsStorage) {
  // Computing a join vertex needs both predecessors red *plus* room for
  // the result: S = 2 cannot pebble in-degree-2 graphs.
  Dag dag(3);
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  EXPECT_FALSE(min_io_pebbling(dag, 2).feasible);
  const OptimalResult r = min_io_pebbling(dag, 3);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.min_io, 3);  // two reads + one write
}

TEST(OptimalPebbling, EveryUsedInputIsReadAndOutputWritten) {
  // Two independent chains: 2 reads + 2 writes.
  Dag dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(2, 3);
  const OptimalResult r = min_io_pebbling(dag, 2);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.min_io, 4);
}

TEST(OptimalPebbling, TinyLatticeOneStepMatchesSweep) {
  // C_1 with n = 3, T = 1: the sweep's 2nT = 6 I/O is already optimal.
  const LatticeBox box{{3}};
  const Dag dag = computation_graph(box, 1);
  const OptimalResult opt = min_io_pebbling(dag, 6);
  ASSERT_TRUE(opt.feasible);
  EXPECT_EQ(opt.min_io, 6);
  const auto sweep = run_sweep_1d(3, 1, 6);
  EXPECT_EQ(sweep.io_moves, opt.min_io);
}

TEST(OptimalPebbling, DeepGraphBeatsTheSweepWhenStorageFits) {
  // C_1 with n = 3, T = 3 (12 vertices): with S = 6 the whole working
  // set fits, so the optimum is 3 reads + 3 writes = 6, while the sweep
  // pays 2nT = 18. Pipelining/tiling wins exactly as §3 argues.
  const LatticeBox box{{3}};
  const Dag dag = computation_graph(box, 3);
  const OptimalResult opt = min_io_pebbling(dag, 6);
  ASSERT_TRUE(opt.feasible);
  EXPECT_EQ(opt.min_io, 6);
  const auto sweep = run_sweep_1d(3, 3, 6);
  EXPECT_EQ(sweep.io_moves, 18);
}

TEST(OptimalPebbling, TightStorageForcesExtraIo) {
  // Same graph, minimal storage: spilling becomes unavoidable, so the
  // optimum strictly exceeds inputs+outputs.
  const LatticeBox box{{3}};
  const Dag dag = computation_graph(box, 3);
  const OptimalResult tight = min_io_pebbling(dag, 4);
  const OptimalResult roomy = min_io_pebbling(dag, 8);
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(roomy.feasible);
  EXPECT_GT(tight.min_io, roomy.min_io);
  EXPECT_EQ(roomy.min_io, 6);
}

TEST(OptimalPebbling, RespectsAnalyticLowerBound) {
  const LatticeBox box{{4}};
  const Dag dag = computation_graph(box, 2);
  for (const std::int64_t s : {std::int64_t{4}, std::int64_t{6},
                               std::int64_t{12}}) {
    const OptimalResult opt = min_io_pebbling(dag, s);
    ASSERT_TRUE(opt.feasible) << "S=" << s;
    EXPECT_GE(opt.min_io,
              static_cast<std::int64_t>(min_io_lower_bound(
                  1, static_cast<double>(s), static_cast<double>(dag.size()))))
        << "S=" << s;
  }
}

TEST(OptimalPebbling, MonotoneNonIncreasingInStorage) {
  const LatticeBox box{{2, 2}};
  const Dag dag = computation_graph(box, 1);  // 8 vertices
  std::int64_t prev = 1 << 20;
  for (std::int64_t s = 4; s <= 8; ++s) {
    const OptimalResult r = min_io_pebbling(dag, s);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.min_io, prev) << "S=" << s;
    prev = r.min_io;
  }
}

TEST(OptimalPebbling, RejectsOversizedGraphs) {
  Dag dag(20);
  EXPECT_THROW(min_io_pebbling(dag, 4), Error);
}

TEST(OptimalPebbling, SingleVertexGraph) {
  // One isolated vertex is both input and output: starts blue, done —
  // zero I/O.
  Dag dag(1);
  const OptimalResult r = min_io_pebbling(dag, 1);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.min_io, 0);
}

}  // namespace
}  // namespace lattice::pebble
