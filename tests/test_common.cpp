#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "lattice/common/grid.hpp"
#include "lattice/common/rng.hpp"

namespace lattice {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values from the published SplitMix64 algorithm.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(g.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(g.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Pcg32, DeterministicForFixedSeed) {
  Pcg32 a(42);
  Pcg32 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 g(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(g.next_below(bound), bound);
    }
  }
}

TEST(Pcg32, NextBelowCoversAllResidues) {
  Pcg32 g(11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(g.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 g(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, NextDoubleIsRoughlyUniform) {
  Pcg32 g(5);
  double sum = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += g.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Pcg32, BernoulliExtremes) {
  Pcg32 g(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(g.next_bool(0.0));
    EXPECT_TRUE(g.next_bool(1.0));
  }
}

TEST(DeriveSeed, IndependentPerIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) seeds.insert(derive_seed(123, i));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

TEST(Extent, ContainsAndArea) {
  constexpr Extent e{4, 3};
  EXPECT_EQ(e.area(), 12);
  EXPECT_TRUE(e.contains({0, 0}));
  EXPECT_TRUE(e.contains({3, 2}));
  EXPECT_FALSE(e.contains({4, 0}));
  EXPECT_FALSE(e.contains({0, 3}));
  EXPECT_FALSE(e.contains({-1, 0}));
}

TEST(LinearIndex, RoundTripsWithCoordOf) {
  constexpr Extent e{7, 5};
  for (std::size_t i = 0; i < 35; ++i) {
    EXPECT_EQ(linear_index(e, coord_of(e, i)), i);
  }
}

TEST(Wrap, HandlesNegativesAndMultiples) {
  EXPECT_EQ(wrap(-1, 8), 7);
  EXPECT_EQ(wrap(-8, 8), 0);
  EXPECT_EQ(wrap(-9, 8), 7);
  EXPECT_EQ(wrap(17, 8), 1);
  EXPECT_EQ(wrap(0, 8), 0);
}

TEST(Grid, FillAndEquality) {
  Grid<int> a({3, 2}, 5);
  Grid<int> b({3, 2}, 5);
  EXPECT_EQ(a, b);
  a.at({2, 1}) = 9;
  EXPECT_NE(a, b);
  a.fill(5);
  EXPECT_EQ(a, b);
}

TEST(Grid, RowMajorLayout) {
  Grid<int> g({4, 2});
  int v = 0;
  for (auto& x : g) x = v++;
  EXPECT_EQ(g.at({0, 0}), 0);
  EXPECT_EQ(g.at({3, 0}), 3);
  EXPECT_EQ(g.at({0, 1}), 4);
  EXPECT_EQ(g.at({3, 1}), 7);
}

TEST(Grid, RejectsNegativeExtent) {
  EXPECT_THROW(Grid<int>({-1, 2}), Error);
}

}  // namespace
}  // namespace lattice
