// WSA pipeline simulator: bit-exact equivalence with the golden
// reference across rules, widths, depths and lattice shapes, plus the
// cycle/traffic accounting the paper's throughput model rests on.

#include <gtest/gtest.h>

#include "lattice/arch/wsa.hpp"
#include "lattice/common/rng.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::arch {
namespace {

using lgca::Boundary;
using lgca::GasKind;
using lgca::GasModel;
using lgca::GasRule;
using lgca::SiteLattice;

SiteLattice random_gas(Extent e, GasKind kind, std::uint64_t seed) {
  SiteLattice lat(e, Boundary::Null);
  lgca::fill_random(lat, GasModel::get(kind), 0.35, seed, 0.2);
  return lat;
}

SiteLattice golden(const SiteLattice& in, const lgca::Rule& rule, int gens,
                   std::int64_t t0 = 0) {
  SiteLattice lat = in;
  lgca::reference_run(lat, rule, gens, t0);
  return lat;
}

// ---- equivalence sweeps (the correctness core of E9) ----

struct PipeCase {
  std::int64_t w;
  std::int64_t h;
  int depth;
  int width;  // P
};

class WsaEquivalenceTest : public ::testing::TestWithParam<PipeCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, WsaEquivalenceTest,
    ::testing::Values(PipeCase{8, 8, 1, 1}, PipeCase{8, 8, 1, 2},
                      PipeCase{8, 8, 3, 1}, PipeCase{16, 12, 2, 4},
                      PipeCase{16, 12, 4, 3}, PipeCase{13, 9, 2, 5},
                      PipeCase{24, 16, 5, 4}, PipeCase{7, 21, 3, 7},
                      PipeCase{32, 8, 2, 1}, PipeCase{9, 9, 6, 2}),
    [](const auto& info) {
      const PipeCase& c = info.param;
      return "w" + std::to_string(c.w) + "h" + std::to_string(c.h) + "d" +
             std::to_string(c.depth) + "p" + std::to_string(c.width);
    });

TEST_P(WsaEquivalenceTest, MatchesGoldenForFhpGas) {
  const PipeCase c = GetParam();
  const GasRule rule(GasKind::FHP_II);
  const SiteLattice in = random_gas({c.w, c.h}, GasKind::FHP_II, 42);

  WsaPipeline pipe({c.w, c.h}, rule, c.depth, c.width);
  const SiteLattice got = pipe.run(in);
  const SiteLattice want = golden(in, rule, c.depth);
  EXPECT_TRUE(got == want);
}

TEST_P(WsaEquivalenceTest, MatchesGoldenForLife) {
  const PipeCase c = GetParam();
  const lgca::LifeRule rule;
  SiteLattice in({c.w, c.h}, Boundary::Null);
  Pcg32 rng(7);
  for (std::size_t i = 0; i < in.site_count(); ++i)
    in[i] = static_cast<lgca::Site>(rng.next() & 1);

  WsaPipeline pipe({c.w, c.h}, rule, c.depth, c.width);
  EXPECT_TRUE(pipe.run(in) == golden(in, rule, c.depth));
}

TEST(WsaPipeline, MatchesGoldenForHppWithObstacles) {
  const GasRule rule(GasKind::HPP);
  SiteLattice in({20, 14}, Boundary::Null);
  lgca::add_obstacle_disk(in, 10, 7, 3);
  lgca::fill_random(in, GasModel::get(GasKind::HPP), 0.3, 5);

  WsaPipeline pipe({20, 14}, rule, 4, 2);
  EXPECT_TRUE(pipe.run(in) == golden(in, rule, 4));
}

TEST(WsaPipeline, MatchesGoldenForMedianFilter) {
  const lgca::MedianFilterRule rule;
  SiteLattice in({15, 11}, Boundary::Null);
  Pcg32 rng(9);
  for (std::size_t i = 0; i < in.site_count(); ++i)
    in[i] = static_cast<lgca::Site>(rng.next_below(256));

  WsaPipeline pipe({15, 11}, rule, 2, 3);
  EXPECT_TRUE(pipe.run(in) == golden(in, rule, 2));
}

TEST(WsaPipeline, MultiplePassesChainCorrectly) {
  // Two passes of depth 3 equal six golden generations: the time origin
  // must advance between passes so chirality draws line up.
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({12, 12}, GasKind::FHP_I, 11);

  WsaPipeline pipe({12, 12}, rule, 3, 2);
  const SiteLattice got = pipe.run_passes(in, 2);
  EXPECT_TRUE(got == golden(in, rule, 6));
}

TEST(WsaPipeline, NonZeroTimeOriginMatchesGolden) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({10, 10}, GasKind::FHP_I, 13);
  WsaPipeline pipe({10, 10}, rule, 2, 1, /*t0=*/17);
  EXPECT_TRUE(pipe.run(in) == golden(in, rule, 2, /*t0=*/17));
}

// ---- accounting ----

TEST(WsaPipeline, ReadsAndWritesExactlyTheLattice) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({16, 16}, GasKind::FHP_I, 3);
  WsaPipeline pipe({16, 16}, rule, 3, 2);
  (void)pipe.run(in);
  EXPECT_EQ(pipe.stats().mem_sites_read, 16 * 16);
  EXPECT_EQ(pipe.stats().mem_sites_written, 16 * 16);
  EXPECT_EQ(pipe.stats().site_updates, 16 * 16 * 3);
}

TEST(WsaPipeline, MemoryTrafficIndependentOfDepth) {
  // The whole point of pipelining (§3): deeper chains reuse the stream.
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({16, 16}, GasKind::FHP_I, 3);
  WsaPipeline shallow({16, 16}, rule, 1, 2);
  WsaPipeline deep({16, 16}, rule, 8, 2);
  (void)shallow.run(in);
  (void)deep.run(in);
  EXPECT_EQ(shallow.stats().mem_sites_read, deep.stats().mem_sites_read);
  EXPECT_EQ(shallow.stats().mem_sites_written,
            deep.stats().mem_sites_written);
  EXPECT_EQ(deep.stats().site_updates, 8 * shallow.stats().site_updates);
}

TEST(WsaPipeline, InterchipTrafficCountsOnlyInteriorLinks) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({8, 8}, GasKind::FHP_I, 3);
  WsaPipeline pipe({8, 8}, rule, 4, 1);
  (void)pipe.run(in);
  // 3 interior links, one site per tick each.
  EXPECT_EQ(pipe.stats().interchip_sites, 3 * pipe.stats().ticks);
}

TEST(WsaPipeline, WiderStagesFinishInFewerTicks) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({32, 32}, GasKind::FHP_I, 3);
  WsaPipeline narrow({32, 32}, rule, 1, 1);
  WsaPipeline wide({32, 32}, rule, 1, 4);
  (void)narrow.run(in);
  (void)wide.run(in);
  EXPECT_GT(narrow.stats().ticks, 3 * wide.stats().ticks);
}

TEST(WsaPipeline, UpdatesPerTickApproachesPTimesK) {
  // Steady-state throughput R = F·P·k (§6.1); finite lattices pay a
  // drain latency so the measured rate is slightly below.
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({64, 64}, GasKind::FHP_I, 3);
  WsaPipeline pipe({64, 64}, rule, 3, 2);
  (void)pipe.run(in);
  const double upt = pipe.stats().updates_per_tick();
  EXPECT_GT(upt, 0.85 * 3 * 2);
  EXPECT_LE(upt, 3.0 * 2.0);
}

TEST(WsaPipeline, BufferSitesAreTwoLinesPerStage) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({30, 10}, GasKind::FHP_I, 3);
  WsaPipeline pipe({30, 10}, rule, 2, 1);
  (void)pipe.run(in);
  // Each stage buffers ~2W sites — the paper's (2L+3)-ish window; our
  // implementation rounds up slightly for batching slack.
  EXPECT_GE(pipe.stats().buffer_sites, 2 * (2 * 30 + 3));
  EXPECT_LE(pipe.stats().buffer_sites, 2 * (2 * 30 + 40));
}

TEST(WsaPipeline, RejectsPeriodicBoundaries) {
  const GasRule rule(GasKind::HPP);
  SiteLattice in({8, 8}, Boundary::Periodic);
  WsaPipeline pipe({8, 8}, rule, 1, 1);
  EXPECT_THROW((void)pipe.run(in), Error);
}

TEST(WsaPipeline, RejectsBadShapes) {
  const GasRule rule(GasKind::HPP);
  EXPECT_THROW(WsaPipeline({8, 8}, rule, 0, 1), Error);
  EXPECT_THROW(WsaPipeline({8, 8}, rule, 1, 0), Error);
  SiteLattice wrong({9, 8}, Boundary::Null);
  WsaPipeline pipe({8, 8}, rule, 1, 1);
  EXPECT_THROW((void)pipe.run(wrong), Error);
}

TEST(WsaPipeline, ModeledRateUsesClock) {
  const GasRule rule(GasKind::FHP_I);
  const SiteLattice in = random_gas({32, 32}, GasKind::FHP_I, 3);
  WsaPipeline pipe({32, 32}, rule, 2, 2);
  (void)pipe.run(in);
  const Technology t = Technology::paper1987();
  EXPECT_DOUBLE_EQ(pipe.modeled_rate(t),
                   pipe.stats().updates_per_tick() * 10e6);
}

}  // namespace
}  // namespace lattice::arch
