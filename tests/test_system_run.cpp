// Whole-run timing model (§8): bandwidth-bound vs compute-bound
// regimes, double-buffering, and consistency with the prototype model.

#include <gtest/gtest.h>

#include "lattice/arch/prototype.hpp"
#include "lattice/arch/system_run.hpp"

namespace lattice::arch {
namespace {

SystemRunConfig base() {
  SystemRunConfig cfg;
  cfg.pe_per_chip = 2;
  cfg.depth = 1;
  cfg.lattice_len = 512;
  cfg.generations = 512;
  cfg.host_bytes_per_sec = 2e6;
  return cfg;
}

TEST(SystemRun, WorkstationHostIsTransferBound) {
  const SystemRunReport r = model_system_run(base());
  EXPECT_GT(r.transfer_seconds, r.compute_seconds);
  // Wall time equals transfer time when double-buffered.
  EXPECT_DOUBLE_EQ(r.wall_seconds, r.transfer_seconds);
  // The §8 number: 20M-capable chip sustains ~1M updates/s.
  EXPECT_NEAR(r.achieved_rate, 1e6, 1e4);
  EXPECT_NEAR(r.utilization, 0.05, 0.01);
}

TEST(SystemRun, FastHostBecomesComputeBound) {
  SystemRunConfig cfg = base();
  cfg.host_bytes_per_sec = 100e6;
  const SystemRunReport r = model_system_run(cfg);
  EXPECT_GT(r.compute_seconds, r.transfer_seconds);
  EXPECT_NEAR(r.achieved_rate, r.peak_rate, 1e-3 * r.peak_rate);
}

TEST(SystemRun, MatchesPrototypeModelInTheBandwidthLimit) {
  // The closed-form PrototypeModel and the pass-based run model must
  // agree where their assumptions coincide (depth 1, double buffered).
  const SystemRunConfig cfg = base();
  const SystemRunReport r = model_system_run(cfg);
  PrototypeModel proto;
  proto.pe_per_chip = cfg.pe_per_chip;
  proto.chips = cfg.depth;
  EXPECT_NEAR(r.achieved_rate, proto.sustained_rate(cfg.host_bytes_per_sec),
              1.0);
}

TEST(SystemRun, DeeperPipelinesAmortizeTransfers) {
  SystemRunConfig shallow = base();
  SystemRunConfig deep = base();
  deep.depth = 8;
  const SystemRunReport rs = model_system_run(shallow);
  const SystemRunReport rd = model_system_run(deep);
  // Same generations, an eighth of the passes, an eighth of the bytes.
  EXPECT_EQ(rd.passes, rs.passes / 8);
  EXPECT_NEAR(rd.transfer_seconds, rs.transfer_seconds / 8, 1e-9);
  EXPECT_NEAR(rd.achieved_rate, 8 * rs.achieved_rate,
              1e-6 * rd.achieved_rate);
}

TEST(SystemRun, DoubleBufferingHelpsAtMostTwofold) {
  SystemRunConfig on = base();
  SystemRunConfig off = base();
  off.double_buffered = false;
  const double won = model_system_run(on).wall_seconds;
  const double woff = model_system_run(off).wall_seconds;
  EXPECT_GT(woff, won);
  EXPECT_LE(woff, 2.0 * won + 1e-9);
}

TEST(SystemRun, RaggedGenerationsRoundUpToWholePasses) {
  SystemRunConfig cfg = base();
  cfg.depth = 8;
  cfg.generations = 20;  // 2 full passes + 1 partial
  EXPECT_EQ(model_system_run(cfg).passes, 3);
}

TEST(SystemRun, RejectsBadConfigs) {
  SystemRunConfig cfg = base();
  cfg.host_bytes_per_sec = 0;
  EXPECT_THROW(model_system_run(cfg), Error);
  cfg = base();
  cfg.depth = 0;
  EXPECT_THROW(model_system_run(cfg), Error);
  cfg = base();
  cfg.generations = 0;
  EXPECT_THROW(model_system_run(cfg), Error);
}

}  // namespace
}  // namespace lattice::arch
