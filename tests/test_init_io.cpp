// Initializer geometry and image output details not covered by the
// physics suites.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "lattice/lgca/image_io.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"

namespace lattice::lgca {
namespace {

const GasModel& fhp() { return GasModel::get(GasKind::FHP_II); }

TEST(InitGeometry, DiskRadiusIsInclusive) {
  SiteLattice lat({21, 21}, Boundary::Null);
  add_obstacle_disk(lat, 10, 10, 3);
  EXPECT_TRUE(is_obstacle(lat.at({10, 10})));
  EXPECT_TRUE(is_obstacle(lat.at({13, 10})));   // exactly r
  EXPECT_FALSE(is_obstacle(lat.at({14, 10})));  // r+1
  EXPECT_TRUE(is_obstacle(lat.at({12, 12})));   // inside diagonally
  EXPECT_FALSE(is_obstacle(lat.at({13, 13})));
}

TEST(InitGeometry, RectClampsToLattice) {
  SiteLattice lat({8, 8}, Boundary::Null);
  add_obstacle_rect(lat, {-5, -5}, {2, 1});
  const Invariants inv = measure_invariants(lat, fhp());
  EXPECT_EQ(inv.obstacles, 3 * 2);
}

TEST(InitGeometry, ChannelWallsCoverTopAndBottomOnly) {
  SiteLattice lat({10, 6}, Boundary::Null);
  add_channel_walls(lat);
  for (std::int64_t x = 0; x < 10; ++x) {
    EXPECT_TRUE(is_obstacle(lat.at({x, 0})));
    EXPECT_TRUE(is_obstacle(lat.at({x, 5})));
  }
  for (std::int64_t y = 1; y < 5; ++y) {
    EXPECT_FALSE(is_obstacle(lat.at({3, y})));
  }
}

TEST(InitGeometry, PulseRespectsObstacles) {
  SiteLattice lat({17, 17}, Boundary::Null);
  add_obstacle_disk(lat, 8, 8, 1.2);
  add_pressure_pulse(lat, fhp(), 5);
  // The obstacle core must stay an obstacle, not become gas.
  EXPECT_TRUE(is_obstacle(lat.at({8, 8})));
  // But the pulse ring around it is populated.
  EXPECT_GT(measure_invariants(lat, fhp()).mass, 0);
}

TEST(FillShear, ZeroBiasMatchesUnbiasedStatistics) {
  SiteLattice lat({64, 64}, Boundary::Periodic);
  fill_shear(lat, fhp(), 0.3, 0.0, 31);
  const Invariants inv = measure_invariants(lat, fhp());
  // Net momentum should be small (no bias): |px| well under 5% of the
  // total particle count scale.
  EXPECT_LT(std::abs(inv.px), inv.mass / 10);
}

TEST(FillShear, OppositeRowsCarryOppositeMomentum) {
  SiteLattice lat({128, 64}, Boundary::Periodic);
  fill_shear(lat, fhp(), 0.3, 0.2, 41);
  const auto profile = momentum_profile_x(lat, fhp());
  // Row 16 is the +peak of the sine, row 48 the −peak.
  EXPECT_GT(profile[16], 0);
  EXPECT_LT(profile[48], 0);
  EXPECT_GT(profile[16], -profile[48] / 2);
}

TEST(FillShear, PreservesObstacles) {
  SiteLattice lat({32, 32}, Boundary::Periodic);
  add_obstacle_disk(lat, 16, 16, 4);
  const auto before = measure_invariants(lat, fhp()).obstacles;
  fill_shear(lat, fhp(), 0.4, 0.1, 3);
  EXPECT_EQ(measure_invariants(lat, fhp()).obstacles, before);
}

TEST(FillRandom, RestDensityControlsRestPopulation) {
  SiteLattice none({64, 64}, Boundary::Periodic);
  SiteLattice lots({64, 64}, Boundary::Periodic);
  fill_random(none, fhp(), 0.2, 5, 0.0);
  fill_random(lots, fhp(), 0.2, 5, 0.9);
  auto rest_count = [](const SiteLattice& lat) {
    int n = 0;
    for (std::size_t i = 0; i < lat.site_count(); ++i)
      n += has_rest(lat[i]);
    return n;
  };
  EXPECT_EQ(rest_count(none), 0);
  EXPECT_GT(rest_count(lots), 64 * 64 / 2);
}

// ---- image output ----

TEST(ImageIo, RawPgmDumpsBytesVerbatim) {
  SiteLattice lat({3, 2}, Boundary::Null);
  for (std::size_t i = 0; i < lat.site_count(); ++i)
    lat[i] = static_cast<Site>(40 + i);
  std::ostringstream os;
  write_raw_pgm(os, lat);
  const std::string s = os.str();
  const std::string header = "P5\n3 2\n255\n";
  ASSERT_EQ(s.size(), header.size() + 6);
  EXPECT_EQ(s.compare(0, header.size(), header), 0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(s[header.size() +
                                           static_cast<std::size_t>(i)]),
              40 + i);
  }
}

TEST(ImageIo, DensityPgmScalesObstaclesToWhite) {
  SiteLattice lat({2, 1}, Boundary::Null);
  lat.at({0, 0}) = kObstacleBit;
  lat.at({1, 0}) = 0;
  std::ostringstream os;
  write_density_pgm(os, lat, fhp());
  const std::string s = os.str();
  EXPECT_EQ(static_cast<unsigned char>(s[s.size() - 2]), 255);  // obstacle
  EXPECT_EQ(static_cast<unsigned char>(s[s.size() - 1]), 0);    // vacuum
}

TEST(ImageIo, FlowArrowsCoverAllOctants) {
  Grid<FlowCell> cells({8, 1});
  const double d = 0.7071;
  const FlowCell dirs[8] = {
      {1, 1, 0},    {1, d, -d},  {1, 0, -1},  {1, -d, -d},
      {1, -1, 0},   {1, -d, d},  {1, 0, 1},   {1, d, d}};
  for (int i = 0; i < 8; ++i) cells.at({i, 0}) = dirs[i];
  const std::string art = render_flow_ascii(cells);
  EXPECT_EQ(art, ">/^\\</v\\\n");
}

TEST(ImageIo, DensityRampIsMonotone) {
  SiteLattice lat({7, 1}, Boundary::Null);
  Site acc = 0;
  for (int d = 0; d < 6; ++d) {
    acc |= channel_bit(d);
    lat.at({d + 1, 0}) = acc;
  }
  const std::string art = render_density_ascii(lat, fhp());
  // Strictly non-decreasing glyph "darkness" along the ramp.
  static constexpr std::string_view kRamp = " .:-=+*%@";
  std::size_t prev = 0;
  for (std::size_t i = 0; i + 1 < art.size(); ++i) {  // skip trailing \n
    const std::size_t level = kRamp.find(art[i]);
    ASSERT_NE(level, std::string_view::npos);
    EXPECT_GE(level, prev);
    prev = level;
  }
}

// ---- PGM round trip and malformed-input rejection ----

TEST(ImageIo, RawPgmRoundTripsThroughReader) {
  SiteLattice lat({5, 4}, Boundary::Null);
  for (std::size_t i = 0; i < lat.site_count(); ++i)
    lat[i] = static_cast<Site>((i * 37 + 1) & 0xFF);
  std::ostringstream os;
  write_raw_pgm(os, lat);
  std::istringstream is(os.str());
  const SiteLattice back = read_raw_pgm(is, Boundary::Null);
  EXPECT_TRUE(back == lat);
}

TEST(ImageIo, ReaderAcceptsHeaderComments) {
  std::string data = "P5\n# a comment\n2 # trailing\n# another\n1\n255\n";
  data += '\x41';
  data += '\x07';
  std::istringstream is(data);
  const SiteLattice lat = read_raw_pgm(is);
  EXPECT_EQ(lat.at({0, 0}), 0x41);
  EXPECT_EQ(lat.at({1, 0}), 0x07);
}

TEST(ImageIo, ReaderRejectsMalformedInputs) {
  const auto reject = [](const std::string& data) {
    std::istringstream is(data);
    EXPECT_THROW((void)read_raw_pgm(is), Error) << "accepted: " << data;
  };
  reject("");                          // empty stream
  reject("P6\n2 1\n255\n ab");         // wrong magic (PPM)
  reject("P5\nx 1\n255\n a");          // non-numeric width
  reject("P5\n2\n255\n ab");           // missing height
  reject("P5\n0 4\n255\n");            // zero width
  reject("P5\n2 -1\n255\n");           // negative height
  reject("P5\n2 1\n65535\n ab");       // 16-bit maxval unsupported
  reject("P5\n99999999999999999999 1\n255\n x");  // overflowing dim
  // Dimensions that pass individual bounds but whose product is absurd.
  reject("P5\n1000000 1000000\n255\n x");
}

TEST(ImageIo, ReaderRejectsTruncatedPixelData) {
  SiteLattice lat({6, 3}, Boundary::Null);
  for (std::size_t i = 0; i < lat.site_count(); ++i)
    lat[i] = static_cast<Site>(i);
  std::ostringstream os;
  write_raw_pgm(os, lat);
  const std::string full = os.str();
  // Any proper prefix that cuts into the raster must throw, not return
  // a partially-initialized lattice.
  for (const std::size_t cut : {full.size() - 1, full.size() - 7}) {
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW((void)read_raw_pgm(is), Error);
  }
}

// ---- initializer precondition rejection ----

TEST(InitValidation, FillersRejectNonProbabilities) {
  SiteLattice lat({8, 8}, Boundary::Null);
  EXPECT_THROW(fill_random(lat, fhp(), -0.1, 1), Error);
  EXPECT_THROW(fill_random(lat, fhp(), 1.5, 1), Error);
  EXPECT_THROW(fill_random(lat, fhp(), 0.3, 1, 2.0), Error);
  EXPECT_THROW(fill_random(lat, fhp(), std::nan(""), 1), Error);
  EXPECT_THROW(fill_flow(lat, fhp(), 0.3, 1.5, 1), Error);
  EXPECT_THROW(fill_flow(lat, fhp(), 0.3, std::nan(""), 1), Error);
  EXPECT_THROW(fill_shear(lat, fhp(), -0.2, 0.1, 1), Error);
  EXPECT_THROW(fill_shear(lat, fhp(), 0.3, -1.5, 1), Error);
  // Boundary values are legal.
  fill_random(lat, fhp(), 0.0, 1, 1.0);
  fill_flow(lat, fhp(), 1.0, -1.0, 1);
}

TEST(InitValidation, GeometryRejectsDegenerateShapes) {
  SiteLattice lat({8, 8}, Boundary::Null);
  EXPECT_THROW(add_obstacle_rect(lat, {4, 2}, {2, 4}), Error);
  EXPECT_THROW(add_obstacle_disk(lat, 4, 4, -1.0), Error);
  EXPECT_THROW(add_obstacle_disk(lat, 4, 4, std::nan("")), Error);
  EXPECT_THROW(
      add_obstacle_disk(lat, std::numeric_limits<double>::infinity(), 4, 2),
      Error);
  EXPECT_THROW(add_pressure_pulse(lat, fhp(), 0), Error);
  // A valid call still works after the rejected ones.
  add_obstacle_disk(lat, 4, 4, 2.0);
  EXPECT_TRUE(is_obstacle(lat.at({4, 4})));
}

}  // namespace
}  // namespace lattice::lgca
