// The observability layer's own contract: counters merge exactly
// across threads, histogram buckets land on the documented power-of-two
// boundaries, the disabled paths allocate nothing, the trace export is
// well-formed Chrome Trace JSON (checked through a real parser), and
// the engine's MetricsReport phases account for its wall-clock.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "lattice/common/thread_pool.hpp"
#include "lattice/core/engine.hpp"
#include "lattice/core/metrics_report.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/obs/json.hpp"
#include "lattice/obs/metrics.hpp"
#include "lattice/obs/trace.hpp"

namespace {

using namespace lattice;

// ---- allocation counting (for the zero-allocation contracts) ----

std::atomic<std::int64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

// ---- a minimal JSON parser (validates, no DOM) ----
//
// Enough of RFC 8259 to round-trip what JsonWriter and trace_to_json
// emit: objects, arrays, strings with escapes, numbers, literals.
// parse() returns false on any syntax error; object keys seen anywhere
// are collected so tests can assert on the document's vocabulary.
class MiniJsonParser {
 public:
  bool parse(const std::string& text) {
    s_ = text.c_str();
    ok_ = true;
    skip_ws();
    value();
    skip_ws();
    return ok_ && *s_ == '\0';
  }

  const std::vector<std::string>& keys() const { return keys_; }

 private:
  void fail() { ok_ = false; }
  void skip_ws() {
    while (*s_ == ' ' || *s_ == '\t' || *s_ == '\n' || *s_ == '\r') ++s_;
  }
  bool consume(char c) {
    if (*s_ != c) return false;
    ++s_;
    return true;
  }

  void value() {
    if (!ok_) return;
    switch (*s_) {
      case '{': object(); return;
      case '[': array(); return;
      case '"': string_lit(nullptr); return;
      case 't': literal("true"); return;
      case 'f': literal("false"); return;
      case 'n': literal("null"); return;
      default: number(); return;
    }
  }

  void object() {
    consume('{');
    skip_ws();
    if (consume('}')) return;
    while (ok_) {
      skip_ws();
      std::string key;
      string_lit(&key);
      if (ok_) keys_.push_back(key);
      skip_ws();
      if (!consume(':')) return fail();
      skip_ws();
      value();
      skip_ws();
      if (consume('}')) return;
      if (!consume(',')) return fail();
    }
  }

  void array() {
    consume('[');
    skip_ws();
    if (consume(']')) return;
    while (ok_) {
      skip_ws();
      value();
      skip_ws();
      if (consume(']')) return;
      if (!consume(',')) return fail();
    }
  }

  void string_lit(std::string* out) {
    if (!consume('"')) return fail();
    while (*s_ != '"') {
      if (*s_ == '\0') return fail();
      if (*s_ == '\\') {
        ++s_;
        if (*s_ == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++s_;
            if (std::isxdigit(static_cast<unsigned char>(*s_)) == 0) {
              return fail();
            }
          }
        } else if (*s_ == '\0') {
          return fail();
        }
      } else if (out != nullptr) {
        out->push_back(*s_);
      }
      ++s_;
    }
    ++s_;
  }

  void literal(const char* word) {
    for (; *word != '\0'; ++word) {
      if (!consume(*word)) return fail();
    }
  }

  void number() {
    const char* start = s_;
    consume('-');
    while (std::isdigit(static_cast<unsigned char>(*s_)) != 0) ++s_;
    if (consume('.')) {
      while (std::isdigit(static_cast<unsigned char>(*s_)) != 0) ++s_;
    }
    if (*s_ == 'e' || *s_ == 'E') {
      ++s_;
      if (*s_ == '+' || *s_ == '-') ++s_;
      while (std::isdigit(static_cast<unsigned char>(*s_)) != 0) ++s_;
    }
    if (s_ == start) fail();
  }

  const char* s_ = "";
  bool ok_ = true;
  std::vector<std::string> keys_;
};

// ---- registry: counters ----

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto a = reg.counter("test.counter");
  const auto b = reg.counter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.counter("test.other"));
}

TEST(MetricsRegistry, CountersMergeExactlyAcrossThreads) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto id = reg.counter("test.parallel");
  constexpr int kThreads = 8;
  constexpr std::int64_t kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, id] {
      for (std::int64_t i = 0; i < kAddsPerThread; ++i) reg.add(id, 1);
    });
  }
  for (std::thread& w : workers) w.join();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("test.parallel"), kThreads * kAddsPerThread);
}

TEST(MetricsRegistry, SnapshotWhileThreadsAreCountingIsSane) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto id = reg.counter("test.live");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    reg.add(id, 1);  // at least one add even if stop wins the race
    while (!stop.load(std::memory_order_relaxed)) reg.add(id, 1);
  });
  std::int64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const std::int64_t v = reg.snapshot().counter_or("test.live");
    EXPECT_GE(v, last);  // monotonic under concurrent adds
    last = v;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(reg.snapshot().counter_or("test.live"), 0);
}

TEST(MetricsRegistry, GaugesSetAndAdd) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto id = reg.gauge("test.gauge");
  reg.gauge_set(id, 42);
  EXPECT_EQ(reg.snapshot().gauge_or("test.gauge"), 42);
  reg.gauge_add(id, -40);
  EXPECT_EQ(reg.snapshot().gauge_or("test.gauge"), 2);
  reg.gauge_set(id, 0);
  EXPECT_EQ(reg.snapshot().gauge_or("test.gauge"), 0);
}

TEST(MetricsRegistry, ResetClearsValuesButKeepsRegistrations) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto c = reg.counter("test.c");
  const auto h = reg.histogram("test.h");
  reg.add(c, 7);
  reg.record(h, 100);
  reg.reset();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("test.c", -1), 0);
  const obs::HistogramStats* hs = snap.find_histogram("test.h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 0);
  EXPECT_EQ(reg.counter("test.c"), c);  // same id after reset
}

TEST(MetricsRegistry, ExhaustedCapacityReturnsInvalidAndMutationIsNoop) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::Id last = 0;
  for (int i = 0; i <= obs::MetricsRegistry::kMaxGauges; ++i) {
    last = reg.gauge("test.g" + std::to_string(i));
  }
  EXPECT_EQ(last, obs::MetricsRegistry::kInvalidId);
  reg.gauge_set(last, 5);  // must not crash or write anywhere
}

// ---- histograms ----

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto id = reg.histogram("test.buckets");
  // Bucket 0 holds v <= 0; bucket b holds [2^(b-1), 2^b).
  reg.record(id, -5);
  reg.record(id, 0);
  reg.record(id, 1);    // bucket 1: [1, 2)
  reg.record(id, 2);    // bucket 2: [2, 4)
  reg.record(id, 3);    // bucket 2
  reg.record(id, 4);    // bucket 3: [4, 8)
  reg.record(id, 7);    // bucket 3
  reg.record(id, 8);    // bucket 4: [8, 16)
  reg.record(id, 1023);  // bucket 10: [512, 1024)
  reg.record(id, 1024);  // bucket 11: [1024, 2048)
  const obs::HistogramStats* h = reg.snapshot().find_histogram("test.buckets");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 10);
  EXPECT_EQ(h->min, -5);
  EXPECT_EQ(h->max, 1024);
  EXPECT_EQ(h->buckets[0], 2);
  EXPECT_EQ(h->buckets[1], 1);
  EXPECT_EQ(h->buckets[2], 2);
  EXPECT_EQ(h->buckets[3], 2);
  EXPECT_EQ(h->buckets[4], 1);
  EXPECT_EQ(h->buckets[10], 1);
  EXPECT_EQ(h->buckets[11], 1);
  EXPECT_EQ(obs::HistogramStats::bucket_floor(0), 0);
  EXPECT_EQ(obs::HistogramStats::bucket_floor(1), 1);
  EXPECT_EQ(obs::HistogramStats::bucket_floor(11), 1024);
}

TEST(Histogram, SumMeanAndQuantiles) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto id = reg.histogram("test.quant");
  std::int64_t sum = 0;
  for (std::int64_t v = 1; v <= 100; ++v) {
    reg.record(id, v);
    sum += v;
  }
  const obs::HistogramStats* h = reg.snapshot().find_histogram("test.quant");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 100);
  EXPECT_EQ(h->sum, sum);
  EXPECT_DOUBLE_EQ(h->mean(), static_cast<double>(sum) / 100.0);
  // The quantile estimate is an exclusive bucket ceiling: always at or
  // above the true value, within one power of two.
  EXPECT_GE(h->quantile_ceiling(0.5), 50);
  EXPECT_LE(h->quantile_ceiling(0.5), 128);
  EXPECT_GE(h->quantile_ceiling(0.99), 99);
  EXPECT_GE(h->quantile_ceiling(1.0), 100);  // never below the true max
  EXPECT_LE(h->quantile_ceiling(1.0), 128);  // ...within one power of two
}

TEST(Histogram, ParallelRecordsKeepExactCountAndSum) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  const auto id = reg.histogram("test.par_hist");
  constexpr int kThreads = 6;
  constexpr std::int64_t kEach = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, id, t] {
      for (std::int64_t i = 0; i < kEach; ++i) reg.record(id, t + 1);
    });
  }
  for (std::thread& w : workers) w.join();
  const obs::HistogramStats* h = reg.snapshot().find_histogram("test.par_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kEach);
  EXPECT_EQ(h->sum, kEach * (1 + 2 + 3 + 4 + 5 + 6));
  EXPECT_EQ(h->min, 1);
  EXPECT_EQ(h->max, kThreads);
}

// ---- disabled paths allocate nothing ----

TEST(Overhead, HotPathsDoNotAllocate) {
  // Warm up: first touch of the global registry from this thread
  // creates its shard; that one allocation is setup, not steady state.
  const auto ctr = obs::counter_id("test.alloc_probe");
  const auto hist = obs::histogram_id("test.alloc_hist");
  obs::count(ctr, 1);
  obs::record(hist, 1);
  obs::set_trace_enabled(false);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    obs::count(ctr, 1);
    obs::record(hist, i);
    obs::gauge_set(obs::MetricsRegistry::kInvalidId, i);
    const obs::ScopedTimer t(hist);
    const obs::TraceSpan s("test.span");  // tracing off: one relaxed load
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "counter/histogram/span hot paths allocated";
}

// ---- tracing ----

TEST(Trace, DisabledCollectsNothing) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::set_trace_enabled(false);
  obs::clear_trace();
  {
    const obs::TraceSpan s("test.invisible");
  }
  EXPECT_EQ(obs::trace_event_count(), 0);
}

TEST(Trace, JsonRoundTripsThroughParser) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::clear_trace();
  obs::set_trace_enabled(true);
  {
    const obs::TraceSpan outer("test.outer");
    const obs::TraceSpan inner("test.inner \"quoted\"\\path");
    const obs::TraceSpan third("test.third");
  }
  std::thread([] { const obs::TraceSpan s("test.from_thread"); }).join();
  obs::set_trace_enabled(false);

  EXPECT_EQ(obs::trace_event_count(), 4);
  const std::string json = obs::trace_to_json();
  MiniJsonParser parser;
  ASSERT_TRUE(parser.parse(json)) << json;

  // Vocabulary: the Trace Event Format fields chrome://tracing needs.
  int name_keys = 0;
  bool has_trace_events = false;
  for (const std::string& k : parser.keys()) {
    if (k == "name") ++name_keys;
    if (k == "traceEvents") has_trace_events = true;
  }
  EXPECT_TRUE(has_trace_events);
  EXPECT_EQ(name_keys, 4);
  EXPECT_NE(json.find("test.outer"), std::string::npos);
  EXPECT_NE(json.find("test.from_thread"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0);
}

TEST(Trace, MetricsJsonExportParses) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry reg;
  reg.add(reg.counter("test.c\"tricky\""), 3);
  reg.gauge_set(reg.gauge("test.g"), -1);
  reg.record(reg.histogram("test.h"), 1000);
  const obs::MetricsSnapshot snap = reg.snapshot();
  obs::JsonWriter w;
  obs::metrics_to_json(snap, w);
  MiniJsonParser parser;
  ASSERT_TRUE(parser.parse(w.str())) << w.str();
}

// ---- integration: engine, pool, fault counters ----

TEST(EngineSnapshot, PhasesAccountForWallClock) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry::global().reset();
  core::LatticeEngine::Config config;
  config.extent = {128, 128};
  config.gas = lgca::GasKind::FHP_II;
  config.backend = core::Backend::Reference;
  config.pipeline_depth = 4;
  core::LatticeEngine engine(config);
  lgca::fill_random(engine.state(), engine.gas_model(), 0.3, 13);
  engine.advance(32);

  const core::MetricsReport report = engine.snapshot();
  EXPECT_GT(report.wall_seconds, 0);
  ASSERT_FALSE(report.phases.empty());
  bool has_pass = false;
  for (const core::MetricsPhase& p : report.phases) {
    if (p.name == "engine.pass.reference_ns") {
      has_pass = true;
      EXPECT_EQ(p.count, 8);  // 32 generations / depth 4
    }
  }
  EXPECT_TRUE(has_pass);
  // The top-level phases are everything advance() does besides loop
  // glue; their sum must approximate the measured wall-clock.
  EXPECT_GT(report.phase_seconds(), 0.5 * report.wall_seconds);
  EXPECT_LT(report.phase_seconds(), 1.1 * report.wall_seconds + 1e-3);

  // And the counters the engine promises to keep.
  EXPECT_EQ(report.metrics.counter_or("engine.generations"), 32);
  EXPECT_EQ(report.metrics.counter_or("engine.site_updates"), 128 * 128 * 32);
  EXPECT_EQ(report.metrics.counter_or("reference.sites"), 128 * 128 * 32);
}

// BitPlane gets the same first-class per-pass stage as every other
// backend; its pack/update/unpack histograms still record, but they
// nest *inside* engine.pass.bitplane_ns and must not double-count in
// the top-level phase accounting.
TEST(EngineSnapshot, BitPlanePassIsTheTopLevelStage) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry::global().reset();
  core::LatticeEngine::Config config;
  config.extent = {64, 64};
  config.gas = lgca::GasKind::HPP;
  config.backend = core::Backend::BitPlane;
  core::LatticeEngine engine(config);
  lgca::fill_random(engine.state(), engine.gas_model(), 0.3, 13);
  engine.advance(16);

  const core::MetricsReport report = engine.snapshot();
  bool pass = false;
  for (const core::MetricsPhase& p : report.phases) {
    if (p.name == "engine.pass.bitplane_ns") {
      pass = true;
      // One pass for the whole advance(): the backend does not chunk
      // by pipeline_depth.
      EXPECT_EQ(p.count, 1);
    }
    EXPECT_NE(p.name, "engine.pass.reference_ns");
    EXPECT_NE(p.name, "bitplane.pack_ns");    // nested, not top-level
    EXPECT_NE(p.name, "bitplane.update_ns");
    EXPECT_NE(p.name, "bitplane.unpack_ns");
  }
  EXPECT_TRUE(pass);
  // The nested stage histograms still record underneath the pass.
  const obs::HistogramStats* update =
      report.metrics.find_histogram("bitplane.update_ns");
  ASSERT_NE(update, nullptr);
  EXPECT_GT(update->count, 0);
  EXPECT_EQ(report.metrics.counter_or("bitplane.sites"), 64 * 64 * 16);
}

TEST(PoolCounters, TasksAndJobsAreCounted) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  auto& pool = common::ThreadPool::shared();
  const auto before = obs::MetricsRegistry::global().snapshot();
  std::atomic<int> ran{0};
  pool.for_each_task(16, [&](std::int64_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 16);
  const auto after = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(after.counter_or("pool.jobs") - before.counter_or("pool.jobs"), 1);
  EXPECT_EQ(after.counter_or("pool.tasks") - before.counter_or("pool.tasks"),
            16);
  EXPECT_EQ(after.gauge_or("pool.queue_depth"), 0);  // reset after the job
}

TEST(FaultCounters, InjectionAndDetectionReachTheRegistry) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with LATTICE_OBS=OFF";
  obs::MetricsRegistry::global().reset();
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.buffer_flip_rate = 1.0;  // every stored word flips one bit
  fault::FaultInjector injector(plan);
  for (int pos = 0; pos < 100; ++pos) {
    injector.corrupt_stored(/*t=*/0, pos, lgca::Site{0});
  }
  injector.report_parity_error();
  injector.report_side_error();
  injector.report_conservation_error();

  const fault::FaultCounters c = injector.counters();
  EXPECT_EQ(c.injected_flips, 100);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counter_or("fault.injected.flips"), c.injected_flips);
  EXPECT_EQ(snap.counter_or("fault.detected.parity"), 1);
  EXPECT_EQ(snap.counter_or("fault.detected.side"), 1);
  EXPECT_EQ(snap.counter_or("fault.detected.conservation"), 1);
}

}  // namespace
