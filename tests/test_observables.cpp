#include <gtest/gtest.h>

#include <sstream>

#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/image_io.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::lgca {
namespace {

TEST(Invariants, CountsSingleParticles) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  SiteLattice lat({8, 8}, Boundary::Periodic);
  lat.at({1, 1}) = channel_bit(0);                       // px=+2
  lat.at({2, 2}) = channel_bit(3);                       // px=-2
  lat.at({3, 3}) = static_cast<Site>(channel_bit(1) | channel_bit(2));
  const Invariants inv = measure_invariants(lat, m);
  EXPECT_EQ(inv.mass, 4);
  EXPECT_EQ(inv.px, 0);
  EXPECT_EQ(inv.py, -2);  // NE + NW = (1,-1)+(-1,-1)
  EXPECT_EQ(inv.obstacles, 0);
}

TEST(Invariants, ObstaclesCountedSeparately) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({6, 6}, Boundary::Null);
  add_obstacle_rect(lat, {0, 0}, {5, 0});
  const Invariants inv = measure_invariants(lat, m);
  EXPECT_EQ(inv.obstacles, 6);
  EXPECT_EQ(inv.mass, 0);
}

TEST(Invariants, RestParticlesHaveMassButNoMomentum) {
  const GasModel& m = GasModel::get(GasKind::FHP_II);
  SiteLattice lat({4, 4}, Boundary::Periodic);
  lat.at({1, 1}) = kRestBit;
  const Invariants inv = measure_invariants(lat, m);
  EXPECT_EQ(inv.mass, 1);
  EXPECT_EQ(inv.px, 0);
  EXPECT_EQ(inv.py, 0);
}

TEST(CoarseGrain, DensityAveragesOverCells) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({8, 8}, Boundary::Periodic);
  // Fill the top-left 4×4 cell completely (4 particles/site).
  for (std::int64_t y = 0; y < 4; ++y)
    for (std::int64_t x = 0; x < 4; ++x)
      lat.at({x, y}) = 0x0f;
  const Grid<FlowCell> cells = coarse_grain(lat, m, 4);
  ASSERT_EQ(cells.extent(), (Extent{2, 2}));
  EXPECT_DOUBLE_EQ(cells.at({0, 0}).density, 4.0);
  EXPECT_DOUBLE_EQ(cells.at({1, 0}).density, 0.0);
  EXPECT_DOUBLE_EQ(cells.at({0, 0}).ux, 0.0);  // all four dirs cancel
}

TEST(CoarseGrain, VelocityReflectsNetFlow) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({4, 4}, Boundary::Periodic);
  for (std::int64_t y = 0; y < 4; ++y)
    for (std::int64_t x = 0; x < 4; ++x)
      lat.at({x, y}) = channel_bit(0);  // everyone E-bound
  const Grid<FlowCell> cells = coarse_grain(lat, m, 4);
  EXPECT_DOUBLE_EQ(cells.at({0, 0}).ux, 2.0);  // momentum units per particle
  EXPECT_DOUBLE_EQ(cells.at({0, 0}).uy, 0.0);
}

TEST(CoarseGrain, RejectsNonPositiveCell) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({4, 4}, Boundary::Periodic);
  EXPECT_THROW(coarse_grain(lat, m, 0), Error);
}

TEST(Spread, PointMassHasZeroSpread) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({9, 9}, Boundary::Periodic);
  lat.at({4, 4}) = channel_bit(0);
  const SpreadStats st = measure_spread(lat, m, 4.0, 4.0);
  EXPECT_EQ(st.particles, 1);
  EXPECT_DOUBLE_EQ(st.mean_r2, 0.0);
}

TEST(Spread, AxisAlignedRingIsMaximallyAnisotropic) {
  // Four particles on the lattice axes: cos 4θ = 1 everywhere, the
  // fourth-order anisotropy saturates at 1 — the HPP signature.
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({9, 9}, Boundary::Periodic);
  lat.at({6, 4}) = channel_bit(0);
  lat.at({2, 4}) = channel_bit(0);
  lat.at({4, 6}) = channel_bit(0);
  lat.at({4, 2}) = channel_bit(0);
  const SpreadStats st = measure_spread(lat, m, 4.0, 4.0);
  EXPECT_EQ(st.particles, 4);
  EXPECT_DOUBLE_EQ(st.mean_r2, 4.0);
  EXPECT_NEAR(st.anisotropy, 1.0, 1e-12);
}

TEST(Spread, EightFoldRingIsIsotropicToFourthOrder) {
  // Four axis points plus four diagonal points at the same radius:
  // cos 4θ contributions cancel exactly.
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({11, 11}, Boundary::Periodic);
  // Axis points carry 4 particles each (full HPP site) so the two
  // families have equal Σ n·r⁴: +4·(4·16) from the axes cancels
  // −4·64 from the diagonals (where cos 4θ = −1).
  lat.at({7, 5}) = 0x0f;
  lat.at({3, 5}) = 0x0f;
  lat.at({5, 7}) = 0x0f;
  lat.at({5, 3}) = 0x0f;
  lat.at({7, 7}) = channel_bit(0);
  lat.at({3, 3}) = channel_bit(0);
  lat.at({7, 3}) = channel_bit(0);
  lat.at({3, 7}) = channel_bit(0);
  const SpreadStats st = measure_spread(lat, m, 5.0, 5.0);
  EXPECT_EQ(st.particles, 20);
  EXPECT_NEAR(st.anisotropy, 0.0, 1e-12);
}

TEST(FillRandom, HitsRequestedDensity) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  SiteLattice lat({64, 64}, Boundary::Periodic);
  fill_random(lat, m, 0.5, 123);
  const Invariants inv = measure_invariants(lat, m);
  const double per_channel =
      static_cast<double>(inv.mass) / (64.0 * 64.0 * 6.0);
  EXPECT_NEAR(per_channel, 0.5, 0.02);
}

TEST(FillRandom, SkipsObstacles) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  SiteLattice lat({16, 16}, Boundary::Periodic);
  add_obstacle_rect(lat, {0, 0}, {15, 15});
  fill_random(lat, m, 1.0, 5);
  EXPECT_EQ(measure_invariants(lat, m).mass, 0);
}

TEST(FillFlow, ProducesNetPositiveXMomentum) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  SiteLattice lat({64, 64}, Boundary::Periodic);
  fill_flow(lat, m, 0.3, 0.15, 77);
  const Invariants inv = measure_invariants(lat, m);
  EXPECT_GT(inv.px, 0);
}

TEST(PressurePulse, CentersAndFillsAllChannels) {
  const GasModel& m = GasModel::get(GasKind::FHP_I);
  SiteLattice lat({33, 33}, Boundary::Periodic);
  add_pressure_pulse(lat, m, 3);
  const Invariants inv = measure_invariants(lat, m);
  EXPECT_EQ(inv.mass, 9 * 6);
  EXPECT_EQ(inv.px, 0);
  EXPECT_EQ(inv.py, 0);
}

TEST(ImageIo, DensityPgmHasCorrectHeaderAndSize) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({7, 5}, Boundary::Periodic);
  std::ostringstream os;
  write_density_pgm(os, lat, m);
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("P5\n7 5\n255\n", 0), 0u);
  EXPECT_EQ(s.size(), std::string("P5\n7 5\n255\n").size() + 7 * 5);
}

TEST(ImageIo, AsciiRenderMarksObstacles) {
  const GasModel& m = GasModel::get(GasKind::HPP);
  SiteLattice lat({3, 1}, Boundary::Null);
  lat.at({1, 0}) = kObstacleBit;
  const std::string art = render_density_ascii(lat, m);
  EXPECT_EQ(art, " # \n");
}

TEST(ImageIo, FlowAsciiShowsArrowsForFlow) {
  Grid<FlowCell> cells({2, 1});
  cells.at({0, 0}) = FlowCell{1.0, 2.0, 0.0};   // strong +x flow
  cells.at({1, 0}) = FlowCell{0.0, 0.0, 0.0};   // empty
  const std::string art = render_flow_ascii(cells);
  EXPECT_EQ(art, "> \n");
}

}  // namespace
}  // namespace lattice::lgca
