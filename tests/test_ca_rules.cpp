#include <gtest/gtest.h>

#include <algorithm>

#include "lattice/common/rng.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::lgca {
namespace {

SiteLattice life_from(std::initializer_list<Coord> cells, Extent e,
                      Boundary b = Boundary::Periodic) {
  SiteLattice lat(e, b);
  for (const Coord c : cells) lat.at(c) = 1;
  return lat;
}

int live_count(const SiteLattice& lat) {
  int n = 0;
  for (std::size_t i = 0; i < lat.site_count(); ++i) n += lat[i] & 1;
  return n;
}

TEST(LifeRule, BlockIsStill) {
  SiteLattice lat = life_from({{2, 2}, {3, 2}, {2, 3}, {3, 3}}, {8, 8});
  const SiteLattice before = lat;
  reference_run(lat, LifeRule{}, 4);
  EXPECT_TRUE(lat == before);
}

TEST(LifeRule, BlinkerOscillatesWithPeriodTwo) {
  SiteLattice lat = life_from({{2, 3}, {3, 3}, {4, 3}}, {8, 8});
  const SiteLattice horizontal = lat;
  const LifeRule rule;
  reference_step(lat, rule, 0);
  EXPECT_EQ(lat.at({3, 2}), 1);
  EXPECT_EQ(lat.at({3, 3}), 1);
  EXPECT_EQ(lat.at({3, 4}), 1);
  EXPECT_EQ(live_count(lat), 3);
  reference_step(lat, rule, 1);
  EXPECT_TRUE(lat == horizontal);
}

TEST(LifeRule, GliderTranslatesByOneCellPerFourGenerations) {
  // Standard glider; after 4 generations it is the same shape shifted
  // by (+1, +1).
  SiteLattice lat =
      life_from({{1, 0}, {2, 1}, {0, 2}, {1, 2}, {2, 2}}, {12, 12});
  SiteLattice expected =
      life_from({{2, 1}, {3, 2}, {1, 3}, {2, 3}, {3, 3}}, {12, 12});
  reference_run(lat, LifeRule{}, 4);
  EXPECT_TRUE(lat == expected);
}

TEST(LifeRule, LonelyCellDies) {
  SiteLattice lat = life_from({{4, 4}}, {8, 8});
  reference_step(lat, LifeRule{}, 0);
  EXPECT_EQ(live_count(lat), 0);
}

TEST(BoxFilter, UniformImageIsFixedPoint) {
  SiteLattice lat({10, 10}, Boundary::Periodic);
  lat.fill(Site{100});
  reference_step(lat, BoxFilterRule{}, 0);
  for (std::size_t i = 0; i < lat.site_count(); ++i) EXPECT_EQ(lat[i], 100);
}

TEST(BoxFilter, SmoothsAnImpulse) {
  SiteLattice lat({9, 9}, Boundary::Null);
  lat.at({4, 4}) = 90;
  reference_step(lat, BoxFilterRule{}, 0);
  EXPECT_EQ(lat.at({4, 4}), 10);  // 90/9
  EXPECT_EQ(lat.at({3, 4}), 10);
  EXPECT_EQ(lat.at({3, 3}), 10);
  EXPECT_EQ(lat.at({2, 2}), 0);
}

TEST(BoxFilter, PreservesTotalBrightnessApproximately) {
  SiteLattice lat({16, 16}, Boundary::Periodic);
  Pcg32 rng(4);
  for (std::size_t i = 0; i < lat.site_count(); ++i)
    lat[i] = static_cast<Site>(rng.next_below(256));
  long before = 0;
  for (std::size_t i = 0; i < lat.site_count(); ++i) before += lat[i];
  reference_step(lat, BoxFilterRule{}, 0);
  long after = 0;
  for (std::size_t i = 0; i < lat.site_count(); ++i) after += lat[i];
  // Rounding loses at most half a level per site.
  EXPECT_NEAR(static_cast<double>(after), static_cast<double>(before),
              0.5 * static_cast<double>(lat.site_count()));
}

TEST(MedianFilter, RemovesSaltNoiseFromFlatField) {
  SiteLattice lat({9, 9}, Boundary::Periodic);
  lat.fill(Site{50});
  lat.at({4, 4}) = 255;  // single hot pixel
  reference_step(lat, MedianFilterRule{}, 0);
  for (std::size_t i = 0; i < lat.site_count(); ++i) EXPECT_EQ(lat[i], 50);
}

TEST(MedianFilter, PreservesStepEdge) {
  // A vertical step edge survives a median filter (unlike a box filter).
  SiteLattice lat({10, 10}, Boundary::Periodic);
  for (std::int64_t y = 0; y < 10; ++y)
    for (std::int64_t x = 5; x < 10; ++x) lat.at({x, y}) = 200;
  const SiteLattice before = lat;
  reference_step(lat, MedianFilterRule{}, 0);
  EXPECT_TRUE(lat == before);
}

TEST(Diffusion, RelaxesTowardUniform) {
  SiteLattice lat({16, 16}, Boundary::Periodic);
  lat.at({8, 8}) = 255;
  const DiffusionRule rule;
  int prev_max = 255;
  for (int t = 0; t < 30; ++t) {
    reference_step(lat, rule, t);
    int mx = 0;
    for (std::size_t i = 0; i < lat.site_count(); ++i)
      mx = std::max<int>(mx, lat[i]);
    EXPECT_LE(mx, prev_max);
    prev_max = mx;
  }
  EXPECT_LT(prev_max, 64);
}

TEST(Diffusion, UniformFieldIsFixedPoint) {
  SiteLattice lat({8, 8}, Boundary::Periodic);
  lat.fill(Site{77});
  reference_step(lat, DiffusionRule{}, 0);
  for (std::size_t i = 0; i < lat.site_count(); ++i) EXPECT_EQ(lat[i], 77);
}

TEST(RuleNames, AreDistinct) {
  EXPECT_EQ(LifeRule{}.name(), "Life");
  EXPECT_EQ(BoxFilterRule{}.name(), "BoxFilter3x3");
  EXPECT_EQ(MedianFilterRule{}.name(), "MedianFilter3x3");
  EXPECT_EQ(DiffusionRule{}.name(), "Diffusion4");
}

}  // namespace
}  // namespace lattice::lgca
