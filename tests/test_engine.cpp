// End-to-end facade tests: every backend produces the same physics,
// and the performance report is consistent with the §6/§7 models.

#include <gtest/gtest.h>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"

namespace lattice::core {
namespace {

LatticeEngine::Config base_config(Backend b) {
  LatticeEngine::Config c;
  c.extent = {32, 24};
  c.gas = lgca::GasKind::FHP_II;
  c.backend = b;
  c.pipeline_depth = 3;
  c.wsa_width = 2;
  c.spa_slice_width = 8;
  return c;
}

void seed(LatticeEngine& e) {
  lgca::fill_random(e.state(), e.gas_model(), 0.3, 77, 0.15);
}

class BackendTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(All, BackendTest,
                         ::testing::Values(Backend::Reference, Backend::Wsa,
                                           Backend::Spa, Backend::BitPlane,
                                           Backend::WsaE),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::Reference: return "Reference";
                             case Backend::Wsa: return "Wsa";
                             case Backend::Spa: return "Spa";
                             case Backend::BitPlane: return "BitPlane";
                             case Backend::WsaE: return "WsaE";
                           }
                           return "unknown";
                         });

TEST_P(BackendTest, VerifiesAgainstReference) {
  LatticeEngine e(base_config(GetParam()));
  seed(e);
  e.advance(10);
  EXPECT_EQ(e.generation(), 10);
  EXPECT_TRUE(e.verify_against_reference());
}

TEST_P(BackendTest, AllBackendsAgreeExactly) {
  LatticeEngine ref(base_config(Backend::Reference));
  LatticeEngine other(base_config(GetParam()));
  seed(ref);
  seed(other);
  ref.advance(7);
  other.advance(7);
  EXPECT_TRUE(ref.state() == other.state());
}

TEST_P(BackendTest, PartialPassesHandleRaggedGenerations) {
  // 10 generations at depth 3 = three full passes + one short pass.
  LatticeEngine e(base_config(GetParam()));
  seed(e);
  e.advance(4);
  e.advance(6);
  EXPECT_EQ(e.generation(), 10);
  EXPECT_TRUE(e.verify_against_reference());
}

TEST_P(BackendTest, ConservesMassAndReportsUpdates) {
  LatticeEngine e(base_config(GetParam()));
  seed(e);
  const auto before = lgca::measure_invariants(e.state(), e.gas_model());
  e.advance(5);
  // Null boundaries drain mass, so only check monotone non-increase.
  const auto after = lgca::measure_invariants(e.state(), e.gas_model());
  EXPECT_LE(after.mass, before.mass);
  EXPECT_EQ(e.report().site_updates, 32 * 24 * 5);
}

// ---- execution knobs: threads × fast_kernel ----
//
// Every (backend, threads, fast_kernel) combination must replay to the
// same state the generic serial reference produces — the software
// execution strategy is invisible in the physics.

struct ExecCase {
  Backend backend;
  unsigned threads;
  bool fast;
};

class ExecutionMatrixTest : public ::testing::TestWithParam<ExecCase> {};

std::string exec_name(const ::testing::TestParamInfo<ExecCase>& info) {
  const ExecCase& c = info.param;
  std::string s;
  switch (c.backend) {
    case Backend::Reference: s = "Reference"; break;
    case Backend::Wsa: s = "Wsa"; break;
    case Backend::Spa: s = "Spa"; break;
    case Backend::BitPlane: s = "BitPlane"; break;
    case Backend::WsaE: s = "WsaE"; break;
  }
  s += "T" + std::to_string(c.threads);
  s += c.fast ? "Fast" : "Generic";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, ExecutionMatrixTest,
    ::testing::Values(ExecCase{Backend::Reference, 1, false},
                      ExecCase{Backend::Reference, 1, true},
                      ExecCase{Backend::Reference, 2, false},
                      ExecCase{Backend::Reference, 2, true},
                      ExecCase{Backend::Reference, 7, true},
                      ExecCase{Backend::Wsa, 1, true},
                      ExecCase{Backend::Wsa, 7, true},
                      ExecCase{Backend::Spa, 1, true},
                      ExecCase{Backend::Spa, 2, false},
                      ExecCase{Backend::Spa, 2, true},
                      ExecCase{Backend::Spa, 7, true},
                      ExecCase{Backend::BitPlane, 1, true},
                      ExecCase{Backend::BitPlane, 2, false},
                      ExecCase{Backend::BitPlane, 7, true},
                      ExecCase{Backend::WsaE, 1, false},
                      ExecCase{Backend::WsaE, 1, true}),
    exec_name);

TEST_P(ExecutionMatrixTest, VerifiesAgainstReference) {
  const ExecCase ec = GetParam();
  LatticeEngine::Config c = base_config(ec.backend);
  c.threads = ec.threads;
  c.fast_kernel = ec.fast;
  LatticeEngine e(c);
  seed(e);
  e.advance(10);
  EXPECT_TRUE(e.verify_against_reference());
}

TEST_P(ExecutionMatrixTest, AgreesWithPlainSerialEngine) {
  const ExecCase ec = GetParam();
  LatticeEngine::Config c = base_config(ec.backend);
  c.threads = ec.threads;
  c.fast_kernel = ec.fast;
  LatticeEngine e(c);
  LatticeEngine::Config plain = base_config(Backend::Reference);
  plain.fast_kernel = false;
  LatticeEngine ref(plain);
  seed(e);
  seed(ref);
  e.advance(7);
  ref.advance(7);
  EXPECT_TRUE(e.state() == ref.state());
}

TEST(Engine, ReportsMeasuredRateAfterAdvance) {
  LatticeEngine e(base_config(Backend::Reference));
  seed(e);
  e.advance(20);
  const PerformanceReport r = e.report();
  EXPECT_GT(r.wall_seconds, 0);
  EXPECT_GT(r.measured_rate, 0);
  EXPECT_DOUBLE_EQ(r.measured_rate,
                   static_cast<double>(r.site_updates) / r.wall_seconds);
}

TEST(Engine, CustomRuleBackendEquivalence) {
  const lgca::LifeRule life;
  LatticeEngine::Config c = base_config(Backend::Wsa);
  c.custom_rule = &life;
  LatticeEngine wsa(c);
  c.backend = Backend::Reference;
  LatticeEngine ref(c);
  for (std::size_t i = 0; i < wsa.state().site_count(); ++i) {
    const auto v = static_cast<lgca::Site>((i * 2654435761u >> 7) & 1);
    wsa.state()[i] = v;
    ref.state()[i] = v;
  }
  wsa.advance(6);
  ref.advance(6);
  EXPECT_TRUE(wsa.state() == ref.state());
  EXPECT_THROW((void)wsa.gas_model(), Error);  // no gas configured
}

TEST(Engine, WsaReportMatchesDesignModel) {
  LatticeEngine e(base_config(Backend::Wsa));
  seed(e);
  e.advance(6);
  const PerformanceReport r = e.report();
  EXPECT_EQ(r.backend, Backend::Wsa);
  EXPECT_DOUBLE_EQ(r.bandwidth_bits_per_tick, 2.0 * 8 * 2);  // 2DP
  EXPECT_GT(r.updates_per_tick, 0);
  EXPECT_DOUBLE_EQ(r.modeled_rate, r.updates_per_tick * 10e6);
  EXPECT_GT(r.storage_sites, 0);
}

TEST(Engine, SpaReportUsesSliceBandwidth) {
  LatticeEngine e(base_config(Backend::Spa));
  seed(e);
  e.advance(3);
  const PerformanceReport r = e.report();
  EXPECT_DOUBLE_EQ(r.bandwidth_bits_per_tick, 2.0 * 8 * (32.0 / 8.0));
}

TEST(Engine, WsaEReportHasConstantBandwidthAndOffchipLedger) {
  LatticeEngine e(base_config(Backend::WsaE));
  seed(e);
  e.advance(6);
  const PerformanceReport r = e.report();
  EXPECT_EQ(r.backend, Backend::WsaE);
  // Main memory touches only the chain ends: 2D bits/tick, independent
  // of the pipeline depth (§5).
  EXPECT_DOUBLE_EQ(r.bandwidth_bits_per_tick, 2.0 * 8);
  // Off-chip ledger: k·(2L + 10) sites and k·4·D bits/tick for k = 3
  // stages over a 32-wide lattice.
  EXPECT_EQ(r.offchip_buffer_sites, 3 * (2 * 32 + 10));
  EXPECT_DOUBLE_EQ(r.offchip_buffer_bits_per_tick, 3 * 4.0 * 8);
  // The default line-buffer parts sustain full bandwidth.
  EXPECT_DOUBLE_EQ(r.buffer_bandwidth_fraction, 1.0);
  EXPECT_GT(r.updates_per_tick, 0);
  EXPECT_GT(r.storage_sites, 0);
}

TEST(Engine, ModeledRateRespectsPebblingCeiling) {
  // The §7 punchline as an executable assertion: no simulated design
  // exceeds R = B·O(S^(1/d)).
  for (const Backend b : {Backend::Wsa, Backend::Spa, Backend::WsaE}) {
    LatticeEngine e(base_config(b));
    seed(e);
    e.advance(6);
    const PerformanceReport r = e.report();
    ASSERT_GT(r.pebbling_rate_ceiling, 0);
    EXPECT_LT(r.modeled_rate, r.pebbling_rate_ceiling);
  }
}

TEST(Engine, ReferenceBackendReportsNoTicks) {
  LatticeEngine e(base_config(Backend::Reference));
  seed(e);
  e.advance(2);
  const PerformanceReport r = e.report();
  EXPECT_EQ(r.ticks, 0);
  EXPECT_DOUBLE_EQ(r.bandwidth_bits_per_tick, 0);
}

TEST(Engine, RejectsPeriodicPipelines) {
  LatticeEngine::Config c = base_config(Backend::Wsa);
  c.boundary = lgca::Boundary::Periodic;
  EXPECT_THROW(LatticeEngine{c}, Error);
}

TEST(PickSpaSliceWidth, PrefersDivisorNearPaperOptimum) {
  const arch::Technology t = arch::Technology::paper1987();
  // Corner is W ≈ 43: for a 256-wide lattice the best divisor is 32.
  EXPECT_EQ(pick_spa_slice_width(t, 256), 32);
  // 86 = 2·43: exact-ish divisor available.
  EXPECT_EQ(pick_spa_slice_width(t, 86), 43);
  // Prime width: only the trivial single slice divides.
  EXPECT_EQ(pick_spa_slice_width(t, 97), 97);
}

TEST(Engine, StatsAccumulateAcrossAdvances) {
  LatticeEngine e(base_config(Backend::Wsa));
  seed(e);
  e.advance(3);
  const auto first = e.report();
  e.advance(3);
  const auto second = e.report();
  EXPECT_EQ(second.site_updates, 2 * first.site_updates);
  EXPECT_EQ(second.ticks, 2 * first.ticks);
  EXPECT_EQ(second.generations, 6);
}

TEST(Engine, SaturatedGasBackendEquivalence) {
  LatticeEngine::Config c = base_config(Backend::Spa);
  c.gas = lgca::GasKind::FHP_III;
  LatticeEngine spa(c);
  c.backend = Backend::Reference;
  LatticeEngine ref(c);
  lgca::fill_random(spa.state(), spa.gas_model(), 0.3, 55, 0.2);
  lgca::fill_random(ref.state(), ref.gas_model(), 0.3, 55, 0.2);
  spa.advance(9);
  ref.advance(9);
  EXPECT_TRUE(spa.state() == ref.state());
}

TEST(Engine, DiffusionRuleThroughSpaBackend) {
  const lgca::DiffusionRule diffusion;
  LatticeEngine::Config c = base_config(Backend::Spa);
  c.custom_rule = &diffusion;
  LatticeEngine spa(c);
  c.backend = Backend::Reference;
  LatticeEngine ref(c);
  for (std::size_t i = 0; i < spa.state().site_count(); ++i) {
    const auto v = static_cast<lgca::Site>((i * 97) & 0xff);
    spa.state()[i] = v;
    ref.state()[i] = v;
  }
  spa.advance(5);
  ref.advance(5);
  EXPECT_TRUE(spa.state() == ref.state());
}

TEST(Engine, AdvanceZeroIsNoOp) {
  LatticeEngine e(base_config(Backend::Wsa));
  seed(e);
  const auto before = e.state();
  e.advance(0);
  EXPECT_TRUE(e.state() == before);
  EXPECT_EQ(e.generation(), 0);
}

}  // namespace
}  // namespace lattice::core
