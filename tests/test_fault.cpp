// Fault injection, online detection, and recovery (docs/ROBUSTNESS.md):
// unit tests for the fault primitives, detector coverage on both
// hardware simulators, and end-to-end engine recovery — the headline
// claim being that a run under transient bit flips finishes with a
// lattice bit-exact against the fault-free evolution.

#include <gtest/gtest.h>

#include "lattice/arch/spa.hpp"
#include "lattice/arch/wsa.hpp"
#include "lattice/core/engine.hpp"
#include "lattice/fault/fault.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"

namespace lattice {
namespace {

// ---- primitives ----

TEST(FaultPlan, DefaultConstructedIsUnarmed) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.armed());
  plan.buffer_flip_rate = 1e-9;
  EXPECT_TRUE(plan.armed());
  plan = {};
  plan.stuck.push_back({0, 0, 0, 0xFF});
  EXPECT_TRUE(plan.armed());
}

TEST(FaultInjector, RejectsInvalidPlans) {
  fault::FaultPlan plan;
  plan.buffer_flip_rate = 1.5;
  EXPECT_THROW(fault::FaultInjector{plan}, Error);
  plan = {};
  plan.side_drop_rate = -0.1;
  EXPECT_THROW(fault::FaultInjector{plan}, Error);
  plan = {};
  plan.stuck.push_back({-1, 0, 0x01, 0xFF});
  EXPECT_THROW(fault::FaultInjector{plan}, Error);
}

TEST(FaultInjector, DrawsAreDeterministicAndEpochKeyed) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.buffer_flip_rate = 1.0;  // every stored word flips one bit
  fault::FaultInjector a(plan);
  fault::FaultInjector b(plan);
  bool epoch_changes_some_draw = false;
  for (std::int64_t pos = 0; pos < 64; ++pos) {
    const lgca::Site va = a.corrupt_stored(3, pos, 0x2A);
    EXPECT_EQ(va, b.corrupt_stored(3, pos, 0x2A)) << "same plan, same draw";
    EXPECT_NE(va, 0x2A) << "rate 1.0 must always flip";
    EXPECT_EQ(std::popcount(static_cast<unsigned>(va ^ 0x2A)), 1)
        << "exactly one bit per transient";
  }
  b.bump_epoch();
  for (std::int64_t pos = 0; pos < 64; ++pos) {
    if (a.corrupt_stored(4, pos, 0x2A) != b.corrupt_stored(4, pos, 0x2A)) {
      epoch_changes_some_draw = true;
    }
  }
  EXPECT_TRUE(epoch_changes_some_draw) << "retries must redraw transients";
  EXPECT_EQ(a.counters().injected_flips, 128);
}

TEST(FaultInjector, StuckMaskCountsOnlyRealModifications) {
  fault::FaultPlan plan;
  plan.stuck.push_back({1, 2, 0x01, 0xFF});
  fault::FaultInjector inj(plan);
  EXPECT_TRUE(inj.has_stuck());
  EXPECT_EQ(inj.apply_stuck(0, 2, 0x00), 0x00) << "wrong stage untouched";
  EXPECT_EQ(inj.apply_stuck(1, 0, 0x00), 0x00) << "wrong lane untouched";
  EXPECT_EQ(inj.apply_stuck(1, 2, 0x01), 0x01) << "already-high bit";
  EXPECT_EQ(inj.counters().injected_stuck, 0);
  EXPECT_EQ(inj.apply_stuck(1, 2, 0x02), 0x03);
  EXPECT_EQ(inj.counters().injected_stuck, 1);
  EXPECT_EQ(inj.disable_stuck(), 1);
  EXPECT_FALSE(inj.has_stuck());
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.apply_stuck(1, 2, 0x02), 0x02) << "remapped PE is inert";
  EXPECT_EQ(inj.disable_stuck(), 0) << "second disable is a no-op";
  EXPECT_EQ(inj.remapped_lanes(), 1);
}

TEST(SiteOutflow, CountsOffLatticeStreamingDestinations) {
  const Extent ext{6, 5};
  for (const lgca::Topology topo :
       {lgca::Topology::Square4, lgca::Topology::Hex6}) {
    // Interior sites never drain, whatever their contents.
    EXPECT_EQ(fault::site_outflow(0x7F, {2, 2}, ext, topo), 0);
    // Rest particles (bit 6) never stream, even at a corner.
    EXPECT_EQ(fault::site_outflow(lgca::kRestBit, {0, 0}, ext, topo), 0);
    // Edge sites: exactly the channels whose neighbor is off-lattice.
    for (std::int64_t y = 0; y < ext.height; ++y) {
      for (std::int64_t x = 0; x < ext.width; ++x) {
        const lgca::Site all =
            static_cast<lgca::Site>((1u << lgca::channel_count(topo)) - 1);
        int expected = 0;
        for (int d = 0; d < lgca::channel_count(topo); ++d) {
          if (!ext.contains(lgca::neighbor_coord(topo, {x, y}, d))) ++expected;
        }
        EXPECT_EQ(fault::site_outflow(all, {x, y}, ext, topo), expected)
            << "(" << x << "," << y << ")";
      }
    }
  }
}

TEST(StageAudit, AggregationAndBalance) {
  fault::StageAudit a;
  EXPECT_TRUE(a.balanced()) << "invalid ledgers never complain";
  a.valid = true;
  a.in_mass = 10;
  a.outflow = 3;
  a.out_mass = 7;
  EXPECT_TRUE(a.balanced());
  // A particle crosses from slice a to slice b: a emits one fewer than
  // its own ledger predicts, b emits one more.
  a.out_mass = 6;
  EXPECT_FALSE(a.balanced());
  fault::StageAudit b;
  b.valid = true;
  b.in_mass = 5;
  b.out_mass = 6;
  a += b;
  EXPECT_TRUE(a.balanced()) << "imbalance can cancel in the aggregate";
  a.out_obstacles = 1;
  EXPECT_FALSE(a.balanced()) << "obstacle geometry is static";
}

// ---- simulator-level detection ----

lgca::SiteLattice make_gas_lattice(Extent ext, const lgca::GasRule& rule,
                                   std::uint64_t seed) {
  lgca::SiteLattice l(ext, lgca::Boundary::Null);
  lgca::fill_random(l, rule.model(), 0.3, seed, 0.15);
  return l;
}

TEST(WsaFault, ArmedButInertPlanDetectsNothing) {
  // An identity stuck mask arms every detector without changing a
  // single word: the run must be bit-exact and every ledger balanced.
  // This is the zero-false-positive guarantee of the audit machinery.
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const auto in = make_gas_lattice({48, 32}, rule, 9);
  arch::WsaPipeline clean({48, 32}, rule, 3, 2, 0, true);
  const auto want = clean.run(in);

  fault::FaultPlan plan;
  plan.stuck.push_back({0, 0, 0x00, 0xFF});  // identity masks
  fault::FaultInjector inj(plan);
  arch::WsaPipeline pipe({48, 32}, rule, 3, 2, 0, true, &inj);
  const auto got = pipe.run(in);
  EXPECT_TRUE(got == want);
  EXPECT_EQ(inj.counters().injected(), 0);
  EXPECT_EQ(inj.counters().detected(), 0);
}

TEST(WsaFault, EveryBufferFlipIsCaughtByParity) {
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const auto in = make_gas_lattice({48, 32}, rule, 9);
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.buffer_flip_rate = 1e-3;  // ~4.6 expected flips over 3 stages
  fault::FaultInjector inj(plan);
  arch::WsaPipeline pipe({48, 32}, rule, 3, 2, 0, true, &inj);
  (void)pipe.run(in);
  EXPECT_GT(inj.counters().injected_flips, 0);
  // Single-bit flips are caught with certainty: the parity shadow is
  // written from the true bus word and every in-range word is re-read
  // as its own update center. Each corrupted word reports once.
  EXPECT_EQ(inj.counters().detected_parity, inj.counters().injected_flips);
}

TEST(WsaFault, MassChangingStuckPeTripsConservation) {
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const auto in = make_gas_lattice({48, 32}, rule, 9);
  arch::WsaPipeline clean({48, 32}, rule, 3, 2, 0, true);
  const auto want = clean.run(in);

  fault::FaultPlan plan;
  plan.stuck.push_back({1, 1, 0x3F, 0xFF});  // forces all 6 channels high
  fault::FaultInjector inj(plan);
  arch::WsaPipeline pipe({48, 32}, rule, 3, 2, 0, true, &inj);
  const auto got = pipe.run(in);
  EXPECT_FALSE(got == want);
  EXPECT_GT(inj.counters().injected_stuck, 0);
  EXPECT_GE(inj.counters().detected_conservation, 1)
      << "stage 1's ledger must not balance";
}

TEST(SpaFault, ArmedButInertPlanDetectsNothingAndForcesCycleExact) {
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const auto in = make_gas_lattice({48, 32}, rule, 9);
  arch::SpaMachine clean({48, 32}, rule, 8, 2, 0, 1, true);
  const auto want = clean.run(in);

  fault::FaultPlan plan;
  plan.stuck.push_back({0, 0, 0x00, 0xFF});  // identity masks
  fault::FaultInjector inj(plan);
  // threads=4 would normally take the wavefront path; armed plans must
  // fall back to the cycle-exact walk where the buffers live.
  arch::SpaMachine spa({48, 32}, rule, 8, 2, 0, 4, true, &inj);
  const auto got = spa.run(in);
  EXPECT_TRUE(got == want);
  EXPECT_EQ(inj.counters().injected(), 0);
  EXPECT_EQ(inj.counters().detected(), 0);
  EXPECT_EQ(spa.stats().ticks, clean.stats().ticks)
      << "fallback must reproduce the machine's tick count";
}

TEST(SpaFault, EveryBufferFlipIsCaughtByParity) {
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const auto in = make_gas_lattice({48, 32}, rule, 9);
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.buffer_flip_rate = 1e-3;
  fault::FaultInjector inj(plan);
  arch::SpaMachine spa({48, 32}, rule, 8, 2, 0, 1, true, &inj);
  (void)spa.run(in);
  EXPECT_GT(inj.counters().injected_flips, 0);
  EXPECT_EQ(inj.counters().detected_parity, inj.counters().injected_flips);
}

TEST(SpaFault, SideChannelCorruptionIsCaughtByLinkChecks) {
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const auto in = make_gas_lattice({48, 32}, rule, 9);
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.side_flip_rate = 0.01;
  plan.side_drop_rate = 0.01;
  fault::FaultInjector inj(plan);
  arch::SpaMachine spa({48, 32}, rule, 8, 2, 0, 1, true, &inj);
  (void)spa.run(in);
  EXPECT_GT(inj.counters().injected_side, 0);
  // Links carry parity and framing: every *changed* word is reported.
  // (A dropped word that was already zero alters nothing — and cannot
  // corrupt the physics either.)
  EXPECT_GE(inj.counters().detected_side, 1);
}

TEST(SpaFault, MassChangingStuckChipTripsAggregateConservation) {
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const auto in = make_gas_lattice({48, 32}, rule, 9);
  fault::FaultPlan plan;
  plan.stuck.push_back({0, 2, 0x3F, 0xFF});  // depth 0, slice 2
  fault::FaultInjector inj(plan);
  arch::SpaMachine spa({48, 32}, rule, 8, 2, 0, 1, true, &inj);
  (void)spa.run(in);
  EXPECT_GT(inj.counters().injected_stuck, 0);
  EXPECT_GE(inj.counters().detected_conservation, 1)
      << "per-slice ledgers aggregate per depth and must not balance";
}

// ---- engine-level recovery ----

core::LatticeEngine::Config engine_config(core::Backend b, Extent ext) {
  core::LatticeEngine::Config c;
  c.extent = ext;
  c.gas = lgca::GasKind::FHP_II;
  c.backend = b;
  c.pipeline_depth = 4;
  c.wsa_width = 4;
  c.spa_slice_width = ext.width >= 256 ? 32 : 8;
  return c;
}

TEST(EngineFault, ArmedPlanRejectsReferenceBackend) {
  auto c = engine_config(core::Backend::Reference, {32, 24});
  c.fault.buffer_flip_rate = 1e-6;
  EXPECT_THROW(core::LatticeEngine{c}, Error);
}

TEST(EngineFault, UnarmedPlanLeavesReportClean) {
  auto c = engine_config(core::Backend::Wsa, {32, 24});
  core::LatticeEngine e(c);
  lgca::fill_random(e.state(), e.gas_model(), 0.3, 7, 0.15);
  e.advance(8);
  const auto r = e.report();
  EXPECT_EQ(r.faults_injected, 0);
  EXPECT_EQ(r.faults_detected, 0);
  EXPECT_EQ(r.rollbacks, 0);
  EXPECT_EQ(r.checkpoints, 0);
  EXPECT_EQ(e.fault_counters().injected(), 0);
  EXPECT_EQ(r.committed_updates, 32 * 24 * 8);
  EXPECT_DOUBLE_EQ(r.effective_rate, r.modeled_rate)
      << "fault-free effective rate collapses onto the modeled rate";
}

class RecoveryTest : public ::testing::TestWithParam<core::Backend> {};

INSTANTIATE_TEST_SUITE_P(HardwareBackends, RecoveryTest,
                         ::testing::Values(core::Backend::Wsa,
                                           core::Backend::Spa,
                                           core::Backend::WsaE),
                         [](const auto& info) {
                           switch (info.param) {
                             case core::Backend::Wsa: return "Wsa";
                             case core::Backend::Spa: return "Spa";
                             default: return "WsaE";
                           }
                         });

// The acceptance scenario: a 256×256 FHP-II run under transient buffer
// flips at ~1e-6 per stored word. Every corruption must be detected,
// rolled back, and re-executed, leaving the final lattice bit-exact
// against the fault-free evolution. Seed 10 deterministically yields
// one flip in this span at epoch 0 and a clean retry at epoch 1.
TEST_P(RecoveryTest, RecoversBitExactFromTransientFlips) {
  auto c = engine_config(GetParam(), {256, 256});
  c.fault.seed = 10;
  c.fault.buffer_flip_rate = 1e-6;
  core::LatticeEngine faulty(c);
  core::LatticeEngine clean(engine_config(GetParam(), {256, 256}));
  lgca::fill_random(faulty.state(), faulty.gas_model(), 0.3, 123, 0.15);
  lgca::fill_random(clean.state(), clean.gas_model(), 0.3, 123, 0.15);

  faulty.advance(12);
  clean.advance(12);

  EXPECT_TRUE(faulty.state() == clean.state())
      << "recovered run must be bit-exact against the fault-free run";
  const auto r = faulty.report();
  EXPECT_GT(r.faults_injected, 0) << "the scenario must actually fault";
  EXPECT_GE(r.faults_detected, r.faults_injected)
      << "every transient flip is caught";
  EXPECT_GE(r.rollbacks, 1);
  EXPECT_EQ(r.faults_corrected, r.faults_detected)
      << "every detection was discarded by a rollback";
  EXPECT_GE(r.checkpoints, 1);
  EXPECT_EQ(r.committed_updates, 256 * 256 * 12);
  EXPECT_GT(r.site_updates, r.committed_updates)
      << "redone passes cost real work";
  EXPECT_LT(r.effective_rate, r.modeled_rate)
      << "recovery overhead must show up in the effective rate";
  EXPECT_TRUE(faulty.verify_against_reference());
}

TEST_P(RecoveryTest, CheckpointIntervalSpanningMultiplePasses) {
  // interval 8 > depth 4: a detection mid-interval rolls back two
  // passes' worth of work, which must then replay exactly.
  auto c = engine_config(GetParam(), {64, 48});
  c.fault.seed = 21;
  c.fault.buffer_flip_rate = 5e-5;
  c.checkpoint_interval = 8;
  core::LatticeEngine faulty(c);
  core::LatticeEngine clean(engine_config(GetParam(), {64, 48}));
  lgca::fill_random(faulty.state(), faulty.gas_model(), 0.3, 77, 0.15);
  lgca::fill_random(clean.state(), clean.gas_model(), 0.3, 77, 0.15);
  faulty.advance(16);
  clean.advance(16);
  EXPECT_TRUE(faulty.state() == clean.state());
  EXPECT_GT(faulty.report().faults_injected, 0);
  EXPECT_GE(faulty.report().rollbacks, 1);
}

TEST(EngineFault, RetryBudgetExhaustionThrowsCorruptionError) {
  // A persistent mass-changing stuck PE replays on every retry; WSA has
  // no remap path, so the bounded budget must give up loudly.
  auto c = engine_config(core::Backend::Wsa, {32, 24});
  c.fault.stuck.push_back({0, 1, 0x3F, 0xFF});
  c.max_retries = 1;
  core::LatticeEngine e(c);
  lgca::fill_random(e.state(), e.gas_model(), 0.3, 7, 0.15);
  try {
    e.advance(8);
    FAIL() << "expected CorruptionError";
  } catch (const fault::CorruptionError& err) {
    EXPECT_GT(err.counters().detected(), 0);
    EXPECT_GT(err.counters().injected_stuck, 0);
  }
  EXPECT_EQ(e.generation(), 0) << "no corrupted generation was committed";
}

TEST(EngineFault, SpaRemapsStuckSliceAndDegradesGracefully) {
  auto c = engine_config(core::Backend::Spa, {64, 48});
  c.fault.stuck.push_back({0, 2, 0x3F, 0xFF});  // depth 0, slice 2
  c.max_retries = 1;
  core::LatticeEngine faulty(c);
  core::LatticeEngine clean(engine_config(core::Backend::Spa, {64, 48}));
  lgca::fill_random(faulty.state(), faulty.gas_model(), 0.3, 7, 0.15);
  lgca::fill_random(clean.state(), clean.gas_model(), 0.3, 7, 0.15);
  faulty.advance(12);
  clean.advance(12);
  const auto r = faulty.report();
  EXPECT_TRUE(faulty.state() == clean.state())
      << "after remapping, surviving pipelines produce the exact physics";
  EXPECT_EQ(r.remapped_slices, 1);
  EXPECT_GE(r.rollbacks, 1);
  EXPECT_GT(r.ticks, clean.report().ticks)
      << "degraded operation pays the remap tick penalty";
  EXPECT_LT(r.effective_rate, clean.report().effective_rate);
}

}  // namespace
}  // namespace lattice
