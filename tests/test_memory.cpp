// Banked-memory model: when does the paper's "full bandwidth"
// assumption (§6, footnote 2) actually hold?

#include <gtest/gtest.h>

#include "lattice/arch/memory.hpp"

namespace lattice::arch {
namespace {

MemoryResult run(const MemoryConfig& cfg,
                 const std::vector<std::vector<std::int64_t>>& sched) {
  BankedMemory mem(cfg);
  return mem.service(sched);
}

TEST(BankedMemory, RasterStreamWithEnoughBanksHasNoStalls) {
  // banks ≥ busy·P: perfect interleave.
  const auto sched = wsa_address_schedule({64, 16}, /*batch=*/1);
  const auto r = run({.banks = 4, .bank_busy_ticks = 4}, sched);
  EXPECT_EQ(r.stalls, 0);
  EXPECT_EQ(r.ticks, static_cast<std::int64_t>(sched.size()));
  EXPECT_EQ(r.requests, 64 * 16);
}

TEST(BankedMemory, TooFewBanksThrottleByTheBusyRatio) {
  // One bank, busy 4: every access serializes 4 ticks.
  const auto sched = wsa_address_schedule({32, 8}, 1);
  const auto r = run({.banks = 1, .bank_busy_ticks = 4}, sched);
  EXPECT_NEAR(r.bandwidth_fraction(static_cast<std::int64_t>(sched.size())),
              0.25, 0.01);
}

TEST(BankedMemory, WideRasterNeedsProportionallyMoreBanks) {
  const auto sched = wsa_address_schedule({64, 16}, /*batch=*/4);
  const auto enough = run({.banks = 16, .bank_busy_ticks = 4}, sched);
  EXPECT_EQ(enough.stalls, 0);
  const auto short_of = run({.banks = 8, .bank_busy_ticks = 4}, sched);
  EXPECT_GT(short_of.stalls, 0);
}

TEST(BankedMemory, SpaPatternCollapsesWhenSliceWidthSharesBankFactor) {
  // W = 8 slices against 8 banks: every staggered stream lands on the
  // same bank each tick — the row-staggered pattern breaks the naive
  // interleave completely.
  const Extent e{64, 16};
  const auto sched = spa_address_schedule(e, 8);
  const auto bad = run({.banks = 8, .bank_busy_ticks = 4}, sched);
  EXPECT_LT(bad.bandwidth_fraction(static_cast<std::int64_t>(sched.size())),
            0.20);
}

TEST(BankedMemory, CoprimeBankCountRestoresSpaBandwidth) {
  const Extent e{64, 16};
  const auto sched = spa_address_schedule(e, 8);
  // 13 banks, gcd(13, 8) = 1: slices spread across banks.
  const auto good = run({.banks = 13, .bank_busy_ticks = 1}, sched);
  EXPECT_GT(good.bandwidth_fraction(static_cast<std::int64_t>(sched.size())),
            0.85);
  const auto bad = run({.banks = 16, .bank_busy_ticks = 1}, sched);
  EXPECT_GT(good.bandwidth_fraction(static_cast<std::int64_t>(sched.size())),
            bad.bandwidth_fraction(static_cast<std::int64_t>(sched.size())));
}

TEST(BankedMemory, SpaScheduleCoversEveryAddressOnce) {
  const Extent e{24, 6};
  const auto sched = spa_address_schedule(e, 8);
  std::vector<int> seen(static_cast<std::size_t>(e.area()), 0);
  std::int64_t total = 0;
  for (const auto& tick : sched) {
    for (const std::int64_t a : tick) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, e.area());
      ++seen[static_cast<std::size_t>(a)];
      ++total;
    }
  }
  EXPECT_EQ(total, e.area());
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(BankedMemory, SpaSteadyStateServesOneRequestPerSlicePerTick) {
  const Extent e{32, 8};
  const auto sched = spa_address_schedule(e, 8);
  // Middle ticks carry all 4 slices.
  bool saw_full = false;
  for (const auto& tick : sched) {
    if (tick.size() == 4) saw_full = true;
    EXPECT_LE(tick.size(), 4u);
  }
  EXPECT_TRUE(saw_full);
}

TEST(BankedMemory, RejectsBadConfiguration) {
  EXPECT_THROW(BankedMemory({.banks = 0, .bank_busy_ticks = 1}), Error);
  EXPECT_THROW(BankedMemory({.banks = 4, .bank_busy_ticks = 0}), Error);
  EXPECT_THROW(spa_address_schedule({10, 4}, 3), Error);
  EXPECT_THROW(wsa_address_schedule({10, 4}, 0), Error);
  BankedMemory mem({.banks = 2, .bank_busy_ticks = 1});
  EXPECT_THROW(mem.service({{-1}}), Error);
}

TEST(BankedMemory, EmptyScheduleIsFree) {
  BankedMemory mem({.banks = 2, .bank_busy_ticks = 2});
  const auto r = mem.service({});
  EXPECT_EQ(r.ticks, 0);
  EXPECT_EQ(r.requests, 0);
}

}  // namespace
}  // namespace lattice::arch
