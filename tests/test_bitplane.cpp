// PlaneKernel and Backend::BitPlane — the multi-spin coded update
// against the semantic oracle. Collision equality is exhaustive (all
// 256 site states through the full pack→shift→collide→unpack pipeline,
// several times so both chirality draws occur); lattice equality runs
// 100+ generations over both boundary modes, awkward extents, thread
// counts, and the engine front door, including four-way agreement with
// the WSA and SPA architecture simulators.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lattice/core/engine.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/plane_kernel.hpp"
#include "lattice/lgca/plane_simd.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::lgca {
namespace {

const char* kind_name(GasKind k) {
  switch (k) {
    case GasKind::HPP: return "HPP";
    case GasKind::FHP_I: return "FHP_I";
    case GasKind::FHP_II: return "FHP_II";
    case GasKind::FHP_III: return "FHP_III";
  }
  return "unknown";
}

/// One bit-plane generation of `lat` at time t, via the full
/// pack → prime → halo → update → unpack pipeline (the same calls
/// plane_gas_run makes once per run and once per generation).
SiteLattice plane_next(const SiteLattice& lat, const PlaneKernel& kernel,
                       std::int64_t t, std::int64_t tile_words = 0) {
  PlaneLattice cur(lat);
  PlaneLattice next(lat.extent(), lat.boundary());
  kernel.prime_static_planes(cur, next);
  cur.prepare_shift_halo(kernel.halo_planes(), 0, lat.extent().height);
  kernel.update_rows(next, cur, t, 0, lat.extent().height, tile_words);
  return next.to_sites();
}

class BitPlaneGasTest : public ::testing::TestWithParam<GasKind> {};

INSTANTIATE_TEST_SUITE_P(Gases, BitPlaneGasTest,
                         ::testing::Values(GasKind::HPP, GasKind::FHP_I,
                                           GasKind::FHP_II),
                         [](const auto& info) {
                           return std::string(kind_name(info.param));
                         });

TEST_P(BitPlaneGasTest, ExhaustiveSiteStatesThroughFullKernel) {
  // A uniform periodic lattice makes every gathered state equal the
  // uniform value, so sweeping all 256 values exercises the complete
  // boolean-algebra collision, including rest and obstacle planes.
  // Several times t so both chirality variants fire at pair states.
  const GasRule rule(GetParam());
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  const Extent e{6, 4};
  for (int s = 0; s < 256; ++s) {
    SiteLattice lat(e, Boundary::Periodic);
    for (std::size_t i = 0; i < lat.site_count(); ++i)
      lat[i] = static_cast<Site>(s);
    for (std::int64_t t = 0; t < 4; ++t) {
      const SiteLattice want = reference_next(lat, rule, t);
      const SiteLattice got = plane_next(lat, kernel, t);
      ASSERT_TRUE(got == want)
          << kind_name(GetParam()) << " state " << s << " t " << t;
    }
  }
}

TEST_P(BitPlaneGasTest, SingleStepsMatchReferenceOnAwkwardExtents) {
  // Widths crossing every word-boundary regime: sub-word, exactly one
  // word, word + 1, and a multi-word row with a partial tail.
  const GasRule rule(GetParam());
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  for (const Boundary b : {Boundary::Null, Boundary::Periodic}) {
    for (const Extent e : {Extent{1, 1}, Extent{33, 5}, Extent{64, 4},
                           Extent{65, 7}, Extent{130, 9}}) {
      SiteLattice lat(e, b);
      fill_random(lat, rule.model(), 0.35, 77, 0.25);
      if (e.width > 8) add_obstacle_disk(lat, e.width / 2, e.height / 2, 2);
      for (std::int64_t t = 0; t < 6; ++t) {
        const SiteLattice want = reference_next(lat, rule, t);
        const SiteLattice got = plane_next(lat, kernel, t);
        ASSERT_TRUE(got == want) << kind_name(GetParam()) << " " << e.width
                                 << "x" << e.height << " t " << t;
        lat = want;
      }
    }
  }
}

TEST_P(BitPlaneGasTest, HundredGenerationsBitIdentical128x128) {
  // The acceptance bar: >= 100 generations on 128x128, both boundary
  // modes, bit-identical to the golden reference.
  const GasRule rule(GetParam());
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  for (const Boundary b : {Boundary::Null, Boundary::Periodic}) {
    SiteLattice ref({128, 128}, b);
    add_obstacle_disk(ref, 64, 64, 9);
    fill_flow(ref, rule.model(), 0.3, 0.1, 2024);
    SiteLattice planes = ref;
    reference_run(ref, rule, 100);
    bitplane_gas_run(planes, kernel, 100);
    EXPECT_TRUE(planes == ref)
        << kind_name(GetParam())
        << (b == Boundary::Null ? " null" : " periodic");
  }
}

TEST_P(BitPlaneGasTest, NonzeroTimeOriginMatchesReference) {
  const GasRule rule(GetParam());
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  SiteLattice ref({65, 17}, Boundary::Periodic);
  fill_random(ref, rule.model(), 0.4, 5, 0.1);
  SiteLattice planes = ref;
  reference_run(ref, rule, 20, /*t0=*/13);
  bitplane_gas_run(planes, kernel, 20, /*t0=*/13);
  EXPECT_TRUE(planes == ref) << kind_name(GetParam());
}

TEST_P(BitPlaneGasTest, TileSeamsAreInvisible) {
  // A pathological one-word tile maximizes tile seams; output must not
  // depend on the tile size.
  const GasRule rule(GetParam());
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  SiteLattice lat({300, 11}, Boundary::Periodic);
  fill_random(lat, rule.model(), 0.3, 9, 0.2);
  const SiteLattice whole = plane_next(lat, kernel, 2);
  const SiteLattice tiled = plane_next(lat, kernel, 2, /*tile_words=*/1);
  EXPECT_TRUE(whole == tiled) << kind_name(GetParam());
}

TEST(PlaneKernel, RejectsGasesWithoutBooleanForm) {
  EXPECT_TRUE(PlaneKernel::supports(GasKind::HPP));
  EXPECT_TRUE(PlaneKernel::supports(GasKind::FHP_I));
  EXPECT_TRUE(PlaneKernel::supports(GasKind::FHP_II));
  EXPECT_FALSE(PlaneKernel::supports(GasKind::FHP_III));
  EXPECT_THROW(PlaneKernel::get(GasKind::FHP_III), Error);
}

TEST(PlaneKernel, TryGetDetectsSupportedGasRulesOnly) {
  const GasRule fhp2(GasKind::FHP_II);
  EXPECT_EQ(PlaneKernel::try_get(fhp2), &PlaneKernel::get(GasKind::FHP_II));
  const GasRule fhp3(GasKind::FHP_III);
  EXPECT_EQ(PlaneKernel::try_get(fhp3), nullptr);
  const LifeRule life;
  EXPECT_EQ(PlaneKernel::try_get(life), nullptr);
}

TEST(PlaneKernel, ZeroGenerationsAndEmptyLatticeAreNoOps) {
  const PlaneKernel& kernel = PlaneKernel::get(GasKind::HPP);
  const GasRule rule(GasKind::HPP);
  SiteLattice lat({17, 3}, Boundary::Null);
  fill_random(lat, rule.model(), 0.4, 3);
  const SiteLattice before = lat;
  bitplane_gas_run(lat, kernel, 0);
  EXPECT_TRUE(lat == before);
}

// Named to match the CI thread-sanitizer filter (see ci.yml): these are
// the runs where the banded fan-out must be race-free.
class BitPlaneParallelTest : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(Workers, BitPlaneParallelTest,
                         ::testing::Values(1u, 2u, 7u, 64u));

TEST_P(BitPlaneParallelTest, AnyWorkerCountIsBitIdenticalToSerial) {
  // band_grain_words = 1 forces the planner to actually split a
  // lattice this small (the default grain floor would collapse it to
  // one inline band, which is the production behavior but not the
  // banded code path this test exists to race-check).
  const unsigned threads = GetParam();
  const GasRule rule(GasKind::FHP_II);
  const PlaneKernel& kernel = PlaneKernel::get(GasKind::FHP_II);
  for (const Boundary b : {Boundary::Null, Boundary::Periodic}) {
    SiteLattice serial({130, 17}, b);
    add_obstacle_disk(serial, 65, 8, 4);
    fill_random(serial, rule.model(), 0.3, 21, 0.15);
    SiteLattice banded = serial;
    bitplane_gas_run(serial, kernel, 15, /*t0=*/1, /*threads=*/1);
    bitplane_gas_run(banded, kernel, 15, /*t0=*/1, threads,
                     /*band_grain_words=*/1);
    EXPECT_TRUE(serial == banded) << "threads " << threads;
  }
}

TEST(BitPlaneParallel, DefaultGrainCollapsesSmallLatticesToOneBand) {
  // Production behavior on sub-megasite lattices: the grain floor means
  // every thread count runs the same inline single-band loop, so the
  // result is trivially identical and no rendezvous is paid.
  const GasRule rule(GasKind::FHP_I);
  const PlaneKernel& kernel = PlaneKernel::get(GasKind::FHP_I);
  SiteLattice one({256, 64}, Boundary::Periodic);
  fill_random(one, rule.model(), 0.3, 5, 0.1);
  SiteLattice eight = one;
  bitplane_gas_run(one, kernel, 12, 0, 1);
  bitplane_gas_run(eight, kernel, 12, 0, 8);
  EXPECT_TRUE(one == eight);
}

TEST(BitPlaneParallel, SameSeedOneVsEightThreadsIsDeterministic) {
  // Multi-thread determinism end to end: build two lattices from the
  // same seed, advance one serially and one on 8 forced bands for many
  // generations, and require the full state to match bit for bit —
  // no accumulation of band-edge or scheduling nondeterminism.
  const GasRule rule(GasKind::FHP_II);
  const PlaneKernel& kernel = PlaneKernel::get(GasKind::FHP_II);
  SiteLattice serial({320, 96}, Boundary::Periodic);
  fill_random(serial, rule.model(), 0.32, 4242, 0.12);
  add_obstacle_disk(serial, 160, 48, 11);
  SiteLattice banded({320, 96}, Boundary::Periodic);
  fill_random(banded, rule.model(), 0.32, 4242, 0.12);
  add_obstacle_disk(banded, 160, 48, 11);
  ASSERT_TRUE(serial == banded);  // same seed ⇒ same start
  bitplane_gas_run(serial, kernel, 50, 0, 1);
  bitplane_gas_run(banded, kernel, 50, 0, 8, /*band_grain_words=*/16);
  EXPECT_TRUE(serial == banded);
}

// ---- SIMD dispatch layer -------------------------------------------
//
// The vector spans only engage on rows wider than one vector of words
// (the scalar span owns the masked tail and any sub-vector remainder),
// so every lattice below is at least 640 sites wide: 10 words — wide
// enough for full AVX-512 blocks plus an overlapping final block and a
// scalar tail.

std::vector<SimdLevel> supported_vector_levels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx512}) {
    if (simd_supported(level)) levels.push_back(level);
  }
  return levels;
}

TEST(PlaneSimd, ScalarAlwaysPresentAndActiveLevelSupported) {
  EXPECT_TRUE(simd_compiled(SimdLevel::Scalar));
  EXPECT_TRUE(simd_supported(SimdLevel::Scalar));
  EXPECT_TRUE(simd_supported(plane_simd_active()));
  const PlaneSpanOps& scalar = plane_span_ops(SimdLevel::Scalar);
  EXPECT_STREQ(scalar.name, "scalar64");
  EXPECT_EQ(scalar.width_bits, 64);
}

TEST(PlaneSimd, UnsupportedLevelActivationThrows) {
  for (const SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx512}) {
    if (!simd_supported(level)) {
      EXPECT_THROW(plane_simd_set_active(level), Error);
    }
  }
}

TEST(PlaneSimd, ScopedLevelRestoresPrevious) {
  const SimdLevel before = plane_simd_active();
  {
    const ScopedSimdLevel pin(SimdLevel::Scalar);
    EXPECT_EQ(plane_simd_active(), SimdLevel::Scalar);
  }
  EXPECT_EQ(plane_simd_active(), before);
}

TEST_P(BitPlaneGasTest, ExhaustiveSiteStatesAgreeAcrossSimdLevels) {
  // All 256 uniform site states on a lattice wide enough that the
  // vector path owns most of each row, each compiled+supported vector
  // level against the pinned scalar kernel, several times t so both
  // chirality variants fire. Skips (rather than silently passing) on
  // hosts where no vector level runs.
  const std::vector<SimdLevel> levels = supported_vector_levels();
  if (levels.empty()) {
    GTEST_SKIP() << "no vector SIMD level compiled+supported on this host";
  }
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  const Extent e{640, 2};
  for (int s = 0; s < 256; ++s) {
    SiteLattice lat(e, Boundary::Periodic);
    for (std::size_t i = 0; i < lat.site_count(); ++i)
      lat[i] = static_cast<Site>(s);
    for (std::int64_t t = 0; t < 3; ++t) {
      SiteLattice scalar_out;
      {
        const ScopedSimdLevel pin(SimdLevel::Scalar);
        scalar_out = plane_next(lat, kernel, t);
      }
      for (const SimdLevel level : levels) {
        const ScopedSimdLevel pin(level);
        const SiteLattice got = plane_next(lat, kernel, t);
        ASSERT_TRUE(got == scalar_out)
            << kind_name(GetParam()) << " state " << s << " t " << t
            << " level " << to_string(level);
      }
    }
  }
}

TEST_P(BitPlaneGasTest, VectorWidthsWithAwkwardTailsAgreeWithScalar) {
  // Widths straddling every vector-block boundary regime: not a
  // multiple of 256 or 512, one bit past a block, one bit short, and a
  // masked tail in the overlapping-final-block window. Both boundary
  // modes, multi-generation so halo errors compound visibly.
  const GasRule rule(GetParam());
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  const std::vector<SimdLevel> levels = supported_vector_levels();
  if (levels.empty()) {
    GTEST_SKIP() << "no vector SIMD level compiled+supported on this host";
  }
  for (const Boundary b : {Boundary::Null, Boundary::Periodic}) {
    for (const std::int64_t width :
         {std::int64_t{511}, std::int64_t{513}, std::int64_t{575},
          std::int64_t{640}, std::int64_t{1000}, std::int64_t{1025}}) {
      SiteLattice lat({width, 5}, b);
      fill_random(lat, rule.model(), 0.35, width * 7 + 1, 0.2);
      add_obstacle_disk(lat, width / 2, 2, 2);
      for (std::int64_t t = 0; t < 4; ++t) {
        SiteLattice scalar_out;
        {
          const ScopedSimdLevel pin(SimdLevel::Scalar);
          scalar_out = plane_next(lat, kernel, t);
        }
        for (const SimdLevel level : levels) {
          const ScopedSimdLevel pin(level);
          const SiteLattice got = plane_next(lat, kernel, t);
          ASSERT_TRUE(got == scalar_out)
              << kind_name(GetParam()) << " width " << width << " t " << t
              << " level " << to_string(level)
              << (b == Boundary::Null ? " null" : " periodic");
        }
        lat = scalar_out;
      }
    }
  }
}

TEST_P(BitPlaneGasTest, MultiGenerationRunsMatchReferenceAtEachLevel) {
  // End-to-end (pack → N generations → unpack) against the semantic
  // oracle at every supported level, vector-engaging width.
  const GasRule rule(GetParam());
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  SiteLattice ref({640, 24}, Boundary::Null);
  add_obstacle_disk(ref, 320, 12, 6);
  fill_flow(ref, rule.model(), 0.3, 0.1, 808);
  const SiteLattice start = ref;
  reference_run(ref, rule, 25);
  for (const SimdLevel level :
       {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
    if (!simd_supported(level)) continue;
    const ScopedSimdLevel pin(level);
    SiteLattice lat = start;
    bitplane_gas_run(lat, kernel, 25);
    EXPECT_TRUE(lat == ref)
        << kind_name(GetParam()) << " level " << to_string(level);
  }
}

}  // namespace
}  // namespace lattice::lgca

namespace lattice::core {
namespace {

using lgca::Boundary;
using lgca::GasKind;
using lgca::SiteLattice;

const char* kind_name_of(GasKind gas) {
  return gas == GasKind::HPP ? "HPP" : "FHP";
}

LatticeEngine::Config bitplane_config(GasKind gas, Boundary b,
                                      unsigned threads = 1) {
  LatticeEngine::Config cfg;
  cfg.extent = {128, 128};
  cfg.gas = gas;
  cfg.boundary = b;
  cfg.backend = Backend::BitPlane;
  cfg.threads = threads;
  return cfg;
}

TEST(EngineBitPlane, MatchesReferenceBackendOverHistory) {
  for (const GasKind gas : {GasKind::HPP, GasKind::FHP_II}) {
    for (const Boundary b : {Boundary::Null, Boundary::Periodic}) {
      LatticeEngine::Config ref_cfg = bitplane_config(gas, b);
      ref_cfg.backend = Backend::Reference;
      LatticeEngine ref(ref_cfg);
      LatticeEngine bits(bitplane_config(gas, b));
      lgca::add_obstacle_disk(ref.state(), 40, 64, 6);
      lgca::fill_flow(ref.state(), ref.gas_model(), 0.3, 0.1, 99);
      bits.state() = ref.state();
      // Split advances so generation_ threads through as t0 correctly.
      ref.advance(60);
      ref.advance(47);
      bits.advance(60);
      bits.advance(47);
      EXPECT_TRUE(ref.state() == bits.state());
      EXPECT_EQ(bits.generation(), 107);
      EXPECT_TRUE(bits.verify_against_reference());
    }
  }
}

TEST(EngineBitPlane, FourBackendsAgreeBitForBit) {
  // BitPlane == Reference == Wsa == Spa on the same history: the
  // boolean-algebra kernel, the byte LUT, and both architecture
  // simulators are all views of one update semantics.
  for (const GasKind gas : {GasKind::HPP, GasKind::FHP_II}) {
    SiteLattice final_state[4];
    int i = 0;
    for (const Backend backend : {Backend::BitPlane, Backend::Reference,
                                  Backend::Wsa, Backend::Spa}) {
      LatticeEngine::Config cfg = bitplane_config(gas, Boundary::Null);
      cfg.backend = backend;
      cfg.pipeline_depth = 4;
      cfg.wsa_width = 2;
      LatticeEngine engine(cfg);
      lgca::add_obstacle_disk(engine.state(), 64, 64, 10);
      lgca::fill_flow(engine.state(), engine.gas_model(), 0.28, 0.08, 7);
      engine.advance(12);
      final_state[i++] = engine.state();
    }
    EXPECT_TRUE(final_state[0] == final_state[1]) << kind_name_of(gas);
    EXPECT_TRUE(final_state[0] == final_state[2]) << kind_name_of(gas);
    EXPECT_TRUE(final_state[0] == final_state[3]) << kind_name_of(gas);
  }
}

TEST(EngineBitPlane, CheckpointRestoreReplaysExactly) {
  LatticeEngine engine(bitplane_config(GasKind::FHP_II, Boundary::Periodic));
  lgca::fill_random(engine.state(), engine.gas_model(), 0.35, 17, 0.1);
  engine.advance(25);
  const EngineCheckpoint ckpt = engine.checkpoint();
  engine.advance(30);
  const SiteLattice first = engine.state();
  engine.restore(ckpt);
  EXPECT_EQ(engine.generation(), 25);
  engine.advance(30);
  EXPECT_TRUE(engine.state() == first);
}

TEST(EngineBitPlane, ThreadsComposeWithEngine) {
  LatticeEngine serial(bitplane_config(GasKind::FHP_I, Boundary::Null));
  LatticeEngine banded(bitplane_config(GasKind::FHP_I, Boundary::Null, 8));
  lgca::fill_flow(serial.state(), serial.gas_model(), 0.3, 0.1, 3);
  banded.state() = serial.state();
  serial.advance(40);
  banded.advance(40);
  EXPECT_TRUE(serial.state() == banded.state());
}

TEST(EngineBitPlane, ReportCountsSoftwareWorkOnly) {
  LatticeEngine engine(bitplane_config(GasKind::HPP, Boundary::Null));
  lgca::fill_random(engine.state(), engine.gas_model(), 0.4, 11);
  engine.advance(10);
  const PerformanceReport r = engine.report();
  EXPECT_EQ(r.backend, Backend::BitPlane);
  EXPECT_EQ(r.generations, 10);
  EXPECT_EQ(r.site_updates, 128 * 128 * 10);
  EXPECT_EQ(r.ticks, 0);                      // no simulated datapath
  EXPECT_EQ(r.bandwidth_bits_per_tick, 0.0);  // no modeled bandwidth
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.measured_rate, 0.0);
}

TEST(EngineBitPlane, RejectsUnsupportedConfigurations) {
  // FHP-III has no boolean-form kernel.
  LatticeEngine::Config cfg = bitplane_config(GasKind::FHP_III,
                                              Boundary::Null);
  EXPECT_THROW(LatticeEngine{cfg}, Error);
  // Custom rules have no boolean form either.
  const lgca::LifeRule life;
  cfg = bitplane_config(GasKind::HPP, Boundary::Null);
  cfg.custom_rule = &life;
  EXPECT_THROW(LatticeEngine{cfg}, Error);
  // Fault injection lives in the hardware simulators' buffers.
  cfg = bitplane_config(GasKind::HPP, Boundary::Null);
  cfg.fault.buffer_flip_rate = 1e-3;
  EXPECT_THROW(LatticeEngine{cfg}, Error);
}

}  // namespace
}  // namespace lattice::core
