// Dynamics tests for the gas rule driven through the golden reference
// updater: free streaming, collisions in situ, bounce-back, and exact
// global conservation over long runs.

#include <gtest/gtest.h>

#include <array>

#include "lattice/common/rng.hpp"

#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/observables.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::lgca {
namespace {

SiteLattice make(Extent e, Boundary b = Boundary::Periodic) {
  return SiteLattice(e, b);
}

/// Locate the single occupied site (fails the test if not exactly one).
Coord find_single_particle(const SiteLattice& lat) {
  Coord found{-1, -1};
  int count = 0;
  const Extent e = lat.extent();
  for (std::int64_t y = 0; y < e.height; ++y)
    for (std::int64_t x = 0; x < e.width; ++x)
      if (lat.at({x, y}) != 0) {
        found = {x, y};
        ++count;
      }
  EXPECT_EQ(count, 1);
  return found;
}

class StreamingTest
    : public ::testing::TestWithParam<std::tuple<GasKind, int>> {};

INSTANTIATE_TEST_SUITE_P(
    AllDirections, StreamingTest,
    ::testing::Combine(::testing::Values(GasKind::HPP, GasKind::FHP_I,
                                         GasKind::FHP_II, GasKind::FHP_III),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      std::string name{gas_kind_name(std::get<0>(info.param))};
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_dir" + std::to_string(std::get<1>(info.param));
    });

TEST_P(StreamingTest, LoneParticleAdvectsAlongItsChannel) {
  const auto [kind, dir] = GetParam();
  const GasModel& model = GasModel::get(kind);
  if (dir >= model.channels()) GTEST_SKIP() << "direction not in model";
  const GasRule rule(kind);

  // Start from both row parities to exercise the offset-grid streaming.
  for (const Coord start : {Coord{8, 8}, Coord{8, 9}}) {
    SiteLattice lat = make({17, 17});
    lat.at(start) = channel_bit(dir);

    Coord expected = start;
    for (int t = 0; t < 5; ++t) {
      reference_step(lat, rule, t);
      expected = neighbor_coord(model.topology(), expected, dir);
      const Coord at = find_single_particle(lat);
      EXPECT_EQ(at, expected) << "t=" << t;
      EXPECT_EQ(lat.at(at), channel_bit(dir));
    }
  }
}

TEST(GasRuleHpp, HeadOnCollisionScattersPerpendicular) {
  // E-mover and W-mover meet at (2,1): gathered state {E,W} → {N,S}.
  const GasRule rule(GasKind::HPP);
  SiteLattice lat = make({5, 3});
  lat.at({1, 1}) = channel_bit(0);  // E-bound
  lat.at({3, 1}) = channel_bit(2);  // W-bound
  reference_step(lat, rule, 0);
  EXPECT_EQ(lat.at({2, 1}),
            static_cast<Site>(channel_bit(1) | channel_bit(3)));
  EXPECT_EQ(lat.at({1, 1}), 0);
  EXPECT_EQ(lat.at({3, 1}), 0);
}

TEST(GasRuleFhp, HeadOnCollisionRotatesPair) {
  const GasRule rule(GasKind::FHP_I);
  SiteLattice lat = make({7, 3});
  lat.at({2, 1}) = channel_bit(0);  // E-bound
  lat.at({4, 1}) = channel_bit(3);  // W-bound
  reference_step(lat, rule, 0);
  const Site out = lat.at({3, 1});
  const Site rot_plus = static_cast<Site>(channel_bit(1) | channel_bit(4));
  const Site rot_minus = static_cast<Site>(channel_bit(2) | channel_bit(5));
  EXPECT_TRUE(out == rot_plus || out == rot_minus) << int(out);
}

TEST(GasRule, BounceBackReversesParticle) {
  const GasRule rule(GasKind::HPP);
  SiteLattice lat = make({7, 3}, Boundary::Null);
  lat.at({3, 1}) = kObstacleBit;
  lat.at({1, 1}) = channel_bit(0);  // heading E toward the obstacle

  reference_step(lat, rule, 0);  // particle reaches (2,1)
  EXPECT_EQ(lat.at({2, 1}), channel_bit(0));
  reference_step(lat, rule, 1);  // enters obstacle, reflected to W
  EXPECT_EQ(lat.at({3, 1}), static_cast<Site>(kObstacleBit | channel_bit(2)));
  reference_step(lat, rule, 2);  // leaves obstacle heading W
  EXPECT_EQ(lat.at({2, 1}), channel_bit(2));
  EXPECT_EQ(lat.at({3, 1}), kObstacleBit);
}

class ConservationTest : public ::testing::TestWithParam<GasKind> {};

INSTANTIATE_TEST_SUITE_P(AllModels, ConservationTest,
                         ::testing::Values(GasKind::HPP, GasKind::FHP_I,
                                           GasKind::FHP_II, GasKind::FHP_III),
                         [](const auto& info) {
                           std::string name{gas_kind_name(info.param)};
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST_P(ConservationTest, MassAndMomentumExactOverFiftyGenerations) {
  const GasKind kind = GetParam();
  const GasModel& model = GasModel::get(kind);
  const GasRule rule(kind);

  SiteLattice lat = make({32, 32}, Boundary::Periodic);
  fill_random(lat, model, 0.3, /*seed=*/2026, /*rest_density=*/0.2);
  const Invariants before = measure_invariants(lat, model);
  ASSERT_GT(before.mass, 0);

  reference_run(lat, rule, 50);
  const Invariants after = measure_invariants(lat, model);
  EXPECT_EQ(after.mass, before.mass);
  EXPECT_EQ(after.px, before.px);
  EXPECT_EQ(after.py, before.py);
}

TEST_P(ConservationTest, MassConservedWithObstaclesPresent) {
  const GasKind kind = GetParam();
  const GasModel& model = GasModel::get(kind);
  const GasRule rule(kind);

  SiteLattice lat = make({32, 32}, Boundary::Periodic);
  add_obstacle_disk(lat, 16, 16, 5);
  fill_random(lat, model, 0.25, 99);
  const Invariants before = measure_invariants(lat, model);

  reference_run(lat, rule, 40);
  const Invariants after = measure_invariants(lat, model);
  EXPECT_EQ(after.mass, before.mass);
  EXPECT_EQ(after.obstacles, before.obstacles);
}

TEST_P(ConservationTest, EvolutionIsDeterministic) {
  const GasKind kind = GetParam();
  const GasRule rule(kind);

  SiteLattice a = make({24, 24});
  fill_random(a, GasModel::get(kind), 0.4, 7);
  SiteLattice b = a;
  reference_run(a, rule, 20);
  reference_run(b, rule, 20);
  EXPECT_TRUE(a == b);
}

TEST_P(ConservationTest, EvolutionIsExactlyReversible) {
  // Microscopic reversibility: run forward 15 generations, then unstep
  // 15 times — the initial configuration must return bit-for-bit.
  const GasKind kind = GetParam();
  const GasRule rule(kind);
  SiteLattice lat = make({24, 18}, Boundary::Periodic);
  fill_random(lat, GasModel::get(kind), 0.35, 61, 0.25);
  const SiteLattice original = lat;

  const std::int64_t steps = 15;
  reference_run(lat, rule, steps);
  EXPECT_FALSE(lat == original);  // it really evolved
  for (std::int64_t t = steps; t-- > 0;) {
    gas_unstep(lat, rule, t);
  }
  EXPECT_TRUE(lat == original);
}

TEST_P(ConservationTest, ReversibilityHoldsWithObstacles) {
  const GasKind kind = GetParam();
  const GasRule rule(kind);
  SiteLattice lat = make({20, 20}, Boundary::Periodic);
  add_obstacle_disk(lat, 10, 10, 3);
  fill_random(lat, GasModel::get(kind), 0.3, 17);
  const SiteLattice original = lat;
  reference_run(lat, rule, 8);
  for (std::int64_t t = 8; t-- > 0;) gas_unstep(lat, rule, t);
  EXPECT_TRUE(lat == original);
}

TEST(GasUnstep, RequiresPeriodicBoundaries) {
  const GasRule rule(GasKind::FHP_I);
  SiteLattice lat({8, 8}, Boundary::Null);
  EXPECT_THROW(gas_unstep(lat, rule, 0), Error);
}

TEST(GasRule, EmptyLatticeStaysEmpty) {
  const GasRule rule(GasKind::FHP_II);
  SiteLattice lat = make({16, 16});
  reference_run(lat, rule, 10);
  EXPECT_EQ(measure_invariants(lat, GasModel::get(GasKind::FHP_II)).mass, 0);
}

TEST(GasRule, NullBoundaryDrainsParticles) {
  // With null boundaries, an E-bound particle walks off the edge.
  const GasRule rule(GasKind::HPP);
  SiteLattice lat = make({5, 3}, Boundary::Null);
  lat.at({4, 1}) = channel_bit(0);
  reference_step(lat, rule, 0);
  EXPECT_EQ(measure_invariants(lat, GasModel::get(GasKind::HPP)).mass, 0);
}

TEST(GasRule, AxisGasEquilibratesIntoAllChannels) {
  // Ergodicity: particles seeded only on the E/W axis must scatter
  // into the diagonal channels; transverse pairs end up balanced.
  const GasRule rule(GasKind::FHP_III);
  SiteLattice lat = make({32, 32}, Boundary::Periodic);
  Pcg32 rng(13);
  for (std::size_t i = 0; i < lat.site_count(); ++i) {
    Site s = 0;
    if (rng.next_bool(0.5)) s |= channel_bit(0);
    if (rng.next_bool(0.5)) s |= channel_bit(3);
    lat[i] = s;
  }
  reference_run(lat, rule, 80);
  std::array<std::int64_t, 6> occ{};
  for (std::size_t i = 0; i < lat.site_count(); ++i) {
    for (int d = 0; d < 6; ++d) {
      if (has_channel(lat[i], d)) ++occ[static_cast<std::size_t>(d)];
    }
  }
  std::int64_t total = 0;
  for (const auto n : occ) total += n;
  // Every channel should hold a substantial share, with opposite
  // channels roughly balanced (net momentum started near zero).
  for (int d = 0; d < 6; ++d) {
    EXPECT_GT(occ[static_cast<std::size_t>(d)], total / 12) << "dir " << d;
  }
}

TEST(GasRule, RestParticleStaysPut) {
  const GasRule rule(GasKind::FHP_II);
  SiteLattice lat = make({9, 9});
  lat.at({4, 4}) = kRestBit;
  reference_run(lat, rule, 5);
  EXPECT_EQ(lat.at({4, 4}), kRestBit);
}

}  // namespace
}  // namespace lattice::lgca
