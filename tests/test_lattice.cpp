#include <gtest/gtest.h>

#include "lattice/lgca/lattice.hpp"

namespace lattice::lgca {
namespace {

TEST(SiteLattice, RejectsEmptyExtent) {
  EXPECT_THROW(SiteLattice({0, 4}, Boundary::Null), Error);
  EXPECT_THROW(SiteLattice({4, 0}, Boundary::Periodic), Error);
}

TEST(SiteLattice, NullBoundaryReadsZeroOutside) {
  SiteLattice lat({3, 3}, Boundary::Null);
  lat.fill(Site{0xff});
  EXPECT_EQ(lat.get({-1, 0}), 0);
  EXPECT_EQ(lat.get({0, -1}), 0);
  EXPECT_EQ(lat.get({3, 0}), 0);
  EXPECT_EQ(lat.get({0, 3}), 0);
  EXPECT_EQ(lat.get({1, 1}), 0xff);
}

TEST(SiteLattice, PeriodicBoundaryWraps) {
  SiteLattice lat({4, 3}, Boundary::Periodic);
  lat.at({0, 0}) = 1;
  lat.at({3, 2}) = 2;
  EXPECT_EQ(lat.get({4, 0}), 1);
  EXPECT_EQ(lat.get({0, 3}), 1);
  EXPECT_EQ(lat.get({-4, -3}), 1);
  EXPECT_EQ(lat.get({-1, -1}), 2);
  EXPECT_EQ(lat.get({7, 5}), 2);
}

TEST(SiteLattice, WindowAtInterior) {
  SiteLattice lat({4, 4}, Boundary::Null);
  // Number sites 0..15 row-major.
  for (std::int64_t y = 0; y < 4; ++y)
    for (std::int64_t x = 0; x < 4; ++x)
      lat.at({x, y}) = static_cast<Site>(y * 4 + x);
  const Window w = lat.window_at({1, 1});
  EXPECT_EQ(w.at(-1, -1), 0);
  EXPECT_EQ(w.at(0, -1), 1);
  EXPECT_EQ(w.at(1, -1), 2);
  EXPECT_EQ(w.at(-1, 0), 4);
  EXPECT_EQ(w.center(), 5);
  EXPECT_EQ(w.at(1, 0), 6);
  EXPECT_EQ(w.at(-1, 1), 8);
  EXPECT_EQ(w.at(0, 1), 9);
  EXPECT_EQ(w.at(1, 1), 10);
}

TEST(SiteLattice, WindowAtCornerRespectsBoundary) {
  SiteLattice nul({3, 3}, Boundary::Null);
  nul.fill(Site{7});
  const Window wn = nul.window_at({0, 0});
  EXPECT_EQ(wn.at(-1, -1), 0);
  EXPECT_EQ(wn.at(-1, 0), 0);
  EXPECT_EQ(wn.at(0, -1), 0);
  EXPECT_EQ(wn.center(), 7);

  SiteLattice per({3, 3}, Boundary::Periodic);
  per.fill(Site{7});
  per.at({2, 2}) = 9;
  const Window wp = per.window_at({0, 0});
  EXPECT_EQ(wp.at(-1, -1), 9);  // wraps to (2,2)
}

TEST(SiteLattice, EqualityIncludesBoundaryPolicy) {
  SiteLattice a({2, 2}, Boundary::Null);
  SiteLattice b({2, 2}, Boundary::Periodic);
  EXPECT_FALSE(a == b);
  SiteLattice c({2, 2}, Boundary::Null);
  EXPECT_TRUE(a == c);
  c.at({0, 0}) = 1;
  EXPECT_FALSE(a == c);
}

TEST(SiteLattice, SiteCountMatchesExtent) {
  SiteLattice lat({5, 7}, Boundary::Null);
  EXPECT_EQ(lat.site_count(), 35u);
}

}  // namespace
}  // namespace lattice::lgca
