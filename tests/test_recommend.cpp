// Architecture recommendation: the §6/§8 operating-regime claims as a
// decision procedure.

#include <gtest/gtest.h>

#include "lattice/arch/wsa.hpp"
#include "lattice/core/recommend.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"

namespace lattice::core {
namespace {

const arch::Technology kPaper = arch::Technology::paper1987();

TEST(Recommend, ReturnsAllThreeFamilies) {
  const auto all = recommend(kPaper, {.lattice_len = 512,
                                      .min_update_rate = 1e8});
  ASSERT_EQ(all.size(), 3u);
  int feasible = 0;
  for (const auto& c : all) feasible += c.feasible;
  EXPECT_EQ(feasible, 3);
}

TEST(Recommend, SmallLatticeModestRatePrefersWsa) {
  // In WSA's regime (L ≤ 785, modest rate) its chip count is lowest:
  // 4 PEs/chip vs SPA's many-slices-but-fractional-chips accounting
  // still favors WSA for low rates... the winner must at least meet
  // the rate with minimum chips.
  const auto best = best_architecture(kPaper, {.lattice_len = 512,
                                               .min_update_rate = 4e7});
  EXPECT_TRUE(best.feasible);
  EXPECT_GE(best.rate, 4e7);
}

TEST(Recommend, HugeLatticeDisqualifiesWsa) {
  const auto all = recommend(kPaper, {.lattice_len = 2000,
                                      .min_update_rate = 1e8});
  for (const auto& c : all) {
    if (c.arch == ArchChoice::Wsa) {
      EXPECT_FALSE(c.feasible);
      EXPECT_NE(c.reason.find("line-buffer limit"), std::string::npos);
    } else {
      EXPECT_TRUE(c.feasible) << arch_choice_name(c.arch);
    }
  }
  const auto best = best_architecture(kPaper, {.lattice_len = 2000,
                                               .min_update_rate = 1e8});
  EXPECT_NE(best.arch, ArchChoice::Wsa);
}

TEST(Recommend, BandwidthBudgetDisqualifiesSpa) {
  // Cap memory bandwidth at WSA's 64 bits/tick: SPA's L/W slices need
  // far more and must be rejected.
  Requirement req{.lattice_len = 785,
                  .min_update_rate = 1e8,
                  .max_bandwidth_bits_per_tick = 64};
  const auto all = recommend(kPaper, req);
  for (const auto& c : all) {
    if (c.arch == ArchChoice::Spa) {
      EXPECT_FALSE(c.feasible);
      EXPECT_NE(c.reason.find("bandwidth budget"), std::string::npos);
    }
  }
  const auto best = best_architecture(kPaper, req);
  EXPECT_NE(best.arch, ArchChoice::Spa);
}

TEST(Recommend, AchievedRateAlwaysMeetsRequirement) {
  for (const double rate : {1e6, 5e7, 2e8, 1e9}) {
    const auto all = recommend(kPaper, {.lattice_len = 600,
                                        .min_update_rate = rate});
    for (const auto& c : all) {
      if (c.feasible) {
        EXPECT_GE(c.rate, rate) << arch_choice_name(c.arch);
      }
    }
  }
}

TEST(Recommend, FeasibleCandidatesSortedByChips) {
  const auto all = recommend(kPaper, {.lattice_len = 512,
                                      .min_update_rate = 2e8});
  double prev = 0;
  for (const auto& c : all) {
    if (!c.feasible) break;
    EXPECT_GE(c.chips, prev);
    prev = c.chips;
  }
}

TEST(Recommend, ExtremeRateOnlySpaSurvives) {
  // Beyond WSA's R_max = P·F·L ≈ 3.1e10 only SPA's slice parallelism
  // scales (its depth is per-slice, not bounded by L).
  const double rate = 4e10;
  const auto all = recommend(kPaper, {.lattice_len = 785,
                                      .min_update_rate = rate});
  for (const auto& c : all) {
    if (c.arch == ArchChoice::Spa) {
      EXPECT_TRUE(c.feasible);
    } else {
      EXPECT_FALSE(c.feasible) << arch_choice_name(c.arch);
    }
  }
}

TEST(Recommend, ImpossibleRequirementThrows) {
  Requirement req{.lattice_len = 100,
                  .min_update_rate = 1e9,
                  .max_bandwidth_bits_per_tick = 8};
  EXPECT_THROW((void)best_architecture(kPaper, req), Error);
}

TEST(Recommend, RejectsBadRequirements) {
  EXPECT_THROW((void)recommend(kPaper, {.lattice_len = 1,
                                        .min_update_rate = 1}),
               Error);
  EXPECT_THROW((void)recommend(kPaper, {.lattice_len = 100,
                                        .min_update_rate = -1}),
               Error);
}

TEST(Recommend, PromisedWsaRateIsAchievedBySimulator) {
  // Close the loop: build the recommended WSA machine in the cycle
  // simulator and check its sustained updates/tick approaches the
  // promise P·k (within pipeline fill/drain losses).
  Requirement req{.lattice_len = 64, .min_update_rate = 2e8};
  const auto all = recommend(kPaper, req);
  const Candidate* wsa = nullptr;
  for (const auto& c : all) {
    if (c.arch == ArchChoice::Wsa && c.feasible) wsa = &c;
  }
  ASSERT_NE(wsa, nullptr);

  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  lgca::SiteLattice in({64, 64}, lgca::Boundary::Null);
  lgca::fill_random(in, rule.model(), 0.3, 3);
  arch::WsaPipeline pipe({64, 64}, rule, wsa->depth, wsa->pe_per_chip);
  (void)pipe.run(in);
  const double promised_per_tick = wsa->rate / kPaper.clock_hz;
  EXPECT_GT(pipe.stats().updates_per_tick(), 0.75 * promised_per_tick);
  EXPECT_LE(pipe.stats().updates_per_tick(), promised_per_tick + 1e-9);
}

TEST(Recommend, NamesAreStable) {
  EXPECT_EQ(arch_choice_name(ArchChoice::Wsa), "WSA");
  EXPECT_EQ(arch_choice_name(ArchChoice::WsaE), "WSA-E");
  EXPECT_EQ(arch_choice_name(ArchChoice::Spa), "SPA");
}

}  // namespace
}  // namespace lattice::core
