// Degenerate lattice shapes: single rows, single columns, minimum
// sizes — the places where window masking, stream delays and slice
// stagger logic are most likely to be off by one.

#include <gtest/gtest.h>

#include "lattice/arch/spa.hpp"
#include "lattice/arch/wsa.hpp"
#include "lattice/common/rng.hpp"
#include "lattice/lgca/ca_rules.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/reference.hpp"

namespace lattice::arch {
namespace {

using lgca::Boundary;
using lgca::SiteLattice;

SiteLattice random_sites(Extent e, std::uint64_t seed) {
  SiteLattice lat(e, Boundary::Null);
  Pcg32 rng(seed);
  for (std::size_t i = 0; i < lat.site_count(); ++i)
    lat[i] = static_cast<lgca::Site>(rng.next_below(64));
  return lat;
}

SiteLattice golden(const SiteLattice& in, const lgca::Rule& rule, int g) {
  SiteLattice lat = in;
  lgca::reference_run(lat, rule, g);
  return lat;
}

struct Shape {
  std::int64_t w;
  std::int64_t h;
};

class ExtremeShapeTest : public ::testing::TestWithParam<Shape> {};

INSTANTIATE_TEST_SUITE_P(Shapes, ExtremeShapeTest,
                         ::testing::Values(Shape{16, 1}, Shape{1, 16},
                                           Shape{2, 2}, Shape{1, 1},
                                           Shape{2, 20}, Shape{20, 2},
                                           Shape{3, 1}, Shape{1, 3}),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param.w) + "h" +
                                  std::to_string(info.param.h);
                         });

TEST_P(ExtremeShapeTest, GoldenUpdaterHandlesDegenerateLattices) {
  const Shape s = GetParam();
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  SiteLattice lat = random_sites({s.w, s.h}, 3);
  // Must not crash and must conserve determinism.
  SiteLattice again = lat;
  lgca::reference_run(lat, rule, 4);
  lgca::reference_run(again, rule, 4);
  EXPECT_TRUE(lat == again);
}

TEST_P(ExtremeShapeTest, WsaPipelineMatchesGolden) {
  const Shape s = GetParam();
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const SiteLattice in = random_sites({s.w, s.h}, 7);
  WsaPipeline pipe({s.w, s.h}, rule, /*depth=*/2, /*width=*/1);
  EXPECT_TRUE(pipe.run(in) == golden(in, rule, 2));
}

TEST(ExtremeShapes, WsaFullWidthBatch) {
  // P equal to the lattice width: a whole row per tick.
  const lgca::LifeRule rule;
  const SiteLattice in = random_sites({6, 9}, 11);
  WsaPipeline pipe({6, 9}, rule, 2, 6);
  EXPECT_TRUE(pipe.run(in) == golden(in, rule, 2));
}

TEST(ExtremeShapes, SpaMinimumSliceOnSingleRow) {
  const lgca::GasRule rule(lgca::GasKind::HPP);
  const SiteLattice in = random_sites({12, 1}, 13);
  SpaMachine spa({12, 1}, rule, /*slice=*/2, /*depth=*/2);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 2));
}

TEST(ExtremeShapes, SpaTallThinSlices) {
  const lgca::GasRule rule(lgca::GasKind::FHP_I);
  const SiteLattice in = random_sites({6, 40}, 17);
  SpaMachine spa({6, 40}, rule, 2, 3);
  EXPECT_TRUE(spa.run(in) == golden(in, rule, 3));
}

TEST(ExtremeShapes, DeepPipelineOnTinyLattice) {
  // Pipeline depth far exceeding the lattice area: mostly latency.
  const lgca::GasRule rule(lgca::GasKind::FHP_II);
  const SiteLattice in = random_sites({3, 3}, 19);
  WsaPipeline pipe({3, 3}, rule, 12, 1);
  EXPECT_TRUE(pipe.run(in) == golden(in, rule, 12));
}

}  // namespace
}  // namespace lattice::arch
