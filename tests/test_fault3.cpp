// Fault-injection tests for the 3-D backends: the escalation ladder
// (retry -> interval shrink -> slice remap -> oracle -> corruption)
// was written against the 2-D engines; these tests pin that the
// volume executors inherit it unchanged. Faults are keyed by global
// (x, y, z) so a z-banded run and a whole-volume run inject the same
// set, which is what makes the Reference3 mirror comparison and the
// thread-invariance checks meaningful.

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "lattice/core/engine.hpp"
#include "lattice/lgca3d/plane_kernel3.hpp"

namespace lattice::core {
namespace {

LatticeEngine::Config engine_cfg3(Backend b, const fault::FaultPlan& plan,
                                  unsigned threads = 1) {
  LatticeEngine::Config c;
  c.extent = {24, 12};
  c.depth = 8;
  c.boundary = lgca::Boundary::Periodic;
  c.backend = b;
  c.threads = threads;
  c.fault = plan;
  c.checkpoint_interval = 8;
  return c;
}

void seed3(LatticeEngine& e, std::uint64_t seed = 47) {
  const lgca3d::Extent3 ext{24, 12, 8};
  lgca3d::Lattice3 vol(ext, lgca3d::Boundary3::Periodic);
  lgca3d::fill_random(vol, 0.3, seed);
  ASSERT_EQ(e.state().site_count(), vol.site_count());
  std::memcpy(e.state().grid().data(), vol.data(), vol.site_count());
}

// ---- capability matrix ----

TEST(Fault3Capability, BitPlane3TakesPlaneFaultsButNotMachineMemory) {
  for (const auto arm : {0, 1, 2, 3}) {
    fault::FaultPlan plan;
    switch (arm) {
      case 0: plan.plane_flip_rate = 1e-3; break;
      case 1: plan.halo_flip_rate = 1e-3; break;
      case 2: plan.parity_plane = true; break;
      case 3: plan.stuck_planes.push_back({2, 0, 1, ~0ull}); break;
    }
    EXPECT_NO_THROW(LatticeEngine{engine_cfg3(Backend::BitPlane3, plan)})
        << "arm " << arm;
  }
  fault::FaultPlan machine;
  machine.buffer_flip_rate = 1e-3;
  EXPECT_THROW(LatticeEngine{engine_cfg3(Backend::BitPlane3, machine)},
               Error)
      << "machine-memory faults belong to the pipelined 2-D engines";
}

TEST(Fault3Capability, Reference3TakesOnlyWhatItCanMirror) {
  fault::FaultPlan flips;
  flips.plane_flip_rate = 1e-3;
  flips.stuck_planes.push_back({2, 0, 1, ~0ull});
  EXPECT_NO_THROW(LatticeEngine{engine_cfg3(Backend::Reference3, flips)});

  fault::FaultPlan halo;
  halo.halo_flip_rate = 1e-3;
  EXPECT_THROW(LatticeEngine{engine_cfg3(Backend::Reference3, halo)}, Error)
      << "the golden updater has no halo exchange to corrupt";

  fault::FaultPlan parity;
  parity.parity_plane = true;
  EXPECT_THROW(LatticeEngine{engine_cfg3(Backend::Reference3, parity)},
               Error)
      << "the golden updater carries no parity plane";
}

// ---- armed but inert ----

TEST(Fault3, ArmedButInertPlanRaisesNoFalsePositives) {
  // An identity stuck mask (OR 0, AND all-ones) arms the machinery
  // without perturbing a single bit: every detector must stay quiet.
  fault::FaultPlan plan;
  plan.stuck_planes.push_back({3, 5, 0, ~0ull});
  plan.parity_plane = true;
  LatticeEngine faulty(engine_cfg3(Backend::BitPlane3, plan));
  LatticeEngine clean(engine_cfg3(Backend::BitPlane3, {}));
  seed3(faulty);
  seed3(clean);
  faulty.advance(40);
  clean.advance(40);
  EXPECT_TRUE(faulty.state() == clean.state());
  EXPECT_EQ(faulty.fault_counters().detected(), 0);
  EXPECT_EQ(faulty.report().rollbacks, 0);
}

// ---- recovery ----

TEST(Fault3, RecoveredRunMatchesFaultFreeGolden) {
  fault::FaultPlan plan;
  plan.plane_flip_rate = 1e-3;
  plan.parity_plane = true;
  plan.seed = 99;
  LatticeEngine faulty(engine_cfg3(Backend::BitPlane3, plan));
  LatticeEngine clean(engine_cfg3(Backend::BitPlane3, {}));
  seed3(faulty);
  seed3(clean);
  faulty.advance(80);
  clean.advance(80);
  EXPECT_GT(faulty.fault_counters().injected(), 0)
      << "the plan must actually fire at this rate and volume";
  EXPECT_TRUE(faulty.state() == clean.state())
      << "every injected flip must be detected and rolled back";
}

TEST(Fault3, ReferenceMirrorTracksBitPlaneRun) {
  // Same seed, same plan: the deterministic injector must hand both
  // backends the identical fault set, so counters, rollbacks, and the
  // final volume all agree.
  fault::FaultPlan plan;
  plan.plane_flip_rate = 2e-3;
  plan.seed = 21;
  LatticeEngine bp3(engine_cfg3(Backend::BitPlane3, plan));
  LatticeEngine ref3(engine_cfg3(Backend::Reference3, plan));
  seed3(bp3);
  seed3(ref3);
  bp3.advance(64);
  ref3.advance(64);
  const auto snapshot = [](const LatticeEngine& e) {
    return std::make_tuple(e.fault_counters().injected_plane,
                           e.report().rollbacks, e.generation());
  };
  EXPECT_EQ(snapshot(bp3), snapshot(ref3));
  EXPECT_GT(bp3.fault_counters().injected_plane, 0);
  EXPECT_TRUE(bp3.state() == ref3.state());
}

TEST(Fault3, ThreadCountDoesNotChangeTheFaultSet) {
  fault::FaultPlan plan;
  plan.plane_flip_rate = 1e-3;
  plan.parity_plane = true;
  plan.seed = 7;
  LatticeEngine solo(engine_cfg3(Backend::BitPlane3, plan, 1));
  LatticeEngine team(engine_cfg3(Backend::BitPlane3, plan, 4));
  seed3(solo);
  seed3(team);
  solo.advance(64);
  team.advance(64);
  EXPECT_EQ(solo.fault_counters().injected(),
            team.fault_counters().injected())
      << "faults key on global (x, y, z), never on the z-band split";
  EXPECT_EQ(solo.fault_counters().detected(),
            team.fault_counters().detected());
  EXPECT_TRUE(solo.state() == team.state());
}

// ---- escalation ----

TEST(Fault3, StuckPlaneWordEscalatesToDegradeOnBothBackends) {
  for (const Backend b : {Backend::BitPlane3, Backend::Reference3}) {
    fault::FaultPlan plan;
    plan.stuck_planes.push_back({0, 5, ~0ull, ~0ull});
    LatticeEngine::Config c = engine_cfg3(b, plan);
    c.max_retries = 1;
    LatticeEngine e(c);
    seed3(e);
    e.advance(32);
    const PerformanceReport r = e.report();
    EXPECT_EQ(r.remapped_slices, 1)
        << "a persistent stuck word must force a remap, backend "
        << static_cast<int>(b);
    EXPECT_EQ(r.oracle_passes, 0);
    EXPECT_EQ(e.generation(), 32) << "degraded, but still progressing";
  }
}

TEST(Fault3, CorruptionErrorWhenLadderIsExhausted) {
  fault::FaultPlan plan;
  plan.plane_flip_rate = 1.0;
  plan.parity_plane = true;
  LatticeEngine::Config c = engine_cfg3(Backend::BitPlane3, plan);
  c.max_retries = 1;
  LatticeEngine e(c);
  seed3(e);
  try {
    e.advance(64);
    FAIL() << "a saturating flip rate must exhaust the ladder";
  } catch (const fault::CorruptionError& err) {
    EXPECT_GT(err.counters().injected(), 0);
    EXPECT_GT(err.counters().detected(), 0);
  }
}

TEST(Fault3, SeededSoakMatchesGolden) {
  fault::FaultPlan plan;
  plan.plane_flip_rate = 0.03;
  plan.parity_plane = true;
  plan.seed = 1234;
  LatticeEngine::Config c = engine_cfg3(Backend::BitPlane3, plan);
  c.oracle_fallback = true;
  LatticeEngine faulty(c);
  LatticeEngine clean(engine_cfg3(Backend::BitPlane3, {}));
  seed3(faulty);
  seed3(clean);
  faulty.advance(250);
  clean.advance(250);
  EXPECT_TRUE(faulty.state() == clean.state())
      << "with the oracle rung available no corruption may survive";
  EXPECT_GT(faulty.fault_counters().injected(), 0);
}

}  // namespace
}  // namespace lattice::core
