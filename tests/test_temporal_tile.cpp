// Temporal (trapezoidal) tiling — the tiled drivers against the plain
// sweeps, bit for bit. The sweep is deliberately hostile to the seam
// logic: awkward extents whose last tile is short, both boundary
// modes, generation counts that are not a multiple of the depth, every
// compiled SIMD level, and multiple thread counts — any off-by-one in
// the trapezoid windows, the scratch-strip base, or the semantic-row
// bookkeeping shows up as a flipped bit at a tile seam. The engine
// half proves the checkpoint cadence quantizes to tile blocks and that
// fault recovery still converges on the tiled path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lattice/core/engine.hpp"
#include "lattice/core/tile_plan.hpp"
#include "lattice/lgca/gas_rule.hpp"
#include "lattice/lgca/init.hpp"
#include "lattice/lgca/plane_simd.hpp"
#include "lattice/lgca/reference.hpp"
#include "lattice/lgca/temporal_tile.hpp"

namespace lattice::lgca {
namespace {

const char* kind_name(GasKind k) {
  switch (k) {
    case GasKind::HPP: return "HPP";
    case GasKind::FHP_I: return "FHP_I";
    case GasKind::FHP_II: return "FHP_II";
    case GasKind::FHP_III: return "FHP_III";
  }
  return "unknown";
}

SiteLattice seeded(Extent e, Boundary b, const GasModel& model,
                   std::uint64_t seed) {
  SiteLattice lat(e, b);
  fill_random(lat, model, 0.35, seed, 0.2);
  if (e.width > 8 && e.height > 8) {
    add_obstacle_disk(lat, e.width / 2, e.height / 2, 2);
  }
  return lat;
}

TEST(TemporalTileFeasibility, RejectsDegenerateTilings) {
  const Extent e{64, 40};
  // depth < 2 is "tiling off".
  EXPECT_FALSE(temporal_tiling_feasible({1, 16}, e, Boundary::Null));
  // tile_rows < depth would spend more rows on skirts than payload.
  EXPECT_FALSE(temporal_tiling_feasible({4, 3}, e, Boundary::Null));
  // One tile covering the whole lattice: the plain sweep already is
  // that schedule, without the skirt recompute.
  EXPECT_FALSE(temporal_tiling_feasible({2, 40}, e, Boundary::Null));
  // Null boundary: scratch strip taller than the lattice.
  EXPECT_FALSE(temporal_tiling_feasible({8, 30}, e, Boundary::Null));
  // ...which Periodic permits (windows unwrap instead of clamping).
  EXPECT_TRUE(temporal_tiling_feasible({8, 30}, e, Boundary::Periodic));
  EXPECT_TRUE(temporal_tiling_feasible({3, 10}, e, Boundary::Null));
}

class TemporalTileGasTest : public ::testing::TestWithParam<GasKind> {};

INSTANTIATE_TEST_SUITE_P(Gases, TemporalTileGasTest,
                         ::testing::Values(GasKind::HPP, GasKind::FHP_I,
                                           GasKind::FHP_II),
                         [](const auto& info) {
                           return std::string(kind_name(info.param));
                         });

TEST_P(TemporalTileGasTest, TiledBitPlaneMatchesPlainAcrossSeams) {
  // Depths 1 (fallback), 2, 3, 5 over extents whose last tile is
  // short, 7 generations so the final block is partial (kb < k) for
  // every depth > 1, both boundaries, serial and threaded.
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  const GasModel& model = kernel.model();
  for (const Boundary b : {Boundary::Null, Boundary::Periodic}) {
    for (const Extent e : {Extent{96, 37}, Extent{65, 23}}) {
      const SiteLattice start = seeded(e, b, model, 1000 + e.width);
      SiteLattice want = start;
      bitplane_gas_run(want, kernel, 7);
      for (const std::int64_t k : {std::int64_t{1}, std::int64_t{2},
                                   std::int64_t{3}, std::int64_t{5}}) {
        for (const unsigned threads : {1u, 3u}) {
          SiteLattice got = start;
          bitplane_gas_run_tiled(got, kernel, 7, 0, threads,
                                 {k, std::int64_t{8}});
          ASSERT_TRUE(got == want)
              << kind_name(GetParam()) << " " << e.width << "x" << e.height
              << " k=" << k << " threads=" << threads
              << (b == Boundary::Null ? " null" : " periodic");
        }
      }
    }
  }
}

TEST_P(TemporalTileGasTest, TiledAgreesAtEveryCompiledSimdLevel) {
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  const GasModel& model = kernel.model();
  const SiteLattice start =
      seeded({640, 30}, Boundary::Periodic, model, 4242);
  SiteLattice want;
  {
    const ScopedSimdLevel pin(SimdLevel::Scalar);
    want = start;
    bitplane_gas_run(want, kernel, 6);
  }
  for (const SimdLevel level :
       {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
    if (!simd_supported(level)) continue;
    const ScopedSimdLevel pin(level);
    SiteLattice got = start;
    bitplane_gas_run_tiled(got, kernel, 6, 0, 2, {3, 9});
    ASSERT_TRUE(got == want)
        << kind_name(GetParam()) << " level " << to_string(level);
  }
}

TEST_P(TemporalTileGasTest, NonzeroTimeOriginAndChunkingAreInvariant) {
  // Splitting a tiled run at an arbitrary generation (not a block
  // boundary) and resuming with the carried t0 must reproduce the
  // continuous run: chirality is a position-time hash, and each call
  // re-enters the trapezoid schedule from committed state.
  const PlaneKernel& kernel = PlaneKernel::get(GetParam());
  const SiteLattice start =
      seeded({96, 37}, Boundary::Null, kernel.model(), 7);
  SiteLattice want = start;
  bitplane_gas_run(want, kernel, 9);
  SiteLattice got = start;
  bitplane_gas_run_tiled(got, kernel, 4, 0, 2, {3, 8});
  bitplane_gas_run_tiled(got, kernel, 5, 4, 2, {3, 8});
  EXPECT_TRUE(got == want) << kind_name(GetParam());
}

TEST(TemporalTileFused, AllGasesMatchPlainFusedRun) {
  // The byte-LUT path covers FHP-III too (no plane kernel exists).
  for (const GasKind kind : {GasKind::HPP, GasKind::FHP_I, GasKind::FHP_II,
                             GasKind::FHP_III}) {
    const CollisionLut& lut = CollisionLut::get(kind);
    for (const Boundary b : {Boundary::Null, Boundary::Periodic}) {
      const SiteLattice start = seeded({65, 23}, b, lut.model(), 99);
      SiteLattice want = start;
      fused_gas_run(want, lut, 7);
      for (const std::int64_t k :
           {std::int64_t{2}, std::int64_t{3}, std::int64_t{5}}) {
        for (const unsigned threads : {1u, 3u}) {
          SiteLattice got = start;
          fused_gas_run_tiled(got, lut, 7, 0, threads, {k, 7});
          ASSERT_TRUE(got == want)
              << kind_name(kind) << " k=" << k << " threads=" << threads
              << (b == Boundary::Null ? " null" : " periodic");
        }
      }
    }
  }
}

TEST(TemporalTileFused, InfeasibleTilingFallsBackToPlainSweep) {
  const CollisionLut& lut = CollisionLut::get(GasKind::FHP_II);
  const SiteLattice start =
      seeded({48, 12}, Boundary::Null, lut.model(), 3);
  SiteLattice want = start;
  fused_gas_run(want, lut, 5);
  SiteLattice got = start;
  // tile_rows = height: one tile, infeasible, must still be exact.
  fused_gas_run_tiled(got, lut, 5, 0, 2, {3, 12});
  EXPECT_TRUE(got == want);
}

TEST(TilePlan, AutoModeBlocksOnlyWhenTheSweepIsNotCacheResident) {
  // A 4096² bit-plane lattice is ~20 MB per buffer — far over the
  // budget, so auto picks a real depth with a modest skirt tax.
  const Extent big{4096, 4096};
  const core::TilePlan plan = core::plan_temporal_tiles(
      big, Boundary::Null, core::plane_row_bytes(big), 0);
  EXPECT_GE(plan.depth, 2);
  EXPECT_TRUE(temporal_tiling_feasible(plan.tiling(), big, Boundary::Null));
  EXPECT_LE(plan.working_set_bytes, plan.cache_bytes);
  EXPECT_LT(plan.recompute_overhead, 0.15);
  EXPECT_GT(plan.updates_per_io_ceiling, 1.0);
  // A 128² lattice fits the budget whole: blocking would only add the
  // skirt tax, so auto stays at the plain sweep.
  const Extent small{128, 128};
  EXPECT_EQ(core::plan_temporal_tiles(small, Boundary::Null,
                                      core::plane_row_bytes(small), 0)
                .depth,
            1);
}

TEST(TilePlan, ExplicitDepthIsHonoredOrDroppedToPlain) {
  const Extent e{96, 1200};
  const std::int64_t row = core::plane_row_bytes(e);
  const core::TilePlan plan =
      core::plan_temporal_tiles(e, Boundary::Periodic, row, 3);
  EXPECT_EQ(plan.depth, 3);
  EXPECT_TRUE(
      temporal_tiling_feasible(plan.tiling(), e, Boundary::Periodic));
  // Requesting a depth the lattice cannot tile (one tile would cover
  // it) falls back to the plain sweep, never a different depth.
  EXPECT_EQ(
      core::plan_temporal_tiles({96, 40}, Boundary::Null, row, 3).depth, 1);
  // Depth 1 is always "off".
  EXPECT_EQ(core::plan_temporal_tiles(e, Boundary::Null, row, 1).depth, 1);
}

TEST(TemporalTileEngine, BitPlaneTiledRunVerifiesAgainstReference) {
  // Tall enough that the plan actually tiles (three tiles at depth 3);
  // 0 exercises auto mode end-to-end as well.
  for (const int k : {0, 3}) {
    core::LatticeEngine::Config cfg;
    cfg.extent = {96, 1200};
    cfg.gas = GasKind::FHP_II;
    cfg.boundary = Boundary::Periodic;
    cfg.backend = core::Backend::BitPlane;
    cfg.threads = 3;
    cfg.tile_generations = k;
    core::LatticeEngine engine(cfg);
    fill_flow(engine.state(), engine.gas_model(), 0.3, 0.1, 11);
    engine.advance(25);
    EXPECT_TRUE(engine.verify_against_reference()) << "tile_generations " << k;
  }
}

TEST(TemporalTileEngine, ReferenceTiledRunMatchesPlainEngine) {
  // The byte path needs a much taller lattice before two strips
  // overflow the budget (rows are 8× leaner than bit-plane rows).
  const auto run = [](int k) {
    core::LatticeEngine::Config cfg;
    cfg.extent = {96, 6000};
    cfg.gas = GasKind::FHP_III;
    cfg.boundary = Boundary::Null;
    cfg.backend = core::Backend::Reference;
    cfg.threads = 2;
    cfg.tile_generations = k;
    core::LatticeEngine engine(cfg);
    fill_flow(engine.state(), engine.gas_model(), 0.3, 0.1, 21);
    engine.advance(10);
    return engine.state();
  };
  EXPECT_TRUE(run(3) == run(1));
}

TEST(TemporalTileEngine, GuardedCheckpointsQuantizeToTileBlocks) {
  // A stuck plane word fires on every attempt until the escalation
  // ladder disables it: rollback retries, one interval shrink (6 → 3,
  // never below the tile depth), then executor degrade — after which
  // the run completes and the committed history is fault-free.
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.stuck_planes.push_back(
      {1, 10, ~std::uint64_t{0}, ~std::uint64_t{0}});
  core::LatticeEngine::Config cfg;
  cfg.extent = {96, 1200};
  cfg.gas = GasKind::FHP_II;
  cfg.boundary = Boundary::Periodic;
  cfg.backend = core::Backend::BitPlane;
  cfg.threads = 2;
  cfg.tile_generations = 3;
  cfg.fault = plan;
  cfg.checkpoint_interval = 5;
  core::LatticeEngine engine(cfg);
  // The requested interval of 5 quantizes up to a whole tile block.
  EXPECT_EQ(engine.config().checkpoint_interval, 6);
  fill_flow(engine.state(), engine.gas_model(), 0.3, 0.1, 31);
  engine.advance(12);
  EXPECT_EQ(engine.generation(), 12);
  const core::PerformanceReport r = engine.report();
  EXPECT_GT(r.rollbacks, 0);
  EXPECT_GT(r.interval_shrinks, 0);
  EXPECT_GT(r.remapped_slices, 0);
  EXPECT_TRUE(engine.verify_against_reference());
}

}  // namespace
}  // namespace lattice::lgca
