// Structure of the layered computation graphs C_d — the combinatorial
// facts §7's lemmas rest on.

#include <gtest/gtest.h>

#include "lattice/pebble/comp_graph.hpp"

namespace lattice::pebble {
namespace {

TEST(LatticeBox, IndexRoundTrips) {
  const LatticeBox box{{3, 4, 5}};
  EXPECT_EQ(box.points(), 60);
  for (std::int64_t i = 0; i < box.points(); ++i) {
    EXPECT_EQ(box.index(box.coords(i)), i);
  }
}

TEST(LatticeNeighbors, InteriorHasTwoPerDimension) {
  const LatticeBox box{{5, 5}};
  const auto n = lattice_neighbors(box, box.index({2, 2}));
  EXPECT_EQ(n.size(), 4u);
}

TEST(LatticeNeighbors, CornerTruncated) {
  const LatticeBox box{{5, 5}};
  EXPECT_EQ(lattice_neighbors(box, box.index({0, 0})).size(), 2u);
  EXPECT_EQ(lattice_neighbors(box, box.index({0, 2})).size(), 3u);
}

TEST(LatticeNeighbors, OneDimensionalEnds) {
  const LatticeBox box{{4}};
  EXPECT_EQ(lattice_neighbors(box, 0).size(), 1u);
  EXPECT_EQ(lattice_neighbors(box, 2).size(), 2u);
}

TEST(ComputationGraph, LayerSizesAndInputsOutputs) {
  const LatticeBox box{{4, 4}};
  const std::int64_t steps = 3;
  const Dag dag = computation_graph(box, steps);
  EXPECT_EQ(dag.size(), 16 * 4);
  EXPECT_EQ(dag.inputs().size(), 16u);   // layer 0
  EXPECT_EQ(dag.outputs().size(), 16u);  // layer `steps`
}

TEST(ComputationGraph, DependenciesAreNeighborhoodPlusSelf) {
  const LatticeBox box{{4, 4}};
  const Dag dag = computation_graph(box, 1);
  const LayeredId id{box, 2};
  const std::int64_t c = box.index({1, 1});
  const auto& preds = dag.preds(id.vertex(c, 1));
  EXPECT_EQ(preds.size(), 5u);  // self + 4 von Neumann neighbors
  bool has_self = false;
  for (const Vertex p : preds) {
    EXPECT_EQ(id.layer_of(p), 0);
    if (id.cell_of(p) == c) has_self = true;
  }
  EXPECT_TRUE(has_self);
}

TEST(ComputationGraph, ArcsOnlySpanOneLayer) {
  // Lemma 3: every (u,v)-path has length = layer difference, which is
  // guaranteed by arcs only connecting consecutive layers.
  const LatticeBox box{{3, 3}};
  const std::int64_t steps = 2;
  const Dag dag = computation_graph(box, steps);
  const LayeredId id{box, steps + 1};
  for (Vertex v = 0; v < dag.size(); ++v) {
    for (const Vertex u : dag.preds(v)) {
      EXPECT_EQ(id.layer_of(v), id.layer_of(u) + 1);
    }
  }
}

TEST(ComputationGraph, EdgeCountMatchesNeighborSum) {
  const LatticeBox box{{3, 4}};
  const std::int64_t steps = 2;
  const Dag dag = computation_graph(box, steps);
  std::int64_t per_layer = 0;
  for (std::int64_t c = 0; c < box.points(); ++c) {
    per_layer +=
        1 + static_cast<std::int64_t>(lattice_neighbors(box, c).size());
  }
  EXPECT_EQ(dag.edge_count(), per_layer * steps);
}

// ---- Lemma 8's counting: cells within distance j ----

class SimplexTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Dims, SimplexTest, ::testing::Values(1, 2, 3));

TEST_P(SimplexTest, CornerBallMatchesBinomial) {
  // From a corner of a large box, exactly C(j+d, d) cells lie within
  // distance j — the φ-region count in the proof of Lemma 8.
  const int d = GetParam();
  const std::int64_t r = 9;
  LatticeBox box;
  box.extent.assign(static_cast<std::size_t>(d), r + 1);
  const std::int64_t corner = 0;
  for (std::int64_t j = 0; j <= r; ++j) {
    EXPECT_EQ(cells_within(box, corner, j), simplex_points(d, j))
        << "d=" << d << " j=" << j;
  }
}

TEST_P(SimplexTest, CornerIsTheWorstCase) {
  // The proof of Lemma 8 picks the corner as the minimizer of the
  // reachable-cell count; interior points reach at least as many.
  const int d = GetParam();
  const std::int64_t r = 6;
  LatticeBox box;
  box.extent.assign(static_cast<std::size_t>(d), 2 * r + 1);
  std::vector<std::int64_t> mid(static_cast<std::size_t>(d), r);
  const std::int64_t center = box.index(mid);
  for (std::int64_t j = 1; j <= r; ++j) {
    EXPECT_GE(cells_within(box, center, j), simplex_points(d, j));
  }
}

TEST(SimplexPoints, KnownValues) {
  EXPECT_EQ(simplex_points(1, 5), 6);    // 0..5
  EXPECT_EQ(simplex_points(2, 2), 6);    // C(4,2)
  EXPECT_EQ(simplex_points(3, 3), 20);   // C(6,3)
  EXPECT_EQ(simplex_points(2, 0), 1);
  EXPECT_EQ(simplex_points(2, -1), 0);
}

TEST(ComputationGraph, RejectsBadSpecs) {
  EXPECT_THROW(computation_graph(LatticeBox{{}}, 1), Error);
  EXPECT_THROW(computation_graph(LatticeBox{{0}}, 1), Error);
  EXPECT_THROW(computation_graph(LatticeBox{{4}}, -1), Error);
}

}  // namespace
}  // namespace lattice::pebble
